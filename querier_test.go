package autonomizer_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	autonomizer "github.com/autonomizer/autonomizer"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// decide is a host-program decision step written against the Querier
// surface only: extract → serialize → NN → write-back. The whole point
// of the interface is that this function cannot tell an embedded
// runtime from a remote client.
func decide(q autonomizer.Querier, x, y float64) (float64, error) {
	q.Extract("X", x)
	q.Extract("Y", y)
	key, err := q.SerializeCtx(context.Background(), "X", "Y")
	if err != nil {
		return 0, err
	}
	if err := q.NNCtx(context.Background(), "m", key, "OUT"); err != nil {
		return 0, err
	}
	var out [1]float64
	if _, err := q.WriteBackCtx(context.Background(), "OUT", out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}

// trainAndSave builds a tiny supervised model through the public API.
func trainAndSave(t *testing.T) (autonomizer.ModelSpec, []byte, *autonomizer.Runtime) {
	t.Helper()
	spec := autonomizer.ModelSpec{Name: "m", Algo: autonomizer.AdamOpt, Hidden: []int{4}, LR: 0.01}
	tr := autonomizer.NewRuntime(autonomizer.Train, autonomizer.WithSeed(11))
	if err := tr.Config(spec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		x := float64(i) / 60
		if err := tr.RecordExample("m", []float64{x, 1 - x}, []float64{x}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Fit("m", 3, 8); err != nil {
		t.Fatal(err)
	}
	data, err := tr.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}
	ts := autonomizer.NewRuntime(autonomizer.Test, autonomizer.WithSeed(12))
	ts.LoadModel("m", data)
	if err := ts.Config(spec); err != nil {
		t.Fatal(err)
	}
	return spec, data, ts
}

// TestQuerierEmbeddedAndRemote runs the same Querier-shaped host step
// against both implementations and demands identical answers.
func TestQuerierEmbeddedAndRemote(t *testing.T) {
	spec, data, embedded := trainAndSave(t)

	srv := serve.NewServer(serve.Config{})
	defer srv.Close()
	if _, err := srv.Install("m", spec, data); err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(srv.Handler())
	defer web.Close()
	remote := autonomizer.NewClient(web.URL)

	for _, pt := range [][2]float64{{0.1, 0.9}, {0.5, 0.5}, {0.8, 0.3}} {
		a, err := decide(embedded, pt[0], pt[1])
		if err != nil {
			t.Fatal(err)
		}
		b, err := decide(remote, pt[0], pt[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("decide(%v) embedded=%v remote=%v", pt, a, b)
		}
	}

	// The typed-error contract holds for both implementations.
	for name, q := range map[string]autonomizer.Querier{"embedded": embedded, "remote": remote} {
		if _, err := q.Predict("ghost", []float64{1, 2}); !errors.Is(err, autonomizer.ErrUnknownModel) {
			t.Errorf("%s: Predict on unknown model: %v, want ErrUnknownModel", name, err)
		}
	}
}

// TestRootOptions pins the re-exported functional options: seeds drive
// determinism and WithMetrics(nil) detaches a runtime from telemetry.
func TestRootOptions(t *testing.T) {
	mk := func(opts ...autonomizer.Option) float64 {
		rt := autonomizer.NewRuntime(autonomizer.Train, opts...)
		spec := autonomizer.ModelSpec{Name: "m", Algo: autonomizer.AdamOpt, Hidden: []int{3}, LR: 0.05}
		if err := rt.Config(spec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			x := float64(i) / 30
			if err := rt.RecordExample("m", []float64{x}, []float64{1 - x}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rt.Fit("m", 2, 8); err != nil {
			t.Fatal(err)
		}
		out, err := rt.Predict("m", []float64{0.25})
		if err != nil {
			t.Fatal(err)
		}
		return out[0]
	}
	if a, b := mk(autonomizer.WithSeed(5)), mk(autonomizer.WithSeed(5)); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
	if a, b := mk(autonomizer.WithSeed(5)), mk(autonomizer.WithSeed(6)); a == b {
		t.Errorf("different seeds agreed: %v", a)
	}
	// WithMetrics(nil) must not panic anywhere in the primitive path even
	// with process telemetry enabled.
	autonomizer.EnableTelemetry()
	mk(autonomizer.WithSeed(5), autonomizer.WithMetrics(nil))
}
