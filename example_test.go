package autonomizer_test

import (
	"fmt"

	autonomizer "github.com/autonomizer/autonomizer"
)

// ExampleRuntime_supervised shows the parameterized-program lifecycle:
// record oracle-labeled examples during training runs, fit offline,
// then predict parameters for new inputs.
func ExampleRuntime_supervised() {
	rt := autonomizer.New(autonomizer.Train, 1)
	_ = rt.Config(autonomizer.ModelSpec{
		Name: "ParamNN", Algo: autonomizer.AdamOpt, Hidden: []int{8}, LR: 0.01,
	})
	// During training runs the oracle supplies the desirable parameter
	// per input; here the ideal parameter is simply 2x the feature.
	for i := 0; i < 300; i++ {
		x := float64(i%10) / 10
		_ = rt.RecordExample("ParamNN", []float64{x}, []float64{2 * x})
	}
	_, _ = rt.Fit("ParamNN", 40, 16)
	out, _ := rt.Predict("ParamNN", []float64{0.4})
	fmt.Printf("predicted parameter: %.1f\n", out[0])
	// Output: predicted parameter: 0.8
}

// ExampleFeaturesSL runs Algorithm 1 on the paper's Fig. 9 dependence
// structure: the histogram is the nearest (best) feature for the
// hysteresis threshold.
func ExampleFeaturesSL() {
	g := autonomizer.NewDepGraph()
	g.MarkInput("image")
	g.Def("sImg", "image", "sigma")
	g.Def("mag", "sImg")
	g.Def("hist", "mag")
	g.Def("result", "hist", "lo", "hi")

	ranked := autonomizer.FeaturesSL(g, []string{"image"}, []string{"lo"})
	for _, f := range ranked["lo"] {
		fmt.Printf("%s (distance %d)\n", f.Name, f.Dist)
	}
	// Output:
	// hist (distance 1)
	// mag (distance 2)
	// sImg (distance 3)
	// image (distance 4)
}

// ExampleFeaturesRL runs Algorithm 2 on a Fig. 10-style structure: the
// duplicate variable is pruned by the trace-similarity threshold.
func ExampleFeaturesRL() {
	g := autonomizer.NewDepGraph()
	g.Def("playerX", "playerX", "actionKey")
	g.Def("speed", "playerX")
	g.Def("pX", "playerX") // redundant duplicate
	g.Def("collide", "speed", "pX")
	for _, v := range []string{"playerX", "speed", "pX", "collide", "actionKey"} {
		g.Use("gameLoop", v)
	}
	rec := autonomizer.NewTraceRecorder()
	for i := 0; i < 20; i++ {
		rec.Record("playerX", float64(i))
		rec.Record("pX", float64(i)) // identical trace
		rec.Record("speed", float64(i%3))
	}
	report := autonomizer.FeaturesRL(g, rec, []string{"actionKey"},
		[]string{"playerX", "pX", "speed"}, 1e-9, 1e-9)
	fmt.Println(report.Features["actionKey"])
	fmt.Println("pruned pairs:", len(report.PrunedRedundant))
	// Output:
	// [pX speed]
	// pruned pairs: 1
}
