// Package autonomizer is the public API of Autonomizer, a programming
// framework that retrofits traditional software with neural-network
// control, reproducing "Programming Support for Autonomizing Software"
// (Lee, Liu, Liu, Ma, Zhang — PLDI 2019).
//
// # Overview
//
// Autonomizer targets two classes of programs:
//
//   - Parameterized programs (data processing, scientific computation)
//     whose output quality depends on input-specific parameter choices.
//     Supervised learning predicts good parameters per input.
//   - Interactive programs (games, driving, control loops) that act in
//     an environment. Reinforcement learning (deep Q-learning) selects
//     actions.
//
// A host program is "autonomized" by adding a few primitive calls:
//
//	rt := autonomizer.New(autonomizer.Train, 42)
//	rt.Config(autonomizer.ModelSpec{
//		Name: "Mario", Algo: autonomizer.QLearn,
//		Hidden: []int{256, 64}, Actions: 5,
//	})
//	...
//	rt.Checkpoint(game, stateBytes)          // au_checkpoint
//	for {
//		rt.Extract("PX", px)                 // au_extract
//		rt.Extract("PY", py)
//		key := rt.Serialize("PX", "PY")      // au_serialize
//		rt.NNRL("Mario", key, reward, term, "output") // au_NN
//		action, _ := rt.WriteBackAction("output")     // au_write_back
//		act(action)
//		if term {
//			rt.Restore(game)                 // au_restore
//		}
//	}
//
// The seven primitives and their exact semantics follow Fig. 8 of the
// paper; internal/semantics carries a literal executable transcription
// of the rules, and internal/core implements the production runtime
// this package re-exports.
//
// # Feature extraction
//
// The FeaturesSL and FeaturesRL functions expose the paper's two
// automatic feature-variable extraction algorithms over a dynamic
// dependence graph (built with NewDepGraph and the instrumented
// subjects' Def/Use events).
package autonomizer

import (
	"context"
	"io"
	"log/slog"
	"net/http"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// Mode is the execution mode ω: Train (TR) or Test (TS).
type Mode = core.Mode

// Execution modes.
const (
	// Train builds and trains models (the TR executable).
	Train = core.Train
	// Test loads trained models and only predicts (the TS executable).
	Test = core.Test
)

// ModelType selects the model family δ.
type ModelType = core.ModelType

// Model families.
const (
	// DNN is a fully connected network over extracted feature variables.
	DNN = core.DNN
	// CNN is the convolutional network for raw screen inputs.
	CNN = core.CNN
)

// Algorithm selects the learning algorithm α.
type Algorithm = core.Algorithm

// Learning algorithms.
const (
	// QLearn is deep Q-learning, for interactive programs.
	QLearn = core.QLearn
	// AdamOpt is Adam-optimized supervised learning, for parameterized
	// programs.
	AdamOpt = core.AdamOpt
)

// ModelSpec describes one named model (the au_config argument list).
type ModelSpec = core.ModelSpec

// Runtime is one autonomized execution: the primitives au_config,
// au_extract, au_serialize, au_NN, au_write_back, au_checkpoint and
// au_restore are its methods (Config, Extract, Serialize, NN/NNRL,
// WriteBack, Checkpoint, Restore). Every primitive also has a
// context-aware ...Ctx form (ConfigCtx, ExtractCtx, SerializeCtx,
// NNCtx, NNRLCtx, WriteBackCtx, WriteBackActionCtx, CheckpointCtx,
// RestoreCtx, FitCtx, PredictCtx) that observes cancellation and
// deadlines and returns the typed errors below; the plain forms are
// thin wrappers over them with context.Background().
type Runtime = core.Runtime

// AgentStats surfaces Q-learning statistics (exploration rate, replay
// occupancy, trace bytes).
type AgentStats = core.AgentStats

// FitStats reports offline-training progress from Runtime.FitCtx,
// including the partial progress of a canceled run: completed epochs,
// completed minibatch steps and the latest epoch's mean loss.
type FitStats = core.FitStats

// Structured runtime errors. Every failure a Runtime method returns
// wraps one of these sentinels, so hosts dispatch with errors.Is
// instead of string matching:
//
//	if errors.Is(err, autonomizer.ErrCanceled) { flushPartial() }
//
// Cancellation errors additionally wrap the context's own error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) also hold.
var (
	// ErrSpecInvalid marks a malformed ModelSpec (or annotation shape),
	// rejected at Config time with a field-level message.
	ErrSpecInvalid = auerr.ErrSpecInvalid
	// ErrUnknownModel marks a primitive invoked on an unconfigured (or,
	// in Test mode, never-saved) model name.
	ErrUnknownModel = auerr.ErrUnknownModel
	// ErrModeViolation marks a primitive applied to the wrong model kind
	// (NN on a QLearn model, Fit on a non-AdamOpt model).
	ErrModeViolation = auerr.ErrModeViolation
	// ErrNotMaterialized marks an operation needing a built network on a
	// model whose input/output sizes are not yet known.
	ErrNotMaterialized = auerr.ErrNotMaterialized
	// ErrMissingInput marks a primitive reading an absent or empty π
	// binding (au_NN without au_extract, write-back of an unbound name).
	ErrMissingInput = auerr.ErrMissingInput
	// ErrCorruptModel marks undecodable serialized model bytes.
	ErrCorruptModel = auerr.ErrCorruptModel
	// ErrCorruptStore marks an undecodable database-store image.
	ErrCorruptStore = auerr.ErrCorruptStore
	// ErrCanceled marks work stopped by context cancellation/deadline.
	ErrCanceled = auerr.ErrCanceled
	// ErrInvariant marks a recovered internal invariant violation — a
	// runtime bug (or panicking user Builder), surfaced as an error
	// instead of a crash.
	ErrInvariant = auerr.ErrInvariant
)

// Option configures an embedded Runtime at construction time (see
// WithSeed, WithLogger, WithMetrics). Options replace direct struct
// pokes on Runtime internals: everything a host used to reach in and
// set is now declared up front in NewRuntime, so a constructed runtime
// is never observed half-configured.
type Option = core.Option

// WithSeed fixes the runtime's deterministic RNG seed (default 0).
func WithSeed(seed uint64) Option { return core.WithSeed(seed) }

// WithLogger routes the runtime's diagnostics through l instead of the
// process-wide Logger.
func WithLogger(l *slog.Logger) Option { return core.WithLogger(l) }

// WithMetrics attaches the runtime's instruments to reg instead of the
// process-wide registry; WithMetrics(nil) detaches this runtime from
// telemetry entirely, even when EnableTelemetry was called.
func WithMetrics(reg *TelemetryRegistry) Option { return core.WithMetrics(reg) }

// WithDriftConfig tunes an embedded Runtime's drift monitor (fed by
// Observe/ObserveCtx) — the counterpart of auserve's -drift-threshold
// and -drift-window flags. The default is monitor-only.
func WithDriftConfig(cfg DriftConfig) Option { return core.WithDriftConfig(cfg) }

// NewRuntime creates an embedded runtime in the given mode:
//
//	rt := autonomizer.NewRuntime(autonomizer.Train,
//		autonomizer.WithSeed(42),
//		autonomizer.WithLogger(l),
//		autonomizer.WithMetrics(reg))
//
// Omitted options take the defaults (seed 0, process-wide logger and
// registry).
func NewRuntime(mode Mode, opts ...Option) *Runtime {
	return core.NewRuntimeWith(mode, opts...)
}

// New creates a runtime in the given mode with a deterministic seed.
// It is shorthand for NewRuntime(mode, WithSeed(seed)).
func New(mode Mode, seed uint64) *Runtime {
	return core.NewRuntime(mode, seed)
}

// DepGraph is the dynamic program dependence graph consumed by the
// feature-extraction algorithms. Instrumented programs report Def
// (dst computed from srcs) and Use (variable used in function) events.
type DepGraph = dep.Graph

// NewDepGraph returns an empty dependence graph.
func NewDepGraph() *DepGraph { return dep.NewGraph() }

// TraceRecorder accumulates runtime value traces of candidate feature
// variables for the RL extraction's pruning.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// RankedFeature is a feature variable with its dependence distance.
type RankedFeature = extract.RankedFeature

// FeaturesSL runs the paper's Algorithm 1: supervised-learning feature
// extraction. inputs is the program-input variable set, targets the
// annotated target variables. Each target maps to features ranked by
// dependence distance (nearest — most abstract — first).
func FeaturesSL(g *DepGraph, inputs, targets []string) map[string][]RankedFeature {
	return extract.SL(g, inputs, targets)
}

// RLExtraction reports what Algorithm 2 selected and pruned.
type RLExtraction = extract.RLReport

// FeaturesRL runs the paper's Algorithm 2: reinforcement-learning
// feature extraction with redundancy pruning (epsilon1 over scaled
// trace distance) and unchanging-variable pruning (epsilon2 over trace
// variance).
func FeaturesRL(g *DepGraph, rec *TraceRecorder, targets, progVars []string, epsilon1, epsilon2 float64) RLExtraction {
	return extract.RL(g, rec, targets, progVars, extract.RLConfig{
		Epsilon1: epsilon1, Epsilon2: epsilon2,
	})
}

// Pick selects a feature by distance band for the Raw/Med/Min
// comparison of the paper's evaluation.
type Pick = extract.Pick

// Feature distance bands.
const (
	// Min selects the nearest (most abstract) feature.
	Min = extract.Min
	// Med selects the median-distance feature.
	Med = extract.Med
	// Raw selects the farthest feature (raw program input).
	Raw = extract.Raw
)

// SelectFeature picks one ranked feature at the requested band.
func SelectFeature(feats []RankedFeature, p Pick) (RankedFeature, bool) {
	return extract.Select(feats, p)
}

// TelemetryRegistry is the process-wide metrics registry (see
// internal/obs). Telemetry is disabled by default — every instrument
// site in the runtime short-circuits on a nil registry — and is turned
// on explicitly with EnableTelemetry before constructing Runtimes.
type TelemetryRegistry = obs.Registry

// EnableTelemetry switches the process-wide metrics registry on (idempotent)
// and returns it. Call it before New so runtime instruments resolve.
func EnableTelemetry() *TelemetryRegistry { return obs.Enable() }

// Telemetry returns the process-wide registry, or nil while disabled.
func Telemetry() *TelemetryRegistry { return obs.Default() }

// TelemetryHandler returns the HTTP handler serving /metrics
// (Prometheus text format), /debug/vars (expvar), /debug/pprof and
// /debug/spans, for hosts that mount telemetry on their own server.
func TelemetryHandler() http.Handler { return obs.Handler() }

// ServeTelemetry serves TelemetryHandler on addr until ctx is canceled.
func ServeTelemetry(ctx context.Context, addr string) error { return obs.Serve(ctx, addr) }

// Logger returns the process-wide structured logger the runtime logs
// through (log/slog; text on stderr by default).
func Logger() *slog.Logger { return obs.Logger() }

// SetLogFormat switches diagnostic logging to "text" or "json" on w.
func SetLogFormat(format string, w io.Writer) error { return obs.ConfigureLog(format, w) }

// SetTracing toggles per-primitive span recording (exported on
// /debug/spans and as the autonomizer_span_duration_seconds histogram).
func SetTracing(on bool) { obs.SetTracing(on) }
