module github.com/autonomizer/autonomizer

go 1.22
