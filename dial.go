package autonomizer

import (
	"strings"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/fleet"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// Dial resolves a target string to a Querier, making the engine behind
// a host program a single configuration value. A deployment graduates
// from embedded to one server to a sharded fleet by changing that one
// string — the host's query loop never changes:
//
//	q, err := autonomizer.Dial(os.Getenv("AUTONOMIZER_TARGET"),
//		autonomizer.WithRetry(autonomizer.RetryPolicy{}))
//
// Target grammar:
//
//	""                            embedded Test-mode *Runtime (the default:
//	                              no configuration means in-process)
//	"embedded:"                   same, explicit
//	"embedded:train"              embedded Train-mode *Runtime
//	"http://host:port"            *Client against one auserve (or a fleet
//	"https://host:port"           router — the surfaces are identical)
//	"fleet:http://a,http://b"     fleet-aware *Client: model names
//	                              consistent-hashed across the listed
//	                              backends, dead backends rehashed away
//
// Anything else fails with ErrSpecInvalid. Client options apply to the
// remote targets; embedded targets have no transport and ignore them.
// NewRuntime remains the constructor of choice when an embedded
// runtime needs non-transport options (seed, logger, drift config).
func Dial(target string, opts ...ClientOption) (Querier, error) {
	switch {
	case target == "" || target == "embedded:":
		return NewRuntime(Test), nil
	case target == "embedded:train":
		return NewRuntime(Train), nil
	case strings.HasPrefix(target, "embedded:"):
		return nil, auerr.E(auerr.ErrSpecInvalid,
			"autonomizer: unknown embedded mode %q (want \"embedded:\" or \"embedded:train\")", target)
	case strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://"):
		return serve.NewClient(target, opts...), nil
	case strings.HasPrefix(target, "fleet:"):
		var endpoints []string
		for _, e := range strings.Split(strings.TrimPrefix(target, "fleet:"), ",") {
			if e = strings.TrimSpace(e); e != "" {
				endpoints = append(endpoints, e)
			}
		}
		if len(endpoints) == 0 {
			return nil, auerr.E(auerr.ErrSpecInvalid,
				"autonomizer: fleet target needs at least one backend URL")
		}
		for _, e := range endpoints {
			if !strings.HasPrefix(e, "http://") && !strings.HasPrefix(e, "https://") {
				return nil, auerr.E(auerr.ErrSpecInvalid,
					"autonomizer: fleet backend %q is not an http(s) URL", e)
			}
		}
		return fleet.NewClient(endpoints, opts...), nil
	default:
		return nil, auerr.E(auerr.ErrSpecInvalid,
			"autonomizer: cannot dial %q (want \"\", \"embedded:\", \"embedded:train\", an http(s) URL, or \"fleet:URL,URL,...\")", target)
	}
}
