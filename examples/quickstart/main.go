// Quickstart: autonomize a tiny parameterized program.
//
// The subject is a toy signal-smoothing routine with one parameter (the
// smoothing window). Its ideal window depends on the input's noise
// level — exactly the structure the paper's supervised autonomization
// targets. We annotate it with the Autonomizer primitives, train
// against an autotuning oracle, save the model, and run the deployed
// (TS-mode) build on fresh inputs.
package main

import (
	"fmt"
	"log"
	"math"

	autonomizer "github.com/autonomizer/autonomizer"
)

// smooth is the "traditional program": a moving average with a window
// parameter the user would normally have to pick per input.
func smooth(signal []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(signal))
	for i := range signal {
		lo, hi := i-window, i+window
		if lo < 0 {
			lo = 0
		}
		if hi >= len(signal) {
			hi = len(signal) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += signal[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// quality scores a smoothing against the clean reference (higher is
// better): negative mean squared error.
func quality(smoothed, clean []float64) float64 {
	mse := 0.0
	for i := range clean {
		d := smoothed[i] - clean[i]
		mse += d * d
	}
	return -mse / float64(len(clean))
}

// makeInput synthesizes one workload: a sine wave with seed-dependent
// noise. The best window grows with the noise level.
func makeInput(seed int) (signal, clean []float64, noise float64) {
	n := 128
	noise = 0.05 + 0.5*float64(seed%10)/10
	clean = make([]float64, n)
	signal = make([]float64, n)
	state := uint64(seed)*2654435761 + 1
	rnd := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000)/500 - 1
	}
	for i := range clean {
		clean[i] = math.Sin(float64(i) / 6)
		signal[i] = clean[i] + noise*rnd()
	}
	return signal, clean, noise
}

// features extracts the program's internal feature variable: an
// estimate of the input's noisiness (mean absolute first difference),
// the kind of derived quantity Algorithm 1 would surface.
func features(signal []float64) []float64 {
	sum := 0.0
	for i := 1; i < len(signal); i++ {
		sum += math.Abs(signal[i] - signal[i-1])
	}
	return []float64{sum / float64(len(signal)-1)}
}

// pickWindow is the deployed decision step, written against the
// Querier interface: extract → NN → write back → use. Because it only
// needs Querier, the same code runs against the embedded TS runtime
// below or against a remote model server
// (autonomizer.NewClient("http://host:8080") after `auserve -snapshot
// models.ausn`) — one constructor change, zero changes here.
func pickWindow(q autonomizer.Querier, signal []float64) (int, error) {
	q.Extract("NOISE", features(signal)...)                     // au_extract
	if err := q.NN("WindowNN", "NOISE", "WINDOW"); err != nil { // au_NN
		return 0, err
	}
	var wv [1]float64
	if _, err := q.WriteBack("WINDOW", wv[:]); err != nil { // au_write_back
		return 0, err
	}
	return int(wv[0]*12 + 0.5), nil
}

func main() {
	// ---- Training run (the TR executable) ----
	rt := autonomizer.New(autonomizer.Train, 42)
	err := rt.Config(autonomizer.ModelSpec{ // au_config("WindowNN", DNN, AdamOpt, ...)
		Name: "WindowNN", Type: autonomizer.DNN, Algo: autonomizer.AdamOpt,
		Hidden: []int{16}, LR: 0.01, OutputActivation: "sigmoid",
	})
	if err != nil {
		log.Fatal(err)
	}

	for seed := 0; seed < 200; seed++ {
		signal, clean, _ := makeInput(seed)
		// The oracle stands in for the user/autotuner picking the ideal
		// window for this input by trying a few.
		bestW, bestQ := 1, math.Inf(-1)
		for _, w := range []int{1, 2, 4, 7, 11} {
			if q := quality(smooth(signal, w), clean); q > bestQ {
				bestQ, bestW = q, w
			}
		}
		if err := rt.RecordExample("WindowNN", features(signal), []float64{float64(bestW) / 12}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := rt.Fit("WindowNN", 60, 16); err != nil {
		log.Fatal(err)
	}
	saved, err := rt.SaveModel("WindowNN")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained WindowNN on 200 inputs, model %d bytes\n", len(saved))

	// ---- Production run (the TS executable) ----
	prod := autonomizer.New(autonomizer.Test, 43)
	prod.LoadModel("WindowNN", saved)
	if err := prod.Config(autonomizer.ModelSpec{
		Name: "WindowNN", Type: autonomizer.DNN, Algo: autonomizer.AdamOpt,
		Hidden: []int{16}, OutputActivation: "sigmoid",
	}); err != nil {
		log.Fatal(err)
	}

	var defQ, autoQ float64
	fresh := 0
	for seed := 1000; seed < 1020; seed++ {
		signal, clean, _ := makeInput(seed)

		// The annotated program, through the Querier surface.
		window, err := pickWindow(prod, signal)
		if err != nil {
			log.Fatal(err)
		}

		defQ += quality(smooth(signal, 3), clean) // fixed default window
		autoQ += quality(smooth(signal, window), clean)
		fresh++
	}
	fmt.Printf("mean quality on %d fresh inputs: default window -%.5f, autonomized -%.5f\n",
		fresh, -defQ/float64(fresh), -autoQ/float64(fresh))
	if autoQ > defQ {
		fmt.Println("autonomized program wins: parameters now adapt to each input")
	} else {
		fmt.Println("unexpected: defaults won on this corpus")
	}
}
