// Self-testing: the paper's Section 2 case study. The same Mario game
// is autonomized for testing instead of playing: the reward is the
// coverage improvement (Fig. 2 line 38), so the agent learns to reach
// unexplored code. With the missed-boundary-check bug armed, the
// exploring tester eventually jumps through the dungeon ceiling and
// crashes the game — the bug the paper's AI found.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/autonomizer/autonomizer/internal/bench"
	"github.com/autonomizer/autonomizer/internal/coverage"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func main() {
	// Part 1: coverage comparison. Train a coverage-rewarded tester and
	// compare against a plain agent and random input within the same
	// play window.
	fmt.Println("== coverage-driven self-testing ==")
	start := time.Now()
	res, err := bench.RunSelfTest(bench.SelfTestConfig{TrainSteps: 30000, PlayWindow: 900})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocks instrumented: %d\n", res.TotalBlocks)
	fmt.Printf("coverage within a 900-step window:\n")
	fmt.Printf("  coverage-rewarded agent  %.0f%%\n", 100*res.CoverageAgent)
	fmt.Printf("  progress-rewarded agent  %.0f%%\n", 100*res.PlainAgent)
	fmt.Printf("  random input             %.0f%%\n", 100*res.Random)
	fmt.Printf("(trained in %v)\n\n", time.Since(start).Round(time.Second))

	// Part 2: the found bug. Drive the armed build with an exploring
	// tester; the fixed build survives the identical drive.
	fmt.Println("== hunting the boundary-check bug ==")
	hunt := bench.RunBugHunt(1, 150000)
	if hunt.Found {
		fmt.Printf("CRASH after %d steps:\n  %s\n", hunt.Steps, hunt.Crash)
	} else {
		fmt.Printf("no crash in %d steps (try a different seed)\n", hunt.Steps)
	}

	// The fixed build under the same adversarial drive never crashes:
	// the clamp that should have been there absorbs the jump.
	fixed := mario.New(1, mario.Options{Coverage: coverage.New(mario.BasicBlocks())})
	rng := stats.NewRNG(8)
	env.RunEpisode(fixed, func(e env.Env) int { return rng.Intn(5) }, 20000)
	fmt.Println("fixed build survived the same adversarial drive")
}
