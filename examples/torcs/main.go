// TORCS autonomization: the paper's self-driving case study (Section
// 6.3). The steering command is the annotated target variable;
// Algorithm 2 extracts the feature variables from the control loop's
// dependence graph and prunes the redundant (roll ≈ posX, Fig. 15) and
// unchanging (accX, Fig. 16) candidates. The surviving features feed a
// Q-learning model that learns to keep the car on the track.
package main

import (
	"fmt"
	"log"
	"time"

	autonomizer "github.com/autonomizer/autonomizer"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func main() {
	// Step 1: feature extraction over a profiled run (Algorithm 2 with
	// the paper's thresholds: prune duplicates and near-constants).
	game := torcs.New(1)
	rec := autonomizer.NewTraceRecorder()
	env.RunEpisode(game, func(e env.Env) int {
		rec.RecordAll(e.StateVars())
		return torcs.ScriptedPlayer(e)
	}, 400)
	report := autonomizer.FeaturesRL(torcs.DepGraph(), rec,
		torcs.TargetVars(), env.SortedVarNames(game), 0.05, 0.01)

	fmt.Println("Algorithm 2 on the TORCS control loop:")
	fmt.Printf("  features for steer: %v\n", report.Features["steer"])
	for _, pair := range report.PrunedRedundant {
		fmt.Printf("  pruned redundant:   %s ~ %s (Fig. 15: EucDist ≈ 0)\n", pair[1], pair[0])
	}
	fmt.Printf("  pruned unchanging:  %v (Fig. 16: variance <= 0.01)\n\n", report.PrunedUnchanging)

	// Step 2: train the steering model through the annotated loop.
	rt := autonomizer.New(autonomizer.Train, 3)
	if err := rt.Config(autonomizer.ModelSpec{
		Name: "Steer", Algo: autonomizer.QLearn, Actions: 3,
		Hidden: []int{64, 32}, LR: 1e-3, EpsilonDecaySteps: 8000,
		TargetSyncEvery: 150,
	}); err != nil {
		log.Fatal(err)
	}
	feats := report.Features["steer"]
	encode := func(e env.Env) []float64 {
		v := env.StateVector(e, feats)
		for i := range v {
			v[i] /= 10 // telemetry values into rough unit scale
		}
		return v
	}

	const trainSteps = 20000
	start := time.Now()
	game.Reset()
	rt.Checkpoint(game, 1<<20)
	pendReward := 0.0
	for step := 0; step < trainSteps; step++ {
		rt.Extract("STATE", encode(game)...)
		if err := rt.NNRL("Steer", "STATE", pendReward, false, "steerOut"); err != nil {
			log.Fatal(err)
		}
		action, err := rt.WriteBackAction("steerOut")
		if err != nil {
			log.Fatal(err)
		}
		reward, terminal := game.Step(action)
		pendReward = reward
		if terminal {
			if err := rt.Restore(game); err != nil {
				log.Fatal(err)
			}
			pendReward = 0
		}
	}
	fmt.Printf("trained %d steps in %v\n", trainSteps, time.Since(start).Round(time.Millisecond*100))

	// Step 3: drive with the learned model.
	policy := func(e env.Env) int {
		out, err := rt.Predict("Steer", encode(e))
		if err != nil {
			return 0
		}
		return stats.ArgMax(out)
	}
	agentScore, agentDone := env.AverageScore(torcs.New(1), policy, 5, 2000)
	refScore, refDone := env.AverageScore(torcs.New(1), torcs.ScriptedPlayer, 5, 2000)
	fmt.Printf("reference driver: %.0f%% of the track, finishes %.0f%% of runs\n", 100*refScore, 100*refDone)
	fmt.Printf("learned driver:   %.0f%% of the track, finishes %.0f%% of runs\n", 100*agentScore, 100*agentDone)
}
