// Canny autonomization: the paper's flagship supervised case study
// (Section 6.3, Fig. 11), end to end.
//
// The annotation below mirrors Fig. 11 line by line: the user marks the
// three target parameters (sigma, lo, hi); Algorithm 1 recommends the
// gradient-magnitude histogram as the feature for lo/hi and the image
// statistics for sigma; the runtime trains a model per annotation and
// the deployed build predicts good parameters for every new image on
// the fly.
package main

import (
	"fmt"
	"log"

	autonomizer "github.com/autonomizer/autonomizer"
	"github.com/autonomizer/autonomizer/internal/canny"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func main() {
	// Step 1: the user annotates the targets; Autonomizer recommends
	// features from the dynamic dependence graph of a profiled run.
	g := autonomizer.NewDepGraph()
	sample := imaging.GenerateScene(stats.NewRNG(7), imaging.SceneConfig{W: 32, H: 32})
	if _, err := canny.Detect(sample.Img, canny.DefaultParams(), g, nil); err != nil {
		log.Fatal(err)
	}
	ranked := autonomizer.FeaturesSL(g, canny.Inputs(), canny.Targets())
	for _, target := range canny.Targets() {
		if f, ok := autonomizer.SelectFeature(ranked[target], autonomizer.Min); ok {
			fmt.Printf("recommended feature for %-5s: %-8s (dependence distance %d)\n",
				target, f.Name, f.Dist)
		}
	}

	// Step 2: training run. The oracle (autotuning against ground
	// truth) provides the desirable parameter values per image.
	rt := autonomizer.New(autonomizer.Train, 11)
	if err := rt.Config(autonomizer.ModelSpec{ // au_config("MinNN", DNN, AdamOpt, 6, ...)
		Name: "MinNN", Algo: autonomizer.AdamOpt,
		Hidden: []int{48, 24}, LR: 3e-3, OutputActivation: "sigmoid",
	}); err != nil {
		log.Fatal(err)
	}

	train := imaging.GenerateCorpus(100, 48, imaging.SceneConfig{W: 32, H: 32, MaxNoise: 55})
	for _, sc := range train {
		var tr canny.Trace
		if _, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, &tr); err != nil {
			log.Fatal(err)
		}
		ideal, _ := canny.Oracle(sc)

		// au_extract("HIST", 32767, hist) — the Min feature.
		rt.Extract("HIST", stats.Normalize(tr.Hist)...)
		// The desirable outputs for this input (Section 3's "decisions
		// made by human users" recorded as the objective):
		rt.DB().Put("PARAMS", []float64{ideal.Sigma / 4, ideal.Lo, ideal.Hi})
		// au_NN("MinNN", "HIST", "PARAMS") — trains online and records
		// the example for offline fitting.
		if err := rt.NN("MinNN", "HIST", "PARAMS"); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := rt.Fit("MinNN", 60, 16); err != nil {
		log.Fatal(err)
	}

	// Step 3: production run on ten fresh images (the Fig. 12 setup).
	test := imaging.GenerateCorpus(2100, 10, imaging.SceneConfig{W: 32, H: 32, MaxNoise: 55})
	var baseSum, autoSum float64
	fmt.Println("\nimage  baseline  autonomized")
	for i, sc := range test {
		var tr canny.Trace
		if _, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, &tr); err != nil {
			log.Fatal(err)
		}
		baseResult, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		baseScore := canny.Score(baseResult, sc.Truth)

		rt.Extract("HIST", stats.Normalize(tr.Hist)...)
		if err := rt.NN("MinNN", "HIST", "OUT"); err != nil {
			log.Fatal(err)
		}
		var out [3]float64
		if _, err := rt.WriteBack("OUT", out[:]); err != nil { // au_write_back
			log.Fatal(err)
		}
		p := canny.Params{Sigma: out[0] * 4, Lo: out[1], Hi: out[2]}.Clamp()
		autoResult, err := canny.Detect(sc.Img, p, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		autoScore := canny.Score(autoResult, sc.Truth)

		fmt.Printf("%5d %9.3f %12.3f\n", i+1, baseScore, autoScore)
		baseSum += baseScore
		autoSum += autoScore
	}
	fmt.Printf("mean  %9.3f %12.3f  (%.0f%% improvement)\n",
		baseSum/10, autoSum/10, 100*(autoSum-baseSum)/baseSum)
}
