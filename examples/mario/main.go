// Mario autonomization: the paper's running example (Section 2, Fig. 2).
//
// The game loop below is annotated exactly as in Fig. 2: au_checkpoint
// before the loop, au_extract for the player and minion positions each
// iteration, au_serialize to combine them, au_NN with the reward and
// terminal flag, au_write_back into actionKey, and au_restore at end
// states. Model state survives every restore, so learning accumulates
// across Mario's many deaths.
package main

import (
	"fmt"
	"log"
	"time"

	autonomizer "github.com/autonomizer/autonomizer"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func main() {
	game := mario.New(1, mario.Options{})
	rt := autonomizer.New(autonomizer.Train, 9)

	// au_config("Mario", DNN, QLearn, 2, 256, 64) — Fig. 2 line 3
	// (scaled-down hidden layers for this demo's budget).
	if err := rt.Config(autonomizer.ModelSpec{
		Name: "Mario", Algo: autonomizer.QLearn, Actions: 5,
		Hidden: []int{64, 32}, LR: 1e-3,
		EpsilonDecaySteps: 20000, TargetSyncEvery: 150,
	}); err != nil {
		log.Fatal(err)
	}

	vec := func(g *mario.Game) []float64 {
		v := g.StateVars()
		return []float64{
			v["playerX"] / 212, v["playerY"] / 16, v["playerVX"] / 0.5, v["playerVY"] / 1.2,
			v["onGround"], v["minionDX"] / 40, v["minionDY"] / 4,
			v["ditchDist"] / 40, v["pipeDist"] / 40, v["objAhead"] / 3,
		}
	}

	// Evaluate the learned policy greedily against the scripted player.
	policy := func(e env.Env) int {
		out, err := rt.Predict("Mario", vec(e.(*mario.Game)))
		if err != nil {
			return 0
		}
		return stats.ArgMax(out)
	}

	const trainSteps = 50000
	start := time.Now()
	game.Reset()
	rt.Checkpoint(game, 1<<20) // au_checkpoint() — Fig. 2 line 27
	pendReward := 0.0
	episodeSteps, episodes := 0, 0
	bestScore := -1.0
	var bestParams []byte
	for step := 0; step < trainSteps; step++ {
		// au_extract(...) — Fig. 2 lines 9-10, 17, 21-22.
		v := vec(game)
		rt.Extract("PX", v[0])
		rt.Extract("PY", v[1])
		rt.Extract("VX", v[2])
		rt.Extract("VY", v[3])
		rt.Extract("OG", v[4])
		rt.Extract("MnX", v[5])
		rt.Extract("MnY", v[6])
		rt.Extract("DD", v[7])
		rt.Extract("PD", v[8])
		rt.Extract("OBJ", v[9])
		key := rt.Serialize("PX", "PY", "VX", "VY", "OG", "MnX", "MnY", "DD", "PD", "OBJ")

		// au_NN("Mario", au_serialize(...), reward, term, "output") —
		// Fig. 2 lines 40-43.
		if err := rt.NNRL("Mario", key, pendReward, false, "output"); err != nil {
			log.Fatal(err)
		}
		// au_write_back("output", 5, actionKey) — Fig. 2 line 44.
		actionKey, err := rt.WriteBackAction("output")
		if err != nil {
			log.Fatal(err)
		}
		reward, terminated := game.Step(actionKey) // act(actionKey)
		pendReward = reward
		episodeSteps++

		if terminated || episodeSteps > 1500 {
			episodes++
			if err := rt.Restore(game); err != nil { // au_restore() — line 48
				log.Fatal(err)
			}
			pendReward = 0
			episodeSteps = 0
		}
		// Keep the best evaluated snapshot, as the paper stops training
		// at the best competitive score.
		if (step+1)%2500 == 0 {
			score, _ := env.AverageScore(mario.New(1, mario.Options{}), policy, 2, 2000)
			if score > bestScore {
				bestScore = score
				if data, err := rt.SaveModel("Mario"); err == nil {
					bestParams = data
				}
			}
		}
	}
	if bestParams != nil {
		if err := rt.LoadModelParams("Mario", bestParams); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("trained for %d steps / %d episodes in %v\n",
		trainSteps, episodes, time.Since(start).Round(time.Millisecond*100))

	agentScore, agentSuccess := env.AverageScore(mario.New(1, mario.Options{}), policy, 5, 2000)
	playerScore, playerSuccess := env.AverageScore(mario.New(1, mario.Options{}), mario.ScriptedPlayer, 5, 2000)
	fmt.Printf("scripted player: progress %.0f%%, clears %.0f%%\n", 100*playerScore, 100*playerSuccess)
	fmt.Printf("trained agent:   progress %.0f%%, clears %.0f%%\n", 100*agentScore, 100*agentSuccess)
	if st, ok := rt.RLStats("Mario"); ok {
		fmt.Printf("replay trace: %d transitions, %d KB\n", st.ReplayLen, st.TraceBytes/1024)
	}
}
