// Benchmarks regenerating every table and figure of the paper's
// evaluation at test scale. Each benchmark runs the same harness the
// cmd/autonomizer CLI uses, with reduced budgets so `go test -bench=.`
// completes in minutes; the CLI (without -quick) runs the full-scale
// versions that EXPERIMENTS.md records.
//
// Custom metrics are attached via b.ReportMetric so benchmark output
// carries the experiment's headline numbers (scores, improvements),
// not just nanoseconds.
package autonomizer_test

import (
	"io"
	"testing"

	autonomizer "github.com/autonomizer/autonomizer"

	"github.com/autonomizer/autonomizer/internal/bench"
	"github.com/autonomizer/autonomizer/internal/canny"
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// BenchmarkTable1 regenerates the program-analysis statistics: nine
// subjects' dependence graphs, Algorithm 1/2 runs, and variable counts.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.BuildTable1(uint64(i + 1))
		if len(rows) != 9 {
			b.Fatalf("expected 9 rows, got %d", len(rows))
		}
		bench.RenderTable1(io.Discard, rows)
	}
}

// BenchmarkTable2 regenerates the model statistics (trace/model sizes
// and checkpoint costs) from quick SL and RL runs.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sl, err := bench.RunSLSuite(bench.SLSuiteConfig{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		rl, err := bench.RunRLSuite(bench.RLSuiteConfig{
			Quick: true, Seed: uint64(i + 1),
			Subjects: []*bench.RLSubject{bench.FlappySubject()},
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := bench.BuildTable2(sl, rl)
		bench.RenderTable2(io.Discard, rows)
		// The central Table 2 relationship: raw traces dwarf
		// internal-state traces.
		for _, r := range rows {
			if r.MinTrace > 0 && r.RawTrace < r.MinTrace {
				b.Errorf("%s: raw trace %d below Min/All trace %d", r.Program, r.RawTrace, r.MinTrace)
			}
		}
	}
}

// BenchmarkTable3SL regenerates the supervised half of Table 3 (quick
// scale) and reports the Min version's improvement over the baseline.
func BenchmarkTable3SL(b *testing.B) {
	var lastImprove float64
	for i := 0; i < b.N; i++ {
		results, err := bench.RunSLSuite(bench.SLSuiteConfig{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		bench.RenderTable3SL(io.Discard, results)
		total := 0.0
		for _, r := range results {
			total += r.Improvement(bench.PickMin)
		}
		lastImprove = total / float64(len(results))
	}
	b.ReportMetric(lastImprove, "mean-Min-improvement-%")
}

// BenchmarkTable3RL regenerates the interactive half of Table 3 at
// quick scale on Flappybird (the full five-game run is the CLI's job).
func BenchmarkTable3RL(b *testing.B) {
	var score float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunRLSuite(bench.RLSuiteConfig{
			Quick: true, Seed: uint64(i + 1),
			Subjects: []*bench.RLSubject{bench.FlappySubject()},
		})
		if err != nil {
			b.Fatal(err)
		}
		bench.RenderTable3RL(io.Discard, rows)
		score = rows[0].All.Score
	}
	b.ReportMetric(score, "All-score")
}

// BenchmarkFig12 regenerates the Canny per-input comparison.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSL(bench.CannySubject{}, bench.SLConfig{
			TrainN: 24, TestN: 10, Epochs: 12, Hidden: []int{32, 16}, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		bench.RenderFig12(io.Discard, res)
		if len(res.BaselinePer) != 10 {
			b.Fatalf("Fig. 12 needs 10 inputs, got %d", len(res.BaselinePer))
		}
	}
}

// BenchmarkFig13 regenerates the Canny learning curves.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSL(bench.CannySubject{}, bench.SLConfig{
			TrainN: 24, TestN: 6, Epochs: 15, Hidden: []int{32, 16}, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		bench.RenderFig13(io.Discard, res, 3)
		if len(res.Versions[bench.PickMin].Curve) < 3 {
			b.Fatal("curve too short")
		}
	}
}

// BenchmarkFig17 regenerates the TORCS curves (All / Manual / Raw) at
// quick scale.
func BenchmarkFig17(b *testing.B) {
	subject := bench.TORCSSubject()
	for i := 0; i < b.N; i++ {
		run := func(mode bench.InputMode, steps int) *bench.RLResult {
			res, err := bench.RunRL(subject, bench.RLConfig{
				Mode: mode, TrainSteps: steps, EvalEpisodes: 3,
				EpsilonDecaySteps: steps / 3, Seed: uint64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			return res
		}
		all := run(bench.InputAll, 6000)
		manual := run(bench.InputManual, 6000)
		raw := run(bench.InputRaw, 400)
		bench.RenderFig17(io.Discard, all, manual, raw)
	}
}

// BenchmarkMarioAllVsRaw is the Section 2 comparison: internal-state
// model vs DeepMind-style raw-pixel model under the same wall-clock
// budget.
func BenchmarkMarioAllVsRaw(b *testing.B) {
	subject := bench.MarioSubject()
	var allScore, rawScore float64
	for i := 0; i < b.N; i++ {
		all, err := bench.RunRL(subject, bench.RLConfig{
			Mode: bench.InputAll, TrainSteps: 8000, EvalEpisodes: 2,
			EpsilonDecaySteps: 4000, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		raw, err := bench.RunRL(subject, bench.RLConfig{
			Mode: bench.InputRaw, TrainSteps: 8000, EvalEpisodes: 2,
			EpsilonDecaySteps: 4000, Seed: uint64(i + 1),
			TrainWallClock: all.TrainTime,
		})
		if err != nil {
			b.Fatal(err)
		}
		allScore, rawScore = all.Score, raw.Score
	}
	b.ReportMetric(allScore, "All-score")
	b.ReportMetric(rawScore, "Raw-score")
}

// BenchmarkSelfTestCoverage regenerates the coverage case study at
// quick scale.
func BenchmarkSelfTestCoverage(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSelfTest(bench.SelfTestConfig{
			TrainSteps: 2000, PlayWindow: 300, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		cov = res.CoverageAgent
	}
	b.ReportMetric(100*cov, "coverage-%")
}

// BenchmarkAblationRanking isolates DESIGN.md decision #1: Algorithm
// 1's distance ranking versus picking the farthest feature. It reports
// both versions' scores on the same corpus; the ranked (Min) feature
// must not lose.
func BenchmarkAblationRanking(b *testing.B) {
	var minScore, rawScore float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSL(bench.CannySubject{}, bench.SLConfig{
			TrainN: 30, TestN: 8, Epochs: 25, Hidden: []int{32, 16}, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		minScore = res.Versions[bench.PickMin].Score
		rawScore = res.Versions[bench.PickRaw].Score
	}
	b.ReportMetric(minScore, "ranked-Min-score")
	b.ReportMetric(rawScore, "unranked-Raw-score")
}

// BenchmarkAblationPruning isolates DESIGN.md decision #2: Algorithm
// 2's ε₁ redundancy pruning. It compares the TORCS feature count with
// and without pruning; training cost scales with input width.
func BenchmarkAblationPruning(b *testing.B) {
	var pruned, unpruned float64
	for i := 0; i < b.N; i++ {
		game := torcs.New(uint64(i + 1))
		rec := trace.NewRecorder()
		env.RunEpisode(game, func(e env.Env) int {
			rec.RecordAll(e.StateVars())
			return torcs.ScriptedPlayer(e)
		}, 400)
		g := torcs.DepGraph()
		vars := env.SortedVarNames(game)
		with := extract.RL(g, rec, torcs.TargetVars(), vars, extract.RLConfig{Epsilon1: 0.05, Epsilon2: 0.01})
		without := extract.RL(g, rec, torcs.TargetVars(), vars, extract.RLConfig{Epsilon1: 0, Epsilon2: 0})
		pruned = float64(len(with.Features["steer"]))
		unpruned = float64(len(without.Features["steer"]))
		if pruned >= unpruned {
			b.Errorf("pruning removed nothing: %v vs %v", pruned, unpruned)
		}
	}
	b.ReportMetric(pruned, "features-with-pruning")
	b.ReportMetric(unpruned, "features-without-pruning")
}

// BenchmarkCannyDetect measures the raw subject cost that the Table 3
// exec-time overhead columns are relative to.
func BenchmarkCannyDetect(b *testing.B) {
	sc := imaging.GenerateScene(stats.NewRNG(1), imaging.SceneConfig{W: 32, H: 32})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractionSL measures Algorithm 1's cost on the
// Canny dependence graph.
func BenchmarkFeatureExtractionSL(b *testing.B) {
	g := dep.NewGraph()
	sc := imaging.GenerateScene(stats.NewRNG(1), imaging.SceneConfig{W: 32, H: 32})
	if _, err := canny.Detect(sc.Img, canny.DefaultParams(), g, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.SL(g, canny.Inputs(), canny.Targets())
	}
}

// BenchmarkPrimitiveExtract measures the au_extract fast path — the
// per-frame cost every autonomized loop pays.
func BenchmarkPrimitiveExtract(b *testing.B) {
	rt := autonomizerNewTrain(1)
	vals := []float64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Extract("STATE", vals...)
		if i%1024 == 0 {
			rt.DB().Reset("STATE") // keep the list from growing unboundedly
		}
	}
}

// BenchmarkPrimitiveNNRL measures one full annotated-loop iteration
// (extract + au_NN + write-back) against a trained 10-feature model —
// the "All" per-frame overhead of Table 3.
func BenchmarkPrimitiveNNRL(b *testing.B) {
	rt := autonomizerNewTrain(2)
	if err := rt.Config(autonomizerModelSpec()); err != nil {
		b.Fatal(err)
	}
	state := make([]float64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Extract("STATE", state...)
		if err := rt.NNRL("M", "STATE", 0.5, false, "out"); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.WriteBackAction("out"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures the in-process ⟨σ, π⟩ snapshot
// cost (the KVM-scale figures in Table 2 come from the cost model, not
// this measured copy).
func BenchmarkCheckpointRestore(b *testing.B) {
	rt := autonomizerNewTrain(3)
	prog := &benchProg{vals: make([]float64, 4096)}
	rt.Extract("STATE", make([]float64, 1024)...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Checkpoint(prog, 8*4096)
		if err := rt.Restore(prog); err != nil {
			b.Fatal(err)
		}
		rt.Checkpoints().Pop()
	}
}

type benchProg struct{ vals []float64 }

func (p *benchProg) Snapshot() any {
	return append([]float64(nil), p.vals...)
}

func (p *benchProg) Restore(s any) {
	p.vals = append([]float64(nil), s.([]float64)...)
}

func autonomizerNewTrain(seed uint64) *autonomizer.Runtime {
	return autonomizer.New(autonomizer.Train, seed)
}

func autonomizerModelSpec() autonomizer.ModelSpec {
	return autonomizer.ModelSpec{
		Name: "M", Algo: autonomizer.QLearn, Actions: 3, Hidden: []int{64, 32},
	}
}
