package autonomizer_test

import (
	"math"
	"testing"

	autonomizer "github.com/autonomizer/autonomizer"
)

// prog is a trivial Snapshotter host program.
type prog struct{ x float64 }

func (p *prog) Snapshot() any    { return p.x }
func (p *prog) Restore(snap any) { p.x = snap.(float64) }

// TestPublicAPISupervisedFlow exercises the documented SL lifecycle
// end-to-end through the facade only.
func TestPublicAPISupervisedFlow(t *testing.T) {
	rt := autonomizer.New(autonomizer.Train, 1)
	err := rt.Config(autonomizer.ModelSpec{
		Name: "SigmaNN", Type: autonomizer.DNN, Algo: autonomizer.AdamOpt,
		Hidden: []int{8}, LR: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		x := float64(i%10) / 10
		if err := rt.RecordExample("SigmaNN", []float64{x}, []float64{x * 3}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Fit("SigmaNN", 30, 16); err != nil {
		t.Fatal(err)
	}
	out, err := rt.Predict("SigmaNN", []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 0.2 {
		t.Errorf("Predict(0.5) = %v, want ~1.5", out[0])
	}
}

// TestPublicAPIRLFlow exercises the documented RL lifecycle including
// checkpoint/restore.
func TestPublicAPIRLFlow(t *testing.T) {
	rt := autonomizer.New(autonomizer.Train, 2)
	err := rt.Config(autonomizer.ModelSpec{
		Name: "Mario", Algo: autonomizer.QLearn, Hidden: []int{8}, Actions: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &prog{}
	rt.Checkpoint(p, 8)
	for step := 0; step < 30; step++ {
		rt.Extract("PX", p.x)
		rt.Extract("PY", 1)
		key := rt.Serialize("PX", "PY")
		term := p.x > 5
		if err := rt.NNRL("Mario", key, 1, term, "output"); err != nil {
			t.Fatal(err)
		}
		a, err := rt.WriteBackAction("output")
		if err != nil {
			t.Fatal(err)
		}
		if a < 0 || a > 2 {
			t.Fatalf("action %d out of range", a)
		}
		if term {
			if err := rt.Restore(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		p.x++
	}
	if st, ok := rt.RLStats("Mario"); !ok || st.Steps == 0 {
		t.Errorf("RLStats = %+v, %v", st, ok)
	}
}

// TestPublicAPIFeatureExtraction exercises both extraction algorithms
// through the facade.
func TestPublicAPIFeatureExtraction(t *testing.T) {
	g := autonomizer.NewDepGraph()
	g.MarkInput("image")
	g.Def("sImg", "image", "sigma")
	g.Def("hist", "sImg")
	g.Def("result", "hist", "lo")

	sl := autonomizer.FeaturesSL(g, []string{"image"}, []string{"lo"})
	if len(sl["lo"]) == 0 || sl["lo"][0].Name != "hist" {
		t.Errorf("SL features = %v", sl["lo"])
	}
	if f, ok := autonomizer.SelectFeature(sl["lo"], autonomizer.Min); !ok || f.Name != "hist" {
		t.Errorf("SelectFeature Min = %v, %v", f, ok)
	}
	if f, ok := autonomizer.SelectFeature(sl["lo"], autonomizer.Raw); !ok || f.Name != "image" {
		t.Errorf("SelectFeature Raw = %v, %v", f, ok)
	}

	rec := autonomizer.NewTraceRecorder()
	g2 := autonomizer.NewDepGraph()
	g2.Def("pos", "pos", "act")
	g2.Def("collide", "pos", "enemy")
	g2.Def("dup", "pos")
	g2.Def("collide", "dup")
	for _, v := range []string{"pos", "enemy", "dup", "collide", "act"} {
		g2.Use("loop", v)
	}
	for i := 0; i < 20; i++ {
		rec.Record("pos", float64(i))
		rec.Record("dup", float64(i)*2+1)
		rec.Record("enemy", math.Sin(float64(i)))
	}
	rl := autonomizer.FeaturesRL(g2, rec, []string{"act"}, []string{"pos", "enemy", "dup"}, 1e-6, 1e-9)
	feats := rl.Features["act"]
	if len(feats) != 2 {
		t.Errorf("RL features = %v, want pos+enemy (dup pruned)", feats)
	}
}
