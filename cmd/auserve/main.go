// Command auserve is the Autonomizer model server: it loads trained
// model snapshots and serves the query-side primitives over HTTP,
// coalescing concurrent Predict traffic into minibatches on the
// parallel engine (see internal/serve and DESIGN.md §5d).
//
// Usage:
//
//	auserve -snapshot models.ausn                 serve a snapshot file
//	auserve -demo                                 serve a built-in demo model
//	auserve -demo -snapshot demo.ausn             also export the demo snapshot (enables source reloads)
//
// Endpoints: POST /v1/predict, POST /v1/act, POST /v1/observe,
// GET /v1/models, POST /models/{name}/reload, GET /healthz (?deep=1
// adds readiness), GET /statusz, plus the obs telemetry surface
// (/metrics, /debug/vars, /debug/pprof, /debug/spans).
//
// Flags:
//
//	-addr :8080         listen address
//	-snapshot PATH      snapshot file to serve (and reload from)
//	-demo               train and install a small deterministic demo model
//	-max-batch N        batch size cap (default 32)
//	-max-delay D        batching window (default 2ms)
//	-queue N            per-model queue depth; overflow sheds 429 (default 256)
//	-replicas N         predictor replicas per model (default: engine width)
//	-drift-threshold T  rolling MSE above which a model turns not-ready (default: monitor-only)
//	-drift-window D     rolling window drift loss is averaged over (default 1m)
//	-log-format F       text (default) or json
//	-log-level L        debug, info (default), warn, error
//	-trace              record per-request spans (see /debug/spans)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/serve"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapshot := flag.String("snapshot", "", "model snapshot file to serve (written first when -demo is set and the file is absent)")
	demo := flag.Bool("demo", false, "train and install a small deterministic demo model")
	maxBatch := flag.Int("max-batch", 0, "max requests coalesced into one batch (default 32)")
	maxDelay := flag.Duration("max-delay", 0, "batching window the first request of a batch waits (default 2ms)")
	queue := flag.Int("queue", 0, "per-model queue depth before load shedding (default 256)")
	replicas := flag.Int("replicas", 0, "predictor replicas per model (default: parallel engine width)")
	driftThreshold := flag.Float64("drift-threshold", 0, "rolling drift MSE above which a model flips /healthz?deep=1 not-ready (0: monitor-only, or AUTONOMIZER_DRIFT_THRESHOLD)")
	driftWindow := flag.Duration("drift-window", 0, "rolling window drift loss is averaged over (default 1m)")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text|json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	traceSpans := flag.Bool("trace", false, "record per-request spans (exported on /debug/spans)")
	flag.Parse()

	if err := obs.ConfigureLog(*logFormat, os.Stderr); err != nil {
		obs.Logger().Error("bad -log-format", "err", err)
		os.Exit(2)
	}
	if err := obs.SetLogLevel(*logLevel); err != nil {
		obs.Logger().Error("bad -log-level", "err", err)
		os.Exit(2)
	}
	obs.SetTracing(*traceSpans)
	log := obs.With("component", "auserve")
	if !*demo && *snapshot == "" {
		log.Error("nothing to serve: pass -snapshot and/or -demo")
		os.Exit(2)
	}

	// The batch-size histogram and queue gauges are the whole point of
	// running a server; telemetry is always on here.
	reg := obs.Enable()
	reg.PublishExpvar()
	srv := serve.NewServer(serve.Config{
		MaxBatch:   *maxBatch,
		MaxDelay:   *maxDelay,
		QueueDepth: *queue,
		Replicas:   *replicas,
		Source:     snapshotSource(*snapshot),
		Registry:   reg,
		Logger:     log,

		DriftThreshold: *driftThreshold,
		DriftWindow:    *driftWindow,
	})
	defer srv.Close()

	if *demo {
		if err := installDemo(srv, *snapshot); err != nil {
			log.Error("demo model setup failed", "err", err)
			os.Exit(1)
		}
	}
	if *snapshot != "" {
		if n, err := loadSnapshotFile(srv, *snapshot); err != nil {
			// With -demo the snapshot may legitimately not pre-exist; the
			// demo installer has already written it in that case.
			log.Error("snapshot load failed", "path", *snapshot, "err", err)
			os.Exit(1)
		} else {
			log.Info("snapshot loaded", "path", *snapshot, "models", n)
		}
	}

	mux := http.NewServeMux()
	obsH := obs.Handler()
	mux.Handle("/metrics", obsH)
	mux.Handle("/debug/", obsH)
	mux.Handle("/", srv.Handler())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()

	log.Info("serving", "addr", *addr, "models", len(srv.Models()))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
	log.Info("shut down")
}

// snapshotSource wires the snapshot file in as the hot-reload source,
// so POST /models/{name}/reload with an empty body re-reads it.
func snapshotSource(path string) serve.Source {
	if path == "" {
		return nil
	}
	return serve.FileSource(path)
}

// loadSnapshotFile installs every model of the snapshot file.
func loadSnapshotFile(srv *serve.Server, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return srv.LoadSnapshot(f)
}

// demoSpec is the demo model's serving spec: a small supervised DNN
// (4 inputs, two hidden layers, 2 outputs).
var demoSpec = core.ModelSpec{Name: "demo", Algo: core.AdamOpt, Hidden: []int{16, 8}, LR: 0.01}

// installDemo trains the deterministic demo model (fixed seeds, fixed
// synthetic regression task), installs it, and — when a snapshot path
// was given and the file does not exist yet — exports it so source
// reloads and external clients have a snapshot on disk.
func installDemo(srv *serve.Server, snapshotPath string) error {
	data, err := trainDemo()
	if err != nil {
		return err
	}
	if _, err := srv.Install("demo", demoSpec, data); err != nil {
		return err
	}
	if snapshotPath == "" {
		return nil
	}
	if _, err := os.Stat(snapshotPath); err == nil {
		return nil // pre-existing snapshot wins; LoadSnapshot will read it
	}
	f, err := os.Create(snapshotPath)
	if err != nil {
		return fmt.Errorf("auserve: create snapshot: %w", err)
	}
	defer f.Close()
	return serve.WriteSnapshot(f, []serve.SnapshotModel{{Name: "demo", Spec: demoSpec, Data: data}})
}

// trainDemo fits the demo model on a synthetic task: predict
// [x0+x1, x2*x3] from 4 uniform inputs. Everything is seeded, so every
// auserve process serves bit-identical demo weights.
func trainDemo() ([]byte, error) {
	rt := core.NewRuntimeWith(core.Train, core.WithSeed(42), core.WithMetrics(nil))
	if err := rt.ConfigCtx(context.Background(), demoSpec); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(43)
	for i := 0; i < 512; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if err := rt.RecordExample("demo", x, []float64{x[0] + x[1], x[2] * x[3]}); err != nil {
			return nil, err
		}
	}
	if _, err := rt.FitCtx(context.Background(), "demo", 10, 32); err != nil {
		return nil, err
	}
	return rt.SaveModel("demo")
}
