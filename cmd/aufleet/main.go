// Command aufleet runs a sharded auserve fleet behind one endpoint: a
// router that consistent-hashes model names across N backends, and —
// optionally — a supervisor that spawns and babysits those backends as
// child processes (restart with exponential backoff, crash-loop
// detection). The router's HTTP surface is endpoint-compatible with a
// single auserve, so clients point autonomizer.Dial at it unchanged
// (see internal/fleet and DESIGN.md §5i).
//
// Usage:
//
//	aufleet -backends http://h1:8080,http://h2:8080     route over external backends
//	aufleet -spawn 3 -worker 'auserve -demo -addr {addr}'  spawn+supervise 3 local workers
//
// Flags:
//
//	-addr :8090          router listen address
//	-backends LIST       comma-separated backend base URLs (router-only mode)
//	-spawn N             spawn N supervised workers on 127.0.0.1
//	-worker CMD          worker command template; {addr}, {port} and {index}
//	                     are substituted per worker (default "auserve -addr {addr}")
//	-port-base P         first spawned worker port (default 8100)
//	-vnodes N            virtual nodes per backend on the hash ring (default 64)
//	-health-interval D   per-backend deep-health probe cadence (default 250ms)
//	-fail-after N        consecutive probe failures before a backend is marked
//	                     down and its models rehash away (default 2)
//	-log-format F        text (default) or json
//	-log-level L         debug, info (default), warn, error
//	-trace               record per-request spans (see /debug/spans)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/autonomizer/autonomizer/internal/fleet"
	"github.com/autonomizer/autonomizer/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8090", "router listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (router-only mode)")
	spawn := flag.Int("spawn", 0, "spawn N supervised auserve workers on 127.0.0.1")
	workerTmpl := flag.String("worker", "auserve -addr {addr}", "worker command template ({addr}, {port}, {index} substituted)")
	portBase := flag.Int("port-base", 8100, "first spawned worker port")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (default 64)")
	healthInterval := flag.Duration("health-interval", 0, "deep-health probe cadence per backend (default 250ms)")
	failAfter := flag.Int("fail-after", 0, "consecutive probe failures before a backend is marked down (default 2)")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text|json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	traceSpans := flag.Bool("trace", false, "record per-request spans (exported on /debug/spans)")
	flag.Parse()

	if err := obs.ConfigureLog(*logFormat, os.Stderr); err != nil {
		obs.Logger().Error("bad -log-format", "err", err)
		os.Exit(2)
	}
	if err := obs.SetLogLevel(*logLevel); err != nil {
		obs.Logger().Error("bad -log-level", "err", err)
		os.Exit(2)
	}
	obs.SetTracing(*traceSpans)
	log := obs.With("component", "aufleet")

	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 && *spawn < 1 {
		log.Error("nothing to route: pass -backends and/or -spawn")
		os.Exit(2)
	}

	// Spawned workers join the ring next to any external backends. The
	// supervisor owns only their lifecycle; the router discovers their
	// health (including post-restart recovery) through its own probes.
	var sup *fleet.Supervisor
	if *spawn > 0 {
		sup = fleet.NewSupervisor(fleet.SupervisorConfig{
			Logger: log,
			OnStateChange: func(name string, st fleet.WorkerState) {
				if st == fleet.WorkerDead {
					log.Error("worker crash-looped into dead state; its models serve from the rehashed survivors", "worker", name)
				}
			},
		})
		defer sup.Close()
		for i := 0; i < *spawn; i++ {
			port := *portBase + i
			hostport := fmt.Sprintf("127.0.0.1:%d", port)
			argv, err := workerCommand(*workerTmpl, hostport, port, i)
			if err != nil {
				log.Error("bad -worker template", "err", err)
				os.Exit(2)
			}
			name := fmt.Sprintf("worker-%d", i)
			if err := sup.Start(fleet.WorkerSpec{Name: name, Command: argv}); err != nil {
				log.Error("worker spawn failed", "worker", name, "err", err)
				os.Exit(1)
			}
			urls = append(urls, "http://"+hostport)
		}
	}

	router := fleet.NewRouter(fleet.Config{
		Backends:       urls,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		FailAfter:      *failAfter,
		Logger:         log,
		Supervisor:     sup,
	})
	router.Start()
	defer router.Close()

	mux := http.NewServeMux()
	obsH := obs.Handler()
	mux.Handle("/metrics", obsH)
	mux.Handle("/debug/", obsH)
	mux.Handle("/", router.Handler())

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()

	log.Info("routing", "addr", *addr, "backends", len(urls), "spawned", *spawn)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("router failed", "err", err)
		os.Exit(1)
	}
	log.Info("shut down")
}

// workerCommand expands the -worker template for one worker: {addr} →
// host:port, {port} → port, {index} → worker index, then splits on
// whitespace (worker templates are argv lists, not shell scripts — no
// quoting or expansion happens).
func workerCommand(tmpl, hostport string, port, index int) ([]string, error) {
	s := strings.NewReplacer(
		"{addr}", hostport,
		"{port}", fmt.Sprint(port),
		"{index}", fmt.Sprint(index),
	).Replace(tmpl)
	argv := strings.Fields(s)
	if len(argv) == 0 {
		return nil, fmt.Errorf("empty worker command")
	}
	return argv, nil
}
