// Command replay plays one episode of any RL subject and renders it —
// the reproduction's analog of the paper's demo videos. Frames go to
// stdout as ASCII art and optionally to disk as PGM images.
//
// Usage:
//
//	replay -game mario                 # ASCII playback with the scripted player
//	replay -game torcs -policy random  # random controller
//	replay -game flappy -frames /tmp/f # also dump PGM frames
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"github.com/autonomizer/autonomizer/internal/bench"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

var subjects = map[string]func() *bench.RLSubject{
	"flappy":   bench.FlappySubject,
	"mario":    bench.MarioSubject,
	"arkanoid": bench.ArkanoidSubject,
	"torcs":    bench.TORCSSubject,
	"breakout": bench.BreakoutSubject,
}

func main() {
	game := flag.String("game", "mario", "flappy|mario|arkanoid|torcs|breakout")
	policyName := flag.String("policy", "scripted", "scripted|random")
	hunt := flag.Bool("hunt", false, "run the armed-bug hunt instead of a playback (mario only)")
	steps := flag.Int("steps", 300, "maximum steps to play")
	every := flag.Int("every", 10, "render every Nth frame")
	framesDir := flag.String("frames", "", "directory to write PGM frames into")
	seed := flag.Uint64("seed", 1, "game seed")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text|json")
	flag.Parse()

	// All diagnostics go through the structured logger so that
	// -log-format json leaves no stray lines on stderr; playback frames
	// stay on stdout.
	if err := obs.ConfigureLog(*logFormat, os.Stderr); err != nil {
		obs.Logger().Error("bad -log-format", "err", err)
		os.Exit(2)
	}
	log := obs.With("cmd", "replay")

	if *hunt {
		res := bench.RunBugHunt(*seed, 200000)
		if res.Found {
			fmt.Printf("CRASH after %d steps:\n  %s\n", res.Steps, res.Crash)
		} else {
			fmt.Printf("no crash within %d steps; try another -seed\n", res.Steps)
		}
		return
	}

	mk, ok := subjects[*game]
	if !ok {
		log.Error("unknown game", "game", *game)
		os.Exit(2)
	}
	subject := mk()
	e := subject.NewEnv(*seed)

	var policy env.Policy
	switch *policyName {
	case "scripted":
		policy = subject.Player
	case "random":
		rng := stats.NewRNG(*seed + 1)
		policy = func(env.Env) int { return rng.Intn(subject.Actions) }
	default:
		log.Error("unknown policy", "policy", *policyName)
		os.Exit(2)
	}

	if *framesDir != "" {
		if err := os.MkdirAll(*framesDir, 0o755); err != nil {
			log.Error("cannot create frames directory", "dir", *framesDir, "err", err)
			os.Exit(1)
		}
	}

	// SIGINT/SIGTERM stops the playback at the next frame boundary and
	// still prints the closing summary; a second signal kills outright.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	e.Reset()
	total := 0.0
	for step := 0; step < *steps; step++ {
		if ctx.Err() != nil {
			fmt.Printf("--- interrupted at step %d: score %.3f, total reward %.1f ---\n",
				step, e.Score(), total)
			break
		}
		if step%*every == 0 {
			fmt.Printf("--- %s step %d  score %.3f  reward %.1f ---\n", subject.Name, step, e.Score(), total)
			fmt.Print(imaging.ASCII(e.Screen(), 2, 2))
		}
		if *framesDir != "" {
			path := filepath.Join(*framesDir, fmt.Sprintf("frame-%05d.pgm", step))
			if err := writeFrame(path, e.Screen()); err != nil {
				log.Error("cannot write frame", "path", path, "err", err)
				os.Exit(1)
			}
		}
		r, terminal := e.Step(policy(e))
		total += r
		if terminal {
			fmt.Printf("--- terminal at step %d: score %.3f, success %v, total reward %.1f ---\n",
				step+1, e.Score(), e.Success(), total)
			break
		}
	}
	if *framesDir != "" {
		fmt.Printf("frames written to %s\n", *framesDir)
	}
}

// writeFrame writes one screen to disk as a binary PGM image.
func writeFrame(path string, img *imaging.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return imaging.WritePGM(f, img)
}
