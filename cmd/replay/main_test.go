package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/autonomizer/autonomizer/internal/imaging"
)

func TestSubjectsMapComplete(t *testing.T) {
	for _, name := range []string{"flappy", "mario", "arkanoid", "torcs", "breakout"} {
		mk, ok := subjects[name]
		if !ok {
			t.Errorf("missing subject %q", name)
			continue
		}
		s := mk()
		e := s.NewEnv(1)
		if e.Screen() == nil || s.Player == nil {
			t.Errorf("%s: incomplete subject", name)
		}
	}
}

func TestWriteFrame(t *testing.T) {
	dir := t.TempDir()
	img := imaging.NewImage(8, 8)
	img.Set(3, 3, 255)
	path := filepath.Join(dir, "f.pgm")
	if err := writeFrame(path, img); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := imaging.ReadPGM(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(3, 3) != 255 {
		t.Error("frame round trip lost data")
	}
	if err := writeFrame(filepath.Join(dir, "no/such/dir/f.pgm"), img); err == nil {
		t.Error("writing into a missing directory succeeded")
	}
}
