// Command autonomizer regenerates the paper's evaluation: every table
// and figure of "Programming Support for Autonomizing Software" (PLDI
// 2019), reproduced on the Go reimplementation.
//
// Usage:
//
//	autonomizer table1            program-analysis statistics
//	autonomizer table2            model statistics (runs the SL+RL suites)
//	autonomizer table3            effectiveness (SL and RL halves)
//	autonomizer fig12             Canny per-input scores
//	autonomizer fig13             Canny score-vs-epoch curves
//	autonomizer fig17             TORCS driving-score curves (All/Manual/Raw)
//	autonomizer coverage          self-testing case study + bug hunt
//	autonomizer demo              quick end-to-end demonstration
//	autonomizer serve             exercise the runtime, then serve telemetry until interrupted
//	autonomizer all               everything above
//
// Flags:
//
//	-quick              smaller budgets (seconds instead of minutes)
//	-seed N             experiment seed (default 1)
//	-telemetry :PORT    serve /metrics, /debug/vars and /debug/pprof on this address
//	-log-format F       diagnostic log format: text (default) or json
//	-log-level L        minimum log level: debug, info (default), warn, error
//	-trace              record per-primitive spans (see /debug/spans)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/bench"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/parallel"
)

func main() {
	quick := flag.Bool("quick", false, "run with reduced budgets")
	seed := flag.Uint64("seed", 1, "experiment seed")
	telemetry := flag.String("telemetry", "", "address to serve /metrics, /debug/vars and /debug/pprof on (e.g. :9090)")
	logFormat := flag.String("log-format", "text", "diagnostic log format: text|json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	traceSpans := flag.Bool("trace", false, "record per-primitive spans (exported on /debug/spans)")
	walDir := flag.String("wal", "", "directory for durable WAL state (train/resume verbs)")
	fitEpochs := flag.Int("fit-epochs", 8, "epochs for the train verb's fit job")
	fitBatch := flag.Int("fit-batch", 8, "minibatch size for the train verb's fit job")
	fitExamples := flag.Int("fit-examples", 256, "dataset size for the train verb's fit job")
	ckptEvery := flag.Int("ckpt-every", 1, "journal a resumable checkpoint every N minibatches")
	crashAfter := flag.Int("crash-after-batches", 0, "SIGKILL self after N durable checkpoints (crash-recovery harness)")
	flag.Usage = usage
	flag.Parse()
	if err := obs.ConfigureLog(*logFormat, os.Stderr); err != nil {
		obs.Logger().Error("bad -log-format", "err", err)
		os.Exit(2)
	}
	if err := obs.SetLogLevel(*logLevel); err != nil {
		obs.Logger().Error("bad -log-level", "err", err)
		os.Exit(2)
	}
	obs.SetTracing(*traceSpans)
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	log := obs.With("cmd", cmd)

	// First SIGINT/SIGTERM cancels the context: suites stop at the next
	// minibatch/step boundary and flush whatever tables they completed.
	// A second signal kills the process the usual way (stop() restores
	// default signal handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -telemetry enables the metrics registry BEFORE any runtime or
	// optimizer is constructed (instruments are resolved at
	// construction), publishes it on expvar, and serves the endpoints
	// next to the workload.
	if *telemetry != "" {
		reg := obs.Enable()
		reg.PublishExpvar()
		go func() {
			if err := obs.Serve(ctx, *telemetry); err != nil {
				log.Error("telemetry server failed", "addr", *telemetry, "err", err)
			}
		}()
		log.Info("telemetry listening", "addr", *telemetry,
			"endpoints", "/metrics /debug/vars /debug/pprof /debug/spans")
	}

	start := time.Now()
	var err error
	switch cmd {
	case "table1":
		err = runTable1(*seed)
	case "table2":
		err = runTable2(ctx, *quick, *seed)
	case "table3":
		err = runTable3(ctx, *quick, *seed)
	case "fig12", "fig13":
		err = runCannyFigs(ctx, cmd, *quick, *seed)
	case "fig17":
		err = runFig17(ctx, *quick, *seed)
	case "coverage":
		err = runCoverage(*quick, *seed)
	case "ablation":
		err = runAblation(ctx, *quick, *seed)
	case "depgraph":
		if flag.NArg() < 2 {
			log.Error("usage: autonomizer depgraph <subject>")
			os.Exit(2)
		}
		err = runDepGraph(flag.Arg(1), *seed)
	case "demo":
		err = runDemo(ctx, *seed)
	case "train", "resume":
		err = runDurable(ctx, log, durableConfig{
			dir:        *walDir,
			seed:       *seed,
			epochs:     *fitEpochs,
			batch:      *fitBatch,
			examples:   *fitExamples,
			ckptEvery:  *ckptEvery,
			crashAfter: *crashAfter,
			enqueue:    cmd == "train",
		})
	case "serve":
		if *telemetry == "" {
			log.Error("serve needs -telemetry ADDR to have endpoints to serve")
			os.Exit(2)
		}
		err = runServe(ctx, log, *seed)
	case "all":
		for _, c := range []func() error{
			func() error { return runTable1(*seed) },
			func() error { return runTable3(ctx, *quick, *seed) },
			func() error { return runTable2(ctx, *quick, *seed) },
			func() error { return runCannyFigs(ctx, "fig12+fig13", *quick, *seed) },
			func() error { return runFig17(ctx, *quick, *seed) },
			func() error { return runCoverage(*quick, *seed) },
		} {
			if err = c(); err != nil {
				break
			}
			fmt.Println()
		}
	default:
		log.Error("unknown command", "cmd", cmd)
		usage()
		os.Exit(2)
	}
	if errors.Is(err, auerr.ErrCanceled) {
		log.Warn("interrupted — partial results above",
			"after", time.Since(start).Round(time.Millisecond*100))
		os.Exit(130)
	}
	if err != nil {
		log.Error("command failed", "err", err)
		os.Exit(1)
	}
	log.Info("completed", "in", time.Since(start).Round(time.Millisecond*100))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: autonomizer [-quick] [-seed N] <command>

commands:
  table1     program-analysis statistics (paper Table 1)
  table2     model statistics (paper Table 2)
  table3     effectiveness comparison (paper Table 3)
  fig12      Canny per-input scores (paper Fig. 12)
  fig13      Canny score vs epochs (paper Fig. 13)
  fig17      TORCS driving curves (paper Fig. 17)
  coverage   self-testing case study + bug hunt (paper Section 2)
  ablation   design-choice ablations (feature ranking, trace pruning)
  depgraph   dump a subject's dynamic dependence graph as Graphviz DOT
  demo       quick end-to-end demonstration
  serve      exercise every primitive once, then serve telemetry until interrupted
  train      enqueue a fit job into the durable -wal queue and run it to completion
  resume     drain the durable -wal queue, resuming any interrupted fit from its checkpoint
  all        run everything

network model serving (batched inference over HTTP) is the separate
auserve command; see cmd/auserve.`)
}

func runTable1(seed uint64) error {
	bench.RenderTable1(os.Stdout, bench.BuildTable1(seed))
	return nil
}

func slSuite(ctx context.Context, quick bool, seed uint64) ([]*bench.SLResult, error) {
	return bench.RunSLSuiteCtx(ctx, bench.SLSuiteConfig{Quick: quick, Seed: seed})
}

func rlSuite(ctx context.Context, quick bool, seed uint64) ([]bench.Table3RLRow, error) {
	return bench.RunRLSuiteCtx(ctx, bench.RLSuiteConfig{Quick: quick, Seed: seed})
}

func runTable2(ctx context.Context, quick bool, seed uint64) error {
	sl, err := slSuite(ctx, quick, seed)
	if err != nil {
		return err
	}
	rl, err := rlSuite(ctx, quick, seed)
	if err != nil && !errors.Is(err, auerr.ErrCanceled) {
		return err
	}
	// On interrupt, build the table from whatever completed.
	bench.RenderTable2(os.Stdout, bench.BuildTable2(sl, rl))
	return err
}

func runTable3(ctx context.Context, quick bool, seed uint64) error {
	sl, err := slSuite(ctx, quick, seed)
	if len(sl) > 0 {
		bench.RenderTable3SL(os.Stdout, sl)
	}
	if err != nil {
		return err
	}
	fmt.Println()
	rl, err := rlSuite(ctx, quick, seed)
	if len(rl) > 0 {
		bench.RenderTable3RL(os.Stdout, rl)
	}
	return err
}

func runCannyFigs(ctx context.Context, which string, quick bool, seed uint64) error {
	cfg := bench.SLConfig{Seed: seed, TrainN: 60, TestN: 10, Epochs: 60, Hidden: []int{64, 32}}
	if quick {
		cfg.TrainN, cfg.TestN, cfg.Epochs = 24, 10, 15
		cfg.Hidden = []int{32, 16}
	}
	res, err := bench.RunSLCtx(ctx, bench.CannySubject{}, cfg)
	if err != nil {
		return err
	}
	if which != "fig13" {
		bench.RenderFig12(os.Stdout, res)
	}
	if which != "fig12" {
		fmt.Println()
		bench.RenderFig13(os.Stdout, res, 3)
	}
	return nil
}

func runFig17(ctx context.Context, quick bool, seed uint64) error {
	subject := bench.TORCSSubject()
	run := func(mode bench.InputMode, wall time.Duration) (*bench.RLResult, error) {
		cfg := bench.TunedRLConfig(subject, mode, wall)
		cfg.Seed = seed
		// Disable early stopping so the full curves render, as in the
		// paper's figure.
		cfg.NoEarlyStop = true
		cfg.EvalEpisodes = 5
		cfg.EvalEvery = cfg.TrainSteps / 20
		if quick {
			cfg.TrainSteps = 6000
			cfg.EpsilonDecaySteps = 3000
			cfg.EvalEvery = 500
		}
		return bench.RunRLCtx(ctx, subject, cfg)
	}
	all, err := run(bench.InputAll, 0)
	if err != nil {
		return err
	}
	manual, err := run(bench.InputManual, 0)
	if err != nil {
		return err
	}
	raw, err := run(bench.InputRaw, all.TrainTime+manual.TrainTime)
	if err != nil {
		return err
	}
	bench.RenderFig17(os.Stdout, all, manual, raw)
	return nil
}

func runCoverage(quick bool, seed uint64) error {
	cfg := bench.SelfTestConfig{Seed: seed}
	huntSteps := 150000
	if quick {
		cfg.TrainSteps = 4000
		cfg.PlayWindow = 400
		huntSteps = 30000
	}
	res, err := bench.RunSelfTest(cfg)
	if err != nil {
		return err
	}
	hunt := bench.RunBugHunt(seed, huntSteps)
	bench.RenderSelfTest(os.Stdout, res, hunt)
	return nil
}

func runAblation(ctx context.Context, quick bool, seed uint64) error {
	// Ablation 1: Algorithm 1's distance ranking. Min vs Raw on the
	// same Canny corpus isolates the ranking's contribution.
	cfg := bench.SLConfig{Seed: seed, TrainN: 60, TestN: 10, Epochs: 60, Hidden: []int{64, 32}}
	if quick {
		cfg.TrainN, cfg.TestN, cfg.Epochs = 24, 8, 15
		cfg.Hidden = []int{32, 16}
	}
	res, err := bench.RunSLCtx(ctx, bench.CannySubject{}, cfg)
	if err != nil {
		return err
	}
	min, raw := res.Versions[bench.PickMin], res.Versions[bench.PickRaw]
	fmt.Println("Ablation 1: Algorithm 1 distance ranking (Canny)")
	fmt.Printf("  ranked (Min):   score %.3f, %d inputs, train %v\n",
		min.Score, min.InputSize, min.TrainTime.Round(time.Millisecond))
	fmt.Printf("  unranked (Raw): score %.3f, %d inputs, train %v\n",
		raw.Score, raw.InputSize, raw.TrainTime.Round(time.Millisecond))
	fmt.Printf("  ranking wins by %+.0f%% score at %.1fx less training time\n\n",
		100*(min.Score-raw.Score)/raw.Score, float64(raw.TrainTime)/float64(min.TrainTime))

	// Ablation 2: Algorithm 2's pruning on TORCS.
	fmt.Println("Ablation 2: Algorithm 2 trace pruning (TORCS)")
	for _, with := range []bool{true, false} {
		feats := bench.TORCSFeatureAblation(seed, with)
		fmt.Printf("  pruning=%v: %d features: %v\n", with, len(feats), feats)
	}
	return nil
}

func runDepGraph(subject string, seed uint64) error {
	g, err := bench.SubjectDepGraph(subject, seed)
	if err != nil {
		return err
	}
	fmt.Print(g.DOT(subject))
	return nil
}

// serveState is the toy program state σ checkpointed by the serve
// workload.
type serveState struct{ x float64 }

func (s *serveState) Snapshot() any    { return *s }
func (s *serveState) Restore(snap any) { *s = snap.(serveState) }

// runServe exercises every primitive once — including one expected
// failure, so the auerr-classed error counters export non-zero series —
// then blocks until the context is canceled, leaving the telemetry
// endpoints serving live data. CI's smoke test curls /metrics against
// exactly this workload.
func runServe(ctx context.Context, log *slog.Logger, seed uint64) error {
	rt := core.NewRuntime(core.Train, seed)
	if err := rt.ConfigCtx(ctx, core.ModelSpec{Name: "ServeNN", Algo: core.AdamOpt, Hidden: []int{8}}); err != nil {
		return err
	}
	if err := rt.ConfigCtx(ctx, core.ModelSpec{Name: "ServeQ", Algo: core.QLearn, Actions: 2, Hidden: []int{8}}); err != nil {
		return err
	}
	prog := &serveState{}
	if err := rt.CheckpointCtx(ctx, prog, 8); err != nil {
		return err
	}
	for i := 0; i < 32; i++ {
		x := float64(i) / 32
		if err := rt.ExtractCtx(ctx, "a", x); err != nil {
			return err
		}
		if err := rt.ExtractCtx(ctx, "b", 1-x); err != nil {
			return err
		}
		key, err := rt.SerializeCtx(ctx, "a", "b")
		if err != nil {
			return err
		}
		if err := rt.ExtractCtx(ctx, "y", 2*x); err != nil {
			return err
		}
		if err := rt.NNCtx(ctx, "ServeNN", key, "y"); err != nil {
			return err
		}
		var out [1]float64
		if _, err := rt.WriteBackCtx(ctx, "y", out[:]); err != nil {
			return err
		}
		rt.DB().Reset("y") // consume the prediction before the next oracle label
		if err := rt.ExtractCtx(ctx, "state", x, 1-x); err != nil {
			return err
		}
		if err := rt.NNRLCtx(ctx, "ServeQ", "state", out[0], i == 31, "act"); err != nil {
			return err
		}
		prog.x = x
	}
	if _, err := rt.FitCtx(ctx, "ServeNN", 3, 8); err != nil {
		return err
	}
	if err := rt.RestoreCtx(ctx, prog); err != nil {
		return err
	}
	if _, err := rt.PredictCtx(ctx, "ServeNN", []float64{0.5, 0.5}); err != nil {
		return err
	}
	// Expected failure: write-back of a name no au_NN ever bound.
	if _, err := rt.WriteBackCtx(ctx, "unbound", nil); err == nil {
		return fmt.Errorf("serve: write_back of unbound name unexpectedly succeeded")
	}
	// The toy networks above run below the parallel cutoff, so drive the
	// worker pool directly once — its utilization gauges should export
	// even on this miniature workload (forcing width 2 on a 1-core box).
	if parallel.Workers() < 2 {
		defer parallel.SetWorkers(parallel.SetWorkers(2))
	}
	sink := make([]float64, 1<<14)
	parallel.For(len(sink), 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[i] = float64(i) * 0.5
		}
	})
	log.Info("workload complete; serving telemetry until interrupted",
		"models", rt.ModelNames())
	<-ctx.Done()
	return nil
}

func runDemo(ctx context.Context, seed uint64) error {
	fmt.Println("== Autonomizer demo: Flappybird with internal-state features ==")
	res, err := bench.RunRLCtx(ctx, bench.FlappySubject(), bench.RLConfig{
		Mode: bench.InputAll, TrainSteps: 30000, EvalEpisodes: 5,
		EpsilonDecaySteps: 8000, Seed: seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("players %.0f%%  trained agent %.0f%% (train %v, competitive at step %d)\n",
		100*res.PlayerScore, 100*res.Score, res.TrainTime.Round(time.Millisecond*100),
		res.StepsToCompetitive)
	return nil
}
