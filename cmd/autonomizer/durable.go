package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"syscall"

	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/queue"
)

// The train/resume verbs exercise the durable training pipeline: a
// WAL-backed database store holds the dataset, a WAL-backed queue holds
// the fit request, and the fit checkpoints itself into the queue at
// minibatch boundaries. Killing the process at ANY point — including
// SIGKILL mid-fit — loses at most the minibatches since the last
// checkpoint; `autonomizer resume -wal DIR` replays the logs, reclaims
// the orphaned job, and finishes with final parameters bit-identical to
// an uninterrupted run. CI's durability-smoke job asserts exactly that.

// durableConfig collects the -wal family of flags.
type durableConfig struct {
	dir        string
	seed       uint64
	epochs     int
	batch      int
	examples   int
	ckptEvery  int
	crashAfter int  // SIGKILL self after this many durable checkpoints (0 = never)
	enqueue    bool // train enqueues a fresh job; resume only drains
}

const durableModel = "DurableNN"

func runDurable(ctx context.Context, log *slog.Logger, cfg durableConfig) error {
	if cfg.dir == "" {
		return errors.New("train/resume need -wal DIR for the durable state")
	}
	store, err := db.OpenDurable(filepath.Join(cfg.dir, "store"), db.WALOptions{})
	if err != nil {
		return fmt.Errorf("opening durable store: %w", err)
	}
	defer store.Close()
	if rec := store.WAL().Recovered(); rec != nil {
		log.Warn("store journal had a torn tail; truncated to last valid record",
			"segment", rec.Segment, "dropped_bytes", rec.DroppedBytes)
	}
	q, err := queue.Open(filepath.Join(cfg.dir, "queue"), "autonomizer", queue.Options{})
	if err != nil {
		return fmt.Errorf("opening job queue: %w", err)
	}
	defer q.Close()
	if rec := q.WAL().Recovered(); rec != nil {
		log.Warn("queue journal had a torn tail; truncated to last valid record",
			"segment", rec.Segment, "dropped_bytes", rec.DroppedBytes)
	}

	if err := ensureDataset(store, cfg.examples); err != nil {
		return err
	}

	if cfg.enqueue {
		id, err := q.Enqueue(queue.Job{Model: durableModel, Epochs: cfg.epochs, BatchSize: cfg.batch})
		if err != nil {
			return fmt.Errorf("enqueuing fit job: %w", err)
		}
		log.Info("enqueued fit job", "job", id, "model", durableModel,
			"epochs", cfg.epochs, "batch", cfg.batch, "examples", cfg.examples)
	}

	for {
		job, err := q.Claim()
		if errors.Is(err, queue.ErrEmpty) {
			break
		}
		if err != nil {
			return err
		}
		if err := runFitJob(ctx, log, store, q, job, cfg); err != nil {
			return err
		}
	}
	for _, j := range q.Jobs() {
		if j.State == queue.Done {
			fmt.Printf("job %d done: model=%s sha256=%s\n", j.ID, j.Model, j.Result)
		}
	}
	return nil
}

// runFitJob executes one claimed fit job to completion (or checkpointed
// interruption), journaling a resumable checkpoint into the queue at
// every -ckpt-every minibatch boundary.
func runFitJob(ctx context.Context, log *slog.Logger, store *db.DurableStore, q *queue.Queue, job *queue.Job, cfg durableConfig) error {
	rt := core.NewRuntime(core.Train, cfg.seed)
	if err := rt.Config(core.ModelSpec{Name: job.Model, Algo: core.AdamOpt, Hidden: []int{16, 8}}); err != nil {
		return err
	}
	xs, ys, inSize, err := loadDataset(store)
	if err != nil {
		return err
	}
	for i := 0; i*inSize < len(xs); i++ {
		if err := rt.RecordExample(job.Model, xs[i*inSize:(i+1)*inSize], ys[i:i+1]); err != nil {
			return err
		}
	}

	opt := core.FitResumeOptions{CheckpointEvery: cfg.ckptEvery}
	if len(job.Checkpoint) > 0 {
		ck, err := ckpt.DecodeFitCheckpoint(job.Checkpoint)
		if err != nil {
			return fmt.Errorf("job %d carries an undecodable checkpoint: %w", job.ID, err)
		}
		opt.Resume = ck
		log.Info("resuming fit from checkpoint", "job", job.ID, "attempt", job.Attempts,
			"epoch", ck.Epoch, "batch_in_epoch", ck.Batch, "total_batches", ck.Batches)
	} else if job.Attempts > 1 {
		log.Info("re-running fit from scratch (claimed but never checkpointed)",
			"job", job.ID, "attempt", job.Attempts)
	}
	taken := 0
	opt.OnCheckpoint = func(c *ckpt.FitCheckpoint) error {
		if err := q.Checkpoint(job.ID, c.Encode()); err != nil {
			return err
		}
		taken++
		if cfg.crashAfter > 0 && taken >= cfg.crashAfter {
			// Deterministic crash harness: the checkpoint above is durable,
			// so a resume continues from exactly this minibatch boundary.
			log.Warn("crash-after-batches reached; SIGKILLing self",
				"checkpoints", taken, "total_batches", c.Batches)
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL is not deliverable to a handler
		}
		return nil
	}

	st, err := rt.FitResumeCtx(ctx, job.Model, job.Epochs, job.BatchSize, opt)
	if err != nil {
		// Graceful interruption (SIGINT) or a journaling failure: hand the
		// job back with its latest checkpoint so another run resumes it.
		if relErr := q.Release(job.ID); relErr != nil {
			log.Warn("releasing interrupted job failed", "job", job.ID, "err", relErr)
		}
		return err
	}

	data, err := rt.SaveModel(job.Model)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	sumHex := hex.EncodeToString(sum[:])
	path := filepath.Join(cfg.dir, fmt.Sprintf("final-%s.aum", job.Model))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing final model: %w", err)
	}
	if err := q.Complete(job.ID, []byte(sumHex)); err != nil {
		return err
	}
	log.Info("fit complete", "job", job.ID, "epochs", st.Epochs, "batches", st.Batches,
		"loss", st.LastLoss, "steps_per_sec", st.StepsPerSec, "model_file", path)
	fmt.Printf("job %d complete: epochs=%d batches=%d loss=%.8g sha256=%s\n",
		job.ID, st.Epochs, st.Batches, st.LastLoss, sumHex)
	return nil
}

// Dataset names in the durable store. The dataset is a deterministic
// closed-form regression corpus (inputs (x, x², 1-x), target 2x), so
// train and resume rebuild the identical in-memory dataset from the
// replayed store.
const (
	dsInputs  = "train/x"
	dsTargets = "train/y"
	dsInSize  = 3
)

// ensureDataset idempotently populates the durable store: a fresh store
// gets the corpus appended (journaled and fsync'd); a replayed store
// that already holds a consistent dataset is left alone regardless of n
// — the store is the authority, and regenerating would duplicate the
// WAL records and the examples (a resumed fit must see the dataset the
// original run saw).
func ensureDataset(store *db.DurableStore, n int) error {
	if nx, ny := store.Len(dsInputs), store.Len(dsTargets); ny > 0 && nx == ny*dsInSize {
		return nil
	}
	if store.Len(dsInputs) != 0 || store.Len(dsTargets) != 0 {
		return fmt.Errorf("durable store holds an inconsistent dataset (%d inputs for %d targets) — use a fresh -wal dir",
			store.Len(dsInputs), store.Len(dsTargets))
	}
	xs := make([]float64, 0, n*dsInSize)
	ys := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		xs = append(xs, x, x*x, 1-x)
		ys = append(ys, 2*x)
	}
	store.Append(dsInputs, xs...)
	store.Append(dsTargets, ys...)
	return store.Sync()
}

func loadDataset(store *db.DurableStore) (xs, ys []float64, inSize int, err error) {
	xs, _ = store.Get(dsInputs)
	ys, _ = store.Get(dsTargets)
	if len(ys) == 0 || len(xs) != len(ys)*dsInSize {
		return nil, nil, 0, fmt.Errorf("durable store dataset has inconsistent geometry: %d inputs for %d targets", len(xs), len(ys))
	}
	return xs, ys, dsInSize, nil
}
