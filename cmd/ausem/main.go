// Command ausem executes programs written in the concrete syntax of the
// paper's operational semantics (Fig. 8) on the literal rule
// interpreter, printing the final ⟨σ, π, θ⟩ configuration. It is a
// teaching/debugging tool for the primitives' exact meaning.
//
// Usage:
//
//	ausem [-mode TR|TS] program.au
//	echo '@au_checkpoint()' | ausem -
//
// Example program:
//
//	one := 1
//	px  := 3.5
//	@au_config(Mario, DNN, Q, 2, 256, 64)
//	@au_checkpoint()
//	@au_extract(PX, one, px)
//	@au_NN(Mario, PX, output)
//	@au_write_back(output, one, actionKey)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/autonomizer/autonomizer/internal/semantics"
)

func main() {
	mode := flag.String("mode", "TR", "execution mode ω: TR (training) or TS (testing)")
	trace := flag.Bool("trace", false, "print each statement before executing it")
	lintOnly := flag.Bool("lint", false, "check annotations for mistakes without executing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ausem [-mode TR|TS] [-trace] <program.au | ->")
		os.Exit(2)
	}

	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	stmts, err := semantics.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if issues := semantics.Lint(stmts); len(issues) > 0 {
		for _, issue := range issues {
			fmt.Fprintln(os.Stderr, "lint:", issue)
		}
		if *lintOnly {
			os.Exit(1)
		}
	} else if *lintOnly {
		fmt.Println("no issues")
		return
	}

	var m *semantics.Machine
	switch *mode {
	case "TR":
		m = semantics.NewMachine(semantics.TR)
	case "TS":
		m = semantics.NewMachine(semantics.TS)
	default:
		fmt.Fprintf(os.Stderr, "error: unknown mode %q (want TR or TS)\n", *mode)
		os.Exit(2)
	}

	for i, s := range stmts {
		if *trace {
			fmt.Printf("[%2d] %#v\n", i, s)
		}
		if err := m.Exec(s); err != nil {
			fmt.Fprintf(os.Stderr, "error: statement %d: %v\n", i, err)
			os.Exit(1)
		}
	}
	fmt.Print(m.FormatStores())
}
