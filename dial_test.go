package autonomizer_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	autonomizer "github.com/autonomizer/autonomizer"
	"github.com/autonomizer/autonomizer/internal/serve"
)

// TestDialResolution pins Dial's target grammar: every class of target
// string resolves to the documented engine, and malformed targets fail
// with ErrSpecInvalid instead of a surprise at first query.
func TestDialResolution(t *testing.T) {
	for _, target := range []string{"", "embedded:", "embedded:train"} {
		q, err := autonomizer.Dial(target)
		if err != nil {
			t.Fatalf("Dial(%q): %v", target, err)
		}
		if _, ok := q.(*autonomizer.Runtime); !ok {
			t.Fatalf("Dial(%q) = %T, want *Runtime", target, q)
		}
	}
	for _, target := range []string{"http://127.0.0.1:1", "https://example.invalid", "fleet:http://a:1,http://b:1"} {
		q, err := autonomizer.Dial(target)
		if err != nil {
			t.Fatalf("Dial(%q): %v", target, err)
		}
		if _, ok := q.(*autonomizer.Client); !ok {
			t.Fatalf("Dial(%q) = %T, want *Client", target, q)
		}
	}
	for _, target := range []string{
		"embedded:banana", "ftp://nope", "fleet:", "fleet: , ", "fleet:ftp://x", "banana",
	} {
		if _, err := autonomizer.Dial(target); !errors.Is(err, autonomizer.ErrSpecInvalid) {
			t.Errorf("Dial(%q) err = %v, want ErrSpecInvalid", target, err)
		}
	}
}

// TestDialEndToEnd runs the same Querier-shaped decision step against
// all three Dial target classes — embedded, single server, fleet of
// two — and demands identical answers. The migration story in one
// test: only the target string changes.
func TestDialEndToEnd(t *testing.T) {
	spec, data, _ := trainAndSave(t)

	newBackend := func() *httptest.Server {
		srv := serve.NewServer(serve.Config{})
		if _, err := srv.Install("m", spec, data); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		return ts
	}
	b1, b2 := newBackend(), newBackend()

	embedded, err := autonomizer.Dial("")
	if err != nil {
		t.Fatal(err)
	}
	// The embedded Test-mode runtime needs the model loaded; Dial gives
	// the runtime, the host configures it.
	rt := embedded.(*autonomizer.Runtime)
	rt.LoadModel("m", data)
	if err := rt.Config(spec); err != nil {
		t.Fatal(err)
	}

	single, err := autonomizer.Dial(b1.URL)
	if err != nil {
		t.Fatal(err)
	}
	fleetQ, err := autonomizer.Dial("fleet:"+b1.URL+","+b2.URL,
		autonomizer.WithRetry(autonomizer.RetryPolicy{}))
	if err != nil {
		t.Fatal(err)
	}

	engines := map[string]autonomizer.Querier{
		"embedded": embedded, "single": single, "fleet": fleetQ,
	}
	var want float64
	first := true
	for name, q := range engines {
		got, err := decide(q, 0.3, 0.6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Errorf("%s answered %v, others %v", name, got, want)
		}
	}
}

// TestObserveAcrossEngines: the drift-feedback primitive behaves
// identically through every Querier — same verdict fields, same typed
// error on an unknown model — whether the monitor lives in-process or
// behind the wire.
func TestObserveAcrossEngines(t *testing.T) {
	spec, data, embedded := trainAndSave(t)
	srv := serve.NewServer(serve.Config{})
	defer srv.Close()
	if _, err := srv.Install("m", spec, data); err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(srv.Handler())
	defer web.Close()
	remote := autonomizer.NewClient(web.URL)

	for name, q := range map[string]autonomizer.Querier{"embedded": embedded, "remote": remote} {
		st, err := q.Observe("m", []float64{0.5}, []float64{0.25})
		if err != nil {
			t.Fatalf("%s: Observe: %v", name, err)
		}
		if st.Model != "m" || st.Samples != 1 {
			t.Errorf("%s: DriftStatus = %+v, want model m with 1 sample", name, st)
		}
		if st.Loss == 0 {
			t.Errorf("%s: squared error of (0.5, 0.25) recorded as zero loss", name)
		}
		if !st.Healthy {
			t.Errorf("%s: monitor-only drift flipped unhealthy", name)
		}
		if _, err := q.ObserveCtx(context.Background(), "ghost", []float64{1}, []float64{1}); !errors.Is(err, autonomizer.ErrUnknownModel) {
			t.Errorf("%s: Observe of unknown model: %v, want ErrUnknownModel", name, err)
		}
	}
}
