package semantics

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse reads a program in the concrete syntax of the Fig. 8 statement
// language, one statement per line:
//
//	x := 1 2 3                        assignment (array literal)
//	@au_config(m, DNN, Q, 2, 256, 64) model construction
//	@au_extract(X, size, x)           extract σ(x)[0..σ(size)) into π(X)
//	@au_extract(X, x)                 extract the whole array
//	@au_serialize(A, B)               bind π(AB) = π(A) ++ π(B)
//	@au_NN(m, X, out)                 run/train model m
//	@au_write_back(out, size, y)      copy π(out)[0..σ(size)) into σ(y)
//	@au_write_back(out, y)            copy the whole binding
//	@au_checkpoint()
//	@au_restore()
//
// Blank lines and lines starting with # or // are ignored. Parse
// returns the statement list or a syntax error naming the line.
func Parse(src string) ([]Stmt, error) {
	var out []Stmt
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		stmt, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("semantics: line %d: %w", lineNo+1, err)
		}
		out = append(out, stmt)
	}
	return out, nil
}

func parseLine(line string) (Stmt, error) {
	if strings.HasPrefix(line, "@") {
		return parsePrimitive(line)
	}
	// Assignment: ident := value...
	parts := strings.SplitN(line, ":=", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("expected assignment or primitive, got %q", line)
	}
	name := strings.TrimSpace(parts[0])
	if !isIdent(name) {
		return nil, fmt.Errorf("bad variable name %q", name)
	}
	var vals []float64
	for _, f := range strings.Fields(parts[1]) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("assignment to %q has no values", name)
	}
	return Assign{Var: name, Vals: vals}, nil
}

func parsePrimitive(line string) (Stmt, error) {
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("malformed primitive %q", line)
	}
	name := line[1:open]
	argStr := strings.TrimSpace(line[open+1 : len(line)-1])
	var args []string
	if argStr != "" {
		for _, a := range strings.Split(argStr, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	switch name {
	case "au_config":
		if len(args) < 4 {
			return nil, fmt.Errorf("au_config needs (name, type, algo, layers, ...), got %d args", len(args))
		}
		mt, err := parseModelType(args[1])
		if err != nil {
			return nil, err
		}
		algo, err := parseAlgorithm(args[2])
		if err != nil {
			return nil, err
		}
		layers, err := strconv.Atoi(args[3])
		if err != nil {
			return nil, fmt.Errorf("bad layer count %q", args[3])
		}
		var neurons []int
		for _, a := range args[4:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				return nil, fmt.Errorf("bad neuron count %q", a)
			}
			neurons = append(neurons, n)
		}
		return AuConfig{MdName: args[0], Type: mt, Algo: algo, Layers: layers, Neurons: neurons}, nil

	case "au_extract":
		switch len(args) {
		case 2:
			return AuExtract{ExtName: args[0], Var: args[1]}, nil
		case 3:
			return AuExtract{ExtName: args[0], SizeVar: args[1], Var: args[2]}, nil
		default:
			return nil, fmt.Errorf("au_extract needs (name, [size,] var), got %d args", len(args))
		}

	case "au_serialize":
		if len(args) != 2 {
			return nil, fmt.Errorf("au_serialize needs (t1, t2), got %d args", len(args))
		}
		return AuSerialize{T1: args[0], T2: args[1]}, nil

	case "au_NN":
		if len(args) != 3 {
			return nil, fmt.Errorf("au_NN needs (model, extName, wbName), got %d args", len(args))
		}
		return AuNN{MdName: args[0], ExtName: args[1], WbName: args[2]}, nil

	case "au_write_back":
		switch len(args) {
		case 2:
			return AuWriteBack{WbName: args[0], Var: args[1]}, nil
		case 3:
			return AuWriteBack{WbName: args[0], SizeVar: args[1], Var: args[2]}, nil
		default:
			return nil, fmt.Errorf("au_write_back needs (name, [size,] var), got %d args", len(args))
		}

	case "au_checkpoint":
		if len(args) != 0 {
			return nil, fmt.Errorf("au_checkpoint takes no arguments")
		}
		return AuCheckpoint{}, nil

	case "au_restore":
		if len(args) != 0 {
			return nil, fmt.Errorf("au_restore takes no arguments")
		}
		return AuRestore{}, nil

	default:
		return nil, fmt.Errorf("unknown primitive @%s", name)
	}
}

func parseModelType(s string) (ModelType, error) {
	switch s {
	case "DNN":
		return DNN, nil
	case "CNN":
		return CNN, nil
	default:
		return 0, fmt.Errorf("unknown model type %q (want DNN or CNN)", s)
	}
}

func parseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "Q", "QLearn":
		return Q, nil
	case "AdamOpt", "Adam":
		return AdamOpt, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want Q or AdamOpt)", s)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// FormatStores renders ⟨σ, π, θ⟩ for display after a Run, with names
// sorted for stable output.
func (m *Machine) FormatStores() string {
	var b strings.Builder
	writeStore := func(label string, s map[string][]float64) {
		fmt.Fprintf(&b, "%s:\n", label)
		names := make([]string, 0, len(s))
		for k := range s {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Fprintf(&b, "  %-12s %v\n", k, s[k])
		}
	}
	writeStore("σ (program store)", m.Sigma)
	writeStore("π (database store)", m.Pi)
	writeStore("θ (model store)", m.Theta)
	return b.String()
}
