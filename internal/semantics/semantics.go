// Package semantics is a direct, executable transcription of the
// operational semantics in Fig. 8 of the paper. It exists to pin down —
// and property-test — exactly what each primitive means, independently
// of the production runtime in internal/core.
//
// The machine configuration is ⟨σ, π, θ, ω⟩:
//
//	σ : Var → [Value]      the Program Store (arrays of float64)
//	π : String → [Value]   the Database Store
//	θ : String → [Parm]    the Model store (abstract parameter lists)
//	ω : TR | TS            the execution mode
//
// Statements step via Machine.Exec, which dispatches to one rule per
// primitive. The model itself is abstracted, as in the paper, by two
// uninterpreted-but-deterministic statements runModel and gradient; the
// properties of interest (store isolation, θ exclusion from
// checkpoints, TR-vs-TS model mutation) do not depend on what the model
// computes.
package semantics

import (
	"fmt"
)

// Mode is ω.
type Mode int

const (
	// TR is training mode.
	TR Mode = iota
	// TS is testing (production) mode.
	TS
)

// ModelType is δ.
type ModelType int

const (
	// DNN is the fully connected model type.
	DNN ModelType = iota
	// CNN is the convolutional model type.
	CNN
)

// Algorithm is α.
type Algorithm int

const (
	// Q is Q-learning.
	Q Algorithm = iota
	// AdamOpt is Adam-optimized supervised learning.
	AdamOpt
)

// Stmt is one statement s of the language. Concrete statements are the
// seven primitives plus assignment and sequencing.
type Stmt interface {
	stmt()
}

// Assign is x := v (the ASSIGN rule); Var may denote an array, in which
// case the whole array value is replaced.
type Assign struct {
	Var  string
	Vals []float64
}

// AuConfig is @au_config(mdName, δ, α, l, n1, …).
type AuConfig struct {
	MdName  string
	Type    ModelType
	Algo    Algorithm
	Layers  int
	Neurons []int
}

// AuExtract is @au_extract(extName, size, x): append x[0..σ(size)-1]
// to π(extName).
type AuExtract struct {
	ExtName string
	// SizeVar names a program variable holding the element count, per
	// the rule's σ[size] lookup. If empty, the whole array is taken.
	SizeVar string
	Var     string
}

// AuWriteBack is @au_write_back(wbName, size, x): copy π(wbName)[0..size)
// into the program array x.
type AuWriteBack struct {
	WbName  string
	SizeVar string
	Var     string
}

// AuNN is @au_NN(mdName, extName, wbName).
type AuNN struct {
	MdName  string
	ExtName string
	WbName  string
}

// AuSerialize is @au_serialize(t1, t2): bind strcat(t1,t2) to
// concat(π(t1), π(t2)).
type AuSerialize struct {
	T1, T2 string
}

// AuCheckpoint is @au_checkpoint().
type AuCheckpoint struct{}

// AuRestore is @au_restore().
type AuRestore struct{}

func (Assign) stmt()       {}
func (AuConfig) stmt()     {}
func (AuExtract) stmt()    {}
func (AuWriteBack) stmt()  {}
func (AuNN) stmt()         {}
func (AuSerialize) stmt()  {}
func (AuCheckpoint) stmt() {}
func (AuRestore) stmt()    {}

// Machine is the configuration ⟨σ, π, θ, ω⟩ plus the snapshot used by
// the CHECKPOINT/RESTORE rules.
type Machine struct {
	Sigma map[string][]float64 // σ
	Pi    map[string][]float64 // π
	Theta map[string][]float64 // θ
	Omega Mode                 // ω

	snapshot *snapshot

	// savedModels backs the loadModel statement used by CONFIG-TEST.
	savedModels map[string][]float64
}

type snapshot struct {
	sigma map[string][]float64
	pi    map[string][]float64
}

// NewMachine returns an empty machine in the given mode.
func NewMachine(mode Mode) *Machine {
	return &Machine{
		Sigma:       map[string][]float64{},
		Pi:          map[string][]float64{},
		Theta:       map[string][]float64{},
		Omega:       mode,
		savedModels: map[string][]float64{},
	}
}

// InstallSavedModel provides the persistent model that loadModel returns
// in TS mode.
func (m *Machine) InstallSavedModel(name string, params []float64) {
	m.savedModels[name] = append([]float64(nil), params...)
}

// buildModel is the statement extension buildModel(mdName, δ, α, l, n…):
// it deterministically derives an initial parameter list from the
// configuration, standing in for weight initialization.
func buildModel(mdName string, _ ModelType, _ Algorithm, layers int, neurons []int) []float64 {
	n := layers + len(neurons) + 1
	params := make([]float64, n)
	seed := float64(len(mdName) + 1)
	for i := range params {
		params[i] = seed * float64(i+1) * 0.01
	}
	return params
}

// runModel is the statement extension runModel(parm, v…): a
// deterministic abstract model application producing one output per
// parameter.
func runModel(params, in []float64) []float64 {
	sum := 0.0
	for _, v := range in {
		sum += v
	}
	out := make([]float64, len(params))
	for i, p := range params {
		out[i] = p * (1 + sum)
	}
	return out
}

// gradient is the statement extension gradient(parm, v…): a
// deterministic abstract gradient.
func gradient(params, target []float64) []float64 {
	tsum := 0.0
	for _, v := range target {
		tsum += v
	}
	out := make([]float64, len(params))
	for i, p := range params {
		out[i] = 0.01 * (p - tsum/float64(len(params)+1))
	}
	return out
}

// concat is the statement extension concat(v1, v2).
func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Exec performs one statement transition. It returns an error for stuck
// configurations (e.g. write-back of an unbound name), which the paper's
// rules leave undefined.
func (m *Machine) Exec(s Stmt) error {
	switch st := s.(type) {
	case Assign:
		// [ASSIGN] σ' = σ[x ↦ v]
		m.Sigma[st.Var] = append([]float64(nil), st.Vals...)
		return nil

	case AuConfig:
		if _, bound := m.Theta[st.MdName]; bound {
			// θ(mdName) ≢ ⊥ ⇒ θ' = θ in both rules.
			return nil
		}
		switch m.Omega {
		case TR:
			// [CONFIG-TRAIN] θ' = θ[mdName ↦ buildModel(…)]
			m.Theta[st.MdName] = buildModel(st.MdName, st.Type, st.Algo, st.Layers, st.Neurons)
		case TS:
			// [CONFIG-TEST] θ' = θ[mdName ↦ loadModel(mdName)]
			saved, ok := m.savedModels[st.MdName]
			if !ok {
				return fmt.Errorf("semantics: loadModel(%q): no saved model", st.MdName)
			}
			m.Theta[st.MdName] = append([]float64(nil), saved...)
		}
		return nil

	case AuExtract:
		// [EXTRACT] π' = π[extName ↦ concat(π(extName), x[0..σ[size]-1])]
		x, ok := m.Sigma[st.Var]
		if !ok {
			return fmt.Errorf("semantics: au_extract of unbound variable %q", st.Var)
		}
		n := len(x)
		if st.SizeVar != "" {
			sv, ok := m.Sigma[st.SizeVar]
			if !ok || len(sv) == 0 {
				return fmt.Errorf("semantics: au_extract size variable %q unbound", st.SizeVar)
			}
			n = int(sv[0])
			if n < 0 || n > len(x) {
				return fmt.Errorf("semantics: au_extract size %d out of range for %q (len %d)", n, st.Var, len(x))
			}
		}
		m.Pi[st.ExtName] = concat(m.Pi[st.ExtName], x[:n])
		return nil

	case AuWriteBack:
		// [WRITE-BACK] ∀i ∈ [0, σ(size)), σ[x[i] ↦ π(wbName)[i]]
		vals, ok := m.Pi[st.WbName]
		if !ok {
			return fmt.Errorf("semantics: au_write_back of unbound name %q", st.WbName)
		}
		n := len(vals)
		if st.SizeVar != "" {
			sv, ok := m.Sigma[st.SizeVar]
			if !ok || len(sv) == 0 {
				return fmt.Errorf("semantics: au_write_back size variable %q unbound", st.SizeVar)
			}
			n = int(sv[0])
		}
		if n > len(vals) {
			return fmt.Errorf("semantics: au_write_back size %d exceeds binding %q (len %d)", n, st.WbName, len(vals))
		}
		x := append([]float64(nil), m.Sigma[st.Var]...)
		if len(x) < n {
			grown := make([]float64, n)
			copy(grown, x)
			x = grown
		}
		copy(x[:n], vals[:n])
		m.Sigma[st.Var] = x
		return nil

	case AuNN:
		params, ok := m.Theta[st.MdName]
		if !ok {
			return fmt.Errorf("semantics: au_NN on unconfigured model %q", st.MdName)
		}
		switch m.Omega {
		case TR:
			// [TRAIN] θ' = θ[m ↦ θ(m) − gradient(θ(m), π(wbName))],
			// π' = π[wbName ↦ runModel(θ'(m), π(extName)), extName ↦ ⊥]
			g := gradient(params, m.Pi[st.WbName])
			updated := make([]float64, len(params))
			for i := range params {
				updated[i] = params[i] - g[i]
			}
			m.Theta[st.MdName] = updated
			m.Pi[st.WbName] = runModel(updated, m.Pi[st.ExtName])
		case TS:
			// [TEST] π' = π[wbName ↦ runModel(θ(m), π(extName)), extName ↦ ⊥]
			m.Pi[st.WbName] = runModel(params, m.Pi[st.ExtName])
		}
		delete(m.Pi, st.ExtName)
		return nil

	case AuSerialize:
		// [SERIALIZE] π' = π[strcat(t1,t2) ↦ concat(π(t1), π(t2))]
		m.Pi[st.T1+st.T2] = concat(m.Pi[st.T1], m.Pi[st.T2])
		return nil

	case AuCheckpoint:
		// [CHECKPOINT] mkSnapshot(⟨σ, π⟩) — θ is deliberately excluded.
		m.snapshot = &snapshot{sigma: copyStore(m.Sigma), pi: copyStore(m.Pi)}
		return nil

	case AuRestore:
		// [RESTORE] ⟨σ', π'⟩ := rtSnapshot()
		if m.snapshot == nil {
			return fmt.Errorf("semantics: au_restore without checkpoint")
		}
		m.Sigma = copyStore(m.snapshot.sigma)
		m.Pi = copyStore(m.snapshot.pi)
		return nil

	default:
		return fmt.Errorf("semantics: unknown statement %T", s)
	}
}

// Run executes a statement sequence, stopping at the first error.
func (m *Machine) Run(stmts ...Stmt) error {
	for i, s := range stmts {
		if err := m.Exec(s); err != nil {
			return fmt.Errorf("statement %d: %w", i, err)
		}
	}
	return nil
}

func copyStore(s map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(s))
	for k, v := range s {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// ThetaCopy returns a deep copy of θ, for test assertions.
func (m *Machine) ThetaCopy() map[string][]float64 { return copyStore(m.Theta) }
