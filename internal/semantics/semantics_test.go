package semantics

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAssign(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Exec(Assign{Var: "x", Vals: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	if m.Sigma["x"][0] != 3 {
		t.Errorf("sigma[x] = %v", m.Sigma["x"])
	}
}

func TestConfigTrainBuildsModelOnce(t *testing.T) {
	m := NewMachine(TR)
	cfg := AuConfig{MdName: "Mario", Type: DNN, Algo: Q, Layers: 2, Neurons: []int{256, 64}}
	if err := m.Exec(cfg); err != nil {
		t.Fatal(err)
	}
	first := m.ThetaCopy()["Mario"]
	if len(first) == 0 {
		t.Fatal("CONFIG-TRAIN did not build a model")
	}
	// Mutate then reconfigure: θ(mdName) ≢ ⊥ means no rebuild.
	m.Theta["Mario"][0] = 42
	if err := m.Exec(cfg); err != nil {
		t.Fatal(err)
	}
	if m.Theta["Mario"][0] != 42 {
		t.Error("CONFIG-TRAIN rebuilt an existing model")
	}
}

func TestConfigTestLoadsSavedModel(t *testing.T) {
	m := NewMachine(TS)
	if err := m.Exec(AuConfig{MdName: "m"}); err == nil {
		t.Error("CONFIG-TEST without saved model succeeded")
	}
	m.InstallSavedModel("m", []float64{1, 2, 3})
	if err := m.Exec(AuConfig{MdName: "m"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Theta["m"], []float64{1, 2, 3}) {
		t.Errorf("loaded model = %v", m.Theta["m"])
	}
}

func TestExtractAppends(t *testing.T) {
	m := NewMachine(TR)
	m.Sigma["x"] = []float64{7, 8, 9}
	m.Sigma["sz"] = []float64{2}
	if err := m.Exec(AuExtract{ExtName: "X", SizeVar: "sz", Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Pi["X"], []float64{7, 8}) {
		t.Errorf("pi[X] = %v", m.Pi["X"])
	}
	// Second extract appends (the in-loop case from the paper).
	if err := m.Exec(AuExtract{ExtName: "X", SizeVar: "sz", Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Pi["X"], []float64{7, 8, 7, 8}) {
		t.Errorf("pi[X] after second extract = %v", m.Pi["X"])
	}
}

func TestExtractWholeArrayWhenNoSize(t *testing.T) {
	m := NewMachine(TR)
	m.Sigma["x"] = []float64{1, 2, 3}
	if err := m.Exec(AuExtract{ExtName: "X", Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if len(m.Pi["X"]) != 3 {
		t.Errorf("pi[X] = %v", m.Pi["X"])
	}
}

func TestExtractErrors(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Exec(AuExtract{ExtName: "X", Var: "ghost"}); err == nil {
		t.Error("extract of unbound variable succeeded")
	}
	m.Sigma["x"] = []float64{1}
	if err := m.Exec(AuExtract{ExtName: "X", SizeVar: "ghost", Var: "x"}); err == nil {
		t.Error("extract with unbound size succeeded")
	}
	m.Sigma["sz"] = []float64{5}
	if err := m.Exec(AuExtract{ExtName: "X", SizeVar: "sz", Var: "x"}); err == nil {
		t.Error("extract with oversized size succeeded")
	}
}

func TestWriteBack(t *testing.T) {
	m := NewMachine(TR)
	m.Pi["out"] = []float64{4, 5, 6}
	m.Sigma["sz"] = []float64{2}
	m.Sigma["x"] = []float64{0, 0, 99}
	if err := m.Exec(AuWriteBack{WbName: "out", SizeVar: "sz", Var: "x"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Sigma["x"], []float64{4, 5, 99}) {
		t.Errorf("sigma[x] = %v", m.Sigma["x"])
	}
	// Write-back into an unbound variable allocates it.
	if err := m.Exec(AuWriteBack{WbName: "out", SizeVar: "sz", Var: "fresh"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Sigma["fresh"], []float64{4, 5}) {
		t.Errorf("sigma[fresh] = %v", m.Sigma["fresh"])
	}
}

func TestWriteBackErrors(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Exec(AuWriteBack{WbName: "ghost", Var: "x"}); err == nil {
		t.Error("write-back of unbound name succeeded")
	}
	m.Pi["out"] = []float64{1}
	m.Sigma["sz"] = []float64{5}
	if err := m.Exec(AuWriteBack{WbName: "out", SizeVar: "sz", Var: "x"}); err == nil {
		t.Error("write-back beyond binding length succeeded")
	}
	if err := m.Exec(AuWriteBack{WbName: "out", SizeVar: "ghost", Var: "x"}); err == nil {
		t.Error("write-back with unbound size variable succeeded")
	}
}

func TestSerializeRule(t *testing.T) {
	m := NewMachine(TR)
	m.Pi["PX"] = []float64{1}
	m.Pi["PY"] = []float64{2, 3}
	if err := m.Exec(AuSerialize{T1: "PX", T2: "PY"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Pi["PXPY"], []float64{1, 2, 3}) {
		t.Errorf("pi[PXPY] = %v", m.Pi["PXPY"])
	}
	// Constituents remain bound in the literal rule.
	if len(m.Pi["PX"]) != 1 || len(m.Pi["PY"]) != 2 {
		t.Error("literal SERIALIZE must not consume constituents")
	}
}

func TestTrainRuleUpdatesModelAndResetsInput(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Run(
		AuConfig{MdName: "m", Layers: 2, Neurons: []int{4, 2}},
		Assign{Var: "x", Vals: []float64{1, 2}},
		AuExtract{ExtName: "in", Var: "x"},
	); err != nil {
		t.Fatal(err)
	}
	before := m.ThetaCopy()["m"]
	m.Pi["out"] = []float64{5} // prior target in π(wbName)
	if err := m.Exec(AuNN{MdName: "m", ExtName: "in", WbName: "out"}); err != nil {
		t.Fatal(err)
	}
	after := m.Theta["m"]
	if reflect.DeepEqual(before, after) {
		t.Error("TRAIN did not update θ")
	}
	if _, bound := m.Pi["in"]; bound {
		t.Error("TRAIN did not reset extName to ⊥")
	}
	if len(m.Pi["out"]) != len(after) {
		t.Errorf("TRAIN output length %d, want %d", len(m.Pi["out"]), len(after))
	}
}

func TestTestRuleLeavesModelUntouched(t *testing.T) {
	m := NewMachine(TS)
	m.InstallSavedModel("m", []float64{1, 2})
	if err := m.Run(
		AuConfig{MdName: "m"},
		Assign{Var: "x", Vals: []float64{3}},
		AuExtract{ExtName: "in", Var: "x"},
		AuNN{MdName: "m", ExtName: "in", WbName: "out"},
	); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Theta["m"], []float64{1, 2}) {
		t.Errorf("TEST modified θ: %v", m.Theta["m"])
	}
	if _, bound := m.Pi["in"]; bound {
		t.Error("TEST did not reset extName")
	}
	if len(m.Pi["out"]) != 2 {
		t.Errorf("TEST output = %v", m.Pi["out"])
	}
}

func TestNNUnconfiguredModel(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Exec(AuNN{MdName: "ghost", ExtName: "a", WbName: "b"}); err == nil {
		t.Error("au_NN on unconfigured model succeeded")
	}
}

// TestCheckpointRestoreExcludesTheta is the central semantic property:
// restore rolls ⟨σ, π⟩ back together while θ is untouched.
func TestCheckpointRestoreExcludesTheta(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Run(
		AuConfig{MdName: "m", Layers: 1, Neurons: []int{2}},
		Assign{Var: "x", Vals: []float64{1}},
		AuCheckpoint{},
	); err != nil {
		t.Fatal(err)
	}
	// Progress: mutate σ, π and θ.
	if err := m.Run(
		Assign{Var: "x", Vals: []float64{99}},
		AuExtract{ExtName: "in", Var: "x"},
		AuNN{MdName: "m", ExtName: "in", WbName: "out"},
	); err != nil {
		t.Fatal(err)
	}
	thetaBefore := m.ThetaCopy()
	if err := m.Exec(AuRestore{}); err != nil {
		t.Fatal(err)
	}
	if m.Sigma["x"][0] != 1 {
		t.Errorf("σ not restored: %v", m.Sigma["x"])
	}
	if _, bound := m.Pi["out"]; bound {
		t.Error("π not restored")
	}
	if !reflect.DeepEqual(m.ThetaCopy(), thetaBefore) {
		t.Error("θ was modified by restore")
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Exec(AuRestore{}); err == nil {
		t.Error("restore without checkpoint succeeded")
	}
}

// TestStoreIsolation property: no sequence of extract/serialize/NN
// statements ever mutates σ, and no assign ever mutates π. Data crosses
// only via extract (σ→π) and write-back (π→σ).
func TestStoreIsolation(t *testing.T) {
	prop := func(vals []float64, n uint8) bool {
		if len(vals) == 0 {
			vals = []float64{1}
		}
		for i, v := range vals {
			// Keep the abstract model arithmetic finite (NaN breaks
			// DeepEqual, not the semantics).
			if v != v || v > 1e6 || v < -1e6 {
				vals[i] = float64(i)
			}
		}
		m := NewMachine(TR)
		m.Sigma["x"] = append([]float64(nil), vals...)
		m.Theta["m"] = []float64{0.5, 0.5}
		sigmaBefore := copyStore(m.Sigma)

		// π-side statements must not touch σ.
		stmts := []Stmt{
			AuExtract{ExtName: "a", Var: "x"},
			AuSerialize{T1: "a", T2: "a"},
			AuNN{MdName: "m", ExtName: "aa", WbName: "out"},
		}
		for i := 0; i < int(n%4)+1; i++ {
			for _, s := range stmts {
				if err := m.Exec(s); err != nil {
					return false
				}
			}
		}
		if !reflect.DeepEqual(m.Sigma, sigmaBefore) {
			return false
		}
		// σ-side assignment must not touch π.
		piBefore := copyStore(m.Pi)
		if err := m.Exec(Assign{Var: "x", Vals: []float64{42}}); err != nil {
			return false
		}
		return reflect.DeepEqual(m.Pi, piBefore)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointIdempotentRestore property: any number of restores
// returns to the same ⟨σ, π⟩.
func TestCheckpointIdempotentRestore(t *testing.T) {
	prop := func(vals []float64, rounds uint8) bool {
		m := NewMachine(TR)
		m.Sigma["x"] = append([]float64(nil), vals...)
		if err := m.Exec(AuCheckpoint{}); err != nil {
			return false
		}
		want := copyStore(m.Sigma)
		for i := 0; i < int(rounds%5)+1; i++ {
			m.Sigma["x"] = []float64{float64(i) * 7}
			if err := m.Exec(AuRestore{}); err != nil {
				return false
			}
			if !reflect.DeepEqual(m.Sigma, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMarioLoopShape runs a miniature version of the Fig. 2 annotation
// end-to-end through the formal machine.
func TestMarioLoopShape(t *testing.T) {
	m := NewMachine(TR)
	if err := m.Run(
		AuConfig{MdName: "Mario", Type: DNN, Algo: Q, Layers: 2, Neurons: []int{256, 64}},
		Assign{Var: "one", Vals: []float64{1}},
		Assign{Var: "five", Vals: []float64{5}},
	); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 3; iter++ {
		if err := m.Run(
			AuCheckpoint{},
			Assign{Var: "px", Vals: []float64{float64(iter)}},
			Assign{Var: "py", Vals: []float64{2}},
			AuExtract{ExtName: "PX", SizeVar: "one", Var: "px"},
			AuExtract{ExtName: "PY", SizeVar: "one", Var: "py"},
			AuSerialize{T1: "PX", T2: "PY"},
			AuNN{MdName: "Mario", ExtName: "PXPY", WbName: "output"},
		); err != nil {
			t.Fatal(err)
		}
		// Model emits as many values as parameters; write back the
		// first element as the action key.
		if err := m.Exec(AuWriteBack{WbName: "output", SizeVar: "one", Var: "actionKey"}); err != nil {
			t.Fatal(err)
		}
		if len(m.Sigma["actionKey"]) != 1 {
			t.Fatalf("actionKey = %v", m.Sigma["actionKey"])
		}
		if err := m.Exec(AuRestore{}); err != nil {
			t.Fatal(err)
		}
	}
	// Three training NN calls must have moved θ three times.
	if reflect.DeepEqual(m.Theta["Mario"], buildModel("Mario", DNN, Q, 2, []int{256, 64})) {
		t.Error("θ did not accumulate learning across restores")
	}
}

func TestUnknownStatement(t *testing.T) {
	m := NewMachine(TR)
	type bogus struct{ Stmt }
	if err := m.Exec(bogus{}); err == nil {
		t.Error("unknown statement succeeded")
	}
}

func TestRunStopsAtFirstError(t *testing.T) {
	m := NewMachine(TR)
	err := m.Run(
		Assign{Var: "x", Vals: []float64{1}},
		AuWriteBack{WbName: "ghost", Var: "x"}, // fails
		Assign{Var: "x", Vals: []float64{2}},   // must not run
	)
	if err == nil {
		t.Fatal("Run did not propagate the error")
	}
	if m.Sigma["x"][0] != 1 {
		t.Error("Run continued past the failing statement")
	}
}
