package semantics

import "fmt"

// Lint statically checks a statement sequence for annotation mistakes
// that would stick the machine (or silently train nothing) at run time.
// It returns one message per issue, in program order. The checks mirror
// the mistakes the paper's users could make when annotating by hand:
//
//   - au_NN on a model never configured;
//   - au_NN whose input name is never extracted or serialized;
//   - au_write_back of a name no au_NN produces;
//   - au_extract/au_write_back of program variables never assigned
//     (write-back allocates, so that one is advisory only);
//   - au_restore with no preceding au_checkpoint;
//   - extracted names that no au_NN or au_serialize ever consumes;
//   - configuring the same model twice (harmless at run time — the
//     second is ignored — but usually a copy-paste slip).
type LintIssue struct {
	// Index is the statement's position in the program.
	Index int
	// Message describes the problem.
	Message string
}

// String implements fmt.Stringer.
func (l LintIssue) String() string {
	return fmt.Sprintf("stmt %d: %s", l.Index, l.Message)
}

// Lint analyzes the program without executing it.
func Lint(stmts []Stmt) []LintIssue {
	var issues []LintIssue
	report := func(i int, format string, args ...any) {
		issues = append(issues, LintIssue{Index: i, Message: fmt.Sprintf(format, args...)})
	}

	configured := map[string]bool{}
	assigned := map[string]bool{}
	piBound := map[string]bool{}  // names bound in π by extract/serialize/NN
	produced := map[string]bool{} // names produced by au_NN (write-back sources)
	extracted := map[string]int{} // extract name → statement index
	consumed := map[string]bool{} // extract names consumed by NN/serialize
	checkpointed := false

	for i, s := range stmts {
		switch st := s.(type) {
		case Assign:
			assigned[st.Var] = true

		case AuConfig:
			if configured[st.MdName] {
				report(i, "model %q configured twice; the second au_config is ignored", st.MdName)
			}
			configured[st.MdName] = true

		case AuExtract:
			if !assigned[st.Var] {
				report(i, "au_extract reads variable %q before any assignment", st.Var)
			}
			if st.SizeVar != "" && !assigned[st.SizeVar] {
				report(i, "au_extract size variable %q is never assigned", st.SizeVar)
			}
			piBound[st.ExtName] = true
			if _, seen := extracted[st.ExtName]; !seen {
				extracted[st.ExtName] = i
			}

		case AuSerialize:
			for _, t := range []string{st.T1, st.T2} {
				if !piBound[t] {
					report(i, "au_serialize reads π name %q that nothing has bound", t)
				}
				consumed[t] = true
			}
			piBound[st.T1+st.T2] = true

		case AuNN:
			if !configured[st.MdName] {
				report(i, "au_NN uses model %q before au_config", st.MdName)
			}
			if !piBound[st.ExtName] {
				report(i, "au_NN input %q is never extracted or serialized", st.ExtName)
			}
			consumed[st.ExtName] = true
			piBound[st.WbName] = true
			produced[st.WbName] = true

		case AuWriteBack:
			if !produced[st.WbName] {
				report(i, "au_write_back reads %q, which no au_NN produces", st.WbName)
			}
			if st.SizeVar != "" && !assigned[st.SizeVar] {
				report(i, "au_write_back size variable %q is never assigned", st.SizeVar)
			}
			assigned[st.Var] = true // write-back allocates the variable

		case AuCheckpoint:
			checkpointed = true

		case AuRestore:
			if !checkpointed {
				report(i, "au_restore with no preceding au_checkpoint")
			}
		}
	}

	// Dead extracts: bound but never consumed by NN or serialize.
	for name, idx := range extracted {
		if !consumed[name] {
			report(idx, "extracted name %q is never fed to au_NN or au_serialize", name)
		}
	}
	return issues
}
