package semantics

import (
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []LintIssue {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Lint(stmts)
}

func hasIssue(issues []LintIssue, substr string) bool {
	for _, i := range issues {
		if strings.Contains(i.Message, substr) {
			return true
		}
	}
	return false
}

func TestLintCleanProgram(t *testing.T) {
	issues := lintSource(t, `
one := 1
px := 3.5
@au_config(Mario, DNN, Q, 2, 8, 4)
@au_checkpoint()
@au_extract(PX, one, px)
@au_NN(Mario, PX, output)
@au_write_back(output, one, actionKey)
@au_restore()
`)
	if len(issues) != 0 {
		t.Errorf("clean program has issues: %v", issues)
	}
}

func TestLintUnconfiguredModel(t *testing.T) {
	issues := lintSource(t, `
x := 1
@au_extract(X, x)
@au_NN(Ghost, X, out)
`)
	if !hasIssue(issues, `model "Ghost" before au_config`) {
		t.Errorf("missing unconfigured-model issue: %v", issues)
	}
}

func TestLintUnboundNNInput(t *testing.T) {
	issues := lintSource(t, `
@au_config(M, DNN, Q, 1, 4)
@au_NN(M, NEVER, out)
`)
	if !hasIssue(issues, `"NEVER" is never extracted`) {
		t.Errorf("missing unbound-input issue: %v", issues)
	}
}

func TestLintWriteBackWithoutNN(t *testing.T) {
	issues := lintSource(t, `@au_write_back(out, y)`)
	if !hasIssue(issues, `no au_NN produces`) {
		t.Errorf("missing write-back issue: %v", issues)
	}
}

func TestLintUnassignedVariables(t *testing.T) {
	issues := lintSource(t, `
@au_config(M, DNN, Q, 1, 4)
@au_extract(X, sz, ghost)
@au_NN(M, X, out)
`)
	if !hasIssue(issues, `variable "ghost" before any assignment`) {
		t.Errorf("missing unassigned-var issue: %v", issues)
	}
	if !hasIssue(issues, `size variable "sz" is never assigned`) {
		t.Errorf("missing size-var issue: %v", issues)
	}
}

func TestLintRestoreWithoutCheckpoint(t *testing.T) {
	issues := lintSource(t, `@au_restore()`)
	if !hasIssue(issues, "no preceding au_checkpoint") {
		t.Errorf("missing restore issue: %v", issues)
	}
}

func TestLintDeadExtract(t *testing.T) {
	issues := lintSource(t, `
x := 1
@au_extract(UNUSED, x)
`)
	if !hasIssue(issues, `"UNUSED" is never fed`) {
		t.Errorf("missing dead-extract issue: %v", issues)
	}
}

func TestLintDoubleConfig(t *testing.T) {
	issues := lintSource(t, `
@au_config(M, DNN, Q, 1, 4)
@au_config(M, DNN, Q, 1, 8)
`)
	if !hasIssue(issues, `configured twice`) {
		t.Errorf("missing double-config issue: %v", issues)
	}
}

func TestLintSerializeOfUnbound(t *testing.T) {
	issues := lintSource(t, `
x := 1
@au_extract(A, x)
@au_serialize(A, B)
`)
	if !hasIssue(issues, `π name "B"`) {
		t.Errorf("missing serialize issue: %v", issues)
	}
	// A was consumed by serialize, so no dead-extract for A.
	if hasIssue(issues, `"A" is never fed`) {
		t.Errorf("false dead-extract for consumed A: %v", issues)
	}
}

func TestLintWriteBackAllocates(t *testing.T) {
	// A variable first written by au_write_back may be extracted later
	// without a prior assignment.
	issues := lintSource(t, `
x := 1
@au_config(M, DNN, Q, 1, 4)
@au_extract(X, x)
@au_NN(M, X, out)
@au_write_back(out, y)
@au_extract(Y2, y)
@au_NN(M, Y2, out2)
`)
	if hasIssue(issues, `"y" before any assignment`) {
		t.Errorf("write-back allocation not tracked: %v", issues)
	}
}

func TestLintIssueString(t *testing.T) {
	li := LintIssue{Index: 3, Message: "boom"}
	if li.String() != "stmt 3: boom" {
		t.Errorf("String = %q", li.String())
	}
}
