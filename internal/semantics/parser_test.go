package semantics

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFullProgram(t *testing.T) {
	src := `
# the Fig. 2 loop in the concrete statement syntax
one := 1
px := 3.5
py := 2
@au_config(Mario, DNN, Q, 2, 256, 64)
@au_checkpoint()
@au_extract(PX, one, px)
@au_extract(PY, one, py)
@au_serialize(PX, PY)
@au_NN(Mario, PXPY, output)
@au_write_back(output, one, actionKey)
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 10 {
		t.Fatalf("parsed %d statements, want 10", len(stmts))
	}
	// Spot-check statement kinds and payloads.
	if a, ok := stmts[1].(Assign); !ok || a.Var != "px" || a.Vals[0] != 3.5 {
		t.Errorf("stmt[1] = %#v", stmts[1])
	}
	cfg, ok := stmts[3].(AuConfig)
	if !ok || cfg.MdName != "Mario" || cfg.Type != DNN || cfg.Algo != Q ||
		cfg.Layers != 2 || !reflect.DeepEqual(cfg.Neurons, []int{256, 64}) {
		t.Errorf("stmt[3] = %#v", stmts[3])
	}
	if _, ok := stmts[4].(AuCheckpoint); !ok {
		t.Errorf("stmt[4] = %#v", stmts[4])
	}
	// The parsed program must execute on the machine.
	m := NewMachine(TR)
	if err := m.Run(stmts...); err != nil {
		t.Fatalf("executing parsed program: %v", err)
	}
	if len(m.Sigma["actionKey"]) != 1 {
		t.Errorf("actionKey = %v", m.Sigma["actionKey"])
	}
	// A final au_restore must roll actionKey back out of σ (it was
	// written after the checkpoint) while θ keeps its trained state.
	theta := m.ThetaCopy()
	if err := m.Exec(AuRestore{}); err != nil {
		t.Fatal(err)
	}
	if _, bound := m.Sigma["actionKey"]; bound {
		t.Error("restore did not roll back the post-checkpoint write-back")
	}
	if !reflect.DeepEqual(m.ThetaCopy(), theta) {
		t.Error("restore modified θ")
	}
	out := m.FormatStores()
	for _, want := range []string{"σ (program store)", "π (database store)", "θ (model store)", "Mario"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatStores missing %q", want)
		}
	}
}

func TestParseWholeArrayForms(t *testing.T) {
	stmts, err := Parse(`
xs := 1 2 3
@au_extract(X, xs)
@au_write_back(X, ys)
`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(TR)
	if err := m.Run(stmts...); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Sigma["ys"], []float64{1, 2, 3}) {
		t.Errorf("ys = %v", m.Sigma["ys"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"x",                           // not an assignment
		"1x := 2",                     // bad identifier
		"x := ",                       // no values
		"x := one",                    // bad number
		"@au_config(m)",               // too few args
		"@au_config(m, GNN, Q, 1)",    // bad model type
		"@au_config(m, DNN, SGD, 1)",  // bad algorithm
		"@au_config(m, DNN, Q, x)",    // bad layer count
		"@au_config(m, DNN, Q, 1, y)", // bad neuron count
		"@au_extract(X)",              // too few args
		"@au_serialize(A)",            // wrong arity
		"@au_NN(m, X)",                // wrong arity
		"@au_write_back(X)",           // too few args
		"@au_checkpoint(x)",           // unexpected arg
		"@au_restore(x)",              // unexpected arg
		"@au_mystery()",               // unknown primitive
		"@au_NN(m, X, out",            // missing paren
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	stmts, err := Parse("\n# comment\n// another\n\nx := 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Errorf("parsed %d statements, want 1", len(stmts))
	}
}

func TestParseErrorNamesLine(t *testing.T) {
	_, err := Parse("x := 1\nbroken line\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %v does not name line 2", err)
	}
}

func TestIsIdent(t *testing.T) {
	for _, good := range []string{"x", "actionKey", "_tmp", "a1"} {
		if !isIdent(good) {
			t.Errorf("rejected %q", good)
		}
	}
	for _, bad := range []string{"", "1a", "a-b", "a b", "π"} {
		if isIdent(bad) {
			t.Errorf("accepted %q", bad)
		}
	}
}
