// Package coverage is the gcov substitute for the paper's self-testing
// case study (Section 2): basic-block hit counters compiled into a
// subject program. The coverage-driven Mario experiment rewards the
// agent whenever new blocks are reached (the paper's
// `if (checkNewCoverage()) reward = 30` annotation, Fig. 2 line 38).
package coverage

import (
	"fmt"
	"sort"
	"sync"
)

// Map tracks hit counts for a fixed set of registered basic blocks.
// Methods are safe for concurrent use.
type Map struct {
	mu    sync.Mutex
	ids   map[string]int
	names []string
	hits  []uint64
	// lastCovered supports CheckNew: the covered-block count at the
	// previous CheckNew call.
	lastCovered int
}

// New creates a map over the given basic-block names. Duplicate names
// panic: block identifiers must be unique, as in gcov.
func New(blocks []string) *Map {
	m := &Map{ids: make(map[string]int, len(blocks))}
	for _, b := range blocks {
		if _, dup := m.ids[b]; dup {
			panic(fmt.Sprintf("coverage: duplicate block %q", b))
		}
		m.ids[b] = len(m.names)
		m.names = append(m.names, b)
	}
	m.hits = make([]uint64, len(m.names))
	return m
}

// Hit increments the block's counter. Unknown blocks panic — an unknown
// block means the instrumentation and registry have diverged.
func (m *Map) Hit(block string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.ids[block]
	if !ok {
		panic(fmt.Sprintf("coverage: unregistered block %q", block))
	}
	m.hits[id]++
}

// Covered reports how many blocks have been hit at least once.
func (m *Map) Covered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coveredLocked()
}

func (m *Map) coveredLocked() int {
	n := 0
	for _, h := range m.hits {
		if h > 0 {
			n++
		}
	}
	return n
}

// Total reports the number of registered blocks.
func (m *Map) Total() int { return len(m.names) }

// Coverage returns the covered fraction in [0, 1].
func (m *Map) Coverage() float64 {
	if len(m.names) == 0 {
		return 0
	}
	return float64(m.Covered()) / float64(len(m.names))
}

// CheckNew reports whether any new block was covered since the previous
// CheckNew call — the reward signal of the self-testing study.
func (m *Map) CheckNew() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.coveredLocked()
	improved := cur > m.lastCovered
	m.lastCovered = cur
	return improved
}

// Hits returns the hit count for one block.
func (m *Map) Hits(block string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.ids[block]
	if !ok {
		return 0
	}
	return m.hits[id]
}

// Uncovered lists never-hit blocks in sorted order — what the tester
// still has to reach.
func (m *Map) Uncovered() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for i, h := range m.hits {
		if h == 0 {
			out = append(out, m.names[i])
		}
	}
	sort.Strings(out)
	return out
}

// Reset clears all counters (but not the registry), starting a fresh
// measurement window.
func (m *Map) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.hits {
		m.hits[i] = 0
	}
	m.lastCovered = 0
}
