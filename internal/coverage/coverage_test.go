package coverage

import (
	"sync"
	"testing"
)

func TestBasics(t *testing.T) {
	m := New([]string{"a", "b", "c"})
	if m.Total() != 3 || m.Covered() != 0 || m.Coverage() != 0 {
		t.Fatal("fresh map not empty")
	}
	m.Hit("a")
	m.Hit("a")
	if m.Covered() != 1 {
		t.Errorf("Covered = %d", m.Covered())
	}
	if m.Hits("a") != 2 || m.Hits("b") != 0 || m.Hits("zz") != 0 {
		t.Error("Hits wrong")
	}
	if got := m.Coverage(); got != 1.0/3 {
		t.Errorf("Coverage = %v", got)
	}
}

func TestDuplicateBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate block did not panic")
		}
	}()
	New([]string{"x", "x"})
}

func TestUnknownHitPanics(t *testing.T) {
	m := New([]string{"a"})
	defer func() {
		if recover() == nil {
			t.Error("unknown hit did not panic")
		}
	}()
	m.Hit("ghost")
}

func TestCheckNew(t *testing.T) {
	m := New([]string{"a", "b"})
	if m.CheckNew() {
		t.Error("fresh map reported new coverage")
	}
	m.Hit("a")
	if !m.CheckNew() {
		t.Error("new block not reported")
	}
	m.Hit("a")
	if m.CheckNew() {
		t.Error("repeat hit reported as new")
	}
	m.Hit("b")
	if !m.CheckNew() {
		t.Error("second new block not reported")
	}
}

func TestUncovered(t *testing.T) {
	m := New([]string{"b", "a", "c"})
	m.Hit("b")
	got := m.Uncovered()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("Uncovered = %v", got)
	}
}

func TestReset(t *testing.T) {
	m := New([]string{"a"})
	m.Hit("a")
	m.CheckNew()
	m.Reset()
	if m.Covered() != 0 {
		t.Error("Reset did not clear hits")
	}
	m.Hit("a")
	if !m.CheckNew() {
		t.Error("Reset did not clear the CheckNew baseline")
	}
}

func TestEmptyMapCoverage(t *testing.T) {
	m := New(nil)
	if m.Coverage() != 0 {
		t.Error("empty map coverage not 0")
	}
}

func TestConcurrentHits(t *testing.T) {
	m := New([]string{"a"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Hit("a")
			}
		}()
	}
	wg.Wait()
	if m.Hits("a") != 8000 {
		t.Errorf("lost hits: %d", m.Hits("a"))
	}
}
