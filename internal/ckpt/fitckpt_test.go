package ckpt

import (
	"errors"
	"reflect"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

func TestFitCheckpointRoundTrip(t *testing.T) {
	in := &FitCheckpoint{
		Model:     "controller",
		Epochs:    10,
		BatchSize: 16,
		Epoch:     3,
		Batch:     7,
		Batches:   55,
		LossSum:   1.25e-3,
		RNGState:  0xDEADBEEFCAFEF00D,
		Params:    []byte{1, 2, 3, 4, 5},
		OptState:  []byte{9, 8, 7},
	}
	out, err := DecodeFitCheckpoint(in.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestFitCheckpointEncodeDeterministic(t *testing.T) {
	c := &FitCheckpoint{Model: "m", Epochs: 1, BatchSize: 2, Params: []byte{1}, OptState: []byte{2}}
	a, b := c.Encode(), c.Encode()
	if !reflect.DeepEqual(a, b) {
		t.Error("Encode is not deterministic")
	}
}

func TestFitCheckpointDecodeRejectsDamage(t *testing.T) {
	good := (&FitCheckpoint{
		Model: "m", Epochs: 2, BatchSize: 4, Params: []byte{1, 2}, OptState: []byte{3},
	}).Encode()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
		"short header": good[:6],
	}
	for name, data := range cases {
		if _, err := DecodeFitCheckpoint(data); err == nil {
			t.Errorf("%s: decode accepted damaged checkpoint", name)
		} else if !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("%s: error %v does not wrap auerr.ErrCorruptStore", name, err)
		}
	}

	// Oversized length prefix must not allocate or panic.
	bad := append([]byte(nil), good...)
	bad[8] = 0xFF // model name length low byte
	bad[9] = 0xFF
	if _, err := DecodeFitCheckpoint(bad); !errors.Is(err, auerr.ErrCorruptStore) {
		t.Errorf("oversized name length: %v", err)
	}
}
