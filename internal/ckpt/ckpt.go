// Package ckpt implements the checkpoint/restore substrate behind the
// au_checkpoint and au_restore primitives (paper Section 5). The paper
// checkpoints the whole process with KVM because its subjects are
// arbitrary C/C++ programs; here the subjects are Go values that
// implement Snapshotter, so a checkpoint is a deep copy of the program
// state σ together with the database store π.
//
// Two invariants from the semantics (Fig. 8) are enforced and tested:
//
//  1. σ and π are checkpointed and restored *together* — their states
//     must stay mutually consistent (rule CHECKPOINT/RESTORE).
//  2. Model state θ is *never* part of a checkpoint: the model must keep
//     accumulating knowledge across rollbacks, which is what makes
//     reinforcement-learning training under repeated au_restore work.
//
// The package also carries a calibrated cost model translating snapshot
// byte sizes into the KVM-scale wall-clock numbers of Table 2, so the
// table's checkpoint/restore columns can be regenerated.
package ckpt

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// ckptMetrics exports checkpoint/restore activity: counts, snapshot
// bytes, and the *measured* wall-clock of the deep copies (the modeled
// KVM-scale costs stay in Stats for Table 2). Lazily resolved after
// telemetry is enabled; nil and branch-only while disabled.
type ckptMetrics struct {
	checkpoints *obs.Counter
	restores    *obs.Counter
	bytes       *obs.Counter
	ckptSize    *obs.Histogram
	ckptDur     *obs.Histogram
	rstDur      *obs.Histogram
}

var cm atomic.Pointer[ckptMetrics]

func metrics() *ckptMetrics {
	if m := cm.Load(); m != nil {
		return m
	}
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	m := &ckptMetrics{
		checkpoints: reg.Counter("autonomizer_ckpt_checkpoints_total",
			"au_checkpoint snapshots taken.", nil),
		restores: reg.Counter("autonomizer_ckpt_restores_total",
			"au_restore rollbacks applied.", nil),
		bytes: reg.Counter("autonomizer_ckpt_checkpoint_bytes_total",
			"Cumulative bytes captured by checkpoints.", nil),
		ckptSize: reg.Histogram("autonomizer_ckpt_checkpoint_size_bytes",
			"Size of individual checkpoint snapshots.", obs.DefSizeBuckets, nil),
		ckptDur: reg.Histogram("autonomizer_ckpt_checkpoint_duration_seconds",
			"Measured wall clock of the checkpoint deep copy.", nil, nil),
		rstDur: reg.Histogram("autonomizer_ckpt_restore_duration_seconds",
			"Measured wall clock of the restore copy-back.", nil, nil),
	}
	if !cm.CompareAndSwap(nil, m) {
		return cm.Load()
	}
	return m
}

// resetMetricsForTest drops the cached instruments so tests can attach
// a fresh registry.
func resetMetricsForTest() { cm.Store(nil) }

// Snapshotter is implemented by program state that can be checkpointed.
// Snapshot must return a deep copy; Restore must replace the live state
// with (a copy of) a value previously produced by Snapshot.
type Snapshotter interface {
	Snapshot() any
	Restore(snapshot any)
}

// StoreSnapshotter is the subset of the database store the manager
// needs; *db.Store satisfies it.
type StoreSnapshotter interface {
	Snapshot() map[string][]float64
	RestoreSnapshot(map[string][]float64)
}

// ErrNoCheckpoint is returned by Restore when no checkpoint exists.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint taken")

// checkpoint is one consistent ⟨σ, π⟩ snapshot.
type checkpoint struct {
	program any
	dbState map[string][]float64
}

// Manager owns the checkpoint stack for one autonomized execution. The
// paper keeps a single rolling checkpoint (taken once at the start of
// the game loop); Manager supports that usage plus an explicit stack
// for nested scopes.
type Manager struct {
	stack  []checkpoint
	stats  Stats
	meter  CostModel
	gauges struct {
		lastSnapshotBytes int
	}
}

// Stats aggregates checkpoint activity for Table 2.
type Stats struct {
	Checkpoints    int
	Restores       int
	BytesSnapshot  int           // bytes captured by the most recent checkpoint
	ModeledCkptDur time.Duration // KVM-scale modeled duration of last checkpoint
	ModeledRstDur  time.Duration // KVM-scale modeled duration of last restore
	MeasuredCkpt   time.Duration // actual wall clock of last checkpoint
	MeasuredRst    time.Duration // actual wall clock of last restore
}

// NewManager returns a Manager with the default KVM cost model.
func NewManager() *Manager {
	return &Manager{meter: DefaultKVMCostModel()}
}

// SetCostModel overrides the wall-clock model (tests use a zero model).
func (m *Manager) SetCostModel(c CostModel) { m.meter = c }

// Checkpoint captures ⟨σ, π⟩. sizeBytes is the caller's accounting of
// the program-state footprint (db bytes are added automatically).
func (m *Manager) Checkpoint(prog Snapshotter, store StoreSnapshotter, progBytes int) {
	start := time.Now()
	cp := checkpoint{program: prog.Snapshot(), dbState: store.Snapshot()}
	m.stack = append(m.stack, cp)
	dbBytes := 0
	for k, v := range cp.dbState {
		dbBytes += len(k) + 8*len(v)
	}
	total := progBytes + dbBytes
	m.gauges.lastSnapshotBytes = total
	m.stats.Checkpoints++
	m.stats.BytesSnapshot = total
	m.stats.MeasuredCkpt = time.Since(start)
	m.stats.ModeledCkptDur = m.meter.CheckpointDuration(total)
	if om := metrics(); om != nil {
		om.checkpoints.Inc()
		om.bytes.Add(uint64(total))
		om.ckptSize.Observe(float64(total))
		om.ckptDur.Observe(m.stats.MeasuredCkpt.Seconds())
	}
}

// Restore rolls ⟨σ, π⟩ back to the most recent checkpoint, which stays
// on the stack so repeated end-states (e.g. Mario dying many times
// during training) keep restoring the same point, as in the paper's
// game loop. Model state is untouched by construction: the Manager
// never sees θ.
func (m *Manager) Restore(prog Snapshotter, store StoreSnapshotter) error {
	if len(m.stack) == 0 {
		return ErrNoCheckpoint
	}
	start := time.Now()
	cp := m.stack[len(m.stack)-1]
	prog.Restore(cp.program)
	store.RestoreSnapshot(cp.dbState)
	m.stats.Restores++
	m.stats.MeasuredRst = time.Since(start)
	m.stats.ModeledRstDur = m.meter.RestoreDuration(m.gauges.lastSnapshotBytes)
	if om := metrics(); om != nil {
		om.restores.Inc()
		om.rstDur.Observe(m.stats.MeasuredRst.Seconds())
	}
	return nil
}

// Pop discards the most recent checkpoint (leaving earlier ones), for
// hosts that scope checkpoints to phases.
func (m *Manager) Pop() error {
	if len(m.stack) == 0 {
		return ErrNoCheckpoint
	}
	m.stack = m.stack[:len(m.stack)-1]
	return nil
}

// Depth reports the number of stacked checkpoints.
func (m *Manager) Depth() int { return len(m.stack) }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// CostModel converts snapshot sizes into modeled wall-clock durations.
// The paper's Table 2 reports ~25-27 s to create and ~6-7.5 s to restore
// a KVM checkpoint of a full VM; those costs are dominated by a fixed
// VM-wide component plus a size-dependent copy component.
type CostModel struct {
	// CkptFixed/RstFixed model the size-independent KVM overhead.
	CkptFixed, RstFixed time.Duration
	// CkptPerMB/RstPerMB model the per-megabyte copy cost.
	CkptPerMB, RstPerMB time.Duration
}

// DefaultKVMCostModel is calibrated so that the RL subjects in Table 2
// (whole-process footprints in the hundreds of MB) land in the paper's
// 25-27 s checkpoint / 6-7.5 s restore band.
func DefaultKVMCostModel() CostModel {
	return CostModel{
		CkptFixed: 25 * time.Second,
		RstFixed:  6 * time.Second,
		CkptPerMB: 12 * time.Millisecond,
		RstPerMB:  9 * time.Millisecond,
	}
}

// ZeroCostModel models instantaneous checkpoints, for tests.
func ZeroCostModel() CostModel { return CostModel{} }

// CheckpointDuration returns the modeled time to create a checkpoint of
// the given size.
func (c CostModel) CheckpointDuration(bytes int) time.Duration {
	return c.CkptFixed + time.Duration(float64(bytes)/(1<<20)*float64(c.CkptPerMB))
}

// RestoreDuration returns the modeled time to restore a checkpoint of
// the given size.
func (c CostModel) RestoreDuration(bytes int) time.Duration {
	return c.RstFixed + time.Duration(float64(bytes)/(1<<20)*float64(c.RstPerMB))
}

// String renders the model compactly.
func (c CostModel) String() string {
	return fmt.Sprintf("CostModel{ckpt %v + %v/MB, restore %v + %v/MB}",
		c.CkptFixed, c.CkptPerMB, c.RstFixed, c.RstPerMB)
}
