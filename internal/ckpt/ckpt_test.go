package ckpt

import (
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/db"
)

// fakeProg is a minimal Snapshotter: a map of named scalars.
type fakeProg struct {
	vars map[string]float64
}

func newFakeProg() *fakeProg { return &fakeProg{vars: map[string]float64{}} }

func (p *fakeProg) Snapshot() any {
	cp := make(map[string]float64, len(p.vars))
	for k, v := range p.vars {
		cp[k] = v
	}
	return cp
}

func (p *fakeProg) Restore(s any) {
	snap := s.(map[string]float64)
	p.vars = make(map[string]float64, len(snap))
	for k, v := range snap {
		p.vars[k] = v
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	if err := m.Restore(newFakeProg(), db.New()); err != ErrNoCheckpoint {
		t.Errorf("Restore err = %v, want ErrNoCheckpoint", err)
	}
	if err := m.Pop(); err != ErrNoCheckpoint {
		t.Errorf("Pop err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	prog := newFakeProg()
	store := db.New()
	prog.vars["x"] = 1
	store.Append("f", 10)

	m.Checkpoint(prog, store, 8)

	prog.vars["x"] = 99
	prog.vars["y"] = 5
	store.Append("f", 20)
	store.Append("g", 30)

	if err := m.Restore(prog, store); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if prog.vars["x"] != 1 || len(prog.vars) != 1 {
		t.Errorf("program state not rolled back: %v", prog.vars)
	}
	if store.Len("f") != 1 || store.Len("g") != 0 {
		t.Errorf("db state not rolled back: %v", store)
	}
}

// TestRepeatedRestore mirrors the paper's training loop: Mario dies many
// times and each au_restore must return to the same checkpoint.
func TestRepeatedRestore(t *testing.T) {
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	prog := newFakeProg()
	store := db.New()
	prog.vars["pos"] = 0
	m.Checkpoint(prog, store, 8)
	for episode := 0; episode < 5; episode++ {
		prog.vars["pos"] = float64(episode * 100)
		if err := m.Restore(prog, store); err != nil {
			t.Fatalf("Restore %d: %v", episode, err)
		}
		if prog.vars["pos"] != 0 {
			t.Fatalf("episode %d: pos = %v after restore", episode, prog.vars["pos"])
		}
	}
	if m.Stats().Restores != 5 || m.Stats().Checkpoints != 1 {
		t.Errorf("stats = %+v", m.Stats())
	}
}

// TestModelStateSurvivesRestore verifies invariant 2: anything outside
// ⟨σ, π⟩ — here a stand-in for model weights — is untouched by restore.
func TestModelStateSurvivesRestore(t *testing.T) {
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	prog := newFakeProg()
	store := db.New()
	modelWeights := []float64{0.5} // θ, deliberately outside the manager

	m.Checkpoint(prog, store, 8)
	modelWeights[0] = 0.9 // learning happened
	if err := m.Restore(prog, store); err != nil {
		t.Fatal(err)
	}
	if modelWeights[0] != 0.9 {
		t.Error("model state was rolled back; θ must accumulate learning")
	}
}

func TestStackedCheckpoints(t *testing.T) {
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	prog := newFakeProg()
	store := db.New()

	prog.vars["x"] = 1
	m.Checkpoint(prog, store, 8)
	prog.vars["x"] = 2
	m.Checkpoint(prog, store, 8)
	if m.Depth() != 2 {
		t.Fatalf("Depth = %d", m.Depth())
	}
	prog.vars["x"] = 3
	if err := m.Restore(prog, store); err != nil {
		t.Fatal(err)
	}
	if prog.vars["x"] != 2 {
		t.Errorf("restored to %v, want inner checkpoint 2", prog.vars["x"])
	}
	if err := m.Pop(); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(prog, store); err != nil {
		t.Fatal(err)
	}
	if prog.vars["x"] != 1 {
		t.Errorf("restored to %v, want outer checkpoint 1", prog.vars["x"])
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultKVMCostModel()
	// A ~100 MB process footprint must land in the paper's observed
	// bands: checkpoint ~25-27s, restore ~6-7.5s.
	ck := c.CheckpointDuration(100 << 20)
	if ck < 25*time.Second || ck > 28*time.Second {
		t.Errorf("modeled checkpoint = %v, want 25-28s", ck)
	}
	rs := c.RestoreDuration(100 << 20)
	if rs < 6*time.Second || rs > 8*time.Second {
		t.Errorf("modeled restore = %v, want 6-8s", rs)
	}
	// Bigger snapshots must model slower.
	if c.CheckpointDuration(1<<30) <= c.CheckpointDuration(1<<20) {
		t.Error("cost model not monotone in size")
	}
	z := ZeroCostModel()
	if z.CheckpointDuration(1<<30) != 0 || z.RestoreDuration(1<<30) != 0 {
		t.Error("zero cost model not zero")
	}
	if got := c.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestStatsAccounting(t *testing.T) {
	m := NewManager()
	m.SetCostModel(DefaultKVMCostModel())
	prog := newFakeProg()
	store := db.New()
	store.Append("big", make([]float64, 1000)...)
	m.Checkpoint(prog, store, 50)
	st := m.Stats()
	if st.BytesSnapshot != 50+3+8000 {
		t.Errorf("BytesSnapshot = %d, want %d", st.BytesSnapshot, 50+3+8000)
	}
	if st.ModeledCkptDur < 25*time.Second {
		t.Errorf("ModeledCkptDur = %v", st.ModeledCkptDur)
	}
}
