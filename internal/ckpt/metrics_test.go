package ckpt

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
)

type metricsProg struct{ v float64 }

func (p *metricsProg) Snapshot() any    { return *p }
func (p *metricsProg) Restore(snap any) { *p = snap.(metricsProg) }

// TestCheckpointMetrics checks the checkpoint/restore counters, byte
// accounting and measured-duration histograms.
func TestCheckpointMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()

	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	store := db.New()
	store.Append("x", 1, 2, 3)
	prog := &metricsProg{v: 1}

	m.Checkpoint(prog, store, 16)
	prog.v = 2
	if err := m.Restore(prog, store); err != nil {
		t.Fatal(err)
	}
	if prog.v != 1 {
		t.Fatalf("restore did not roll back program state: %v", prog.v)
	}

	if got := reg.Counter("autonomizer_ckpt_checkpoints_total", "", nil).Value(); got != 1 {
		t.Errorf("checkpoints = %d, want 1", got)
	}
	if got := reg.Counter("autonomizer_ckpt_restores_total", "", nil).Value(); got != 1 {
		t.Errorf("restores = %d, want 1", got)
	}
	wantBytes := uint64(16 + 1 + 8*3) // progBytes + len("x") + 3 float64s
	if got := reg.Counter("autonomizer_ckpt_checkpoint_bytes_total", "", nil).Value(); got != wantBytes {
		t.Errorf("checkpoint bytes = %d, want %d", got, wantBytes)
	}
	if n := reg.Histogram("autonomizer_ckpt_checkpoint_size_bytes", "", obs.DefSizeBuckets, nil).Count(); n != 1 {
		t.Errorf("size observations = %d, want 1", n)
	}
	if n := reg.Histogram("autonomizer_ckpt_checkpoint_duration_seconds", "", nil, nil).Count(); n != 1 {
		t.Errorf("checkpoint duration observations = %d, want 1", n)
	}
	if n := reg.Histogram("autonomizer_ckpt_restore_duration_seconds", "", nil, nil).Count(); n != 1 {
		t.Errorf("restore duration observations = %d, want 1", n)
	}
}

// TestCheckpointMetricsDisabled pins the nil fast path.
func TestCheckpointMetricsDisabled(t *testing.T) {
	prev := obs.SetDefault(nil)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()
	if m := metrics(); m != nil {
		t.Fatal("metrics() non-nil while telemetry disabled")
	}
	m := NewManager()
	m.SetCostModel(ZeroCostModel())
	store := db.New()
	prog := &metricsProg{}
	m.Checkpoint(prog, store, 0)
	if err := m.Restore(prog, store); err != nil {
		t.Fatal(err)
	}
}
