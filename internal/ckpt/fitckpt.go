package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// FitCheckpoint is a resumable snapshot of an offline SL fit, taken at a
// minibatch boundary. It captures everything the training loop needs to
// continue bit-identically: the network parameters, the optimizer state
// (Adam moments and step counter), the model RNG stream as it was at the
// START of the in-progress epoch — so a resume re-draws the identical
// shuffle permutation and skips the batches already applied — and the
// loop position itself.
//
// The checkpoint is a value, not a file: the durable training queue
// journals the encoded form into its WAL at each minibatch boundary, and
// crash recovery hands the latest one back to the trainer.
type FitCheckpoint struct {
	// Model names the model being fitted; a resume against a different
	// model is rejected.
	Model string
	// Epochs and BatchSize are the parameters of the interrupted Fit
	// call. A resume must use the same values or the trajectory would
	// diverge from the uninterrupted run.
	Epochs    int
	BatchSize int

	// Epoch is the number of fully completed epochs; Batch the number of
	// completed minibatches within the in-progress epoch; Batches the
	// total completed optimizer steps across all epochs.
	Epoch   int
	Batch   int
	Batches int
	// LossSum accumulates the per-batch losses of the in-progress epoch,
	// so the resumed epoch reports the same mean loss.
	LossSum float64

	// RNGState is the model RNG state captured at the start of the
	// in-progress epoch, before the shuffle permutation was drawn.
	RNGState uint64
	// Params is the nn.Network.MarshalParams image at the boundary.
	Params []byte
	// OptState is the nn.Network.MarshalOptState image (Adam moments and
	// step counter) at the boundary.
	OptState []byte
}

const (
	fitCkptMagic   = "AUFC"
	fitCkptVersion = 1
)

// Encode serializes the checkpoint (little-endian, "AUFC" | version |
// fields). The encoding is deterministic: identical checkpoints encode
// to identical bytes.
func (c *FitCheckpoint) Encode() []byte {
	var buf bytes.Buffer
	buf.Grow(64 + len(c.Model) + len(c.Params) + len(c.OptState))
	buf.WriteString(fitCkptMagic)
	le := binary.LittleEndian
	var tmp [8]byte
	w32 := func(v uint32) { le.PutUint32(tmp[:4], v); buf.Write(tmp[:4]) }
	w64 := func(v uint64) { le.PutUint64(tmp[:], v); buf.Write(tmp[:]) }
	w32(fitCkptVersion)
	w32(uint32(len(c.Model)))
	buf.WriteString(c.Model)
	w32(uint32(c.Epochs))
	w32(uint32(c.BatchSize))
	w32(uint32(c.Epoch))
	w32(uint32(c.Batch))
	w32(uint32(c.Batches))
	w64(math.Float64bits(c.LossSum))
	w64(c.RNGState)
	w32(uint32(len(c.Params)))
	buf.Write(c.Params)
	w32(uint32(len(c.OptState)))
	buf.Write(c.OptState)
	return buf.Bytes()
}

// DecodeFitCheckpoint parses an Encode image. Damage is reported as an
// error wrapping auerr.ErrCorruptStore: a checkpoint that cannot be
// decoded exactly must never be silently resumed from.
func DecodeFitCheckpoint(data []byte) (*FitCheckpoint, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: ckpt: fit checkpoint: %s", auerr.ErrCorruptStore, fmt.Sprintf(format, args...))
	}
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != fitCkptMagic {
		return nil, corrupt("bad magic %q", magic)
	}
	le := binary.LittleEndian
	r32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return le.Uint32(b[:]), nil
	}
	r64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return le.Uint64(b[:]), nil
	}
	ver, err := r32()
	if err != nil {
		return nil, corrupt("truncated header")
	}
	if ver != fitCkptVersion {
		return nil, corrupt("unsupported version %d", ver)
	}
	nameLen, err := r32()
	if err != nil || int64(nameLen) > int64(r.Len()) {
		return nil, corrupt("bad model name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, corrupt("truncated model name")
	}
	c := &FitCheckpoint{Model: string(name)}
	ints := []*int{&c.Epochs, &c.BatchSize, &c.Epoch, &c.Batch, &c.Batches}
	for _, dst := range ints {
		v, err := r32()
		if err != nil {
			return nil, corrupt("truncated loop position")
		}
		*dst = int(v)
	}
	lossBits, err := r64()
	if err != nil {
		return nil, corrupt("truncated loss sum")
	}
	c.LossSum = math.Float64frombits(lossBits)
	if c.RNGState, err = r64(); err != nil {
		return nil, corrupt("truncated rng state")
	}
	readBlob := func(what string) ([]byte, error) {
		n, err := r32()
		if err != nil || int64(n) > int64(r.Len()) {
			return nil, corrupt("bad %s length", what)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, corrupt("truncated %s", what)
		}
		return b, nil
	}
	if c.Params, err = readBlob("params"); err != nil {
		return nil, err
	}
	if c.OptState, err = readBlob("optimizer state"); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, corrupt("%d trailing bytes", r.Len())
	}
	return c, nil
}
