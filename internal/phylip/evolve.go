package phylip

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Base indices: A=0, C=1, G=2, T=3. Transitions are A↔G and C↔T.

// EvolveConfig parameterizes the sequence-evolution simulator that
// generates workloads with known ground truth (the substitute for the
// paper's real alignment datasets).
type EvolveConfig struct {
	// Taxa is the number of leaf sequences (default 8).
	Taxa int
	// SeqLen is the sequence length (default 300).
	SeqLen int
	// Kappa is the true transition/transversion rate ratio of the
	// generating Kimura two-parameter process (default 2).
	Kappa float64
	// GammaAlpha is the shape of the gamma-distributed per-site rate
	// heterogeneity; larger means more uniform (default 10, near-
	// homogeneous).
	GammaAlpha float64
	// MeanBranch is the expected branch length in substitutions/site
	// (default 0.08).
	MeanBranch float64
}

func (c *EvolveConfig) fillDefaults() {
	if c.Taxa == 0 {
		c.Taxa = 8
	}
	if c.SeqLen == 0 {
		c.SeqLen = 300
	}
	if c.Kappa == 0 {
		c.Kappa = 2
	}
	if c.GammaAlpha == 0 {
		c.GammaAlpha = 10
	}
	if c.MeanBranch == 0 {
		c.MeanBranch = 0.08
	}
}

// Dataset is one generated phylogenetics workload.
type Dataset struct {
	// Seqs holds one base-index sequence per taxon.
	Seqs [][]byte
	// TrueTree is the generating topology.
	TrueTree *Tree
	// Config records the generating parameters (the hidden quantities
	// the target variables should adapt to).
	Config EvolveConfig
}

// Evolve generates a random binary tree over cfg.Taxa leaves and evolves
// sequences down it under K2P(kappa) with gamma rate heterogeneity.
func Evolve(rng *stats.RNG, cfg EvolveConfig) *Dataset {
	cfg.fillDefaults()
	n := cfg.Taxa

	// Random topology by sequential addition: start from a 3-leaf star,
	// attach each new leaf to a random existing edge.
	tree := NewTree(n)
	internal := n // next internal node id
	type edge struct {
		a, b int
		len  float64
	}
	branch := func() float64 { return cfg.MeanBranch * (0.25 + 1.5*rng.Float64()) }
	edges := []edge{}
	if n < 3 {
		if n == 2 {
			edges = append(edges, edge{0, 1, branch()})
		}
	} else {
		c := internal
		internal++
		edges = append(edges, edge{0, c, branch()}, edge{1, c, branch()}, edge{2, c, branch()})
		for leaf := 3; leaf < n; leaf++ {
			i := rng.Intn(len(edges))
			e := edges[i]
			mid := internal
			internal++
			// Split e at mid, hang leaf off mid.
			edges[i] = edge{e.a, mid, e.len / 2}
			edges = append(edges,
				edge{mid, e.b, e.len / 2},
				edge{leaf, mid, branch()})
		}
	}
	for _, e := range edges {
		tree.AddEdge(e.a, e.b, e.len)
	}

	// Per-site rates from a gamma(alpha, 1/alpha) distribution (mean 1).
	rates := make([]float64, cfg.SeqLen)
	for i := range rates {
		rates[i] = gammaSample(rng, cfg.GammaAlpha) / cfg.GammaAlpha
	}

	// Root an arbitrary internal node, evolve down.
	root := n
	if tree.NodeCount() == 0 {
		root = 0
	} else if _, ok := tree.Adj[root]; !ok {
		root = 0
	}
	rootSeq := make([]byte, cfg.SeqLen)
	for i := range rootSeq {
		rootSeq[i] = byte(rng.Intn(4))
	}
	seqs := make([][]byte, n)
	var walk func(node, parent int, seq []byte)
	walk = func(node, parent int, seq []byte) {
		if node < n {
			seqs[node] = seq
		}
		for _, e := range tree.Adj[node] {
			if e.To == parent {
				continue
			}
			child := make([]byte, len(seq))
			for i, b := range seq {
				child[i] = evolveBase(rng, b, e.Length*rates[i], cfg.Kappa)
			}
			walk(e.To, node, child)
		}
	}
	walk(root, -1, rootSeq)

	return &Dataset{Seqs: seqs, TrueTree: tree, Config: cfg}
}

// evolveBase mutates one base over branch length t under K2P(kappa),
// using the exact K2P transition probabilities.
func evolveBase(rng *stats.RNG, base byte, t, kappa float64) byte {
	// K2P rates: transition rate = kappa*beta, each transversion type =
	// beta, normalized so total substitution rate = 1 per unit t:
	// kappa*beta + 2*beta = 1.
	beta := 1 / (kappa + 2)
	alpha := kappa * beta
	// Probabilities after time t (standard K2P solution):
	e1 := math.Exp(-4 * beta * t)           // controls transversions
	e2 := math.Exp(-2 * (alpha + beta) * t) // controls transitions
	pTransversionEach := 0.25 * (1 - e1)    // to each of 2 transversion targets
	pTransition := 0.25 + 0.25*e1 - 0.5*e2  // to the transition target
	pSame := 1 - pTransition - 2*pTransversionEach

	u := rng.Float64()
	switch {
	case u < pSame:
		return base
	case u < pSame+pTransition:
		return transitionPartner(base)
	case u < pSame+pTransition+pTransversionEach:
		return transversionPartners(base)[0]
	default:
		return transversionPartners(base)[1]
	}
}

func transitionPartner(b byte) byte {
	switch b {
	case 0:
		return 2 // A→G
	case 2:
		return 0 // G→A
	case 1:
		return 3 // C→T
	default:
		return 1 // T→C
	}
}

func transversionPartners(b byte) [2]byte {
	switch b {
	case 0, 2: // purines → pyrimidines
		return [2]byte{1, 3}
	default: // pyrimidines → purines
		return [2]byte{0, 2}
	}
}

// gammaSample draws from gamma(shape, 1) via Marsaglia & Tsang for
// shape >= 1 and the boost trick for shape < 1.
func gammaSample(rng *stats.RNG, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
