// Package phylip implements a distance-based phylogeny-inference
// pipeline in the style of PHYLIP's dnadist + neighbor programs — the
// paper's third supervised-learning subject (the one scored "lower is
// better" in Table 3; our score is the normalized Robinson-Foulds
// distance between the inferred and true trees).
//
// The pipeline: DNA sequences → pairwise evolutionary distances
// (Kimura two-parameter model with tunable assumed transition/
// transversion ratio, gamma rate-heterogeneity shape, and saturation
// cap) → neighbor-joining tree. The three distance parameters are the
// target variables: their ideal values depend on how the input
// sequences actually evolved, which is recoverable from internal
// statistics (observed transition/transversion ratios, divergence
// dispersion) — exactly the structure Autonomizer exploits.
package phylip

import (
	"fmt"
	"sort"
	"strings"
)

// Tree is an unrooted binary phylogeny over taxa 0..NumTaxa-1.
// Internal nodes are numbered from NumTaxa upward; Adj is the adjacency
// list with branch lengths.
type Tree struct {
	NumTaxa int
	Adj     map[int][]Edge
}

// Edge is one branch.
type Edge struct {
	To     int
	Length float64
}

// NewTree creates an edgeless tree over n taxa.
func NewTree(n int) *Tree {
	return &Tree{NumTaxa: n, Adj: make(map[int][]Edge)}
}

// AddEdge connects a and b with the given branch length (both ways).
func (t *Tree) AddEdge(a, b int, length float64) {
	t.Adj[a] = append(t.Adj[a], Edge{To: b, Length: length})
	t.Adj[b] = append(t.Adj[b], Edge{To: a, Length: length})
}

// NodeCount returns the number of nodes with at least one edge.
func (t *Tree) NodeCount() int { return len(t.Adj) }

// Splits returns the non-trivial bipartitions induced by internal
// edges, each encoded as a canonical sorted string of the smaller side's
// taxon set. Robinson-Foulds distance compares these sets.
func (t *Tree) Splits() map[string]bool {
	splits := make(map[string]bool)
	type edgeKey struct{ a, b int }
	seen := make(map[edgeKey]bool)
	for a, edges := range t.Adj {
		for _, e := range edges {
			k := edgeKey{a, e.To}
			if a > e.To {
				k = edgeKey{e.To, a}
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			side := t.taxaBeyond(a, e.To)
			if len(side) <= 1 || len(side) >= t.NumTaxa-1 {
				continue // trivial split
			}
			splits[canonicalSplit(side, t.NumTaxa)] = true
		}
	}
	return splits
}

// taxaBeyond collects the taxa reachable from `to` without crossing the
// edge (from, to).
func (t *Tree) taxaBeyond(from, to int) []int {
	var out []int
	stack := []int{to}
	visited := map[int]bool{from: true, to: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur < t.NumTaxa {
			out = append(out, cur)
		}
		for _, e := range t.Adj[cur] {
			if !visited[e.To] {
				visited[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return out
}

// canonicalSplit encodes a taxon set (or its complement, whichever is
// lexicographically smaller) as a comparable string.
func canonicalSplit(side []int, numTaxa int) string {
	in := make([]bool, numTaxa)
	for _, x := range side {
		in[x] = true
	}
	if len(side)*2 > numTaxa || (len(side)*2 == numTaxa && !in[0]) {
		for i := range in {
			in[i] = !in[i]
		}
	}
	var ids []int
	for i, b := range in {
		if b {
			ids = append(ids, i)
		}
	}
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// RobinsonFoulds returns the symmetric-difference count between the two
// trees' non-trivial splits, normalized to [0, 1] by the maximum
// possible (2·(n-3) for binary trees over the same n taxa). Lower is
// better; 0 means topologically identical.
func RobinsonFoulds(a, b *Tree) float64 {
	if a.NumTaxa != b.NumTaxa {
		panic(fmt.Sprintf("phylip: RF over different taxon sets (%d vs %d)", a.NumTaxa, b.NumTaxa))
	}
	sa, sb := a.Splits(), b.Splits()
	diff := 0
	for s := range sa {
		if !sb[s] {
			diff++
		}
	}
	for s := range sb {
		if !sa[s] {
			diff++
		}
	}
	max := 2 * (a.NumTaxa - 3)
	if max <= 0 {
		return 0
	}
	return float64(diff) / float64(max)
}
