package phylip

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestTreeSplits(t *testing.T) {
	// Quartet ((0,1),(2,3)): one non-trivial split {0,1}|{2,3}.
	tr := NewTree(4)
	tr.AddEdge(0, 4, 1)
	tr.AddEdge(1, 4, 1)
	tr.AddEdge(2, 5, 1)
	tr.AddEdge(3, 5, 1)
	tr.AddEdge(4, 5, 1)
	splits := tr.Splits()
	if len(splits) != 1 {
		t.Fatalf("splits = %v, want exactly 1", splits)
	}
	if !splits["0,1"] {
		t.Errorf("split encoding = %v, want {0,1}", splits)
	}
}

func TestRobinsonFoulds(t *testing.T) {
	mk := func(pairing [2][2]int) *Tree {
		tr := NewTree(4)
		tr.AddEdge(pairing[0][0], 4, 1)
		tr.AddEdge(pairing[0][1], 4, 1)
		tr.AddEdge(pairing[1][0], 5, 1)
		tr.AddEdge(pairing[1][1], 5, 1)
		tr.AddEdge(4, 5, 1)
		return tr
	}
	a := mk([2][2]int{{0, 1}, {2, 3}})
	b := mk([2][2]int{{0, 1}, {2, 3}})
	c := mk([2][2]int{{0, 2}, {1, 3}})
	if got := RobinsonFoulds(a, b); got != 0 {
		t.Errorf("RF of identical trees = %v", got)
	}
	if got := RobinsonFoulds(a, c); got != 1 {
		t.Errorf("RF of conflicting quartets = %v, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("RF over mismatched taxa did not panic")
		}
	}()
	RobinsonFoulds(a, NewTree(5))
}

func TestEvolveShapes(t *testing.T) {
	rng := stats.NewRNG(1)
	ds := Evolve(rng, EvolveConfig{Taxa: 6, SeqLen: 200})
	if len(ds.Seqs) != 6 {
		t.Fatalf("taxa = %d", len(ds.Seqs))
	}
	for i, s := range ds.Seqs {
		if len(s) != 200 {
			t.Fatalf("seq %d length %d", i, len(s))
		}
		for _, b := range s {
			if b > 3 {
				t.Fatalf("invalid base %d", b)
			}
		}
	}
	if ds.TrueTree.NumTaxa != 6 {
		t.Error("true tree taxa wrong")
	}
	// A binary unrooted 6-taxon tree has 3 non-trivial splits.
	if got := len(ds.TrueTree.Splits()); got != 3 {
		t.Errorf("true tree splits = %d, want 3", got)
	}
}

func TestEvolveDeterministic(t *testing.T) {
	a := Evolve(stats.NewRNG(5), EvolveConfig{Taxa: 5, SeqLen: 50})
	b := Evolve(stats.NewRNG(5), EvolveConfig{Taxa: 5, SeqLen: 50})
	for i := range a.Seqs {
		for j := range a.Seqs[i] {
			if a.Seqs[i][j] != b.Seqs[i][j] {
				t.Fatal("same seed produced different sequences")
			}
		}
	}
}

func TestKappaShapesTsTvRatio(t *testing.T) {
	// Higher generating kappa must yield higher observed ts/tv ratios —
	// the signal the feature extraction relies on.
	measure := func(kappa float64) float64 {
		ds := Evolve(stats.NewRNG(7), EvolveConfig{Taxa: 8, SeqLen: 500, Kappa: kappa})
		var tr Trace
		if _, err := Distances(ds.Seqs, DefaultParams(), nil, &tr); err != nil {
			t.Fatal(err)
		}
		return tr.TsTvRatio
	}
	low, high := measure(1), measure(8)
	if high <= low {
		t.Errorf("tsTv(kappa=8)=%v not above tsTv(kappa=1)=%v", high, low)
	}
}

func TestDistancesValidation(t *testing.T) {
	if _, err := Distances(nil, DefaultParams(), nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Distances([][]byte{{0}, {0, 1}}, DefaultParams(), nil, nil); err == nil {
		t.Error("ragged sequences accepted")
	}
	if _, err := Distances([][]byte{{0}, {1}}, Params{}, nil, nil); err == nil {
		t.Error("zero params accepted")
	}
}

func TestParamsValidateClamp(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Params{
		{Kappa: 0, GammaAlpha: 1, MaxDist: 1},
		{Kappa: 2, GammaAlpha: 0, MaxDist: 1},
		{Kappa: 2, GammaAlpha: 1, MaxDist: 0},
		{Kappa: 99, GammaAlpha: 1, MaxDist: 1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
		if err := p.Clamp().Validate(); err != nil {
			t.Errorf("clamp of %+v still invalid: %v", p, err)
		}
	}
}

func TestNeighborJoinRecoversAdditiveTree(t *testing.T) {
	// Distances measured on a known tree must reconstruct its topology.
	truth := NewTree(5)
	truth.AddEdge(0, 5, 0.1)
	truth.AddEdge(1, 5, 0.2)
	truth.AddEdge(5, 6, 0.15)
	truth.AddEdge(2, 6, 0.1)
	truth.AddEdge(6, 7, 0.2)
	truth.AddEdge(3, 7, 0.1)
	truth.AddEdge(4, 7, 0.25)
	// Path distances.
	d := make([][]float64, 5)
	for i := range d {
		d[i] = make([]float64, 5)
	}
	var dist func(from, parent, to int, acc float64) (float64, bool)
	dist = func(from, parent, to int, acc float64) (float64, bool) {
		if from == to {
			return acc, true
		}
		for _, e := range truth.Adj[from] {
			if e.To == parent {
				continue
			}
			if v, ok := dist(e.To, from, to, acc+e.Length); ok {
				return v, true
			}
		}
		return 0, false
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				v, ok := dist(i, -1, j, 0)
				if !ok {
					t.Fatal("path not found")
				}
				d[i][j] = v
			}
		}
	}
	got, err := NeighborJoin(d)
	if err != nil {
		t.Fatal(err)
	}
	if rf := RobinsonFoulds(got, truth); rf != 0 {
		t.Errorf("NJ on additive distances: RF = %v, want 0", rf)
	}
}

func TestNeighborJoinErrors(t *testing.T) {
	if _, err := NeighborJoin(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := NeighborJoin([][]float64{{0, 1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	tr, err := NeighborJoin([][]float64{{0, 2}, {2, 0}})
	if err != nil || tr.NumTaxa != 2 {
		t.Errorf("2-taxon NJ = %v, %v", tr, err)
	}
}

// TestInferenceRecoversTopology is the end-to-end check: with correct
// parameters and moderate divergence, the inferred tree matches truth.
func TestInferenceRecoversTopology(t *testing.T) {
	ds := Evolve(stats.NewRNG(9), EvolveConfig{Taxa: 8, SeqLen: 800, Kappa: 2, MeanBranch: 0.05})
	tree, err := InferTree(ds.Seqs, Params{Kappa: 2, GammaAlpha: 50, MaxDist: 3}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rf := Score(tree, ds); rf > 0.35 {
		t.Errorf("RF = %v, want <= 0.35 on easy dataset", rf)
	}
}

// TestWrongKappaHurtsOnAverage checks the premise that the kappa target
// variable matters: across several datasets generated with high kappa,
// assuming the right kappa scores at least as well as assuming kappa=1.
func TestWrongKappaHurtsOnAverage(t *testing.T) {
	var right, wrong float64
	for seed := uint64(20); seed < 28; seed++ {
		ds := Evolve(stats.NewRNG(seed), EvolveConfig{
			Taxa: 10, SeqLen: 240, Kappa: 12, MeanBranch: 0.22,
		})
		tr1, err := InferTree(ds.Seqs, Params{Kappa: 12, GammaAlpha: 50, MaxDist: 3}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := InferTree(ds.Seqs, Params{Kappa: 0.6, GammaAlpha: 50, MaxDist: 0.6}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		right += Score(tr1, ds)
		wrong += Score(tr2, ds)
	}
	if right > wrong {
		t.Errorf("matched kappa RF %v worse than badly mismatched %v", right/8, wrong/8)
	}
}

func TestAlgorithm1OnPhylipGraph(t *testing.T) {
	g := dep.NewGraph()
	ds := Evolve(stats.NewRNG(11), EvolveConfig{Taxa: 6, SeqLen: 100})
	if _, err := InferTree(ds.Seqs, DefaultParams(), g, nil); err != nil {
		t.Fatal(err)
	}
	res := extract.SL(g, Inputs(), Targets())
	feats := res["kappa"]
	if len(feats) == 0 {
		t.Fatal("no features for kappa")
	}
	// The near features for kappa must be the observed base-difference
	// statistics (bigP/bigQ), not the raw sequences.
	if feats[0].Name == "seqs" {
		t.Errorf("raw input ranked first for kappa: %v", feats)
	}
	var seqDist, bestDist int
	bestDist = feats[0].Dist
	for _, f := range feats {
		if f.Name == "seqs" {
			seqDist = f.Dist
		}
	}
	if seqDist <= bestDist {
		t.Errorf("seqs distance %d not worse than best %d", seqDist, bestDist)
	}
}

func TestTraceFeatureVectors(t *testing.T) {
	ds := Evolve(stats.NewRNG(13), EvolveConfig{Taxa: 6, SeqLen: 100})
	var tr Trace
	if _, err := Distances(ds.Seqs, DefaultParams(), nil, &tr); err != nil {
		t.Fatal(err)
	}
	fv := tr.FeatureVector()
	if len(fv) != 5 {
		t.Errorf("FeatureVector = %v", fv)
	}
	raw := tr.RawFeatureVector(64)
	if len(raw) != 64 {
		t.Errorf("RawFeatureVector length = %d", len(raw))
	}
	// 6 taxa → 15 pairs → 30 (P,Q) values, rest zero padding.
	if raw[29] == 0 && stats.Sum(raw[:30]) == 0 {
		t.Error("raw feature vector empty")
	}
	for _, v := range raw[30:] {
		if v != 0 {
			t.Error("padding not zero")
		}
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	p := Params{Kappa: 4, GammaAlpha: 20, MaxDist: 5}
	got := VectorToParams(ParamsToVector(p))
	if math.Abs(got.Kappa-4) > 1e-9 || math.Abs(got.GammaAlpha-20) > 1e-9 || math.Abs(got.MaxDist-5) > 1e-9 {
		t.Errorf("round trip = %+v", got)
	}
	// Out-of-range vectors clamp to valid params.
	if err := VectorToParams([]float64{-1, 99, 0}).Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
}

func TestOracleFindsGoodParams(t *testing.T) {
	ds := Evolve(stats.NewRNG(15), EvolveConfig{Taxa: 8, SeqLen: 300, Kappa: 8, MeanBranch: 0.15})
	_, oracleScore := Oracle(ds)
	defTree, err := InferTree(ds.Seqs, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if oracleScore > Score(defTree, ds) {
		t.Errorf("oracle score %v worse than default %v", oracleScore, Score(defTree, ds))
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := stats.NewRNG(17)
	for _, shape := range []float64{0.5, 1, 4} {
		n := 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gammaSample(rng, shape)
		}
		if m := stats.Mean(xs); math.Abs(m-shape) > 0.1*shape+0.05 {
			t.Errorf("gamma(%v) mean = %v", shape, m)
		}
	}
}
