package phylip

import "fmt"

// NeighborJoin reconstructs an unrooted tree from a symmetric distance
// matrix with the Saitou-Nei neighbor-joining algorithm (the PHYLIP
// `neighbor` program).
func NeighborJoin(d [][]float64) (*Tree, error) {
	n := len(d)
	if n < 2 {
		return nil, fmt.Errorf("phylip: neighbor joining needs >= 2 taxa, got %d", n)
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("phylip: distance matrix row %d has %d entries, want %d", i, len(d[i]), n)
		}
	}
	tree := NewTree(n)
	if n == 2 {
		tree.AddEdge(0, 1, d[0][1])
		return tree, nil
	}

	// active holds the node ids of current clusters; dist is a working
	// copy indexed by position in active.
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), d[i]...)
	}
	nextNode := n

	for len(active) > 3 {
		m := len(active)
		// Row sums.
		r := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				r[i] += dist[i][j]
			}
		}
		// Minimize the Q criterion.
		bestI, bestJ := 0, 1
		bestQ := 0.0
		first := true
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				q := float64(m-2)*dist[i][j] - r[i] - r[j]
				if first || q < bestQ {
					first = false
					bestQ = q
					bestI, bestJ = i, j
				}
			}
		}
		// Branch lengths to the new internal node.
		dij := dist[bestI][bestJ]
		li := 0.5*dij + (r[bestI]-r[bestJ])/(2*float64(m-2))
		lj := dij - li
		if li < 0 {
			li = 0
		}
		if lj < 0 {
			lj = 0
		}
		u := nextNode
		nextNode++
		tree.AddEdge(active[bestI], u, li)
		tree.AddEdge(active[bestJ], u, lj)

		// New distances from u to every other cluster.
		newRow := make([]float64, 0, m-1)
		var newActive []int
		for k := 0; k < m; k++ {
			if k == bestI || k == bestJ {
				continue
			}
			duk := 0.5 * (dist[bestI][k] + dist[bestJ][k] - dij)
			if duk < 0 {
				duk = 0
			}
			newRow = append(newRow, duk)
			newActive = append(newActive, active[k])
		}
		// Rebuild the working matrix with u appended.
		m2 := len(newActive) + 1
		nd := make([][]float64, m2)
		for i := range nd {
			nd[i] = make([]float64, m2)
		}
		oldIdx := make([]int, 0, m-2)
		for k := 0; k < m; k++ {
			if k != bestI && k != bestJ {
				oldIdx = append(oldIdx, k)
			}
		}
		for a := 0; a < len(oldIdx); a++ {
			for b := 0; b < len(oldIdx); b++ {
				nd[a][b] = dist[oldIdx[a]][oldIdx[b]]
			}
		}
		for a := 0; a < len(newRow); a++ {
			nd[a][m2-1] = newRow[a]
			nd[m2-1][a] = newRow[a]
		}
		dist = nd
		active = append(newActive, u)
	}

	// Terminal 3-star.
	u := nextNode
	d01, d02, d12 := dist[0][1], dist[0][2], dist[1][2]
	l0 := (d01 + d02 - d12) / 2
	l1 := (d01 + d12 - d02) / 2
	l2 := (d02 + d12 - d01) / 2
	for _, l := range []*float64{&l0, &l1, &l2} {
		if *l < 0 {
			*l = 0
		}
	}
	tree.AddEdge(active[0], u, l0)
	tree.AddEdge(active[1], u, l1)
	tree.AddEdge(active[2], u, l2)
	return tree, nil
}
