package phylip

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Params are the distance-estimation target variables, mirroring
// PHYLIP dnadist's user-supplied settings.
type Params struct {
	// Kappa is the assumed transition/transversion rate ratio. When it
	// matches the generating process the corrected distances are
	// (nearly) additive; a mismatch distorts long branches.
	Kappa float64
	// GammaAlpha is the assumed gamma rate-heterogeneity shape used in
	// the distance correction (-ln x becomes alpha·(x^(-1/alpha)-1)).
	GammaAlpha float64
	// MaxDist caps saturated distances (pairs whose correction formula
	// diverges). Too low collapses deep structure; too high lets noise
	// dominate.
	MaxDist float64
}

// DefaultParams mirrors dnadist's stock settings: ttratio 2.0, no rate
// heterogeneity (large alpha), generous saturation cap.
func DefaultParams() Params { return Params{Kappa: 2, GammaAlpha: 50, MaxDist: 3} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Kappa <= 0 || p.Kappa > 50 {
		return fmt.Errorf("phylip: kappa %v out of (0, 50]", p.Kappa)
	}
	if p.GammaAlpha <= 0 || p.GammaAlpha > 1000 {
		return fmt.Errorf("phylip: gamma alpha %v out of (0, 1000]", p.GammaAlpha)
	}
	if p.MaxDist <= 0 || p.MaxDist > 20 {
		return fmt.Errorf("phylip: maxDist %v out of (0, 20]", p.MaxDist)
	}
	return nil
}

// Clamp coerces parameters into range.
func (p Params) Clamp() Params {
	p.Kappa = stats.Clamp(p.Kappa, 0.5, 50)
	p.GammaAlpha = stats.Clamp(p.GammaAlpha, 0.1, 1000)
	p.MaxDist = stats.Clamp(p.MaxDist, 0.5, 20)
	return p
}

// Trace captures the internal statistics of one distance computation —
// the candidate feature variables.
type Trace struct {
	// TsTvRatio is the mean observed transition/transversion ratio over
	// all pairs — the Min feature for kappa.
	TsTvRatio float64
	// MeanDiff and VarDiff summarize pairwise divergence — features for
	// maxDist and gammaAlpha.
	MeanDiff, VarDiff float64
	// SiteRateDispersion is the variance/mean ratio of per-site
	// difference counts, which rises with rate heterogeneity — the Min
	// feature for gammaAlpha.
	SiteRateDispersion float64
	// Saturated counts pairs that hit the MaxDist cap.
	Saturated int
	// RawPairStats flattens per-pair (P, Q) observations — the Raw
	// feature encoding.
	RawPairStats []float64
}

// Distances computes the pairwise corrected distance matrix under the
// assumed parameters, optionally recording dependence events and
// internal statistics.
func Distances(seqs [][]byte, p Params, g *dep.Graph, tr *Trace) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(seqs) < 2 {
		return nil, fmt.Errorf("phylip: need at least 2 sequences, got %d", len(seqs))
	}
	if g != nil {
		recordDeps(g)
	}
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}

	var tsSum, tvSum float64
	var diffs []float64
	var perSiteDiffCounts []float64
	if len(seqs[0]) > 0 {
		perSiteDiffCounts = make([]float64, len(seqs[0]))
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(seqs[i]) != len(seqs[j]) {
				return nil, fmt.Errorf("phylip: sequences %d and %d differ in length", i, j)
			}
			length := float64(len(seqs[i]))
			var ts, tv float64
			for k := range seqs[i] {
				a, b := seqs[i][k], seqs[j][k]
				if a == b {
					continue
				}
				perSiteDiffCounts[k]++
				if transitionPartner(a) == b {
					ts++
				} else {
					tv++
				}
			}
			bigP := ts / length // observed transition proportion
			bigQ := tv / length // observed transversion proportion
			tsSum += ts
			tvSum += tv
			diffs = append(diffs, bigP+bigQ)
			if tr != nil {
				tr.RawPairStats = append(tr.RawPairStats, bigP, bigQ)
			}

			dist, saturated := correctedDistance(bigP, bigQ, p)
			if saturated && tr != nil {
				tr.Saturated++
			}
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	if tr != nil {
		if tvSum > 0 {
			tr.TsTvRatio = tsSum / tvSum
		} else {
			tr.TsTvRatio = 10 // all-transition degenerate case
		}
		tr.MeanDiff = stats.Mean(diffs)
		tr.VarDiff = stats.Variance(diffs)
		m := stats.Mean(perSiteDiffCounts)
		if m > 0 {
			tr.SiteRateDispersion = stats.Variance(perSiteDiffCounts) / m
		}
	}
	return d, nil
}

// correctedDistance maps observed (P, Q) to an evolutionary distance
// using the assumed kappa to apportion the total difference, the gamma
// correction for rate heterogeneity, and the saturation cap.
func correctedDistance(bigP, bigQ float64, p Params) (float64, bool) {
	// Re-apportion the observed total difference according to the
	// assumed kappa (the dnadist-style use of the Ttratio setting):
	// under K2P the expected transition:transversion split of new
	// substitutions is kappa : 2.
	total := bigP + bigQ
	estP := total * p.Kappa / (p.Kappa + 2)
	estQ := total * 2 / (p.Kappa + 2)

	// K2P correction with gamma heterogeneity: -ln(x) generalizes to
	// alpha·(x^(-1/alpha) - 1).
	x1 := 1 - 2*estP - estQ
	x2 := 1 - 2*estQ
	if x1 <= 0 || x2 <= 0 {
		return p.MaxDist, true
	}
	gammaLog := func(x float64) float64 {
		return p.GammaAlpha * (math.Pow(x, -1/p.GammaAlpha) - 1)
	}
	dist := 0.5*gammaLog(x1) + 0.25*gammaLog(x2)
	if dist > p.MaxDist || math.IsNaN(dist) || math.IsInf(dist, 0) {
		return p.MaxDist, true
	}
	if dist < 0 {
		dist = 0
	}
	return dist, false
}

// recordDeps emits the dependence structure of one inference run.
func recordDeps(g *dep.Graph) {
	g.MarkInput("seqs")
	g.Def("pairDiffs", "seqs")
	g.Def("tsCount", "pairDiffs")
	g.Def("tvCount", "pairDiffs")
	g.Def("bigP", "tsCount")
	g.Def("bigQ", "tvCount")
	g.Def("tsTvRatio", "tsCount", "tvCount")
	g.Def("meanDiff", "bigP", "bigQ")
	g.Def("varDiff", "bigP", "bigQ")
	g.Def("siteCounts", "pairDiffs")
	g.Def("dispersion", "siteCounts")
	g.Def("estP", "bigP", "bigQ", "kappa")
	g.Def("estQ", "bigP", "bigQ", "kappa")
	g.Def("corrArg1", "estP", "estQ")
	g.Def("corrArg2", "estQ")
	g.Def("gammaTerm", "corrArg1", "corrArg2", "gammaAlpha")
	g.Def("distMatrix", "gammaTerm", "maxDist")
	g.Def("njQ", "distMatrix")
	g.Def("njPair", "njQ")
	g.Def("tree", "njPair", "distMatrix")
	g.Def("rfScore", "tree")
	for _, v := range []string{"seqs", "pairDiffs", "tsCount", "tvCount", "bigP", "bigQ"} {
		g.Use("countDiffs", v)
	}
	for _, v := range []string{"kappa", "gammaAlpha", "maxDist", "estP", "estQ", "gammaTerm", "distMatrix"} {
		g.Use("correct", v)
	}
	for _, v := range []string{"distMatrix", "njQ", "njPair", "tree"} {
		g.Use("neighborJoin", v)
	}
}

// Inputs returns the program-input set for Algorithm 1.
func Inputs() []string { return []string{"seqs"} }

// Targets returns the target variables (Table 1: 3).
func Targets() []string { return []string{"kappa", "gammaAlpha", "maxDist"} }
