package phylip

import "github.com/autonomizer/autonomizer/internal/dep"

// InferTree runs the full pipeline — distance estimation under the
// assumed parameters followed by neighbor joining — optionally recording
// dependence events into g and internal statistics into tr.
func InferTree(seqs [][]byte, p Params, g *dep.Graph, tr *Trace) (*Tree, error) {
	d, err := Distances(seqs, p, g, tr)
	if err != nil {
		return nil, err
	}
	return NeighborJoin(d)
}

// Score grades an inference against the generating truth. Lower is
// better (Table 3 marks Phylip with ↓). The score combines the
// normalized Robinson-Foulds topology distance with the relative
// branch-length (path-distance) error, the two standard axes of tree
// accuracy. The branch-length term is what makes the distance-correction
// parameters matter: a mismatched kappa or gamma shape leaves the NJ
// topology largely intact but systematically biases every inferred
// branch length.
func Score(inferred *Tree, ds *Dataset) float64 {
	rf := RobinsonFoulds(inferred, ds.TrueTree)
	rel := pathLengthError(inferred, ds.TrueTree)
	if rel > 1 {
		rel = 1
	}
	return (rf + rel) / 2
}

// pathLengthError returns mean |d_inf(i,j) - d_true(i,j)| / mean d_true
// over all taxon pairs.
func pathLengthError(inferred, truth *Tree) float64 {
	n := truth.NumTaxa
	var errSum, trueSum float64
	for i := 0; i < n; i++ {
		di := pathDistancesFrom(inferred, i)
		dt := pathDistancesFrom(truth, i)
		for j := i + 1; j < n; j++ {
			d := di[j] - dt[j]
			if d < 0 {
				d = -d
			}
			errSum += d
			trueSum += dt[j]
		}
	}
	if trueSum == 0 {
		return 0
	}
	return errSum / trueSum
}

// pathDistancesFrom computes path lengths from taxon src to every node
// by DFS.
func pathDistancesFrom(t *Tree, src int) map[int]float64 {
	dist := map[int]float64{src: 0}
	stack := []int{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.Adj[cur] {
			if _, seen := dist[e.To]; !seen {
				dist[e.To] = dist[cur] + e.Length
				stack = append(stack, e.To)
			}
		}
	}
	return dist
}

// Oracle grid-searches the parameter space for the best (lowest) score
// on one dataset, producing training labels. Robinson-Foulds distances
// are coarse (an n-taxon tree admits only 2(n-3)+1 values), so many
// configurations tie; the returned label averages every configuration
// within rfTieBand of the optimum, which de-noises the labels without
// using anything beyond the autotuning scores.
func Oracle(ds *Dataset) (Params, float64) {
	const rfTieBand = 0.01
	type scored struct {
		p Params
		s float64
	}
	var all []scored
	bestScore := 2.0
	for _, kappa := range []float64{1, 2, 4, 8, 16, 20} {
		for _, alpha := range []float64{0.5, 2, 10, 50} {
			for _, maxDist := range []float64{1, 3, 8} {
				p := Params{Kappa: kappa, GammaAlpha: alpha, MaxDist: maxDist}
				tree, err := InferTree(ds.Seqs, p, nil, nil)
				if err != nil {
					continue
				}
				s := Score(tree, ds)
				all = append(all, scored{p, s})
				if s < bestScore {
					bestScore = s
				}
			}
		}
	}
	if len(all) == 0 {
		return DefaultParams(), bestScore
	}
	var sum [3]float64
	n := 0.0
	for _, sc := range all {
		if sc.s <= bestScore+rfTieBand {
			v := ParamsToVector(sc.p)
			sum[0] += v[0]
			sum[1] += v[1]
			sum[2] += v[2]
			n++
		}
	}
	avg := VectorToParams([]float64{sum[0] / n, sum[1] / n, sum[2] / n})
	// Report the averaged configuration's own score so callers see what
	// the label actually achieves.
	tree, err := InferTree(ds.Seqs, avg, nil, nil)
	if err != nil {
		return avg, bestScore
	}
	return avg, Score(tree, ds)
}

// FeatureVector returns the Min feature encoding: the compact internal
// statistics Algorithm 1 surfaces (observed ts/tv ratio, divergence
// moments, dispersion, saturation count).
func (tr *Trace) FeatureVector() []float64 {
	return []float64{tr.TsTvRatio, tr.MeanDiff, tr.VarDiff, tr.SiteRateDispersion, float64(tr.Saturated)}
}

// RawFeatureVector returns the Raw encoding: flattened per-pair (P, Q)
// observations, padded/truncated to a fixed width so the model input
// size is stable across taxon counts.
func (tr *Trace) RawFeatureVector(width int) []float64 {
	out := make([]float64, width)
	copy(out, tr.RawPairStats)
	return out
}

// ParamsToVector normalizes parameters into model-output space ([0,1]³).
func ParamsToVector(p Params) []float64 {
	return []float64{p.Kappa / 20, p.GammaAlpha / 100, p.MaxDist / 10}
}

// VectorToParams inverts ParamsToVector, clamping into valid ranges.
func VectorToParams(v []float64) Params {
	p := Params{Kappa: v[0] * 20, GammaAlpha: v[1] * 100, MaxDist: v[2] * 10}
	return p.Clamp()
}
