package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentConfigDistinctModels exercises the registry lock: many
// goroutines configuring (and immediately using) distinct models must
// not race. Run under -race.
func TestConcurrentConfigDistinctModels(t *testing.T) {
	rt := NewRuntime(Train, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("m%d", i)
			if err := rt.Config(ModelSpec{Name: name, Algo: AdamOpt, Hidden: []int{4}}); err != nil {
				errs <- err
				return
			}
			if err := rt.RecordExample(name, []float64{1, 2, 3}, []float64{0.5}); err != nil {
				errs <- err
				return
			}
			if _, err := rt.Fit(name, 1, 2); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := len(rt.ModelNames()); got != 16 {
		t.Fatalf("registered %d models, want 16", got)
	}
}

// TestConcurrentInference checks that Predict (per-model lock) and
// Predictor replicas can run from many goroutines at once, alongside
// registry reads and SaveModel, with no data races and consistent
// outputs.
func TestConcurrentInference(t *testing.T) {
	rt := NewRuntime(Train, 2)
	if err := rt.Config(ModelSpec{Name: "net", Algo: AdamOpt, Hidden: []int{8, 4}}); err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, -0.2, 0.3, -0.4}
	if err := rt.RecordExample("net", in, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Fit("net", 2, 1); err != nil {
		t.Fatal(err)
	}
	want, err := rt.Predict("net", in)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pred, err := rt.Predictor("net")
			if err != nil {
				fail <- err.Error()
				return
			}
			for i := 0; i < 20; i++ {
				got, err := rt.Predict("net", in)
				if err != nil {
					fail <- err.Error()
					return
				}
				rep := pred(in)
				for j := range want {
					if got[j] != want[j] || rep[j] != want[j] {
						fail <- fmt.Sprintf("prediction diverged: got %v / %v, want %v", got, rep, want)
						return
					}
				}
				if _, err := rt.SaveModel("net"); err != nil {
					fail <- err.Error()
					return
				}
				rt.ModelNames()
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
