package core

import (
	"log/slog"

	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// runtimeOptions collects the configurable pieces of Runtime
// construction. The zero value reproduces NewRuntime's historical
// behaviour: seed 0, the process-wide obs logger, and the process-wide
// telemetry registry (nil while disabled).
type runtimeOptions struct {
	seed   uint64
	logger *slog.Logger
	reg    *obs.Registry
	regSet bool
	drift  obs.DriftConfig
}

// Option configures Runtime construction (see NewRuntimeWith). Options
// replace the former pattern of poking runtime internals after New —
// construction is the only supported configuration point.
type Option func(*runtimeOptions)

// WithSeed sets the deterministic seed for every stochastic choice
// (weight initialization, exploration, minibatch shuffling).
func WithSeed(seed uint64) Option {
	return func(o *runtimeOptions) { o.seed = seed }
}

// WithLogger routes the runtime's structured diagnostics through l
// instead of the process-wide obs logger. The runtime still attaches
// its mode attribute to the child it logs through.
func WithLogger(l *slog.Logger) Option {
	return func(o *runtimeOptions) { o.logger = l }
}

// WithMetrics instruments the runtime against reg instead of the
// process-wide obs.Default() registry. Passing nil explicitly disables
// telemetry for this runtime even when the process-wide registry is on.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *runtimeOptions) { o.reg = reg; o.regSet = true }
}

// WithDriftConfig tunes the runtime's drift monitor (window, threshold,
// sample floor) — the embedded twin of serve.Config's drift knobs. The
// default is monitor-only: Observe records and reports rolling loss
// but no verdict ever flips unhealthy.
func WithDriftConfig(cfg obs.DriftConfig) Option {
	return func(o *runtimeOptions) { o.drift = cfg }
}

// NewRuntimeWith creates a runtime in the given mode, configured by
// functional options. It is the canonical constructor; NewRuntime(mode,
// seed) remains as a thin compatible wrapper equivalent to
// NewRuntimeWith(mode, WithSeed(seed)).
func NewRuntimeWith(mode Mode, opts ...Option) *Runtime {
	var o runtimeOptions
	for _, opt := range opts {
		opt(&o)
	}
	if !o.regSet {
		o.reg = obs.Default()
	}
	log := o.logger
	if log == nil {
		log = obs.Logger()
	}
	rt := &Runtime{
		mode:   mode,
		store:  db.New(),
		models: make(map[string]*model),
		rng:    stats.NewRNG(o.seed),
		ckpts:  ckpt.NewManager(),
		saved:  make(map[string][]byte),
		log:    log.With("mode", mode.String()),
	}
	rt.drift = obs.NewDriftMonitor(o.drift, o.reg)
	return rt.Instrument(o.reg)
}
