package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/rl"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// model is one entry of the model store θ: a lazily materialized network
// (sizes are only known once the first input arrives) plus per-algorithm
// training state.
type model struct {
	spec ModelSpec

	net     *nn.Network // online network (nil until first input)
	agent   *rl.Agent   // QLearn only
	rng     *stats.RNG
	inSize  int
	outSize int

	// SL training state: the dataset accumulated during training runs
	// (model inputs paired with desirable outputs recorded from the
	// oracle), trained offline per the paper ("in supervised learning,
	// model training is conducted offline after execution").
	slInputs  [][]float64
	slTargets [][]float64

	// RL stepping state: the previous (state, action) pair awaiting its
	// reward, completed on the next au_NN call.
	prevState  []float64
	prevAction int
	havePrev   bool

	// pendingParams holds serialized weights loaded before the network
	// is materialized (TS mode loads by name before sizes are known).
	pendingParams []byte

	// predMu serializes predictions through the shared network, whose
	// layers cache forward-pass state. Parallel rollouts avoid this lock
	// entirely by taking private replicas via predictor().
	predMu sync.Mutex

	// weightsVersion counts weight publications: it is bumped after every
	// mutation of the network's parameters (materialize, online train
	// steps, offline fit batches, RL observes, weight restores). Compiled
	// serving plans snapshot the weights, so predictors compare their
	// plan's version against this counter on every call and recompile on
	// mismatch — the invalidation half of the two-representation
	// architecture (DESIGN.md §5g).
	weightsVersion atomic.Uint64

	// Compiled-plan cache: one shared immutable plan per weights version,
	// compiled lazily on first use and replaced when the version moves.
	// planFailed latches compile failure — the architecture is fixed after
	// materialize, so a network that cannot compile today never will.
	planMu      sync.Mutex
	plan        *nn.Plan
	planVersion uint64
	planFailed  bool
}

// bumpWeights records a weight publication, invalidating compiled plans.
func (m *model) bumpWeights() { m.weightsVersion.Add(1) }

// compiledPlan returns the serving plan for the current weights (and the
// version it was compiled at), recompiling if training has published new
// weights since the cached compile. Returns nil when the network's
// architecture cannot be compiled; callers fall back to network replicas.
func (m *model) compiledPlan() (*nn.Plan, uint64) {
	m.planMu.Lock()
	defer m.planMu.Unlock()
	if m.planFailed || m.net == nil {
		return nil, 0
	}
	ver := m.weightsVersion.Load()
	if m.plan == nil || m.planVersion != ver {
		var shape []int
		if m.spec.Type == CNN {
			shape = m.spec.InputShape
		}
		p, err := nn.Compile(m.net, shape...)
		if err != nil {
			m.planFailed = true
			return nil, 0
		}
		m.plan, m.planVersion = p, ver
	}
	return m.plan, m.planVersion
}

// planInstance returns a fresh per-goroutine instance of the current
// compiled plan, or nil when the model cannot be compiled.
func (m *model) planInstance() (*nn.PlanInstance, uint64) {
	p, ver := m.compiledPlan()
	if p == nil {
		return nil, 0
	}
	return p.NewInstance(), ver
}

func newModel(spec ModelSpec, rng *stats.RNG) *model {
	return &model{spec: spec, rng: rng}
}

// materialize builds the network(s) once input/output sizes are known.
func (m *model) materialize(inSize, outSize int) error {
	if m.net != nil {
		if inSize != m.inSize {
			return auerr.E(auerr.ErrSpecInvalid, "core: model %q input size changed from %d to %d",
				m.spec.Name, m.inSize, inSize)
		}
		if outSize != m.outSize {
			return auerr.E(auerr.ErrSpecInvalid, "core: model %q output size changed from %d to %d",
				m.spec.Name, m.outSize, outSize)
		}
		return nil
	}
	m.inSize, m.outSize = inSize, outSize
	build := func() *nn.Network {
		if m.spec.Builder != nil {
			return m.spec.Builder(inSize, outSize, m.rng.Split())
		}
		if m.spec.Type == CNN {
			s := m.spec.InputShape
			return nn.NewDeepMindCNN(s[0], s[1], s[2], outSize, m.rng.Split())
		}
		net := nn.NewDNN(inSize, m.spec.Hidden, outSize, m.rng.Split())
		if m.spec.OutputActivation == "sigmoid" {
			layers := append(net.Layers(), nn.NewSigmoid())
			net = nn.NewNetwork(layers...)
		}
		return net
	}
	m.net = build()
	m.net.SetMaxWorkers(m.spec.Workers)

	switch m.spec.Algo {
	case QLearn:
		cfg := rl.Config{
			Gamma:             m.spec.Gamma,
			EpsilonDecaySteps: m.spec.EpsilonDecaySteps,
			ReplayCapacity:    m.spec.ReplayCapacity,
			BatchSize:         m.spec.BatchSize,
			TargetSyncEvery:   m.spec.TargetSyncEvery,
			LearnEvery:        m.spec.LearnEvery,
			DoubleDQN:         m.spec.DoubleDQN,
			LR:                m.spec.LR,
		}
		if m.spec.Type == CNN {
			cfg.StateShape = m.spec.InputShape
		}
		target := build()
		target.SetMaxWorkers(m.spec.Workers)
		m.agent = rl.NewAgent(m.net, target, m.spec.Actions, cfg, m.rng.Split())
	case AdamOpt:
		lr := m.spec.LR
		if lr == 0 {
			lr = 1e-3
		}
		m.net.UseAdam(lr)
	}
	if m.pendingParams != nil {
		if err := m.net.UnmarshalParams(m.pendingParams); err != nil {
			return fmt.Errorf("core: loading saved weights for %q: %w", m.spec.Name, err)
		}
		m.pendingParams = nil
	}
	m.bumpWeights()
	return nil
}

// predict runs the network on a flat input vector. The shared network's
// layers cache forward state, so concurrent callers are serialized; hot
// concurrent paths should use predictor() instead.
func (m *model) predict(in []float64) []float64 {
	m.predMu.Lock()
	defer m.predMu.Unlock()
	if m.spec.Type == CNN {
		return m.net.Predict(in, m.spec.InputShape...)
	}
	return m.net.Predict(in)
}

// predictor returns an inference function backed by a private instance
// of the model's compiled serving plan (shared packed weights, private
// scratch), safe to call concurrently with other predictors while no
// training step is mutating the weights. Each call checks the weights
// version with one atomic load and recompiles when training has
// published new weights. Models whose architecture cannot be compiled
// fall back to a network replica, then to the lock-guarded shared path.
func (m *model) predictor() func(in []float64) []float64 {
	if inst, ver := m.planInstance(); inst != nil {
		return func(in []float64) []float64 {
			if v := m.weightsVersion.Load(); v != ver {
				if ni, nv := m.planInstance(); ni != nil {
					inst, ver = ni, nv
				}
			}
			return inst.Predict(in)
		}
	}
	rep, ok := m.net.Replica()
	if !ok {
		return m.predict
	}
	if m.spec.Type == CNN {
		shape := m.spec.InputShape
		return func(in []float64) []float64 { return rep.Predict(in, shape...) }
	}
	return func(in []float64) []float64 { return rep.Predict(in) }
}

// predictorInto is the destination-passing predictor(): the returned
// function writes the prediction into out when it has the right length
// (allocating otherwise) and returns the filled slice. With a compiled
// plan instance and a correctly sized out, a steady-state call allocates
// nothing — the serving engine's per-replica closures are built on this.
func (m *model) predictorInto() func(in, out []float64) []float64 {
	if inst, ver := m.planInstance(); inst != nil {
		return func(in, out []float64) []float64 {
			if v := m.weightsVersion.Load(); v != ver {
				if ni, nv := m.planInstance(); ni != nil {
					inst, ver = ni, nv
				}
			}
			return inst.PredictInto(out, in)
		}
	}
	rep, ok := m.net.Replica()
	if !ok {
		return func(in, out []float64) []float64 {
			res := m.predict(in)
			if len(out) == len(res) {
				copy(out, res)
				return out
			}
			return res
		}
	}
	var shape []int
	if m.spec.Type == CNN {
		shape = m.spec.InputShape
	}
	return func(in, out []float64) []float64 { return rep.PredictInto(out, in, shape...) }
}

// slTrainStep performs one online gradient step (the literal TRAIN rule)
// using target as the desirable output.
func (m *model) slTrainStep(in, target []float64) float64 {
	var it *tensor.Tensor
	if m.spec.Type == CNN {
		it = tensor.FromSlice(append([]float64(nil), in...), m.spec.InputShape...)
	} else {
		it = tensor.FromSlice(append([]float64(nil), in...), len(in))
	}
	tt := tensor.FromSlice(append([]float64(nil), target...), len(target))
	loss := m.net.TrainStep(it, tt)
	m.bumpWeights()
	return loss
}

// recordExample appends a labeled example for offline training.
func (m *model) recordExample(in, target []float64) {
	m.slInputs = append(m.slInputs, append([]float64(nil), in...))
	m.slTargets = append(m.slTargets, append([]float64(nil), target...))
}

// FitStats reports offline-training progress. FitCtx fills it even when
// a canceled context stops training early, so callers can see exactly
// how far the run got and resume from there.
type FitStats struct {
	// Epochs is the number of fully completed epochs.
	Epochs int
	// Batches is the total number of completed minibatch optimizer
	// steps, across all epochs including a final partial one.
	Batches int
	// LastLoss is the mean loss over the most recent epoch — the final
	// full epoch, or the partial epoch in progress when training was
	// canceled (0 if no batch completed).
	LastLoss float64
	// Duration is the wall-clock time the fit ran, filled on every
	// return path so canceled and completed fits report comparable
	// throughput.
	Duration time.Duration
	// StepsPerSec is Batches/Duration — minibatch optimizer steps per
	// second of wall clock (0 if the fit finished too fast to time).
	StepsPerSec float64
}

// fitCtx trains the SL model over the recorded dataset with
// mini-batches. The minibatch is the atomic unit of training:
// cancellation is checked before every optimizer step, and a canceled
// context returns the partial-progress FitStats alongside an error
// wrapping auerr.ErrCanceled. Completed steps are kept — the model,
// its dataset and its optimizer state stay consistent, so a later
// fitCtx call resumes training.
//
// tel, when non-nil, receives per-step latency observations, per-epoch
// loss, and the epoch counter; a nil tel costs one branch per batch.
// The full loop, including the checkpoint/resume machinery this wraps,
// lives in fitResumeCtx.
func (m *model) fitCtx(ctx context.Context, epochs, batchSize int, tel *telemetry) (FitStats, error) {
	return m.fitResumeCtx(ctx, epochs, batchSize, tel, FitResumeOptions{})
}
