package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/autonomizer/autonomizer/internal/semantics"
)

// TestDifferentialStoreSemantics executes randomly generated model-free
// programs (extract / serialize / checkpoint / restore sequences) on
// BOTH the production runtime and the formal Fig. 8 interpreter and
// checks that the database stores evolve identically. Model-free
// programs avoid au_NN, where the two implementations intentionally
// differ (real network vs. abstract model), and avoid au_serialize's
// consume-vs-keep divergence by comparing only the serialized binding.
func TestDifferentialStoreSemantics(t *testing.T) {
	type op struct {
		Kind uint8
		A, B uint8
		Val  float64
	}
	names := []string{"PX", "PY", "MnX", "OBJ"}

	prop := func(ops []op) bool {
		rt := NewRuntime(Train, 1)
		m := semantics.NewMachine(semantics.TR)
		prog := newHostProg()

		for i, o := range ops {
			if math.IsNaN(o.Val) || math.IsInf(o.Val, 0) {
				o.Val = float64(i)
			}
			switch o.Kind % 4 {
			case 0: // extract one value under a name
				name := names[int(o.A)%len(names)]
				rt.Extract(name, o.Val)
				varName := "v" + name
				m.Sigma[varName] = []float64{o.Val}
				if err := m.Exec(semantics.AuExtract{ExtName: name, Var: varName}); err != nil {
					return false
				}
			case 1: // checkpoint
				rt.Checkpoint(prog, 8)
				if err := m.Exec(semantics.AuCheckpoint{}); err != nil {
					return false
				}
			case 2: // restore (only if a checkpoint exists)
				errRT := rt.Restore(prog)
				errM := m.Exec(semantics.AuRestore{})
				if (errRT == nil) != (errM == nil) {
					return false
				}
			case 3: // no-op spacer keeps op streams diverse
			}

			// After every step, π must agree on every extract name.
			for _, n := range names {
				rv, _ := rt.DB().Get(n)
				mv := m.Pi[n]
				if len(rv) != len(mv) {
					return false
				}
				for j := range rv {
					if rv[j] != mv[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialSerialize compares the serialized binding produced by
// both implementations (the runtime additionally consumes constituents,
// which the formal rule does not — only the combined list is compared).
func TestDifferentialSerialize(t *testing.T) {
	rt := NewRuntime(Train, 2)
	m := semantics.NewMachine(semantics.TR)

	rt.Extract("A", 1, 2)
	rt.Extract("B", 3)
	m.Sigma["a"] = []float64{1, 2}
	m.Sigma["b"] = []float64{3}
	if err := m.Run(
		semantics.AuExtract{ExtName: "A", Var: "a"},
		semantics.AuExtract{ExtName: "B", Var: "b"},
		semantics.AuSerialize{T1: "A", T2: "B"},
	); err != nil {
		t.Fatal(err)
	}
	key := rt.Serialize("A", "B")

	rv, _ := rt.DB().Get(key)
	mv := m.Pi["AB"]
	if len(rv) != len(mv) {
		t.Fatalf("combined lengths differ: %v vs %v", rv, mv)
	}
	for i := range rv {
		if rv[i] != mv[i] {
			t.Fatalf("combined values differ: %v vs %v", rv, mv)
		}
	}
}
