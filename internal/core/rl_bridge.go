package core

import "github.com/autonomizer/autonomizer/internal/rl"

// rlTransition adapts the runtime's step bookkeeping to the rl package's
// transition type.
func rlTransition(state []float64, action int, reward float64, next []float64, terminal bool) rl.Transition {
	return rl.Transition{
		State:     state,
		Action:    action,
		Reward:    reward,
		NextState: next,
		Terminal:  terminal,
	}
}

// AgentStats surfaces Q-learning internals for Table 2 accounting and
// the experiment harness.
type AgentStats struct {
	// Epsilon is the current exploration rate.
	Epsilon float64
	// Steps is the number of observed transitions.
	Steps int
	// ReplayLen is the current replay-buffer occupancy.
	ReplayLen int
	// TraceBytes is the replay buffer's memory footprint — the RL
	// "Trace Size" of Table 2.
	TraceBytes int
}

// RLStats returns agent statistics for a QLearn model, or false if the
// model is unknown, not QLearn, or not yet materialized.
func (rt *Runtime) RLStats(mdName string) (AgentStats, bool) {
	m, ok := rt.getModel(mdName)
	if !ok || m.agent == nil {
		return AgentStats{}, false
	}
	return AgentStats{
		Epsilon:    m.agent.Epsilon(),
		Steps:      m.agent.Steps(),
		ReplayLen:  m.agent.Buffer().Len(),
		TraceBytes: m.agent.Buffer().TraceBytes(),
	}, true
}
