package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// TestNewRuntimeWithOptions pins the functional-option constructor:
// seeds are honored (same seed, same predictions), loggers are
// injected, and the legacy NewRuntime is exactly WithSeed.
func TestNewRuntimeWithOptions(t *testing.T) {
	spec := ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{4}, LR: 0.01}
	train := func(rt *Runtime) []float64 {
		t.Helper()
		if err := rt.ConfigCtx(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			x := float64(i) / 50
			if err := rt.RecordExample("m", []float64{x, 1 - x}, []float64{x}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rt.FitCtx(context.Background(), "m", 2, 8); err != nil {
			t.Fatal(err)
		}
		out, err := rt.PredictCtx(context.Background(), "m", []float64{0.5, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	a := train(NewRuntimeWith(Train, WithSeed(7)))
	b := train(NewRuntime(Train, 7))
	if a[0] != b[0] {
		t.Errorf("NewRuntimeWith(WithSeed(7)) diverges from NewRuntime(_, 7): %v vs %v", a, b)
	}
	c := train(NewRuntimeWith(Train, WithSeed(8)))
	if a[0] == c[0] {
		t.Errorf("different seeds produced identical predictions %v", a)
	}

	var buf bytes.Buffer
	logged := NewRuntimeWith(Train, WithLogger(slog.New(
		slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))))
	if err := logged.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "au_config") {
		t.Errorf("injected logger saw no runtime diagnostics: %q", buf.String())
	}
}

// TestSpecValidationMessages pins the uniform validation shape: every
// rejection wraps ErrSpecInvalid and names the model and the offending
// field in one consistent "core: model %q: <Field>: <problem>" message.
func TestSpecValidationMessages(t *testing.T) {
	cases := []struct {
		field string
		spec  ModelSpec
	}{
		{"Name", ModelSpec{Algo: AdamOpt}},
		{"Type", ModelSpec{Name: "m", Type: ModelType(9), Algo: AdamOpt}},
		{"Algo", ModelSpec{Name: "m", Algo: Algorithm(9)}},
		{"Hidden[1]", ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{4, -1}}},
		{"InputShape", ModelSpec{Name: "m", Type: CNN, Algo: QLearn, Actions: 2}},
		{"Actions", ModelSpec{Name: "m", Algo: QLearn, Actions: -3}},
		{"OutputActivation", ModelSpec{Name: "m", Algo: AdamOpt, OutputActivation: "tanh9"}},
		{"LR", ModelSpec{Name: "m", Algo: AdamOpt, LR: -1}},
		{"Gamma", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, Gamma: 2}},
		{"EpsilonDecaySteps", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, EpsilonDecaySteps: -1}},
		{"ReplayCapacity", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, ReplayCapacity: -1}},
		{"BatchSize", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, BatchSize: -1}},
		{"TargetSyncEvery", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, TargetSyncEvery: -1}},
		{"LearnEvery", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, LearnEvery: -1}},
		{"Workers", ModelSpec{Name: "m", Algo: AdamOpt, Workers: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			err := NewRuntime(Train, 1).ConfigCtx(context.Background(), tc.spec)
			if !errors.Is(err, auerr.ErrSpecInvalid) {
				t.Fatalf("want ErrSpecInvalid, got %v", err)
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.field+":") {
				t.Errorf("message does not name field %s: %q", tc.field, msg)
			}
			if tc.field != "Name" && !strings.Contains(msg, fmt.Sprintf("model %q", tc.spec.Name)) {
				t.Errorf("message does not name the model: %q", msg)
			}
		})
	}
}

// TestSavedModelSizes pins the exported header decode used by the
// serving layer.
func TestSavedModelSizes(t *testing.T) {
	rt := NewRuntime(Train, 3)
	spec := ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{4}, LR: 0.01}
	if err := rt.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecordExample("m", []float64{1, 2, 3}, []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	data, err := rt.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := SavedModelSizes(data)
	if err != nil {
		t.Fatal(err)
	}
	if in != 3 || out != 2 {
		t.Errorf("SavedModelSizes = (%d, %d), want (3, 2)", in, out)
	}
	if _, _, err := SavedModelSizes([]byte{1, 2}); !errors.Is(err, auerr.ErrCorruptModel) {
		t.Errorf("truncated image: %v, want ErrCorruptModel", err)
	}
}
