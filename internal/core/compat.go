package core

import (
	"context"

	"github.com/autonomizer/autonomizer/internal/ckpt"
)

// This file keeps the original non-context primitive signatures as thin
// wrappers over the ...Ctx forms with context.Background(), so the nine
// autonomized subjects, the examples and existing harnesses keep
// compiling and behaving exactly as before. New code should prefer the
// Ctx forms; these wrappers never observe cancellation, and the few
// whose legacy signatures have no error slot (Extract, Serialize,
// Checkpoint) discard an error that a Background context cannot produce.

// Config is au_config with context.Background(); see ConfigCtx.
func (rt *Runtime) Config(spec ModelSpec) error {
	return rt.ConfigCtx(context.Background(), spec)
}

// Extract is au_extract with context.Background(); see ExtractCtx.
func (rt *Runtime) Extract(name string, vals ...float64) {
	_ = rt.ExtractCtx(context.Background(), name, vals...)
}

// Serialize is au_serialize with context.Background(); see SerializeCtx.
func (rt *Runtime) Serialize(names ...string) string {
	key, _ := rt.SerializeCtx(context.Background(), names...)
	return key
}

// NN is supervised au_NN with context.Background(); see NNCtx.
func (rt *Runtime) NN(mdName, extName string, wbNames ...string) error {
	return rt.NNCtx(context.Background(), mdName, extName, wbNames...)
}

// NNRL is reinforcement-learning au_NN with context.Background(); see
// NNRLCtx.
func (rt *Runtime) NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error {
	return rt.NNRLCtx(context.Background(), mdName, extName, reward, terminal, wbName)
}

// WriteBack is au_write_back with context.Background(); see WriteBackCtx.
func (rt *Runtime) WriteBack(name string, dst []float64) (int, error) {
	return rt.WriteBackCtx(context.Background(), name, dst)
}

// WriteBackAction is the discrete-action write-back with
// context.Background(); see WriteBackActionCtx.
func (rt *Runtime) WriteBackAction(name string) (int, error) {
	return rt.WriteBackActionCtx(context.Background(), name)
}

// Checkpoint is au_checkpoint with context.Background(); see
// CheckpointCtx.
func (rt *Runtime) Checkpoint(prog ckpt.Snapshotter, progBytes int) {
	_ = rt.CheckpointCtx(context.Background(), prog, progBytes)
}

// Restore is au_restore with context.Background(); see RestoreCtx.
func (rt *Runtime) Restore(prog ckpt.Snapshotter) error {
	return rt.RestoreCtx(context.Background(), prog)
}

// Fit trains with context.Background() and reports the final epoch's
// mean loss; see FitCtx for the context-aware form with partial-progress
// statistics.
func (rt *Runtime) Fit(mdName string, epochs, batchSize int) (float64, error) {
	st, err := rt.FitCtx(context.Background(), mdName, epochs, batchSize)
	return st.LastLoss, err
}

// Predict is direct inference with context.Background(); see PredictCtx.
func (rt *Runtime) Predict(mdName string, in []float64) ([]float64, error) {
	return rt.PredictCtx(context.Background(), mdName, in)
}
