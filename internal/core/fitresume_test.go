package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/ckpt"
)

// uninterruptedParams runs a full fit on a fresh runtime and returns the
// final serialized model.
func uninterruptedParams(t *testing.T, n, epochs, batch int) ([]byte, FitStats) {
	t.Helper()
	rt := slRuntime(t, n)
	st, err := rt.FitCtx(context.Background(), "sl", epochs, batch)
	if err != nil {
		t.Fatalf("uninterrupted fit: %v", err)
	}
	data, err := rt.SaveModel("sl")
	if err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	return data, st
}

// TestFitResumeBitIdentical is the durability contract test: a fit
// interrupted at an arbitrary checkpoint and resumed in a FRESH process
// (here: a fresh runtime) must land on bit-identical final parameters.
func TestFitResumeBitIdentical(t *testing.T) {
	const n, epochs, batch = 48, 3, 8 // 6 minibatches per epoch, 18 total
	want, wantSt := uninterruptedParams(t, n, epochs, batch)

	// Interrupt at every checkpoint boundary: after 1..17 total steps.
	for stop := 1; stop < epochs*6; stop++ {
		// First process: checkpoint every step, cancel after `stop`.
		rt1 := slRuntime(t, n)
		var last *ckpt.FitCheckpoint
		_, err := rt1.FitResumeCtx(newStepCtx(stop), "sl", epochs, batch, FitResumeOptions{
			CheckpointEvery: 1,
			OnCheckpoint:    func(c *ckpt.FitCheckpoint) error { last = c; return nil },
		})
		wantCanceled(t, err)
		if last == nil {
			t.Fatalf("stop=%d: no checkpoint taken", stop)
		}
		if last.Batches != stop {
			t.Fatalf("stop=%d: last checkpoint at step %d", stop, last.Batches)
		}

		// Second process: brand-new runtime, resume from the checkpoint.
		rt2 := slRuntime(t, n)
		st, err := rt2.FitResumeCtx(context.Background(), "sl", epochs, batch, FitResumeOptions{
			Resume: last,
		})
		if err != nil {
			t.Fatalf("stop=%d: resume: %v", stop, err)
		}
		if st.Epochs != wantSt.Epochs || st.Batches != wantSt.Batches {
			t.Errorf("stop=%d: resumed stats Epochs=%d Batches=%d, want %d/%d",
				stop, st.Epochs, st.Batches, wantSt.Epochs, wantSt.Batches)
		}
		if st.LastLoss != wantSt.LastLoss {
			t.Errorf("stop=%d: resumed LastLoss = %v, want %v", stop, st.LastLoss, wantSt.LastLoss)
		}
		got, err := rt2.SaveModel("sl")
		if err != nil {
			t.Fatalf("stop=%d: SaveModel: %v", stop, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("stop=%d: resumed parameters differ from uninterrupted run", stop)
		}
	}
}

// TestFitResumeSurvivesEncodeDecode resumes from a checkpoint that went
// through the WAL wire format, as the durable queue does.
func TestFitResumeSurvivesEncodeDecode(t *testing.T) {
	const n, epochs, batch = 32, 2, 8
	want, _ := uninterruptedParams(t, n, epochs, batch)

	rt1 := slRuntime(t, n)
	var encoded []byte
	_, err := rt1.FitResumeCtx(newStepCtx(5), "sl", epochs, batch, FitResumeOptions{
		CheckpointEvery: 1,
		OnCheckpoint:    func(c *ckpt.FitCheckpoint) error { encoded = c.Encode(); return nil },
	})
	wantCanceled(t, err)

	decoded, err := ckpt.DecodeFitCheckpoint(encoded)
	if err != nil {
		t.Fatalf("DecodeFitCheckpoint: %v", err)
	}
	rt2 := slRuntime(t, n)
	if _, err := rt2.FitResumeCtx(context.Background(), "sl", epochs, batch, FitResumeOptions{Resume: decoded}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := rt2.SaveModel("sl")
	if err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resume via encoded checkpoint diverged from uninterrupted run")
	}
}

func TestFitResumeValidatesCheckpoint(t *testing.T) {
	rt := slRuntime(t, 16)
	var last *ckpt.FitCheckpoint
	_, err := rt.FitResumeCtx(newStepCtx(1), "sl", 2, 8, FitResumeOptions{
		CheckpointEvery: 1,
		OnCheckpoint:    func(c *ckpt.FitCheckpoint) error { last = c; return nil },
	})
	wantCanceled(t, err)

	t.Run("wrong model", func(t *testing.T) {
		bad := *last
		bad.Model = "other"
		rt2 := slRuntime(t, 16)
		if _, err := rt2.FitResumeCtx(context.Background(), "sl", 2, 8, FitResumeOptions{Resume: &bad}); !errors.Is(err, auerr.ErrSpecInvalid) {
			t.Errorf("wrong model accepted: %v", err)
		}
	})
	t.Run("wrong geometry", func(t *testing.T) {
		rt2 := slRuntime(t, 16)
		if _, err := rt2.FitResumeCtx(context.Background(), "sl", 5, 8, FitResumeOptions{Resume: last}); !errors.Is(err, auerr.ErrSpecInvalid) {
			t.Errorf("mismatched epochs accepted: %v", err)
		}
		if _, err := rt2.FitResumeCtx(context.Background(), "sl", 2, 4, FitResumeOptions{Resume: last}); !errors.Is(err, auerr.ErrSpecInvalid) {
			t.Errorf("mismatched batch size accepted: %v", err)
		}
	})
}

func TestFitResumeCheckpointCallbackErrorAborts(t *testing.T) {
	rt := slRuntime(t, 32)
	boom := errors.New("journal full")
	st, err := rt.FitResumeCtx(context.Background(), "sl", 2, 8, FitResumeOptions{
		CheckpointEvery: 2,
		OnCheckpoint:    func(*ckpt.FitCheckpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback error", err)
	}
	if st.Batches != 2 {
		t.Errorf("Batches = %d, want 2 (aborted at first checkpoint)", st.Batches)
	}
}
