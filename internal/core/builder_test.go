package core

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// TestCustomBuilder exercises the paper's extension point: a callback
// that constructs an arbitrary network instead of the built-in
// families.
func TestCustomBuilder(t *testing.T) {
	built := 0
	rt := NewRuntime(Train, 30)
	err := rt.Config(ModelSpec{
		Name: "custom", Algo: AdamOpt, LR: 0.01,
		Builder: func(inSize, outSize int, rng *stats.RNG) *nn.Network {
			built++
			return nn.NewNetwork(
				nn.NewDense(inSize, 12, rng),
				nn.NewTanh(),
				nn.NewDense(12, outSize, rng),
			)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(31)
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		if err := rt.RecordExample("custom", []float64{x}, []float64{1 - x}); err != nil {
			t.Fatal(err)
		}
	}
	if built != 1 {
		t.Fatalf("builder called %d times, want 1", built)
	}
	loss, err := rt.Fit("custom", 40, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("custom network did not learn: loss %v", loss)
	}
	out, err := rt.Predict("custom", []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0.5 || out[0] > 0.9 {
		t.Errorf("Predict(0.3) = %v, want ~0.7", out[0])
	}
}

// TestCustomBuilderRL pairs the callback with Q-learning: the builder
// runs twice (online + target networks).
func TestCustomBuilderRL(t *testing.T) {
	built := 0
	rt := NewRuntime(Train, 32)
	err := rt.Config(ModelSpec{
		Name: "q", Algo: QLearn, Actions: 2,
		Builder: func(inSize, outSize int, rng *stats.RNG) *nn.Network {
			built++
			return nn.NewDNN(inSize, []int{8}, outSize, rng)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Extract("S", 0.5)
	if err := rt.NNRL("q", "S", 0, false, "out"); err != nil {
		t.Fatal(err)
	}
	if built != 2 {
		t.Errorf("builder called %d times, want 2 (online + target)", built)
	}
	if a, err := rt.WriteBackAction("out"); err != nil || a < 0 || a > 1 {
		t.Errorf("action = %d, %v", a, err)
	}
}

// TestMultipleModels mirrors the Canny annotation, which configures two
// models (SigmaNN and MinNN) in one execution.
func TestMultipleModels(t *testing.T) {
	rt := NewRuntime(Train, 33)
	for _, name := range []string{"SigmaNN", "MinNN"} {
		if err := rt.Config(ModelSpec{Name: name, Algo: AdamOpt, Hidden: []int{4}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.ModelNames(); len(got) != 2 || got[0] != "MinNN" || got[1] != "SigmaNN" {
		t.Fatalf("ModelNames = %v", got)
	}
	// Each model trains independently.
	rt.Extract("IMG", 1, 2)
	rt.DB().Put("SIGMA", []float64{0.5})
	if err := rt.NN("SigmaNN", "IMG", "SIGMA"); err != nil {
		t.Fatal(err)
	}
	rt.Extract("HIST", 3, 4, 5)
	rt.DB().Put("LO", []float64{0.1})
	rt.DB().Put("HI", []float64{0.9})
	if err := rt.NN("MinNN", "HIST", "LO", "HI"); err != nil {
		t.Fatal(err)
	}
	if n, err := rt.ModelParamCount("SigmaNN"); err != nil || n == 0 {
		t.Errorf("SigmaNN params: %d, %v", n, err)
	}
	if n, err := rt.ModelParamCount("MinNN"); err != nil || n == 0 {
		t.Errorf("MinNN params: %d, %v", n, err)
	}
	if rt.NNCallCount() != 2 {
		t.Errorf("NNCallCount = %d", rt.NNCallCount())
	}
}

// TestRLTestModeRoundTrip covers the TR→TS lifecycle for Q-learning
// models: train, save, reload in a TS runtime, act greedily.
func TestRLTestModeRoundTrip(t *testing.T) {
	tr := NewRuntime(Train, 34)
	spec := ModelSpec{Name: "q", Algo: QLearn, Actions: 2, Hidden: []int{8},
		EpsilonDecaySteps: 200}
	if err := tr.Config(spec); err != nil {
		t.Fatal(err)
	}
	// Teach "always act 1" with a reward gradient.
	for i := 0; i < 600; i++ {
		tr.Extract("S", float64(i%5)/5)
		act := 0
		if err := tr.NNRL("q", "S", float64(act), false, "out"); err != nil {
			t.Fatal(err)
		}
		a, _ := tr.WriteBackAction("out")
		reward := -1.0
		if a == 1 {
			reward = 1
		}
		tr.Extract("S", float64((i+1)%5)/5)
		if err := tr.NNRL("q", "S", reward, i%20 == 19, "out"); err != nil {
			t.Fatal(err)
		}
	}
	data, err := tr.SaveModel("q")
	if err != nil {
		t.Fatal(err)
	}

	ts := NewRuntime(Test, 35)
	ts.LoadModel("q", data)
	if err := ts.Config(spec); err != nil {
		t.Fatal(err)
	}
	// TS-mode actions are greedy and deterministic.
	ts.Extract("S", 0.4)
	if err := ts.NNRL("q", "S", 0, false, "out"); err != nil {
		t.Fatal(err)
	}
	a1, _ := ts.WriteBackAction("out")
	ts.Extract("S", 0.4)
	if err := ts.NNRL("q", "S", 0, false, "out"); err != nil {
		t.Fatal(err)
	}
	a2, _ := ts.WriteBackAction("out")
	if a1 != a2 {
		t.Errorf("TS-mode actions not deterministic: %d vs %d", a1, a2)
	}
	if got, err := ts.Predict("q", []float64{0.4}); err != nil || len(got) != 2 {
		t.Errorf("TS Predict = %v, %v", got, err)
	}
}
