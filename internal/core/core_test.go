package core

import (
	"math"
	"strings"
	"testing"

	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// hostProg is a tiny stand-in for an annotated host program's state σ.
type hostProg struct {
	vars map[string]float64
}

func newHostProg() *hostProg { return &hostProg{vars: map[string]float64{}} }

func (p *hostProg) Snapshot() any {
	cp := make(map[string]float64, len(p.vars))
	for k, v := range p.vars {
		cp[k] = v
	}
	return cp
}

func (p *hostProg) Restore(s any) {
	snap := s.(map[string]float64)
	p.vars = make(map[string]float64, len(snap))
	for k, v := range snap {
		p.vars[k] = v
	}
}

func TestModeStrings(t *testing.T) {
	if Train.String() != "TR" || Test.String() != "TS" {
		t.Error("mode strings wrong")
	}
	if DNN.String() != "DNN" || CNN.String() != "CNN" {
		t.Error("model type strings wrong")
	}
	if QLearn.String() != "QLearn" || AdamOpt.String() != "AdamOpt" {
		t.Error("algorithm strings wrong")
	}
	if Mode(99).String() == "" || ModelType(99).String() == "" || Algorithm(99).String() == "" {
		t.Error("unknown enum strings empty")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec ModelSpec
		ok   bool
	}{
		{"valid sl", ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{8}}, true},
		{"valid rl", ModelSpec{Name: "m", Algo: QLearn, Actions: 3}, true},
		{"no name", ModelSpec{Algo: AdamOpt}, false},
		{"bad hidden", ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{0}}, false},
		{"cnn no shape", ModelSpec{Name: "m", Type: CNN, Algo: AdamOpt}, false},
		{"rl no actions", ModelSpec{Name: "m", Algo: QLearn}, false},
		{"bad activation", ModelSpec{Name: "m", Algo: AdamOpt, OutputActivation: "softplus"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRuntime(Train, 1)
			err := rt.Config(tc.spec)
			if tc.ok && err != nil {
				t.Errorf("Config(%+v) = %v, want nil", tc.spec, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Config(%+v) succeeded, want error", tc.spec)
			}
		})
	}
}

func TestConfigIdempotent(t *testing.T) {
	rt := NewRuntime(Train, 1)
	spec := ModelSpec{Name: "m", Algo: AdamOpt}
	if err := rt.Config(spec); err != nil {
		t.Fatal(err)
	}
	// Reconfiguring must be a no-op, not an error (θ(mdName) ≢ ⊥ case).
	spec.Hidden = []int{123}
	if err := rt.Config(spec); err != nil {
		t.Fatalf("second Config: %v", err)
	}
	if len(rt.ModelNames()) != 1 {
		t.Errorf("ModelNames = %v", rt.ModelNames())
	}
}

func TestExtractSerializeWriteBackFlow(t *testing.T) {
	rt := NewRuntime(Train, 2)
	rt.Extract("PX", 1)
	rt.Extract("PY", 2)
	rt.Extract("MnX", 3, 4)
	key := rt.Serialize("PX", "PY", "MnX")
	if key != "PX+PY+MnX" {
		t.Errorf("Serialize key = %q", key)
	}
	got, ok := rt.DB().Get(key)
	if !ok || len(got) != 4 {
		t.Fatalf("serialized = %v", got)
	}
	if rt.TraceValueCount() != 4 {
		t.Errorf("TraceValueCount = %d, want 4", rt.TraceValueCount())
	}
}

func TestWriteBackErrors(t *testing.T) {
	rt := NewRuntime(Train, 3)
	if _, err := rt.WriteBack("nope", make([]float64, 1)); err == nil {
		t.Error("WriteBack of unbound name succeeded")
	}
	if _, err := rt.WriteBackAction("nope"); err == nil {
		t.Error("WriteBackAction of unbound name succeeded")
	}
	rt.DB().Put("empty", nil)
	if _, err := rt.WriteBackAction("empty"); err == nil {
		t.Error("WriteBackAction of empty binding succeeded")
	}
}

// TestSLOnlineTraining exercises the literal TRAIN rule: the program
// binds oracle targets under the write-back names, calls au_NN, and the
// model takes a gradient step before predicting.
func TestSLOnlineTraining(t *testing.T) {
	rt := NewRuntime(Train, 4)
	if err := rt.Config(ModelSpec{Name: "SigmaNN", Algo: AdamOpt, Hidden: []int{8}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	// Teach the model f(x) = [x0+x1] over a few hundred annotated runs.
	rng := stats.NewRNG(5)
	for i := 0; i < 600; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		rt.Extract("IMG", x...)
		rt.DB().Put("SIGMA", []float64{x[0] + x[1]}) // oracle target
		if err := rt.NN("SigmaNN", "IMG", "SIGMA"); err != nil {
			t.Fatal(err)
		}
		// Input list must be consumed (extName ↦ ⊥).
		if rt.DB().Len("IMG") != 0 {
			t.Fatal("au_NN did not reset the input list")
		}
	}
	rt.Extract("IMG", 0.3, 0.4)
	rt.DB().Put("SIGMA", []float64{0.7})
	if err := rt.NN("SigmaNN", "IMG", "SIGMA"); err != nil {
		t.Fatal(err)
	}
	var sigma [1]float64
	if _, err := rt.WriteBack("SIGMA", sigma[:]); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma[0]-0.7) > 0.15 {
		t.Errorf("predicted sigma = %v, want ~0.7", sigma[0])
	}
}

// TestSLOfflineFit exercises the offline path: record examples during
// training runs, then Fit, then predict.
func TestSLOfflineFit(t *testing.T) {
	rt := NewRuntime(Train, 6)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{8}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()}
		if err := rt.RecordExample("m", x, []float64{2 * x[0]}); err != nil {
			t.Fatal(err)
		}
	}
	if rt.ExampleCount("m") != 200 {
		t.Fatalf("ExampleCount = %d", rt.ExampleCount("m"))
	}
	loss, err := rt.Fit("m", 30, 16)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("Fit final loss = %v, want < 0.01", loss)
	}
	out, err := rt.Predict("m", []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.5) > 0.1 {
		t.Errorf("Predict(0.25) = %v, want ~0.5", out[0])
	}
}

func TestNNSplitsOutputAcrossWriteBackNames(t *testing.T) {
	rt := NewRuntime(Train, 8)
	if err := rt.Config(ModelSpec{Name: "MinNN", Algo: AdamOpt, Hidden: []int{4}}); err != nil {
		t.Fatal(err)
	}
	rt.Extract("HIST", 1, 2, 3)
	rt.DB().Put("LO", []float64{0.1})
	rt.DB().Put("HI", []float64{0.9})
	if err := rt.NN("MinNN", "HIST", "LO", "HI"); err != nil {
		t.Fatal(err)
	}
	lo, okLo := rt.DB().Get("LO")
	hi, okHi := rt.DB().Get("HI")
	if !okLo || !okHi || len(lo) != 1 || len(hi) != 1 {
		t.Fatalf("split outputs: LO=%v HI=%v", lo, hi)
	}
}

func TestNNErrors(t *testing.T) {
	rt := NewRuntime(Train, 9)
	if err := rt.NN("ghost", "X", "Y"); err == nil {
		t.Error("NN on unconfigured model succeeded")
	}
	if err := rt.Config(ModelSpec{Name: "sl", Algo: AdamOpt}); err != nil {
		t.Fatal(err)
	}
	if err := rt.NN("sl", "X", "Y"); err == nil {
		t.Error("NN with empty input succeeded")
	}
	rt.Extract("X", 1)
	if err := rt.NN("sl", "X"); err == nil {
		t.Error("NN with no targets and unmaterialized net succeeded")
	}
	if err := rt.Config(ModelSpec{Name: "q", Algo: QLearn, Actions: 2}); err != nil {
		t.Fatal(err)
	}
	if err := rt.NN("q", "X", "Y"); err == nil {
		t.Error("NN on QLearn model succeeded")
	}
	rt.Extract("S", 1)
	if err := rt.NNRL("sl", "S", 0, false, "out"); err == nil {
		t.Error("NNRL on AdamOpt model succeeded")
	}
	if err := rt.NNRL("ghost", "S", 0, false, "out"); err == nil {
		t.Error("NNRL on unconfigured model succeeded")
	}
	if err := rt.NNRL("q", "NOPE", 0, false, "out"); err == nil {
		t.Error("NNRL with empty input succeeded")
	}
}

// TestRLFlow runs the full annotated game-loop protocol from Fig. 2:
// extract → serialize → NNRL → write-back action, with checkpoint and
// restore at episode boundaries.
func TestRLFlow(t *testing.T) {
	rt := NewRuntime(Train, 10)
	err := rt.Config(ModelSpec{
		Name: "Mario", Algo: QLearn, Hidden: []int{16}, Actions: 3,
		EpsilonDecaySteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := newHostProg()
	prog.vars["px"] = 0
	rt.Checkpoint(prog, 8)

	for step := 0; step < 50; step++ {
		rt.Extract("PX", prog.vars["px"])
		rt.Extract("PY", 1.0)
		key := rt.Serialize("PX", "PY")
		terminal := prog.vars["px"] > 5
		reward := 1.0
		if terminal {
			reward = -10
		}
		if err := rt.NNRL("Mario", key, reward, terminal, "output"); err != nil {
			t.Fatal(err)
		}
		act, err := rt.WriteBackAction("output")
		if err != nil {
			t.Fatal(err)
		}
		if act < 0 || act >= 3 {
			t.Fatalf("action out of range: %d", act)
		}
		if terminal {
			if err := rt.Restore(prog); err != nil {
				t.Fatal(err)
			}
			if prog.vars["px"] != 0 {
				t.Fatal("restore did not roll back program state")
			}
			continue
		}
		prog.vars["px"]++
	}
	st, ok := rt.RLStats("Mario")
	if !ok {
		t.Fatal("RLStats missing")
	}
	if st.Steps == 0 || st.ReplayLen == 0 {
		t.Errorf("agent never observed transitions: %+v", st)
	}
	if st.TraceBytes == 0 {
		t.Error("TraceBytes = 0")
	}
}

func TestRLStatsUnknown(t *testing.T) {
	rt := NewRuntime(Train, 11)
	if _, ok := rt.RLStats("nope"); ok {
		t.Error("RLStats of unknown model reported ok")
	}
}

// TestModelSurvivesRestore is the paper's key checkpointing property:
// au_restore rolls back σ and π but θ keeps its learned weights.
func TestModelSurvivesRestore(t *testing.T) {
	rt := NewRuntime(Train, 12)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt, LR: 0.05}); err != nil {
		t.Fatal(err)
	}
	prog := newHostProg()
	rt.Checkpoint(prog, 8)

	// Train the model a bit.
	for i := 0; i < 50; i++ {
		rt.Extract("X", 1)
		rt.DB().Put("Y", []float64{3})
		if err := rt.NN("m", "X", "Y"); err != nil {
			t.Fatal(err)
		}
	}
	before, err := rt.Predict("m", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Restore(prog); err != nil {
		t.Fatal(err)
	}
	after, err := rt.Predict("m", []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if before[0] != after[0] {
		t.Errorf("model changed across restore: %v -> %v", before[0], after[0])
	}
	// But π must have been rolled back (the post-checkpoint "Y" binding
	// is gone).
	if _, ok := rt.DB().Get("Y"); ok {
		t.Error("db store not rolled back by restore")
	}
}

// TestSaveLoadModelRoundTrip covers the TR→TS lifecycle: train, save,
// then a fresh Test-mode runtime loads and reproduces predictions.
func TestSaveLoadModelRoundTrip(t *testing.T) {
	tr := NewRuntime(Train, 13)
	if err := tr.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{6}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(14)
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := tr.RecordExample("m", x, []float64{x[0] - x[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Fit("m", 20, 16); err != nil {
		t.Fatal(err)
	}
	data, err := tr.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}

	ts := NewRuntime(Test, 15)
	ts.LoadModel("m", data)
	if err := ts.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{6}}); err != nil {
		t.Fatal(err)
	}
	in := []float64{0.8, 0.3}
	want, err := tr.Predict("m", in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ts.Predict("m", in)
	if err != nil {
		t.Fatal(err)
	}
	if want[0] != got[0] {
		t.Errorf("TS prediction %v != TR prediction %v", got[0], want[0])
	}

	// In TS mode, NN must not learn: predictions are stable across calls
	// with contradictory targets present.
	ts.Extract("X", in...)
	ts.DB().Put("OUT", []float64{99})
	if err := ts.NN("m", "X", "OUT"); err != nil {
		t.Fatal(err)
	}
	var out [1]float64
	if _, err := ts.WriteBack("OUT", out[:]); err != nil {
		t.Fatal(err)
	}
	if out[0] != got[0] {
		t.Errorf("TS-mode NN output %v differs from pure prediction %v", out[0], got[0])
	}
}

func TestConfigTestModeRequiresSavedModel(t *testing.T) {
	ts := NewRuntime(Test, 16)
	if err := ts.Config(ModelSpec{Name: "missing", Algo: AdamOpt}); err == nil {
		t.Error("TS-mode Config without saved model succeeded")
	}
	ts.LoadModel("bad", []byte{1, 2, 3})
	if err := ts.Config(ModelSpec{Name: "bad", Algo: AdamOpt}); err == nil {
		t.Error("TS-mode Config with corrupt model succeeded")
	}
}

func TestSaveModelErrors(t *testing.T) {
	rt := NewRuntime(Train, 17)
	if _, err := rt.SaveModel("ghost"); err == nil {
		t.Error("SaveModel of unknown model succeeded")
	}
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SaveModel("m"); err == nil {
		t.Error("SaveModel of unmaterialized model succeeded")
	}
	if _, err := rt.ModelSizeBytes("m"); err == nil {
		t.Error("ModelSizeBytes of unmaterialized model succeeded")
	}
	if _, err := rt.ModelSizeBytes("ghost"); err == nil {
		t.Error("ModelSizeBytes of unknown model succeeded")
	}
	if _, err := rt.ModelParamCount("ghost"); err == nil {
		t.Error("ModelParamCount of unknown model succeeded")
	}
	if _, err := rt.Predict("ghost", nil); err == nil {
		t.Error("Predict of unknown model succeeded")
	}
	if _, err := rt.Fit("ghost", 1, 1); err == nil {
		t.Error("Fit of unknown model succeeded")
	}
	if _, err := rt.Fit("m", 1, 1); err == nil {
		t.Error("Fit with no examples succeeded")
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	rt := NewRuntime(Train, 18)
	if err := rt.Restore(newHostProg()); err != ckpt.ErrNoCheckpoint {
		t.Errorf("Restore err = %v, want ErrNoCheckpoint", err)
	}
}

func TestModelSizeAccounting(t *testing.T) {
	rt := NewRuntime(Train, 19)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{10}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecordExample("m", []float64{1, 2, 3}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	size, err := rt.ModelSizeBytes("m")
	if err != nil {
		t.Fatal(err)
	}
	count, err := rt.ModelParamCount("m")
	if err != nil {
		t.Fatal(err)
	}
	// dense(3->10)=40 params, dense(10->1)=11 params.
	if count != 51 {
		t.Errorf("ModelParamCount = %d, want 51", count)
	}
	if size <= 8*count {
		t.Errorf("ModelSizeBytes = %d, must exceed raw param bytes %d", size, 8*count)
	}
}

func TestInputSizeChangeRejected(t *testing.T) {
	rt := NewRuntime(Train, 20)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecordExample("m", []float64{1, 2}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecordExample("m", []float64{1, 2, 3}, []float64{1}); err == nil {
		t.Error("input size change accepted")
	}
	rt.Extract("X", 1, 2)
	rt.DB().Put("Y", []float64{1, 2}) // wrong target width
	if err := rt.NN("m", "X", "Y"); err == nil {
		t.Error("target width change accepted")
	}
}

func TestErrorMessagesNamePrimitive(t *testing.T) {
	rt := NewRuntime(Train, 21)
	err := rt.NN("ghost", "X", "Y")
	if err == nil || !strings.Contains(err.Error(), "au_NN") {
		t.Errorf("error %v does not mention the primitive", err)
	}
	_, err = rt.WriteBack("ghost", nil)
	if err == nil || !strings.Contains(err.Error(), "au_write_back") {
		t.Errorf("error %v does not mention the primitive", err)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt := NewRuntime(Test, 40)
	if rt.Mode() != Test {
		t.Errorf("Mode = %v", rt.Mode())
	}
	if rt.Checkpoints() == nil {
		t.Error("Checkpoints nil")
	}
	if rt.ExampleCount("ghost") != 0 {
		t.Error("ExampleCount of unknown model nonzero")
	}
	if err := rt.LoadModelParams("ghost", nil); err == nil {
		t.Error("LoadModelParams of unknown model succeeded")
	}
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt}); err == nil {
		// TS mode without saved model must fail; reaching here is wrong.
		t.Error("TS config without saved model succeeded")
	}
}

func TestLoadModelParamsErrors(t *testing.T) {
	rt := NewRuntime(Train, 41)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt}); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModelParams("m", nil); err == nil {
		t.Error("LoadModelParams on unmaterialized model succeeded")
	}
	if err := rt.RecordExample("m", []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModelParams("m", []byte{1, 2, 3}); err == nil {
		t.Error("LoadModelParams with garbage succeeded")
	}
	good, err := rt.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModelParams("m", good); err != nil {
		t.Errorf("round trip failed: %v", err)
	}
}

// TestCNNSupervisedPath covers the CNN branch of the SL model: fit and
// predict over (C,H,W)-shaped inputs.
func TestCNNSupervisedPath(t *testing.T) {
	rt := NewRuntime(Train, 42)
	err := rt.Config(ModelSpec{
		Name: "cnn", Type: CNN, Algo: AdamOpt, LR: 1e-3,
		InputShape: []int{1, 16, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(43)
	for i := 0; i < 12; i++ {
		in := make([]float64, 16*16)
		bright := float64(i % 2) // label = brightness class
		for j := range in {
			in[j] = bright*0.8 + 0.1*rng.Float64()
		}
		if err := rt.RecordExample("cnn", in, []float64{bright}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Fit("cnn", 3, 4); err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 16*16)
	out, err := rt.Predict("cnn", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("CNN output = %v", out)
	}
}
