package core

import (
	"context"
	"strings"
	"testing"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// TestRuntimeTelemetry drives every instrumented primitive against a
// private registry and checks the per-primitive call counters, latency
// histograms, auerr-classed error counters and store gauges all export.
func TestRuntimeTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	rt := NewRuntime(Train, 1).Instrument(reg)
	ctx := context.Background()

	if err := rt.ConfigCtx(ctx, ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{4}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := rt.ExtractCtx(ctx, "x", float64(i), 1); err != nil {
			t.Fatal(err)
		}
		if err := rt.ExtractCtx(ctx, "y", float64(2*i)); err != nil {
			t.Fatal(err)
		}
		if err := rt.NNCtx(ctx, "m", "x", "y"); err != nil {
			t.Fatal(err)
		}
		var out [1]float64
		if _, err := rt.WriteBackCtx(ctx, "y", out[:]); err != nil {
			t.Fatal(err)
		}
		rt.DB().Reset("y")
	}
	if _, err := rt.FitCtx(ctx, "m", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.PredictCtx(ctx, "m", []float64{1, 1}); err != nil {
		t.Fatal(err)
	}

	// Two classified failures: a write-back of an unbound name
	// (missing_input) and a predict on an unknown model (unknown_model).
	if _, err := rt.WriteBackCtx(ctx, "unbound", nil); err == nil {
		t.Fatal("write_back of unbound name succeeded")
	}
	if _, err := rt.PredictCtx(ctx, "ghost", []float64{1}); err == nil {
		t.Fatal("predict on unknown model succeeded")
	}

	calls := func(p string) uint64 {
		return reg.Counter("autonomizer_core_primitive_calls_total", "",
			obs.Labels{"primitive": p}).Value()
	}
	latCount := func(p string) uint64 {
		return reg.Histogram("autonomizer_core_primitive_duration_seconds", "", nil,
			obs.Labels{"primitive": p}).Count()
	}
	for p, want := range map[string]uint64{
		"config": 1, "extract": 8, "nn": 4, "write_back": 5,
		"fit": 1, "predict": 2,
	} {
		if got := calls(p); got != want {
			t.Errorf("calls[%s] = %d, want %d", p, got, want)
		}
		if got := latCount(p); got != want {
			t.Errorf("latency count[%s] = %d, want %d", p, got, want)
		}
	}
	errs := func(p, class string) uint64 {
		return reg.Counter("autonomizer_core_primitive_errors_total", "",
			obs.Labels{"primitive": p, "class": class}).Value()
	}
	if got := errs("write_back", "missing_input"); got != 1 {
		t.Errorf("errors[write_back, missing_input] = %d, want 1", got)
	}
	if got := errs("predict", "unknown_model"); got != 1 {
		t.Errorf("errors[predict, unknown_model] = %d, want 1", got)
	}
	if n := reg.Counter("autonomizer_nn_fit_epochs_total", "", nil).Value(); n != 2 {
		t.Errorf("fit epochs = %d, want 2", n)
	}
	if n := reg.Histogram("autonomizer_nn_fit_step_duration_seconds", "", nil, nil).Count(); n == 0 {
		t.Error("no fit step timings recorded")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"autonomizer_db_store_bytes",
		"autonomizer_db_store_names",
		"autonomizer_core_models 1",
		`autonomizer_nn_fit_last_loss{model="m"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTelemetryErrorClassOnCancel checks the canceled class reaches the
// error counter (the label vocabulary's most common runtime class).
func TestTelemetryErrorClassOnCancel(t *testing.T) {
	reg := obs.NewRegistry()
	rt := NewRuntime(Train, 1).Instrument(reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := rt.ExtractCtx(ctx, "x", 1); err == nil {
		t.Fatal("extract on canceled context succeeded")
	}
	got := reg.Counter("autonomizer_core_primitive_errors_total", "",
		obs.Labels{"primitive": "extract", "class": "canceled"}).Value()
	if got != 1 {
		t.Fatalf("errors[extract, canceled] = %d, want 1", got)
	}
}

// TestUninstrumentedRuntimeWorks pins the zero-cost default: with no
// registry every primitive runs with nil telemetry.
func TestUninstrumentedRuntimeWorks(t *testing.T) {
	rt := NewRuntime(Train, 1) // obs.Default() is nil in tests
	if rt.tel != nil && obs.Default() == nil {
		t.Fatal("runtime picked up telemetry with no default registry")
	}
	ctx := context.Background()
	if err := rt.ExtractCtx(ctx, "x", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SerializeCtx(ctx, "x"); err != nil {
		t.Fatal(err)
	}
}

// TestFitStatsTiming checks the new FitStats wall-clock fields.
func TestFitStatsTiming(t *testing.T) {
	rt := NewRuntime(Train, 1)
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{8}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		x := float64(i) / 16
		if err := rt.RecordExample("m", []float64{x, 1 - x}, []float64{2 * x}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := rt.FitCtx(context.Background(), "m", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Duration <= 0 {
		t.Fatalf("FitStats.Duration = %v, want > 0", st.Duration)
	}
	if st.StepsPerSec <= 0 {
		t.Fatalf("FitStats.StepsPerSec = %v, want > 0", st.StepsPerSec)
	}
	if st.Batches == 0 || st.Epochs != 3 {
		t.Fatalf("unexpected FitStats: %+v", st)
	}
}
