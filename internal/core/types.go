// Package core implements the Autonomizer runtime: the seven primitives
// of the paper (au_config, au_extract, au_NN, au_write_back,
// au_serialize, au_checkpoint, au_restore) together with the two-store
// execution model of Fig. 8. A host program links against this package
// (directly or through the public autonomizer facade), adds a few
// primitive calls at the annotated program points, and gains a trained
// neural controller transparently.
//
// The runtime keeps the paper's separation of concerns:
//
//   - the Program Store σ is the host program's own variables — the
//     runtime never reaches into them except through au_write_back;
//   - the Database Store π (internal/db) receives extracted feature
//     values and model outputs;
//   - the model store θ is the registry of named networks built by
//     au_config; it survives checkpoint/restore untouched.
package core

import (
	"fmt"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Mode is the execution mode ω of the semantics: TR (training) or TS
// (testing / production). The paper compiles two executables; here the
// mode is selected when the Runtime is created.
type Mode int

const (
	// Train is TR: au_NN trains the model in addition to predicting.
	Train Mode = iota
	// Test is TS: au_NN only predicts, using a previously trained model.
	Test
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Train:
		return "TR"
	case Test:
		return "TS"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ModelType is the model family δ: fully connected (DNN) or
// convolutional (CNN).
type ModelType int

const (
	// DNN selects a fully connected network.
	DNN ModelType = iota
	// CNN selects the convolutional raw-input network.
	CNN
)

// String implements fmt.Stringer.
func (t ModelType) String() string {
	switch t {
	case DNN:
		return "DNN"
	case CNN:
		return "CNN"
	default:
		return fmt.Sprintf("ModelType(%d)", int(t))
	}
}

// Algorithm is the learning algorithm α: Q-learning for reinforcement
// learning or Adam-optimized supervised regression.
type Algorithm int

const (
	// QLearn selects deep Q-learning (interactive programs).
	QLearn Algorithm = iota
	// AdamOpt selects Adam-optimized supervised learning (parameterized
	// programs).
	AdamOpt
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case QLearn:
		return "QLearn"
	case AdamOpt:
		return "AdamOpt"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ModelSpec describes one named model, the argument list of au_config:
// au_config(modelName, modelType, algo, layers, n1, ...). Input and
// output sizes are computed from the data that flows through the model,
// exactly as in the paper ("the size of the input and output layers is
// automatically computed"), so they are not part of the spec.
type ModelSpec struct {
	// Name identifies the model in θ.
	Name string
	// Type selects DNN or CNN.
	Type ModelType
	// Algo selects QLearn or AdamOpt.
	Algo Algorithm
	// Hidden lists the hidden-layer widths, e.g. {256, 64} for Mario.
	Hidden []int
	// Actions is the discrete action count for QLearn models (the "5"
	// in au_write_back("output", 5, actionKey)).
	Actions int
	// InputShape is required for CNN models: the (channels, height,
	// width) of the raw input. DNN models infer a flat input size.
	InputShape []int
	// LR overrides the learning rate (0 selects per-algorithm defaults:
	// 1e-3 for both QLearn and AdamOpt).
	LR float64
	// OutputActivation, when "sigmoid", squashes SL outputs into (0,1);
	// useful when targets are normalized parameters. Empty means linear.
	OutputActivation string
	// Gamma, EpsilonDecaySteps, ReplayCapacity, BatchSize and
	// TargetSyncEvery tune QLearn models; zero values select the rl
	// package defaults.
	Gamma             float64
	EpsilonDecaySteps int
	ReplayCapacity    int
	BatchSize         int
	TargetSyncEvery   int
	// LearnEvery trains once per this many observed transitions
	// (default 1); harnesses raise it to trade update frequency for
	// wall-clock speed.
	LearnEvery int
	// DoubleDQN enables double Q-learning for QLearn models.
	DoubleDQN bool
	// Workers caps the data-parallel training width for this model's
	// networks (0 = the process-wide parallel.Workers setting, itself
	// GOMAXPROCS or AUTONOMIZER_WORKERS). Training results are
	// bit-identical at any width; this is purely a resource knob.
	Workers int
	// Builder, when set, constructs the network instead of the built-in
	// DNN/CNN families — the analog of the paper's callback "in which
	// the users can create arbitrary neural networks from scratch with
	// Tensorflow". It receives the inferred input and output sizes and
	// a private RNG for initialization.
	Builder func(inSize, outSize int, rng *stats.RNG) *nn.Network
}

// validate reports configuration errors early, at au_config time. Every
// failure wraps auerr.ErrSpecInvalid in one uniform shape —
//
//	core: model "<name>": <Field>: <problem>
//
// naming both the model and the offending field, so Config and
// ConfigCtx (and any other path that validates a spec) surface
// identical, grep-able messages. The annotation is the user-facing
// surface of the system, so a bad spec must fail with a field-level
// message rather than a kernel invariant deep inside the first au_NN
// call.
func (s ModelSpec) validate() error {
	bad := func(field, format string, args ...any) error {
		return auerr.E(auerr.ErrSpecInvalid, "core: model %q: %s: %s", s.Name, field, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return bad("Name", "must be non-empty")
	}
	if s.Type != DNN && s.Type != CNN {
		return bad("Type", "unknown model type %v", s.Type)
	}
	if s.Algo != QLearn && s.Algo != AdamOpt {
		return bad("Algo", "unknown algorithm %v", s.Algo)
	}
	for i, h := range s.Hidden {
		if h <= 0 {
			return bad(fmt.Sprintf("Hidden[%d]", i), "width %d, widths must be positive", h)
		}
	}
	if s.Type == CNN {
		if len(s.InputShape) != 3 {
			return bad("InputShape", "must be (C,H,W) for CNN models, got %v", s.InputShape)
		}
		for i, d := range s.InputShape {
			if d <= 0 {
				return bad(fmt.Sprintf("InputShape[%d]", i), "dim %d, dims must be positive", d)
			}
		}
		if s.Builder == nil {
			// The built-in DeepMind-style CNN halves the plane three
			// times; inputs too small collapse to an empty feature map.
			h, w := s.InputShape[1], s.InputShape[2]
			for _, stage := range [][3]int{{5, 2, 2}, {3, 1, 1}, {3, 1, 1}} {
				h = tensor.ConvOutputSize(h, stage[0], stage[1], stage[2]) / 2
				w = tensor.ConvOutputSize(w, stage[0], stage[1], stage[2]) / 2
			}
			if h < 1 || w < 1 {
				return bad("InputShape", "%v too small for the built-in CNN (needs ≥1×1 after three conv/pool stages; set Builder for a custom net)", s.InputShape)
			}
		}
	}
	if s.Algo == QLearn && s.Actions <= 0 {
		return bad("Actions", "%d, QLearn models need a positive action count", s.Actions)
	}
	if s.Actions < 0 {
		return bad("Actions", "%d, cannot be negative", s.Actions)
	}
	if s.OutputActivation != "" && s.OutputActivation != "sigmoid" {
		return bad("OutputActivation", "unknown activation %q (only \"sigmoid\" or empty)", s.OutputActivation)
	}
	if s.LR < 0 {
		return bad("LR", "%g, learning rate cannot be negative", s.LR)
	}
	if s.Gamma < 0 || s.Gamma > 1 {
		return bad("Gamma", "%g, discount must be in [0,1]", s.Gamma)
	}
	if s.EpsilonDecaySteps < 0 {
		return bad("EpsilonDecaySteps", "%d, cannot be negative", s.EpsilonDecaySteps)
	}
	if s.ReplayCapacity < 0 {
		return bad("ReplayCapacity", "%d, cannot be negative", s.ReplayCapacity)
	}
	if s.BatchSize < 0 {
		return bad("BatchSize", "%d, cannot be negative", s.BatchSize)
	}
	if s.TargetSyncEvery < 0 {
		return bad("TargetSyncEvery", "%d, cannot be negative", s.TargetSyncEvery)
	}
	if s.LearnEvery < 0 {
		return bad("LearnEvery", "%d, cannot be negative", s.LearnEvery)
	}
	if s.Workers < 0 {
		return bad("Workers", "%d, cannot be negative", s.Workers)
	}
	return nil
}
