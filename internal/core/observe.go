package core

import (
	"context"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// The embedded drift pathway (DESIGN.md §5h, §5i): the same
// Observe/ObserveCtx primitive the remote Client exposes, feeding this
// runtime's own obs.DriftMonitor instead of a server's. A host written
// against the Querier interface closes the prediction→ground-truth
// loop identically whether the model runs in-process, behind one
// auserve, or across a fleet — which is what makes the drift monitor
// testable without a network and lets an embedded deployment graduate
// to a served one without touching the host's observation code.

// ObserveCtx records one ground-truth observation against an earlier
// prediction of the named model: the pair's mean squared error joins
// the model's rolling drift window and the updated verdict is
// returned. The model must be configured (or loaded) on this runtime;
// mismatched or empty vectors wrap auerr.ErrSpecInvalid.
func (rt *Runtime) ObserveCtx(ctx context.Context, mdName string, predicted, observed []float64) (st obs.DriftStatus, err error) {
	defer guard(&err)
	if err = live(ctx); err != nil {
		return obs.DriftStatus{}, err
	}
	if _, ok := rt.getModel(mdName); !ok {
		return obs.DriftStatus{}, auerr.E(auerr.ErrUnknownModel, "au_observe of unknown model %q", mdName)
	}
	st, rerr := rt.drift.Record(mdName, predicted, observed)
	if rerr != nil {
		return obs.DriftStatus{}, auerr.E(auerr.ErrSpecInvalid, "%v", rerr)
	}
	return st, nil
}

// Observe is ObserveCtx with context.Background().
func (rt *Runtime) Observe(mdName string, predicted, observed []float64) (obs.DriftStatus, error) {
	return rt.ObserveCtx(context.Background(), mdName, predicted, observed)
}

// Drift exposes the runtime's drift monitor (verdict inspection in
// tests and hosts, mirroring serve.Server.Drift).
func (rt *Runtime) Drift() *obs.DriftMonitor { return rt.drift }
