package core

import (
	"context"
	"errors"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// stepCtx is a deterministic cancellation source: Err returns nil for
// the first `allow` checks and context.Canceled afterwards. It lets
// tests cancel training at an exact minibatch boundary without racing a
// goroutine against the optimizer.
type stepCtx struct {
	context.Context
	allow int
}

func newStepCtx(allow int) *stepCtx {
	return &stepCtx{Context: context.Background(), allow: allow}
}

func (c *stepCtx) Err() error {
	if c.allow <= 0 {
		return context.Canceled
	}
	c.allow--
	return nil
}

// slRuntime builds a Train-mode runtime with an AdamOpt model holding
// `n` recorded examples of 3 inputs / 1 target.
func slRuntime(t *testing.T, n int) *Runtime {
	t.Helper()
	rt := NewRuntime(Train, 7)
	if err := rt.Config(ModelSpec{Name: "sl", Algo: AdamOpt, Hidden: []int{4}}); err != nil {
		t.Fatalf("Config: %v", err)
	}
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		if err := rt.RecordExample("sl", []float64{x, x * x, 1 - x}, []float64{2 * x}); err != nil {
			t.Fatalf("RecordExample: %v", err)
		}
	}
	return rt
}

func wantCanceled(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if !errors.Is(err, auerr.ErrCanceled) {
		t.Errorf("errors.Is(err, auerr.ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
}

func TestFitCtxCanceledMidEpochKeepsPartialProgress(t *testing.T) {
	rt := slRuntime(t, 64)

	// 64 examples at batch size 8 = 8 minibatches per epoch. Allow 3
	// boundary checks: exactly 3 optimizer steps complete, then the 4th
	// check cancels mid-epoch.
	st, err := rt.FitCtx(newStepCtx(3), "sl", 2, 8)
	wantCanceled(t, err)
	if st.Batches != 3 {
		t.Errorf("Batches = %d, want 3 (one per allowed boundary check)", st.Batches)
	}
	if st.Epochs != 0 {
		t.Errorf("Epochs = %d, want 0 (canceled mid-first-epoch)", st.Epochs)
	}
	if st.LastLoss == 0 {
		t.Error("LastLoss = 0, want the partial epoch's mean loss")
	}

	// The model stayed consistent: training resumes and completes.
	st, err = rt.FitCtx(context.Background(), "sl", 2, 8)
	if err != nil {
		t.Fatalf("resumed FitCtx: %v", err)
	}
	if st.Epochs != 2 || st.Batches != 16 {
		t.Errorf("resumed stats = %+v, want Epochs=2 Batches=16", st)
	}
}

func TestFitCtxCanceledBeforeFirstBatch(t *testing.T) {
	rt := slRuntime(t, 16)
	st, err := rt.FitCtx(newStepCtx(0), "sl", 1, 8)
	wantCanceled(t, err)
	if st.Batches != 0 || st.Epochs != 0 || st.LastLoss != 0 {
		t.Errorf("stats = %+v, want all zero", st)
	}
}

func TestFitCtxDeadlineExceeded(t *testing.T) {
	rt := slRuntime(t, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	_, err := rt.FitCtx(ctx, "sl", 1, 8)
	if !errors.Is(err, auerr.ErrCanceled) {
		t.Errorf("errors.Is(err, auerr.ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}

func TestNNRLCtxPreCancelLeavesStoreConsistent(t *testing.T) {
	rt := NewRuntime(Train, 11)
	if err := rt.Config(ModelSpec{Name: "q", Algo: QLearn, Hidden: []int{4}, Actions: 3}); err != nil {
		t.Fatalf("Config: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	// Drive one successful step so the model holds a pending (state,
	// action) pair — the state a mid-episode cancel must not corrupt.
	rt.Extract("st", 0.1, 0.2)
	if err := rt.NNRLCtx(ctx, "q", "st", 0, false, "act"); err != nil {
		t.Fatalf("NNRLCtx: %v", err)
	}

	cancel()
	rt.Extract("st", 0.3, 0.4)
	err := rt.NNRLCtx(ctx, "q", "st", 1, false, "act")
	wantCanceled(t, err)

	// The canceled call mutated nothing: the input is still bound, the
	// agent observed no transition, and the step can simply be retried.
	if in, ok := rt.DB().Get("st"); !ok || len(in) != 2 {
		t.Errorf("input binding after cancel = %v, %v; want intact", in, ok)
	}
	if st, ok := rt.RLStats("q"); !ok || st.ReplayLen != 0 {
		t.Errorf("replay after cancel = %+v, want empty", st)
	}
	if err := rt.NNRLCtx(context.Background(), "q", "st", 1, false, "act"); err != nil {
		t.Fatalf("retried NNRLCtx: %v", err)
	}
	if st, ok := rt.RLStats("q"); !ok || st.ReplayLen != 1 {
		t.Errorf("replay after retry = %+v, want one transition", st)
	}
	if _, err := rt.WriteBackActionCtx(context.Background(), "act"); err != nil {
		t.Fatalf("WriteBackActionCtx: %v", err)
	}
}

func TestNNCtxPreCancelLeavesStoreConsistent(t *testing.T) {
	rt := NewRuntime(Train, 3)
	if err := rt.Config(ModelSpec{Name: "sl", Algo: AdamOpt, Hidden: []int{4}}); err != nil {
		t.Fatalf("Config: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt.Extract("in", 1, 2)
	rt.Extract("label", 0.5)
	wantCanceled(t, rt.NNCtx(ctx, "sl", "in", "label"))
	if rt.ExampleCount("sl") != 0 {
		t.Errorf("ExampleCount = %d after canceled NNCtx, want 0", rt.ExampleCount("sl"))
	}
	if in, ok := rt.DB().Get("in"); !ok || len(in) != 2 {
		t.Errorf("input binding after cancel = %v, %v; want intact", in, ok)
	}
	if err := rt.NNCtx(context.Background(), "sl", "in", "label"); err != nil {
		t.Fatalf("retried NNCtx: %v", err)
	}
	if rt.ExampleCount("sl") != 1 {
		t.Errorf("ExampleCount = %d after retry, want 1", rt.ExampleCount("sl"))
	}
}

func TestPrimitiveCtxEntryCancellation(t *testing.T) {
	rt := NewRuntime(Train, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	wantCanceled(t, rt.ConfigCtx(ctx, ModelSpec{Name: "m", Algo: AdamOpt}))
	wantCanceled(t, rt.ExtractCtx(ctx, "x", 1))
	_, err := rt.SerializeCtx(ctx, "x")
	wantCanceled(t, err)
	_, err = rt.WriteBackCtx(ctx, "x", make([]float64, 1))
	wantCanceled(t, err)
	wantCanceled(t, rt.CheckpointCtx(ctx, nopSnapshotter{}, 0))
	wantCanceled(t, rt.RestoreCtx(ctx, nopSnapshotter{}))
	_, err = rt.PredictCtx(ctx, "m", []float64{1})
	wantCanceled(t, err)

	// Nothing leaked into the runtime state.
	if names := rt.ModelNames(); len(names) != 0 {
		t.Errorf("models after canceled ConfigCtx: %v", names)
	}
	if rt.TraceValueCount() != 0 {
		t.Errorf("TraceValueCount = %d after canceled ExtractCtx", rt.TraceValueCount())
	}
}

type nopSnapshotter struct{}

func (nopSnapshotter) Snapshot() any { return nil }
func (nopSnapshotter) Restore(any)   {}

func TestTypedErrorClasses(t *testing.T) {
	rt := NewRuntime(Train, 9)
	if err := rt.Config(ModelSpec{Name: "sl", Algo: AdamOpt, Hidden: []int{4}}); err != nil {
		t.Fatalf("Config: %v", err)
	}
	if err := rt.Config(ModelSpec{Name: "q", Algo: QLearn, Hidden: []int{4}, Actions: 2}); err != nil {
		t.Fatalf("Config: %v", err)
	}
	bg := context.Background()

	check := func(desc string, err error, sentinel error) {
		t.Helper()
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: error %v does not wrap %v", desc, err, sentinel)
		}
	}

	check("NN on unknown model", rt.NNCtx(bg, "ghost", "in", "out"), auerr.ErrUnknownModel)
	check("NN on QLearn model", rt.NNCtx(bg, "q", "in", "out"), auerr.ErrModeViolation)
	check("NNRL on AdamOpt model", rt.NNRLCtx(bg, "sl", "in", 0, false, "out"), auerr.ErrModeViolation)
	check("NN without extract", rt.NNCtx(bg, "sl", "in", "out"), auerr.ErrMissingInput)

	_, err := rt.WriteBackCtx(bg, "unbound", make([]float64, 1))
	check("write-back unbound", err, auerr.ErrMissingInput)

	_, err = rt.FitCtx(bg, "q", 1, 8)
	check("Fit on QLearn", err, auerr.ErrModeViolation)
	_, err = rt.FitCtx(bg, "sl", 1, 8)
	check("Fit without examples", err, auerr.ErrMissingInput)

	_, err = rt.PredictCtx(bg, "sl", []float64{1})
	check("Predict unmaterialized", err, auerr.ErrNotMaterialized)

	check("spec with bad activation",
		rt.ConfigCtx(bg, ModelSpec{Name: "b", Algo: AdamOpt, OutputActivation: "tanh"}),
		auerr.ErrSpecInvalid)

	ts := NewRuntime(Test, 9)
	check("TS config without saved model",
		ts.ConfigCtx(bg, ModelSpec{Name: "missing", Algo: AdamOpt}),
		auerr.ErrUnknownModel)

	ts.LoadModel("broken", []byte{1, 2, 3})
	check("TS config with corrupt saved model",
		ts.ConfigCtx(bg, ModelSpec{Name: "broken", Algo: AdamOpt}),
		auerr.ErrCorruptModel)
}

func TestSpecValidationFieldMessages(t *testing.T) {
	cases := []struct {
		desc string
		spec ModelSpec
	}{
		{"empty name", ModelSpec{}},
		{"unknown type", ModelSpec{Name: "m", Type: ModelType(9)}},
		{"unknown algo", ModelSpec{Name: "m", Algo: Algorithm(9)}},
		{"bad hidden width", ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{8, 0}}},
		{"CNN without shape", ModelSpec{Name: "m", Type: CNN, Algo: AdamOpt}},
		{"CNN non-positive dim", ModelSpec{Name: "m", Type: CNN, Algo: AdamOpt, InputShape: []int{1, 0, 8}}},
		{"CNN too small for built-in net", ModelSpec{Name: "m", Type: CNN, Algo: AdamOpt, InputShape: []int{1, 4, 4}}},
		{"QLearn without actions", ModelSpec{Name: "m", Algo: QLearn}},
		{"negative actions", ModelSpec{Name: "m", Algo: AdamOpt, Actions: -1}},
		{"bad activation", ModelSpec{Name: "m", Algo: AdamOpt, OutputActivation: "relu"}},
		{"negative LR", ModelSpec{Name: "m", Algo: AdamOpt, LR: -0.1}},
		{"gamma out of range", ModelSpec{Name: "m", Algo: QLearn, Actions: 2, Gamma: 1.5}},
		{"negative workers", ModelSpec{Name: "m", Algo: AdamOpt, Workers: -2}},
		{"negative batch size", ModelSpec{Name: "m", Algo: AdamOpt, BatchSize: -8}},
	}
	for _, c := range cases {
		rt := NewRuntime(Train, 1)
		err := rt.ConfigCtx(context.Background(), c.spec)
		if !errors.Is(err, auerr.ErrSpecInvalid) {
			t.Errorf("%s: error %v does not wrap ErrSpecInvalid", c.desc, err)
		}
	}
}

func TestGuardConvertsPanicsToErrors(t *testing.T) {
	// A panicking user Builder must surface as an ErrInvariant error from
	// the entry point that triggered materialization, not crash the host.
	rt := NewRuntime(Train, 13)
	err := rt.Config(ModelSpec{
		Name: "boom", Algo: AdamOpt,
		Builder: func(inSize, outSize int, rng *stats.RNG) *nn.Network {
			panic("user builder exploded")
		},
	})
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	err = rt.RecordExample("boom", []float64{1}, []float64{1})
	if !errors.Is(err, auerr.ErrInvariant) {
		t.Errorf("panicking Builder: err = %v, want ErrInvariant", err)
	}
}

func TestPredictCtxRejectsWrongInputSize(t *testing.T) {
	rt := slRuntime(t, 8)
	if _, err := rt.FitCtx(context.Background(), "sl", 1, 4); err != nil {
		t.Fatalf("FitCtx: %v", err)
	}
	_, err := rt.PredictCtx(context.Background(), "sl", []float64{1, 2, 3, 4})
	if !errors.Is(err, auerr.ErrSpecInvalid) {
		t.Errorf("Predict size mismatch: %v, want ErrSpecInvalid", err)
	}
	if out, err := rt.PredictCtx(context.Background(), "sl", []float64{1, 2, 3}); err != nil || len(out) != 1 {
		t.Errorf("Predict = %v, %v; want 1 output", out, err)
	}
}
