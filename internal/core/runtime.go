package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Runtime is one autonomized execution: the database store π, the model
// store θ, the checkpoint manager and the execution mode ω. A host
// program creates one Runtime and calls the primitive methods at its
// annotated program points.
//
// Error and cancellation contract: every primitive has a context-aware
// ...Ctx form returning typed errors from internal/auerr (ErrSpecInvalid,
// ErrUnknownModel, ErrModeViolation, ErrMissingInput, ErrCorruptModel,
// ErrCanceled, ErrInvariant — all matchable with errors.Is). Cancellation
// is checked at primitive entry and, inside training loops, at minibatch
// boundaries; a canceled call returns an error wrapping both
// auerr.ErrCanceled and the context's cause (so errors.Is(err,
// context.Canceled) holds) and leaves the registry and stores in a
// consistent, resumable state. Internal invariant violations in the
// kernels are recovered at these entry points and returned as errors
// wrapping auerr.ErrInvariant — the runtime never takes down its host.
// The original non-context methods remain as thin wrappers over the Ctx
// forms with context.Background().
//
// Concurrency contract (the sharding rule for parallel rollouts):
//
//   - The model registry (θ and the saved-weights store) is mutex-guarded,
//     so Config, SaveModel, LoadModel and the lookups they race with are
//     safe from any goroutine.
//   - Training primitives (NN, NNRL, Fit, RecordExample, LoadModelParams)
//     mutate per-model learning state and must be confined to a single
//     training goroutine per model, mirroring the paper's single main
//     process that transfers control at au_NN points.
//   - Inference is concurrent: Predict serializes through a per-model
//     lock, and Predictor hands out lock-free replicas (shared weights,
//     private activation caches) for parallel rollouts — valid while no
//     training step is concurrently mutating the weights.
//   - The database store π and the checkpoint manager keep the original
//     single-goroutine contract.
type Runtime struct {
	mode   Mode
	store  *db.Store
	mu     sync.RWMutex // guards models, saved and rng
	models map[string]*model
	rng    *stats.RNG
	ckpts  *ckpt.Manager

	// tel carries this runtime's metric instruments (nil while
	// telemetry is disabled — the zero-cost default; see Instrument).
	// log is the per-runtime structured logger carrying the mode.
	tel *telemetry
	log *slog.Logger

	// drift is this runtime's model-faithfulness monitor, fed by
	// Observe/ObserveCtx — the embedded twin of the serving layer's
	// drift pathway (see internal/core/observe.go).
	drift *obs.DriftMonitor

	// saved is the model registry standing in for on-disk model files:
	// Test-mode au_config loads weights from here by name (the
	// CONFIG-TEST rule's loadModel).
	saved map[string][]byte

	extractedValues int // total scalars extracted, for Table 2 trace sizes
	nnCalls         int
}

// NewRuntime creates a runtime in the given mode. The seed makes every
// stochastic choice (weight init, exploration) reproducible. When
// process-wide telemetry is on (obs.Enable / the -telemetry flag), the
// runtime is instrumented automatically; otherwise every metric site
// short-circuits on a nil instrument.
func NewRuntime(mode Mode, seed uint64) *Runtime {
	return NewRuntimeWith(mode, WithSeed(seed))
}

// Mode reports the execution mode ω.
func (rt *Runtime) Mode() Mode { return rt.mode }

// DB exposes the database store π (read access for harnesses/tests; the
// program itself should only touch π through the primitives).
func (rt *Runtime) DB() *db.Store { return rt.store }

// Checkpoints exposes the checkpoint manager, mainly for cost-model
// configuration and Table 2 statistics.
func (rt *Runtime) Checkpoints() *ckpt.Manager { return rt.ckpts }

// guard is the runtime's panic-recovery boundary: deferred at every
// exported entry point that reaches the nn/rl/tensor kernels, it
// converts internal invariant panics (and panicking user Builder
// callbacks) into returned errors wrapping auerr.ErrInvariant.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = auerr.FromPanic(r)
	}
}

// live reports nil for a usable context and the typed cancellation
// error otherwise; nil contexts are treated as context.Background().
func live(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	return nil
}

// getModel looks a model up in θ under the registry lock.
func (rt *Runtime) getModel(name string) (*model, bool) {
	rt.mu.RLock()
	m, ok := rt.models[name]
	rt.mu.RUnlock()
	return m, ok
}

// ConfigCtx is the context-aware au_config: in Train mode it registers a
// fresh model under spec.Name unless one already exists (CONFIG-TRAIN);
// in Test mode it loads previously saved weights for the name
// (CONFIG-TEST). A malformed spec returns an error wrapping
// auerr.ErrSpecInvalid with the offending field; a Test-mode name with
// no saved weights wraps auerr.ErrUnknownModel; undecodable saved bytes
// wrap auerr.ErrCorruptModel. It is safe to call from concurrent
// goroutines configuring different models.
func (rt *Runtime) ConfigCtx(ctx context.Context, spec ModelSpec) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pConfig)
	defer rt.tel.end(pConfig, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return err
	}
	if err := spec.validate(); err != nil {
		return err
	}
	rt.log.Debug("au_config", "model", spec.Name, "type", spec.Type.String(), "algo", spec.Algo.String())
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, exists := rt.models[spec.Name]; exists {
		// θ(mdName) ≢ ⊥ ⇒ θ' = θ: reconfiguring an existing model is a
		// no-op in both rules.
		return nil
	}
	m := newModel(spec, rt.rng.Split())
	if rt.mode == Test {
		data, ok := rt.saved[spec.Name]
		if !ok {
			return auerr.E(auerr.ErrUnknownModel, "core: no saved model %q to load in TS mode", spec.Name)
		}
		inSize, outSize, params, err := decodeSavedModel(data)
		if err != nil {
			return fmt.Errorf("core: model %q: %w", spec.Name, err)
		}
		m.pendingParams = params
		if err := m.materialize(inSize, outSize); err != nil {
			return err
		}
	}
	rt.models[spec.Name] = m
	return nil
}

// ExtractCtx is the context-aware au_extract: it appends the given
// values to π under name (EXTRACT rule). The paper's size argument is
// implicit in len(vals). A canceled context leaves π untouched.
func (rt *Runtime) ExtractCtx(ctx context.Context, name string, vals ...float64) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pExtract)
	defer rt.tel.end(pExtract, tm, sp, &err)
	if err := live(ctx); err != nil {
		return err
	}
	rt.store.Append(name, vals...)
	rt.extractedValues += len(vals)
	return nil
}

// SerializeCtx is the context-aware au_serialize: it concatenates the
// named lists in π into a single list bound to the concatenated name,
// returning that name (SERIALIZE rule). Models only take vector inputs,
// so multi-variable features are combined through this primitive.
//
// The runtime consumes the constituent lists, so that a game loop that
// extracts and serializes every iteration feeds the model one fresh
// state vector per au_NN call. (The formal rule in Fig. 8 leaves the
// constituents bound; internal/semantics transcribes that literally,
// while this production runtime adopts the consuming behaviour the
// paper's loop structure requires.)
func (rt *Runtime) SerializeCtx(ctx context.Context, names ...string) (_ string, err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pSerialize)
	defer rt.tel.end(pSerialize, tm, sp, &err)
	if err := live(ctx); err != nil {
		return "", err
	}
	key := rt.store.Concat(names...)
	for _, n := range names {
		rt.store.Reset(n)
	}
	return key, nil
}

// NNCtx is the context-aware au_NN for supervised models: it runs model
// mdName on the input list π(extName), binds the prediction to the
// write-back names, and resets the input list (TRAIN/TEST rules). With
// multiple write-back names the output vector is split evenly across
// them, matching the Canny usage au_NN("MinNN", "HIST", "LO", "HI").
//
// In Train mode, if π already binds every write-back name (the
// desirable outputs recorded from the oracle — the "decisions made by
// human users" of Section 3), one gradient step is taken against that
// target (the literal TRAIN rule) and the example is also recorded for
// offline fitting via Fit.
//
// Cancellation is checked once at entry — before any store mutation or
// gradient step — so a canceled call leaves π and the model exactly as
// they were.
func (rt *Runtime) NNCtx(ctx context.Context, mdName, extName string, wbNames ...string) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pNN)
	defer rt.tel.end(pNN, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return err
	}
	m, ok := rt.getModel(mdName)
	if !ok {
		return auerr.E(auerr.ErrUnknownModel, "core: au_NN on unconfigured model %q", mdName)
	}
	if m.spec.Algo != AdamOpt {
		return auerr.E(auerr.ErrModeViolation, "core: model %q is %v; use NNRL for reinforcement learning", mdName, m.spec.Algo)
	}
	if len(wbNames) == 0 {
		return auerr.E(auerr.ErrSpecInvalid, "core: au_NN needs at least one write-back name")
	}
	in, ok := rt.store.Get(extName)
	if !ok || len(in) == 0 {
		return auerr.E(auerr.ErrMissingInput, "core: au_NN input %q is empty; call au_extract first", extName)
	}
	rt.nnCalls++

	// Gather oracle targets if present (Train mode only).
	var target []float64
	haveTarget := rt.mode == Train
	if haveTarget {
		for _, wb := range wbNames {
			tv, ok := rt.store.Get(wb)
			if !ok || len(tv) == 0 {
				haveTarget = false
				break
			}
			target = append(target, tv...)
		}
	}

	if m.net == nil {
		if !haveTarget {
			return auerr.E(auerr.ErrNotMaterialized, "core: model %q has no materialized network and no targets to infer output size from", mdName)
		}
		if err := m.materialize(len(in), len(target)); err != nil {
			return err
		}
	}

	if haveTarget {
		if len(target) != m.outSize {
			return auerr.E(auerr.ErrSpecInvalid, "core: model %q targets have %d values, output size is %d",
				mdName, len(target), m.outSize)
		}
		m.slTrainStep(in, target)
		m.recordExample(in, target)
	}

	out := m.predict(in)
	if len(out)%len(wbNames) != 0 {
		return auerr.E(auerr.ErrSpecInvalid, "core: model %q output size %d not divisible across %d write-back names",
			mdName, len(out), len(wbNames))
	}
	chunk := len(out) / len(wbNames)
	for i, wb := range wbNames {
		rt.store.Put(wb, out[i*chunk:(i+1)*chunk])
	}
	rt.store.Reset(extName)
	return nil
}

// NNRLCtx is the context-aware au_NN for reinforcement-learning models,
// matching the Mario annotation au_NN("Mario", au_serialize(...),
// reward, term, "output"). The state is read from π(extName); the
// (reward, terminal) pair closes the previous step's transition; the
// chosen action index is bound to π(wbName); the input list is reset.
//
// In Train mode the action is ε-greedy and the underlying DQN performs
// replayed Q-learning updates; in Test mode the action is greedy and the
// model is untouched (TEST rule).
//
// Cancellation is checked at the step boundary — at entry, before the
// transition is observed or π is mutated — so a canceled call can be
// retried or the episode abandoned with the stores consistent.
func (rt *Runtime) NNRLCtx(ctx context.Context, mdName, extName string, reward float64, terminal bool, wbName string) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pNNRL)
	defer rt.tel.end(pNNRL, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return err
	}
	m, ok := rt.getModel(mdName)
	if !ok {
		return auerr.E(auerr.ErrUnknownModel, "core: au_NN on unconfigured model %q", mdName)
	}
	if m.spec.Algo != QLearn {
		return auerr.E(auerr.ErrModeViolation, "core: model %q is %v; use NN for supervised learning", mdName, m.spec.Algo)
	}
	state, ok := rt.store.Get(extName)
	if !ok || len(state) == 0 {
		return auerr.E(auerr.ErrMissingInput, "core: au_NN input %q is empty; call au_extract first", extName)
	}
	rt.nnCalls++
	if m.net == nil {
		if err := m.materialize(len(state), m.spec.Actions); err != nil {
			return err
		}
	}
	if rt.mode == Train && m.havePrev {
		if _, err := m.agent.ObserveCtx(ctx, rlTransition(m.prevState, m.prevAction, reward, state, terminal)); err != nil {
			return err
		}
		m.bumpWeights()
	}
	if terminal {
		// The episode ended: do not bridge a transition across restore.
		m.havePrev = false
	}
	action := m.agent.Act(state, rt.mode == Test)
	if !terminal {
		m.prevState = state
		m.prevAction = action
		m.havePrev = true
	}
	rt.store.Put(wbName, []float64{float64(action)})
	rt.store.Reset(extName)
	return nil
}

// WriteBackCtx is the context-aware au_write_back: it copies up to
// len(dst) values from π(name) into the program variable dst
// (WRITE-BACK rule), returning the number copied. A missing binding
// wraps auerr.ErrMissingInput: write-back without a preceding au_NN
// indicates a mis-annotated program.
func (rt *Runtime) WriteBackCtx(ctx context.Context, name string, dst []float64) (_ int, err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pWriteBack)
	defer rt.tel.end(pWriteBack, tm, sp, &err)
	if err := live(ctx); err != nil {
		return 0, err
	}
	vals, ok := rt.store.Get(name)
	if !ok {
		return 0, auerr.E(auerr.ErrMissingInput, "core: au_write_back of unbound name %q", name)
	}
	n := copy(dst, vals)
	return n, nil
}

// WriteBackActionCtx is the discrete-action convenience over
// WriteBackCtx: it returns π(name)[0] rounded to an int, for annotations
// like au_write_back("output", 5, actionKey).
func (rt *Runtime) WriteBackActionCtx(ctx context.Context, name string) (int, error) {
	var v [1]float64
	n, err := rt.WriteBackCtx(ctx, name, v[:])
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, auerr.E(auerr.ErrMissingInput, "core: au_write_back of empty binding %q", name)
	}
	return int(v[0] + 0.5), nil
}

// CheckpointCtx is the context-aware au_checkpoint: it snapshots
// ⟨σ, π⟩ — the host's program state (via its Snapshotter) and the
// database store — leaving model state θ out, per the CHECKPOINT rule.
// progBytes is the host's accounting of its state footprint for Table 2.
func (rt *Runtime) CheckpointCtx(ctx context.Context, prog ckpt.Snapshotter, progBytes int) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pCheckpoint)
	defer rt.tel.end(pCheckpoint, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return err
	}
	rt.ckpts.Checkpoint(prog, rt.store, progBytes)
	return nil
}

// RestoreCtx is the context-aware au_restore: it rolls ⟨σ, π⟩ back to
// the latest checkpoint (RESTORE rule). Model state θ is preserved so
// learning accumulates across rollbacks.
func (rt *Runtime) RestoreCtx(ctx context.Context, prog ckpt.Snapshotter) (err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pRestore)
	defer rt.tel.end(pRestore, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return err
	}
	if err := rt.ckpts.Restore(prog, rt.store); err != nil {
		return err
	}
	// A restore ends the current trajectory: no transition may bridge
	// the rollback.
	rt.mu.RLock()
	for _, m := range rt.models {
		m.havePrev = false
	}
	rt.mu.RUnlock()
	return nil
}

// FitCtx trains a supervised model offline on every example recorded
// during Train-mode au_NN calls, for the given number of epochs.
// Cancellation is checked before every minibatch: a canceled context
// stops training at that boundary and returns the partial-progress
// FitStats alongside an error wrapping auerr.ErrCanceled — completed
// optimizer steps are kept (the model remains consistent and training
// can resume with another FitCtx call), never discarded.
func (rt *Runtime) FitCtx(ctx context.Context, mdName string, epochs, batchSize int) (st FitStats, err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pFit)
	defer rt.tel.end(pFit, tm, sp, &err)
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return FitStats{}, auerr.E(auerr.ErrUnknownModel, "core: Fit of unconfigured model %q", mdName)
	}
	st, err = m.fitCtx(ctx, epochs, batchSize, rt.tel)
	rt.log.Debug("fit", "model", mdName, "epochs", st.Epochs, "batches", st.Batches,
		"loss", st.LastLoss, "steps_per_sec", st.StepsPerSec, "dur", st.Duration, "err", err)
	return st, err
}

// RecordExample adds a labeled training example directly (host-driven
// dataset construction, used when the oracle labels are computed outside
// the annotated control flow).
func (rt *Runtime) RecordExample(mdName string, in, target []float64) (err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return auerr.E(auerr.ErrUnknownModel, "core: RecordExample on unconfigured model %q", mdName)
	}
	// materialize validates sizes against an already-built network.
	if err := m.materialize(len(in), len(target)); err != nil {
		return err
	}
	m.recordExample(in, target)
	return nil
}

// ExampleCount reports the recorded SL dataset size for a model.
func (rt *Runtime) ExampleCount(mdName string) int {
	if m, ok := rt.getModel(mdName); ok {
		return len(m.slInputs)
	}
	return 0
}

// SaveModel serializes a model's weights (with its inferred sizes) into
// the runtime's registry and returns the bytes, emulating the on-disk
// model that a TS-mode execution loads.
func (rt *Runtime) SaveModel(mdName string) (data []byte, err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, auerr.E(auerr.ErrUnknownModel, "core: SaveModel of unconfigured model %q", mdName)
	}
	if m.net == nil {
		return nil, auerr.E(auerr.ErrNotMaterialized, "core: model %q was never materialized", mdName)
	}
	params, err := m.net.MarshalParams()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(m.inSize)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(m.outSize)); err != nil {
		return nil, err
	}
	buf.Write(params)
	data = buf.Bytes()
	rt.mu.Lock()
	rt.saved[mdName] = data
	rt.mu.Unlock()
	return data, nil
}

// LoadModel installs serialized weights into the registry so that a
// Test-mode Config(spec) can load them (the loadModel statement).
func (rt *Runtime) LoadModel(mdName string, data []byte) {
	rt.mu.Lock()
	rt.saved[mdName] = append([]byte(nil), data...)
	rt.mu.Unlock()
}

// LoadModelParams restores previously saved weights into an
// already-materialized model in place. Training harnesses use it to
// keep the best-scoring snapshot (the counterpart of the paper's
// stop-at-best-evaluation protocol). Undecodable bytes wrap
// auerr.ErrCorruptModel.
func (rt *Runtime) LoadModelParams(mdName string, data []byte) (err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return auerr.E(auerr.ErrUnknownModel, "core: LoadModelParams on unconfigured model %q", mdName)
	}
	if m.net == nil {
		return auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	_, _, params, err := decodeSavedModel(data)
	if err != nil {
		return err
	}
	if err := m.net.UnmarshalParams(params); err != nil {
		return err
	}
	m.bumpWeights()
	return nil
}

// CompileModel eagerly builds (or refreshes) the model's compiled
// serving plan — weights packed into the active kernel layout, scratch
// geometry pre-sized — so the first prediction pays no packing cost.
// Predictor and PredictorInto closures then run on instances of that
// plan. The serving layer calls this at snapshot install, publishing
// only already-packed engines on hot reload. A model whose architecture
// cannot be compiled returns an error wrapping auerr.ErrSpecInvalid;
// predictors for it fall back to network replicas.
func (rt *Runtime) CompileModel(mdName string) (err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return auerr.E(auerr.ErrUnknownModel, "core: CompileModel on unconfigured model %q", mdName)
	}
	if m.net == nil {
		return auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	if p, _ := m.compiledPlan(); p == nil {
		return auerr.E(auerr.ErrSpecInvalid, "core: model %q cannot be compiled for serving", mdName)
	}
	return nil
}

// SavedModelSizes decodes the input/output sizes from a SaveModel image
// without building a network — the serving layer validates request
// shapes against these before a bad input ever reaches a batch.
func SavedModelSizes(data []byte) (inSize, outSize int, err error) {
	in, out, _, err := decodeSavedModel(data)
	return in, out, err
}

func decodeSavedModel(data []byte) (inSize, outSize int, params []byte, err error) {
	if len(data) < 8 {
		return 0, 0, nil, auerr.E(auerr.ErrCorruptModel, "saved model too short (%d bytes)", len(data))
	}
	in := binary.LittleEndian.Uint32(data[0:4])
	out := binary.LittleEndian.Uint32(data[4:8])
	return int(in), int(out), data[8:], nil
}

// ModelSizeBytes reports the serialized size of a model's parameters
// (Table 2 "Model Size").
func (rt *Runtime) ModelSizeBytes(mdName string) (int, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return 0, auerr.E(auerr.ErrUnknownModel, "core: unknown model %q", mdName)
	}
	if m.net == nil {
		return 0, auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	return m.net.SizeBytes(), nil
}

// ModelParamCount reports the scalar parameter count of a model.
func (rt *Runtime) ModelParamCount(mdName string) (int, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return 0, auerr.E(auerr.ErrUnknownModel, "core: unknown model %q", mdName)
	}
	if m.net == nil {
		return 0, auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	return m.net.ParamCount(), nil
}

// TraceValueCount reports the total number of scalars extracted so far
// (8 bytes each gives the Table 2 "Trace Size").
func (rt *Runtime) TraceValueCount() int { return rt.extractedValues }

// NNCallCount reports how many au_NN invocations have executed.
func (rt *Runtime) NNCallCount() int { return rt.nnCalls }

// ModelNames lists configured models in sorted order.
func (rt *Runtime) ModelNames() []string {
	rt.mu.RLock()
	out := make([]string, 0, len(rt.models))
	for name := range rt.models {
		out = append(out, name)
	}
	rt.mu.RUnlock()
	sort.Strings(out)
	return out
}

// PredictCtx runs a supervised model directly on a feature vector
// without touching π — the fast path used by benchmark harnesses when
// measuring pure inference cost. A wrong-sized input wraps
// auerr.ErrSpecInvalid instead of tripping a kernel invariant.
func (rt *Runtime) PredictCtx(ctx context.Context, mdName string, in []float64) (out []float64, err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pPredict)
	defer rt.tel.end(pPredict, tm, sp, &err)
	defer guard(&err)
	if err := live(ctx); err != nil {
		return nil, err
	}
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, auerr.E(auerr.ErrUnknownModel, "core: unknown model %q", mdName)
	}
	if m.net == nil {
		return nil, auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	if len(in) != m.inSize {
		return nil, auerr.E(auerr.ErrSpecInvalid, "core: model %q expects %d inputs, got %d", mdName, m.inSize, len(in))
	}
	return m.predict(in), nil
}

// Predictor returns a standalone inference function for the model,
// backed by a private network replica (shared weights, private
// activation caches). Distinct Predictor closures may run concurrently
// with each other and with Predict, as long as no training step is
// mutating the model's weights — the fan-out primitive for parallel
// rollouts.
func (rt *Runtime) Predictor(mdName string) (fn func(in []float64) []float64, err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, auerr.E(auerr.ErrUnknownModel, "core: unknown model %q", mdName)
	}
	if m.net == nil {
		return nil, auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	return m.predictor(), nil
}

// PredictorInto is the destination-passing Predictor: the returned
// function writes the prediction into out when it has the right length
// (allocating a fresh slice otherwise) and returns the filled slice. Same
// concurrency contract as Predictor; with a correctly sized out the
// steady-state call performs no heap allocation, which is what the
// serving engine's hot path relies on.
func (rt *Runtime) PredictorInto(mdName string) (fn func(in, out []float64) []float64, err error) {
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, auerr.E(auerr.ErrUnknownModel, "core: unknown model %q", mdName)
	}
	if m.net == nil {
		return nil, auerr.E(auerr.ErrNotMaterialized, "core: model %q not materialized", mdName)
	}
	return m.predictorInto(), nil
}
