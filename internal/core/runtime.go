package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Runtime is one autonomized execution: the database store π, the model
// store θ, the checkpoint manager and the execution mode ω. A host
// program creates one Runtime and calls the primitive methods at its
// annotated program points.
//
// Concurrency contract (the sharding rule for parallel rollouts):
//
//   - The model registry (θ and the saved-weights store) is mutex-guarded,
//     so Config, SaveModel, LoadModel and the lookups they race with are
//     safe from any goroutine.
//   - Training primitives (NN, NNRL, Fit, RecordExample, LoadModelParams)
//     mutate per-model learning state and must be confined to a single
//     training goroutine per model, mirroring the paper's single main
//     process that transfers control at au_NN points.
//   - Inference is concurrent: Predict serializes through a per-model
//     lock, and Predictor hands out lock-free replicas (shared weights,
//     private activation caches) for parallel rollouts — valid while no
//     training step is concurrently mutating the weights.
//   - The database store π and the checkpoint manager keep the original
//     single-goroutine contract.
type Runtime struct {
	mode   Mode
	store  *db.Store
	mu     sync.RWMutex // guards models, saved and rng
	models map[string]*model
	rng    *stats.RNG
	ckpts  *ckpt.Manager

	// saved is the model registry standing in for on-disk model files:
	// Test-mode au_config loads weights from here by name (the
	// CONFIG-TEST rule's loadModel).
	saved map[string][]byte

	extractedValues int // total scalars extracted, for Table 2 trace sizes
	nnCalls         int
}

// NewRuntime creates a runtime in the given mode. The seed makes every
// stochastic choice (weight init, exploration) reproducible.
func NewRuntime(mode Mode, seed uint64) *Runtime {
	return &Runtime{
		mode:   mode,
		store:  db.New(),
		models: make(map[string]*model),
		rng:    stats.NewRNG(seed),
		ckpts:  ckpt.NewManager(),
		saved:  make(map[string][]byte),
	}
}

// Mode reports the execution mode ω.
func (rt *Runtime) Mode() Mode { return rt.mode }

// DB exposes the database store π (read access for harnesses/tests; the
// program itself should only touch π through the primitives).
func (rt *Runtime) DB() *db.Store { return rt.store }

// Checkpoints exposes the checkpoint manager, mainly for cost-model
// configuration and Table 2 statistics.
func (rt *Runtime) Checkpoints() *ckpt.Manager { return rt.ckpts }

// getModel looks a model up in θ under the registry lock.
func (rt *Runtime) getModel(name string) (*model, bool) {
	rt.mu.RLock()
	m, ok := rt.models[name]
	rt.mu.RUnlock()
	return m, ok
}

// Config is au_config: in Train mode it registers a fresh model under
// spec.Name unless one already exists (CONFIG-TRAIN); in Test mode it
// loads previously saved weights for the name (CONFIG-TEST). It is safe
// to call from concurrent goroutines configuring different models.
func (rt *Runtime) Config(spec ModelSpec) error {
	if err := spec.validate(); err != nil {
		return err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, exists := rt.models[spec.Name]; exists {
		// θ(mdName) ≢ ⊥ ⇒ θ' = θ: reconfiguring an existing model is a
		// no-op in both rules.
		return nil
	}
	m := newModel(spec, rt.rng.Split())
	if rt.mode == Test {
		data, ok := rt.saved[spec.Name]
		if !ok {
			return fmt.Errorf("core: no saved model %q to load in TS mode", spec.Name)
		}
		inSize, outSize, params, err := decodeSavedModel(data)
		if err != nil {
			return fmt.Errorf("core: model %q: %w", spec.Name, err)
		}
		m.pendingParams = params
		if err := m.materialize(inSize, outSize); err != nil {
			return err
		}
	}
	rt.models[spec.Name] = m
	return nil
}

// Extract is au_extract: it appends the given values to π under name
// (EXTRACT rule). The paper's size argument is implicit in len(vals).
func (rt *Runtime) Extract(name string, vals ...float64) {
	rt.store.Append(name, vals...)
	rt.extractedValues += len(vals)
}

// Serialize is au_serialize: it concatenates the named lists in π into a
// single list bound to the concatenated name, returning that name
// (SERIALIZE rule). Models only take vector inputs, so multi-variable
// features are combined through this primitive.
//
// The runtime consumes the constituent lists, so that a game loop that
// extracts and serializes every iteration feeds the model one fresh
// state vector per au_NN call. (The formal rule in Fig. 8 leaves the
// constituents bound; internal/semantics transcribes that literally,
// while this production runtime adopts the consuming behaviour the
// paper's loop structure requires.)
func (rt *Runtime) Serialize(names ...string) string {
	key := rt.store.Concat(names...)
	for _, n := range names {
		rt.store.Reset(n)
	}
	return key
}

// NN is au_NN for supervised models: it runs model mdName on the input
// list π(extName), binds the prediction to the write-back names, and
// resets the input list (TRAIN/TEST rules). With multiple write-back
// names the output vector is split evenly across them, matching the
// Canny usage au_NN("MinNN", "HIST", "LO", "HI").
//
// In Train mode, if π already binds every write-back name (the
// desirable outputs recorded from the oracle — the "decisions made by
// human users" of Section 3), one gradient step is taken against that
// target (the literal TRAIN rule) and the example is also recorded for
// offline fitting via Fit.
func (rt *Runtime) NN(mdName, extName string, wbNames ...string) error {
	m, ok := rt.getModel(mdName)
	if !ok {
		return fmt.Errorf("core: au_NN on unconfigured model %q", mdName)
	}
	if m.spec.Algo != AdamOpt {
		return fmt.Errorf("core: model %q is %v; use NNRL for reinforcement learning", mdName, m.spec.Algo)
	}
	if len(wbNames) == 0 {
		return fmt.Errorf("core: au_NN needs at least one write-back name")
	}
	in, ok := rt.store.Get(extName)
	if !ok || len(in) == 0 {
		return fmt.Errorf("core: au_NN input %q is empty; call au_extract first", extName)
	}
	rt.nnCalls++

	// Gather oracle targets if present (Train mode only).
	var target []float64
	haveTarget := rt.mode == Train
	if haveTarget {
		for _, wb := range wbNames {
			tv, ok := rt.store.Get(wb)
			if !ok || len(tv) == 0 {
				haveTarget = false
				break
			}
			target = append(target, tv...)
		}
	}

	if m.net == nil {
		if !haveTarget {
			return fmt.Errorf("core: model %q has no materialized network and no targets to infer output size from", mdName)
		}
		if err := m.materialize(len(in), len(target)); err != nil {
			return err
		}
	}

	if haveTarget {
		if len(target) != m.outSize {
			return fmt.Errorf("core: model %q targets have %d values, output size is %d",
				mdName, len(target), m.outSize)
		}
		m.slTrainStep(in, target)
		m.recordExample(in, target)
	}

	out := m.predict(in)
	if len(out)%len(wbNames) != 0 {
		return fmt.Errorf("core: model %q output size %d not divisible across %d write-back names",
			mdName, len(out), len(wbNames))
	}
	chunk := len(out) / len(wbNames)
	for i, wb := range wbNames {
		rt.store.Put(wb, out[i*chunk:(i+1)*chunk])
	}
	rt.store.Reset(extName)
	return nil
}

// NNRL is au_NN for reinforcement-learning models, matching the Mario
// annotation au_NN("Mario", au_serialize(...), reward, term, "output").
// The state is read from π(extName); the (reward, terminal) pair closes
// the previous step's transition; the chosen action index is bound to
// π(wbName); the input list is reset.
//
// In Train mode the action is ε-greedy and the underlying DQN performs
// replayed Q-learning updates; in Test mode the action is greedy and the
// model is untouched (TEST rule).
func (rt *Runtime) NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error {
	m, ok := rt.getModel(mdName)
	if !ok {
		return fmt.Errorf("core: au_NN on unconfigured model %q", mdName)
	}
	if m.spec.Algo != QLearn {
		return fmt.Errorf("core: model %q is %v; use NN for supervised learning", mdName, m.spec.Algo)
	}
	state, ok := rt.store.Get(extName)
	if !ok || len(state) == 0 {
		return fmt.Errorf("core: au_NN input %q is empty; call au_extract first", extName)
	}
	rt.nnCalls++
	if m.net == nil {
		if err := m.materialize(len(state), m.spec.Actions); err != nil {
			return err
		}
	}
	if rt.mode == Train && m.havePrev {
		m.agent.Observe(rlTransition(m.prevState, m.prevAction, reward, state, terminal))
	}
	if terminal {
		// The episode ended: do not bridge a transition across restore.
		m.havePrev = false
	}
	action := m.agent.Act(state, rt.mode == Test)
	if !terminal {
		m.prevState = state
		m.prevAction = action
		m.havePrev = true
	}
	rt.store.Put(wbName, []float64{float64(action)})
	rt.store.Reset(extName)
	return nil
}

// WriteBack is au_write_back: it copies up to len(dst) values from
// π(name) into the program variable dst (WRITE-BACK rule), returning the
// number copied. A missing binding is an error: write-back without a
// preceding au_NN indicates a mis-annotated program.
func (rt *Runtime) WriteBack(name string, dst []float64) (int, error) {
	vals, ok := rt.store.Get(name)
	if !ok {
		return 0, fmt.Errorf("core: au_write_back of unbound name %q", name)
	}
	n := copy(dst, vals)
	return n, nil
}

// WriteBackAction is the discrete-action convenience over WriteBack: it
// returns π(name)[0] rounded to an int, for annotations like
// au_write_back("output", 5, actionKey).
func (rt *Runtime) WriteBackAction(name string) (int, error) {
	var v [1]float64
	n, err := rt.WriteBack(name, v[:])
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("core: au_write_back of empty binding %q", name)
	}
	return int(v[0] + 0.5), nil
}

// Checkpoint is au_checkpoint: it snapshots ⟨σ, π⟩ — the host's program
// state (via its Snapshotter) and the database store — leaving model
// state θ out, per the CHECKPOINT rule. progBytes is the host's
// accounting of its state footprint for Table 2.
func (rt *Runtime) Checkpoint(prog ckpt.Snapshotter, progBytes int) {
	rt.ckpts.Checkpoint(prog, rt.store, progBytes)
}

// Restore is au_restore: it rolls ⟨σ, π⟩ back to the latest checkpoint
// (RESTORE rule). Model state θ is preserved so learning accumulates
// across rollbacks.
func (rt *Runtime) Restore(prog ckpt.Snapshotter) error {
	if err := rt.ckpts.Restore(prog, rt.store); err != nil {
		return err
	}
	// A restore ends the current trajectory: no transition may bridge
	// the rollback.
	rt.mu.RLock()
	for _, m := range rt.models {
		m.havePrev = false
	}
	rt.mu.RUnlock()
	return nil
}

// Fit trains a supervised model offline on every example recorded during
// Train-mode au_NN calls, for the given number of epochs, returning the
// final mean loss. This is the paper's offline SL training phase.
func (rt *Runtime) Fit(mdName string, epochs, batchSize int) (float64, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return 0, fmt.Errorf("core: Fit of unconfigured model %q", mdName)
	}
	return m.fit(epochs, batchSize)
}

// RecordExample adds a labeled training example directly (host-driven
// dataset construction, used when the oracle labels are computed outside
// the annotated control flow).
func (rt *Runtime) RecordExample(mdName string, in, target []float64) error {
	m, ok := rt.getModel(mdName)
	if !ok {
		return fmt.Errorf("core: RecordExample on unconfigured model %q", mdName)
	}
	// materialize validates sizes against an already-built network.
	if err := m.materialize(len(in), len(target)); err != nil {
		return err
	}
	m.recordExample(in, target)
	return nil
}

// ExampleCount reports the recorded SL dataset size for a model.
func (rt *Runtime) ExampleCount(mdName string) int {
	if m, ok := rt.getModel(mdName); ok {
		return len(m.slInputs)
	}
	return 0
}

// SaveModel serializes a model's weights (with its inferred sizes) into
// the runtime's registry and returns the bytes, emulating the on-disk
// model that a TS-mode execution loads.
func (rt *Runtime) SaveModel(mdName string) ([]byte, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, fmt.Errorf("core: SaveModel of unconfigured model %q", mdName)
	}
	if m.net == nil {
		return nil, fmt.Errorf("core: model %q was never materialized", mdName)
	}
	params, err := m.net.MarshalParams()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, uint32(m.inSize)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(m.outSize)); err != nil {
		return nil, err
	}
	buf.Write(params)
	data := buf.Bytes()
	rt.mu.Lock()
	rt.saved[mdName] = data
	rt.mu.Unlock()
	return data, nil
}

// LoadModel installs serialized weights into the registry so that a
// Test-mode Config(spec) can load them (the loadModel statement).
func (rt *Runtime) LoadModel(mdName string, data []byte) {
	rt.mu.Lock()
	rt.saved[mdName] = append([]byte(nil), data...)
	rt.mu.Unlock()
}

// LoadModelParams restores previously saved weights into an
// already-materialized model in place. Training harnesses use it to
// keep the best-scoring snapshot (the counterpart of the paper's
// stop-at-best-evaluation protocol).
func (rt *Runtime) LoadModelParams(mdName string, data []byte) error {
	m, ok := rt.getModel(mdName)
	if !ok {
		return fmt.Errorf("core: LoadModelParams on unconfigured model %q", mdName)
	}
	if m.net == nil {
		return fmt.Errorf("core: model %q not materialized", mdName)
	}
	_, _, params, err := decodeSavedModel(data)
	if err != nil {
		return err
	}
	return m.net.UnmarshalParams(params)
}

func decodeSavedModel(data []byte) (inSize, outSize int, params []byte, err error) {
	if len(data) < 8 {
		return 0, 0, nil, fmt.Errorf("saved model too short (%d bytes)", len(data))
	}
	in := binary.LittleEndian.Uint32(data[0:4])
	out := binary.LittleEndian.Uint32(data[4:8])
	return int(in), int(out), data[8:], nil
}

// ModelSizeBytes reports the serialized size of a model's parameters
// (Table 2 "Model Size").
func (rt *Runtime) ModelSizeBytes(mdName string) (int, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return 0, fmt.Errorf("core: unknown model %q", mdName)
	}
	if m.net == nil {
		return 0, fmt.Errorf("core: model %q not materialized", mdName)
	}
	return m.net.SizeBytes(), nil
}

// ModelParamCount reports the scalar parameter count of a model.
func (rt *Runtime) ModelParamCount(mdName string) (int, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return 0, fmt.Errorf("core: unknown model %q", mdName)
	}
	if m.net == nil {
		return 0, fmt.Errorf("core: model %q not materialized", mdName)
	}
	return m.net.ParamCount(), nil
}

// TraceValueCount reports the total number of scalars extracted so far
// (8 bytes each gives the Table 2 "Trace Size").
func (rt *Runtime) TraceValueCount() int { return rt.extractedValues }

// NNCallCount reports how many au_NN invocations have executed.
func (rt *Runtime) NNCallCount() int { return rt.nnCalls }

// ModelNames lists configured models in sorted order.
func (rt *Runtime) ModelNames() []string {
	rt.mu.RLock()
	out := make([]string, 0, len(rt.models))
	for name := range rt.models {
		out = append(out, name)
	}
	rt.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Predict runs a supervised model directly on a feature vector without
// touching π — the fast path used by benchmark harnesses when measuring
// pure inference cost.
func (rt *Runtime) Predict(mdName string, in []float64) ([]float64, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, fmt.Errorf("core: unknown model %q", mdName)
	}
	if m.net == nil {
		return nil, fmt.Errorf("core: model %q not materialized", mdName)
	}
	return m.predict(in), nil
}

// Predictor returns a standalone inference function for the model,
// backed by a private network replica (shared weights, private
// activation caches). Distinct Predictor closures may run concurrently
// with each other and with Predict, as long as no training step is
// mutating the model's weights — the fan-out primitive for parallel
// rollouts.
func (rt *Runtime) Predictor(mdName string) (func(in []float64) []float64, error) {
	m, ok := rt.getModel(mdName)
	if !ok {
		return nil, fmt.Errorf("core: unknown model %q", mdName)
	}
	if m.net == nil {
		return nil, fmt.Errorf("core: model %q not materialized", mdName)
	}
	return m.predictor(), nil
}
