package core

import (
	"context"
	"fmt"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/ckpt"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// FitResumeOptions controls checkpointed offline training. The zero
// value trains from scratch without checkpointing — plain FitCtx.
type FitResumeOptions struct {
	// Resume, when non-nil, restarts training from a checkpoint taken by
	// an earlier (interrupted) fit of the same model with the same
	// epochs/batchSize. The resumed run's final parameters are
	// bit-identical to an uninterrupted run: the checkpoint carries the
	// network parameters, the optimizer moments, and the RNG state from
	// the start of the in-progress epoch, so the resumed loop re-draws
	// the identical shuffle and skips the batches already applied.
	Resume *ckpt.FitCheckpoint
	// CheckpointEvery takes a checkpoint every N completed optimizer
	// steps (counted across the whole logical run, so resumed runs keep
	// the original cadence). 0 disables checkpointing.
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint; it typically journals the
	// encoded form into a durable queue. A returned error aborts the fit
	// (the training state stays consistent at the boundary).
	OnCheckpoint func(*ckpt.FitCheckpoint) error
}

// FitResumeCtx is FitCtx with minibatch-boundary checkpointing and crash
// resume. See FitResumeOptions for the resume contract.
func (rt *Runtime) FitResumeCtx(ctx context.Context, mdName string, epochs, batchSize int, opt FitResumeOptions) (st FitStats, err error) {
	ctx, tm, sp := rt.tel.begin(ctx, pFit)
	defer rt.tel.end(pFit, tm, sp, &err)
	defer guard(&err)
	m, ok := rt.getModel(mdName)
	if !ok {
		return FitStats{}, auerr.E(auerr.ErrUnknownModel, "core: Fit of unconfigured model %q", mdName)
	}
	st, err = m.fitResumeCtx(ctx, epochs, batchSize, rt.tel, opt)
	rt.log.Debug("fit", "model", mdName, "epochs", st.Epochs, "batches", st.Batches,
		"loss", st.LastLoss, "steps_per_sec", st.StepsPerSec, "resumed", opt.Resume != nil, "err", err)
	return st, err
}

// fitResumeCtx is the full offline-training loop: fitCtx plus the
// checkpoint/resume machinery. The minibatch is the atomic unit —
// cancellation, checkpoints and resume points all sit at batch
// boundaries, so the parameter trajectory of interrupted+resumed
// training is exactly that of an uninterrupted run.
func (m *model) fitResumeCtx(ctx context.Context, epochs, batchSize int, tel *telemetry, opt FitResumeOptions) (st FitStats, err error) {
	begun := time.Now()
	defer func() {
		st.Duration = time.Since(begun)
		if secs := st.Duration.Seconds(); secs > 0 && st.Batches > 0 {
			st.StepsPerSec = float64(st.Batches) / secs
		}
	}()
	if m.spec.Algo != AdamOpt {
		return st, auerr.E(auerr.ErrModeViolation, "core: Fit only applies to AdamOpt models, %q is %v", m.spec.Name, m.spec.Algo)
	}
	if len(m.slInputs) == 0 {
		return st, auerr.E(auerr.ErrMissingInput, "core: model %q has no recorded examples", m.spec.Name)
	}
	if m.net == nil {
		if err := m.materialize(len(m.slInputs[0]), len(m.slTargets[0])); err != nil {
			return st, err
		}
	}
	if batchSize <= 0 {
		batchSize = 16
	}

	startEpoch, startBatch, resumeLoss := 0, 0, 0.0
	if ck := opt.Resume; ck != nil {
		if ck.Model != m.spec.Name {
			return st, auerr.E(auerr.ErrSpecInvalid, "core: checkpoint is for model %q, not %q", ck.Model, m.spec.Name)
		}
		if ck.Epochs != epochs || ck.BatchSize != batchSize {
			return st, auerr.E(auerr.ErrSpecInvalid,
				"core: checkpoint was taken at epochs=%d batch=%d, resume requested epochs=%d batch=%d",
				ck.Epochs, ck.BatchSize, epochs, batchSize)
		}
		if err := m.net.UnmarshalParams(ck.Params); err != nil {
			return st, fmt.Errorf("core: restoring checkpoint params for %q: %w", m.spec.Name, err)
		}
		m.bumpWeights()
		if err := m.net.UnmarshalOptState(ck.OptState); err != nil {
			return st, fmt.Errorf("core: restoring optimizer state for %q: %w", m.spec.Name, err)
		}
		m.rng.SetState(ck.RNGState)
		startEpoch, startBatch, resumeLoss = ck.Epoch, ck.Batch, ck.LossSum
		st.Epochs, st.Batches = ck.Epoch, ck.Batches
	}

	toTensor := func(v []float64, shape []int) *tensor.Tensor {
		if len(shape) == 3 {
			return tensor.FromSlice(v, shape...)
		}
		return tensor.FromSlice(v, len(v))
	}
	for e := startEpoch; e < epochs; e++ {
		// Captured before the shuffle draw: a checkpoint taken anywhere in
		// this epoch restores to here and re-draws the same permutation.
		rngState := m.rng.State()
		perm := m.rng.Perm(len(m.slInputs))
		total, batches := 0.0, 0
		skip := 0
		if e == startEpoch && opt.Resume != nil {
			skip, total, batches = startBatch, resumeLoss, startBatch
		}
		for bi, start := 0, 0; start < len(perm); bi, start = bi+1, start+batchSize {
			if bi < skip {
				continue
			}
			if err := live(ctx); err != nil {
				if batches > 0 {
					st.LastLoss = total / float64(batches)
					tel.fitLoss(m.spec.Name, st.LastLoss)
				}
				return st, err
			}
			end := start + batchSize
			if end > len(perm) {
				end = len(perm)
			}
			var ins, outs []*tensor.Tensor
			for _, idx := range perm[start:end] {
				var shape []int
				if m.spec.Type == CNN {
					shape = m.spec.InputShape
				}
				ins = append(ins, toTensor(m.slInputs[idx], shape))
				outs = append(outs, toTensor(m.slTargets[idx], nil))
			}
			var stepTm obs.Timer
			if tel != nil {
				stepTm = tel.fitStep.Timer()
			}
			total += m.net.TrainBatch(ins, outs)
			m.bumpWeights()
			stepTm.Stop()
			batches++
			st.Batches++
			if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil && st.Batches%opt.CheckpointEvery == 0 {
				ck, err := m.buildCheckpoint(epochs, batchSize, e, batches, st.Batches, total, rngState)
				if err != nil {
					return st, err
				}
				if err := opt.OnCheckpoint(ck); err != nil {
					return st, fmt.Errorf("core: checkpoint callback: %w", err)
				}
			}
		}
		st.LastLoss = total / float64(batches)
		st.Epochs++
		if tel != nil {
			tel.fitEpochs.Inc()
			tel.fitLoss(m.spec.Name, st.LastLoss)
		}
	}
	return st, nil
}

// buildCheckpoint snapshots the training state at a minibatch boundary.
func (m *model) buildCheckpoint(epochs, batchSize, epoch, batch, batches int, lossSum float64, rngState uint64) (*ckpt.FitCheckpoint, error) {
	params, err := m.net.MarshalParams()
	if err != nil {
		return nil, fmt.Errorf("core: checkpointing params for %q: %w", m.spec.Name, err)
	}
	optState, err := m.net.MarshalOptState()
	if err != nil {
		return nil, fmt.Errorf("core: checkpointing optimizer state for %q: %w", m.spec.Name, err)
	}
	return &ckpt.FitCheckpoint{
		Model:     m.spec.Name,
		Epochs:    epochs,
		BatchSize: batchSize,
		Epoch:     epoch,
		Batch:     batch,
		Batches:   batches,
		LossSum:   lossSum,
		RNGState:  rngState,
		Params:    params,
		OptState:  optState,
	}, nil
}
