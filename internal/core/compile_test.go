package core

import (
	"context"
	"math"
	"testing"
)

// fitSmallModel configures and trains a small supervised model so the
// network is materialized and has non-trivial weights.
func fitSmallModel(t *testing.T, rt *Runtime, name string) {
	t.Helper()
	if err := rt.Config(ModelSpec{Name: name, Algo: AdamOpt, Hidden: []int{6}, LR: 0.01}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		x := []float64{float64(i) / 32, float64(31-i) / 32}
		if err := rt.RecordExample(name, x, []float64{x[0] - x[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Fit(name, 3, 8); err != nil {
		t.Fatal(err)
	}
}

// TestCompileModelEager covers the explicit compile entry point: errors
// for unknown and unmaterialized models, success after materialize.
func TestCompileModelEager(t *testing.T) {
	rt := NewRuntime(Train, 1)
	if err := rt.CompileModel("nope"); err == nil {
		t.Error("CompileModel on unknown model succeeded")
	}
	if err := rt.Config(ModelSpec{Name: "m", Algo: AdamOpt, Hidden: []int{4}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.CompileModel("m"); err == nil {
		t.Error("CompileModel before materialize succeeded")
	}
	fitSmallModel(t, rt, "m2")
	if err := rt.CompileModel("m2"); err != nil {
		t.Errorf("CompileModel on materialized model: %v", err)
	}
}

// TestCompiledPredictorBitIdentical checks that Predictor closures —
// now backed by compiled plan instances — return bit-identical results
// to the lock-guarded shared-network path.
func TestCompiledPredictorBitIdentical(t *testing.T) {
	rt := NewRuntime(Train, 7)
	fitSmallModel(t, rt, "m")
	pred, err := rt.Predictor("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		in := []float64{float64(i) * 0.13, 1 - float64(i)*0.09}
		want, err := rt.PredictCtx(context.Background(), "m", in)
		if err != nil {
			t.Fatal(err)
		}
		got := pred(in)
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("input %d: compiled predictor %v, want %v", i, got, want)
			}
		}
	}
}

// TestPredictorSeesPublishedWeights pins the recompile-on-publish
// contract: a predictor taken before training observes the new weights
// after a weight publication, because its per-call version check
// triggers a plan recompile.
func TestPredictorSeesPublishedWeights(t *testing.T) {
	rt := NewRuntime(Train, 11)
	fitSmallModel(t, rt, "m")
	pred, err := rt.Predictor("m")
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.4, 0.7}
	before := append([]float64(nil), pred(in)...)

	// Publish new weights through another round of offline training.
	if _, err := rt.Fit("m", 3, 8); err != nil {
		t.Fatal(err)
	}
	want, err := rt.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	got := pred(in)
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("stale predictor after publish: %v, want %v", got, want)
		}
	}
	same := true
	for j := range before {
		if before[j] != got[j] {
			same = false
		}
	}
	if same {
		t.Fatal("training left the prediction unchanged; test cannot distinguish staleness")
	}

	// PredictorInto must track publications the same way.
	predInto, err := rt.PredictorInto("m")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(want))
	if _, err := rt.Fit("m", 1, 8); err != nil {
		t.Fatal(err)
	}
	want2, err := rt.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	got2 := predInto(in, out)
	for j := range want2 {
		if math.Float64bits(got2[j]) != math.Float64bits(want2[j]) {
			t.Fatalf("stale PredictorInto after publish: %v, want %v", got2, want2)
		}
	}
}
