package core

import (
	"context"
	"log/slog"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// primitive enumerates the instrumented runtime entry points; the names
// are the closed vocabulary of the "primitive" label on the core metric
// families (DESIGN.md §5c).
type primitive int

const (
	pConfig primitive = iota
	pExtract
	pSerialize
	pNN
	pNNRL
	pWriteBack
	pCheckpoint
	pRestore
	pFit
	pPredict
	nPrimitives
)

var primName = [nPrimitives]string{
	"config", "extract", "serialize", "nn", "nnrl",
	"write_back", "checkpoint", "restore", "fit", "predict",
}

// telemetry holds one Runtime's pre-registered instruments, looked up
// once at construction so the per-call cost is an array index and an
// atomic add. A nil *telemetry (telemetry disabled at NewRuntime time)
// short-circuits every method before any allocation or clock read —
// the zero-cost-when-disabled contract benchmarked in BENCH_obs.json.
type telemetry struct {
	reg   *obs.Registry
	calls [nPrimitives]*obs.Counter
	lat   [nPrimitives]*obs.Histogram
	latQ  [nPrimitives]*obs.Summary

	fitEpochs *obs.Counter
	fitStep   *obs.Histogram
}

// newTelemetry builds the instrument set against reg, or returns nil
// when reg is nil (disabled).
func newTelemetry(reg *obs.Registry) *telemetry {
	if reg == nil {
		return nil
	}
	t := &telemetry{reg: reg}
	for p := primitive(0); p < nPrimitives; p++ {
		lbl := obs.Labels{"primitive": primName[p]}
		t.calls[p] = reg.Counter("autonomizer_core_primitive_calls_total",
			"Invocations of each runtime primitive.", lbl)
		t.lat[p] = reg.Histogram("autonomizer_core_primitive_duration_seconds",
			"Latency of each runtime primitive.", nil, lbl)
		t.latQ[p] = reg.Summary("autonomizer_core_primitive_latency_seconds",
			"Sliding-window latency quantiles (p50/p95/p99/p999) of each runtime primitive.", lbl)
	}
	t.fitEpochs = reg.Counter("autonomizer_nn_fit_epochs_total",
		"Completed offline-training epochs across all models.", nil)
	t.fitStep = reg.Histogram("autonomizer_nn_fit_step_duration_seconds",
		"Latency of one minibatch optimizer step inside Fit.", nil, nil)
	return t
}

// begin opens one primitive call: it bumps the call counter, starts the
// latency timer, and opens a span (nil when tracing is off). The
// returned context carries the span for child attribution.
func (t *telemetry) begin(ctx context.Context, p primitive) (context.Context, obs.Timer, *obs.Span) {
	if t == nil {
		return ctx, obs.Timer{}, nil
	}
	t.calls[p].Inc()
	ctx, sp := obs.StartSpan(ctx, "au_"+primName[p])
	return ctx, t.lat[p].Timer(), sp
}

// end closes one primitive call, recording latency, the span, and — on
// failure — the error counter keyed by the auerr class. It reads *err
// so it must be deferred before guard (deferred functions run LIFO:
// guard converts a panic into the error first, then end observes it).
func (t *telemetry) end(p primitive, tm obs.Timer, sp *obs.Span, err *error) {
	if t == nil {
		return
	}
	tm.StopAlso(t.latQ[p])
	sp.End(*err)
	if *err != nil {
		t.reg.Counter("autonomizer_core_primitive_errors_total",
			"Primitive failures keyed by auerr error class.",
			obs.Labels{"primitive": primName[p], "class": auerr.Class(*err)}).Inc()
	}
}

// fitLoss publishes one model's latest epoch-mean loss; called at most
// once per epoch, so the registry lookup is off the hot path. Model
// names come from the host's au_config calls — a closed, small set.
func (t *telemetry) fitLoss(model string, loss float64) {
	if t == nil {
		return
	}
	t.reg.Gauge("autonomizer_nn_fit_last_loss",
		"Mean loss of the most recent Fit epoch, per model.",
		obs.Labels{"model": model}).Set(loss)
}

// Instrument (re)binds the runtime's telemetry to reg: per-primitive
// call counters, auerr-classed error counters and latency histograms,
// plus store-size gauges. NewRuntime does this automatically against
// obs.Default(), so hosts only call Instrument to attach a private
// registry (tests, embedded collectors) or to instrument a runtime
// created before obs.Enable. A nil reg detaches (disables) telemetry.
// Not safe to call concurrently with running primitives.
func (rt *Runtime) Instrument(reg *obs.Registry) *Runtime {
	rt.tel = newTelemetry(reg)
	if reg != nil {
		// Last-registered runtime wins these process-level gauges; the
		// replace semantics of GaugeFunc release the previous runtime's
		// closure, so superseded runtimes stay collectible.
		store, models := rt.store, rt
		reg.GaugeFunc("autonomizer_db_store_bytes",
			"In-memory footprint of the database store pi.", nil,
			func() float64 { return float64(store.SizeBytes()) })
		reg.GaugeFunc("autonomizer_db_store_names",
			"Number of bound names in the database store pi.", nil,
			func() float64 { return float64(len(store.Names())) })
		reg.GaugeFunc("autonomizer_core_models",
			"Number of configured models in the model store theta.", nil,
			func() float64 { return float64(len(models.ModelNames())) })
	}
	return rt
}

// Logger returns this runtime's structured logger: a child of
// obs.Logger carrying the execution mode. Model-scoped children add a
// "model" attribute at the call sites that have one.
func (rt *Runtime) Logger() *slog.Logger { return rt.log }
