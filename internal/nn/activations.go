package nn

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"

	"github.com/autonomizer/autonomizer/internal/tensor"
)

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask []bool // which inputs were positive, for the backward pass
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	if cap(r.mask) < in.Size() {
		r.mask = make([]bool, in.Size())
	}
	r.mask = r.mask[:in.Size()]
	for i, x := range out.Data() {
		if x > 0 {
			r.mask[i] = true
		} else {
			r.mask[i] = false
			out.Data()[i] = 0
		}
	}
	return out
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Size() {
		auerr.Failf("nn: ReLU Backward shape mismatch or called before Forward")
	}
	out := gradOut.Clone()
	for i := range out.Data() {
		if !r.mask[i] {
			out.Data()[i] = 0
		}
	}
	return out
}

// Params implements Layer (ReLU has none).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (r *ReLU) ZeroGrads() {}

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Sigmoid is the logistic activation 1/(1+e^-x), used for outputs
// constrained to (0,1) such as normalized parameter predictions.
type Sigmoid struct {
	lastOut *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function elementwise.
func (s *Sigmoid) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone().Apply(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) })
	s.lastOut = out
	return out
}

// Backward multiplies by the sigmoid derivative y(1-y).
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if s.lastOut == nil || s.lastOut.Size() != gradOut.Size() {
		auerr.Failf("nn: Sigmoid Backward shape mismatch or called before Forward")
	}
	out := gradOut.Clone()
	y := s.lastOut.Data()
	for i := range out.Data() {
		out.Data()[i] *= y[i] * (1 - y[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (s *Sigmoid) ZeroGrads() {}

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone().Apply(math.Tanh)
	t.lastOut = out
	return out
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil || t.lastOut.Size() != gradOut.Size() {
		auerr.Failf("nn: Tanh Backward shape mismatch or called before Forward")
	}
	out := gradOut.Clone()
	y := t.lastOut.Data()
	for i := range out.Data() {
		out.Data()[i] *= 1 - y[i]*y[i]
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (t *Tanh) ZeroGrads() {}

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Flatten reshapes any input to a rank-1 vector; it sits between
// convolutional and dense stages in the CNN models.
type Flatten struct {
	lastShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens the input to a vector view.
func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], in.Shape()...)
	return in.Reshape(in.Size())
}

// Backward restores the gradient to the pre-flatten shape.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		auerr.Failf("nn: Flatten Backward before Forward")
	}
	return gradOut.Reshape(f.lastShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (f *Flatten) ZeroGrads() {}

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Softmax converts logits to a probability distribution. Its backward
// pass assumes it is paired with a cross-entropy loss whose gradient is
// already (p - onehot); in that arrangement Backward is the identity.
type Softmax struct{}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Forward computes the numerically stable softmax.
func (s *Softmax) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in.Clone()
	max := math.Inf(-1)
	for _, x := range out.Data() {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for i, x := range out.Data() {
		e := math.Exp(x - max)
		out.Data()[i] = e
		sum += e
	}
	if sum == 0 {
		auerr.Failf("nn: softmax sum underflowed to zero")
	}
	out.ScaleInPlace(1 / sum)
	return out
}

// Backward passes the gradient through unchanged; see the type comment.
func (s *Softmax) Backward(gradOut *tensor.Tensor) *tensor.Tensor { return gradOut }

// Params implements Layer.
func (s *Softmax) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (s *Softmax) ZeroGrads() {}

// Name implements Layer.
func (s *Softmax) Name() string { return "softmax" }
