package nn

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"

	"github.com/autonomizer/autonomizer/internal/tensor"
)

// The activation layers own their output and gradient buffers and recycle
// them across calls (tensor.Reuse), so the steady-state forward/backward
// path allocates nothing. Returned tensors are valid until the next call
// on the same layer; callers needing longer lifetimes must Clone.

// ReLU is the rectified-linear activation max(0, x).
type ReLU struct {
	mask    []bool // which inputs were positive, for the backward pass
	out     *tensor.Tensor
	gradBuf *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	r.out = tensor.Reuse(r.out, in.Shape()...)
	out := r.out
	if cap(r.mask) < in.Size() {
		r.mask = make([]bool, in.Size())
	}
	r.mask = r.mask[:in.Size()]
	od := out.Data()
	for i, x := range in.Data() {
		if x > 0 {
			r.mask[i] = true
			od[i] = x
		} else {
			r.mask[i] = false
			od[i] = 0
		}
	}
	return out
}

// Backward zeroes the gradient where the input was non-positive.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Size() {
		auerr.Failf("nn: ReLU Backward shape mismatch or called before Forward")
	}
	r.gradBuf = tensor.Reuse(r.gradBuf, gradOut.Shape()...)
	out := r.gradBuf
	od := out.Data()
	for i, g := range gradOut.Data() {
		if r.mask[i] {
			od[i] = g
		} else {
			od[i] = 0
		}
	}
	return out
}

// Params implements Layer (ReLU has none).
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (r *ReLU) ZeroGrads() {}

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Sigmoid is the logistic activation 1/(1+e^-x), used for outputs
// constrained to (0,1) such as normalized parameter predictions.
type Sigmoid struct {
	lastOut *tensor.Tensor
	gradBuf *tensor.Tensor
}

// NewSigmoid returns a sigmoid activation layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward applies the logistic function elementwise.
func (s *Sigmoid) Forward(in *tensor.Tensor) *tensor.Tensor {
	s.lastOut = tensor.Reuse(s.lastOut, in.Shape()...)
	out := s.lastOut
	od := out.Data()
	for i, x := range in.Data() {
		od[i] = 1 / (1 + math.Exp(-x))
	}
	return out
}

// Backward multiplies by the sigmoid derivative y(1-y).
func (s *Sigmoid) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if s.lastOut == nil || s.lastOut.Size() != gradOut.Size() {
		auerr.Failf("nn: Sigmoid Backward shape mismatch or called before Forward")
	}
	s.gradBuf = tensor.Reuse(s.gradBuf, gradOut.Shape()...)
	out := s.gradBuf
	od := out.Data()
	y := s.lastOut.Data()
	for i, g := range gradOut.Data() {
		od[i] = g * y[i] * (1 - y[i])
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (s *Sigmoid) ZeroGrads() {}

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	lastOut *tensor.Tensor
	gradBuf *tensor.Tensor
}

// NewTanh returns a tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(in *tensor.Tensor) *tensor.Tensor {
	t.lastOut = tensor.Reuse(t.lastOut, in.Shape()...)
	out := t.lastOut
	od := out.Data()
	for i, x := range in.Data() {
		od[i] = math.Tanh(x)
	}
	return out
}

// Backward multiplies by 1 - y².
func (t *Tanh) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil || t.lastOut.Size() != gradOut.Size() {
		auerr.Failf("nn: Tanh Backward shape mismatch or called before Forward")
	}
	t.gradBuf = tensor.Reuse(t.gradBuf, gradOut.Shape()...)
	out := t.gradBuf
	od := out.Data()
	y := t.lastOut.Data()
	for i, g := range gradOut.Data() {
		od[i] = g * (1 - y[i]*y[i])
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (t *Tanh) ZeroGrads() {}

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// Flatten reshapes any input to a rank-1 vector; it sits between
// convolutional and dense stages in the CNN models.
type Flatten struct {
	lastShape []int
	fwdView   *tensor.Tensor
	bwdView   *tensor.Tensor
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens the input to a vector view.
func (f *Flatten) Forward(in *tensor.Tensor) *tensor.Tensor {
	f.lastShape = append(f.lastShape[:0], in.Shape()...)
	f.fwdView = tensor.ViewOf(f.fwdView, in.Data(), in.Size())
	return f.fwdView
}

// Backward restores the gradient to the pre-flatten shape.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		auerr.Failf("nn: Flatten Backward before Forward")
	}
	f.bwdView = tensor.View(f.bwdView, gradOut, f.lastShape...)
	return f.bwdView
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (f *Flatten) ZeroGrads() {}

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Softmax converts logits to a probability distribution. Its backward
// pass assumes it is paired with a cross-entropy loss whose gradient is
// already (p - onehot); in that arrangement Backward is the identity.
type Softmax struct {
	out *tensor.Tensor
}

// NewSoftmax returns a softmax output layer.
func NewSoftmax() *Softmax { return &Softmax{} }

// Forward computes the numerically stable softmax.
func (s *Softmax) Forward(in *tensor.Tensor) *tensor.Tensor {
	s.out = tensor.Reuse(s.out, in.Shape()...)
	out := s.out
	max := math.Inf(-1)
	for _, x := range in.Data() {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	od := out.Data()
	for i, x := range in.Data() {
		e := math.Exp(x - max)
		od[i] = e
		sum += e
	}
	if sum == 0 {
		auerr.Failf("nn: softmax sum underflowed to zero")
	}
	out.ScaleInPlace(1 / sum)
	return out
}

// Backward passes the gradient through unchanged; see the type comment.
func (s *Softmax) Backward(gradOut *tensor.Tensor) *tensor.Tensor { return gradOut }

// Params implements Layer.
func (s *Softmax) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (s *Softmax) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (s *Softmax) ZeroGrads() {}

// Name implements Layer.
func (s *Softmax) Name() string { return "softmax" }
