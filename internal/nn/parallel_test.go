package nn

import (
	"bytes"
	"testing"

	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// trainRun builds a fresh network from seed, trains it over the given
// dataset for a few epochs of mini-batches, and returns the serialized
// final weights plus the prediction on the first example.
func trainRun(t *testing.T, build func(rng *stats.RNG) *Network, ins, targets []*tensor.Tensor, batch int) ([]byte, []float64) {
	t.Helper()
	net := build(stats.NewRNG(42))
	net.UseAdam(1e-3)
	for epoch := 0; epoch < 3; epoch++ {
		for start := 0; start < len(ins); start += batch {
			end := start + batch
			if end > len(ins) {
				end = len(ins)
			}
			net.TrainBatch(ins[start:end], targets[start:end])
		}
	}
	params, err := net.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	pred := net.Forward(ins[0])
	return params, append([]float64(nil), pred.Data()...)
}

// makeDataset builds a deterministic dataset of n examples with the given
// input shape and output size.
func makeDataset(n, outSize int, shape ...int) (ins, targets []*tensor.Tensor) {
	rng := stats.NewRNG(7)
	for i := 0; i < n; i++ {
		in := tensor.New(shape...)
		for j := range in.Data() {
			in.Data()[j] = rng.Range(-1, 1)
		}
		tg := tensor.New(outSize)
		for j := range tg.Data() {
			tg.Data()[j] = rng.Range(-1, 1)
		}
		ins = append(ins, in)
		targets = append(targets, tg)
	}
	return ins, targets
}

// TestParallelTrainingDeterminism is the parallel layer's core guarantee:
// training with workers ∈ {1, 2, 8} produces weights and predictions
// bit-identical to the sequential path, on both a DNN and a CNN.
func TestParallelTrainingDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		build func(rng *stats.RNG) *Network
		ins   []*tensor.Tensor
		tgt   []*tensor.Tensor
	}{
		{name: "DNN"},
		{name: "CNN"},
	}
	cases[0].build = func(rng *stats.RNG) *Network { return NewDNN(6, []int{16, 8}, 3, rng) }
	cases[0].ins, cases[0].tgt = makeDataset(12, 3, 6)
	cases[1].build = func(rng *stats.RNG) *Network { return NewDeepMindCNN(1, 16, 16, 3, rng) }
	cases[1].ins, cases[1].tgt = makeDataset(6, 3, 1, 16, 16)

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prev := parallel.SetWorkers(1)
			defer parallel.SetWorkers(prev)
			wantParams, wantPred := trainRun(t, tc.build, tc.ins, tc.tgt, 4)
			for _, w := range []int{1, 2, 8} {
				parallel.SetWorkers(w)
				gotParams, gotPred := trainRun(t, tc.build, tc.ins, tc.tgt, 4)
				if !bytes.Equal(wantParams, gotParams) {
					t.Errorf("workers=%d: weights differ from sequential training", w)
				}
				for i := range wantPred {
					if wantPred[i] != gotPred[i] {
						t.Fatalf("workers=%d: prediction[%d] = %v, sequential %v", w, i, gotPred[i], wantPred[i])
					}
				}
			}
		})
	}
}

// TestReplicaSharesParams checks the replica contract: parameters are the
// same tensors, gradients are not.
func TestReplicaSharesParams(t *testing.T) {
	net := NewDNN(4, []int{8}, 2, stats.NewRNG(1))
	rep, ok := net.Replica()
	if !ok {
		t.Fatal("DNN should be replicable")
	}
	np, rp := net.Params(), rep.Params()
	if len(np) != len(rp) {
		t.Fatalf("param count %d vs %d", len(np), len(rp))
	}
	for i := range np {
		if np[i] != rp[i] {
			t.Errorf("param %d not shared", i)
		}
	}
	ng, rg := net.Grads(), rep.Grads()
	for i := range ng {
		if ng[i] == rg[i] {
			t.Errorf("grad %d shared; must be private", i)
		}
	}
}

// TestDropoutFallsBackSequential checks a non-replicable layer degrades
// to the sequential path instead of failing.
func TestDropoutFallsBackSequential(t *testing.T) {
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	rng := stats.NewRNG(3)
	net := NewNetwork(
		NewDense(4, 8, rng.Split()), NewReLU(),
		NewDropout(0.2, rng.Split()),
		NewDense(8, 2, rng.Split()),
	)
	if _, ok := net.Replica(); ok {
		t.Fatal("dropout network must not be replicable")
	}
	net.UseAdam(1e-3)
	ins, targets := makeDataset(8, 2, 4)
	if loss := net.TrainBatch(ins, targets); loss <= 0 {
		t.Errorf("fallback training loss = %v", loss)
	}
}

// TestSetMaxWorkersCap checks the per-network cap keeps results identical
// while bounding the replica set.
func TestSetMaxWorkersCap(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)
	ins, targets := makeDataset(12, 3, 6)
	build := func(rng *stats.RNG) *Network { return NewDNN(6, []int{16, 8}, 3, rng) }

	capped := build(stats.NewRNG(42))
	capped.SetMaxWorkers(2)
	capped.UseAdam(1e-3)
	capped.TrainBatch(ins, targets)
	if len(capped.replicas) > 2 {
		t.Errorf("cap 2 built %d replicas", len(capped.replicas))
	}

	free := build(stats.NewRNG(42))
	free.UseAdam(1e-3)
	free.TrainBatch(ins, targets)
	a, _ := capped.MarshalParams()
	b, _ := free.MarshalParams()
	if !bytes.Equal(a, b) {
		t.Error("capped and uncapped training disagree")
	}
}
