package nn

import (
	"context"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Network is an ordered stack of layers trained with a loss and an
// optimizer. It corresponds to one named model instance θ(modelName) in
// the paper's semantics: au_config builds one, au_NN runs (and in
// training mode updates) it.
type Network struct {
	layers []Layer
	loss   Loss
	opt    Optimizer

	// maxWorkers caps this network's data-parallel training width
	// (0 = use the global parallel.Workers setting unchanged).
	maxWorkers int

	// Data-parallel scratch state, reused across TrainBatch calls: one
	// replica per worker plus per-example gradient/loss buffers that make
	// the reduction order independent of scheduling (see
	// trainBatchParallel).
	replicas  []*Network
	itemGrads [][]*tensor.Tensor
	itemLoss  []float64

	// Cached views and scratch (DESIGN.md §5e): the parameter/gradient
	// lists are fixed at construction and built once; gradScratch holds the
	// loss gradient for GradIntoLoss losses; inScratch holds the copied-in
	// Predict input; workerFns are the TrainBatch worker closures, rebuilt
	// only when the width changes, reading the batch through parIns /
	// parTargets so no per-call closures are allocated.
	params, grads []*tensor.Tensor
	paramsBuilt   bool
	gradScratch   *tensor.Tensor
	inScratch     *tensor.Tensor
	workerFns     []func()
	parIns        []*tensor.Tensor
	parTargets    []*tensor.Tensor
}

// NewNetwork assembles a network from layers. Attach a loss/optimizer
// with SetLoss/SetOptimizer (or use the Train* helpers' requirements).
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: layers, loss: MSE{}}
}

// SetLoss selects the training loss (default MSE).
func (n *Network) SetLoss(l Loss) {
	n.loss = l
	n.replicas = nil  // replicas capture the loss; rebuild lazily
	n.workerFns = nil // worker closures capture the replicas
}

// SetMaxWorkers caps the data-parallel width used by TrainBatch for this
// network; 0 restores the default (the global parallel.Workers setting).
// Results are bit-identical at any width, so this is purely a resource
// knob.
func (n *Network) SetMaxWorkers(w int) {
	if w < 0 {
		w = 0
	}
	n.maxWorkers = w
}

// SetOptimizer binds an optimizer; convenience constructors below build
// one over the network's own parameters.
func (n *Network) SetOptimizer(o Optimizer) { n.opt = o }

// UseAdam binds a fresh Adam optimizer with the given learning rate.
func (n *Network) UseAdam(lr float64) { n.opt = NewAdam(n.Params(), lr) }

// UseSGD binds a fresh SGD optimizer.
func (n *Network) UseSGD(lr, momentum float64) { n.opt = NewSGD(n.Params(), lr, momentum) }

// Layers returns the layer stack (do not mutate).
func (n *Network) Layers() []Layer { return n.layers }

// Params returns every trainable parameter tensor in layer order. The
// layer stack is fixed at construction, so the list is built once and the
// same slice is returned thereafter; callers must not mutate it.
func (n *Network) Params() []*tensor.Tensor {
	n.buildParamLists()
	return n.params
}

// Grads returns every gradient tensor aligned with Params. Like Params,
// the returned slice is cached; callers must not mutate it.
func (n *Network) Grads() []*tensor.Tensor {
	n.buildParamLists()
	return n.grads
}

func (n *Network) buildParamLists() {
	if n.paramsBuilt {
		return
	}
	for _, l := range n.layers {
		n.params = append(n.params, l.Params()...)
		n.grads = append(n.grads, l.Grads()...)
	}
	n.paramsBuilt = true
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.layers {
		l.ZeroGrads()
	}
}

// ParamCount returns the total number of scalar parameters; the basis of
// Table 2's model-size column (8 bytes per float64 plus header, see
// SizeBytes).
func (n *Network) ParamCount() int {
	c := 0
	for _, l := range n.layers {
		c += ParamCount(l)
	}
	return c
}

// Forward runs the input through every layer.
func (n *Network) Forward(in *tensor.Tensor) *tensor.Tensor {
	out := in
	for _, l := range n.layers {
		out = l.Forward(out)
	}
	return out
}

// Predict is Forward over a plain []float64 vector, reshaped to shape if
// given (needed for CNN inputs). It returns a fresh slice.
func (n *Network) Predict(in []float64, shape ...int) []float64 {
	return n.PredictInto(nil, in, shape...)
}

// PredictInto is the destination-passing Predict: the output is written
// into dst when it has the right length, otherwise a fresh slice is
// allocated; either way the filled slice is returned. The input is copied
// into network-owned scratch, so neither in nor dst is aliased by any
// layer cache and the steady state (correctly sized dst) allocates
// nothing.
func (n *Network) PredictInto(dst, in []float64, shape ...int) []float64 {
	if len(shape) > 0 {
		n.inScratch = tensor.Reuse(n.inScratch, shape...)
	} else {
		n.inScratch = tensor.Reuse(n.inScratch, len(in))
	}
	if n.inScratch.Size() != len(in) {
		auerr.Failf("nn: Predict shape %v needs %d elements, got %d", shape, n.inScratch.Size(), len(in))
	}
	copy(n.inScratch.Data(), in)
	out := n.Forward(n.inScratch)
	if len(dst) != out.Size() {
		dst = make([]float64, out.Size())
	}
	copy(dst, out.Data())
	return dst
}

// Backward pushes a loss gradient through the stack, accumulating
// parameter gradients.
func (n *Network) Backward(gradOut *tensor.Tensor) {
	g := gradOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// TrainStep performs forward, loss, backward and one optimizer step on a
// single example, returning the loss. The optimizer must be bound.
func (n *Network) TrainStep(in, target *tensor.Tensor) float64 {
	if n.opt == nil {
		auerr.Failf("nn: TrainStep without an optimizer; call UseAdam/UseSGD first")
	}
	n.ZeroGrads()
	pred := n.Forward(in)
	lv := n.loss.Loss(pred, target)
	n.Backward(n.lossGrad(pred, target))
	n.opt.Step(n.Grads())
	return lv
}

// lossGrad computes the loss gradient, through network-owned scratch when
// the loss supports destination passing (all built-in losses do), so the
// steady-state training path allocates nothing here.
func (n *Network) lossGrad(pred, target *tensor.Tensor) *tensor.Tensor {
	if gi, ok := n.loss.(GradIntoLoss); ok {
		n.gradScratch = tensor.Reuse(n.gradScratch, pred.Shape()...)
		return gi.GradInto(n.gradScratch, pred, target)
	}
	return n.loss.Grad(pred, target)
}

// TrainBatchCtx is the context-aware TrainBatch: a mini-batch is the
// atomic unit of training (cancelling inside one would discard its
// work), so cancellation is checked once, before any gradient is
// computed. A canceled context returns an error wrapping
// auerr.ErrCanceled and the context's cause, with the network weights
// untouched.
func (n *Network) TrainBatchCtx(ctx context.Context, ins, targets []*tensor.Tensor) (float64, error) {
	if ctx != nil && ctx.Err() != nil {
		return 0, auerr.Canceled(ctx)
	}
	return n.TrainBatch(ins, targets), nil
}

// TrainBatch accumulates gradients over a mini-batch before one optimizer
// step, returning the mean loss. Inputs and targets must align.
//
// When the parallel width exceeds 1 and every layer is Replicable, the
// examples are distributed over worker replicas; gradients and losses are
// reduced in example order, so the updated weights are bit-identical to
// the sequential path at any worker count.
func (n *Network) TrainBatch(ins, targets []*tensor.Tensor) float64 {
	if len(ins) != len(targets) {
		auerr.Failf("nn: TrainBatch input/target count mismatch")
	}
	if len(ins) == 0 {
		return 0
	}
	if n.opt == nil {
		auerr.Failf("nn: TrainBatch without an optimizer; call UseAdam/UseSGD first")
	}
	total := 0.0
	if w := n.batchWorkers(len(ins)); w > 1 && n.forwardBackwardParallel(ins, targets, w) {
		// Ordered reduction: ((g₀+g₁)+g₂)+… matches the sequential
		// accumulation exactly, element by element.
		n.ZeroGrads()
		grads := n.Grads()
		for i := range ins {
			total += n.itemLoss[i]
			for j, g := range grads {
				g.AddInPlace(n.itemGrads[i][j])
			}
		}
	} else {
		n.ZeroGrads()
		for i, in := range ins {
			pred := n.Forward(in)
			total += n.loss.Loss(pred, targets[i])
			n.Backward(n.lossGrad(pred, targets[i]))
		}
	}
	// Average the accumulated gradients over the batch.
	inv := 1 / float64(len(ins))
	for _, g := range n.Grads() {
		g.ScaleInPlace(inv)
	}
	ClipGradients(n.Grads(), 10)
	n.opt.Step(n.Grads())
	return total / float64(len(ins))
}

// batchWorkers resolves the data-parallel width for a batch of b
// examples: the global setting, capped by SetMaxWorkers and by b.
func (n *Network) batchWorkers(b int) int {
	w := parallel.Workers()
	if n.maxWorkers > 0 && w > n.maxWorkers {
		w = n.maxWorkers
	}
	if w > b {
		w = b
	}
	return w
}

// DataParallelWidth reports the data-parallel width TrainBatch would use
// for a batch of b examples. External training loops (the DQN replay
// update) use it to shard their own batches consistently with this
// network's SetMaxWorkers cap.
func (n *Network) DataParallelWidth(b int) int { return n.batchWorkers(b) }

// forwardBackwardParallel runs forward/loss/backward for every example on
// w worker replicas, leaving per-example losses in n.itemLoss and
// per-example gradients in n.itemGrads. It returns false (leaving no
// state behind) when the network cannot be replicated, in which case the
// caller falls back to the sequential path.
//
// Examples are assigned to replicas round-robin, but since each example's
// gradient lands in its own slot the assignment never influences the
// result — only the ordered reduction in TrainBatch does.
func (n *Network) forwardBackwardParallel(ins, targets []*tensor.Tensor, w int) bool {
	if !n.ensureReplicas(w) {
		return false
	}
	if cap(n.itemLoss) < len(ins) {
		n.itemLoss = make([]float64, len(ins))
	}
	n.itemLoss = n.itemLoss[:len(ins)]
	for len(n.itemGrads) < len(ins) {
		var gs []*tensor.Tensor
		for _, g := range n.Grads() {
			gs = append(gs, tensor.New(g.Shape()...))
		}
		n.itemGrads = append(n.itemGrads, gs)
	}
	// The worker closures are cached per width and read the batch through
	// n.parIns / n.parTargets, so a steady-state TrainBatch rebuilds
	// nothing here.
	n.parIns, n.parTargets = ins, targets
	if len(n.workerFns) != w {
		n.workerFns = make([]func(), w)
		for wk := 0; wk < w; wk++ {
			wk := wk
			width := w
			rep := n.replicas[wk]
			n.workerFns[wk] = func() {
				for i := wk; i < len(n.parIns); i += width {
					rep.ZeroGrads()
					pred := rep.Forward(n.parIns[i])
					n.itemLoss[i] = rep.loss.Loss(pred, n.parTargets[i])
					rep.Backward(rep.lossGrad(pred, n.parTargets[i]))
					for j, g := range rep.Grads() {
						copy(n.itemGrads[i][j].Data(), g.Data())
					}
				}
			}
		}
	}
	parallel.Run(n.workerFns...)
	n.parIns, n.parTargets = nil, nil // do not retain the caller's batch
	return true
}

// ensureReplicas grows the cached replica set to at least w replicas,
// reporting whether replication is possible.
func (n *Network) ensureReplicas(w int) bool {
	for len(n.replicas) < w {
		rep, ok := n.Replica()
		if !ok {
			return false
		}
		n.replicas = append(n.replicas, rep)
	}
	return true
}

// CopyParamsFrom copies all parameters from src (used to sync DQN target
// networks). The architectures must match exactly.
func (n *Network) CopyParamsFrom(src *Network) {
	dst := n.Params()
	sp := src.Params()
	if len(dst) != len(sp) {
		auerr.Failf("nn: CopyParamsFrom architecture mismatch")
	}
	for i := range dst {
		if dst[i].Size() != sp[i].Size() {
			auerr.Failf("nn: CopyParamsFrom tensor %d size mismatch", i)
		}
		copy(dst[i].Data(), sp[i].Data())
	}
}

// String summarizes the architecture, e.g.
// "dense(4->256) -> relu -> dense(256->64) -> relu -> dense(64->5)".
func (n *Network) String() string {
	s := ""
	for i, l := range n.layers {
		if i > 0 {
			s += " -> "
		}
		s += l.Name()
	}
	return s
}

// NewDNN builds the paper's default fully connected model: input →
// hidden₁ → … → hiddenₖ → output with ReLU between stages. hidden may be
// empty for a linear model. This is what au_config(…, DNN, …, layers,
// n₁, …) constructs; the input and output sizes are, as in the paper,
// computed from the data fed to the network rather than annotated.
func NewDNN(inSize int, hidden []int, outSize int, rng *stats.RNG) *Network {
	var layers []Layer
	prev := inSize
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng.Split()), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, outSize, rng.Split()))
	return NewNetwork(layers...)
}

// NewDeepMindCNN builds the raw-pixel architecture the paper compares
// against (Section 2): stacked frames in, three convolution layers each
// followed by max pooling, then two hidden layers of 256 and 64 neurons.
// h and w are the (preprocessed) frame dimensions; frames is the history
// depth (4 in the paper); actions is the output size.
func NewDeepMindCNN(frames, h, w, actions int, rng *stats.RNG) *Network {
	c1 := NewConv2D(frames, 8, 5, 5, 2, 2, rng.Split())
	h1 := tensor.ConvOutputSize(h, 5, 2, 2) / 2
	w1 := tensor.ConvOutputSize(w, 5, 2, 2) / 2
	c2 := NewConv2D(8, 16, 3, 3, 1, 1, rng.Split())
	h2 := tensor.ConvOutputSize(h1, 3, 1, 1) / 2
	w2 := tensor.ConvOutputSize(w1, 3, 1, 1) / 2
	c3 := NewConv2D(16, 16, 3, 3, 1, 1, rng.Split())
	h3 := tensor.ConvOutputSize(h2, 3, 1, 1) / 2
	w3 := tensor.ConvOutputSize(w2, 3, 1, 1) / 2
	flat := 16 * h3 * w3
	if flat <= 0 {
		auerr.Failf("nn: DeepMind CNN input %dx%d too small", h, w)
	}
	return NewNetwork(
		c1, NewReLU(), NewMaxPool2D(2),
		c2, NewReLU(), NewMaxPool2D(2),
		c3, NewReLU(), NewMaxPool2D(2),
		NewFlatten(),
		NewDense(flat, 256, rng.Split()), NewReLU(),
		NewDense(256, 64, rng.Split()), NewReLU(),
		NewDense(64, actions, rng.Split()),
	)
}
