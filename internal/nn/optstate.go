package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Optimizer-state serialization (versioned, little-endian):
//
//	magic "AUOP" | uint32 version | uint16 nameLen | name
//	adam: uint64 t | uint32 tensorCount | per tensor: uint32 size | size×float64 m
//	      followed by the v tensors in the same layout
//	sgd:  uint8 hasVelocity | uint32 tensorCount | per tensor: uint32 size | size×float64
//
// Parameters alone are not enough to resume a fit bit-identically: Adam
// carries first/second moment estimates and a bias-correction step
// counter whose trajectory depends on every update applied so far. The
// durable training queue persists this state at minibatch boundaries so
// a fit killed mid-epoch resumes with the exact optimizer the crashed
// process held.

const (
	optStateMagic   = "AUOP"
	optStateVersion = 1
)

// StatefulOptimizer is implemented by optimizers whose mutable state can
// be captured and restored for crash-resumable training. Adam and SGD
// both satisfy it.
type StatefulOptimizer interface {
	Optimizer
	// MarshalState serializes the optimizer's mutable state (moments,
	// step counters) — not its hyperparameters, which are rebuilt from
	// the model spec.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state previously produced by MarshalState
	// on an optimizer bound to identically shaped parameters.
	UnmarshalState(data []byte) error
}

// datas extracts the backing slices of a tensor list; optimizer state
// reads and writes go straight through them.
func datas(ts []*tensor.Tensor) [][]float64 {
	out := make([][]float64, len(ts))
	for i, t := range ts {
		out[i] = t.Data()
	}
	return out
}

func writeTensorSet(w io.Writer, set [][]float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(set))); err != nil {
		return err
	}
	for _, d := range set {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(d))); err != nil {
			return err
		}
		for _, v := range d {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

func readTensorSet(r io.Reader, want [][]float64) error {
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: read tensor count: %w", err)
	}
	if int(count) != len(want) {
		return fmt.Errorf("nn: state has %d tensors, optimizer expects %d", count, len(want))
	}
	for i, d := range want {
		var size uint32
		if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
			return fmt.Errorf("nn: read size of tensor %d: %w", i, err)
		}
		if int(size) != len(d) {
			return fmt.Errorf("nn: tensor %d has %d values, optimizer expects %d", i, size, len(d))
		}
		for j := range d {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: read value of tensor %d: %w", i, err)
			}
			d[j] = math.Float64frombits(bits)
		}
	}
	return nil
}

func marshalOptHeader(buf *bytes.Buffer, name string) {
	buf.WriteString(optStateMagic)
	binary.Write(buf, binary.LittleEndian, uint32(optStateVersion))
	binary.Write(buf, binary.LittleEndian, uint16(len(name)))
	buf.WriteString(name)
}

func checkOptHeader(r io.Reader, name string) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: read state magic: %w", err)
	}
	if string(magic) != optStateMagic {
		return fmt.Errorf("nn: bad state magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("nn: read state version: %w", err)
	}
	if version != optStateVersion {
		return fmt.Errorf("nn: unsupported state version %d", version)
	}
	var nameLen uint16
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return fmt.Errorf("nn: read optimizer name length: %w", err)
	}
	got := make([]byte, nameLen)
	if _, err := io.ReadFull(r, got); err != nil {
		return fmt.Errorf("nn: read optimizer name: %w", err)
	}
	if string(got) != name {
		return fmt.Errorf("nn: state is for optimizer %q, bound optimizer is %q", got, name)
	}
	return nil
}

// MarshalState implements StatefulOptimizer for Adam: the bias-correction
// step counter and both moment estimate sets.
func (a *Adam) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	marshalOptHeader(&buf, a.Name())
	if err := binary.Write(&buf, binary.LittleEndian, uint64(a.t)); err != nil {
		return nil, err
	}
	for _, set := range [][]*tensor.Tensor{a.m, a.v} {
		if err := writeTensorSet(&buf, datas(set)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalState implements StatefulOptimizer for Adam.
func (a *Adam) UnmarshalState(data []byte) error {
	r := bytes.NewReader(data)
	if err := checkOptHeader(r, a.Name()); err != nil {
		return fmt.Errorf("%w: %w", auerr.ErrCorruptModel, err)
	}
	var t uint64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return fmt.Errorf("%w: nn: read adam step counter: %w", auerr.ErrCorruptModel, err)
	}
	for _, set := range [][]*tensor.Tensor{a.m, a.v} {
		if err := readTensorSet(r, datas(set)); err != nil {
			return fmt.Errorf("%w: %w", auerr.ErrCorruptModel, err)
		}
	}
	a.t = int(t)
	return nil
}

// MarshalState implements StatefulOptimizer for SGD (momentum velocity,
// when configured).
func (s *SGD) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	marshalOptHeader(&buf, s.Name())
	hasVel := byte(0)
	if s.velocity != nil {
		hasVel = 1
	}
	buf.WriteByte(hasVel)
	if s.velocity != nil {
		if err := writeTensorSet(&buf, datas(s.velocity)); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalState implements StatefulOptimizer for SGD.
func (s *SGD) UnmarshalState(data []byte) error {
	r := bytes.NewReader(data)
	if err := checkOptHeader(r, s.Name()); err != nil {
		return fmt.Errorf("%w: %w", auerr.ErrCorruptModel, err)
	}
	var hasVel byte
	if err := binary.Read(r, binary.LittleEndian, &hasVel); err != nil {
		return fmt.Errorf("%w: nn: read velocity flag: %w", auerr.ErrCorruptModel, err)
	}
	if (hasVel == 1) != (s.velocity != nil) {
		return fmt.Errorf("%w: nn: momentum configuration mismatch", auerr.ErrCorruptModel)
	}
	if s.velocity != nil {
		if err := readTensorSet(r, datas(s.velocity)); err != nil {
			return fmt.Errorf("%w: %w", auerr.ErrCorruptModel, err)
		}
	}
	return nil
}

// MarshalOptState serializes the bound optimizer's mutable state, or an
// error wrapping auerr.ErrNotMaterialized when no stateful optimizer is
// bound.
func (n *Network) MarshalOptState() ([]byte, error) {
	so, ok := n.opt.(StatefulOptimizer)
	if !ok {
		return nil, auerr.E(auerr.ErrNotMaterialized, "nn: no stateful optimizer bound")
	}
	return so.MarshalState()
}

// UnmarshalOptState restores optimizer state previously produced by
// MarshalOptState into the bound optimizer. Mismatched or corrupt bytes
// return an error wrapping auerr.ErrCorruptModel.
func (n *Network) UnmarshalOptState(data []byte) error {
	so, ok := n.opt.(StatefulOptimizer)
	if !ok {
		return auerr.E(auerr.ErrNotMaterialized, "nn: no stateful optimizer bound")
	}
	return so.UnmarshalState(data)
}
