package nn

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// numericGrad estimates d loss / d param[i] by central differences, the
// reference against which analytic backprop is checked.
func numericGrad(n *Network, loss Loss, in, target *tensor.Tensor, p *tensor.Tensor, i int) float64 {
	const h = 1e-6
	orig := p.Data()[i]
	p.Data()[i] = orig + h
	up := loss.Loss(n.Forward(in), target)
	p.Data()[i] = orig - h
	down := loss.Loss(n.Forward(in), target)
	p.Data()[i] = orig
	return (up - down) / (2 * h)
}

func checkGradients(t *testing.T, n *Network, loss Loss, in, target *tensor.Tensor) {
	t.Helper()
	n.ZeroGrads()
	pred := n.Forward(in)
	n.Backward(loss.Grad(pred, target))
	params := n.Params()
	grads := n.Grads()
	for pi, p := range params {
		g := grads[pi]
		// Sample a handful of coordinates per tensor to keep tests fast.
		step := p.Size()/7 + 1
		for i := 0; i < p.Size(); i += step {
			want := numericGrad(n, loss, in, target, p, i)
			got := g.Data()[i]
			tol := 1e-4 * (1 + math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Errorf("param %d[%d]: analytic grad %v, numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := stats.NewRNG(1)
	n := NewNetwork(NewDense(4, 3, rng))
	in := tensor.FromSlice([]float64{0.5, -1, 2, 0.1}, 4)
	target := tensor.FromSlice([]float64{1, 0, -1}, 3)
	checkGradients(t, n, MSE{}, in, target)
}

func TestMLPGradients(t *testing.T) {
	rng := stats.NewRNG(2)
	n := NewDNN(5, []int{8, 6}, 3, rng)
	in := tensor.FromSlice([]float64{0.5, -1, 2, 0.1, -0.3}, 5)
	target := tensor.FromSlice([]float64{1, 0, -1}, 3)
	checkGradients(t, n, MSE{}, in, target)
}

func TestTanhSigmoidGradients(t *testing.T) {
	rng := stats.NewRNG(3)
	n := NewNetwork(NewDense(3, 4, rng), NewTanh(), NewDense(4, 2, rng), NewSigmoid())
	in := tensor.FromSlice([]float64{0.2, -0.4, 0.9}, 3)
	target := tensor.FromSlice([]float64{0.3, 0.8}, 2)
	checkGradients(t, n, MSE{}, in, target)
}

func TestConvGradients(t *testing.T) {
	rng := stats.NewRNG(4)
	n := NewNetwork(
		NewConv2D(1, 2, 3, 3, 1, 1, rng),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(2*3*3, 2, rng),
	)
	in := tensor.New(1, 6, 6)
	r := stats.NewRNG(5)
	for i := range in.Data() {
		in.Data()[i] = r.NormFloat64()
	}
	target := tensor.FromSlice([]float64{1, -1}, 2)
	checkGradients(t, n, MSE{}, in, target)
}

func TestHuberGradients(t *testing.T) {
	rng := stats.NewRNG(6)
	n := NewDNN(3, []int{5}, 2, rng)
	in := tensor.FromSlice([]float64{1, 2, 3}, 3)
	target := tensor.FromSlice([]float64{10, -10}, 2) // force the linear regime
	checkGradients(t, n, Huber{}, in, target)
}

func TestSoftmaxCrossEntropyGradients(t *testing.T) {
	rng := stats.NewRNG(7)
	n := NewNetwork(NewDense(4, 3, rng), NewSoftmax())
	in := tensor.FromSlice([]float64{0.1, 0.5, -0.2, 0.9}, 4)
	target := tensor.FromSlice([]float64{0, 1, 0}, 3)
	checkGradients(t, n, CrossEntropy{}, in, target)
}

func TestSoftmaxSumsToOne(t *testing.T) {
	s := NewSoftmax()
	out := s.Forward(tensor.FromSlice([]float64{1000, 1001, 999}, 3))
	sum := 0.0
	for _, v := range out.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("softmax element out of range: %v", out.Data())
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
}

func TestReLUForward(t *testing.T) {
	r := NewReLU()
	out := r.Forward(tensor.FromSlice([]float64{-1, 0, 2}, 3))
	want := []float64{0, 0, 2}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	m := NewMaxPool2D(2)
	in := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 4, 4)
	out := m.Forward(in)
	want := []float64{4, 8, 9, 4}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("MaxPool = %v, want %v", out.Data(), want)
		}
	}
	g := m.Backward(tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 2, 2))
	// Gradient must land exactly on the argmax positions.
	sum := 0.0
	for _, v := range g.Data() {
		sum += v
	}
	if sum != 4 {
		t.Errorf("pool gradient mass = %v, want 4", sum)
	}
	if g.At(0, 1, 1) != 1 || g.At(0, 1, 3) != 1 || g.At(0, 2, 0) != 1 || g.At(0, 3, 2) != 1 {
		t.Errorf("pool gradient misplaced: %v", g.Data())
	}
}

// TestXORConvergence trains a small MLP on XOR — the classic nonlinear
// sanity check that forward, backward and Adam all cooperate.
func TestXORConvergence(t *testing.T) {
	rng := stats.NewRNG(42)
	n := NewDNN(2, []int{8}, 1, rng)
	n.UseAdam(0.01)
	ins := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	outs := []float64{0, 1, 1, 0}
	var tIns, tOuts []*tensor.Tensor
	for i := range ins {
		tIns = append(tIns, tensor.FromSlice(ins[i], 2))
		tOuts = append(tOuts, tensor.FromSlice([]float64{outs[i]}, 1))
	}
	var last float64
	for epoch := 0; epoch < 2000; epoch++ {
		last = n.TrainBatch(tIns, tOuts)
		if last < 1e-3 {
			break
		}
	}
	if last >= 1e-3 {
		t.Fatalf("XOR did not converge: final loss %v", last)
	}
	for i := range ins {
		pred := n.Predict(ins[i])
		if math.Abs(pred[0]-outs[i]) > 0.1 {
			t.Errorf("XOR(%v) = %v, want %v", ins[i], pred[0], outs[i])
		}
	}
}

// TestRegressionConvergence checks a linear target is learned by SGD.
func TestRegressionConvergence(t *testing.T) {
	rng := stats.NewRNG(9)
	n := NewDNN(3, nil, 1, rng)
	n.UseSGD(0.01, 0.5)
	r := stats.NewRNG(10)
	for step := 0; step < 2000; step++ {
		x := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		y := 2*x[0] - 3*x[1] + 0.5*x[2] + 1
		n.TrainStep(tensor.FromSlice(x, 3), tensor.FromSlice([]float64{y}, 1))
	}
	pred := n.Predict([]float64{1, 1, 1})
	if math.Abs(pred[0]-0.5) > 0.05 {
		t.Errorf("linear regression predicts %v for target 0.5", pred[0])
	}
}

func TestAdamBeatsRandomWalk(t *testing.T) {
	// Adam on a quadratic bowl must reduce the loss monotonically-ish.
	rng := stats.NewRNG(11)
	n := NewDNN(2, nil, 1, rng)
	n.UseAdam(0.05)
	in := tensor.FromSlice([]float64{1, 1}, 2)
	target := tensor.FromSlice([]float64{3}, 1)
	first := n.TrainStep(in, target)
	var last float64
	for i := 0; i < 200; i++ {
		last = n.TrainStep(in, target)
	}
	if last >= first {
		t.Errorf("Adam failed to reduce loss: first %v, last %v", first, last)
	}
	if last > 1e-6 {
		t.Errorf("Adam did not converge on trivial problem: %v", last)
	}
}

func TestClipGradients(t *testing.T) {
	g := tensor.FromSlice([]float64{30, 40}, 2) // norm 50
	ClipGradients([]*tensor.Tensor{g}, 5)
	if math.Abs(g.L2Norm()-5) > 1e-9 {
		t.Errorf("clipped norm = %v, want 5", g.L2Norm())
	}
	// Within bounds: untouched.
	g2 := tensor.FromSlice([]float64{1, 0}, 2)
	ClipGradients([]*tensor.Tensor{g2}, 5)
	if g2.At(0) != 1 {
		t.Error("ClipGradients modified an in-bounds gradient")
	}
	// Non-positive maxNorm: no-op.
	ClipGradients([]*tensor.Tensor{g2}, 0)
	if g2.At(0) != 1 {
		t.Error("ClipGradients with maxNorm=0 modified gradient")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := stats.NewRNG(12)
	a := NewDNN(4, []int{6}, 2, rng)
	data, err := a.MarshalParams()
	if err != nil {
		t.Fatalf("MarshalParams: %v", err)
	}
	if len(data) != a.SizeBytes() {
		t.Errorf("SizeBytes = %d, actual %d", a.SizeBytes(), len(data))
	}
	b := NewDNN(4, []int{6}, 2, stats.NewRNG(999)) // different weights
	if err := b.UnmarshalParams(data); err != nil {
		t.Fatalf("UnmarshalParams: %v", err)
	}
	in := []float64{1, -1, 0.5, 2}
	pa, pb := a.Predict(in), b.Predict(in)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("round-trip prediction mismatch: %v vs %v", pa, pb)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	rng := stats.NewRNG(13)
	a := NewDNN(4, []int{6}, 2, rng)
	data, err := a.MarshalParams()
	if err != nil {
		t.Fatal(err)
	}
	b := NewDNN(4, []int{7}, 2, rng) // different hidden size
	if err := b.UnmarshalParams(data); err == nil {
		t.Error("loading mismatched architecture succeeded")
	}
	c := NewDNN(4, nil, 2, rng) // different tensor count
	if err := c.UnmarshalParams(data); err == nil {
		t.Error("loading mismatched tensor count succeeded")
	}
	if err := a.UnmarshalParams([]byte("BAD!")); err == nil {
		t.Error("loading garbage succeeded")
	}
}

func TestCopyParamsFrom(t *testing.T) {
	rng := stats.NewRNG(14)
	a := NewDNN(3, []int{4}, 2, rng)
	b := NewDNN(3, []int{4}, 2, stats.NewRNG(15))
	b.CopyParamsFrom(a)
	in := []float64{0.3, -0.7, 1.1}
	pa, pb := a.Predict(in), b.Predict(in)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("CopyParamsFrom mismatch: %v vs %v", pa, pb)
		}
	}
	// Mutating the copy must not affect the source (deep copy).
	b.Params()[0].Data()[0] += 1
	if a.Params()[0].Data()[0] == b.Params()[0].Data()[0] {
		t.Error("CopyParamsFrom aliased tensors")
	}
}

func TestParamCount(t *testing.T) {
	rng := stats.NewRNG(16)
	n := NewDNN(10, []int{5}, 2, rng)
	// dense(10->5): 55; dense(5->2): 12.
	if got := n.ParamCount(); got != 67 {
		t.Errorf("ParamCount = %d, want 67", got)
	}
}

func TestDeepMindCNNShapes(t *testing.T) {
	rng := stats.NewRNG(17)
	n := NewDeepMindCNN(4, 32, 32, 5, rng)
	in := tensor.New(4, 32, 32)
	out := n.Forward(in)
	if out.Size() != 5 {
		t.Fatalf("CNN output size = %d, want 5", out.Size())
	}
	// The raw model must be larger than the equivalent internal-state
	// model — the Table 2 "Raw/All model size" relationship.
	small := NewDNN(20, []int{256, 64}, 5, rng)
	if n.SizeBytes() <= small.SizeBytes() {
		t.Errorf("CNN size %d not larger than DNN size %d", n.SizeBytes(), small.SizeBytes())
	}
}

func TestNetworkString(t *testing.T) {
	rng := stats.NewRNG(18)
	n := NewDNN(2, []int{3}, 1, rng)
	want := "dense(2->3) -> relu -> dense(3->1)"
	if got := n.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTrainStepWithoutOptimizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TrainStep without optimizer did not panic")
		}
	}()
	n := NewDNN(1, nil, 1, stats.NewRNG(19))
	n.TrainStep(tensor.New(1), tensor.New(1))
}

func TestDensePanics(t *testing.T) {
	rng := stats.NewRNG(20)
	for name, f := range map[string]func(){
		"bad dims":        func() { NewDense(0, 1, rng) },
		"wrong input":     func() { NewDense(2, 1, rng).Forward(tensor.New(3)) },
		"backward first":  func() { NewDense(2, 1, rng).Backward(tensor.New(1)) },
		"wrong grad size": func() { d := NewDense(2, 3, rng); d.Forward(tensor.New(2)); d.Backward(tensor.New(2)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestBatchTrainingReducesLoss(t *testing.T) {
	rng := stats.NewRNG(21)
	n := NewDNN(2, []int{6}, 1, rng)
	n.UseAdam(0.01)
	r := stats.NewRNG(22)
	makeBatch := func() ([]*tensor.Tensor, []*tensor.Tensor) {
		var ins, outs []*tensor.Tensor
		for i := 0; i < 16; i++ {
			x := []float64{r.Float64(), r.Float64()}
			y := x[0]*x[1] + 0.5
			ins = append(ins, tensor.FromSlice(x, 2))
			outs = append(outs, tensor.FromSlice([]float64{y}, 1))
		}
		return ins, outs
	}
	ins, outs := makeBatch()
	first := n.TrainBatch(ins, outs)
	for i := 0; i < 300; i++ {
		bi, bo := makeBatch()
		n.TrainBatch(bi, bo)
	}
	bi, bo := makeBatch()
	last := n.TrainBatch(bi, bo)
	if last >= first/2 {
		t.Errorf("batch training did not reduce loss: first %v, last %v", first, last)
	}
	if got := n.TrainBatch(nil, nil); got != 0 {
		t.Errorf("empty batch loss = %v, want 0", got)
	}
}

// TestLayerNamesAndZeroGrads sweeps every layer kind's trivial
// interface methods: Name must be non-empty and stable, ZeroGrads must
// be callable (a no-op for parameterless layers).
func TestLayerNamesAndZeroGrads(t *testing.T) {
	rng := stats.NewRNG(60)
	layers := []Layer{
		NewDense(2, 3, rng),
		NewReLU(),
		NewSigmoid(),
		NewTanh(),
		NewFlatten(),
		NewSoftmax(),
		NewConv2D(1, 2, 3, 3, 1, 1, rng),
		NewMaxPool2D(2),
		NewLeakyReLU(0.1),
		NewDropout(0.3, rng),
	}
	for _, l := range layers {
		if l.Name() == "" {
			t.Errorf("%T has empty Name", l)
		}
		l.ZeroGrads() // must not panic
		if len(l.Params()) != len(l.Grads()) {
			t.Errorf("%s: params/grads misaligned", l.Name())
		}
	}
	if got := NewNetwork(layers[0]).String(); got != "dense(2->3)" {
		t.Errorf("network String = %q", got)
	}
}

// TestActivationBackwardBeforeForwardPanics sweeps the stateful
// activations' misuse guard.
func TestActivationBackwardBeforeForwardPanics(t *testing.T) {
	rng := stats.NewRNG(61)
	for _, l := range []Layer{NewReLU(), NewSigmoid(), NewTanh(), NewFlatten(), NewLeakyReLU(0.1),
		NewMaxPool2D(2), NewConv2D(1, 1, 2, 2, 1, 0, rng)} {
		l := l
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Backward before Forward did not panic", l.Name())
				}
			}()
			l.Backward(tensor.New(4))
		}()
	}
}

func TestMaxPoolPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero size":    func() { NewMaxPool2D(0) },
		"bad rank":     func() { NewMaxPool2D(2).Forward(tensor.New(4, 4)) },
		"window large": func() { NewMaxPool2D(9).Forward(tensor.New(1, 4, 4)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestConvPanics(t *testing.T) {
	rng := stats.NewRNG(62)
	for name, f := range map[string]func(){
		"bad params": func() { NewConv2D(0, 1, 3, 3, 1, 0, rng) },
		"bad input":  func() { NewConv2D(1, 1, 3, 3, 1, 0, rng).Forward(tensor.New(2, 4, 4)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}
