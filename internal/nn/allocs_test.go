//go:build !race

// Allocation regression tests for the zero-allocation steady-state
// contract (DESIGN.md §5e). Excluded under -race: the race runtime
// instruments allocations and makes testing.AllocsPerRun report its own
// bookkeeping.
package nn

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// TestForwardZeroAllocs checks the steady-state inference paths: after
// one warm-up pass, Network.Forward and PredictInto over both the DNN
// and a conv stack must not touch the heap.
func TestForwardZeroAllocs(t *testing.T) {
	rng := stats.NewRNG(3)
	dnn := NewDNN(64, []int{128, 64}, 16, rng.Split())
	cnn := NewNetwork(
		NewConv2D(4, 8, 3, 3, 1, 1, rng.Split()),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(8*16*16, 16, rng.Split()),
	)

	in := tensor.New(64)
	dnn.Forward(in) // warm-up allocates the layer caches
	if n := testing.AllocsPerRun(100, func() { dnn.Forward(in) }); n != 0 {
		t.Errorf("DNN Forward allocs/op = %v, want 0", n)
	}

	// The conv stack is now fully allocation-free too: the implicit-GEMM
	// ConvKernel dispatches persistent shard closures (built once at
	// construction) instead of per-call closure literals, and every
	// transient buffer comes from the scratch arena.
	cin := tensor.New(4, 32, 32)
	cnn.Forward(cin)
	if n := testing.AllocsPerRun(100, func() { cnn.Forward(cin) }); n != 0 {
		t.Errorf("CNN Forward allocs/op = %v, want 0", n)
	}
	// A training-style forward+backward over the conv stack must hold
	// the same line.
	cnn.ZeroGrads()
	grad := tensor.New(16)
	cnn.Backward(grad)
	if n := testing.AllocsPerRun(100, func() {
		cnn.Forward(cin)
		cnn.Backward(grad)
	}); n != 0 {
		t.Errorf("CNN forward+backward allocs/op = %v, want 0", n)
	}

	flat := make([]float64, 64)
	out := make([]float64, 16)
	dnn.PredictInto(out, flat)
	if n := testing.AllocsPerRun(100, func() { dnn.PredictInto(out, flat) }); n != 0 {
		t.Errorf("PredictInto allocs/op = %v, want 0", n)
	}
}

// TestBackwardZeroAllocs checks a full forward/loss-grad/backward cycle
// (the per-example body of sequential TrainBatch) is allocation-free in
// steady state.
func TestBackwardZeroAllocs(t *testing.T) {
	net := NewDNN(64, []int{128, 64}, 16, stats.NewRNG(3))
	in, target := tensor.New(64), tensor.New(16)
	step := func() {
		pred := net.Forward(in)
		net.Backward(net.lossGrad(pred, target))
	}
	net.ZeroGrads()
	step() // warm-up
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Errorf("forward+backward allocs/op = %v, want 0", n)
	}
}
