package nn

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Conv2D is a 2-D convolution layer over (channels, height, width)
// inputs, executed by the implicit-GEMM kernel (tensor.ConvKernel): the
// im2col column matrix is never materialized — receptive-field columns
// are gathered tile-by-tile inside the GEMM's panel packing, for both
// the forward product and the two backward products. The paper's "Raw"
// configurations use three of these (each followed by max pooling) to
// digest raw screen pixels, mirroring the DeepMind Atari architecture.
type Conv2D struct {
	InC, OutC          int
	KH, KW             int
	Stride, Pad        int
	inH, inW           int // remembered from the last forward pass
	weights            *tensor.Tensor
	bias               *tensor.Tensor
	gradW, gradB       *tensor.Tensor
	lastOutH, lastOutW int

	// kern is the implicit-GEMM execution state, built lazily on the
	// first Forward (Replicate leaves it nil) and rebuilt when the input
	// extent changes.
	kern *tensor.ConvKernel

	// lastIn is the input tensor passed to Forward; Backward re-gathers
	// receptive fields from it for the weight gradient, so the caller
	// must not mutate the input between Forward and the matching
	// Backward (the same contract as Dense's saved input view). This
	// replaces the materialized im2col cache, which was the layer's
	// largest buffer.
	lastIn *tensor.Tensor

	// Reused scratch (DESIGN.md §5e): the 2-D output and its
	// (OutC, outH, outW) view and the input gradient are layer-owned and
	// recycled across calls, so steady-state forward/backward allocates
	// nothing. Outputs are valid until the next call on this layer.
	out2d     *tensor.Tensor
	outView   *tensor.Tensor
	gradWProd *tensor.Tensor // view over arena scratch for the gradW product
	gradIn    *tensor.Tensor
}

// NewConv2D constructs a convolution layer with He initialization.
func NewConv2D(inC, outC, kh, kw, stride, pad int, rng *stats.RNG) *Conv2D {
	if inC <= 0 || outC <= 0 || kh <= 0 || kw <= 0 || stride <= 0 || pad < 0 {
		auerr.Failf("nn: invalid Conv2D params inC=%d outC=%d k=%dx%d stride=%d pad=%d",
			inC, outC, kh, kw, stride, pad)
	}
	c := &Conv2D{
		InC: inC, OutC: outC, KH: kh, KW: kw, Stride: stride, Pad: pad,
		weights: tensor.New(outC, inC*kh*kw),
		bias:    tensor.New(outC),
		gradW:   tensor.New(outC, inC*kh*kw),
		gradB:   tensor.New(outC),
	}
	scale := math.Sqrt(2.0 / float64(inC*kh*kw))
	for i := range c.weights.Data() {
		c.weights.Data()[i] = rng.NormFloat64() * scale
	}
	return c
}

// Forward convolves the (InC, H, W) input, returning (OutC, outH, outW).
// The input must stay unchanged until the matching Backward (see lastIn).
func (c *Conv2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	if len(s) != 3 || s[0] != c.InC {
		auerr.Failf("nn: Conv2D expects (%d,H,W) input, got %v", c.InC, s)
	}
	if c.kern == nil || c.inH != s[1] || c.inW != s[2] {
		c.kern = tensor.NewConvKernel(tensor.NewConvGeom(
			c.InC, s[1], s[2], c.KH, c.KW, c.Stride, c.Pad, c.OutC))
	}
	c.inH, c.inW = s[1], s[2]
	geom := c.kern.Geom()
	c.lastOutH, c.lastOutW = geom.OutH, geom.OutW
	n := c.lastOutH * c.lastOutW
	c.lastIn = in
	c.out2d = tensor.Reuse(c.out2d, c.OutC, n)
	out := c.out2d
	c.kern.Forward(out.Data(), in.Data(), c.weights.Data()) // (OutC, outH*outW)
	// Add per-output-channel bias after the product, exactly like the
	// im2col reference (bias never enters the FMA fold).
	bd := c.bias.Data()
	for oc := 0; oc < c.OutC; oc++ {
		b := bd[oc]
		row := out.Data()[oc*n : (oc+1)*n]
		for i := range row {
			row[i] += b
		}
	}
	c.outView = tensor.ViewOf(c.outView, out.Data(), c.OutC, c.lastOutH, c.lastOutW)
	return c.outView
}

// Backward accumulates weight/bias gradients and returns the input
// gradient via the fused implicit-GEMM adjoints (no column matrix, no
// column-gradient matrix).
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.lastIn == nil {
		auerr.Failf("nn: Conv2D Backward before Forward")
	}
	n := c.lastOutH * c.lastOutW
	g := gradOut.Data()
	// dL/dW += g × im2col(in)ᵀ, gathered implicitly. The per-example
	// product must be formed from zero and then added (not chained
	// through the accumulator): the data-parallel reduction in
	// Network.TrainBatch adds per-example products exactly this way, and
	// the two paths must associate identically to stay bit-equal at any
	// worker count. dL/dinput = col2im(Wᵀ × g), scattered directly from
	// the kernel's per-channel stripes.
	pw := tensor.Scratch.Get(c.gradW.Size())
	c.gradWProd = tensor.ViewOf(c.gradWProd, *pw, c.OutC, c.InC*c.KH*c.KW)
	c.gradIn = tensor.Reuse(c.gradIn, c.InC, c.inH, c.inW)
	c.kern.Backward(c.gradWProd.Data(), c.gradIn.Data(), c.lastIn.Data(), c.weights.Data(), g)
	c.gradW.AddInPlace(c.gradWProd)
	tensor.Scratch.Put(pw)
	// dL/db = row sums of g
	for oc := 0; oc < c.OutC; oc++ {
		sum := 0.0
		for _, v := range g[oc*n : (oc+1)*n] {
			sum += v
		}
		c.gradB.Data()[oc] += sum
	}
	return c.gradIn
}

// Params returns the kernel and bias tensors.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.weights, c.bias} }

// Grads returns the accumulated gradients.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.gradW, c.gradB} }

// ZeroGrads clears the accumulated gradients.
func (c *Conv2D) ZeroGrads() {
	c.gradW.Fill(0)
	c.gradB.Fill(0)
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%d->%d,%dx%d,s%d,p%d)", c.InC, c.OutC, c.KH, c.KW, c.Stride, c.Pad)
}

// MaxPool2D performs non-overlapping spatial max pooling. The paper's
// DeepMind-style Raw models follow each convolution with one of these.
type MaxPool2D struct {
	Size    int
	argmax  []int // flat input index of each pooled maximum
	inShape []int
	out     *tensor.Tensor // reused output buffer, valid until next Forward
	gradIn  *tensor.Tensor // reused backward buffer, valid until next Backward
}

// NewMaxPool2D constructs a pooling layer with a square window.
func NewMaxPool2D(size int) *MaxPool2D {
	if size <= 0 {
		auerr.Failf("nn: MaxPool2D size must be positive")
	}
	return &MaxPool2D{Size: size}
}

// Forward max-pools each channel with a size×size window and stride
// equal to the window size. Ragged edges truncate.
func (m *MaxPool2D) Forward(in *tensor.Tensor) *tensor.Tensor {
	s := in.Shape()
	if len(s) != 3 {
		auerr.Failf("nn: MaxPool2D expects (C,H,W), got %v", s)
	}
	c, h, w := s[0], s[1], s[2]
	oh, ow := h/m.Size, w/m.Size
	if oh == 0 || ow == 0 {
		auerr.Failf("nn: MaxPool2D window %d too large for %dx%d input", m.Size, h, w)
	}
	m.inShape = append(m.inShape[:0], s...)
	m.out = tensor.Reuse(m.out, c, oh, ow)
	out := m.out
	if cap(m.argmax) < out.Size() {
		m.argmax = make([]int, out.Size())
	}
	m.argmax = m.argmax[:out.Size()]
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for dy := 0; dy < m.Size; dy++ {
					for dx := 0; dx < m.Size; dx++ {
						iy, ix := oy*m.Size+dy, ox*m.Size+dx
						idx := (ch*h+iy)*w + ix
						if v := in.Data()[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				oIdx := (ch*oh+oy)*ow + ox
				out.Data()[oIdx] = best
				m.argmax[oIdx] = bestIdx
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if m.inShape == nil {
		auerr.Failf("nn: MaxPool2D Backward before Forward")
	}
	if gradOut.Size() != len(m.argmax) {
		auerr.Failf("nn: MaxPool2D Backward shape mismatch")
	}
	m.gradIn = tensor.Reuse(m.gradIn, m.inShape...)
	out := m.gradIn
	out.Fill(0)
	for i, g := range gradOut.Data() {
		out.Data()[m.argmax[i]] += g
	}
	return out
}

// Params implements Layer (pooling has none).
func (m *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (m *MaxPool2D) ZeroGrads() {}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%d)", m.Size) }
