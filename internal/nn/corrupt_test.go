package nn

import (
	"errors"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// TestLoadParamsRejectsCorruptBytes feeds damaged serialized-model bytes
// into deserialization and asserts the typed error contract: every
// corruption mode returns an error wrapping auerr.ErrCorruptModel, and
// none of them panics or succeeds silently.
func TestLoadParamsRejectsCorruptBytes(t *testing.T) {
	net := NewDNN(4, []int{8}, 2, stats.NewRNG(3))
	good, err := net.MarshalParams()
	if err != nil {
		t.Fatalf("MarshalParams: %v", err)
	}

	flip := func(data []byte, i int) []byte {
		out := append([]byte(nil), data...)
		out[i] ^= 0xFF
		return out
	}
	cases := []struct {
		desc string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6}},
		{"bad magic", flip(good, 0)},
		{"bad version", flip(good, 4)},
		{"bad tensor count", flip(good, 8)},
		{"bad rank", flip(good, 12)},
		{"truncated header", good[:6]},
		{"truncated data", good[:len(good)-9]},
	}
	for _, c := range cases {
		victim := NewDNN(4, []int{8}, 2, stats.NewRNG(4))
		err := victim.UnmarshalParams(c.data)
		if err == nil {
			t.Errorf("%s: UnmarshalParams accepted corrupt bytes", c.desc)
			continue
		}
		if !errors.Is(err, auerr.ErrCorruptModel) {
			t.Errorf("%s: error %v does not wrap auerr.ErrCorruptModel", c.desc, err)
		}
	}

	// The pristine bytes still load, so the corruption cases above
	// failed for the right reason.
	victim := NewDNN(4, []int{8}, 2, stats.NewRNG(5))
	if err := victim.UnmarshalParams(good); err != nil {
		t.Fatalf("UnmarshalParams on good bytes: %v", err)
	}
}

// TestLoadParamsRejectsArchitectureMismatch loads weights from a
// structurally different network; the shape check must wrap
// auerr.ErrCorruptModel (the bytes are not a valid image of THIS model).
func TestLoadParamsRejectsArchitectureMismatch(t *testing.T) {
	src := NewDNN(4, []int{8}, 2, stats.NewRNG(3))
	data, err := src.MarshalParams()
	if err != nil {
		t.Fatalf("MarshalParams: %v", err)
	}
	dst := NewDNN(6, []int{8}, 2, stats.NewRNG(3))
	if err := dst.UnmarshalParams(data); !errors.Is(err, auerr.ErrCorruptModel) {
		t.Errorf("mismatched load: error %v does not wrap auerr.ErrCorruptModel", err)
	}
}
