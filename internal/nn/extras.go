package nn

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// LeakyReLU is max(αx, x); a drop-in for ReLU when dying units are a
// concern on small training sets.
type LeakyReLU struct {
	// Alpha is the negative-side slope (0 selects 0.01).
	Alpha  float64
	lastIn *tensor.Tensor
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha == 0 {
		alpha = 0.01
	}
	return &LeakyReLU{Alpha: alpha}
}

// Forward applies the activation elementwise.
func (l *LeakyReLU) Forward(in *tensor.Tensor) *tensor.Tensor {
	l.lastIn = in.Clone()
	out := in.Clone()
	for i, x := range out.Data() {
		if x < 0 {
			out.Data()[i] = l.Alpha * x
		}
	}
	return out
}

// Backward scales the gradient by 1 or Alpha depending on the input
// sign.
func (l *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.lastIn == nil || l.lastIn.Size() != gradOut.Size() {
		auerr.Failf("nn: LeakyReLU Backward shape mismatch or called before Forward")
	}
	out := gradOut.Clone()
	for i, x := range l.lastIn.Data() {
		if x < 0 {
			out.Data()[i] *= l.Alpha
		}
	}
	return out
}

// Params implements Layer.
func (l *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (l *LeakyReLU) ZeroGrads() {}

// Name implements Layer.
func (l *LeakyReLU) Name() string { return fmt.Sprintf("leakyrelu(%g)", l.Alpha) }

// Dropout randomly zeroes activations during training (inverted
// dropout: survivors are scaled by 1/keep so inference needs no
// correction). Call SetTraining(false) for deployment.
type Dropout struct {
	// Rate is the drop probability in [0, 1).
	Rate     float64
	rng      *stats.RNG
	training bool
	mask     []float64
}

// NewDropout constructs a dropout layer in training mode.
func NewDropout(rate float64, rng *stats.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		auerr.Failf("nn: dropout rate %v out of [0, 1)", rate)
	}
	return &Dropout{Rate: rate, rng: rng, training: true}
}

// SetTraining toggles between training (dropping) and inference
// (identity) behaviour.
func (d *Dropout) SetTraining(t bool) { d.training = t }

// Forward drops units in training mode and is the identity otherwise.
func (d *Dropout) Forward(in *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return in
	}
	out := in.Clone()
	if cap(d.mask) < in.Size() {
		d.mask = make([]float64, in.Size())
	}
	d.mask = d.mask[:in.Size()]
	keep := 1 - d.Rate
	for i := range out.Data() {
		if d.rng.Float64() < d.Rate {
			d.mask[i] = 0
			out.Data()[i] = 0
		} else {
			d.mask[i] = 1 / keep
			out.Data()[i] *= 1 / keep
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return gradOut
	}
	if len(d.mask) != gradOut.Size() {
		auerr.Failf("nn: Dropout Backward shape mismatch")
	}
	out := gradOut.Clone()
	for i := range out.Data() {
		out.Data()[i] *= d.mask[i]
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (d *Dropout) ZeroGrads() {}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%g)", d.Rate) }

// RMSProp is the root-mean-square-propagation optimizer, a common
// alternative to Adam for non-stationary (RL) objectives.
type RMSProp struct {
	LR, Decay, Eps float64
	params         []*tensor.Tensor
	cache          []*tensor.Tensor
}

// NewRMSProp constructs an RMSProp optimizer (decay 0.99, eps 1e-8).
func NewRMSProp(params []*tensor.Tensor, lr float64) *RMSProp {
	r := &RMSProp{LR: lr, Decay: 0.99, Eps: 1e-8, params: params,
		cache: make([]*tensor.Tensor, len(params))}
	for i, p := range params {
		r.cache[i] = tensor.New(p.Shape()...)
	}
	return r
}

// Step applies one RMSProp update.
func (r *RMSProp) Step(grads []*tensor.Tensor) {
	if len(grads) != len(r.params) {
		auerr.Failf("nn: RMSProp gradient count mismatch")
	}
	for i, p := range r.params {
		g := grads[i].Data()
		c := r.cache[i].Data()
		pd := p.Data()
		for j := range pd {
			c[j] = r.Decay*c[j] + (1-r.Decay)*g[j]*g[j]
			pd[j] -= r.LR * g[j] / (math.Sqrt(c[j]) + r.Eps)
		}
	}
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }
