package nn

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Loss scores a prediction against a target and produces the gradient of
// the loss with respect to the prediction.
type Loss interface {
	// Loss returns the scalar loss value.
	Loss(pred, target *tensor.Tensor) float64
	// Grad returns d loss / d pred.
	Grad(pred, target *tensor.Tensor) *tensor.Tensor
	// Name identifies the loss for logging.
	Name() string
}

// GradIntoLoss is the destination-passing refinement of Loss: GradInto
// writes d loss / d pred into the caller-owned dst (same size as pred)
// and returns it. The Network training paths use it with a reused scratch
// tensor so the steady-state loss gradient allocates nothing; losses not
// implementing it fall back to Grad.
type GradIntoLoss interface {
	Loss
	GradInto(dst, pred, target *tensor.Tensor) *tensor.Tensor
}

// MSE is the mean-squared-error loss used for the supervised parameter
// regression models (predicting lo/hi/sigma etc.).
type MSE struct{}

// Loss returns mean((pred-target)²).
func (MSE) Loss(pred, target *tensor.Tensor) float64 {
	checkSameSize(pred, target)
	sum := 0.0
	for i, p := range pred.Data() {
		d := p - target.Data()[i]
		sum += d * d
	}
	return sum / float64(pred.Size())
}

// Grad returns 2(pred-target)/n.
func (m MSE) Grad(pred, target *tensor.Tensor) *tensor.Tensor {
	return m.GradInto(tensor.New(pred.Shape()...), pred, target)
}

// GradInto writes 2(pred-target)/n into dst.
func (MSE) GradInto(dst, pred, target *tensor.Tensor) *tensor.Tensor {
	checkSameSize(pred, target)
	checkSameSize(dst, pred)
	n := float64(pred.Size())
	od := dst.Data()
	td := target.Data()
	for i, p := range pred.Data() {
		od[i] = 2 * (p - td[i]) / n
	}
	return dst
}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Huber is the smooth-L1 loss used for Q-learning targets; it behaves
// quadratically near zero and linearly beyond Delta, which keeps
// bootstrapped TD errors from destabilizing training.
type Huber struct {
	// Delta is the quadratic/linear crossover point; zero means 1.0.
	Delta float64
}

func (h Huber) delta() float64 {
	if h.Delta <= 0 {
		return 1
	}
	return h.Delta
}

// Loss returns the mean Huber loss.
func (h Huber) Loss(pred, target *tensor.Tensor) float64 {
	checkSameSize(pred, target)
	d := h.delta()
	sum := 0.0
	for i, p := range pred.Data() {
		e := math.Abs(p - target.Data()[i])
		if e <= d {
			sum += 0.5 * e * e
		} else {
			sum += d * (e - 0.5*d)
		}
	}
	return sum / float64(pred.Size())
}

// Grad returns the elementwise Huber gradient divided by n.
func (h Huber) Grad(pred, target *tensor.Tensor) *tensor.Tensor {
	return h.GradInto(tensor.New(pred.Shape()...), pred, target)
}

// GradInto writes the elementwise Huber gradient divided by n into dst.
func (h Huber) GradInto(dst, pred, target *tensor.Tensor) *tensor.Tensor {
	checkSameSize(pred, target)
	checkSameSize(dst, pred)
	d := h.delta()
	n := float64(pred.Size())
	od := dst.Data()
	td := target.Data()
	for i, p := range pred.Data() {
		e := p - td[i]
		switch {
		case e > d:
			od[i] = d / n
		case e < -d:
			od[i] = -d / n
		default:
			od[i] = e / n
		}
	}
	return dst
}

// Name implements Loss.
func (h Huber) Name() string { return "huber" }

// CrossEntropy is the categorical cross-entropy loss over a softmax
// output; the target must be a one-hot (or soft) distribution. Its Grad
// is (pred - target), matching the Softmax layer's pass-through backward.
type CrossEntropy struct{}

// Loss returns -Σ target·log(pred).
func (CrossEntropy) Loss(pred, target *tensor.Tensor) float64 {
	checkSameSize(pred, target)
	sum := 0.0
	for i, p := range pred.Data() {
		if target.Data()[i] == 0 {
			continue
		}
		sum -= target.Data()[i] * math.Log(math.Max(p, 1e-12))
	}
	return sum
}

// Grad returns pred - target (the combined softmax+CE gradient).
func (c CrossEntropy) Grad(pred, target *tensor.Tensor) *tensor.Tensor {
	return c.GradInto(tensor.New(pred.Shape()...), pred, target)
}

// GradInto writes pred - target into dst.
func (CrossEntropy) GradInto(dst, pred, target *tensor.Tensor) *tensor.Tensor {
	checkSameSize(pred, target)
	checkSameSize(dst, pred)
	od := dst.Data()
	td := target.Data()
	for i, p := range pred.Data() {
		od[i] = p - td[i]
	}
	return dst
}

// Name implements Loss.
func (CrossEntropy) Name() string { return "cross-entropy" }

func checkSameSize(a, b *tensor.Tensor) {
	if a.Size() != b.Size() {
		auerr.Failf("nn: loss size mismatch %d vs %d", a.Size(), b.Size())
	}
}
