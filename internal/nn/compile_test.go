package nn

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// bitsEqual fails the test unless got and want are bit-identical.
func bitsEqual(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: elem %d = %x (%v), want %x (%v)",
				label, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}

// TestCompiledDNNBitIdentical checks the compiled plan against the
// uncompiled network across layer widths chosen to exercise every packed
// path: full 16-lane blocks, blocks plus ragged tails, widths below one
// block, and width 1. Worker-pool width must not matter for either side.
func TestCompiledDNNBitIdentical(t *testing.T) {
	rng := stats.NewRNG(42)
	archs := []struct {
		name   string
		in     int
		hidden []int
		out    int
	}{
		{"full-blocks", 64, []int{128, 64}, 16},
		{"straddle", 33, []int{47, 21}, 5},
		{"tiny", 2, []int{3}, 1},
		{"one-wide", 1, []int{1}, 1},
		{"wide-shallow", 8, nil, 16},
		{"tail-only", 7, []int{9, 13}, 2},
	}
	for _, arch := range archs {
		net := NewDNN(arch.in, arch.hidden, arch.out, rng.Split())
		plan, err := Compile(net)
		if err != nil {
			t.Fatalf("%s: compile: %v", arch.name, err)
		}
		if plan.InSize() != arch.in || plan.OutSize() != arch.out {
			t.Fatalf("%s: plan geometry %d->%d, want %d->%d",
				arch.name, plan.InSize(), plan.OutSize(), arch.in, arch.out)
		}
		inst := plan.NewInstance()
		in := make([]float64, arch.in)
		for _, workers := range []int{1, 2, 8} {
			restore := parallel.SetWorkers(workers)
			for trial := 0; trial < 5; trial++ {
				for i := range in {
					in[i] = rng.NormFloat64()
				}
				want := net.Predict(in)
				got := inst.Predict(in)
				bitsEqual(t, arch.name, got, want)
			}
			parallel.SetWorkers(restore)
		}
	}
}

// TestCompiledCNNBitIdentical runs the full CNN stack — conv, relu,
// pooling, flatten, dense — through the plan and the network, including
// a ragged spatial size that exercises pooling truncation and conv
// matmul tails.
func TestCompiledCNNBitIdentical(t *testing.T) {
	rng := stats.NewRNG(7)
	builds := []struct {
		name  string
		net   *Network
		shape []int
	}{
		{
			"small-cnn",
			NewNetwork(
				NewConv2D(4, 8, 3, 3, 1, 1, rng.Split()),
				NewReLU(),
				NewMaxPool2D(2),
				NewFlatten(),
				NewDense(8*16*16, 16, rng.Split()),
			),
			[]int{4, 32, 32},
		},
		{
			"ragged-cnn",
			NewNetwork(
				NewConv2D(3, 5, 3, 3, 2, 1, rng.Split()),
				NewTanh(),
				NewMaxPool2D(2),
				NewFlatten(),
				NewDense(5*3*3, 7, rng.Split()),
				NewSoftmax(),
			),
			[]int{3, 13, 13},
		},
		{
			"deepmind",
			NewDeepMindCNN(4, 40, 40, 6, rng.Split()),
			[]int{4, 40, 40},
		},
	}
	for _, b := range builds {
		plan, err := Compile(b.net, b.shape...)
		if err != nil {
			t.Fatalf("%s: compile: %v", b.name, err)
		}
		inst := plan.NewInstance()
		size := 1
		for _, d := range b.shape {
			size *= d
		}
		in := make([]float64, size)
		for _, workers := range []int{1, 2, 8} {
			restore := parallel.SetWorkers(workers)
			for trial := 0; trial < 3; trial++ {
				for i := range in {
					in[i] = rng.NormFloat64()
				}
				want := b.net.Predict(in, b.shape...)
				got := inst.Predict(in)
				bitsEqual(t, b.name, got, want)
			}
			parallel.SetWorkers(restore)
		}
	}
}

// TestCompiledPlanIsSnapshot verifies a plan does not observe weight
// mutations after compile — the core of the recompile-on-publish
// contract.
func TestCompiledPlanIsSnapshot(t *testing.T) {
	rng := stats.NewRNG(3)
	net := NewDNN(8, []int{16}, 4, rng.Split())
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.NewInstance()
	in := []float64{1, -2, 3, -4, 5, -6, 7, -8}
	before := inst.Predict(in)
	for _, p := range net.Params() {
		for i := range p.Data() {
			p.Data()[i] += 1
		}
	}
	bitsEqual(t, "snapshot", inst.Predict(in), before)
	// A fresh compile picks up the new weights.
	plan2, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqual(t, "recompile", plan2.NewInstance().Predict(in), net.Predict(in))
}

// TestCompiledPlanInstancesIndependent runs two instances of one plan
// concurrently to completion and checks both match the reference —
// instances share only immutable packed weights.
func TestCompiledPlanInstancesIndependent(t *testing.T) {
	rng := stats.NewRNG(11)
	net := NewDNN(16, []int{32}, 8, rng.Split())
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	in1 := make([]float64, 16)
	in2 := make([]float64, 16)
	for i := range in1 {
		in1[i] = rng.NormFloat64()
		in2[i] = rng.NormFloat64()
	}
	want1, want2 := net.Predict(in1), net.Predict(in2)
	i1, i2 := plan.NewInstance(), plan.NewInstance()
	done := make(chan []float64, 2)
	go func() {
		var out []float64
		for r := 0; r < 100; r++ {
			out = i1.PredictInto(out, in1)
		}
		done <- out
	}()
	go func() {
		var out []float64
		for r := 0; r < 100; r++ {
			out = i2.PredictInto(out, in2)
		}
		done <- out
	}()
	got1, got2 := <-done, <-done
	// Channel order is nondeterministic; match by length-independent
	// comparison against both references.
	if math.Float64bits(got1[0]) != math.Float64bits(want1[0]) {
		got1, got2 = got2, got1
	}
	bitsEqual(t, "inst1", got1, want1)
	bitsEqual(t, "inst2", got2, want2)
}

// TestCompileRejectsUnknownAndBadShapes covers the fallback contract:
// unsupported layers and shape mismatches return errors, never panic.
func TestCompileRejectsUnknownAndBadShapes(t *testing.T) {
	rng := stats.NewRNG(5)
	if _, err := Compile(NewNetwork()); err == nil {
		t.Error("empty network compiled")
	}
	cnn := NewNetwork(NewConv2D(4, 8, 3, 3, 1, 1, rng.Split()))
	if _, err := Compile(cnn); err == nil {
		t.Error("conv-first network compiled without an input shape")
	}
	if _, err := Compile(cnn, 3, 32, 32); err == nil {
		t.Error("channel mismatch compiled")
	}
	dnn := NewDNN(8, nil, 4, rng.Split())
	if _, err := Compile(dnn, 9); err == nil {
		t.Error("dense size mismatch compiled")
	}
}

// TestCompiledPredictIntoZeroAlloc pins the tentpole's steady-state
// guarantee: a warmed-up compiled PredictInto performs zero allocations,
// for the DNN and for the CNN (whose uncompiled forward still pays
// parallel-dispatch closures).
func TestCompiledPredictIntoZeroAlloc(t *testing.T) {
	rng := stats.NewRNG(9)
	dnn := NewDNN(64, []int{128, 64}, 16, rng.Split())
	cnn := NewNetwork(
		NewConv2D(4, 8, 3, 3, 1, 1, rng.Split()),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(8*16*16, 16, rng.Split()),
	)
	cases := []struct {
		name  string
		net   *Network
		shape []int
		inLen int
	}{
		{"dnn", dnn, nil, 64},
		{"cnn", cnn, []int{4, 32, 32}, 4 * 32 * 32},
	}
	for _, c := range cases {
		plan, err := Compile(c.net, c.shape...)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		inst := plan.NewInstance()
		in := make([]float64, c.inLen)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		out := make([]float64, plan.OutSize())
		inst.PredictInto(out, in) // warm up
		allocs := testing.AllocsPerRun(50, func() {
			inst.PredictInto(out, in)
		})
		if allocs != 0 {
			t.Errorf("%s: compiled PredictInto allocates %.0f/op, want 0", c.name, allocs)
		}
	}
}

// TestCompiledPlanSpecialValues feeds NaN and ±Inf through both
// representations: the packed kernels must not skip zero terms or
// reassociate in ways that launder special values.
func TestCompiledPlanSpecialValues(t *testing.T) {
	rng := stats.NewRNG(13)
	net := NewDNN(8, []int{16}, 4, rng.Split())
	plan, err := Compile(net)
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.NewInstance()
	in := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -0.0, 1e308, -1e-308, 2}
	bitsEqual(t, "special", inst.Predict(in), net.Predict(in))
}

// TestCompiledCNNSpecialValues pushes NaN and ±Inf through the conv
// stack: the fused conv-bias ReLU and the unrolled 2×2 pool must treat
// NaN exactly like the uncompiled layers (ReLU maps NaN to 0 because
// NaN > 0 is false; the pool's -Inf-seeded strict > never lets NaN
// win), and the implicit-GEMM gather must keep padding as explicit
// zeros so 0×NaN stays NaN inside the fold.
func TestCompiledCNNSpecialValues(t *testing.T) {
	rng := stats.NewRNG(17)
	net := NewNetwork(
		NewConv2D(2, 4, 3, 3, 1, 1, rng.Split()),
		NewReLU(),
		NewMaxPool2D(2),
		NewFlatten(),
		NewDense(4*4*4, 3, rng.Split()),
	)
	plan, err := Compile(net, 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	inst := plan.NewInstance()
	in := make([]float64, 2*8*8)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	in[0] = math.NaN()
	in[9] = math.Inf(1)
	in[17] = math.Inf(-1)
	in[33] = 0
	in[len(in)-1] = math.NaN()
	bitsEqual(t, "cnn-special", inst.Predict(in), net.Predict(in, 2, 8, 8))
}
