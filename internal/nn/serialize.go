package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// Serialization format (versioned, little-endian):
//
//	magic "AUNN" | uint32 version | uint32 paramTensorCount
//	per tensor: uint32 rank | rank×uint32 dims | dims-product×float64
//
// This is the on-disk model the paper's CONFIG-TEST rule loads
// (loadModel) and whose byte size Table 2 reports in the "Model Size"
// columns. Only parameters are stored — architecture is reconstructed
// from the au_config annotation, exactly as the paper regenerates the
// Python template from the primitives.

const (
	modelMagic   = "AUNN"
	modelVersion = 1
)

// SaveParams serializes the network's parameters to w.
func (n *Network) SaveParams(w io.Writer) error {
	params := n.Params()
	if _, err := w.Write([]byte(modelMagic)); err != nil {
		return fmt.Errorf("nn: write magic: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(modelVersion)); err != nil {
		return fmt.Errorf("nn: write version: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: write count: %w", err)
	}
	for i, p := range params {
		shape := p.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return fmt.Errorf("nn: write rank of tensor %d: %w", i, err)
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return fmt.Errorf("nn: write dim of tensor %d: %w", i, err)
			}
		}
		for _, v := range p.Data() {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return fmt.Errorf("nn: write data of tensor %d: %w", i, err)
			}
		}
	}
	return nil
}

// LoadParams restores parameters from r into an architecture-compatible
// network (same tensor count and shapes, as rebuilt from the same
// au_config annotation). Truncated, garbage or architecture-mismatched
// bytes return an error wrapping auerr.ErrCorruptModel; the network's
// parameters may be partially overwritten in that case and should not be
// used without a successful reload.
func (n *Network) LoadParams(r io.Reader) error {
	if err := n.loadParams(r); err != nil {
		return fmt.Errorf("%w: %w", auerr.ErrCorruptModel, err)
	}
	return nil
}

func (n *Network) loadParams(r io.Reader) error {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("nn: read magic: %w", err)
	}
	if string(magic) != modelMagic {
		return fmt.Errorf("nn: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("nn: read version: %w", err)
	}
	if version != modelVersion {
		return fmt.Errorf("nn: unsupported model version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: read count: %w", err)
	}
	params := n.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: model has %d tensors, network expects %d", count, len(params))
	}
	for i, p := range params {
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return fmt.Errorf("nn: read rank of tensor %d: %w", i, err)
		}
		want := p.Shape()
		if int(rank) != len(want) {
			return fmt.Errorf("nn: tensor %d rank %d, want %d", i, rank, len(want))
		}
		for j := 0; j < int(rank); j++ {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return fmt.Errorf("nn: read dim of tensor %d: %w", i, err)
			}
			if int(d) != want[j] {
				return fmt.Errorf("nn: tensor %d dim %d is %d, want %d", i, j, d, want[j])
			}
		}
		for j := range p.Data() {
			var bits uint64
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("nn: read data of tensor %d: %w", i, err)
			}
			p.Data()[j] = math.Float64frombits(bits)
		}
	}
	return nil
}

// SizeBytes returns the exact serialized size of the model without
// allocating the full buffer: header + per-tensor shape records + 8 bytes
// per parameter. This feeds Table 2's "Model Size" columns.
func (n *Network) SizeBytes() int {
	size := 4 + 4 + 4 // magic + version + count
	for _, p := range n.Params() {
		size += 4 + 4*len(p.Shape()) + 8*p.Size()
	}
	return size
}

// MarshalParams serializes the parameters to a fresh byte slice.
func (n *Network) MarshalParams() ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(n.SizeBytes())
	if err := n.SaveParams(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalParams restores parameters from a byte slice.
func (n *Network) UnmarshalParams(data []byte) error {
	return n.LoadParams(bytes.NewReader(data))
}
