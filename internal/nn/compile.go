// compile.go is the serving half of the two-representation architecture
// (DESIGN.md §5g). A *Network is the training representation: mutable
// weights, per-layer caches for the backward pass, parallel kernels that
// pack operands on every call. A *Plan is the compiled serving
// representation built from a network at a fixed input shape: weights
// are packed into the active kernel's layout exactly once, every buffer
// is pre-sized from the compile-time shape walk, and the ops run
// sequentially — parallelism lives above the plan (one instance per
// goroutine or replica), not inside it — so a steady-state PredictInto
// performs zero allocations and no scratch-arena traffic.
//
// A Plan snapshots the weights: training a network after compiling it
// does not change the plan. Publishing new weights means compiling a new
// plan; that is what internal/core does on every weight publish and what
// internal/serve does at snapshot install.
//
// Determinism contract: a plan's output is bit-identical to
// Network.Forward on the same weights at every width — the packed dense
// op reproduces Dot's two-rounding multiply-then-add fold, the packed
// conv op reproduces the im2col×weights FMA fold, and every activation
// op copies the layer formula exactly. Enforced by compile_test.go.
package nn

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Plan is an immutable compiled inference plan: packed weight snapshots
// plus the op sequence and buffer geometry for one input shape. A Plan
// holds no mutable state — share it freely; to execute it, create one
// *PlanInstance per goroutine with NewInstance.
type Plan struct {
	inShape []int
	inSize  int
	outSize int
	layers  []compiledLayer
}

// compiledLayer is the shared, immutable per-layer compile result; newOp
// binds it to fresh per-instance scratch.
type compiledLayer interface {
	newOp() planOp
}

// planOp executes one layer step for one instance. run must not write to
// in (identity ops return it unchanged); the returned slice is op-owned
// and valid until the op runs again.
type planOp interface {
	run(in []float64) []float64
}

// Compile builds the serving plan for net at the given input shape
// (omitted shape means a flat vector sized by the first layer). It
// returns an error when the stack contains a layer kind the compiler
// does not know or the shape walk fails; callers fall back to the
// uncompiled network in that case.
func Compile(net *Network, inShape ...int) (*Plan, error) {
	if len(net.layers) == 0 {
		return nil, fmt.Errorf("nn: compile of empty network")
	}
	if len(inShape) == 0 {
		d, ok := net.layers[0].(*Dense)
		if !ok {
			return nil, fmt.Errorf("nn: compile needs an input shape for a %s first layer", net.layers[0].Name())
		}
		inShape = []int{d.InSize}
	}
	p := &Plan{inShape: append([]int(nil), inShape...), inSize: 1}
	for _, d := range inShape {
		if d <= 0 {
			return nil, fmt.Errorf("nn: compile input shape %v", inShape)
		}
		p.inSize *= d
	}
	shape := p.inShape
	for _, l := range net.layers {
		cl, outShape, err := compileLayer(l, shape)
		if err != nil {
			return nil, err
		}
		if cl != nil { // identity layers compile to nothing
			// Peephole: fold a ReLU straight into a preceding conv's
			// bias pass. The fused op computes bias-add then the exact
			// ReLU formula per element — the same two steps the separate
			// ops perform, one 2·OutC·N-float memory sweep cheaper.
			if m, ok := cl.(*cMap); ok && m.kind == mapReLU && len(p.layers) > 0 {
				if cc, ok := p.layers[len(p.layers)-1].(*cConv); ok && !cc.fuseReLU {
					cc.fuseReLU = true
					shape = outShape
					continue
				}
			}
			p.layers = append(p.layers, cl)
		}
		shape = outShape
	}
	p.outSize = 1
	for _, d := range shape {
		p.outSize *= d
	}
	return p, nil
}

// compileLayer lowers one layer at the given input shape, returning the
// shared compile result (nil for identity) and the output shape.
func compileLayer(l Layer, shape []int) (compiledLayer, []int, error) {
	size := 1
	for _, d := range shape {
		size *= d
	}
	switch l := l.(type) {
	case *Dense:
		if size != l.InSize {
			return nil, nil, fmt.Errorf("nn: compile dense expects %d inputs, got %v", l.InSize, shape)
		}
		return &cDense{pd: tensor.PackDense(l.weights, l.bias)}, []int{l.OutSize}, nil
	case *Conv2D:
		if len(shape) != 3 || shape[0] != l.InC {
			return nil, nil, fmt.Errorf("nn: compile conv2d expects (%d,H,W), got %v", l.InC, shape)
		}
		h, w := shape[1], shape[2]
		outH := tensor.ConvOutputSize(h, l.KH, l.Stride, l.Pad)
		outW := tensor.ConvOutputSize(w, l.KW, l.Stride, l.Pad)
		if outH <= 0 || outW <= 0 {
			return nil, nil, fmt.Errorf("nn: compile conv2d kernel too large for %v", shape)
		}
		geom := tensor.NewConvGeom(l.InC, h, w, l.KH, l.KW, l.Stride, l.Pad, l.OutC)
		return &cConv{
			pc:   tensor.PrepackConv(l.weights, geom),
			bias: append([]float64(nil), l.bias.Data()...),
		}, []int{l.OutC, outH, outW}, nil
	case *MaxPool2D:
		if len(shape) != 3 {
			return nil, nil, fmt.Errorf("nn: compile maxpool expects (C,H,W), got %v", shape)
		}
		c, h, w := shape[0], shape[1], shape[2]
		oh, ow := h/l.Size, w/l.Size
		if oh == 0 || ow == 0 {
			return nil, nil, fmt.Errorf("nn: compile maxpool window %d too large for %v", l.Size, shape)
		}
		return &cPool{size: l.Size, c: c, h: h, w: w, oh: oh, ow: ow}, []int{c, oh, ow}, nil
	case *ReLU:
		return &cMap{kind: mapReLU, size: size}, shape, nil
	case *LeakyReLU:
		return &cMap{kind: mapLeakyReLU, alpha: l.Alpha, size: size}, shape, nil
	case *Sigmoid:
		return &cMap{kind: mapSigmoid, size: size}, shape, nil
	case *Tanh:
		return &cMap{kind: mapTanh, size: size}, shape, nil
	case *Softmax:
		return &cMap{kind: mapSoftmax, size: size}, shape, nil
	case *Flatten:
		return nil, []int{size}, nil
	case *Dropout:
		// Serving is inference: dropout is the identity, exactly like the
		// layer's own non-training Forward.
		return nil, shape, nil
	default:
		return nil, nil, fmt.Errorf("nn: cannot compile layer %s", l.Name())
	}
}

// InShape returns the input shape the plan was compiled for.
func (p *Plan) InShape() []int { return p.inShape }

// InSize returns the flat input length.
func (p *Plan) InSize() int { return p.inSize }

// OutSize returns the flat output length.
func (p *Plan) OutSize() int { return p.outSize }

// NewInstance allocates the per-goroutine execution state: one op per
// compiled layer, each with pre-sized scratch, all sharing the plan's
// packed weights. Instances are not goroutine-safe; the plan is.
func (p *Plan) NewInstance() *PlanInstance {
	inst := &PlanInstance{plan: p}
	for _, cl := range p.layers {
		inst.ops = append(inst.ops, cl.newOp())
	}
	return inst
}

// PlanInstance executes a compiled plan with instance-owned buffers.
type PlanInstance struct {
	plan *Plan
	ops  []planOp
}

// Plan returns the shared compiled plan this instance executes.
func (pi *PlanInstance) Plan() *Plan { return pi.plan }

// Predict runs the plan over a flat input vector, returning a fresh
// output slice. See PredictInto.
func (pi *PlanInstance) Predict(in []float64) []float64 {
	return pi.PredictInto(nil, in)
}

// PredictInto runs the plan over in, writing the output into dst when it
// has the right length (allocating it otherwise) and returning the
// filled slice. The steady state — correctly sized dst — allocates
// nothing: no op allocates, packs weights, or touches the scratch arena.
// in is never written to.
func (pi *PlanInstance) PredictInto(dst, in []float64) []float64 {
	if len(in) != pi.plan.inSize {
		auerr.Failf("nn: compiled plan expects %d inputs, got %d", pi.plan.inSize, len(in))
	}
	x := in
	for _, op := range pi.ops {
		x = op.run(x)
	}
	if len(dst) != len(x) {
		dst = make([]float64, len(x))
	}
	copy(dst, x)
	return dst
}

// --- dense ---

type cDense struct{ pd *tensor.PackedDense }

func (c *cDense) newOp() planOp {
	return &opDense{pd: c.pd, out: make([]float64, c.pd.Out())}
}

type opDense struct {
	pd  *tensor.PackedDense
	out []float64
}

func (o *opDense) run(in []float64) []float64 {
	o.pd.Forward(o.out, in)
	return o.out
}

// --- conv2d ---

// cConv holds the implicit-GEMM conv compile result: filter panels are
// prepacked exactly once here (the conv analogue of PackDense), so a
// steady-state op run gathers input columns straight into its pack
// scratch and multiplies — no column matrix, no weight packing, no
// allocation.
type cConv struct {
	pc       *tensor.PackedConv
	bias     []float64
	fuseReLU bool // apply ReLU inside the bias pass (compile peephole)
}

func (c *cConv) newOp() planOp {
	g := c.pc.Geom()
	return &opConv{
		c:          c,
		n:          g.Cols(),
		outC:       g.OutC,
		packedCols: make([]float64, c.pc.PackedColsLen()),
		out2d:      make([]float64, g.OutC*g.Cols()),
	}
}

type opConv struct {
	c          *cConv
	n, outC    int
	packedCols []float64
	out2d      []float64
}

func (o *opConv) run(in []float64) []float64 {
	o.c.pc.Forward(o.out2d, in, o.packedCols)
	for oc := 0; oc < o.outC; oc++ {
		b := o.c.bias[oc]
		row := o.out2d[oc*o.n : (oc+1)*o.n]
		if o.c.fuseReLU {
			// Bias add, then the exact mapReLU formula (x > 0 keeps x,
			// everything else — including NaN — becomes 0), per element
			// in the same order as the unfused op pair.
			for i := range row {
				if v := row[i] + b; v > 0 {
					row[i] = v
				} else {
					row[i] = 0
				}
			}
			continue
		}
		for i := range row {
			row[i] += b
		}
	}
	return o.out2d
}

// --- maxpool ---

type cPool struct{ size, c, h, w, oh, ow int }

func (c *cPool) newOp() planOp {
	return &opPool{c: c, out: make([]float64, c.c*c.oh*c.ow)}
}

type opPool struct {
	c   *cPool
	out []float64
}

func (o *opPool) run(in []float64) []float64 {
	c := o.c
	if c.size == 2 {
		// The dominant CNN case (2×2 pool) unrolled: same comparison
		// order as the general loop — (0,0),(0,1),(1,0),(1,1) against a
		// -Inf start with strict >, so NaN never wins — hence
		// bit-identical, without the window-loop overhead.
		for ch := 0; ch < c.c; ch++ {
			for oy := 0; oy < c.oh; oy++ {
				r0 := in[(ch*c.h+2*oy)*c.w:]
				r1 := in[(ch*c.h+2*oy+1)*c.w:]
				orow := o.out[(ch*c.oh+oy)*c.ow:]
				for ox := 0; ox < c.ow; ox++ {
					best := math.Inf(-1)
					if v := r0[2*ox]; v > best {
						best = v
					}
					if v := r0[2*ox+1]; v > best {
						best = v
					}
					if v := r1[2*ox]; v > best {
						best = v
					}
					if v := r1[2*ox+1]; v > best {
						best = v
					}
					orow[ox] = best
				}
			}
		}
		return o.out
	}
	for ch := 0; ch < c.c; ch++ {
		for oy := 0; oy < c.oh; oy++ {
			for ox := 0; ox < c.ow; ox++ {
				best := math.Inf(-1)
				for dy := 0; dy < c.size; dy++ {
					for dx := 0; dx < c.size; dx++ {
						iy, ix := oy*c.size+dy, ox*c.size+dx
						if v := in[(ch*c.h+iy)*c.w+ix]; v > best {
							best = v
						}
					}
				}
				o.out[(ch*c.oh+oy)*c.ow+ox] = best
			}
		}
	}
	return o.out
}

// --- elementwise maps ---

type mapKind int

const (
	mapReLU mapKind = iota
	mapLeakyReLU
	mapSigmoid
	mapTanh
	mapSoftmax
)

type cMap struct {
	kind  mapKind
	alpha float64
	size  int
}

func (c *cMap) newOp() planOp {
	return &opMap{c: c, out: make([]float64, c.size)}
}

type opMap struct {
	c   *cMap
	out []float64
}

func (o *opMap) run(in []float64) []float64 {
	out := o.out
	switch o.c.kind {
	case mapReLU:
		for i, x := range in {
			if x > 0 {
				out[i] = x
			} else {
				out[i] = 0
			}
		}
	case mapLeakyReLU:
		for i, x := range in {
			if x < 0 {
				out[i] = o.c.alpha * x
			} else {
				out[i] = x
			}
		}
	case mapSigmoid:
		for i, x := range in {
			out[i] = 1 / (1 + math.Exp(-x))
		}
	case mapTanh:
		for i, x := range in {
			out[i] = math.Tanh(x)
		}
	case mapSoftmax:
		max := math.Inf(-1)
		for _, x := range in {
			if x > max {
				max = x
			}
		}
		sum := 0.0
		for i, x := range in {
			e := math.Exp(x - max)
			out[i] = e
			sum += e
		}
		if sum == 0 {
			auerr.Failf("nn: softmax sum underflowed to zero")
		}
		inv := 1 / sum
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}
