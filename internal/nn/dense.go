package nn

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// Dense is a fully connected layer computing out = W·in + b, the building
// block of the paper's DNN model type (e.g. the two hidden layers with
// 256 and 64 neurons configured for the Mario subject).
type Dense struct {
	InSize, OutSize int

	weights *tensor.Tensor // (OutSize, InSize)
	bias    *tensor.Tensor // (OutSize)
	gradW   *tensor.Tensor
	gradB   *tensor.Tensor

	// Reused scratch (DESIGN.md §5e): lastIn is an allocation-free view
	// of the current input for the backward pass; out and gradIn are
	// layer-owned destinations recycled across calls, so the steady-state
	// forward/backward makes no heap allocations. Both are fully
	// overwritten each call; callers needing a result to survive the next
	// pass must Clone it.
	lastIn *tensor.Tensor
	out    *tensor.Tensor
	gradIn *tensor.Tensor
}

// NewDense constructs a fully connected layer with He-initialized weights
// drawn from rng, appropriate for the ReLU activations used throughout.
func NewDense(inSize, outSize int, rng *stats.RNG) *Dense {
	if inSize <= 0 || outSize <= 0 {
		auerr.Failf("nn: invalid Dense dimensions %dx%d", inSize, outSize)
	}
	d := &Dense{
		InSize:  inSize,
		OutSize: outSize,
		weights: tensor.New(outSize, inSize),
		bias:    tensor.New(outSize),
		gradW:   tensor.New(outSize, inSize),
		gradB:   tensor.New(outSize),
	}
	scale := math.Sqrt(2.0 / float64(inSize))
	for i := range d.weights.Data() {
		d.weights.Data()[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward computes W·in + b. The input must be a vector of length InSize
// (any shape with that many elements is accepted and flattened).
func (d *Dense) Forward(in *tensor.Tensor) *tensor.Tensor {
	if in.Size() != d.InSize {
		auerr.Failf("nn: Dense expects %d inputs, got %d", d.InSize, in.Size())
	}
	d.lastIn = tensor.ViewOf(d.lastIn, in.Data(), in.Size())
	d.out = tensor.Reuse(d.out, d.OutSize)
	out := d.out
	w := d.weights.Data()
	x := d.lastIn.Data()
	bd := d.bias.Data()
	for o := 0; o < d.OutSize; o++ {
		row := w[o*d.InSize : (o+1)*d.InSize]
		out.Data()[o] = tensor.Dot(row, x) + bd[o]
	}
	return out
}

// Backward accumulates dL/dW = gradOut ⊗ in and dL/db = gradOut, and
// returns dL/din = Wᵀ·gradOut.
func (d *Dense) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if gradOut.Size() != d.OutSize {
		auerr.Failf("nn: Dense backward expects %d grads, got %d", d.OutSize, gradOut.Size())
	}
	if d.lastIn == nil {
		auerr.Failf("nn: Dense Backward before Forward")
	}
	g := gradOut.Data()
	x := d.lastIn.Data()
	gw := d.gradW.Data()
	for o := 0; o < d.OutSize; o++ {
		go_ := g[o]
		d.gradB.Data()[o] += go_
		row := gw[o*d.InSize : (o+1)*d.InSize]
		for i := 0; i < d.InSize; i++ {
			row[i] += go_ * x[i]
		}
	}
	d.gradIn = tensor.Reuse(d.gradIn, d.InSize)
	gradIn := d.gradIn
	gradIn.Fill(0)
	w := d.weights.Data()
	gi := gradIn.Data()
	for o := 0; o < d.OutSize; o++ {
		go_ := g[o]
		if go_ == 0 {
			continue
		}
		row := w[o*d.InSize : (o+1)*d.InSize]
		for i := 0; i < d.InSize; i++ {
			gi[i] += go_ * row[i]
		}
	}
	return gradIn
}

// Params returns the weight and bias tensors.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.weights, d.bias} }

// Grads returns the accumulated gradient tensors.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.gradW, d.gradB} }

// ZeroGrads clears the accumulated gradients.
func (d *Dense) ZeroGrads() {
	d.gradW.Fill(0)
	d.gradB.Fill(0)
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.InSize, d.OutSize) }
