// Package nn is Autonomizer's from-scratch neural-network substrate,
// standing in for the TensorFlow backend used by the paper. It provides
// the two model families the framework supports by default — fully
// connected networks (DNN) and convolutional networks (CNN) — together
// with the Adam optimizer the paper names for supervised learning and the
// plumbing the Q-learning package builds on.
//
// The package follows a conventional layer/optimizer decomposition:
// layers implement Forward/Backward over tensors and expose their
// parameters and gradients; a Network chains layers; optimizers update
// parameter tensors in place from accumulated gradients.
package nn

import "github.com/autonomizer/autonomizer/internal/tensor"

// Layer is one differentiable stage of a network. Forward consumes an
// input tensor and produces the activation; Backward consumes the
// gradient of the loss with respect to the layer's output and returns the
// gradient with respect to its input, accumulating parameter gradients
// internally along the way.
//
// Layers are stateful across a Forward/Backward pair (they cache the
// values needed by the backward pass) and are not goroutine-safe.
type Layer interface {
	// Forward computes the layer's output for the given input.
	Forward(in *tensor.Tensor) *tensor.Tensor
	// Backward propagates gradOut (d loss / d output) back through the
	// layer, returning d loss / d input and accumulating parameter
	// gradients.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameter tensors, possibly
	// empty. The optimizer mutates these in place.
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors aligned 1:1 with Params.
	Grads() []*tensor.Tensor
	// ZeroGrads clears all accumulated gradients.
	ZeroGrads()
	// Name identifies the layer kind for serialization and debugging.
	Name() string
}

// ParamCount reports the total number of scalar parameters in a layer.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Size()
	}
	return n
}
