package nn

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

func TestLeakyReLUForwardBackward(t *testing.T) {
	l := NewLeakyReLU(0.1)
	out := l.Forward(tensor.FromSlice([]float64{-2, 0, 3}, 3))
	want := []float64{-0.2, 0, 3}
	for i := range want {
		if math.Abs(out.Data()[i]-want[i]) > 1e-12 {
			t.Fatalf("forward = %v", out.Data())
		}
	}
	g := l.Backward(tensor.FromSlice([]float64{1, 1, 1}, 3))
	if math.Abs(g.Data()[0]-0.1) > 1e-12 || g.Data()[2] != 1 {
		t.Errorf("backward = %v", g.Data())
	}
	if NewLeakyReLU(0).Alpha != 0.01 {
		t.Error("default alpha wrong")
	}
}

func TestLeakyReLUGradCheck(t *testing.T) {
	rng := stats.NewRNG(1)
	n := NewNetwork(NewDense(3, 5, rng), NewLeakyReLU(0.2), NewDense(5, 2, rng))
	in := tensor.FromSlice([]float64{0.3, -0.8, 1.2}, 3)
	target := tensor.FromSlice([]float64{1, -1}, 2)
	checkGradients(t, n, MSE{}, in, target)
}

func TestDropoutTrainingVsInference(t *testing.T) {
	rng := stats.NewRNG(2)
	d := NewDropout(0.5, rng)
	in := tensor.New(1000)
	in.Fill(1)
	out := d.Forward(in)
	zeros, scaled := 0, 0
	for _, v := range out.Data() {
		switch v {
		case 0:
			zeros++
		case 2: // 1/keep = 2
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000 at rate 0.5", zeros)
	}
	// Expected output mass preserved (inverted dropout).
	sum := 0.0
	for _, v := range out.Data() {
		sum += v
	}
	if math.Abs(sum-1000) > 150 {
		t.Errorf("output mass %v, want ~1000", sum)
	}
	// Inference: identity.
	d.SetTraining(false)
	out2 := d.Forward(in)
	for _, v := range out2.Data() {
		if v != 1 {
			t.Fatal("inference dropout not identity")
		}
	}
}

func TestDropoutBackwardUsesMask(t *testing.T) {
	rng := stats.NewRNG(3)
	d := NewDropout(0.5, rng)
	in := tensor.New(100)
	in.Fill(1)
	out := d.Forward(in)
	g := d.Backward(tensor.FromSlice(make([]float64, 100), 100).Apply(func(float64) float64 { return 1 }))
	for i := range g.Data() {
		if (out.Data()[i] == 0) != (g.Data()[i] == 0) {
			t.Fatal("gradient mask does not match forward mask")
		}
	}
}

func TestDropoutPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rate 1 accepted")
		}
	}()
	NewDropout(1, stats.NewRNG(1))
}

func TestRMSPropConverges(t *testing.T) {
	rng := stats.NewRNG(4)
	n := NewDNN(2, nil, 1, rng)
	n.SetOptimizer(NewRMSProp(n.Params(), 0.01))
	in := tensor.FromSlice([]float64{1, 1}, 2)
	target := tensor.FromSlice([]float64{3}, 1)
	var last float64
	for i := 0; i < 500; i++ {
		last = n.TrainStep(in, target)
	}
	if last > 1e-5 {
		t.Errorf("RMSProp did not converge: %v", last)
	}
	if NewRMSProp(nil, 0.1).Name() != "rmsprop" {
		t.Error("name wrong")
	}
}

func TestRMSPropMismatchPanics(t *testing.T) {
	r := NewRMSProp([]*tensor.Tensor{tensor.New(2)}, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("gradient count mismatch accepted")
		}
	}()
	r.Step(nil)
}
