package nn

import "github.com/autonomizer/autonomizer/internal/tensor"

// Replicable marks a layer that can produce worker replicas for
// data-parallel training. A replica shares the original's parameter
// tensors (forward/backward only read them) but owns private gradient
// accumulators and forward-pass caches, so replicas of one network may
// run Forward/Backward concurrently as long as no optimizer step mutates
// the shared parameters at the same time.
//
// A layer that cannot be replicated safely (e.g. Dropout, whose RNG draw
// order is inherently sequential) simply does not implement the
// interface; networks containing one fall back to sequential training.
type Replicable interface {
	// Replicate returns a worker replica: shared parameters, private
	// gradients and caches.
	Replicate() Layer
}

// Replicate implements Replicable: the replica shares weights/bias and
// owns fresh gradient tensors and caches.
func (d *Dense) Replicate() Layer {
	return &Dense{
		InSize: d.InSize, OutSize: d.OutSize,
		weights: d.weights, bias: d.bias,
		gradW: tensor.New(d.OutSize, d.InSize),
		gradB: tensor.New(d.OutSize),
	}
}

// Replicate implements Replicable: shared kernel/bias, private gradients
// and im2col cache.
func (c *Conv2D) Replicate() Layer {
	return &Conv2D{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW,
		Stride: c.Stride, Pad: c.Pad,
		weights: c.weights, bias: c.bias,
		gradW: tensor.New(c.OutC, c.InC*c.KH*c.KW),
		gradB: tensor.New(c.OutC),
	}
}

// Replicate implements Replicable (pooling state is per-replica).
func (m *MaxPool2D) Replicate() Layer { return &MaxPool2D{Size: m.Size} }

// Replicate implements Replicable (the mask cache is per-replica).
func (r *ReLU) Replicate() Layer { return &ReLU{} }

// Replicate implements Replicable.
func (s *Sigmoid) Replicate() Layer { return &Sigmoid{} }

// Replicate implements Replicable.
func (t *Tanh) Replicate() Layer { return &Tanh{} }

// Replicate implements Replicable.
func (f *Flatten) Replicate() Layer { return &Flatten{} }

// Replicate implements Replicable (softmax is stateless).
func (s *Softmax) Replicate() Layer { return &Softmax{} }

// Replicate implements Replicable.
func (l *LeakyReLU) Replicate() Layer { return &LeakyReLU{Alpha: l.Alpha} }

// Replica returns a worker replica of the whole network — every layer
// replicated per Replicable, the loss shared (losses are stateless
// values), no optimizer — or (nil, false) if any layer does not support
// replication. The replica is suitable for concurrent Forward/Backward
// while parameters are quiescent; its accumulated gradients are read via
// Grads as usual.
func (n *Network) Replica() (*Network, bool) {
	layers := make([]Layer, len(n.layers))
	for i, l := range n.layers {
		r, ok := l.(Replicable)
		if !ok {
			return nil, false
		}
		layers[i] = r.Replicate()
	}
	return &Network{layers: layers, loss: n.loss}, true
}
