package nn

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"

	"github.com/autonomizer/autonomizer/internal/tensor"
)

// stepCounter resolves the optimizer-step counter at construction time
// (optimizers are built once per model, off the hot path); with
// telemetry disabled it returns nil and Step pays one branch.
func stepCounter(optimizer string) *obs.Counter {
	return obs.Default().Counter("autonomizer_nn_optimizer_steps_total",
		"Parameter updates applied, per optimizer kind.",
		obs.Labels{"optimizer": optimizer})
}

// Optimizer updates a set of parameter tensors in place using their
// accumulated gradients. Implementations are bound to a specific
// parameter list at construction so per-parameter state (e.g. Adam
// moments) stays aligned.
type Optimizer interface {
	// Step applies one update using the given gradients (aligned 1:1
	// with the parameters captured at construction) and clears nothing:
	// callers zero gradients themselves.
	Step(grads []*tensor.Tensor)
	// Name identifies the optimizer ("adam", "sgd").
	Name() string
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	params   []*tensor.Tensor
	velocity []*tensor.Tensor
	steps    *obs.Counter
}

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*tensor.Tensor, lr, momentum float64) *SGD {
	s := &SGD{LR: lr, Momentum: momentum, params: params, steps: stepCounter("sgd")}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Shape()...)
		}
	}
	return s
}

// Step applies p -= lr*(g + momentum-velocity).
func (s *SGD) Step(grads []*tensor.Tensor) {
	if len(grads) != len(s.params) {
		auerr.Failf("nn: SGD gradient count mismatch")
	}
	s.steps.Inc()
	for i, p := range s.params {
		g := grads[i]
		if s.velocity != nil {
			v := s.velocity[i]
			for j := range v.Data() {
				v.Data()[j] = s.Momentum*v.Data()[j] + g.Data()[j]
			}
			g = v
		}
		for j := range p.Data() {
			p.Data()[j] -= s.LR * g.Data()[j]
		}
	}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Adam implements Kingma & Ba's Adam optimizer — the paper's named
// algorithm for supervised-learning autonomization ("AdamOpt").
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	params []*tensor.Tensor
	m, v   []*tensor.Tensor
	t      int
	steps  *obs.Counter
}

// NewAdam constructs an Adam optimizer with the canonical defaults
// (β₁=0.9, β₂=0.999, ε=1e-8) over params.
func NewAdam(params []*tensor.Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params: params,
		m:      make([]*tensor.Tensor, len(params)),
		v:      make([]*tensor.Tensor, len(params)),
		steps:  stepCounter("adam"),
	}
	for i, p := range params {
		a.m[i] = tensor.New(p.Shape()...)
		a.v[i] = tensor.New(p.Shape()...)
	}
	return a
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step(grads []*tensor.Tensor) {
	if len(grads) != len(a.params) {
		auerr.Failf("nn: Adam gradient count mismatch")
	}
	a.steps.Inc()
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		g := grads[i].Data()
		m := a.m[i].Data()
		v := a.v[i].Data()
		pd := p.Data()
		for j := range pd {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mhat := m[j] / c1
			vhat := v[j] / c2
			pd[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// ClipGradients scales grads in place so their global L2 norm does not
// exceed maxNorm; a no-op when already within bounds. Used by the RL
// training loop to keep early bootstrapped targets from exploding.
func ClipGradients(grads []*tensor.Tensor, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	total := 0.0
	for _, g := range grads {
		n := g.L2Norm()
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, g := range grads {
		g.ScaleInPlace(scale)
	}
}
