package serve

import (
	"context"
	"fmt"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/parallel"
)

// engine is one immutable, servable model snapshot: a Test-mode runtime
// holding the materialized network, a pool of lock-free predictor
// replicas (shared weights, private activation caches — the PR-1
// fan-out primitive), and the snapshot's version. Reloads never mutate
// an engine; they build a new one and atomically swap the pointer, so
// an in-flight batch keeps computing on the snapshot it started with.
type engine struct {
	name    string
	version int
	spec    core.ModelSpec
	rt      *core.Runtime
	inSize  int
	outSize int

	// pool hands out destination-passing predictor replicas to batch
	// shards. Capacity is the replica count; a shard blocks only if more
	// shards than replicas are ever in flight, which predictBatch's
	// chunking prevents.
	pool     chan func(in, out []float64) []float64
	replicas int

	// packed records that the model's serving plan compiled at engine
	// build time — weights BLIS-packed once, before the engine was
	// published — so the first request after a hot reload pays no packing
	// or compilation cost. False only for architectures the plan compiler
	// does not support, which serve through network replicas instead.
	packed bool
}

// buildEngine constructs a servable engine from a model spec and a
// SaveModel image. The runtime inside is deliberately detached from
// process-wide telemetry (WithMetrics(nil)): serving engines come and
// go with every reload and must not steal the host's db/model gauges.
func buildEngine(name string, spec core.ModelSpec, data []byte, version, replicas int) (*engine, error) {
	inSize, outSize, err := core.SavedModelSizes(data)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	spec.Name = name
	rt := core.NewRuntimeWith(core.Test, core.WithMetrics(nil))
	rt.LoadModel(name, data)
	if err := rt.ConfigCtx(context.Background(), spec); err != nil {
		return nil, err
	}
	if replicas < 1 {
		replicas = parallel.Workers()
	}
	e := &engine{
		name: name, version: version, spec: spec, rt: rt,
		inSize: inSize, outSize: outSize,
		pool: make(chan func(in, out []float64) []float64, replicas), replicas: replicas,
	}
	// Compile the serving plan before the engine is published: the swap
	// installs an engine whose weights are already packed, so a hot
	// reload never shows a first-request packing spike.
	e.packed = rt.CompileModel(name) == nil
	for i := 0; i < replicas; i++ {
		fn, err := rt.PredictorInto(name)
		if err != nil {
			return nil, err
		}
		e.pool <- fn
	}
	return e, nil
}

// checkInput validates one request vector against the snapshot's input
// size before it joins a batch, so one malformed request fails alone
// instead of poisoning its batchmates.
func (e *engine) checkInput(in []float64) error {
	if len(in) != e.inSize {
		return auerr.E(auerr.ErrSpecInvalid, "serve: model %q expects %d inputs, got %d",
			e.name, e.inSize, len(in))
	}
	return nil
}

// predictBatch runs one coalesced minibatch through the replica pool on
// the parallel engine: the batch is chunked across replicas, each shard
// forwards its examples independently, and outputs land at their
// request's index. Each example runs the exact same per-example forward
// pass as an in-process PredictCtx (same weights, same accumulation
// order), so batching is bit-identical by construction regardless of
// batch composition or worker count.
func (e *engine) predictBatch(ins [][]float64) [][]float64 {
	out := make([][]float64, len(ins))
	flat := make([]float64, len(ins)*e.outSize)
	for i := range out {
		out[i] = flat[i*e.outSize : (i+1)*e.outSize]
	}
	e.predictBatchInto(ins, out)
	return out
}

// predictBatchInto is the destination-passing predictBatch: outs[i] must
// have length outSize and receives the prediction for ins[i]. Beyond the
// outs buffers (which the batcher carves from one flat per-batch
// allocation), the steady-state batch performs no heap allocation — the
// replica closures write straight into their request's slot.
func (e *engine) predictBatchInto(ins, outs [][]float64) {
	if len(ins) == 1 {
		fn := <-e.pool
		outs[0] = fn(ins[0], outs[0])
		e.pool <- fn
		return
	}
	grain := (len(ins) + e.replicas - 1) / e.replicas
	parallel.For(len(ins), grain, func(lo, hi int) {
		fn := <-e.pool
		defer func() { e.pool <- fn }()
		for i := lo; i < hi; i++ {
			outs[i] = fn(ins[i], outs[i])
		}
	})
}
