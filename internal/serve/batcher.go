package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// batchCall is one request's slot in the batching queue. The submitter
// blocks on done; the collector fills out/err and closes it.
type batchCall struct {
	ctx  context.Context
	in   []float64
	out  []float64
	err  error
	enq  time.Time
	done chan struct{}
}

// batcher is the dynamic micro-batcher for one served model. Window
// semantics (DESIGN.md §5d): the first request to arrive at an idle
// batcher opens a batching window of maxDelay; the batch dispatches
// when the window closes or the batch reaches maxBatch, whichever comes
// first. A lone request therefore waits up to maxDelay — the price of
// coalescing — while a saturated queue dispatches full batches back to
// back with no added latency. Backpressure is a bounded queue: submit
// on a full queue fails immediately with auerr.ErrOverloaded rather
// than queuing unboundedly.
type batcher struct {
	model    *servedModel
	queue    chan *batchCall
	maxBatch int
	maxDelay time.Duration
	met      *metricsSet

	// shed counts requests rejected by backpressure for this model —
	// the /statusz shed figure; shedC is its metric twin (nil-safe).
	shed  atomic.Uint64
	shedC *obs.Counter

	stop    chan struct{}
	stopped sync.WaitGroup
	closed  atomic.Bool
}

func newBatcher(m *servedModel, maxBatch int, maxDelay time.Duration, depth int, met *metricsSet) *batcher {
	b := &batcher{
		model:    m,
		queue:    make(chan *batchCall, depth),
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		met:      met,
		shedC:    met.shedCounter(m.name),
		stop:     make(chan struct{}),
	}
	b.stopped.Add(1)
	go b.loop()
	return b
}

// depth reports the live queue occupancy (the queue-depth gauge).
func (b *batcher) depth() int { return len(b.queue) }

// submit enqueues one request and blocks until its batch executes or
// ctx is done. A full queue rejects immediately with ErrOverloaded (the
// HTTP surface turns that into 429); a canceled caller stops waiting —
// the collector may still compute the batch, but the result is
// discarded.
func (b *batcher) submit(ctx context.Context, in []float64) ([]float64, error) {
	if b.closed.Load() {
		return nil, auerr.E(auerr.ErrUnknownModel, "serve: model %q is shutting down", b.model.name)
	}
	c := &batchCall{ctx: ctx, in: in, enq: time.Now(), done: make(chan struct{})}
	select {
	case b.queue <- c:
	default:
		b.shed.Add(1)
		b.shedC.Inc()
		b.met.overloaded()
		return nil, auerr.E(auerr.ErrOverloaded, "serve: model %q queue full (%d waiting)",
			b.model.name, cap(b.queue))
	}
	select {
	case <-c.done:
		return c.out, c.err
	case <-ctx.Done():
		return nil, auerr.Canceled(ctx)
	}
}

// close stops the collector and fails whatever was still queued. Safe
// to call once; submit refuses new work afterwards.
func (b *batcher) close() {
	if b.closed.Swap(true) {
		return
	}
	close(b.stop)
	b.stopped.Wait()
	for {
		select {
		case c := <-b.queue:
			c.err = auerr.E(auerr.ErrUnknownModel, "serve: model %q is shutting down", b.model.name)
			close(c.done)
		default:
			return
		}
	}
}

// loop is the collector goroutine: block for the window-opening
// request, fill the batch until maxBatch or the window deadline, then
// execute and fan the results back out.
func (b *batcher) loop() {
	defer b.stopped.Done()
	for {
		var first *batchCall
		select {
		case first = <-b.queue:
		case <-b.stop:
			return
		}
		batch := append(make([]*batchCall, 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxDelay)
	fill:
		for len(batch) < b.maxBatch {
			select {
			case c := <-b.queue:
				batch = append(batch, c)
			case <-timer.C:
				break fill
			case <-b.stop:
				timer.Stop()
				b.execute(batch)
				return
			}
		}
		timer.Stop()
		b.execute(batch)
	}
}

// execute runs one coalesced batch on the engine current at dispatch
// time. Requests whose context died in the queue, or whose input does
// not match the engine's snapshot, fail individually; the survivors run
// as one minibatch on the replica pool. A panic escaping the kernels is
// recovered here and surfaced as ErrInvariant on every member — one
// poisoned batch must not take down the collector.
//
// Observability: every member's queue wait and the batch's assembly
// window land in the per-stage histograms, and — when tracing is on —
// the batch opens a serve.batch span continuing the first live
// request's trace, with a serve.engine_predict child carrying one span
// link per coalesced request, so a trace shows exactly which
// batchmates shared the forward pass.
func (b *batcher) execute(batch []*batchCall) {
	eng := b.model.eng.Load()
	now := time.Now()
	waits := make([]float64, len(batch))
	for i, c := range batch {
		waits[i] = now.Sub(c.enq).Seconds()
	}
	b.met.observeBatch(len(batch), waits)
	if b.met != nil {
		for _, w := range waits {
			b.met.stageObserve(stageQueueWait, w)
		}
		b.met.stageObserve(stageBatchAssemble, now.Sub(batch[0].enq).Seconds())
	}

	live := batch[:0]
	for _, c := range batch {
		switch {
		case c.ctx != nil && c.ctx.Err() != nil:
			c.err = auerr.Canceled(c.ctx)
			close(c.done)
		case eng.checkInput(c.in) != nil:
			c.err = eng.checkInput(c.in)
			close(c.done)
		default:
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return
	}
	var bsp, psp *obs.Span
	if obs.TracingEnabled() {
		bctx, sp := obs.StartSpan(live[0].ctx, "serve.batch")
		bsp = sp
		_, psp = obs.StartSpan(bctx, "serve.engine_predict")
		for _, c := range live {
			if tid, sid, ok := obs.SpanContextFrom(c.ctx); ok {
				psp.AddLink(tid, sid)
			}
		}
	}
	// One flat allocation per batch holds every member's output; the
	// replica closures write straight into the per-request slots, so the
	// cost amortizes over the whole batch instead of one alloc per call.
	ins := make([][]float64, len(live))
	outs := make([][]float64, len(live))
	flat := make([]float64, len(live)*eng.outSize)
	for i, c := range live {
		ins[i] = c.in
		outs[i] = flat[i*eng.outSize : (i+1)*eng.outSize]
	}
	var batchErr error
	tm := b.met.stageTimer(stageEnginePredict)
	func() {
		defer func() {
			if r := recover(); r != nil {
				batchErr = auerr.FromPanic(r)
				for _, c := range live {
					c.err = batchErr
				}
			}
		}()
		eng.predictBatchInto(ins, outs)
		for i, c := range live {
			c.out = outs[i]
		}
	}()
	tm.Stop()
	psp.End(batchErr)
	bsp.End(batchErr)
	for _, c := range live {
		close(c.done)
	}
}
