// Package serve is the networked model-serving subsystem: it puts a
// trained Autonomizer model behind a socket. The Server exposes the
// query-side primitives over HTTP/JSON (with a length-prefixed binary
// fast path for Predict), coalescing concurrent single-example requests
// into minibatch forward passes on the parallel engine through a
// dynamic micro-batcher; the Client implements the same query surface
// as the in-process Runtime (the root package's Querier interface), so
// a host program switches between embedded and remote inference with
// one constructor change.
//
// Contract highlights (DESIGN.md §5d):
//
//   - Batching never changes results: each example in a coalesced batch
//     runs the exact same per-example forward pass as an in-process
//     PredictCtx, so responses are bit-identical at any batch shape.
//   - Backpressure is explicit: each model has a bounded request queue;
//     a full queue rejects immediately with auerr.ErrOverloaded, which
//     the HTTP surface maps to 429.
//   - Reloads are atomic: POST /models/{name}/reload builds a fresh
//     engine off to the side and swaps it in with one pointer store;
//     in-flight batches finish on the engine they started with.
package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// Wire types of the JSON surface. Every error response is
// errorResponse-shaped; its Class field carries the auerr class
// vocabulary so remote callers can reconstruct typed errors (see
// auerr.FromClass).
type (
	// PredictRequest asks for one forward pass of a named model.
	PredictRequest struct {
		Model string    `json:"model"`
		Input []float64 `json:"input"`
	}
	// PredictResponse carries the model output vector.
	PredictResponse struct {
		Output []float64 `json:"output"`
	}
	// ActRequest asks for the greedy action of a QLearn model on a
	// state vector (the remote au_NN for RL models in TS mode).
	ActRequest struct {
		Model string    `json:"model"`
		State []float64 `json:"state"`
	}
	// ActResponse carries the chosen discrete action index.
	ActResponse struct {
		Action int `json:"action"`
	}
	// ModelInfo describes one served model on GET /v1/models.
	ModelInfo struct {
		Name    string `json:"name"`
		Version int    `json:"version"`
		InSize  int    `json:"in_size"`
		OutSize int    `json:"out_size"`
	}
	// ReloadResponse acknowledges a hot reload with the new version.
	ReloadResponse struct {
		Model   string `json:"model"`
		Version int    `json:"version"`
	}
	// SnapshotResponse acknowledges a snapshot install (POST
	// /v1/snapshot) with how many models the image carried.
	SnapshotResponse struct {
		Models int `json:"models"`
	}
	// ObserveRequest reports ground truth for a prediction a client
	// served earlier: the drift monitor folds the pair's mean squared
	// error into the model's rolling window (POST /v1/observe).
	ObserveRequest struct {
		Model     string    `json:"model"`
		Predicted []float64 `json:"predicted"`
		Observed  []float64 `json:"observed"`
	}
	// ObserveResponse carries the model's updated drift verdict.
	ObserveResponse struct {
		Model     string  `json:"model"`
		Loss      float64 `json:"loss"`
		Samples   int     `json:"samples"`
		Threshold float64 `json:"threshold"`
		Healthy   bool    `json:"healthy"`
	}
	// errorResponse is the uniform error body: a human-readable message
	// plus the machine-readable auerr class.
	errorResponse struct {
		Error string `json:"error"`
		Class string `json:"class,omitempty"`
	}
)

// BinaryContentType marks the length-prefixed binary Predict framing on
// POST /v1/predict. Request body:
//
//	"AUF1" | uint32 nameLen | name | uint32 n | n × float64   (little-endian)
//
// Response body (status 200):
//
//	uint32 n | n × float64
//
// Errors come back as the usual JSON errorResponse with a non-2xx
// status, so the fast path changes only the payload encoding, not the
// error contract.
const BinaryContentType = "application/x-autonomizer-predict"

// binaryMagic guards against JSON accidentally posted with the binary
// content type.
const binaryMagic = "AUF1"

// Frame caps: a corrupt length prefix must fail cleanly, not allocate
// gigabytes (same posture as db.Store.Load).
const (
	maxNameLen  = 4 << 10
	maxVecLen   = 1 << 24
	maxJSONBody = 256 << 20
)

// encodePredictFrame renders the binary request framing.
func encodePredictFrame(model string, in []float64) []byte {
	buf := make([]byte, 0, len(binaryMagic)+4+len(model)+4+8*len(in))
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(model)))
	buf = append(buf, model...)
	buf = appendVector(buf, in)
	return buf
}

// decodePredictFrame parses the binary request framing.
func decodePredictFrame(r io.Reader) (model string, in []float64, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return "", nil, fmt.Errorf("serve: read frame magic: %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return "", nil, fmt.Errorf("serve: bad frame magic %q", magic)
	}
	var nameLen uint32
	if err := binary.Read(r, binary.LittleEndian, &nameLen); err != nil {
		return "", nil, fmt.Errorf("serve: read name length: %w", err)
	}
	if nameLen > maxNameLen {
		return "", nil, fmt.Errorf("serve: implausible model-name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", nil, fmt.Errorf("serve: read model name: %w", err)
	}
	in, err = readVector(r)
	if err != nil {
		return "", nil, err
	}
	return string(name), in, nil
}

// DecodePredictFrame parses the binary Predict request framing. The
// fleet router uses it to sniff the model name off a frame it then
// forwards byte-for-byte to the model's owner.
func DecodePredictFrame(r io.Reader) (model string, in []float64, err error) {
	return decodePredictFrame(r)
}

// appendVector appends the length-prefixed float64 encoding of v.
func appendVector(buf []byte, v []float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// readVector reads one length-prefixed float64 vector.
func readVector(r io.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("serve: read vector length: %w", err)
	}
	if n > maxVecLen {
		return nil, fmt.Errorf("serve: implausible vector length %d", n)
	}
	raw := make([]byte, 8*int(n))
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("serve: read vector: %w", err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}

// statusFor maps an auerr class to the HTTP status the server responds
// with; the client's errorFromResponse inverts it through the class
// field, not the status, so the two stay decoupled.
func statusFor(err error) int {
	switch auerr.Class(err) {
	case "overloaded":
		return 429
	case "unavailable":
		return 503
	case "unknown_model":
		return 404
	case "spec_invalid", "missing_input", "mode_violation", "not_materialized":
		return 400
	case "canceled":
		// Client went away mid-call; 503 tells a proxy the work was shed.
		return 503
	default:
		return 500
	}
}
