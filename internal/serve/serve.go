package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Config tunes a Server. The zero value selects the documented
// defaults, so NewServer(Config{}) is a working batching server.
type Config struct {
	// MaxBatch caps how many requests one batch coalesces (default 32).
	MaxBatch int
	// MaxDelay is the batching window: how long the first request of a
	// batch waits for company before dispatch (default 2ms). Lower it
	// for latency-sensitive single-stream callers; raise it to fatten
	// batches under bursty load.
	MaxDelay time.Duration
	// QueueDepth bounds each model's request queue; a full queue sheds
	// load with ErrOverloaded/429 (default 256).
	QueueDepth int
	// Replicas sets each model's predictor-replica pool size — the
	// intra-batch parallelism (default: the parallel engine's width).
	Replicas int
	// Source, when set, serves empty-body POST /models/{name}/reload by
	// pulling the fresh snapshot from here (e.g. a FileSource).
	Source Source
	// Registry overrides the metrics registry (default obs.Default();
	// nil default means telemetry off, the usual zero-cost posture).
	Registry *obs.Registry
	// Logger overrides the structured logger (default obs.Logger()).
	Logger *slog.Logger
	// DriftThreshold is the rolling mean-squared-error above which a
	// model's drift verdict flips unhealthy, turning /healthz?deep=1
	// not-ready (DESIGN.md §5h). Zero reads AUTONOMIZER_DRIFT_THRESHOLD,
	// and with that unset too the monitor records and exports drift but
	// never flips readiness. Negative forces monitor-only mode.
	DriftThreshold float64
	// DriftWindow is the rolling window drift loss is averaged over
	// (default 1 minute).
	DriftWindow time.Duration
	// DriftMinSamples is how many observations the window must hold
	// before a drift verdict is rendered (default 8).
	DriftMinSamples int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 32
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 256
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Logger == nil {
		c.Logger = obs.Logger()
	}
	if c.DriftThreshold == 0 {
		if s := os.Getenv("AUTONOMIZER_DRIFT_THRESHOLD"); s != "" {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v < 0 {
				obs.Logger().Warn("bad AUTONOMIZER_DRIFT_THRESHOLD; drift monitor stays monitor-only",
					"value", s, "err", err)
			} else {
				c.DriftThreshold = v
			}
		}
	}
	if c.DriftThreshold < 0 {
		c.DriftThreshold = 0
	}
	return c
}

// servedModel is one model's serving state: the atomically swappable
// engine (the live snapshot), the micro-batcher feeding it, the
// per-model latency summary and the installation timestamp /statusz
// reports as time-since-last-reload.
type servedModel struct {
	name       string
	eng        atomic.Pointer[engine]
	b          *batcher
	lat        *obs.Summary // nil when telemetry is off
	lastReload atomic.Int64 // unixnano of the most recent Install
}

// Server is the network inference service: it exposes the query-side
// primitives of the runtime over HTTP, coalescing concurrent Predict
// traffic into minibatches per model. Construct with NewServer, install
// models with Install (or LoadSnapshot), mount Handler on any mux.
//
// Endpoints:
//
//	POST /v1/predict            one forward pass (JSON, or the binary fast path)
//	POST /v1/act                greedy action of a QLearn model (remote RL au_NN)
//	POST /v1/observe            ground-truth observation against a served prediction (drift)
//	GET  /v1/models             served models with versions and sizes
//	POST /models/{name}/reload  atomic hot reload (body = SaveModel image, or empty to pull from Source)
//	GET  /healthz               liveness; ?deep=1 adds readiness (drift verdicts, shutdown)
//	GET  /statusz               JSON serving status (per-model queue/shed/drift/reload state)
type Server struct {
	cfg   Config
	log   *slog.Logger
	met   *metricsSet
	drift *obs.DriftMonitor
	start time.Time

	mu     sync.RWMutex
	models map[string]*servedModel
	closed bool
}

// NewServer builds a Server with no models installed.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg: cfg,
		log: cfg.Logger.With("component", "serve"),
		met: newMetricsSet(cfg.Registry),
		drift: obs.NewDriftMonitor(obs.DriftConfig{
			Window:     cfg.DriftWindow,
			Threshold:  cfg.DriftThreshold,
			MinSamples: cfg.DriftMinSamples,
		}, cfg.Registry),
		start:  time.Now(),
		models: make(map[string]*servedModel),
	}
}

// Drift exposes the server's drift monitor (synthetic injection in
// tests, future online-learning rollback hooks).
func (s *Server) Drift() *obs.DriftMonitor { return s.drift }

// Install makes a model servable (or hot-reloads it): spec describes
// the network family, data is a SaveModel image. On an existing name
// the fresh engine is built off to the side and swapped in atomically —
// in-flight batches finish on the old snapshot, the next dispatch sees
// the new one, and the version counter increments. It returns the live
// version.
func (s *Server) Install(name string, spec core.ModelSpec, data []byte) (int, error) {
	if name == "" {
		return 0, auerr.E(auerr.ErrSpecInvalid, "serve: model name must be non-empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("serve: server is closed")
	}
	version := 1
	if m, ok := s.models[name]; ok {
		version = m.eng.Load().version + 1
	}
	eng, err := buildEngine(name, spec, data, version, s.cfg.Replicas)
	if err != nil {
		return 0, err
	}
	m, ok := s.models[name]
	if !ok {
		m = &servedModel{name: name}
		m.eng.Store(eng)
		m.lat = s.met.modelLatency(name)
		m.b = newBatcher(m, s.cfg.MaxBatch, s.cfg.MaxDelay, s.cfg.QueueDepth, s.met)
		s.models[name] = m
		s.met.queueDepth(name, func() float64 { return float64(m.b.depth()) })
	} else {
		m.eng.Store(eng)
	}
	m.lastReload.Store(time.Now().UnixNano())
	s.met.modelVersion(name, version)
	s.log.Info("model installed", "model", name, "version", version,
		"in", eng.inSize, "out", eng.outSize, "replicas", eng.replicas)
	return version, nil
}

// LoadSnapshot installs every model of a snapshot image and reports how
// many were installed.
func (s *Server) LoadSnapshot(r io.Reader) (int, error) {
	models, err := ReadSnapshot(r)
	if err != nil {
		return 0, err
	}
	for i, m := range models {
		if _, err := s.Install(m.Name, m.Spec, m.Data); err != nil {
			return i, err
		}
	}
	return len(models), nil
}

// Close stops every batcher and refuses further work. In-flight batches
// complete; queued requests fail.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	models := make([]*servedModel, 0, len(s.models))
	for _, m := range s.models {
		models = append(models, m)
	}
	s.mu.Unlock()
	for _, m := range models {
		m.b.close()
	}
}

// model looks a served model up by name.
func (s *Server) model(name string) (*servedModel, bool) {
	s.mu.RLock()
	m, ok := s.models[name]
	s.mu.RUnlock()
	return m, ok
}

// Models lists served models sorted by name.
func (s *Server) Models() []ModelInfo {
	s.mu.RLock()
	out := make([]ModelInfo, 0, len(s.models))
	for _, m := range s.models {
		e := m.eng.Load()
		out = append(out, ModelInfo{Name: m.name, Version: e.version, InSize: e.inSize, OutSize: e.outSize})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Handler returns the HTTP surface. Mount it on any mux; auserve serves
// it next to the obs telemetry endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/act", s.handleAct)
	mux.HandleFunc("POST /v1/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("POST /models/{name}/reload", s.handleReload)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", obs.HealthzHandler(s.readiness))
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	return mux
}

// traced continues the caller's trace from the request's traceparent
// header. A malformed header is rejected (logged, debug level) and the
// request starts a fresh root trace — observability never fails a
// request. One atomic load when tracing is off.
func (s *Server) traced(r *http.Request) context.Context {
	ctx := r.Context()
	if !obs.TracingEnabled() {
		return ctx
	}
	ctx, err := obs.ContinueFromHeader(ctx, r.Header.Get(obs.TraceparentHeader))
	if err != nil {
		s.log.Debug("rejected malformed traceparent", "err", err)
	}
	return ctx
}

// writeJSON writes a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		obs.Logger().Error("serve: response encode failed", "err", err)
	}
}

// writeError renders the uniform error body with the auerr class, at
// the status statusFor picks.
func writeError(w http.ResponseWriter, err error) int {
	code := statusFor(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: err.Error(), Class: auerr.Class(err)})
	return code
}

// submit resolves the model and runs one input through its batcher,
// feeding the per-model latency summary (submit to batch completion —
// the latency a remote caller actually experiences server-side).
func (s *Server) submit(ctx context.Context, model string, in []float64) ([]float64, error) {
	m, ok := s.model(model)
	if !ok {
		return nil, auerr.E(auerr.ErrUnknownModel, "serve: unknown model %q", model)
	}
	if s.met == nil {
		return m.b.submit(ctx, in)
	}
	t0 := time.Now()
	out, err := m.b.submit(ctx, in)
	if err == nil {
		m.lat.Observe(time.Since(t0).Seconds())
	}
	return out, err
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("predict")
	ctx, sp := obs.StartSpan(s.traced(r), "serve.predict")
	code := http.StatusOK
	var spanErr error
	defer func() { sp.End(spanErr); s.met.request("predict", code, tm) }()

	binaryReq := strings.HasPrefix(r.Header.Get("Content-Type"), BinaryContentType)
	var (
		model string
		in    []float64
	)
	if binaryReq {
		var err error
		model, in, err = decodePredictFrame(r.Body)
		if err != nil {
			spanErr = auerr.E(auerr.ErrSpecInvalid, "serve: bad binary frame: %v", err)
			code = writeError(w, spanErr)
			return
		}
	} else {
		var req PredictRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
			spanErr = auerr.E(auerr.ErrSpecInvalid, "serve: bad predict request: %v", err)
			code = writeError(w, spanErr)
			return
		}
		model, in = req.Model, req.Input
	}
	out, err := s.submit(ctx, model, in)
	if err != nil {
		spanErr = err
		code = writeError(w, err)
		return
	}
	enc := s.met.stageTimer(stageResponseEncode)
	if binaryReq {
		w.Header().Set("Content-Type", BinaryContentType)
		if _, err := w.Write(appendVector(nil, out)); err != nil {
			s.log.Debug("predict response write failed", "err", err)
		}
		enc.Stop()
		return
	}
	writeJSON(w, PredictResponse{Output: out})
	enc.Stop()
}

func (s *Server) handleAct(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("act")
	ctx, sp := obs.StartSpan(s.traced(r), "serve.act")
	code := http.StatusOK
	var spanErr error
	defer func() { sp.End(spanErr); s.met.request("act", code, tm) }()

	var req ActRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
		spanErr = auerr.E(auerr.ErrSpecInvalid, "serve: bad act request: %v", err)
		code = writeError(w, spanErr)
		return
	}
	q, err := s.submit(ctx, req.Model, req.State)
	if err != nil {
		spanErr = err
		code = writeError(w, err)
		return
	}
	// Greedy argmax over the Q-vector — the TS-mode rl.Agent.Act path,
	// so remote NNRL picks exactly the action the embedded runtime would.
	enc := s.met.stageTimer(stageResponseEncode)
	writeJSON(w, ActResponse{Action: stats.ArgMax(q)})
	enc.Stop()
}

// handleObserve records one ground-truth observation against a served
// prediction: the drift monitor folds the pair's mean squared error
// into the model's rolling window and answers with the updated verdict
// (DESIGN.md §5h). Clients report through Client.ObserveCtx after the
// host program learns the true outcome of a prediction.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("observe")
	_, sp := obs.StartSpan(s.traced(r), "serve.observe")
	code := http.StatusOK
	var spanErr error
	defer func() { sp.End(spanErr); s.met.request("observe", code, tm) }()

	var req ObserveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxJSONBody)).Decode(&req); err != nil {
		spanErr = auerr.E(auerr.ErrSpecInvalid, "serve: bad observe request: %v", err)
		code = writeError(w, spanErr)
		return
	}
	if _, ok := s.model(req.Model); !ok {
		spanErr = auerr.E(auerr.ErrUnknownModel, "serve: unknown model %q", req.Model)
		code = writeError(w, spanErr)
		return
	}
	st, err := s.drift.Record(req.Model, req.Predicted, req.Observed)
	if err != nil {
		spanErr = auerr.E(auerr.ErrSpecInvalid, "serve: %v", err)
		code = writeError(w, spanErr)
		return
	}
	writeJSON(w, ObserveResponse{
		Model: st.Model, Loss: st.Loss, Samples: st.Samples,
		Threshold: st.Threshold, Healthy: st.Healthy,
	})
}

// handleSnapshot installs every model of an AUSN snapshot image posted
// in the body — the network twin of auserve's -snapshot startup load,
// and the path a fleet router uses to ship models to the backend the
// hash ring assigns them to. Installs are atomic per model (the usual
// engine swap); a corrupt image is rejected before anything installs.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("snapshot")
	_, sp := obs.StartSpan(s.traced(r), "serve.snapshot")
	code := http.StatusOK
	var spanErr error
	defer func() { sp.End(spanErr); s.met.request("snapshot", code, tm) }()

	n, err := s.LoadSnapshot(io.LimitReader(r.Body, maxJSONBody))
	if err != nil {
		if errors.Is(err, auerr.ErrCorruptStore) || errors.Is(err, auerr.ErrCorruptModel) {
			err = auerr.E(auerr.ErrSpecInvalid, "serve: snapshot install rejected: %v", err)
		}
		spanErr = err
		code = writeError(w, err)
		return
	}
	writeJSON(w, SnapshotResponse{Models: n})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("models")
	defer s.met.request("models", http.StatusOK, tm)
	writeJSON(w, s.Models())
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("reload")
	_, sp := obs.StartSpan(r.Context(), "serve.reload")
	code := http.StatusOK
	var spanErr error
	defer func() { sp.End(spanErr); s.met.request("reload", code, tm) }()

	name := r.PathValue("name")
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJSONBody))
	if err != nil {
		spanErr = fmt.Errorf("serve: read reload body: %w", err)
		code = writeError(w, spanErr)
		return
	}
	var spec core.ModelSpec
	data := body
	switch {
	case len(body) > 0:
		// Raw SaveModel image: keep the spec the live engine serves with.
		m, ok := s.model(name)
		if !ok {
			spanErr = auerr.E(auerr.ErrUnknownModel,
				"serve: cannot reload unknown model %q from raw weights (no spec on file)", name)
			code = writeError(w, spanErr)
			return
		}
		spec = m.eng.Load().spec
	case s.cfg.Source != nil:
		spec, data, err = s.cfg.Source.Snapshot(name)
		if err != nil {
			spanErr = err
			code = writeError(w, err)
			return
		}
	default:
		spanErr = auerr.E(auerr.ErrSpecInvalid,
			"serve: reload of %q needs a weight image in the body (no snapshot source configured)", name)
		code = writeError(w, spanErr)
		return
	}
	version, err := s.Install(name, spec, data)
	if err != nil {
		if errors.Is(err, auerr.ErrCorruptModel) || errors.Is(err, auerr.ErrCorruptStore) {
			err = auerr.E(auerr.ErrSpecInvalid, "serve: reload of %q rejected: %v", name, err)
		}
		spanErr = err
		code = writeError(w, err)
		return
	}
	writeJSON(w, ReloadResponse{Model: name, Version: version})
}
