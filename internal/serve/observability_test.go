package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// spanByName finds the newest ring record with the given name.
func spanByName(recs []obs.SpanRecord, name string) (obs.SpanRecord, bool) {
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Name == name {
			return recs[i], true
		}
	}
	return obs.SpanRecord{}, false
}

// TestTracedRequestSpanChain is the end-to-end tracing acceptance
// check: one traced client Predict produces a linked span chain —
// client.predict → serve.predict (continued over the wire) →
// serve.batch → serve.engine_predict — all sharing one TraceID, with
// the engine-predict span carrying a link back to the request span it
// coalesced.
func TestTracedRequestSpanChain(t *testing.T) {
	oldT := obs.SetTracing(true)
	defer obs.SetTracing(oldT)

	spec, data, _ := trainModel(t, 41)
	_, url := newTestServer(t, Config{Registry: obs.NewRegistry(), MaxDelay: time.Millisecond}, spec, data)
	cli := NewClient(url)
	out, err := cli.PredictCtx(context.Background(), "m", []float64{0.3, 0.7})
	if err != nil || len(out) == 0 {
		t.Fatalf("traced predict failed: %v (out %v)", err, out)
	}

	recs := obs.RecentSpans()
	chain := make(map[string]obs.SpanRecord, 4)
	for _, name := range []string{"client.predict", "serve.predict", "serve.batch", "serve.engine_predict"} {
		rec, ok := spanByName(recs, name)
		if !ok {
			t.Fatalf("span %q missing from the ring (got %d records)", name, len(recs))
		}
		chain[name] = rec
	}
	trace := chain["client.predict"].TraceID
	if len(trace) != 32 {
		t.Fatalf("client span trace id %q, want 32 hex digits", trace)
	}
	for name, rec := range chain {
		if rec.TraceID != trace {
			t.Errorf("span %q is on trace %q, want the client's %q — the trace broke at the socket", name, rec.TraceID, trace)
		}
	}
	// Parent chain: the server handler's parent is the client span
	// (propagated through the traceparent header, bit-exact), the batch
	// continues the handler, and engine-predict is the batch's child.
	if got, want := chain["serve.predict"].ParentID, chain["client.predict"].SpanID; got != want {
		t.Errorf("serve.predict parent %q, want the client span %q", got, want)
	}
	if got, want := chain["serve.batch"].ParentID, chain["serve.predict"].SpanID; got != want {
		t.Errorf("serve.batch parent %q, want the handler span %q", got, want)
	}
	if got, want := chain["serve.engine_predict"].ParentID, chain["serve.batch"].SpanID; got != want {
		t.Errorf("serve.engine_predict parent %q, want the batch span %q", got, want)
	}
	// Batch coalescing is recorded as links: the engine-predict span
	// links every request span it served — here, exactly our request.
	links := chain["serve.engine_predict"].Links
	if len(links) != 1 || links[0].SpanID != chain["serve.predict"].SpanID || links[0].TraceID != trace {
		t.Errorf("engine-predict links %+v, want one link to the request span %q", links, chain["serve.predict"].SpanID)
	}
}

// TestMalformedTraceparentStartsFreshTrace checks the reject-and-serve
// contract: a malformed traceparent header never fails the request, and
// the server span starts a fresh root trace instead of adopting any
// part of the bad header.
func TestMalformedTraceparentStartsFreshTrace(t *testing.T) {
	oldT := obs.SetTracing(true)
	defer obs.SetTracing(oldT)

	spec, data, _ := trainModel(t, 42)
	_, url := newTestServer(t, Config{Registry: obs.NewRegistry(), MaxDelay: time.Millisecond}, spec, data)

	body, err := json.Marshal(PredictRequest{Model: "m", Input: []float64{0.1, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Uppercase hex: well-shaped but invalid per the W3C grammar.
	req.Header.Set(obs.TraceparentHeader, "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with malformed traceparent: HTTP %d, want 200 — observability must not fail requests", resp.StatusCode)
	}

	rec, ok := spanByName(obs.RecentSpans(), "serve.predict")
	if !ok {
		t.Fatal("serve.predict span missing")
	}
	if rec.TraceID == "0af7651916cd43dd8448eb211c80319c" || rec.ParentID != "" {
		t.Errorf("span adopted identity from a rejected header: trace %q parent %q, want a fresh root", rec.TraceID, rec.ParentID)
	}
}

// TestDriftFlipsReadiness is the drift acceptance check: synthetic bad
// observations through POST /v1/observe flip /healthz?deep=1 to 503
// while plain /healthz (liveness) stays 200, and good observations in a
// fresh window recover readiness.
func TestDriftFlipsReadiness(t *testing.T) {
	spec, data, ref := trainModel(t, 43)
	_, url := newTestServer(t, Config{
		MaxDelay:        time.Millisecond,
		DriftThreshold:  0.01,
		DriftWindow:     200 * time.Millisecond,
		DriftMinSamples: 3,
	}, spec, data)
	cli := NewClient(url)
	ctx := context.Background()

	health := func(deep bool) int {
		t.Helper()
		u := url + "/healthz"
		if deep {
			u += "?deep=1"
		}
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := health(true); got != http.StatusOK {
		t.Fatalf("deep health before any observation: %d, want 200", got)
	}

	// Accurate observations first: the model stays healthy.
	in := []float64{0.2, 0.8}
	pred, err := ref.PredictCtx(ctx, "m", in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ack, err := cli.ObserveCtx(ctx, "m", pred, pred)
		if err != nil {
			t.Fatal(err)
		}
		if !ack.Healthy || ack.Loss != 0 {
			t.Fatalf("accurate observation verdict %+v, want healthy with zero loss", ack)
		}
	}

	// Synthetic drift: ground truth far from the prediction.
	var ack obs.DriftStatus
	for i := 0; i < 6; i++ {
		ack, err = cli.ObserveCtx(ctx, "m", pred, []float64{pred[0] + 10})
		if err != nil {
			t.Fatal(err)
		}
	}
	if ack.Healthy {
		t.Fatalf("verdict after drift injection %+v, want unhealthy (loss ~100 > 0.01)", ack)
	}
	if got := health(false); got != http.StatusOK {
		t.Errorf("plain /healthz during drift: %d, want 200 — liveness must not flip", got)
	}
	if got := health(true); got != http.StatusServiceUnavailable {
		t.Errorf("/healthz?deep=1 during drift: %d, want 503", got)
	}
	if err := func() error {
		resp, err := http.Get(url + "/healthz?deep=1")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var body struct {
			OK     bool              `json:"ok"`
			Ready  *bool             `json:"ready"`
			Checks map[string]string `json:"checks"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		if !body.OK || body.Ready == nil || *body.Ready {
			return fmt.Errorf("deep body %+v, want ok=true ready=false", body)
		}
		if v, ok := body.Checks["drift:m"]; !ok || v == "ok" {
			return fmt.Errorf("checks %+v, want a drift:m failure verdict", body.Checks)
		}
		return nil
	}(); err != nil {
		t.Error(err)
	}

	// The window slides the bad cohort out; fresh accurate observations
	// restore readiness without a restart.
	time.Sleep(450 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := cli.ObserveCtx(ctx, "m", pred, pred); err != nil {
			t.Fatal(err)
		}
	}
	if got := health(true); got != http.StatusOK {
		t.Errorf("deep health after recovery: %d, want 200", got)
	}

	// Observe validation: unknown models 404, mismatched vectors 400.
	if _, err := cli.ObserveCtx(ctx, "ghost", pred, pred); err == nil {
		t.Error("observe against unknown model accepted")
	}
	if _, err := cli.ObserveCtx(ctx, "m", pred, []float64{1, 2, 3}); err == nil {
		t.Error("observe with mismatched vectors accepted")
	}
}

// TestStatusz checks the deep status document: process posture, batch
// config, and the per-model row (version, compiled plan, queue and shed
// state, reload age, drift verdict).
func TestStatusz(t *testing.T) {
	spec, data, _ := trainModel(t, 44)
	srv, url := newTestServer(t, Config{
		MaxBatch:       8,
		MaxDelay:       time.Millisecond,
		QueueDepth:     32,
		DriftThreshold: 0.5,
	}, spec, data)
	cli := NewClient(url)
	if _, err := cli.Predict("m", []float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.ObserveCtx(context.Background(), "m", []float64{1}, []float64{1.1}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz: HTTP %d, want 200", resp.StatusCode)
	}
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	if !st.Ready || st.UptimeSeconds < 0 {
		t.Errorf("status ready=%v uptime=%v, want ready with non-negative uptime", st.Ready, st.UptimeSeconds)
	}
	if st.Kernel == "" || st.Workers < 1 {
		t.Errorf("status kernel=%q workers=%d, want engine posture reported", st.Kernel, st.Workers)
	}
	if st.MaxBatch != 8 || st.QueueCapacity != 32 || st.MaxDelayMS != 1 {
		t.Errorf("status batch config (%d, %v, %d), want (8, 1ms, 32)", st.MaxBatch, st.MaxDelayMS, st.QueueCapacity)
	}
	if st.DriftThreshold != 0.5 {
		t.Errorf("status drift threshold %v, want 0.5", st.DriftThreshold)
	}
	if st.Checks["server"] != "ok" {
		t.Errorf("status checks %+v, want server ok", st.Checks)
	}
	if len(st.Models) != 1 {
		t.Fatalf("status models %+v, want exactly one", st.Models)
	}
	m := st.Models[0]
	if m.Name != "m" || m.Version != 1 || m.InSize != 2 || m.OutSize != 1 {
		t.Errorf("model row %+v, want m v1 2->1", m)
	}
	if m.Plan == "" || m.Plan == "uncompiled" {
		t.Errorf("model plan %q, want the compiled kernel name", m.Plan)
	}
	if m.QueueCapacity != 32 || m.QueueDepth < 0 || m.ShedTotal != 0 {
		t.Errorf("model queue state %+v, want capacity 32 and no shed", m)
	}
	if m.SecondsSinceReload < 0 || m.SecondsSinceReload > 60 {
		t.Errorf("seconds since reload %v, want a fresh install age", m.SecondsSinceReload)
	}
	if m.DriftSamples != 1 || !m.DriftHealthy {
		t.Errorf("model drift state %+v, want 1 healthy sample", m)
	}

	// Ready() is the programmatic form; closing the server flips it.
	if err := srv.Ready(); err != nil {
		t.Errorf("Ready on a healthy server: %v", err)
	}
	srv.Close()
	if err := srv.Ready(); err == nil {
		t.Error("Ready on a closed server: nil, want an error")
	}
}

// TestPerModelLatencyAndStageSeries checks the serving metrics surface:
// traffic produces the per-model {quantile=...} summary and all four
// per-stage histogram series.
func TestPerModelLatencyAndStageSeries(t *testing.T) {
	reg := obs.NewRegistry()
	spec, data, _ := trainModel(t, 45)
	_, url := newTestServer(t, Config{Registry: reg, MaxDelay: time.Millisecond}, spec, data)
	cli := NewClient(url)
	for i := 0; i < 10; i++ {
		if _, err := cli.Predict("m", []float64{0.1, 0.9}); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, q := range []string{"0.5", "0.99"} {
		if !strings.Contains(out, `autonomizer_serve_model_latency_seconds{model="m",quantile="`+q+`"}`) {
			t.Errorf("missing per-model p%s series:\n%s", q, out)
		}
	}
	if !strings.Contains(out, `autonomizer_serve_model_latency_seconds_count{model="m"} 10`) {
		t.Errorf("latency summary count != 10:\n%s", out)
	}
	for _, stage := range stageName {
		if !strings.Contains(out, `autonomizer_serve_stage_duration_seconds_count{stage="`+stage+`"}`) {
			t.Errorf("missing stage=%q histogram series", stage)
		}
	}
}
