package serve

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// The deep health/readiness surface (DESIGN.md §5h): /statusz answers
// "what exactly is this server doing" — snapshot versions, engine
// compile state, queue occupancy vs capacity, shed totals, time since
// the last hot reload, drift verdicts — and /healthz?deep=1 reduces it
// to a drain/route decision. Liveness and readiness are deliberately
// split: a drifting model makes the server not-ready (a fleet router
// should stop sending it traffic) while liveness stays 200 (nothing
// should kill the process; a reload or rollback fixes it in place).

// ModelStatus is one served model's row in the /statusz document.
type ModelStatus struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	// Plan is the engine's compile state: the active kernel name
	// ("avx2", "generic", ...) when the serving plan compiled at install
	// time, or "uncompiled" for architectures served through network
	// replicas instead.
	Plan     string `json:"plan"`
	InSize   int    `json:"in_size"`
	OutSize  int    `json:"out_size"`
	Replicas int    `json:"replicas"`

	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	ShedTotal     uint64 `json:"shed_total"`

	SecondsSinceReload float64 `json:"seconds_since_reload"`

	DriftLoss    float64 `json:"drift_loss"`
	DriftSamples int     `json:"drift_samples"`
	DriftHealthy bool    `json:"drift_healthy"`
}

// Statusz is the /statusz document.
type Statusz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`
	Tracing       bool    `json:"tracing"`
	Kernel        string  `json:"kernel"`
	Workers       int     `json:"workers"`

	MaxBatch      int     `json:"max_batch"`
	MaxDelayMS    float64 `json:"max_delay_ms"`
	QueueCapacity int     `json:"queue_capacity"`

	DriftThreshold     float64 `json:"drift_threshold"`
	DriftWindowSeconds float64 `json:"drift_window_seconds"`

	Models []ModelStatus     `json:"models"`
	Checks map[string]string `json:"checks"`
}

// Status assembles the current serving status.
func (s *Server) Status() Statusz {
	ready, checks := s.readiness()
	st := Statusz{
		UptimeSeconds:      time.Since(s.start).Seconds(),
		Ready:              ready,
		Tracing:            obs.TracingEnabled(),
		Kernel:             tensor.KernelName(),
		Workers:            parallel.Workers(),
		MaxBatch:           s.cfg.MaxBatch,
		MaxDelayMS:         float64(s.cfg.MaxDelay) / float64(time.Millisecond),
		QueueCapacity:      s.cfg.QueueDepth,
		DriftThreshold:     s.drift.Threshold(),
		DriftWindowSeconds: s.drift.Window().Seconds(),
		Checks:             checks,
	}
	for _, info := range s.Models() {
		m, ok := s.model(info.Name)
		if !ok {
			continue
		}
		eng := m.eng.Load()
		plan := "uncompiled"
		if eng.packed {
			plan = tensor.KernelName()
		}
		row := ModelStatus{
			Name:               m.name,
			Version:            eng.version,
			Plan:               plan,
			InSize:             eng.inSize,
			OutSize:            eng.outSize,
			Replicas:           eng.replicas,
			QueueDepth:         m.b.depth(),
			QueueCapacity:      cap(m.b.queue),
			ShedTotal:          m.b.shed.Load(),
			SecondsSinceReload: time.Since(time.Unix(0, m.lastReload.Load())).Seconds(),
			DriftHealthy:       true,
		}
		if ds, ok := s.drift.Status(m.name); ok {
			row.DriftLoss, row.DriftSamples, row.DriftHealthy = ds.Loss, ds.Samples, ds.Healthy
		}
		st.Models = append(st.Models, row)
	}
	return st
}

// readiness runs the serving readiness checks: shutdown state plus one
// drift verdict per observed model. The report shape matches
// obs.ReadinessReport so obs.HealthzHandler renders both.
func (s *Server) readiness() (bool, map[string]string) {
	checks := make(map[string]string)
	ready := true
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		checks["server"] = "closed: draining, no new work accepted"
		ready = false
	} else {
		checks["server"] = "ok"
	}
	for _, ds := range s.drift.Statuses() {
		key := "drift:" + ds.Model
		if ds.Healthy {
			checks[key] = "ok"
		} else {
			checks[key] = fmt.Sprintf("rolling loss %.6g exceeds threshold %.6g over %d observations",
				ds.Loss, ds.Threshold, ds.Samples)
			ready = false
		}
	}
	return ready, checks
}

// Ready returns nil while the server is fit to take traffic: not
// closed, and no served model's drift verdict is unhealthy. The
// programmatic form of /healthz?deep=1 — the hook a fleet router (or
// the future online-learning auto-rollback) drains on.
func (s *Server) Ready() error {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return errors.New("serve: server is closed")
	}
	return s.drift.Healthy()
}

// handleStatusz renders the serving status document.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	tm := s.met.timer("statusz")
	defer s.met.request("statusz", http.StatusOK, tm)
	writeJSON(w, s.Status())
}
