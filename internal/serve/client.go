package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// Client is the remote counterpart of the in-process Runtime's query
// path: it implements the root package's Querier interface, so a host
// program written against Querier switches between embedded and remote
// inference with one constructor change.
//
// The database store π lives client-side: Extract, Serialize and
// WriteBack are local, exactly as cheap as in-process, and only the
// model queries (NN, NNRL, Predict — the calls that dominate end-to-end
// cost) cross the network, where the server's micro-batcher coalesces
// them with other clients' traffic. The served models are TS-mode
// snapshots, so the training-side behaviours of the primitives (online
// gradient steps in Train-mode NN, DQN updates in NNRL) do not apply:
// NNRL's reward/terminal arguments are accepted for signature parity
// and ignored, matching the TEST rule.
//
// Server-reported failures preserve the typed-error contract: the
// error class travels in the response body and is rebuilt into the
// same auerr sentinel, so errors.Is dispatch works identically against
// a Runtime or a Client.
type Client struct {
	base   string
	hc     *http.Client
	store  *db.Store
	binary bool
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithJSONPredict disables the length-prefixed binary fast path and
// sends Predict traffic as JSON (useful through proxies that insist on
// inspecting bodies).
func WithJSONPredict() ClientOption {
	return func(c *Client) { c.binary = false }
}

// NewClient returns a Client talking to an auserve (or embedded
// serve.Server) at baseURL, e.g. "http://127.0.0.1:8080".
func NewClient(baseURL string, opts ...ClientOption) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: http.DefaultClient, store: db.New(), binary: true}
	for _, o := range opts {
		o(c)
	}
	return c
}

// DB exposes the client-side database store π (read access for
// harnesses and tests, mirroring Runtime.DB).
func (c *Client) DB() *db.Store { return c.store }

// live mirrors the runtime's entry-point cancellation check.
func live(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	return nil
}

// ---- local primitives (the π side) ----

// ExtractCtx is au_extract against the client-side store.
func (c *Client) ExtractCtx(ctx context.Context, name string, vals ...float64) error {
	if err := live(ctx); err != nil {
		return err
	}
	c.store.Append(name, vals...)
	return nil
}

// Extract is ExtractCtx with context.Background().
func (c *Client) Extract(name string, vals ...float64) {
	_ = c.ExtractCtx(context.Background(), name, vals...)
}

// SerializeCtx is au_serialize against the client-side store, with the
// runtime's consuming semantics (constituent lists are reset).
func (c *Client) SerializeCtx(ctx context.Context, names ...string) (string, error) {
	if err := live(ctx); err != nil {
		return "", err
	}
	key := c.store.Concat(names...)
	for _, n := range names {
		c.store.Reset(n)
	}
	return key, nil
}

// Serialize is SerializeCtx with context.Background().
func (c *Client) Serialize(names ...string) string {
	key, _ := c.SerializeCtx(context.Background(), names...)
	return key
}

// WriteBackCtx is au_write_back from the client-side store.
func (c *Client) WriteBackCtx(ctx context.Context, name string, dst []float64) (int, error) {
	if err := live(ctx); err != nil {
		return 0, err
	}
	vals, ok := c.store.Get(name)
	if !ok {
		return 0, auerr.E(auerr.ErrMissingInput, "serve: au_write_back of unbound name %q", name)
	}
	return copy(dst, vals), nil
}

// WriteBack is WriteBackCtx with context.Background().
func (c *Client) WriteBack(name string, dst []float64) (int, error) {
	return c.WriteBackCtx(context.Background(), name, dst)
}

// WriteBackActionCtx is the discrete-action write-back.
func (c *Client) WriteBackActionCtx(ctx context.Context, name string) (int, error) {
	var v [1]float64
	n, err := c.WriteBackCtx(ctx, name, v[:])
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, auerr.E(auerr.ErrMissingInput, "serve: au_write_back of empty binding %q", name)
	}
	return int(v[0] + 0.5), nil
}

// WriteBackAction is WriteBackActionCtx with context.Background().
func (c *Client) WriteBackAction(name string) (int, error) {
	return c.WriteBackActionCtx(context.Background(), name)
}

// ---- remote primitives (the θ side) ----

// PredictCtx runs one forward pass on the server; concurrent callers
// across all clients coalesce into server-side minibatches. Results are
// bit-identical to the embedded Runtime.PredictCtx on the same
// snapshot.
func (c *Client) PredictCtx(ctx context.Context, mdName string, in []float64) (out []float64, err error) {
	if err := live(ctx); err != nil {
		return nil, err
	}
	// The client span roots (or continues) the trace; its span ID rides
	// the traceparent header so the server-side serve.predict span joins
	// the same trace. One atomic load when tracing is off.
	ctx, sp := obs.StartSpan(ctx, "client.predict")
	defer func() { sp.End(err) }()
	if c.binary {
		return c.predictBinary(ctx, mdName, in)
	}
	var resp PredictResponse
	if err := c.postJSON(ctx, "/v1/predict", PredictRequest{Model: mdName, Input: in}, &resp); err != nil {
		return nil, err
	}
	return resp.Output, nil
}

// Predict is PredictCtx with context.Background().
func (c *Client) Predict(mdName string, in []float64) ([]float64, error) {
	return c.PredictCtx(context.Background(), mdName, in)
}

// NNCtx is the supervised au_NN against a remote model: read the input
// list from the local store, predict remotely, bind the output chunks
// to the write-back names, reset the input (the TEST rule; serving is
// TS-mode, so no gradient step).
func (c *Client) NNCtx(ctx context.Context, mdName, extName string, wbNames ...string) error {
	if err := live(ctx); err != nil {
		return err
	}
	if len(wbNames) == 0 {
		return auerr.E(auerr.ErrSpecInvalid, "serve: au_NN needs at least one write-back name")
	}
	in, ok := c.store.Get(extName)
	if !ok || len(in) == 0 {
		return auerr.E(auerr.ErrMissingInput, "serve: au_NN input %q is empty; call au_extract first", extName)
	}
	out, err := c.PredictCtx(ctx, mdName, in)
	if err != nil {
		return err
	}
	if len(out)%len(wbNames) != 0 {
		return auerr.E(auerr.ErrSpecInvalid, "serve: model %q output size %d not divisible across %d write-back names",
			mdName, len(out), len(wbNames))
	}
	chunk := len(out) / len(wbNames)
	for i, wb := range wbNames {
		c.store.Put(wb, out[i*chunk:(i+1)*chunk])
	}
	c.store.Reset(extName)
	return nil
}

// NN is NNCtx with context.Background().
func (c *Client) NN(mdName, extName string, wbNames ...string) error {
	return c.NNCtx(context.Background(), mdName, extName, wbNames...)
}

// NNRLCtx is the RL au_NN against a remote model: the greedy (TS-mode)
// action for the state in the local store. reward and terminal are
// accepted for Querier parity and ignored — served snapshots do not
// learn online.
func (c *Client) NNRLCtx(ctx context.Context, mdName, extName string, reward float64, terminal bool, wbName string) (err error) {
	_ = reward
	_ = terminal
	if err := live(ctx); err != nil {
		return err
	}
	state, ok := c.store.Get(extName)
	if !ok || len(state) == 0 {
		return auerr.E(auerr.ErrMissingInput, "serve: au_NN input %q is empty; call au_extract first", extName)
	}
	ctx, sp := obs.StartSpan(ctx, "client.act")
	defer func() { sp.End(err) }()
	var resp ActResponse
	if err := c.postJSON(ctx, "/v1/act", ActRequest{Model: mdName, State: state}, &resp); err != nil {
		return err
	}
	c.store.Put(wbName, []float64{float64(resp.Action)})
	c.store.Reset(extName)
	return nil
}

// NNRL is NNRLCtx with context.Background().
func (c *Client) NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error {
	return c.NNRLCtx(context.Background(), mdName, extName, reward, terminal, wbName)
}

// Models lists the models the server is currently serving.
func (c *Client) Models(ctx context.Context) ([]ModelInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.transportError(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	var out []ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decode models response: %w", err)
	}
	return out, nil
}

// ObserveCtx reports the ground-truth outcome for a prediction this
// client served earlier: the server's drift monitor folds the pair's
// mean squared error into the model's rolling window and returns the
// updated verdict. Call it when the host program learns the true value
// (the same moment it would WriteBack), closing the loop that lets the
// fleet notice a model drifting away from reality.
func (c *Client) ObserveCtx(ctx context.Context, mdName string, predicted, observed []float64) (ObserveResponse, error) {
	var resp ObserveResponse
	if err := live(ctx); err != nil {
		return resp, err
	}
	err := c.postJSON(ctx, "/v1/observe", ObserveRequest{
		Model: mdName, Predicted: predicted, Observed: observed,
	}, &resp)
	return resp, err
}

// Reload asks the server to hot-reload one model from its snapshot
// source (data nil) or from the given SaveModel image. It returns the
// new version.
func (c *Client) Reload(ctx context.Context, mdName string, data []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/models/"+mdName+"/reload", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, c.transportError(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, errorFromResponse(resp)
	}
	var ack ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, fmt.Errorf("serve: decode reload response: %w", err)
	}
	return ack.Version, nil
}

// ---- transport plumbing ----

func (c *Client) predictBinary(ctx context.Context, mdName string, in []float64) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/predict", bytes.NewReader(encodePredictFrame(mdName, in)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", BinaryContentType)
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.transportError(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	out, err := readVector(resp.Body)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.transportError(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFromResponse(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: decode %s response: %w", path, err)
	}
	return nil
}

// transportError keeps the cancellation contract across the network: a
// request that died because the caller's context did reports the same
// typed ErrCanceled an in-process primitive would.
func (c *Client) transportError(ctx context.Context, err error) error {
	if ctx != nil && ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	return fmt.Errorf("serve: request failed: %w", err)
}

// errorFromResponse rebuilds the typed error from the uniform error
// body: the class field round-trips to its auerr sentinel, so
// errors.Is works on remote failures exactly as on local ones.
func errorFromResponse(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		if sentinel := auerr.FromClass(er.Class); sentinel != nil {
			return fmt.Errorf("%w: %s", sentinel, er.Error)
		}
		return fmt.Errorf("serve: server error (HTTP %d): %s", resp.StatusCode, er.Error)
	}
	return fmt.Errorf("serve: server error (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(body))
}
