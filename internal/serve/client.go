package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// Client is the remote counterpart of the in-process Runtime's query
// path: it implements the root package's Querier interface, so a host
// program written against Querier switches between embedded and remote
// inference with one constructor change.
//
// The database store π lives client-side: Extract, Serialize and
// WriteBack are local, exactly as cheap as in-process, and only the
// model queries (NN, NNRL, Predict — the calls that dominate end-to-end
// cost) cross the network, where the server's micro-batcher coalesces
// them with other clients' traffic. The served models are TS-mode
// snapshots, so the training-side behaviours of the primitives (online
// gradient steps in Train-mode NN, DQN updates in NNRL) do not apply:
// NNRL's reward/terminal arguments are accepted for signature parity
// and ignored, matching the TEST rule.
//
// Server-reported failures preserve the typed-error contract: the
// error class travels in the response body and is rebuilt into the
// same auerr sentinel, so errors.Is dispatch works identically against
// a Runtime or a Client.
//
// Endpoint selection is pluggable: by default every request goes to
// the base URL NewClient was given, but a Resolver (see WithResolver,
// used by the fleet-aware client internal/fleet builds) can pick the
// backend per model — the mechanism behind autonomizer.Dial's
// "fleet:" targets, where models are consistent-hashed across N
// backends and a dead backend's models rehash to the survivors.
type Client struct {
	base     string
	hc       *http.Client
	store    *db.Store
	binary   bool
	resolver Resolver
	retry    RetryPolicy
}

// Resolver picks the backend base URL that serves a model. The
// default resolver returns the client's fixed base URL; the fleet
// client substitutes a consistent-hash ring over N backends. Endpoint
// is called once per attempt (so a retry after a backend death
// re-resolves against the updated ring), and Report feeds every
// attempt's outcome back so the resolver can mark a backend down on
// transport failure. Implementations must be safe for concurrent use.
type Resolver interface {
	// Endpoint returns the base URL for one model's request. model is
	// "" for requests not tied to a model (GET /v1/models).
	Endpoint(model string) (string, error)
	// Report records the outcome of one attempt against endpoint (err
	// nil on success). Called after every attempt, before any retry.
	Report(endpoint string, err error)
}

// staticResolver is the single-server Resolver: every model lives at
// the one base URL.
type staticResolver string

func (r staticResolver) Endpoint(string) (string, error) { return string(r), nil }
func (r staticResolver) Report(string, error)            {}

// RetryPolicy tunes WithRetry: jittered exponential backoff around
// transient serving failures (a shed request, a dead backend). The
// zero value of each field selects the documented default.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first
	// (default 4). 1 means no retry.
	Attempts int
	// Base is the first backoff delay (default 10ms); each further
	// retry doubles it.
	Base time.Duration
	// Max caps a single backoff delay (default 1s).
	Max time.Duration
	// Budget bounds the whole retrying call, sleeps included (default
	// 0: only the caller's context limits it). When the budget runs
	// out mid-backoff the last transient error is returned, not
	// ErrCanceled — the caller's own context was still live.
	Budget time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	return p
}

// delay computes the jittered exponential backoff before retry number
// try (0-based): min(Max, Base<<try) scaled by a uniform [0.5, 1.5)
// jitter so a fleet of retrying clients does not thunder back in step.
func (p RetryPolicy) delay(try int) time.Duration {
	d := p.Base << uint(try)
	if d <= 0 || d > p.Max {
		d = p.Max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, test
// doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithJSONPredict disables the length-prefixed binary fast path and
// sends Predict traffic as JSON (useful through proxies that insist on
// inspecting bodies).
func WithJSONPredict() ClientOption {
	return func(c *Client) { c.binary = false }
}

// WithRetry makes the client retry transient failures — shed requests
// (ErrOverloaded/429) and dead or missing backends (ErrUnavailable,
// transport errors) — with jittered exponential backoff under p.
// Non-transient failures (unknown model, malformed input) never
// retry, and a canceled context stops the loop immediately. Combined
// with a fleet Resolver each retry re-resolves the owner, so a
// request caught by a backend death lands on the rehashed owner.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithResolver substitutes the endpoint resolver (see Resolver). The
// fleet client uses this to consistent-hash models across backends.
func WithResolver(r Resolver) ClientOption {
	return func(c *Client) { c.resolver = r }
}

// NewClient returns a Client talking to an auserve (or embedded
// serve.Server) at baseURL, e.g. "http://127.0.0.1:8080".
func NewClient(baseURL string, opts ...ClientOption) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: http.DefaultClient, store: db.New(), binary: true}
	for _, o := range opts {
		o(c)
	}
	if c.resolver == nil {
		c.resolver = staticResolver(c.base)
	}
	return c
}

// DB exposes the client-side database store π (read access for
// harnesses and tests, mirroring Runtime.DB).
func (c *Client) DB() *db.Store { return c.store }

// Retry reports the client's retry policy (zero value: no retry).
func (c *Client) Retry() RetryPolicy { return c.retry }

// live mirrors the runtime's entry-point cancellation check.
func live(ctx context.Context) error {
	if ctx != nil && ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	return nil
}

// retryable reports whether an error is transient serving trouble —
// worth a backoff and another attempt (against a possibly re-resolved
// backend) rather than a hard failure.
func retryable(err error) bool {
	return errors.Is(err, auerr.ErrOverloaded) || errors.Is(err, auerr.ErrUnavailable)
}

// do runs one remote operation through the resolver/retry machinery:
// resolve the model's endpoint, attempt, report the outcome, and — for
// transient failures under a WithRetry policy — back off and go again.
// Every attempt re-resolves, so a fleet resolver that just marked a
// backend down steers the retry to the model's new owner.
func (c *Client) do(ctx context.Context, model string, attempt func(base string) error) error {
	pol := c.retry
	caller := ctx
	if pol.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pol.Budget)
		defer cancel()
	}
	var err error
	for try := 0; ; try++ {
		var base string
		base, err = c.resolver.Endpoint(model)
		if err == nil {
			err = attempt(base)
			c.resolver.Report(base, err)
		}
		if err == nil || try+1 >= pol.Attempts || !retryable(err) {
			return err
		}
		timer := time.NewTimer(pol.delay(try))
		select {
		case <-ctx.Done():
			timer.Stop()
			if cerr := live(caller); cerr != nil {
				return cerr
			}
			// The retry budget (not the caller) ran out: the last
			// transient error is the honest answer.
			return err
		case <-timer.C:
		}
	}
}

// ---- local primitives (the π side) ----

// ExtractCtx is au_extract against the client-side store.
func (c *Client) ExtractCtx(ctx context.Context, name string, vals ...float64) error {
	if err := live(ctx); err != nil {
		return err
	}
	c.store.Append(name, vals...)
	return nil
}

// Extract is ExtractCtx with context.Background().
func (c *Client) Extract(name string, vals ...float64) {
	_ = c.ExtractCtx(context.Background(), name, vals...)
}

// SerializeCtx is au_serialize against the client-side store, with the
// runtime's consuming semantics (constituent lists are reset).
func (c *Client) SerializeCtx(ctx context.Context, names ...string) (string, error) {
	if err := live(ctx); err != nil {
		return "", err
	}
	key := c.store.Concat(names...)
	for _, n := range names {
		c.store.Reset(n)
	}
	return key, nil
}

// Serialize is SerializeCtx with context.Background().
func (c *Client) Serialize(names ...string) string {
	key, _ := c.SerializeCtx(context.Background(), names...)
	return key
}

// WriteBackCtx is au_write_back from the client-side store.
func (c *Client) WriteBackCtx(ctx context.Context, name string, dst []float64) (int, error) {
	if err := live(ctx); err != nil {
		return 0, err
	}
	vals, ok := c.store.Get(name)
	if !ok {
		return 0, auerr.E(auerr.ErrMissingInput, "serve: au_write_back of unbound name %q", name)
	}
	return copy(dst, vals), nil
}

// WriteBack is WriteBackCtx with context.Background().
func (c *Client) WriteBack(name string, dst []float64) (int, error) {
	return c.WriteBackCtx(context.Background(), name, dst)
}

// WriteBackActionCtx is the discrete-action write-back.
func (c *Client) WriteBackActionCtx(ctx context.Context, name string) (int, error) {
	var v [1]float64
	n, err := c.WriteBackCtx(ctx, name, v[:])
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, auerr.E(auerr.ErrMissingInput, "serve: au_write_back of empty binding %q", name)
	}
	return int(v[0] + 0.5), nil
}

// WriteBackAction is WriteBackActionCtx with context.Background().
func (c *Client) WriteBackAction(name string) (int, error) {
	return c.WriteBackActionCtx(context.Background(), name)
}

// ---- remote primitives (the θ side) ----

// PredictCtx runs one forward pass on the server; concurrent callers
// across all clients coalesce into server-side minibatches. Results are
// bit-identical to the embedded Runtime.PredictCtx on the same
// snapshot.
func (c *Client) PredictCtx(ctx context.Context, mdName string, in []float64) (out []float64, err error) {
	if err := live(ctx); err != nil {
		return nil, err
	}
	// The client span roots (or continues) the trace; its span ID rides
	// the traceparent header so the server-side serve.predict span joins
	// the same trace. One atomic load when tracing is off.
	ctx, sp := obs.StartSpan(ctx, "client.predict")
	defer func() { sp.End(err) }()
	if c.binary {
		err = c.do(ctx, mdName, func(base string) error {
			var aerr error
			out, aerr = c.predictBinary(ctx, base, mdName, in)
			return aerr
		})
		return out, err
	}
	var resp PredictResponse
	if err := c.postJSON(ctx, mdName, "/v1/predict", PredictRequest{Model: mdName, Input: in}, &resp); err != nil {
		return nil, err
	}
	return resp.Output, nil
}

// Predict is PredictCtx with context.Background().
func (c *Client) Predict(mdName string, in []float64) ([]float64, error) {
	return c.PredictCtx(context.Background(), mdName, in)
}

// NNCtx is the supervised au_NN against a remote model: read the input
// list from the local store, predict remotely, bind the output chunks
// to the write-back names, reset the input (the TEST rule; serving is
// TS-mode, so no gradient step).
func (c *Client) NNCtx(ctx context.Context, mdName, extName string, wbNames ...string) error {
	if err := live(ctx); err != nil {
		return err
	}
	if len(wbNames) == 0 {
		return auerr.E(auerr.ErrSpecInvalid, "serve: au_NN needs at least one write-back name")
	}
	in, ok := c.store.Get(extName)
	if !ok || len(in) == 0 {
		return auerr.E(auerr.ErrMissingInput, "serve: au_NN input %q is empty; call au_extract first", extName)
	}
	out, err := c.PredictCtx(ctx, mdName, in)
	if err != nil {
		return err
	}
	if len(out)%len(wbNames) != 0 {
		return auerr.E(auerr.ErrSpecInvalid, "serve: model %q output size %d not divisible across %d write-back names",
			mdName, len(out), len(wbNames))
	}
	chunk := len(out) / len(wbNames)
	for i, wb := range wbNames {
		c.store.Put(wb, out[i*chunk:(i+1)*chunk])
	}
	c.store.Reset(extName)
	return nil
}

// NN is NNCtx with context.Background().
func (c *Client) NN(mdName, extName string, wbNames ...string) error {
	return c.NNCtx(context.Background(), mdName, extName, wbNames...)
}

// NNRLCtx is the RL au_NN against a remote model: the greedy (TS-mode)
// action for the state in the local store. reward and terminal are
// accepted for Querier parity and ignored — served snapshots do not
// learn online.
func (c *Client) NNRLCtx(ctx context.Context, mdName, extName string, reward float64, terminal bool, wbName string) (err error) {
	_ = reward
	_ = terminal
	if err := live(ctx); err != nil {
		return err
	}
	state, ok := c.store.Get(extName)
	if !ok || len(state) == 0 {
		return auerr.E(auerr.ErrMissingInput, "serve: au_NN input %q is empty; call au_extract first", extName)
	}
	ctx, sp := obs.StartSpan(ctx, "client.act")
	defer func() { sp.End(err) }()
	var resp ActResponse
	if err := c.postJSON(ctx, mdName, "/v1/act", ActRequest{Model: mdName, State: state}, &resp); err != nil {
		return err
	}
	c.store.Put(wbName, []float64{float64(resp.Action)})
	c.store.Reset(extName)
	return nil
}

// NNRL is NNRLCtx with context.Background().
func (c *Client) NNRL(mdName, extName string, reward float64, terminal bool, wbName string) error {
	return c.NNRLCtx(context.Background(), mdName, extName, reward, terminal, wbName)
}

// Models lists the models the server is currently serving. Against a
// fleet resolver this reports one healthy backend's view; a fleet
// router's GET /v1/models aggregates the whole fleet.
func (c *Client) Models(ctx context.Context) (out []ModelInfo, err error) {
	err = c.do(ctx, "", func(base string) error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/models", nil)
		if rerr != nil {
			return rerr
		}
		resp, rerr := c.hc.Do(req)
		if rerr != nil {
			return c.transportError(ctx, rerr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return errorFromResponse(resp)
		}
		out = out[:0]
		if rerr := json.NewDecoder(resp.Body).Decode(&out); rerr != nil {
			return fmt.Errorf("serve: decode models response: %w", rerr)
		}
		return nil
	})
	return out, err
}

// ObserveCtx reports the ground-truth outcome for a prediction this
// client served earlier: the server's drift monitor folds the pair's
// mean squared error into the model's rolling window and returns the
// updated verdict. Call it when the host program learns the true value
// (the same moment it would WriteBack), closing the loop that lets the
// fleet notice a model drifting away from reality.
func (c *Client) ObserveCtx(ctx context.Context, mdName string, predicted, observed []float64) (obs.DriftStatus, error) {
	if err := live(ctx); err != nil {
		return obs.DriftStatus{}, err
	}
	var resp ObserveResponse
	if err := c.postJSON(ctx, mdName, "/v1/observe", ObserveRequest{
		Model: mdName, Predicted: predicted, Observed: observed,
	}, &resp); err != nil {
		return obs.DriftStatus{}, err
	}
	return obs.DriftStatus{
		Model: resp.Model, Loss: resp.Loss, Samples: resp.Samples,
		Threshold: resp.Threshold, Healthy: resp.Healthy,
	}, nil
}

// Observe is ObserveCtx with context.Background().
func (c *Client) Observe(mdName string, predicted, observed []float64) (obs.DriftStatus, error) {
	return c.ObserveCtx(context.Background(), mdName, predicted, observed)
}

// Reload asks the server to hot-reload one model from its snapshot
// source (data nil) or from the given SaveModel image. It returns the
// new version.
func (c *Client) Reload(ctx context.Context, mdName string, data []byte) (version int, err error) {
	err = c.do(ctx, mdName, func(base string) error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/models/"+mdName+"/reload", bytes.NewReader(data))
		if rerr != nil {
			return rerr
		}
		resp, rerr := c.hc.Do(req)
		if rerr != nil {
			return c.transportError(ctx, rerr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return errorFromResponse(resp)
		}
		var ack ReloadResponse
		if rerr := json.NewDecoder(resp.Body).Decode(&ack); rerr != nil {
			return fmt.Errorf("serve: decode reload response: %w", rerr)
		}
		version = ack.Version
		return nil
	})
	return version, err
}

// InstallSnapshot installs models over the network (POST /v1/snapshot).
// Each model ships as its own one-model AUSN image resolved through the
// endpoint resolver, so against a fleet every model lands on the
// backend the hash ring assigns it to.
func (c *Client) InstallSnapshot(ctx context.Context, models []SnapshotModel) error {
	for _, m := range models {
		var img bytes.Buffer
		if err := WriteSnapshot(&img, []SnapshotModel{m}); err != nil {
			return err
		}
		err := c.do(ctx, m.Name, func(base string) error {
			req, rerr := http.NewRequestWithContext(ctx, http.MethodPost,
				base+"/v1/snapshot", bytes.NewReader(img.Bytes()))
			if rerr != nil {
				return rerr
			}
			resp, rerr := c.hc.Do(req)
			if rerr != nil {
				return c.transportError(ctx, rerr)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return errorFromResponse(resp)
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			return nil
		})
		if err != nil {
			return fmt.Errorf("serve: install %q: %w", m.Name, err)
		}
	}
	return nil
}

// ---- transport plumbing ----

func (c *Client) predictBinary(ctx context.Context, base, mdName string, in []float64) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/predict", bytes.NewReader(encodePredictFrame(mdName, in)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", BinaryContentType)
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, c.transportError(ctx, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	out, err := readVector(resp.Body)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) postJSON(ctx context.Context, model, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, model, func(base string) error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
		if rerr != nil {
			return rerr
		}
		req.Header.Set("Content-Type", "application/json")
		obs.InjectTraceparent(ctx, req.Header)
		resp, rerr := c.hc.Do(req)
		if rerr != nil {
			return c.transportError(ctx, rerr)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return errorFromResponse(resp)
		}
		if rerr := json.NewDecoder(resp.Body).Decode(out); rerr != nil {
			return fmt.Errorf("serve: decode %s response: %w", path, rerr)
		}
		return nil
	})
}

// transportError keeps the typed-error contract across the network: a
// request that died because the caller's context did reports the same
// typed ErrCanceled an in-process primitive would, and one that died
// because the backend did (connection refused/reset — the process is
// gone or never there) reports ErrUnavailable, the transient class the
// retry policy and the fleet resolver act on.
func (c *Client) transportError(ctx context.Context, err error) error {
	if ctx != nil && ctx.Err() != nil {
		return auerr.Canceled(ctx)
	}
	return auerr.E(auerr.ErrUnavailable, "serve: request failed: %v", err)
}

// errorFromResponse rebuilds the typed error from the uniform error
// body: the class field round-trips to its auerr sentinel, so
// errors.Is works on remote failures exactly as on local ones.
func errorFromResponse(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		if sentinel := auerr.FromClass(er.Class); sentinel != nil {
			return fmt.Errorf("%w: %s", sentinel, er.Error)
		}
		return fmt.Errorf("serve: server error (HTTP %d): %s", resp.StatusCode, er.Error)
	}
	return fmt.Errorf("serve: server error (HTTP %d): %s", resp.StatusCode, bytes.TrimSpace(body))
}
