package serve

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
)

// Snapshot format (versioned, little-endian, db-store conventions):
//
//	magic "AUSN" | uint32 version | uint32 modelCount
//	per model: uint32 nameLen | name
//	           uint32 specLen | spec JSON (wireSpec)
//	           uint32 dataLen | SaveModel image (inSize|outSize|params)
//
// A snapshot file is the deployable unit of the serving layer: a
// training run exports one with WriteSnapshot, auserve loads it at
// startup, and POST /models/{name}/reload re-reads it for atomic hot
// swaps. Corrupt or truncated bytes fail with auerr.ErrCorruptStore
// before anything is installed.

const (
	snapMagic   = "AUSN"
	snapVersion = 1
)

// SnapshotModel is one model in a snapshot: its serving spec plus the
// SaveModel weight image.
type SnapshotModel struct {
	Name string
	Spec core.ModelSpec
	Data []byte
}

// wireSpec is the JSON-serializable subset of core.ModelSpec a serving
// engine needs (Builder callbacks cannot cross a process boundary; the
// training-only knobs are irrelevant in TS mode).
type wireSpec struct {
	Type             core.ModelType `json:"type"`
	Algo             core.Algorithm `json:"algo"`
	Hidden           []int          `json:"hidden,omitempty"`
	Actions          int            `json:"actions,omitempty"`
	InputShape       []int          `json:"input_shape,omitempty"`
	OutputActivation string         `json:"output_activation,omitempty"`
	Workers          int            `json:"workers,omitempty"`
}

func toWireSpec(s core.ModelSpec) wireSpec {
	return wireSpec{
		Type: s.Type, Algo: s.Algo, Hidden: s.Hidden, Actions: s.Actions,
		InputShape: s.InputShape, OutputActivation: s.OutputActivation,
		Workers: s.Workers,
	}
}

func (w wireSpec) modelSpec(name string) core.ModelSpec {
	return core.ModelSpec{
		Name: name, Type: w.Type, Algo: w.Algo, Hidden: w.Hidden,
		Actions: w.Actions, InputShape: w.InputShape,
		OutputActivation: w.OutputActivation, Workers: w.Workers,
	}
}

// WriteSnapshot serializes the models to w in the versioned snapshot
// format.
func WriteSnapshot(w io.Writer, models []SnapshotModel) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return fmt.Errorf("serve: write magic: %w", err)
	}
	for _, v := range []uint32{snapVersion, uint32(len(models))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("serve: write header: %w", err)
		}
	}
	writeBlob := func(what string, b []byte) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(b))); err != nil {
			return fmt.Errorf("serve: write %s length: %w", what, err)
		}
		if _, err := bw.Write(b); err != nil {
			return fmt.Errorf("serve: write %s: %w", what, err)
		}
		return nil
	}
	for _, m := range models {
		specJSON, err := json.Marshal(toWireSpec(m.Spec))
		if err != nil {
			return fmt.Errorf("serve: marshal spec for %q: %w", m.Name, err)
		}
		if err := writeBlob("name", []byte(m.Name)); err != nil {
			return err
		}
		if err := writeBlob("spec", specJSON); err != nil {
			return err
		}
		if err := writeBlob("weights", m.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot decodes a snapshot image. Garbage or truncation wraps
// auerr.ErrCorruptStore.
func ReadSnapshot(r io.Reader) ([]SnapshotModel, error) {
	models, err := readSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", auerr.ErrCorruptStore, err)
	}
	return models, nil
}

func readSnapshot(r io.Reader) ([]SnapshotModel, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("serve: read magic: %w", err)
	}
	if string(magic) != snapMagic {
		return nil, fmt.Errorf("serve: bad snapshot magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("serve: read version: %w", err)
	}
	if version != snapVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("serve: read model count: %w", err)
	}
	if count > 1<<16 {
		return nil, fmt.Errorf("serve: implausible model count %d", count)
	}
	readBlob := func(what string, max uint32) ([]byte, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("serve: read %s length: %w", what, err)
		}
		if n > max {
			return nil, fmt.Errorf("serve: implausible %s length %d", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("serve: read %s: %w", what, err)
		}
		return b, nil
	}
	models := make([]SnapshotModel, 0, count)
	for i := uint32(0); i < count; i++ {
		name, err := readBlob("name", maxNameLen)
		if err != nil {
			return nil, err
		}
		specJSON, err := readBlob("spec", 1<<20)
		if err != nil {
			return nil, err
		}
		var ws wireSpec
		if err := json.Unmarshal(specJSON, &ws); err != nil {
			return nil, fmt.Errorf("serve: decode spec for %q: %w", name, err)
		}
		data, err := readBlob("weights", 1<<30)
		if err != nil {
			return nil, err
		}
		models = append(models, SnapshotModel{
			Name: string(name), Spec: ws.modelSpec(string(name)), Data: data,
		})
	}
	return models, nil
}

// Source supplies model snapshots for hot reloads: given a model name,
// it returns the serving spec and the SaveModel weight image. A Server
// configured with a Source serves POST /models/{name}/reload with an
// empty body by pulling the fresh snapshot from here.
type Source interface {
	Snapshot(name string) (core.ModelSpec, []byte, error)
}

// FileSource is a Source backed by a snapshot file: every lookup
// re-reads the file, so replacing it on disk and POSTing reload is the
// whole deployment story.
type FileSource string

// Snapshot implements Source.
func (p FileSource) Snapshot(name string) (core.ModelSpec, []byte, error) {
	f, err := os.Open(string(p))
	if err != nil {
		return core.ModelSpec{}, nil, fmt.Errorf("serve: open snapshot: %w", err)
	}
	defer f.Close()
	models, err := ReadSnapshot(f)
	if err != nil {
		return core.ModelSpec{}, nil, err
	}
	for _, m := range models {
		if m.Name == name {
			return m.Spec, m.Data, nil
		}
	}
	return core.ModelSpec{}, nil, auerr.E(auerr.ErrUnknownModel,
		"serve: snapshot %s has no model %q", p, name)
}
