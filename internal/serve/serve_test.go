package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// trainModel fits a small deterministic supervised model and returns
// its serving spec, SaveModel image, and a Test-mode reference runtime
// for in-process ground-truth predictions.
func trainModel(t testing.TB, seed uint64) (core.ModelSpec, []byte, *core.Runtime) {
	t.Helper()
	spec := core.ModelSpec{Name: "m", Algo: core.AdamOpt, Hidden: []int{6}, LR: 0.01}
	tr := core.NewRuntimeWith(core.Train, core.WithSeed(seed), core.WithMetrics(nil))
	if err := tr.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed + 1)
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		if err := tr.RecordExample("m", x, []float64{x[0] - x[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.FitCtx(context.Background(), "m", 5, 16); err != nil {
		t.Fatal(err)
	}
	data, err := tr.SaveModel("m")
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewRuntimeWith(core.Test, core.WithMetrics(nil))
	ref.LoadModel("m", data)
	if err := ref.ConfigCtx(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	return spec, data, ref
}

// newTestServer installs the model on a batching server behind an
// httptest listener and returns the server and its base URL.
func newTestServer(t testing.TB, cfg Config, spec core.ModelSpec, data []byte) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	if _, err := srv.Install("m", spec, data); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts.URL
}

// TestBatchedEquivalence is the core serving guarantee: predictions
// through the batching server are bit-identical to the in-process
// runtime, at every concurrency width — batch composition must never
// leak into results. Run under -race in CI.
func TestBatchedEquivalence(t *testing.T) {
	spec, data, ref := trainModel(t, 21)
	_, url := newTestServer(t, Config{MaxBatch: 8, MaxDelay: time.Millisecond}, spec, data)

	const perClient = 25
	for _, width := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, width)
			for w := 0; w < width; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cli := NewClient(url)
					rng := stats.NewRNG(uint64(1000 + w))
					for i := 0; i < perClient; i++ {
						in := []float64{rng.Float64(), rng.Float64()}
						want, err := ref.PredictCtx(context.Background(), "m", in)
						if err != nil {
							errs <- err
							return
						}
						got, err := cli.PredictCtx(context.Background(), "m", in)
						if err != nil {
							errs <- err
							return
						}
						if len(got) != len(want) || got[0] != want[0] {
							errs <- fmt.Errorf("width %d: batched %v != in-process %v for %v", width, got, want, in)
							return
						}
					}
					errs <- nil
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestBinaryJSONParity pins the two predict encodings to each other.
func TestBinaryJSONParity(t *testing.T) {
	spec, data, _ := trainModel(t, 22)
	_, url := newTestServer(t, Config{}, spec, data)

	binCli := NewClient(url)
	jsonCli := NewClient(url, WithJSONPredict())
	in := []float64{0.25, 0.75}
	a, err := binCli.Predict("m", in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := jsonCli.Predict("m", in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("binary %v != json %v", a, b)
	}
}

// TestWindowSemantics pins the batching window behavior of DESIGN.md
// §5d: a lone request pays up to MaxDelay waiting for company; a full
// batch dispatches without waiting out the window.
func TestWindowSemantics(t *testing.T) {
	const window = 300 * time.Millisecond
	spec, data, _ := trainModel(t, 23)
	_, url := newTestServer(t, Config{MaxBatch: 4, MaxDelay: window}, spec, data)
	cli := NewClient(url)

	start := time.Now()
	if _, err := cli.Predict("m", []float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if lone := time.Since(start); lone < window*8/10 {
		t.Errorf("lone request returned in %v; want it to wait out the %v window", lone, window)
	}

	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Predict("m", []float64{0.3, 0.4}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if full := time.Since(start); full >= window {
		t.Errorf("full batch took %v; want dispatch before the %v window closes", full, window)
	}
}

// TestHotReloadKeepsServing swaps model versions while clients hammer
// predict: no request may fail, and every answer must match one of the
// two snapshots exactly — never a blend.
func TestHotReloadKeepsServing(t *testing.T) {
	spec, data1, ref1 := trainModel(t, 24)
	_, data2, ref2 := trainModel(t, 99)
	srv, url := newTestServer(t, Config{MaxBatch: 8, MaxDelay: time.Millisecond}, spec, data1)

	in := []float64{0.6, 0.3}
	want1, err := ref1.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := ref2.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	if want1[0] == want2[0] {
		t.Fatal("test needs distinguishable snapshots")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := NewClient(url)
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := cli.Predict("m", in)
				if err != nil {
					t.Errorf("predict during reload: %v", err)
					return
				}
				if out[0] != want1[0] && out[0] != want2[0] {
					t.Errorf("blended output %v; want %v or %v", out, want1, want2)
					return
				}
			}
		}()
	}
	for i := 0; i < 10; i++ {
		d := data1
		if i%2 == 0 {
			d = data2
		}
		if _, err := srv.Install("m", spec, d); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if v := srv.Models()[0].Version; v != 11 {
		t.Errorf("version after 10 reloads = %d, want 11", v)
	}
}

// TestReloadEndpoint drives the HTTP reload path: raw weights bump the
// version, unknown models 404, garbage is a classed 400.
func TestReloadEndpoint(t *testing.T) {
	spec, data1, _ := trainModel(t, 25)
	_, data2, ref2 := trainModel(t, 26)
	_, url := newTestServer(t, Config{}, spec, data1)
	cli := NewClient(url)

	v, err := cli.Reload(context.Background(), "m", data2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("reload version = %d, want 2", v)
	}
	in := []float64{0.2, 0.9}
	want, err := ref2.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cli.Predict("m", in)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("post-reload predict %v, want snapshot-2 output %v", got, want)
	}

	if _, err := cli.Reload(context.Background(), "ghost", data2); !errors.Is(err, auerr.ErrUnknownModel) {
		t.Errorf("reload of unknown model: %v, want ErrUnknownModel", err)
	}
	if _, err := cli.Reload(context.Background(), "m", []byte("garbage")); !errors.Is(err, auerr.ErrSpecInvalid) {
		t.Errorf("reload with garbage: %v, want ErrSpecInvalid", err)
	}
}

// TestClientQuerierFlow exercises the primitive loop through a Client:
// extract → serialize → NN → write-back, and the RL act path, against
// the in-process reference.
func TestClientQuerierFlow(t *testing.T) {
	spec, data, ref := trainModel(t, 27)
	_, url := newTestServer(t, Config{}, spec, data)
	cli := NewClient(url)
	ctx := context.Background()

	cli.Extract("X", 0.4)
	if err := cli.ExtractCtx(ctx, "Y", 0.7); err != nil {
		t.Fatal(err)
	}
	key, err := cli.SerializeCtx(ctx, "X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.NNCtx(ctx, "m", key, "OUT"); err != nil {
		t.Fatal(err)
	}
	var out [1]float64
	if _, err := cli.WriteBackCtx(ctx, "OUT", out[:]); err != nil {
		t.Fatal(err)
	}
	want, err := ref.PredictCtx(ctx, "m", []float64{0.4, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != want[0] {
		t.Errorf("client NN flow output %v, want %v", out[0], want[0])
	}

	// NN with a consumed (empty) input is the usual typed error.
	if err := cli.NNCtx(ctx, "m", key, "OUT"); !errors.Is(err, auerr.ErrMissingInput) {
		t.Errorf("NN on consumed input: %v, want ErrMissingInput", err)
	}

	// The RL flow binds the greedy argmax of the model output.
	cli.Extract("S1", 0.9)
	cli.Extract("S2", 0.2)
	skey, _ := cli.SerializeCtx(ctx, "S1", "S2")
	if err := cli.NNRLCtx(ctx, "m", skey, 0, false, "ACT"); err != nil {
		t.Fatal(err)
	}
	action, err := cli.WriteBackActionCtx(ctx, "ACT")
	if err != nil {
		t.Fatal(err)
	}
	q, err := ref.PredictCtx(ctx, "m", []float64{0.9, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if action != stats.ArgMax(q) {
		t.Errorf("remote action %d, want argmax %d of %v", action, stats.ArgMax(q), q)
	}

	// Typed errors round-trip the wire.
	if _, err := cli.Predict("ghost", []float64{1, 2}); !errors.Is(err, auerr.ErrUnknownModel) {
		t.Errorf("remote unknown model: %v, want ErrUnknownModel", err)
	}
	if _, err := cli.Predict("m", []float64{1}); !errors.Is(err, auerr.ErrSpecInvalid) {
		t.Errorf("remote wrong-size input: %v, want ErrSpecInvalid", err)
	}
}

// TestClientCancellation pins the context contract across the network:
// a canceled caller gets the same typed ErrCanceled as in-process.
func TestClientCancellation(t *testing.T) {
	spec, data, _ := trainModel(t, 28)
	_, url := newTestServer(t, Config{MaxBatch: 64, MaxDelay: time.Second}, spec, data)
	cli := NewClient(url)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// The lone request sits in a 1s batching window; the 20ms deadline
	// fires first.
	if _, err := cli.PredictCtx(ctx, "m", []float64{0.1, 0.2}); !errors.Is(err, auerr.ErrCanceled) {
		t.Errorf("deadline during batching window: %v, want ErrCanceled", err)
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := cli.ExtractCtx(canceled, "X", 1); !errors.Is(err, auerr.ErrCanceled) {
		t.Errorf("local primitive with dead ctx: %v, want ErrCanceled", err)
	}
}

// TestSubmitBackpressure pins the load-shedding contract at the batcher
// layer: a full queue rejects immediately with ErrOverloaded, and the
// HTTP mapping for that class is 429.
func TestSubmitBackpressure(t *testing.T) {
	spec, data, _ := trainModel(t, 29)
	eng, err := buildEngine("m", spec, data, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := &servedModel{name: "m"}
	m.eng.Store(eng)
	// No collector goroutine: the queue genuinely fills.
	b := &batcher{
		model: m, queue: make(chan *batchCall, 1),
		maxBatch: 4, maxDelay: time.Second,
		met: newMetricsSet(nil), stop: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := b.submit(ctx, []float64{1, 2}); !errors.Is(err, auerr.ErrCanceled) {
			t.Errorf("queued call after cancel: %v, want ErrCanceled", err)
		}
	}()
	// Wait until the first call occupies the queue slot.
	for len(b.queue) == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := b.submit(context.Background(), []float64{3, 4}); !errors.Is(err, auerr.ErrOverloaded) {
		t.Fatalf("submit on full queue: %v, want ErrOverloaded", err)
	}
	cancel()
	wg.Wait()

	if code := statusFor(auerr.E(auerr.ErrOverloaded, "x")); code != 429 {
		t.Errorf("statusFor(ErrOverloaded) = %d, want 429", code)
	}
}

// TestSnapshotRoundTrip pins the AUSN container format and its corrupt
// handling.
func TestSnapshotRoundTrip(t *testing.T) {
	spec, data, _ := trainModel(t, 30)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, []SnapshotModel{{Name: "m", Spec: spec, Data: data}}); err != nil {
		t.Fatal(err)
	}
	image := buf.Bytes()
	models, err := ReadSnapshot(bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].Name != "m" || !bytes.Equal(models[0].Data, data) {
		t.Fatalf("round trip mangled the snapshot: %+v", models)
	}
	if models[0].Spec.Algo != spec.Algo || len(models[0].Spec.Hidden) != len(spec.Hidden) {
		t.Fatalf("round trip mangled the spec: %+v", models[0].Spec)
	}

	srv := NewServer(Config{})
	defer srv.Close()
	if n, err := srv.LoadSnapshot(bytes.NewReader(image)); err != nil || n != 1 {
		t.Fatalf("LoadSnapshot = %d, %v", n, err)
	}

	for name, mut := range map[string][]byte{
		"bad magic": append([]byte("NOPE"), image[4:]...),
		"truncated": image[:len(image)-3],
	} {
		if _, err := ReadSnapshot(bytes.NewReader(mut)); !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("%s: %v, want ErrCorruptStore", name, err)
		}
	}
}

// BenchmarkServePredict measures serving throughput through the full
// HTTP + batching stack: one sequential client (each request waits out
// the batching window alone) versus 16 concurrent clients (requests
// coalesce, amortizing the window across the batch). The concurrent
// number divided by the sequential one is the batching win recorded in
// BENCH_serve.json.
func BenchmarkServePredict(b *testing.B) {
	spec, data, _ := trainModel(b, 31)
	_, url := newTestServer(b, Config{}, spec, data)
	in := []float64{0.5, 0.25}

	b.Run("single", func(b *testing.B) {
		cli := NewClient(url)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Predict("m", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("clients16", func(b *testing.B) {
		b.SetParallelism(16)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			cli := NewClient(url)
			for pb.Next() {
				if _, err := cli.Predict("m", in); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// TestHotReloadInstallsPackedEngine pins the pack-at-install contract of
// the two-representation architecture: every engine — initial install
// and hot reload alike — has its serving plan compiled (weights packed
// into the active kernel layout) before the atomic swap publishes it,
// so no request ever pays a first-call packing or compilation spike.
func TestHotReloadInstallsPackedEngine(t *testing.T) {
	spec, data1, _ := trainModel(t, 31)
	_, data2, ref2 := trainModel(t, 32)
	srv, _ := newTestServer(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond}, spec, data1)

	srv.mu.RLock()
	sm := srv.models["m"]
	srv.mu.RUnlock()
	first := sm.eng.Load()
	if !first.packed {
		t.Fatal("freshly installed engine is not packed")
	}

	if _, err := srv.Install("m", spec, data2); err != nil {
		t.Fatal(err)
	}
	eng := sm.eng.Load()
	if eng == first {
		t.Fatal("reload did not swap the engine")
	}
	if !eng.packed {
		t.Error("hot-reloaded engine is not packed: the first request after the swap would pay the packing cost")
	}

	// The packed engine must still serve the new snapshot bit-exactly.
	in := []float64{0.6, 0.3}
	want, err := ref2.PredictCtx(context.Background(), "m", in)
	if err != nil {
		t.Fatal(err)
	}
	got := eng.predictBatch([][]float64{in})
	if len(got) != 1 || len(got[0]) != len(want) {
		t.Fatalf("predictBatch shape %v", got)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("packed engine output %v, want %v", got[0], want)
		}
	}
}
