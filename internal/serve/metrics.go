package serve

import (
	"strconv"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// serveStage enumerates the per-stage latency decomposition of one
// served request: time queued, time the batch window spent assembling,
// time inside the engine forward pass, time encoding the response. The
// names are the closed vocabulary of the "stage" label.
type serveStage int

const (
	stageQueueWait serveStage = iota
	stageBatchAssemble
	stageEnginePredict
	stageResponseEncode
	nServeStages
)

var stageName = [nServeStages]string{
	"queue_wait", "batch_assemble", "engine_predict", "response_encode",
}

// metricsSet holds the serving layer's pre-registered instruments. A nil
// *metricsSet (no registry — telemetry disabled) short-circuits every
// method, matching the zero-cost-when-disabled contract of the rest of
// the runtime (DESIGN.md §5c).
type metricsSet struct {
	reg *obs.Registry

	// batchSize is the dynamic batcher's headline distribution: how many
	// requests each dispatched batch coalesced. The smoke gate asserts
	// this shows batches above 1 under concurrent load.
	batchSize *obs.Histogram
	batches   *obs.Counter
	coalesce  *obs.Histogram
	overloads *obs.Counter
	stages    [nServeStages]*obs.Histogram
}

func newMetricsSet(reg *obs.Registry) *metricsSet {
	if reg == nil {
		return nil
	}
	m := &metricsSet{
		reg: reg,
		batchSize: reg.Histogram("autonomizer_serve_batch_size",
			"Requests coalesced into each dispatched inference batch.",
			obs.ExpBuckets(1, 2, 8), nil),
		batches: reg.Counter("autonomizer_serve_batches_total",
			"Inference batches dispatched by the micro-batcher.", nil),
		coalesce: reg.Histogram("autonomizer_serve_coalesce_seconds",
			"Time a request waited in the batching window before dispatch.",
			nil, nil),
		overloads: reg.Counter("autonomizer_serve_overloaded_total",
			"Requests rejected by backpressure (bounded queue full).", nil),
	}
	for st := serveStage(0); st < nServeStages; st++ {
		m.stages[st] = reg.Histogram("autonomizer_serve_stage_duration_seconds",
			"Per-stage latency decomposition of served requests (queue wait, batch assembly, engine predict, response encode).",
			nil, obs.Labels{"stage": stageName[st]})
	}
	return m
}

// stageObserve records one stage duration in seconds.
func (m *metricsSet) stageObserve(st serveStage, secs float64) {
	if m == nil {
		return
	}
	m.stages[st].Observe(secs)
}

// stageTimer starts a stage timer (zero Timer when disabled).
func (m *metricsSet) stageTimer(st serveStage) obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.stages[st].Timer()
}

// modelLatency returns the per-model end-to-end latency summary — the
// p50/p95/p99/p999 {quantile=...} series the fleet SLOs scrape.
func (m *metricsSet) modelLatency(model string) *obs.Summary {
	if m == nil {
		return nil
	}
	return m.reg.Summary("autonomizer_serve_model_latency_seconds",
		"Sliding-window latency quantiles of served predict requests, per model (submit to batch completion).",
		obs.Labels{"model": model})
}

// shedCounter returns the per-model load-shed counter.
func (m *metricsSet) shedCounter(model string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("autonomizer_serve_shed_total",
		"Requests shed by backpressure, per model (bounded queue full).",
		obs.Labels{"model": model})
}

// request counts one finished HTTP request by endpoint and status code
// and times it. Label values are a closed vocabulary (fixed endpoint
// names, HTTP status codes), so cardinality stays bounded.
func (m *metricsSet) request(endpoint string, code int, tm obs.Timer) {
	tm.Stop()
	if m == nil {
		return
	}
	m.reg.Counter("autonomizer_serve_requests_total",
		"Serving-layer HTTP requests by endpoint and status code.",
		obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)}).Inc()
}

// timer starts the per-endpoint latency timer (zero Timer when
// disabled).
func (m *metricsSet) timer(endpoint string) obs.Timer {
	if m == nil {
		return obs.Timer{}
	}
	return m.reg.Histogram("autonomizer_serve_request_duration_seconds",
		"Serving-layer HTTP request latency by endpoint.",
		nil, obs.Labels{"endpoint": endpoint}).Timer()
}

// modelVersion publishes the live snapshot version of one model.
func (m *metricsSet) modelVersion(model string, version int) {
	if m == nil {
		return
	}
	m.reg.Gauge("autonomizer_serve_model_version",
		"Live snapshot version of each served model (bumped by reloads).",
		obs.Labels{"model": model}).Set(float64(version))
}

// queueDepth registers the live queue-depth gauge for one model's
// batcher; GaugeFunc replace semantics make re-registration on reload
// harmless.
func (m *metricsSet) queueDepth(model string, fn func() float64) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("autonomizer_serve_queue_depth",
		"Requests waiting in each model's batching queue.",
		obs.Labels{"model": model}, fn)
}

// overloaded counts one request shed by backpressure.
func (m *metricsSet) overloaded() {
	if m == nil {
		return
	}
	m.overloads.Inc()
}

// observeBatch records one dispatched batch and its members' coalesce
// latencies (in seconds).
func (m *metricsSet) observeBatch(size int, waits []float64) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchSize.Observe(float64(size))
	for _, w := range waits {
		m.coalesce.Observe(w)
	}
}
