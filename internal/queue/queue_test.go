package queue

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/db"
)

func testOpts() Options {
	return Options{WAL: db.WALOptions{NoSync: true}}
}

func open(t *testing.T, dir, owner string, opts Options) *Queue {
	t.Helper()
	q, err := Open(dir, owner, opts)
	if err != nil {
		t.Fatalf("Open(%s, %s): %v", dir, owner, err)
	}
	return q
}

func TestEnqueueClaimCompleteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	id, err := q.Enqueue(Job{Model: "m", Epochs: 3, BatchSize: 8, Payload: []byte("data")})
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if q.Depth() != 1 {
		t.Errorf("Depth = %d, want 1", q.Depth())
	}
	j, err := q.Claim()
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if j.ID != id || j.Model != "m" || j.Epochs != 3 || j.BatchSize != 8 || !bytes.Equal(j.Payload, []byte("data")) {
		t.Errorf("claimed job = %+v", j)
	}
	if j.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", j.Attempts)
	}
	if _, err := q.Claim(); !errors.Is(err, ErrEmpty) {
		t.Errorf("second Claim = %v, want ErrEmpty", err)
	}
	if err := q.Complete(id, []byte("result")); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	q.Close()

	// Everything survives a clean reopen.
	q2 := open(t, dir, "w1", testOpts())
	defer q2.Close()
	got, ok := q2.Get(id)
	if !ok || got.State != Done || !bytes.Equal(got.Result, []byte("result")) {
		t.Errorf("reopened job = %+v", got)
	}
	if _, err := q2.Claim(); !errors.Is(err, ErrEmpty) {
		t.Errorf("Claim on drained queue = %v, want ErrEmpty", err)
	}
}

// TestCrashBetweenClaimAndFirstCheckpoint is the satellite regression
// test: the consumer dies after the claim record is durable but before
// any checkpoint. On reopen (same owner) the job must be claimable
// again immediately, with no checkpoint, and count the extra attempt.
func TestCrashBetweenClaimAndFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	id, err := q.Enqueue(Job{Model: "m", Epochs: 1, BatchSize: 4})
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	// Crash: no Release, no Complete, no Checkpoint. Simulate by
	// reopening the directory without closing (the WAL file handle is
	// torn down by the OS at process death; NoSync data is still in the
	// page cache within one process, so the records are visible).
	q.WAL().Close()

	q2 := open(t, dir, "w1", testOpts())
	defer q2.Close()
	j, err := q2.Claim()
	if err != nil {
		t.Fatalf("reclaim after crash: %v", err)
	}
	if j.ID != id || j.Checkpoint != nil {
		t.Errorf("reclaimed job = %+v, want id %d with nil checkpoint", j, id)
	}
	if j.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (one per claim)", j.Attempts)
	}
}

func TestCrashMidFitResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	id, _ := q.Enqueue(Job{Model: "m", Epochs: 2, BatchSize: 4})
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := q.Checkpoint(id, []byte("ckpt-batch-1")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := q.Checkpoint(id, []byte("ckpt-batch-2")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	q.WAL().Close() // crash

	q2 := open(t, dir, "w1", testOpts())
	defer q2.Close()
	j, err := q2.Claim()
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	if !bytes.Equal(j.Checkpoint, []byte("ckpt-batch-2")) {
		t.Errorf("Checkpoint = %q, want the latest one", j.Checkpoint)
	}
}

func TestForeignClaimHonoredUntilLeaseExpiry(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	opts := testOpts()
	opts.Lease = 10 * time.Second
	opts.Now = clock

	qa := open(t, dir, "worker-a", opts)
	id, _ := qa.Enqueue(Job{Model: "m"})
	if _, err := qa.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	qa.WAL().Close() // worker-a crashes; worker-b opens the same log

	qb := open(t, dir, "worker-b", opts)
	defer qb.Close()
	if _, err := qb.Claim(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("foreign lease not honored: %v", err)
	}
	now = now.Add(11 * time.Second) // lease expires
	j, err := qb.Claim()
	if err != nil {
		t.Fatalf("claim after lease expiry: %v", err)
	}
	if j.ID != id || j.Owner != "worker-b" || j.Attempts != 2 {
		t.Errorf("reclaimed job = %+v", j)
	}
}

func TestRenewExtendsLease(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	opts := testOpts()
	opts.Lease = 10 * time.Second
	opts.Now = func() time.Time { return now }
	q := open(t, dir, "w1", opts)
	defer q.Close()
	id, _ := q.Enqueue(Job{Model: "m"})
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	now = now.Add(8 * time.Second)
	if err := q.Renew(id); err != nil {
		t.Fatalf("Renew: %v", err)
	}
	now = now.Add(8 * time.Second) // 16s after claim, 8s after renew
	j, _ := q.Get(id)
	if now.After(j.LeaseUntil) {
		t.Error("renewed lease already expired")
	}
	if q.Depth() != 0 {
		t.Errorf("Depth = %d, want 0 while lease held", q.Depth())
	}
}

func TestReleaseRequeuesWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	id, _ := q.Enqueue(Job{Model: "m"})
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := q.Checkpoint(id, []byte("partial")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := q.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	q.Close()

	q2 := open(t, dir, "w2", testOpts()) // different owner: release, not crash recovery
	defer q2.Close()
	j, err := q2.Claim()
	if err != nil {
		t.Fatalf("claim released job: %v", err)
	}
	if !bytes.Equal(j.Checkpoint, []byte("partial")) {
		t.Errorf("released job lost its checkpoint: %q", j.Checkpoint)
	}
}

func TestOwnershipEnforced(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	defer q.Close()
	id, _ := q.Enqueue(Job{Model: "m"})
	// Not claimed at all.
	if err := q.Checkpoint(id, []byte("x")); err == nil {
		t.Error("Checkpoint on unclaimed job succeeded")
	}
	if err := q.Complete(id, nil); err == nil {
		t.Error("Complete on unclaimed job succeeded")
	}
	if err := q.Renew(42); err == nil {
		t.Error("Renew on unknown job succeeded")
	}
}

func TestCompactPreservesQueueState(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.WAL.SegmentBytes = 512
	q := open(t, dir, "w1", opts)
	done, _ := q.Enqueue(Job{Model: "done-job", Payload: bytes.Repeat([]byte{1}, 100)})
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := q.Complete(done, []byte("final")); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	inflight, _ := q.Enqueue(Job{Model: "inflight"})
	if _, err := q.Claim(); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if err := q.Checkpoint(inflight, []byte("ck")); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	pending, _ := q.Enqueue(Job{Model: "pending"})

	if err := q.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if q.WAL().Segments() != 1 {
		t.Errorf("segments after compact = %d, want 1", q.WAL().Segments())
	}
	q.Close()

	q2 := open(t, dir, "w1", opts)
	defer q2.Close()
	if j, _ := q2.Get(done); j.State != Done || !bytes.Equal(j.Result, []byte("final")) {
		t.Errorf("done job after compaction = %+v", j)
	}
	// The inflight job was ours → crash-requeued with checkpoint intact.
	if j, _ := q2.Get(inflight); j.State != Pending || !bytes.Equal(j.Checkpoint, []byte("ck")) {
		t.Errorf("inflight job after compaction = %+v", j)
	}
	if j, _ := q2.Get(pending); j.State != Pending {
		t.Errorf("pending job after compaction = %+v", j)
	}
}

// TestConcurrentClaimsNoDoubleDelivery drives the queue from many
// goroutines under -race: every job is delivered to exactly one claimer.
func TestConcurrentClaimsNoDoubleDelivery(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	defer q.Close()
	const jobs = 60
	for i := 0; i < jobs; i++ {
		if _, err := q.Enqueue(Job{Model: "m"}); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	var mu sync.Mutex
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, err := q.Claim()
				if errors.Is(err, ErrEmpty) {
					return
				}
				if err != nil {
					t.Errorf("Claim: %v", err)
					return
				}
				mu.Lock()
				seen[j.ID]++
				mu.Unlock()
				if err := q.Complete(j.ID, nil); err != nil {
					t.Errorf("Complete: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != jobs {
		t.Errorf("claimed %d distinct jobs, want %d", len(seen), jobs)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("job %d delivered %d times", id, n)
		}
	}
}

func TestQueueTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	q := open(t, dir, "w1", testOpts())
	if _, err := q.Enqueue(Job{Model: "kept"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if _, err := q.Enqueue(Job{Model: "torn"}); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	q.Close()

	// Tear the final record: drop the last 3 bytes of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("globbing segments: %v (%d found)", err, len(segs))
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(last, st.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	q2 := open(t, dir, "w1", testOpts())
	defer q2.Close()
	if q2.WAL().Recovered() == nil {
		t.Fatal("torn tail not reported")
	}
	jobs := q2.Jobs()
	if len(jobs) != 1 || jobs[0].Model != "kept" {
		t.Errorf("jobs after torn-tail recovery = %+v", jobs)
	}
}
