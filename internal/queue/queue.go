// Package queue implements a durable, crash-resumable training job
// queue on top of the db package's write-ahead log. Fit requests are
// enqueued as WAL records; a consumer claims the oldest pending job
// under a lease, journals a resumable checkpoint at every minibatch
// boundary, and marks the job complete with its result. Every state
// transition is one fsync'd WAL record, so after SIGKILL at any point
// the queue reopens to a consistent state:
//
//   - a job claimed by the crashed process (same owner) is requeued
//     immediately, keeping its latest checkpoint — training resumes at
//     the last durable minibatch boundary instead of restarting;
//   - a job claimed by a different live process stays claimed until its
//     lease expires, then becomes claimable again;
//   - completed jobs keep their results until the log is compacted away
//     by retention.
//
// The design follows the "persistent source of truth + queue-first
// execution" idiom: the WAL is the authority, the in-memory index is a
// pure replay artifact.
package queue

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/autonomizer/autonomizer/internal/db"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// Queue record types live in the 0x10 nibble so a WAL directory mixed
// up with a store journal fails loudly on replay.
const (
	opEnqueue    byte = 0x10
	opClaim      byte = 0x11
	opCheckpoint byte = 0x12
	opComplete   byte = 0x13
	opRelease    byte = 0x14
	opRenew      byte = 0x15
)

// State is a job's position in the claim lifecycle.
type State uint8

const (
	// Pending jobs are claimable.
	Pending State = iota
	// Claimed jobs are owned by a consumer until completion, release, or
	// lease expiry.
	Claimed
	// Done jobs carry a result and are never claimable again.
	Done
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Claimed:
		return "claimed"
	case Done:
		return "done"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Job is one training request. Model/Epochs/BatchSize parameterize the
// fit; Payload is opaque caller data (e.g. a dataset descriptor);
// Checkpoint is the latest resumable fit checkpoint journaled at a
// minibatch boundary, nil until the first one.
type Job struct {
	ID        uint64
	Model     string
	Epochs    int
	BatchSize int
	Payload   []byte

	State      State
	Owner      string
	LeaseUntil time.Time
	Attempts   int
	Checkpoint []byte
	Result     []byte
}

func (j *Job) clone() *Job {
	c := *j
	c.Payload = append([]byte(nil), j.Payload...)
	c.Checkpoint = append([]byte(nil), j.Checkpoint...)
	c.Result = append([]byte(nil), j.Result...)
	return &c
}

// ErrEmpty is returned by Claim when no job is claimable.
var ErrEmpty = errors.New("queue: no claimable job")

// Options tunes a Queue.
type Options struct {
	// Lease is how long a claim is honored without renewal before other
	// consumers may reclaim the job (default 30s).
	Lease time.Duration
	// WAL configures the underlying log (NoSync for tests).
	WAL db.WALOptions
	// Now overrides the clock, for deterministic lease tests.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Lease <= 0 {
		o.Lease = 30 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// queueMetrics instruments queue traffic process-wide, lazily resolved
// after telemetry is enabled.
type queueMetrics struct {
	enqueued    *obs.Counter
	claimed     *obs.Counter
	completed   *obs.Counter
	requeued    *obs.Counter
	checkpoints *obs.Counter
	depth       *obs.Gauge
}

var qm atomic.Pointer[queueMetrics]

func metrics() *queueMetrics {
	if m := qm.Load(); m != nil {
		return m
	}
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	m := &queueMetrics{
		enqueued: reg.Counter("autonomizer_queue_enqueued_total",
			"Training jobs enqueued.", nil),
		claimed: reg.Counter("autonomizer_queue_claimed_total",
			"Training job claims (including reclaims).", nil),
		completed: reg.Counter("autonomizer_queue_completed_total",
			"Training jobs completed.", nil),
		requeued: reg.Counter("autonomizer_queue_requeued_total",
			"Jobs requeued after a crash or lease expiry.", nil),
		checkpoints: reg.Counter("autonomizer_queue_checkpoints_total",
			"Resumable checkpoints journaled at minibatch boundaries.", nil),
		depth: reg.Gauge("autonomizer_queue_depth",
			"Pending (claimable) jobs in the most recently touched queue.", nil),
	}
	if !qm.CompareAndSwap(nil, m) {
		return qm.Load()
	}
	return m
}

// resetMetricsForTest drops the cached instruments so tests can attach
// a fresh registry.
func resetMetricsForTest() { qm.Store(nil) }

// Queue is a WAL-backed job queue. All methods are safe for concurrent
// use within one process; cross-process coordination is by lease.
type Queue struct {
	mu    sync.Mutex
	wal   *db.WAL
	owner string
	opts  Options

	jobs   map[uint64]*Job
	order  []uint64 // enqueue order, the claim priority
	nextID uint64

	m *queueMetrics
}

// Open opens (creating if necessary) the queue journaled in dir. owner
// identifies this consumer: jobs found claimed by the same owner were
// orphaned by a crash of a previous incarnation and are requeued
// immediately — keeping their checkpoints — rather than waiting out the
// lease.
func Open(dir, owner string, opts Options) (*Queue, error) {
	q := &Queue{
		owner: owner,
		opts:  opts.withDefaults(),
		jobs:  make(map[uint64]*Job),
		m:     metrics(),
	}
	w, err := db.OpenWAL(dir, opts.WAL, q.replay)
	if err != nil {
		return nil, err
	}
	q.wal = w
	// Crash recovery: reclaim our own orphans.
	for _, id := range q.order {
		j := q.jobs[id]
		if j.State == Claimed && j.Owner == owner {
			j.State = Pending
			j.Owner = ""
			j.LeaseUntil = time.Time{}
			if q.m != nil {
				q.m.requeued.Inc()
			}
		}
	}
	q.publishDepth()
	return q, nil
}

// replay applies one journal record to the in-memory index.
func (q *Queue) replay(typ byte, payload []byte) error {
	switch typ {
	case opEnqueue:
		j, err := decEnqueue(payload)
		if err != nil {
			return err
		}
		q.jobs[j.ID] = j
		q.order = append(q.order, j.ID)
		if j.ID >= q.nextID {
			q.nextID = j.ID + 1
		}
	case opClaim:
		id, owner, lease, err := decClaim(payload)
		if err != nil {
			return err
		}
		j, ok := q.jobs[id]
		if !ok {
			return fmt.Errorf("queue: claim of unknown job %d", id)
		}
		j.State = Claimed
		j.Owner = owner
		j.LeaseUntil = lease
		j.Attempts++
	case opRenew:
		id, _, lease, err := decClaim(payload)
		if err != nil {
			return err
		}
		if j, ok := q.jobs[id]; ok && j.State == Claimed {
			j.LeaseUntil = lease
		}
	case opCheckpoint:
		id, data, err := decBlob(payload)
		if err != nil {
			return err
		}
		j, ok := q.jobs[id]
		if !ok {
			return fmt.Errorf("queue: checkpoint for unknown job %d", id)
		}
		j.Checkpoint = data
	case opComplete:
		id, data, err := decBlob(payload)
		if err != nil {
			return err
		}
		j, ok := q.jobs[id]
		if !ok {
			return fmt.Errorf("queue: completion of unknown job %d", id)
		}
		j.State = Done
		j.Owner = ""
		j.Result = data
	case opRelease:
		if len(payload) != 8 {
			return fmt.Errorf("queue: malformed release record")
		}
		id := binary.LittleEndian.Uint64(payload)
		j, ok := q.jobs[id]
		if !ok {
			return fmt.Errorf("queue: release of unknown job %d", id)
		}
		j.State = Pending
		j.Owner = ""
		j.LeaseUntil = time.Time{}
	default:
		return fmt.Errorf("queue: unknown record type 0x%02x", typ)
	}
	return nil
}

// Enqueue appends a job request durably and returns its ID. Only the
// request fields (Model, Epochs, BatchSize, Payload) of j are used.
func (q *Queue) Enqueue(j Job) (uint64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j.ID = q.nextID
	j.State = Pending
	j.Owner, j.LeaseUntil, j.Attempts, j.Checkpoint, j.Result = "", time.Time{}, 0, nil, nil
	if err := q.wal.Append(opEnqueue, encEnqueue(&j)); err != nil {
		return 0, err
	}
	q.nextID++
	q.jobs[j.ID] = j.clone()
	q.order = append(q.order, j.ID)
	if q.m != nil {
		q.m.enqueued.Inc()
	}
	q.publishDepth()
	return j.ID, nil
}

// Claim durably claims the oldest claimable job for this queue's owner
// under a fresh lease: the oldest Pending job, or the oldest Claimed
// job whose lease has expired (which counts as a requeue). Returns a
// copy of the job — including any checkpoint from a previous attempt —
// or ErrEmpty.
func (q *Queue) Claim() (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	for _, id := range q.order {
		j := q.jobs[id]
		expired := j.State == Claimed && now.After(j.LeaseUntil)
		if j.State != Pending && !expired {
			continue
		}
		lease := now.Add(q.opts.Lease)
		if err := q.wal.Append(opClaim, encClaim(id, q.owner, lease)); err != nil {
			return nil, err
		}
		if expired && q.m != nil {
			q.m.requeued.Inc()
		}
		j.State = Claimed
		j.Owner = q.owner
		j.LeaseUntil = lease
		j.Attempts++
		if q.m != nil {
			q.m.claimed.Inc()
		}
		q.publishDepth()
		return j.clone(), nil
	}
	return nil, ErrEmpty
}

// Renew durably extends the caller's lease on a claimed job.
func (q *Queue) Renew(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id)
	if err != nil {
		return err
	}
	lease := q.opts.Now().Add(q.opts.Lease)
	if err := q.wal.Append(opRenew, encClaim(id, q.owner, lease)); err != nil {
		return err
	}
	j.LeaseUntil = lease
	return nil
}

// Checkpoint durably journals a resumable fit checkpoint for a job this
// owner has claimed, and renews the lease (a training step that makes
// checkpoint progress is alive by definition).
func (q *Queue) Checkpoint(id uint64, data []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id)
	if err != nil {
		return err
	}
	if err := q.wal.Append(opCheckpoint, encBlob(id, data)); err != nil {
		return err
	}
	j.Checkpoint = append([]byte(nil), data...)
	j.LeaseUntil = q.opts.Now().Add(q.opts.Lease)
	if q.m != nil {
		q.m.checkpoints.Inc()
	}
	return nil
}

// Complete durably marks a claimed job done with its result.
func (q *Queue) Complete(id uint64, result []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.owned(id)
	if err != nil {
		return err
	}
	if err := q.wal.Append(opComplete, encBlob(id, result)); err != nil {
		return err
	}
	j.State = Done
	j.Owner = ""
	j.Result = append([]byte(nil), result...)
	if q.m != nil {
		q.m.completed.Inc()
	}
	q.publishDepth()
	return nil
}

// Release durably returns a claimed job to the pending state (checkpoint
// retained), for consumers shutting down gracefully.
func (q *Queue) Release(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, err := q.owned(id); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], id)
	if err := q.wal.Append(opRelease, b[:]); err != nil {
		return err
	}
	j := q.jobs[id]
	j.State = Pending
	j.Owner = ""
	j.LeaseUntil = time.Time{}
	q.publishDepth()
	return nil
}

// owned returns the job iff it is claimed by this queue's owner.
func (q *Queue) owned(id uint64) (*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, fmt.Errorf("queue: unknown job %d", id)
	}
	if j.State != Claimed || j.Owner != q.owner {
		return nil, fmt.Errorf("queue: job %d is %s by %q, not claimed by %q", id, j.State, j.Owner, q.owner)
	}
	return j, nil
}

// Get returns a copy of a job by ID.
func (q *Queue) Get(id uint64) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// Jobs returns copies of all jobs in enqueue order.
func (q *Queue) Jobs() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.jobs[id].clone())
	}
	return out
}

// Depth reports the number of claimable (pending or lease-expired) jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depthLocked()
}

func (q *Queue) depthLocked() int {
	now := q.opts.Now()
	n := 0
	for _, j := range q.jobs {
		if j.State == Pending || (j.State == Claimed && now.After(j.LeaseUntil)) {
			n++
		}
	}
	return n
}

func (q *Queue) publishDepth() {
	if q.m != nil {
		q.m.depth.Set(float64(q.depthLocked()))
	}
}

// Compact collapses the journal into one canonical record set per live
// job at the head of a fresh segment. Done jobs older than the newest
// incomplete job are retained too — results are part of the truth —
// so retention is the caller's policy via Remove (not yet needed).
func (q *Queue) Compact() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	var recs []db.Record
	for _, id := range q.order {
		j := q.jobs[id]
		recs = append(recs, db.Record{Type: opEnqueue, Payload: encEnqueue(j)})
		switch j.State {
		case Claimed:
			recs = append(recs, db.Record{Type: opClaim, Payload: encClaim(j.ID, j.Owner, j.LeaseUntil)})
		case Done:
			recs = append(recs, db.Record{Type: opComplete, Payload: encBlob(j.ID, j.Result)})
		}
		if j.Checkpoint != nil && j.State != Done {
			recs = append(recs, db.Record{Type: opCheckpoint, Payload: encBlob(j.ID, j.Checkpoint)})
		}
	}
	if err := q.wal.Compact(recs); err != nil {
		return err
	}
	// Replayed attempts count one claim record per attempt; after
	// compaction a claimed job replays exactly one, so fold the
	// difference into the snapshot semantics: Attempts survives only in
	// memory. That is acceptable — Attempts is advisory.
	return nil
}

// WAL exposes the underlying log for size accounting and recovery info.
func (q *Queue) WAL() *db.WAL { return q.wal }

// Sync flushes the journal.
func (q *Queue) Sync() error { return q.wal.Sync() }

// Close closes the journal. The queue must not be used afterwards.
func (q *Queue) Close() error { return q.wal.Close() }

// --- record encodings (little-endian) ---

func encEnqueue(j *Job) []byte {
	var buf bytes.Buffer
	buf.Grow(8 + 2 + len(j.Model) + 8 + 4 + len(j.Payload))
	le := binary.LittleEndian
	var b [8]byte
	le.PutUint64(b[:], j.ID)
	buf.Write(b[:])
	le.PutUint16(b[:2], uint16(len(j.Model)))
	buf.Write(b[:2])
	buf.WriteString(j.Model)
	le.PutUint32(b[:4], uint32(j.Epochs))
	buf.Write(b[:4])
	le.PutUint32(b[:4], uint32(j.BatchSize))
	buf.Write(b[:4])
	le.PutUint32(b[:4], uint32(len(j.Payload)))
	buf.Write(b[:4])
	buf.Write(j.Payload)
	return buf.Bytes()
}

func decEnqueue(payload []byte) (*Job, error) {
	r := bytes.NewReader(payload)
	le := binary.LittleEndian
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	j := &Job{ID: le.Uint64(b[:])}
	if _, err := io.ReadFull(r, b[:2]); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	name := make([]byte, le.Uint16(b[:2]))
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	j.Model = string(name)
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	j.Epochs = int(le.Uint32(b[:4]))
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	j.BatchSize = int(le.Uint32(b[:4]))
	if _, err := io.ReadFull(r, b[:4]); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	n := le.Uint32(b[:4])
	if int64(n) > int64(r.Len()) {
		return nil, fmt.Errorf("queue: enqueue payload length %d exceeds record", n)
	}
	j.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, j.Payload); err != nil {
		return nil, fmt.Errorf("queue: malformed enqueue record: %w", err)
	}
	return j, nil
}

func encClaim(id uint64, owner string, lease time.Time) []byte {
	buf := make([]byte, 8+2+len(owner)+8)
	le := binary.LittleEndian
	le.PutUint64(buf[0:8], id)
	le.PutUint16(buf[8:10], uint16(len(owner)))
	copy(buf[10:], owner)
	le.PutUint64(buf[10+len(owner):], uint64(lease.UnixNano()))
	return buf
}

func decClaim(payload []byte) (id uint64, owner string, lease time.Time, err error) {
	le := binary.LittleEndian
	if len(payload) < 10 {
		return 0, "", time.Time{}, fmt.Errorf("queue: malformed claim record")
	}
	id = le.Uint64(payload[0:8])
	n := int(le.Uint16(payload[8:10]))
	if len(payload) != 10+n+8 {
		return 0, "", time.Time{}, fmt.Errorf("queue: malformed claim record")
	}
	owner = string(payload[10 : 10+n])
	lease = time.Unix(0, int64(le.Uint64(payload[10+n:])))
	return id, owner, lease, nil
}

func encBlob(id uint64, data []byte) []byte {
	buf := make([]byte, 8+4+len(data))
	binary.LittleEndian.PutUint64(buf[0:8], id)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
	copy(buf[12:], data)
	return buf
}

func decBlob(payload []byte) (uint64, []byte, error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("queue: malformed record")
	}
	id := binary.LittleEndian.Uint64(payload[0:8])
	n := binary.LittleEndian.Uint32(payload[8:12])
	if int(n) != len(payload)-12 {
		return 0, nil, fmt.Errorf("queue: record length %d does not match payload", n)
	}
	return id, append([]byte(nil), payload[12:]...), nil
}

// Stats is a point-in-time census of the queue.
type Stats struct {
	Pending, Claimed, Done int
	Checkpointed           int // live jobs carrying a resumable checkpoint
}

// Snapshot returns the census.
func (q *Queue) Snapshot() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var st Stats
	for _, j := range q.jobs {
		switch j.State {
		case Pending:
			st.Pending++
		case Claimed:
			st.Claimed++
		case Done:
			st.Done++
		}
		if j.Checkpoint != nil && j.State != Done {
			st.Checkpointed++
		}
	}
	return st
}
