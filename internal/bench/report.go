package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/autonomizer/autonomizer/internal/canny"
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/arkanoid"
	"github.com/autonomizer/autonomizer/internal/games/breakout"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/flappy"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/phylip"
	"github.com/autonomizer/autonomizer/internal/rothwell"
	"github.com/autonomizer/autonomizer/internal/sphinx"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// TunedRLConfig returns the per-subject training configuration the
// Table 3 harness uses for a mode. Raw gets the same wall-clock budget
// All's training consumed at most (the paper gives both 24 hours) —
// callers pass that in; zero means step-budget only.
func TunedRLConfig(subject *RLSubject, mode InputMode, wallClock time.Duration) RLConfig {
	return RLConfig{
		Mode:              mode,
		TrainSteps:        subject.TunedTrainSteps,
		EpsilonDecaySteps: subject.TunedEpsilonDecay,
		EvalEvery:         subject.TunedEvalEvery,
		TrainWallClock:    wallClock,
		Seed:              1,
	}
}

// Table1Row is one subject's program-analysis statistics.
type Table1Row struct {
	Kind      string // "SL" or "RL"
	Program   string
	LOC       int
	AddedLOC  int
	TrgVars   int
	Candidate int
	// FeatureCounts is per-target for SL (the paper's "1/23/23" cells)
	// and the combined count for RL.
	FeatureCounts []int
	// Note marks emulator-annotated subjects (the paper leaves their
	// analysis columns empty).
	Note string
}

// RenderTable1 prints rows in the paper's Table 1 layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1. Program analysis statistics")
	fmt.Fprintf(w, "%-4s %-11s %7s %6s %5s %10s %s\n",
		"", "Program", "LOC", "Added", "Trg", "Candidate", "Feature Vars")
	for _, r := range rows {
		feat := make([]string, len(r.FeatureCounts))
		for i, f := range r.FeatureCounts {
			feat[i] = fmt.Sprintf("%d", f)
		}
		featStr := strings.Join(feat, "/")
		if r.Note != "" {
			featStr += " (" + r.Note + ")"
		}
		fmt.Fprintf(w, "[%s] %-11s %7d %6d %5d %10d %s\n",
			r.Kind, r.Program, r.LOC, r.AddedLOC, r.TrgVars, r.Candidate, featStr)
	}
}

// Table2Row is one subject's model statistics.
type Table2Row struct {
	Kind    string
	Program string
	// SL: trace/model bytes per feature band. RL: Raw and All only.
	RawTrace, RawModel int
	MedTrace, MedModel int // SL only
	MinTrace, MinModel int // SL: Min; RL: All
	// Checkpoint/restore modeled durations (RL only).
	CkptTime, RestoreTime time.Duration
}

// RenderTable2 prints rows in the paper's Table 2 layout.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2. Model statistics (trace and model sizes in bytes)")
	fmt.Fprintf(w, "%-4s %-11s %23s %23s %23s %14s %10s %10s\n",
		"", "Program", "Raw(trace/model)", "Med(trace/model)", "Min|All(trace/model)", "Raw/Min ratio", "Ckpt", "Restore")
	for _, r := range rows {
		ratioT, ratioM := "-", "-"
		if r.MinTrace > 0 {
			ratioT = fmt.Sprintf("%.1f", float64(r.RawTrace)/float64(r.MinTrace))
		}
		if r.MinModel > 0 {
			ratioM = fmt.Sprintf("%.1f", float64(r.RawModel)/float64(r.MinModel))
		}
		med := "-"
		if r.MedTrace > 0 {
			med = fmt.Sprintf("%d/%d", r.MedTrace, r.MedModel)
		}
		ck, rs := "-", "-"
		if r.CkptTime > 0 {
			ck = r.CkptTime.Round(time.Millisecond * 10).String()
			rs = r.RestoreTime.Round(time.Millisecond * 10).String()
		}
		fmt.Fprintf(w, "[%s] %-11s %23s %23s %23s %14s %10s %10s\n",
			r.Kind, r.Program,
			fmt.Sprintf("%d/%d", r.RawTrace, r.RawModel),
			med,
			fmt.Sprintf("%d/%d", r.MinTrace, r.MinModel),
			ratioT+"x/"+ratioM+"x", ck, rs)
	}
}

// Table3SLRow is one supervised subject's effectiveness comparison.
type Table3SLRow struct {
	Program      string
	HigherBetter bool
	Baseline     *SLResult
}

// Table3RLRow is one interactive subject's effectiveness comparison.
type Table3RLRow struct {
	Program      string
	All, Raw     *RLResult
	ScoreIsCount bool
}

// RenderTable3SL prints the supervised half of Table 3.
func RenderTable3SL(w io.Writer, rows []*SLResult) {
	fmt.Fprintln(w, "Table 3 (SL). Baseline vs Raw vs Med vs Min")
	fmt.Fprintf(w, "%-10s %3s %9s | %9s %8s | %9s %8s | %9s %8s | %11s\n",
		"Program", "dir", "Baseline", "Raw", "(train)", "Med", "(train)", "Min", "(train)", "Raw/Min t")
	for _, r := range rows {
		dir := "↑"
		if !r.HigherBetter {
			dir = "↓"
		}
		raw, med, min := r.Versions[PickRaw], r.Versions[PickMed], r.Versions[PickMin]
		// A version may be missing when an interrupted run flushed a
		// partial result; render "-" instead of crashing the flush.
		cell := func(v *SLVersionResult) (score, train string) {
			if v == nil {
				return "-", "-"
			}
			return fmt.Sprintf("%.3f", v.Score), v.TrainTime.Round(time.Millisecond).String()
		}
		rawS, rawT := cell(raw)
		medS, medT := cell(med)
		minS, minT := cell(min)
		ratio := "-"
		if raw != nil && min != nil && min.TrainTime > 0 {
			ratio = fmt.Sprintf("%.2f", float64(raw.TrainTime)/float64(min.TrainTime))
		}
		fmt.Fprintf(w, "%-10s %3s %9.3f | %9s %8s | %9s %8s | %9s %8s | %11s\n",
			r.Subject, dir, r.BaselineScore,
			rawS, rawT, medS, medT, minS, minT, ratio)
	}
	fmt.Fprintln(w, "Improvement over baseline (Min):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s Raw %+5.0f%%  Med %+5.0f%%  Min %+5.0f%%\n",
			r.Subject, r.Improvement(PickRaw), r.Improvement(PickMed), r.Improvement(PickMin))
	}
}

// RenderTable3RL prints the interactive half of Table 3.
func RenderTable3RL(w io.Writer, rows []Table3RLRow) {
	fmt.Fprintln(w, "Table 3 (RL). Players vs Raw vs All")
	fmt.Fprintf(w, "%-11s %14s | %22s | %22s\n",
		"Program", "Players", "Raw (score, train)", "All (score, train)")
	for _, r := range rows {
		fmtScore := func(res *RLResult, score, success float64) string {
			s := fmt.Sprintf("%.1f%%/%.0f%%", 100*score, 100*success)
			if r.ScoreIsCount {
				s = fmt.Sprintf("%.1f", score)
			}
			if res != nil {
				if res.StepsToCompetitive > 0 {
					s += fmt.Sprintf(" @%d", res.StepsToCompetitive)
				} else {
					s += " t/o"
				}
				s += " " + res.TrainTime.Round(time.Millisecond*100).String()
			}
			return s
		}
		players := fmt.Sprintf("%.1f%%/%.0f%%", 100*r.All.PlayerScore, 100*r.All.PlayerSuccess)
		if r.ScoreIsCount {
			players = fmt.Sprintf("%.1f", r.All.PlayerScore)
		}
		fmt.Fprintf(w, "%-11s %14s | %22s | %22s\n",
			r.Program, players,
			fmtScore(r.Raw, r.Raw.Score, r.Raw.SuccessRate),
			fmtScore(r.All, r.All.Score, r.All.SuccessRate))
	}
	fmt.Fprintln(w, "Exec overhead per frame (model-assisted vs plain):")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-11s base %8s  All %8s (%.1fx)  Raw %8s (%.1fx)\n",
			r.Program,
			r.All.BasePerStep, r.All.ExecPerStep,
			ratioDur(r.All.ExecPerStep, r.All.BasePerStep),
			r.Raw.ExecPerStep,
			ratioDur(r.Raw.ExecPerStep, r.All.BasePerStep))
	}
}

func ratioDur(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// RenderFig12 prints the per-image score comparison (Fig. 12: Canny
// predictions of 10 datasets).
func RenderFig12(w io.Writer, r *SLResult) {
	fmt.Fprintf(w, "Fig. 12. %s per-input scores on %d held-out inputs\n", r.Subject, len(r.BaselinePer))
	fmt.Fprintf(w, "%5s %9s %9s %9s %9s\n", "input", "Baseline", "Raw", "Med", "Min")
	for i := range r.BaselinePer {
		fmt.Fprintf(w, "%5d %9.3f %9.3f %9.3f %9.3f\n", i+1,
			r.BaselinePer[i],
			r.Versions[PickRaw].PerInput[i],
			r.Versions[PickMed].PerInput[i],
			r.Versions[PickMin].PerInput[i])
	}
	fmt.Fprintf(w, "%5s %9.3f %9.3f %9.3f %9.3f\n", "mean",
		r.BaselineScore, r.Versions[PickRaw].Score,
		r.Versions[PickMed].Score, r.Versions[PickMin].Score)
}

// RenderFig13 prints the score-vs-epoch curves (Fig. 13).
func RenderFig13(w io.Writer, r *SLResult, epochsPerSample int) {
	fmt.Fprintf(w, "Fig. 13. %s score vs training epochs\n", r.Subject)
	fmt.Fprintf(w, "%6s %9s %9s %9s %9s\n", "epoch", "Baseline", "Raw", "Med", "Min")
	n := len(r.Versions[PickMin].Curve)
	for i := 0; i < n; i++ {
		get := func(p FeaturePick) float64 {
			c := r.Versions[p].Curve
			if i < len(c) {
				return c[i]
			}
			return c[len(c)-1]
		}
		fmt.Fprintf(w, "%6d %9.3f %9.3f %9.3f %9.3f\n",
			i*epochsPerSample, r.BaselineScore, get(PickRaw), get(PickMed), get(PickMin))
	}
}

// RenderFig17 prints the TORCS driving-score curves (Fig. 17):
// Players reference plus the All / Manual / Raw learning curves.
func RenderFig17(w io.Writer, all, manual, raw *RLResult) {
	fmt.Fprintln(w, "Fig. 17. TORCS driving score vs training steps")
	fmt.Fprintf(w, "%8s %9s %9s %9s %9s\n", "step", "Players", "Manual", "All", "Raw")
	maxLen := len(all.Curve)
	if len(manual.Curve) > maxLen {
		maxLen = len(manual.Curve)
	}
	if len(raw.Curve) > maxLen {
		maxLen = len(raw.Curve)
	}
	at := func(c []RLCurvePoint, i int) float64 {
		if len(c) == 0 {
			return 0
		}
		if i < len(c) {
			return c[i].Score
		}
		return c[len(c)-1].Score
	}
	for i := 0; i < maxLen; i++ {
		step := 0
		switch {
		case i < len(all.Curve):
			step = all.Curve[i].Step
		case i < len(manual.Curve):
			step = manual.Curve[i].Step
		case i < len(raw.Curve):
			step = raw.Curve[i].Step
		}
		fmt.Fprintf(w, "%8d %9.3f %9.3f %9.3f %9.3f\n",
			step, all.PlayerScore, at(manual.Curve, i), at(all.Curve, i), at(raw.Curve, i))
	}
	fmt.Fprintf(w, "steps to competitive: Manual=%d All=%d Raw=%d (0 = t/o)\n",
		manual.StepsToCompetitive, all.StepsToCompetitive, raw.StepsToCompetitive)
}

// TORCSFeatureAblation runs Algorithm 2 on the TORCS control loop with
// pruning enabled (the paper's thresholds) or disabled, returning the
// surviving feature list — the input widths the pruning ablation
// compares.
func TORCSFeatureAblation(seed uint64, withPruning bool) []string {
	game := torcs.New(seed)
	rec := trace.NewRecorder()
	env.RunEpisode(game, func(e env.Env) int {
		rec.RecordAll(e.StateVars())
		return torcs.ScriptedPlayer(e)
	}, 400)
	cfg := extract.RLConfig{}
	if withPruning {
		cfg = extract.RLConfig{Epsilon1: 0.05, Epsilon2: 0.01}
	}
	report := extract.RL(torcs.DepGraph(), rec, torcs.TargetVars(),
		env.SortedVarNames(game), cfg)
	return report.Features["steer"]
}

// SubjectDepGraph builds the dynamic dependence graph of a named
// subject (profiling one run for the SL subjects), for inspection and
// DOT export. Known names: canny, rothwell, phylip, sphinx, flappy,
// mario, arkanoid, torcs, breakout.
func SubjectDepGraph(name string, seed uint64) (*dep.Graph, error) {
	g := dep.NewGraph()
	switch name {
	case "canny":
		sc := imaging.GenerateScene(stats.NewRNG(seed), imaging.SceneConfig{W: 32, H: 32})
		if _, err := canny.Detect(sc.Img, canny.DefaultParams(), g, nil); err != nil {
			return nil, err
		}
	case "rothwell":
		sc := imaging.GenerateScene(stats.NewRNG(seed), imaging.SceneConfig{W: 32, H: 32})
		if _, err := rothwell.Detect(sc.Img, rothwell.DefaultParams(), g, nil); err != nil {
			return nil, err
		}
	case "phylip":
		ds := phylip.Evolve(stats.NewRNG(seed), phylip.EvolveConfig{Taxa: 6, SeqLen: 80})
		if _, err := phylip.InferTree(ds.Seqs, phylip.DefaultParams(), g, nil); err != nil {
			return nil, err
		}
	case "sphinx":
		u := sphinx.Generate(stats.NewRNG(seed), sphinx.GenConfig{})
		if _, err := sphinx.Recognize(u.Samples, sphinx.DefaultParams(), g, nil); err != nil {
			return nil, err
		}
	case "flappy":
		return flappy.DepGraph(), nil
	case "mario":
		return mario.DepGraph(), nil
	case "arkanoid":
		return arkanoid.DepGraph(), nil
	case "torcs":
		return torcs.DepGraph(), nil
	case "breakout":
		return breakout.DepGraph(), nil
	default:
		return nil, fmt.Errorf("bench: unknown subject %q", name)
	}
	return g, nil
}
