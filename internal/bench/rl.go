package bench

import (
	"context"
	"errors"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/games/arkanoid"
	"github.com/autonomizer/autonomizer/internal/games/breakout"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/flappy"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// InputMode selects what the model sees, the paper's central RL
// comparison.
type InputMode int

// Input modes.
const (
	// InputAll feeds the extracted internal program variables (the
	// paper's "All" configuration).
	InputAll InputMode = iota
	// InputRaw feeds downsampled screen pixels through a CNN (the
	// paper's DeepMind-style "Raw" configuration).
	InputRaw
	// InputManual feeds a small hand-curated feature subset (the expert
	// model of the TORCS case study, Fig. 17).
	InputManual
)

// String implements fmt.Stringer.
func (m InputMode) String() string {
	switch m {
	case InputAll:
		return "All"
	case InputRaw:
		return "Raw"
	default:
		return "Manual"
	}
}

// RLSubject adapts one interactive program to the harness.
type RLSubject struct {
	// Name is the display name.
	Name string
	// NewEnv builds the environment for a seed.
	NewEnv func(seed uint64) env.Env
	// Features are the All-mode state variables (post-Algorithm-2).
	Features []string
	// FeatureScale divides each feature before it reaches the model;
	// len must match Features (DQN needs roughly unit-scale inputs).
	FeatureScale []float64
	// ManualFeatures is the hand-curated subset for InputManual (the
	// TORCS expert baseline); empty reuses Features.
	ManualFeatures []string
	// ManualScale aligns with ManualFeatures.
	ManualScale []float64
	// Player is the scripted reference controller (the human-player
	// stand-in of Table 3).
	Player env.Policy
	// Actions is the discrete action count.
	Actions int
	// MaxEpisodeSteps bounds one episode.
	MaxEpisodeSteps int
	// ScoreIsCount marks scores that are raw counts rather than
	// fractions (Breakout's bricks-hit).
	ScoreIsCount bool
	// TunedTrainSteps, TunedEpsilonDecay and TunedEvalEvery are the
	// per-subject training budgets the Table 3 harness uses (found by
	// sweeps; see EXPERIMENTS.md).
	TunedTrainSteps, TunedEpsilonDecay, TunedEvalEvery int
}

// RLConfig sizes one reinforcement-learning experiment.
type RLConfig struct {
	// Mode selects All / Raw / Manual.
	Mode InputMode
	// TrainSteps is the environment-step budget (the paper's 24 h
	// timeout analog; default 20000).
	TrainSteps int
	// EvalEpisodes is the paper's "average of 10 runs" (default 10).
	EvalEpisodes int
	// EvalEvery samples the learning curve each this many steps
	// (default TrainSteps/10).
	EvalEvery int
	// RawDownsample reduces the 64×64 screen for Raw mode (default 4 →
	// 16×16 inputs).
	RawDownsample int
	// Seed drives the environment layout and, unless AgentSeed is set,
	// the agent's initialization and exploration too.
	Seed uint64
	// AgentSeed, when nonzero, decouples the agent's stochasticity from
	// the stage layout so retries explore differently on the same stage.
	AgentSeed uint64
	// Hidden is the DNN architecture for All/Manual (default {64, 32};
	// the paper's Mario uses {256, 64} — smaller works at our scale).
	Hidden []int
	// EpsilonDecaySteps anneals exploration (default TrainSteps/2).
	EpsilonDecaySteps int
	// LR is the learning rate (default 1e-3).
	LR float64
	// TrainWallClock, when positive, stops training after this much
	// wall-clock time regardless of remaining steps — the equivalent of
	// the paper's 24-hour training timeout, under which the slow Raw
	// models complete far fewer updates than All in the same time.
	TrainWallClock time.Duration
	// NoEarlyStop keeps training past the competitive threshold, for
	// rendering full learning curves (Fig. 17).
	NoEarlyStop bool
}

func (c *RLConfig) fillDefaults() {
	if c.TrainSteps == 0 {
		c.TrainSteps = 20000
	}
	if c.EvalEpisodes == 0 {
		c.EvalEpisodes = 10
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = c.TrainSteps / 20
		if c.EvalEvery < 200 {
			c.EvalEvery = 200
		}
	}
	if c.RawDownsample == 0 {
		c.RawDownsample = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Hidden == nil {
		c.Hidden = []int{64, 32}
	}
	if c.EpsilonDecaySteps == 0 {
		c.EpsilonDecaySteps = c.TrainSteps * 6 / 10
	}
	// A subject's tuned budgets apply when the caller leaves them unset.
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// RLCurvePoint is one learning-curve sample (Fig. 13/17 series).
type RLCurvePoint struct {
	Step    int
	Score   float64
	Success float64
}

// RLResult is one (subject, mode) training run's measurements.
type RLResult struct {
	Subject string
	Mode    InputMode
	// Score and SuccessRate are the final greedy-policy evaluation.
	Score       float64
	SuccessRate float64
	// PlayerScore and PlayerSuccess are the scripted reference.
	PlayerScore   float64
	PlayerSuccess float64
	// TrainTime is the wall-clock training cost; TrainSteps the budget.
	TrainTime  time.Duration
	TrainSteps int
	// ExecPerStep is the per-frame inference cost of the trained agent.
	ExecPerStep time.Duration
	// BasePerStep is the per-frame cost of the un-autonomized game.
	BasePerStep time.Duration
	// TraceBytes and ModelBytes feed Table 2.
	TraceBytes, ModelBytes int
	// InputSize is the model's input width.
	InputSize int
	// Curve is the learning curve.
	Curve []RLCurvePoint
	// Checkpoints/Restores count au_checkpoint/au_restore activity.
	Checkpoints, Restores int
	// StepsToCompetitive is the training step at which the evaluation
	// first came within 20% of the players (the paper's stop
	// criterion); 0 means the budget ran out first (the paper's "t/o").
	StepsToCompetitive int
}

// Competitive reports whether the final score is within 20% of the
// scripted player — the paper's training-stop criterion ("difference
// < 20%").
func (r *RLResult) Competitive() bool {
	if r.PlayerScore == 0 {
		return r.Score >= 0
	}
	return r.Score >= 0.8*r.PlayerScore
}

// stateFunc builds the model-input encoder for a mode.
func stateFunc(subject *RLSubject, cfg *RLConfig) (func(e env.Env) []float64, int, []int) {
	switch cfg.Mode {
	case InputRaw:
		side := 64 / cfg.RawDownsample
		return func(e env.Env) []float64 {
			return env.RawState(e, cfg.RawDownsample)
		}, side * side, []int{1, side, side}
	case InputManual:
		feats, scale := subject.ManualFeatures, subject.ManualScale
		if len(feats) == 0 {
			feats, scale = subject.Features, subject.FeatureScale
		}
		return scaledStateFunc(feats, scale), len(feats), nil
	default:
		return scaledStateFunc(subject.Features, subject.FeatureScale), len(subject.Features), nil
	}
}

func scaledStateFunc(feats []string, scale []float64) func(e env.Env) []float64 {
	return func(e env.Env) []float64 {
		v := env.StateVector(e, feats)
		for i := range v {
			if i < len(scale) && scale[i] != 0 {
				v[i] /= scale[i]
			}
			// Clamp: distance-style variables use large sentinels when
			// no object is ahead (e.g. ditchDist = 999); unclamped they
			// saturate the network and drown the informative range.
			v[i] = stats.Clamp(v[i], -1.5, 1.5)
		}
		return v
	}
}

// defaultLearnEvery throttles DQN updates (1 = every step).
var defaultLearnEvery = 1

// playerNoise is the action-noise rate of the human-player stand-in;
// at 1% the Mario reference lands at 91%/90%, matching the paper's
// human average of 92%/90%.
const playerNoise = 0.01

// noisyPolicyStream wraps a policy with uniform action noise drawn from
// the given private stream. Parallel rollouts hand each episode its own
// stream (stats.RNG.SplitN), so episode outcomes are independent of how
// episodes are scheduled onto workers.
func noisyPolicyStream(p env.Policy, actions int, rng *stats.RNG, rate float64) env.Policy {
	return func(e env.Env) int {
		if rng.Bool(rate) {
			return rng.Intn(actions)
		}
		return p(e)
	}
}

// RunRL trains with context.Background(); see RunRLCtx.
func RunRL(subject *RLSubject, cfg RLConfig) (*RLResult, error) {
	return RunRLCtx(context.Background(), subject, cfg)
}

// RunRLCtx trains one agent with the full Fig. 2 annotation protocol —
// checkpoint at loop entry, extract/serialize/NN/write-back each
// iteration, restore at end states — and evaluates it greedily.
//
// Cancellation is observed at environment-step boundaries (the DQN's
// atomic training unit): a canceled context stops the loop, restores the
// best snapshot seen so far, fills the result with the progress made
// (learning curve, trace/model sizes, best evaluation score) and returns
// it alongside an error wrapping auerr.ErrCanceled — so an interrupted
// suite can still render partial tables.
func RunRLCtx(ctx context.Context, subject *RLSubject, cfg RLConfig) (*RLResult, error) {
	cfg.fillDefaults()
	if err := ctx.Err(); err != nil {
		return nil, auerr.Canceled(ctx)
	}
	encode, inSize, inputShape := stateFunc(subject, &cfg)

	game := subject.NewEnv(cfg.Seed)
	agentSeed := cfg.AgentSeed
	if agentSeed == 0 {
		agentSeed = cfg.Seed
	}
	rt := core.NewRuntime(core.Train, agentSeed*31+uint64(cfg.Mode))
	spec := core.ModelSpec{
		Name: subject.Name, Algo: core.QLearn, Actions: subject.Actions,
		Hidden: cfg.Hidden, LR: cfg.LR,
		EpsilonDecaySteps: cfg.EpsilonDecaySteps,
		Gamma:             0.97,
		TargetSyncEvery:   150,
		ReplayCapacity:    20000,
		LearnEvery:        defaultLearnEvery,
	}
	if cfg.Mode == InputRaw {
		spec.Type = core.CNN
		spec.InputShape = inputShape
	}
	if err := rt.Config(spec); err != nil {
		return nil, err
	}

	res := &RLResult{
		Subject: subject.Name, Mode: cfg.Mode,
		TrainSteps: cfg.TrainSteps, InputSize: inSize,
	}

	// Reference player (Table 3's "Players" column): the scripted
	// controller with a small action-noise rate, standing in for the
	// paper's average of 10 human players (humans mistime inputs; a
	// noise-free script would set a bar no human baseline sets).
	// Episodes roll out in parallel, each with a private environment and
	// its own noise stream split from the player seed.
	playerEpisodes := cfg.EvalEpisodes
	if playerEpisodes < 20 {
		playerEpisodes = 20 // the noisy reference needs a stable average
	}
	noiseStreams := stats.NewRNG(cfg.Seed + 77).SplitN(playerEpisodes)
	res.PlayerScore, res.PlayerSuccess = env.ParallelAverageScore(
		func(int) env.Env { return subject.NewEnv(cfg.Seed) },
		func(ep int) env.Policy {
			return noisyPolicyStream(subject.Player, subject.Actions, noiseStreams[ep], playerNoise)
		},
		playerEpisodes, subject.MaxEpisodeSteps)

	// Un-autonomized per-frame cost (Table 3 baseline exec time).
	baseEnv := subject.NewEnv(cfg.Seed)
	baseStart := time.Now()
	baseSteps := 2000
	for i := 0; i < baseSteps; i++ {
		if _, term := baseEnv.Step(subject.Player(baseEnv)); term {
			baseEnv.Reset()
		}
	}
	res.BasePerStep = time.Since(baseStart) / time.Duration(baseSteps)

	// Training, following the annotated game loop. As in Fig. 2, the
	// reward computed after acting is delivered to the model at the top
	// of the next loop iteration; pendReward carries it across.
	game.Reset()
	rt.Checkpoint(game, 1<<20) // σ accounting: ~1 MB of game state
	episodeSteps := 0
	pendReward := 0.0
	bestScore := -1.0
	var bestParams []byte
	start := time.Now()
	canceled := false
	for step := 0; step < cfg.TrainSteps; step++ {
		if ctx.Err() != nil {
			canceled = true
			break // step boundary: the DQN's atomic training unit
		}
		if cfg.TrainWallClock > 0 && time.Since(start) > cfg.TrainWallClock {
			break // the 24-hour-timeout analog
		}
		state := encode(game)
		rt.Extract("STATE", state...)
		if err := rt.NNRLCtx(ctx, subject.Name, "STATE", pendReward, false, "output"); err != nil {
			if errors.Is(err, auerr.ErrCanceled) {
				canceled = true
				break
			}
			return nil, err
		}
		action, err := rt.WriteBackAction("output")
		if err != nil {
			return nil, err
		}
		reward, terminal := game.Step(action)
		pendReward = reward
		episodeSteps++

		if terminal || episodeSteps >= subject.MaxEpisodeSteps {
			// Close the trajectory with a final au_NN carrying the
			// terminal reward, then roll back (au_restore).
			state = encode(game)
			rt.Extract("STATE", state...)
			if err := rt.NNRLCtx(ctx, subject.Name, "STATE", reward, true, "output"); err != nil {
				if errors.Is(err, auerr.ErrCanceled) {
					canceled = true
					break
				}
				return nil, err
			}
			if err := rt.Restore(game); err != nil {
				return nil, err
			}
			pendReward = 0
			episodeSteps = 0
		}

		if (step+1)%cfg.EvalEvery == 0 {
			score, success := evalGreedy(subject, rt, encode, cfg)
			res.Curve = append(res.Curve, RLCurvePoint{Step: step + 1, Score: score, Success: success})
			// Keep the best-scoring snapshot: evaluation of a moving
			// policy oscillates, and the deployed model is the best one
			// seen, mirroring the paper's stop-at-competitive protocol.
			if score > bestScore {
				bestScore = score
				if data, err := rt.SaveModel(subject.Name); err == nil {
					bestParams = data
				}
			}
			// The paper's stop criterion: training ends once the agent
			// is competitive with the players (difference < 20%).
			if score >= 0.8*res.PlayerScore && res.StepsToCompetitive == 0 {
				res.StepsToCompetitive = step + 1
				if !cfg.NoEarlyStop {
					break
				}
			}
		}
	}
	res.TrainTime = time.Since(start)
	if bestParams != nil {
		if err := rt.LoadModelParams(subject.Name, bestParams); err != nil {
			return nil, err
		}
	}

	if st, ok := rt.RLStats(subject.Name); ok {
		res.TraceBytes = st.TraceBytes
	}
	if mb, err := rt.ModelSizeBytes(subject.Name); err == nil {
		res.ModelBytes = mb
	}
	ck := rt.Checkpoints().Stats()
	res.Checkpoints, res.Restores = ck.Checkpoints, ck.Restores

	if canceled {
		// Skip the final greedy evaluation; report the best mid-training
		// evaluation so an interrupted suite still renders a partial
		// table row for this run.
		for i, p := range res.Curve {
			if i == 0 || p.Score > res.Score {
				res.Score, res.SuccessRate = p.Score, p.Success
			}
		}
		return res, auerr.Canceled(ctx)
	}

	// Final greedy evaluation + per-step exec cost.
	evalStart := time.Now()
	res.Score, res.SuccessRate = evalGreedy(subject, rt, encode, cfg)
	evalEnv := subject.NewEnv(cfg.Seed)
	nProbe := 500
	probeStart := time.Now()
	for i := 0; i < nProbe; i++ {
		state := encode(evalEnv)
		out, err := rt.Predict(subject.Name, state)
		if err != nil {
			return nil, err
		}
		if _, term := evalEnv.Step(stats.ArgMax(out)); term {
			evalEnv.Reset()
		}
	}
	res.ExecPerStep = time.Since(probeStart) / time.Duration(nProbe)
	_ = evalStart
	return res, nil
}

// evalGreedy plays EvalEpisodes with the greedy policy, rolling episodes
// out in parallel: each episode owns a fresh environment with the same
// layout seed and a private inference replica from rt.Predictor (shared
// weights, private activation caches), so no episode serializes on the
// training network's lock. The training loop is paused while this runs,
// so the weights are quiescent as Predictor requires.
func evalGreedy(subject *RLSubject, rt *core.Runtime, encode func(env.Env) []float64, cfg RLConfig) (score, success float64) {
	return env.ParallelAverageScore(
		func(int) env.Env { return subject.NewEnv(cfg.Seed) },
		func(int) env.Policy {
			pred, err := rt.Predictor(subject.Name)
			if err != nil {
				return func(env.Env) int { return 0 }
			}
			return func(e env.Env) int {
				return stats.ArgMax(pred(encode(e)))
			}
		},
		cfg.EvalEpisodes, subject.MaxEpisodeSteps)
}

// AllRLSubjects lists the five interactive subjects in Table 1/3 order.
func AllRLSubjects() []*RLSubject {
	return []*RLSubject{
		FlappySubject(), MarioSubject(), ArkanoidSubject(), TORCSSubject(), BreakoutSubject(),
	}
}

// FlappySubject adapts Flappybird.
func FlappySubject() *RLSubject {
	return &RLSubject{
		Name:         "Flappybird",
		NewEnv:       func(seed uint64) env.Env { return flappy.New(seed) },
		Features:     flappy.FeatureVarNames(),
		FeatureScale: []float64{48, 3, 40, 48},
		Player:       flappy.ScriptedPlayer,
		Actions:      2, MaxEpisodeSteps: 600,
		TunedTrainSteps: 60000, TunedEpsilonDecay: 8000,
	}
}

// MarioSubject adapts the Mario platformer.
func MarioSubject() *RLSubject {
	return &RLSubject{
		Name:         "Mario",
		NewEnv:       func(seed uint64) env.Env { return mario.New(seed, mario.Options{}) },
		Features:     mario.FeatureVarNames(),
		FeatureScale: []float64{212, 16, 0.5, 1.2, 1, 12, 4, 8, 8, 3},
		Player:       mario.ScriptedPlayer,
		Actions:      5, MaxEpisodeSteps: 1500,
		TunedTrainSteps: 300000, TunedEpsilonDecay: 60000, TunedEvalEvery: 5000,
	}
}

// ArkanoidSubject adapts Arkanoid.
func ArkanoidSubject() *RLSubject {
	return &RLSubject{
		Name:   "Arkanoid",
		NewEnv: func(seed uint64) env.Env { return arkanoid.New(seed) },
		// The core ball-tracking variables; the powerup and count
		// variables survive extraction but dilute the Q-function at
		// this training scale (see EXPERIMENTS.md).
		Features:     []string{"paddleX", "paddleW", "ballX", "ballY", "ballVX", "ballVY", "ballDX"},
		FeatureScale: []float64{36, 10, 36, 44, 1, 1, 18},
		Player:       arkanoid.ScriptedPlayer,
		Actions:      3, MaxEpisodeSteps: 6000,
		TunedTrainSteps: 70000, TunedEpsilonDecay: 20000,
	}
}

// TORCSSubject adapts the driving simulator, including the Manual
// (expert-feature) configuration of Fig. 17.
func TORCSSubject() *RLSubject {
	return &RLSubject{
		Name:           "TORCS",
		NewEnv:         func(seed uint64) env.Env { return torcs.New(seed) },
		Features:       torcs.FeatureVarNames(),
		FeatureScale:   []float64{4, 60, 5, 5, 5, 8, 600},
		ManualFeatures: []string{"trackPos", "angle", "curvNext"},
		ManualScale:    []float64{1, 60, 5},
		Player:         torcs.ScriptedPlayer,
		Actions:        3, MaxEpisodeSteps: 800,
		TunedTrainSteps: 20000, TunedEpsilonDecay: 8000,
	}
}

// BreakoutSubject adapts Breakout.
func BreakoutSubject() *RLSubject {
	return &RLSubject{
		Name:         "Breakout",
		NewEnv:       func(seed uint64) env.Env { return breakout.New(seed) },
		Features:     breakout.FeatureVarNames(),
		FeatureScale: []float64{32, 32, 40, 1, 1, 16},
		Player:       breakout.ScriptedPlayer,
		Actions:      3, MaxEpisodeSteps: 4000,
		ScoreIsCount:    true,
		TunedTrainSteps: 60000, TunedEpsilonDecay: 10000,
	}
}
