package bench

import (
	"context"
	"errors"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/ckpt"
)

// SLSuiteConfig sizes the full supervised comparison (Tables 2/3 SL
// halves, Figs. 12/13). Zero values select the per-subject tuned
// budgets.
type SLSuiteConfig struct {
	Quick bool // smaller corpora and budgets for tests/benches
	Seed  uint64
}

// slConfigFor returns the training configuration for one subject;
// Phylip needs a larger corpus and budget because its labels are the
// noisiest (discrete tree scores).
func slConfigFor(subject SLSubject, suite SLSuiteConfig) SLConfig {
	cfg := SLConfig{Seed: suite.Seed}
	if suite.Quick {
		cfg.TrainN, cfg.TestN, cfg.Epochs = 24, 6, 12
		cfg.Hidden = []int{32, 16}
		return cfg
	}
	switch subject.Name() {
	case "Phylip":
		cfg.TrainN, cfg.TestN, cfg.Epochs = 150, 10, 200
		cfg.Hidden = []int{32, 16}
	default:
		cfg.TrainN, cfg.TestN, cfg.Epochs = 60, 10, 60
		cfg.Hidden = []int{64, 32}
	}
	return cfg
}

// RunSLSuite runs the supervised comparison with context.Background();
// see RunSLSuiteCtx.
func RunSLSuite(suite SLSuiteConfig) ([]*SLResult, error) {
	return RunSLSuiteCtx(context.Background(), suite)
}

// RunSLSuiteCtx runs the supervised comparison across all four
// subjects. A canceled context stops at the next training boundary and
// returns every result completed so far — including the partially
// filled result of the interrupted subject, when it has at least one
// finished version — alongside an error wrapping auerr.ErrCanceled, so
// the caller can flush partial tables.
func RunSLSuiteCtx(ctx context.Context, suite SLSuiteConfig) ([]*SLResult, error) {
	if suite.Seed == 0 {
		suite.Seed = 1
	}
	var out []*SLResult
	for _, s := range AllSLSubjects() {
		res, err := RunSLCtx(ctx, s, slConfigFor(s, suite))
		if err != nil {
			if errors.Is(err, auerr.ErrCanceled) {
				if res != nil && len(res.Versions) > 0 {
					out = append(out, res)
				}
				return out, err
			}
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RLSuiteConfig sizes the full interactive comparison.
type RLSuiteConfig struct {
	Quick bool
	Seed  uint64
	// Subjects restricts the run (nil = all five).
	Subjects []*RLSubject
}

// RunRLSuite trains with context.Background(); see RunRLSuiteCtx.
func RunRLSuite(suite RLSuiteConfig) ([]Table3RLRow, error) {
	return RunRLSuiteCtx(context.Background(), suite)
}

// RunRLSuiteCtx trains All and Raw configurations for each subject. Raw
// receives the wall-clock budget All consumed (both capped at the step
// budget), reproducing the paper's equal-time comparison in which Raw
// times out on most benchmarks. A canceled context stops training at
// the next step boundary and returns the rows completed so far
// alongside an error wrapping auerr.ErrCanceled; a subject interrupted
// mid-comparison contributes a row only when both of its runs produced
// usable (possibly partial) results.
func RunRLSuiteCtx(ctx context.Context, suite RLSuiteConfig) ([]Table3RLRow, error) {
	if suite.Seed == 0 {
		suite.Seed = 1
	}
	subjects := suite.Subjects
	if subjects == nil {
		subjects = AllRLSubjects()
	}
	var rows []Table3RLRow
	for _, s := range subjects {
		allCfg := TunedRLConfig(s, InputAll, 0)
		allCfg.Seed = suite.Seed
		if suite.Quick {
			allCfg.TrainSteps = 3000
			allCfg.EpsilonDecaySteps = 1500
			allCfg.EvalEpisodes = 3
		}
		// DQN training at our seconds-scale budgets is seed-sensitive;
		// like standard RL practice, the harness restarts exploration up
		// to three times on the same stage and keeps the best run. The
		// reported training time is cumulative, and Raw receives the
		// same total wall clock.
		attempts := 3
		if suite.Quick {
			attempts = 1
		}
		var allRes *RLResult
		var cumTime time.Duration
		for a := 0; a < attempts; a++ {
			cfg := allCfg
			cfg.AgentSeed = suite.Seed + uint64(a)*101
			res, err := RunRLCtx(ctx, s, cfg)
			if err != nil {
				if errors.Is(err, auerr.ErrCanceled) {
					// The interrupted subject has no comparison row yet;
					// flush the rows that finished.
					return rows, err
				}
				return nil, err
			}
			cumTime += res.TrainTime
			if allRes == nil || res.Score > allRes.Score {
				allRes = res
			}
			if res.StepsToCompetitive > 0 {
				break
			}
		}
		allRes.TrainTime = cumTime

		rawCfg := TunedRLConfig(s, InputRaw, allRes.TrainTime+time.Second)
		rawCfg.Seed = suite.Seed
		if suite.Quick {
			rawCfg.TrainSteps = 600
			rawCfg.EpsilonDecaySteps = 300
			rawCfg.EvalEpisodes = 2
			rawCfg.TrainWallClock = allRes.TrainTime + 2*time.Second
		}
		rawRes, err := RunRLCtx(ctx, s, rawCfg)
		if err != nil {
			if errors.Is(err, auerr.ErrCanceled) {
				if rawRes != nil {
					// Both runs produced (possibly partial) results:
					// keep the comparison row for the partial table.
					rows = append(rows, Table3RLRow{
						Program: s.Name, All: allRes, Raw: rawRes, ScoreIsCount: s.ScoreIsCount,
					})
				}
				return rows, err
			}
			return nil, err
		}
		rows = append(rows, Table3RLRow{
			Program: s.Name, All: allRes, Raw: rawRes, ScoreIsCount: s.ScoreIsCount,
		})
	}
	return rows, nil
}

// BuildTable2 assembles model statistics from completed SL and RL runs
// plus the checkpoint cost model.
func BuildTable2(sl []*SLResult, rl []Table3RLRow) []Table2Row {
	var rows []Table2Row
	for _, r := range sl {
		rows = append(rows, Table2Row{
			Kind: "SL", Program: r.Subject,
			RawTrace: r.Versions[PickRaw].TraceBytes, RawModel: r.Versions[PickRaw].ModelBytes,
			MedTrace: r.Versions[PickMed].TraceBytes, MedModel: r.Versions[PickMed].ModelBytes,
			MinTrace: r.Versions[PickMin].TraceBytes, MinModel: r.Versions[PickMin].ModelBytes,
		})
	}
	model := ckpt.DefaultKVMCostModel()
	for _, r := range rl {
		// The paper checkpoints the whole process; model the footprint
		// as the game state plus runtime buffers (~tens of MB here vs
		// hundreds in the paper — the fixed KVM cost dominates).
		footprint := 64 << 20
		rows = append(rows, Table2Row{
			Kind: "RL", Program: r.Program,
			RawTrace: r.Raw.TraceBytes, RawModel: r.Raw.ModelBytes,
			MinTrace: r.All.TraceBytes, MinModel: r.All.ModelBytes,
			CkptTime:    model.CheckpointDuration(footprint),
			RestoreTime: model.RestoreDuration(footprint),
		})
	}
	return rows
}
