package bench

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// rolloutScore runs the noisy-player reference evaluation the way RunRL
// does: per-episode environments and per-episode noise streams split
// from one seed.
func rolloutScore(subject *RLSubject, episodes int) (float64, float64) {
	streams := stats.NewRNG(101).SplitN(episodes)
	return env.ParallelAverageScore(
		func(int) env.Env { return subject.NewEnv(7) },
		func(ep int) env.Policy {
			return noisyPolicyStream(subject.Player, subject.Actions, streams[ep], playerNoise)
		},
		episodes, 400)
}

// TestParallelRolloutsDeterministic checks episode rollouts reduce to
// bit-identical aggregates at any worker count: each episode's outcome
// depends only on its own environment and RNG stream, never on which
// worker ran it.
func TestParallelRolloutsDeterministic(t *testing.T) {
	subject := FlappySubject()
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	wantScore, wantSuccess := rolloutScore(subject, 12)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		gotScore, gotSuccess := rolloutScore(subject, 12)
		if gotScore != wantScore || gotSuccess != wantSuccess {
			t.Errorf("workers=%d: rollout aggregate (%v, %v) != sequential (%v, %v)",
				w, gotScore, gotSuccess, wantScore, wantSuccess)
		}
	}
}
