package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFeaturePickString(t *testing.T) {
	if PickMin.String() != "Min" || PickMed.String() != "Med" || PickRaw.String() != "Raw" {
		t.Error("FeaturePick strings wrong")
	}
	if InputAll.String() != "All" || InputRaw.String() != "Raw" || InputManual.String() != "Manual" {
		t.Error("InputMode strings wrong")
	}
}

// TestSLSubjectContracts checks every subject's adapter: deterministic
// workloads, stable feature sizes, labels in the model's output range.
func TestSLSubjectContracts(t *testing.T) {
	for _, s := range AllSLSubjects() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			ws := s.Workloads(7, 3)
			if len(ws) != 3 {
				t.Fatalf("Workloads returned %d", len(ws))
			}
			ws2 := s.Workloads(7, 3)
			f1 := s.Features(ws[0], PickMin)
			f2 := s.Features(ws2[0], PickMin)
			if len(f1) == 0 || len(f1) != len(f2) {
				t.Fatalf("feature size unstable: %d vs %d", len(f1), len(f2))
			}
			for i := range f1 {
				if f1[i] != f2[i] {
					t.Fatal("same seed produced different features")
				}
			}
			// Distinct bands have the expected relative sizes: Min is
			// the most compact.
			minN := len(s.Features(ws[0], PickMin))
			rawN := len(s.Features(ws[0], PickRaw))
			if minN >= rawN {
				t.Errorf("Min features (%d) not smaller than Raw (%d)", minN, rawN)
			}
			label := s.OracleLabel(ws[0])
			if len(label) == 0 {
				t.Fatal("empty oracle label")
			}
			for _, v := range label {
				if v < -0.01 || v > 1.01 {
					t.Errorf("label value %v outside [0,1]", v)
				}
			}
			// Scoring with the oracle label must be at least as good as
			// baseline on average over the 3 inputs.
			var base, orc float64
			for _, w := range ws {
				base += s.BaselineScore(w)
				orc += s.ScoreWithLabel(w, s.OracleLabel(w))
			}
			if s.HigherBetter() && orc < base-0.05 {
				t.Errorf("oracle (%v) clearly worse than baseline (%v)", orc, base)
			}
			if !s.HigherBetter() && orc > base+0.05 {
				t.Errorf("oracle (%v) clearly worse than baseline (%v)", orc, base)
			}
		})
	}
}

// TestRunSLQuick is a fast end-to-end harness check: all four versions
// train and produce the full result structure.
func TestRunSLQuick(t *testing.T) {
	res, err := RunSL(CannySubject{}, SLConfig{TrainN: 12, TestN: 4, Epochs: 4, Hidden: []int{16}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subject != "Canny" || !res.HigherBetter {
		t.Error("metadata wrong")
	}
	if len(res.BaselinePer) != 4 {
		t.Errorf("baseline per-input count %d", len(res.BaselinePer))
	}
	for _, p := range []FeaturePick{PickRaw, PickMed, PickMin} {
		v := res.Versions[p]
		if v == nil {
			t.Fatalf("missing version %v", p)
		}
		if len(v.PerInput) != 4 || v.TrainTime <= 0 || v.ModelBytes <= 0 || v.TraceBytes <= 0 {
			t.Errorf("%v result incomplete: %+v", p, v)
		}
		if len(v.Curve) == 0 {
			t.Errorf("%v has no learning curve", p)
		}
	}
	// Improvement must be finite and defined for all picks.
	for _, p := range []FeaturePick{PickRaw, PickMed, PickMin} {
		_ = res.Improvement(p)
	}
}

// TestRunRLQuick is a fast end-to-end check of the RL harness protocol.
func TestRunRLQuick(t *testing.T) {
	res, err := RunRL(FlappySubject(), RLConfig{
		Mode: InputAll, TrainSteps: 1200, EvalEpisodes: 2, EvalEvery: 600,
		EpsilonDecaySteps: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subject != "Flappybird" || res.Mode != InputAll {
		t.Error("metadata wrong")
	}
	if res.TraceBytes == 0 || res.ModelBytes == 0 {
		t.Error("size accounting missing")
	}
	if res.Checkpoints != 1 || res.Restores == 0 {
		t.Errorf("checkpoint/restore counts: %d/%d", res.Checkpoints, res.Restores)
	}
	if len(res.Curve) == 0 {
		t.Error("no learning curve")
	}
	if res.PlayerScore <= 0 {
		t.Error("player reference missing")
	}
	if res.ExecPerStep <= 0 || res.BasePerStep <= 0 {
		t.Error("exec timing missing")
	}
}

// TestRunRLRawQuick checks the CNN path end to end.
func TestRunRLRawQuick(t *testing.T) {
	res, err := RunRL(FlappySubject(), RLConfig{
		Mode: InputRaw, TrainSteps: 150, EvalEpisodes: 1, EvalEvery: 150,
		EpsilonDecaySteps: 100, RawDownsample: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InputSize != 256 { // (64/4)²
		t.Errorf("raw input size = %d, want 256", res.InputSize)
	}
	// The raw model must be bigger than the All model on the same game.
	all, err := RunRL(FlappySubject(), RLConfig{
		Mode: InputAll, TrainSteps: 150, EvalEpisodes: 1, EvalEvery: 150,
		EpsilonDecaySteps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelBytes <= all.ModelBytes {
		t.Errorf("raw model (%d) not larger than All model (%d)", res.ModelBytes, all.ModelBytes)
	}
	if res.TraceBytes <= all.TraceBytes {
		t.Errorf("raw trace (%d) not larger than All trace (%d)", res.TraceBytes, all.TraceBytes)
	}
}

// TestWallClockBudget checks that the 24h-timeout analog actually stops
// training early.
func TestWallClockBudget(t *testing.T) {
	start := time.Now()
	_, err := RunRL(MarioSubject(), RLConfig{
		Mode: InputAll, TrainSteps: 1 << 30, EvalEpisodes: 1, EvalEvery: 1 << 30,
		TrainWallClock: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("wall-clock budget did not stop training: %v", elapsed)
	}
}

func TestBuildTable1Shape(t *testing.T) {
	rows := BuildTable1(1)
	if len(rows) != 9 {
		t.Fatalf("Table 1 has %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.TrgVars == 0 || r.Candidate == 0 || len(r.FeatureCounts) == 0 {
			t.Errorf("%s: incomplete row %+v", r.Program, r)
		}
		if r.AddedLOC == 0 || r.AddedLOC > 100 {
			t.Errorf("%s: AddedLOC %d implausible", r.Program, r.AddedLOC)
		}
		// Extraction must prune: features < candidates.
		total := 0
		for _, f := range r.FeatureCounts {
			total += f
		}
		if r.Kind == "RL" && total > r.Candidate {
			t.Errorf("%s: %d features exceed %d candidates", r.Program, total, r.Candidate)
		}
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	out := buf.String()
	for _, name := range []string{"Canny", "Mario", "TORCS", "Breakout"} {
		if !strings.Contains(out, name) {
			t.Errorf("rendered table missing %s", name)
		}
	}
}

func TestRenderers(t *testing.T) {
	// Render the remaining tables/figures from a quick SL run and
	// synthetic RL results; rendering must not panic and must mention
	// the key columns.
	res, err := RunSL(CannySubject{}, SLConfig{TrainN: 10, TestN: 3, Epochs: 3, Hidden: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable3SL(&buf, []*SLResult{res})
	RenderFig12(&buf, res)
	RenderFig13(&buf, res, 3)

	all := &RLResult{Subject: "X", Mode: InputAll, Score: 0.9, PlayerScore: 1,
		TrainTime: time.Second, ExecPerStep: time.Microsecond, BasePerStep: time.Microsecond,
		TraceBytes: 100, ModelBytes: 200, StepsToCompetitive: 10,
		Curve: []RLCurvePoint{{Step: 10, Score: 0.9}}}
	raw := &RLResult{Subject: "X", Mode: InputRaw, Score: 0.1, PlayerScore: 1,
		TrainTime: time.Second, ExecPerStep: 2 * time.Microsecond, BasePerStep: time.Microsecond,
		TraceBytes: 1000, ModelBytes: 2000,
		Curve: []RLCurvePoint{{Step: 10, Score: 0.1}}}
	rows := []Table3RLRow{{Program: "X", All: all, Raw: raw}}
	RenderTable3RL(&buf, rows)
	RenderFig17(&buf, all, all, raw)
	t2 := BuildTable2([]*SLResult{res}, rows)
	RenderTable2(&buf, t2)
	out := buf.String()
	for _, want := range []string{"Table 3", "Fig. 12", "Fig. 13", "Fig. 17", "Table 2", "t/o"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	// Competitive logic.
	if !all.Competitive() {
		t.Error("0.9 vs player 1.0 should be competitive (within 20%)")
	}
	if raw.Competitive() {
		t.Error("0.1 vs player 1.0 should not be competitive")
	}
}

// TestSelfTestQuick exercises the coverage study at a tiny budget.
func TestSelfTestQuick(t *testing.T) {
	res, err := RunSelfTest(SelfTestConfig{TrainSteps: 1500, PlayWindow: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBlocks < 40 {
		t.Errorf("block count %d", res.TotalBlocks)
	}
	for _, c := range []float64{res.CoverageAgent, res.PlainAgent, res.Random} {
		if c <= 0 || c > 1 {
			t.Errorf("coverage out of range: %v", c)
		}
	}
	var buf bytes.Buffer
	RenderSelfTest(&buf, res, &BugHuntResult{Found: true, Crash: "x", Steps: 5})
	if !strings.Contains(buf.String(), "CRASH") {
		t.Error("render missing crash line")
	}
	RenderSelfTest(&buf, res, &BugHuntResult{Found: false, Steps: 5})
}

// TestBugHuntFindsCrash verifies the armed bug is reachable and the
// fixed build survives the same drive.
func TestBugHuntFindsCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("long hunt")
	}
	hunt := RunBugHunt(1, 150000)
	if !hunt.Found {
		t.Errorf("bug not found in %d steps", hunt.Steps)
	}
	if !strings.Contains(hunt.Crash, "boundary check") {
		t.Errorf("crash message %q", hunt.Crash)
	}
}

func TestTunedRLConfig(t *testing.T) {
	s := MarioSubject()
	cfg := TunedRLConfig(s, InputRaw, 5*time.Second)
	if cfg.TrainSteps != s.TunedTrainSteps || cfg.Mode != InputRaw || cfg.TrainWallClock != 5*time.Second {
		t.Errorf("TunedRLConfig = %+v", cfg)
	}
}

func TestCountLOC(t *testing.T) {
	if got := countLOC("internal/canny"); got < 100 {
		t.Errorf("canny LOC = %d, implausibly small", got)
	}
	if got := countLOC("no/such/dir"); got != 0 {
		t.Errorf("missing dir LOC = %d", got)
	}
}
