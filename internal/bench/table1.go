package bench

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/autonomizer/autonomizer/internal/canny"
	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/arkanoid"
	"github.com/autonomizer/autonomizer/internal/games/breakout"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/flappy"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/phylip"
	"github.com/autonomizer/autonomizer/internal/rothwell"
	"github.com/autonomizer/autonomizer/internal/sphinx"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// addedLOC is the number of annotation lines each subject's
// autonomization requires with our primitives, counted from the
// annotated examples in examples/ (config + extract + serialize + NN +
// write-back + checkpoint/restore sites). The paper's Column 3 numbers
// are of the same order (6-89).
var addedLOC = map[string]int{
	"Canny":      9, // matches Fig. 11 exactly
	"Rothwell":   7,
	"Phylip":     8,
	"Sphinx":     10,
	"Flappybird": 9,
	"Mario":      12, // the Fig. 2 loop plus feature extracts
	"Arkanoid":   8,
	"TORCS":      9,
	"Breakout":   8,
}

// subjectDirs maps each subject to its implementation package,
// relative to the repository root, for live LOC counting.
var subjectDirs = map[string]string{
	"Canny":      "internal/canny",
	"Rothwell":   "internal/rothwell",
	"Phylip":     "internal/phylip",
	"Sphinx":     "internal/sphinx",
	"Flappybird": "internal/games/flappy",
	"Mario":      "internal/games/mario",
	"Arkanoid":   "internal/games/arkanoid",
	"TORCS":      "internal/games/torcs",
	"Breakout":   "internal/games/breakout",
}

// repoRoot locates the module root from this source file's compiled-in
// path; LOC counting degrades to zero when sources are not present.
func repoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return ""
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// countLOC counts non-test Go source lines under dir.
func countLOC(dir string) int {
	root := repoRoot()
	if root == "" {
		return 0
	}
	entries, err := os.ReadDir(filepath.Join(root, dir))
	if err != nil {
		return 0
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(root, dir, name))
		if err != nil {
			continue
		}
		total += strings.Count(string(data), "\n")
	}
	return total
}

// BuildTable1 computes the program-analysis statistics for every
// subject by actually running the instrumented programs and the
// extraction algorithms, mirroring how the paper's Table 1 was
// produced.
func BuildTable1(seed uint64) []Table1Row {
	var rows []Table1Row

	// Supervised subjects: dynamic dependence graph from one profiled
	// run, then Algorithm 1.
	slGraph := func(name string) (*dep.Graph, []string, []string) {
		g := dep.NewGraph()
		switch name {
		case "Canny":
			sc := imaging.GenerateScene(stats.NewRNG(seed), imaging.SceneConfig{W: 32, H: 32})
			_, _ = canny.Detect(sc.Img, canny.DefaultParams(), g, nil)
			return g, canny.Inputs(), canny.Targets()
		case "Rothwell":
			sc := imaging.GenerateScene(stats.NewRNG(seed+1), imaging.SceneConfig{W: 32, H: 32})
			_, _ = rothwell.Detect(sc.Img, rothwell.DefaultParams(), g, nil)
			return g, rothwell.Inputs(), rothwell.Targets()
		case "Phylip":
			ds := phylip.Evolve(stats.NewRNG(seed+2), phylip.EvolveConfig{Taxa: 6, SeqLen: 80})
			_, _ = phylip.InferTree(ds.Seqs, phylip.DefaultParams(), g, nil)
			return g, phylip.Inputs(), phylip.Targets()
		default: // Sphinx
			u := sphinx.Generate(stats.NewRNG(seed+3), sphinx.GenConfig{})
			_, _ = sphinx.Recognize(u.Samples, sphinx.DefaultParams(), g, nil)
			return g, sphinx.Inputs(), sphinx.Targets()
		}
	}
	for _, name := range []string{"Canny", "Rothwell", "Phylip", "Sphinx"} {
		g, inputs, targets := slGraph(name)
		res := extract.SL(g, inputs, targets)
		counts := make([]int, 0, len(targets))
		for _, t := range targets {
			counts = append(counts, len(res[t]))
		}
		rows = append(rows, Table1Row{
			Kind: "SL", Program: name,
			LOC:      countLOC(subjectDirs[name]),
			AddedLOC: addedLOC[name],
			TrgVars:  len(targets), Candidate: extract.CandidateCount(g, inputs),
			FeatureCounts: counts,
		})
	}

	// Interactive subjects: dependence graph + profiled value traces,
	// then Algorithm 2.
	type rlEntry struct {
		name    string
		g       *dep.Graph
		e       env.Env
		player  env.Policy
		targets []string
		note    string
	}
	entries := []rlEntry{
		{"Flappybird", flappy.DepGraph(), flappy.New(seed), flappy.ScriptedPlayer, flappy.TargetVars(), ""},
		{"Mario", mario.DepGraph(), mario.New(seed, mario.Options{}), mario.ScriptedPlayer, mario.TargetVars(), ""},
		{"Arkanoid", arkanoid.DepGraph(), arkanoid.New(seed), arkanoid.ScriptedPlayer, arkanoid.TargetVars(), "emulator-annotated"},
		{"TORCS", torcs.DepGraph(), torcs.New(seed), torcs.ScriptedPlayer, torcs.TargetVars(), ""},
		{"Breakout", breakout.DepGraph(), breakout.New(seed), breakout.ScriptedPlayer, breakout.TargetVars(), "emulator-annotated"},
	}
	for _, e := range entries {
		rec := trace.NewRecorder()
		env.RunEpisode(e.e, func(ev env.Env) int {
			rec.RecordAll(ev.StateVars())
			return e.player(ev)
		}, 400)
		report := extract.RL(e.g, rec, e.targets, env.SortedVarNames(e.e), extract.RLConfig{
			Epsilon1: 0.05, Epsilon2: 0.01,
		})
		candidates := 0
		for _, c := range report.Candidates {
			candidates += c
		}
		rows = append(rows, Table1Row{
			Kind: "RL", Program: e.name,
			LOC:      countLOC(subjectDirs[e.name]),
			AddedLOC: addedLOC[e.name],
			TrgVars:  len(e.targets), Candidate: candidates,
			FeatureCounts: []int{len(report.CombinedFeatures())},
			Note:          e.note,
		})
	}
	return rows
}
