// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Tables 1-3, Figs. 12, 13, 17,
// and the Section 2 Mario comparison and self-testing case study) on
// top of the reimplemented subjects and the Autonomizer runtime.
//
// Scale note: the paper trains for hours on real datasets; this harness
// trains for seconds on synthetic workloads. Absolute numbers differ —
// EXPERIMENTS.md records both — but the harness preserves the paper's
// comparisons: which configuration wins, by roughly what factor, and
// where the orderings (Min > Med > Raw > baseline for SL; All beating
// Raw for RL) hold.
package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// SLWorkload is one input with ground truth for a supervised subject.
type SLWorkload interface{}

// SLSubject adapts one parameterized program to the harness.
type SLSubject interface {
	// Name is the subject's display name ("Canny").
	Name() string
	// HigherBetter reports the score direction (Table 3's ↑/↓ mark).
	HigherBetter() bool
	// Workloads generates n inputs from a seed.
	Workloads(seed uint64, n int) []SLWorkload
	// OracleLabel returns the normalized ideal parameter vector for a
	// workload (the training label, from autotuning against ground
	// truth).
	OracleLabel(w SLWorkload) []float64
	// Features encodes the workload's feature variables for a distance
	// band (Raw / Med / Min, per Algorithm 1's ranking).
	Features(w SLWorkload, pick FeaturePick) []float64
	// BaselineScore runs the program with default parameters.
	BaselineScore(w SLWorkload) float64
	// ScoreWithLabel runs the program with the (predicted, normalized)
	// parameter vector and scores the result.
	ScoreWithLabel(w SLWorkload, label []float64) float64
}

// FeaturePick is the feature distance band.
type FeaturePick int

// Feature bands, mirroring the paper's comparison axes.
const (
	PickMin FeaturePick = iota
	PickMed
	PickRaw
)

// String implements fmt.Stringer.
func (p FeaturePick) String() string {
	switch p {
	case PickMin:
		return "Min"
	case PickMed:
		return "Med"
	default:
		return "Raw"
	}
}

// SLConfig sizes one supervised experiment.
type SLConfig struct {
	// TrainN and TestN are corpus sizes (defaults 48 and 10 — ten test
	// inputs, as in Fig. 12).
	TrainN, TestN int
	// Epochs is the offline training budget (default 30, as in the
	// Canny case study).
	Epochs int
	// Hidden is the model architecture shared by all versions except
	// the input layer (default {48, 24} — a scaled-down version of the
	// paper's six-layer network).
	Hidden []int
	// LR is the Adam learning rate (default 3e-3).
	LR float64
	// Seed drives workload generation and initialization.
	Seed uint64
}

func (c *SLConfig) fillDefaults() {
	if c.TrainN == 0 {
		c.TrainN = 48
	}
	if c.TestN == 0 {
		c.TestN = 10
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.Hidden == nil {
		c.Hidden = []int{48, 24}
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SLVersionResult is one (subject, version) measurement: a Table 3 cell
// group.
type SLVersionResult struct {
	Pick       FeaturePick
	Score      float64
	TrainTime  time.Duration
	ExecTime   time.Duration // per input, model-assisted run
	FinalLoss  float64
	InputSize  int
	ModelBytes int
	TraceBytes int
	// PerInput holds the held-out per-input scores (Fig. 12's bars).
	PerInput []float64
	// Curve holds score-vs-epoch samples (Fig. 13's series).
	Curve []float64
}

// SLResult is one subject's full comparison.
type SLResult struct {
	Subject       string
	HigherBetter  bool
	BaselineScore float64
	BaselineExec  time.Duration
	BaselinePer   []float64
	Versions      map[FeaturePick]*SLVersionResult
	OracleScore   float64
}

// Improvement returns a version's relative improvement over the
// baseline in percent, oriented so positive is better regardless of
// score direction.
func (r *SLResult) Improvement(p FeaturePick) float64 {
	v, ok := r.Versions[p]
	if !ok || r.BaselineScore == 0 {
		return 0
	}
	if r.HigherBetter {
		return 100 * (v.Score - r.BaselineScore) / r.BaselineScore
	}
	return 100 * (r.BaselineScore - v.Score) / r.BaselineScore
}

// RunSL executes the full supervised comparison with
// context.Background(); see RunSLCtx.
func RunSL(subject SLSubject, cfg SLConfig) (*SLResult, error) {
	return RunSLCtx(context.Background(), subject, cfg)
}

// RunSLCtx executes the full supervised comparison for one subject:
// baseline vs Raw vs Med vs Min, each trained to the same budget on the
// same corpus, evaluated on the same held-out inputs. Cancellation is
// observed at minibatch boundaries inside training and between
// versions; a canceled run returns the partially filled result (the
// versions completed so far) alongside an error wrapping
// auerr.ErrCanceled.
func RunSLCtx(ctx context.Context, subject SLSubject, cfg SLConfig) (*SLResult, error) {
	cfg.fillDefaults()
	if err := ctx.Err(); err != nil {
		return nil, auerr.Canceled(ctx)
	}
	train := subject.Workloads(cfg.Seed, cfg.TrainN)
	test := subject.Workloads(cfg.Seed+1000, cfg.TestN)

	// Oracle labels once (shared across versions). Each workload's grid
	// search is independent, so they run in parallel.
	labels := make([][]float64, len(train))
	oracleTest := make([]float64, len(test))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, w := range train {
		wg.Add(1)
		go func(i int, w SLWorkload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			labels[i] = subject.OracleLabel(w)
		}(i, w)
	}
	for i, w := range test {
		wg.Add(1)
		go func(i int, w SLWorkload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			oracleTest[i] = subject.ScoreWithLabel(w, subject.OracleLabel(w))
		}(i, w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, auerr.Canceled(ctx)
	}
	oracleTestSum := 0.0
	for _, s := range oracleTest {
		oracleTestSum += s
	}

	result := &SLResult{
		Subject:      subject.Name(),
		HigherBetter: subject.HigherBetter(),
		Versions:     make(map[FeaturePick]*SLVersionResult),
		OracleScore:  oracleTestSum / float64(len(test)),
	}

	// Baseline.
	baseStart := time.Now()
	for _, w := range test {
		s := subject.BaselineScore(w)
		result.BaselinePer = append(result.BaselinePer, s)
		result.BaselineScore += s
	}
	result.BaselineScore /= float64(len(test))
	result.BaselineExec = time.Since(baseStart) / time.Duration(len(test))

	for _, pick := range []FeaturePick{PickRaw, PickMed, PickMin} {
		vr, err := runSLVersion(ctx, subject, cfg, pick, train, labels, test)
		if err != nil {
			if errors.Is(err, auerr.ErrCanceled) {
				// Flush what finished: completed versions stay in the
				// result so the caller can render a partial table.
				return result, fmt.Errorf("bench: %s/%v: %w", subject.Name(), pick, err)
			}
			return nil, fmt.Errorf("bench: %s/%v: %w", subject.Name(), pick, err)
		}
		result.Versions[pick] = vr
	}
	return result, nil
}

// runSLVersion trains and evaluates one feature-band version.
func runSLVersion(ctx context.Context, subject SLSubject, cfg SLConfig, pick FeaturePick,
	train []SLWorkload, labels [][]float64, test []SLWorkload) (*SLVersionResult, error) {

	model := fmt.Sprintf("%s-%v", subject.Name(), pick)
	rt := core.NewRuntime(core.Train, cfg.Seed+uint64(pick)*7+3)
	spec := core.ModelSpec{
		Name: model, Algo: core.AdamOpt, Hidden: cfg.Hidden, LR: cfg.LR,
		OutputActivation: "sigmoid",
	}
	if err := rt.Config(spec); err != nil {
		return nil, err
	}

	vr := &SLVersionResult{Pick: pick}
	traceBytes := 0
	for i, w := range train {
		feat := subject.Features(w, pick)
		traceBytes += 8 * len(feat)
		vr.InputSize = len(feat)
		if err := rt.RecordExample(model, feat, labels[i]); err != nil {
			return nil, err
		}
	}
	vr.TraceBytes = traceBytes

	evalMean := func() float64 {
		sum := 0.0
		for _, w := range test {
			out, err := rt.Predict(model, subject.Features(w, pick))
			if err != nil {
				return 0
			}
			sum += subject.ScoreWithLabel(w, out)
		}
		return sum / float64(len(test))
	}

	start := time.Now()
	for e := 0; e < cfg.Epochs; e++ {
		st, err := rt.FitCtx(ctx, model, 1, 16)
		if err != nil {
			return nil, err
		}
		vr.FinalLoss = st.LastLoss
		// Sample the learning curve every few epochs (Fig. 13).
		if e%3 == 0 || e == cfg.Epochs-1 {
			vr.Curve = append(vr.Curve, evalMean())
		}
	}
	vr.TrainTime = time.Since(start)

	size, err := rt.ModelSizeBytes(model)
	if err != nil {
		return nil, err
	}
	vr.ModelBytes = size

	execStart := time.Now()
	sum := 0.0
	for _, w := range test {
		out, err := rt.Predict(model, subject.Features(w, pick))
		if err != nil {
			return nil, err
		}
		s := subject.ScoreWithLabel(w, out)
		vr.PerInput = append(vr.PerInput, s)
		sum += s
	}
	vr.ExecTime = time.Since(execStart) / time.Duration(len(test))
	vr.Score = sum / float64(len(test))
	return vr, nil
}

// meanOf is a small helper for subject adapters.
func meanOf(xs []float64) float64 { return stats.Mean(xs) }
