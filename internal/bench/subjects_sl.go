package bench

import (
	"github.com/autonomizer/autonomizer/internal/canny"
	"github.com/autonomizer/autonomizer/internal/imaging"
	"github.com/autonomizer/autonomizer/internal/phylip"
	"github.com/autonomizer/autonomizer/internal/rothwell"
	"github.com/autonomizer/autonomizer/internal/sphinx"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// sceneSize is the synthetic image edge length for the edge-detection
// subjects (scaled down from the paper's 250×250 for harness speed).
const sceneSize = 32

// rawImageDim is the downsampling factor applied to raw images for the
// Raw feature encoding.
const rawImageDown = 2

// CannySubject adapts the Canny detector to the SL harness.
type CannySubject struct{}

// Name implements SLSubject.
func (CannySubject) Name() string { return "Canny" }

// HigherBetter implements SLSubject (SSIM: higher is better).
func (CannySubject) HigherBetter() bool { return true }

// Workloads implements SLSubject. The wide noise range is the point:
// no single parameter configuration handles both clean and very noisy
// scenes, which is the paper's motivating observation for Canny.
func (CannySubject) Workloads(seed uint64, n int) []SLWorkload {
	scenes := imaging.GenerateCorpus(seed, n, imaging.SceneConfig{
		W: sceneSize, H: sceneSize, MaxNoise: 55,
	})
	out := make([]SLWorkload, n)
	for i, s := range scenes {
		out[i] = s
	}
	return out
}

// cannyToLabel normalizes params into the model's (0,1) output space.
func cannyToLabel(p canny.Params) []float64 {
	return []float64{p.Sigma / 4, p.Lo, p.Hi}
}

func cannyFromLabel(v []float64) canny.Params {
	return canny.Params{Sigma: v[0] * 4, Lo: v[1], Hi: v[2]}.Clamp()
}

// OracleLabel implements SLSubject.
func (CannySubject) OracleLabel(w SLWorkload) []float64 {
	p, _ := canny.Oracle(w.(*imaging.Scene))
	return cannyToLabel(p)
}

// Features implements SLSubject, following Fig. 9's distance ranking:
// Min = magnitude histogram (distance 1), Med = the gradient-magnitude
// image (distance 2, the median band), Raw = input pixels (distance 4).
func (CannySubject) Features(w SLWorkload, pick FeaturePick) []float64 {
	sc := w.(*imaging.Scene)
	var tr canny.Trace
	if _, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, &tr); err != nil {
		return nil
	}
	switch pick {
	case PickMin:
		return stats.Normalize(tr.Hist)
	case PickMed:
		img := &imaging.Image{W: sceneSize, H: sceneSize, Pix: tr.Mag}
		down := imaging.Downsample(img, rawImageDown).Pix
		out := make([]float64, len(down))
		for i, v := range down {
			out[i] = v / (tr.MaxMag + 1e-9)
		}
		return out
	default:
		// Raw takes the full-resolution pixels, as the paper's Raw
		// models do (62500 inputs there, 1024 here) — the model must
		// digest far more, lower-level data for the same budget.
		return scalePixels(tr.Image)
	}
}

// BaselineScore implements SLSubject.
func (CannySubject) BaselineScore(w SLWorkload) float64 {
	sc := w.(*imaging.Scene)
	res, err := canny.Detect(sc.Img, canny.DefaultParams(), nil, nil)
	if err != nil {
		return 0
	}
	return canny.Score(res, sc.Truth)
}

// ScoreWithLabel implements SLSubject.
func (CannySubject) ScoreWithLabel(w SLWorkload, label []float64) float64 {
	sc := w.(*imaging.Scene)
	res, err := canny.Detect(sc.Img, cannyFromLabel(label), nil, nil)
	if err != nil {
		return 0
	}
	return canny.Score(res, sc.Truth)
}

// RothwellSubject adapts the Rothwell detector.
type RothwellSubject struct{}

// Name implements SLSubject.
func (RothwellSubject) Name() string { return "Rothwell" }

// HigherBetter implements SLSubject.
func (RothwellSubject) HigherBetter() bool { return true }

// Workloads implements SLSubject. A different scene distribution (more
// noise) keeps the two edge detectors' corpora distinct.
func (RothwellSubject) Workloads(seed uint64, n int) []SLWorkload {
	scenes := imaging.GenerateCorpus(seed+77, n, imaging.SceneConfig{
		W: sceneSize, H: sceneSize, MaxNoise: 32,
	})
	out := make([]SLWorkload, n)
	for i, s := range scenes {
		out[i] = s
	}
	return out
}

func rothwellToLabel(p rothwell.Params) []float64 {
	return []float64{p.Sigma / 4, p.Alpha, float64(p.MinLen) / 16}
}

func rothwellFromLabel(v []float64) rothwell.Params {
	return rothwell.Params{Sigma: v[0] * 4, Alpha: v[1], MinLen: int(v[2]*16 + 0.5)}.Clamp()
}

// OracleLabel implements SLSubject.
func (RothwellSubject) OracleLabel(w SLWorkload) []float64 {
	p, _ := rothwell.Oracle(w.(*imaging.Scene))
	return rothwellToLabel(p)
}

// Features implements SLSubject: Min = gradient statistics, Med =
// 6-feature stats + coarse image, Raw = input pixels.
func (RothwellSubject) Features(w SLWorkload, pick FeaturePick) []float64 {
	sc := w.(*imaging.Scene)
	var tr rothwell.Trace
	if _, err := rothwell.Detect(sc.Img, rothwell.DefaultParams(), nil, &tr); err != nil {
		return nil
	}
	switch pick {
	case PickMin:
		out := append([]float64(nil), tr.GradStats...)
		// Scale the unbounded entries into sane ranges.
		out[0] /= 256
		out[1] /= 65536
		out[2] /= 256
		out[3] /= 256
		out[4] /= 1024
		return out
	case PickMed:
		img := &imaging.Image{W: sceneSize, H: sceneSize, Pix: tr.Image}
		smooth := imaging.GaussianSmooth(img, 1)
		return scalePixels(imaging.Downsample(smooth, rawImageDown).Pix)
	default:
		img := &imaging.Image{W: sceneSize, H: sceneSize, Pix: tr.Image}
		return scalePixels(imaging.Downsample(img, rawImageDown).Pix)
	}
}

// BaselineScore implements SLSubject.
func (RothwellSubject) BaselineScore(w SLWorkload) float64 {
	sc := w.(*imaging.Scene)
	res, err := rothwell.Detect(sc.Img, rothwell.DefaultParams(), nil, nil)
	if err != nil {
		return 0
	}
	return rothwell.Score(res, sc.Truth)
}

// ScoreWithLabel implements SLSubject.
func (RothwellSubject) ScoreWithLabel(w SLWorkload, label []float64) float64 {
	sc := w.(*imaging.Scene)
	res, err := rothwell.Detect(sc.Img, rothwellFromLabel(label), nil, nil)
	if err != nil {
		return 0
	}
	return rothwell.Score(res, sc.Truth)
}

// PhylipSubject adapts the phylogeny-inference pipeline. Note the
// score direction: Robinson-Foulds distance, lower is better (the ↓
// mark in Table 3).
type PhylipSubject struct{}

// Name implements SLSubject.
func (PhylipSubject) Name() string { return "Phylip" }

// HigherBetter implements SLSubject.
func (PhylipSubject) HigherBetter() bool { return false }

// phylipWorkloadTaxa and related constants size the datasets.
const (
	phylipTaxa   = 10
	phylipSeqLen = 200
)

// Workloads implements SLSubject: datasets vary in true kappa, rate
// heterogeneity and divergence, so the ideal distance parameters vary.
func (PhylipSubject) Workloads(seed uint64, n int) []SLWorkload {
	rng := stats.NewRNG(seed + 555)
	out := make([]SLWorkload, n)
	for i := range out {
		// High divergence and wide kappa/heterogeneity ranges are what
		// make the default distance settings visibly suboptimal.
		cfg := phylip.EvolveConfig{
			Taxa:       phylipTaxa,
			SeqLen:     phylipSeqLen,
			Kappa:      []float64{1, 8, 20}[rng.Intn(3)],
			GammaAlpha: []float64{0.4, 2, 50}[rng.Intn(3)],
			MeanBranch: rng.Range(0.2, 0.45),
		}
		out[i] = phylip.Evolve(rng.Split(), cfg)
	}
	return out
}

// OracleLabel implements SLSubject.
func (PhylipSubject) OracleLabel(w SLWorkload) []float64 {
	p, _ := phylip.Oracle(w.(*phylip.Dataset))
	return phylip.ParamsToVector(p)
}

// Features implements SLSubject: Min = compact divergence statistics,
// Med = per-pair (P,Q) matrix, Raw = base-composition encoding of the
// raw sequences.
func (PhylipSubject) Features(w SLWorkload, pick FeaturePick) []float64 {
	ds := w.(*phylip.Dataset)
	var tr phylip.Trace
	if _, err := phylip.Distances(ds.Seqs, phylip.DefaultParams(), nil, &tr); err != nil {
		return nil
	}
	switch pick {
	case PickMin:
		fv := tr.FeatureVector()
		fv[0] /= 10 // ts/tv ratio into ~[0,1]
		fv[4] /= float64(phylipTaxa * phylipTaxa)
		return fv
	case PickMed:
		return tr.RawFeatureVector(phylipTaxa * (phylipTaxa - 1))
	default:
		// Raw: per-sequence sliding base encoding (length-preserving
		// compression of the alignment).
		const width = 16
		out := make([]float64, 0, len(ds.Seqs)*width)
		for _, seq := range ds.Seqs {
			window := len(seq) / width
			for b := 0; b < width; b++ {
				sum := 0.0
				for i := b * window; i < (b+1)*window && i < len(seq); i++ {
					sum += float64(seq[i])
				}
				out = append(out, sum/float64(window)/3)
			}
		}
		return out
	}
}

// BaselineScore implements SLSubject.
func (PhylipSubject) BaselineScore(w SLWorkload) float64 {
	ds := w.(*phylip.Dataset)
	tree, err := phylip.InferTree(ds.Seqs, phylip.DefaultParams(), nil, nil)
	if err != nil {
		return 1
	}
	return phylip.Score(tree, ds)
}

// ScoreWithLabel implements SLSubject.
func (PhylipSubject) ScoreWithLabel(w SLWorkload, label []float64) float64 {
	ds := w.(*phylip.Dataset)
	tree, err := phylip.InferTree(ds.Seqs, phylip.VectorToParams(label), nil, nil)
	if err != nil {
		return 1
	}
	return phylip.Score(tree, ds)
}

// SphinxSubject adapts the keyword recognizer.
type SphinxSubject struct{}

// Name implements SLSubject.
func (SphinxSubject) Name() string { return "Sphinx" }

// HigherBetter implements SLSubject (word accuracy).
func (SphinxSubject) HigherBetter() bool { return true }

// Workloads implements SLSubject.
func (SphinxSubject) Workloads(seed uint64, n int) []SLWorkload {
	// Heavy noise floors (up to ~2x the signal amplitude) are what make
	// the fixed VAD threshold fail; the rate jitter stresses the warp
	// band the same way.
	utts := sphinx.GenerateCorpus(seed+999, n, sphinx.GenConfig{
		MaxNoise: 2.2, MaxRateJitter: 0.6,
	})
	out := make([]SLWorkload, n)
	for i, u := range utts {
		out[i] = u
	}
	return out
}

// OracleLabel implements SLSubject.
func (SphinxSubject) OracleLabel(w SLWorkload) []float64 {
	p, _ := sphinx.Oracle(w.(*sphinx.Utterance))
	return sphinx.ParamsToVector(p)
}

// sphinxMedWidth and sphinxRawWidth fix the encodings' sizes.
const (
	sphinxMedWidth = 64
	sphinxRawWidth = 256
)

// Features implements SLSubject: Min = energy histogram + segment
// stats, Med = frame energies, Raw = downsampled waveform.
func (SphinxSubject) Features(w SLWorkload, pick FeaturePick) []float64 {
	u := w.(*sphinx.Utterance)
	var tr sphinx.Trace
	if _, err := sphinx.Recognize(u.Samples, sphinx.DefaultParams(), nil, &tr); err != nil {
		return nil
	}
	switch pick {
	case PickMin:
		fv := tr.FeatureVector()
		// Normalize: histogram to distribution, variance and count into
		// ~[0,1].
		hist := stats.Normalize(fv[:16])
		return append(hist, fv[16]/100, fv[17]/10)
	case PickMed:
		fv := tr.MedFeatureVector(sphinxMedWidth)
		return stats.MinMaxScale(fv)
	default:
		return tr.RawFeatureVector(sphinxRawWidth)
	}
}

// BaselineScore implements SLSubject.
func (SphinxSubject) BaselineScore(w SLWorkload) float64 {
	u := w.(*sphinx.Utterance)
	hyp, err := sphinx.Recognize(u.Samples, sphinx.DefaultParams(), nil, nil)
	if err != nil {
		return 0
	}
	return sphinx.Score(hyp, u.Words)
}

// ScoreWithLabel implements SLSubject.
func (SphinxSubject) ScoreWithLabel(w SLWorkload, label []float64) float64 {
	u := w.(*sphinx.Utterance)
	hyp, err := sphinx.Recognize(u.Samples, sphinx.VectorToParams(label), nil, nil)
	if err != nil {
		return 0
	}
	return sphinx.Score(hyp, u.Words)
}

// AllSLSubjects lists the four supervised subjects in Table 1/3 order.
func AllSLSubjects() []SLSubject {
	return []SLSubject{CannySubject{}, RothwellSubject{}, PhylipSubject{}, SphinxSubject{}}
}

// scalePixels maps [0,255] pixels to [0,1].
func scalePixels(pix []float64) []float64 {
	out := make([]float64, len(pix))
	for i, v := range pix {
		out[i] = v / 255
	}
	return out
}
