package bench

import (
	"context"
	"testing"

	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// ctxOverheadRuntime builds a small supervised runtime with recorded
// examples, the fixture for the Predict / training-step overhead pairs.
func ctxOverheadRuntime(b *testing.B) (*core.Runtime, []float64) {
	b.Helper()
	rt := core.NewRuntime(core.Train, 7)
	rt.Config(core.ModelSpec{
		Name: "Ctx", Algo: core.AdamOpt, Hidden: []int{32, 16},
	})
	rng := stats.NewRNG(8)
	in := make([]float64, 16)
	for i := 0; i < 64; i++ {
		ex := make([]float64, 16)
		out := make([]float64, 4)
		for j := range ex {
			ex[j] = rng.Range(-1, 1)
		}
		for j := range out {
			out[j] = rng.Range(0, 1)
		}
		if err := rt.RecordExample("Ctx", ex, out); err != nil {
			b.Fatalf("RecordExample: %v", err)
		}
	}
	for j := range in {
		in[j] = rng.Range(-1, 1)
	}
	if _, err := rt.Fit("Ctx", 1, 16); err != nil {
		b.Fatalf("Fit: %v", err)
	}
	return rt, in
}

// BenchmarkPredictCtxOverhead measures what the context-aware contract
// costs on the inference hot path: Predict (the background-context
// wrapper) against PredictCtx with a live cancelable context. Recorded
// in BENCH_ctx.json.
func BenchmarkPredictCtxOverhead(b *testing.B) {
	b.Run("Predict", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Predict("Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PredictCtx", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFitCtxOverhead measures the per-minibatch cancellation check
// on the training hot path: one epoch over the recorded examples via
// the background-context wrapper against FitCtx with a live cancelable
// context. Recorded in BENCH_ctx.json.
func BenchmarkFitCtxOverhead(b *testing.B) {
	b.Run("Fit", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Fit("Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FitCtx", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.FitCtx(ctx, "Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
