package bench

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// speedupWorkload is the NN hot path the parallel engine shards: a
// MatMul above the row-sharding cutoff plus one data-parallel training
// batch on a mid-sized DNN.
func speedupWorkload(b *testing.B) {
	b.Helper()
	rng := stats.NewRNG(5)
	dim := 192
	x := tensor.New(dim, dim)
	y := tensor.New(dim, dim)
	for i := range x.Data() {
		x.Data()[i] = rng.Range(-1, 1)
		y.Data()[i] = rng.Range(-1, 1)
	}
	net := nn.NewDNN(64, []int{128, 64}, 16, rng.Split())
	net.UseAdam(1e-3)
	batch := 32
	ins := make([]*tensor.Tensor, batch)
	outs := make([]*tensor.Tensor, batch)
	for i := range ins {
		in := make([]float64, 64)
		out := make([]float64, 16)
		for j := range in {
			in[j] = rng.Range(-1, 1)
		}
		for j := range out {
			out[j] = rng.Range(-1, 1)
		}
		ins[i] = tensor.FromSlice(in, 64)
		outs[i] = tensor.FromSlice(out, 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
		net.TrainBatch(ins, outs)
	}
}

// BenchmarkParallelSpeedup runs the same workload with the engine forced
// sequential (workers=1) and at full width (GOMAXPROCS), the honesty
// gate for the parallel layer: compare the two ns/op figures to get the
// machine's actual speedup (recorded in BENCH_parallel.json).
func BenchmarkParallelSpeedup(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(fmt.Sprintf("%s-w%d", cfg.name, cfg.workers), func(b *testing.B) {
			prev := parallel.SetWorkers(cfg.workers)
			defer parallel.SetWorkers(prev)
			speedupWorkload(b)
		})
	}
}
