package bench

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/nn"
	"github.com/autonomizer/autonomizer/internal/parallel"
	"github.com/autonomizer/autonomizer/internal/stats"
	"github.com/autonomizer/autonomizer/internal/tensor"
)

// fillKernel fills t with a deterministic pseudo-random pattern (the
// xorshift generator also used by the tensor package's tests).
func fillKernel(t *tensor.Tensor, seed uint64) {
	s := seed | 1
	for i := range t.Data() {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		t.Data()[i] = float64(int64(s*0x2545F4914F6CDD1D)) / (1 << 62)
	}
}

// benchDNN builds the reference regression model used throughout the
// perf docs: DNN 64-[128,64]-16.
func benchDNN() *nn.Network {
	net := nn.NewDNN(64, []int{128, 64}, 16, stats.NewRNG(7))
	net.UseAdam(1e-3)
	return net
}

// benchCNN builds a small conv stack exercising im2col, the blocked
// matmul and the transpose-free backward kernels.
func benchCNN() *nn.Network {
	rng := stats.NewRNG(7)
	return nn.NewNetwork(
		nn.NewConv2D(4, 8, 3, 3, 1, 1, rng.Split()),
		nn.NewReLU(),
		nn.NewMaxPool2D(2),
		nn.NewFlatten(),
		nn.NewDense(8*16*16, 16, rng.Split()),
	)
}

// BenchmarkKernels is the kernel-layer benchmark suite behind
// BENCH_kernels.json and the CI allocs gate (scripts/check_allocs.sh).
// Sub-benchmarks:
//
//   - MatMulNaive/MatMulBlocked at 64/192/512: the blocked-vs-naive
//     speedup, single-core (SetWorkers(1)) so the comparison isolates
//     cache blocking from sharding.
//   - Dense/Conv2D forward+backward: layer-level steady state.
//   - NetworkForward, TrainBatch, ServedPredict: end-to-end allocs/op —
//     NetworkForward and ServedPredict must report 0 allocs/op after
//     warm-up; TrainBatch has a fixed small budget (see check_allocs.sh).
func BenchmarkKernels(b *testing.B) {
	for _, size := range []int{64, 192, 512} {
		a, bb := tensor.New(size, size), tensor.New(size, size)
		fillKernel(a, 1)
		fillKernel(bb, 2)
		dst := tensor.New(size, size)
		b.Run(sizeName("MatMulNaive", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMulNaiveInto(dst, a, bb)
			}
		})
		b.Run(sizeName("MatMulBlocked", size), func(b *testing.B) {
			defer parallel.SetWorkers(parallel.SetWorkers(1))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tensor.MatMulInto(dst, a, bb)
			}
		})
	}

	b.Run("DenseForwardBackward", func(b *testing.B) {
		rng := stats.NewRNG(7)
		d := nn.NewDense(256, 128, rng)
		in := tensor.New(256)
		fillKernel(in, 3)
		grad := tensor.New(128)
		fillKernel(grad, 4)
		d.Forward(in) // warm the layer caches
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Forward(in)
			d.Backward(grad)
		}
	})

	b.Run("Conv2DForwardBackward", func(b *testing.B) {
		rng := stats.NewRNG(7)
		c := nn.NewConv2D(4, 8, 3, 3, 1, 1, rng)
		in := tensor.New(4, 32, 32)
		fillKernel(in, 5)
		grad := tensor.New(8, 32, 32)
		fillKernel(grad, 6)
		c.Forward(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Forward(in)
			c.Backward(grad)
		}
	})

	// ConvForward/ConvBackward pairs: the materialized im2col+GEMM
	// lowering versus the implicit-GEMM kernel on the same geometry,
	// single-width so the comparison isolates the gather fusion from
	// sharding. These rows back the conv speedup floor in
	// scripts/check_kernels.sh.
	convGeomRun := func() (in, w, gout *tensor.Tensor) {
		in = tensor.New(4, 32, 32)
		w = tensor.New(8, 4*3*3)
		gout = tensor.New(8, 32*32)
		fillKernel(in, 21)
		fillKernel(w, 22)
		fillKernel(gout, 23)
		return in, w, gout
	}

	b.Run("ConvForwardIm2Col", func(b *testing.B) {
		defer parallel.SetWorkers(parallel.SetWorkers(1))
		in, w, _ := convGeomRun()
		cols := tensor.New(4*3*3, 32*32)
		out := tensor.New(8, 32*32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.Im2ColInto(cols, in, 3, 3, 1, 1)
			tensor.MatMulInto(out, w, cols)
		}
	})

	b.Run("ConvForwardImplicit", func(b *testing.B) {
		defer parallel.SetWorkers(parallel.SetWorkers(1))
		in, w, _ := convGeomRun()
		ck := tensor.NewConvKernel(tensor.NewConvGeom(4, 32, 32, 3, 3, 1, 1, 8))
		out := make([]float64, 8*32*32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck.Forward(out, in.Data(), w.Data())
		}
	})

	b.Run("ConvBackwardIm2Col", func(b *testing.B) {
		defer parallel.SetWorkers(parallel.SetWorkers(1))
		in, w, gout := convGeomRun()
		cols := tensor.New(4*3*3, 32*32)
		tensor.Im2ColInto(cols, in, 3, 3, 1, 1)
		gradW := tensor.New(8, 4*3*3)
		gradCols := tensor.New(4*3*3, 32*32)
		gradIn := tensor.New(4, 32, 32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulABTInto(gradW, gout, cols)
			tensor.MatMulATBInto(gradCols, w, gout)
			tensor.Col2ImInto(gradIn, gradCols, 4, 32, 32, 3, 3, 1, 1)
		}
	})

	b.Run("ConvBackwardImplicit", func(b *testing.B) {
		defer parallel.SetWorkers(parallel.SetWorkers(1))
		in, w, gout := convGeomRun()
		ck := tensor.NewConvKernel(tensor.NewConvGeom(4, 32, 32, 3, 3, 1, 1, 8))
		gradW := make([]float64, 8*4*3*3)
		gradIn := make([]float64, 4*32*32)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck.Backward(gradW, gradIn, in.Data(), w.Data(), gout.Data())
		}
	})

	b.Run("NetworkForward", func(b *testing.B) {
		net := benchDNN()
		in := tensor.New(64)
		fillKernel(in, 7)
		net.Forward(in) // warm-up: after this, steady state is 0 allocs/op
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Forward(in)
		}
	})

	b.Run("CNNForward", func(b *testing.B) {
		// The CNN serving path: a compiled plan instance. Gated at 0
		// allocs/op — the plan's ops run sequentially on pre-sized
		// buffers, with no parallel-dispatch closures.
		net := benchCNN()
		plan, err := nn.Compile(net, 4, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		inst := plan.NewInstance()
		in := make([]float64, 4*32*32)
		out := make([]float64, plan.OutSize())
		inst.PredictInto(out, in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.PredictInto(out, in)
		}
	})

	b.Run("CNNForwardTrain", func(b *testing.B) {
		// The CNN training-representation forward (informational, not
		// alloc-gated): pays the arena and worker-dispatch costs the
		// compiled plan eliminates.
		net := benchCNN()
		in := tensor.New(4, 32, 32)
		fillKernel(in, 8)
		net.Forward(in)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Forward(in)
		}
	})

	b.Run("ServedPredict", func(b *testing.B) {
		// The serving hot path: one compiled plan replica, exactly what
		// the engine pool hands to each batch shard.
		net := benchDNN()
		plan, err := nn.Compile(net)
		if err != nil {
			b.Fatal(err)
		}
		inst := plan.NewInstance()
		in := make([]float64, 64)
		out := make([]float64, 16)
		inst.PredictInto(out, in) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst.PredictInto(out, in)
		}
	})

	b.Run("TrainBatch", func(b *testing.B) {
		net := benchDNN()
		ins := make([]*tensor.Tensor, 32)
		targets := make([]*tensor.Tensor, 32)
		for i := range ins {
			ins[i] = tensor.New(64)
			targets[i] = tensor.New(16)
			fillKernel(ins[i], uint64(10+i))
			fillKernel(targets[i], uint64(50+i))
		}
		net.TrainBatch(ins, targets) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.TrainBatch(ins, targets)
		}
	})
}

func sizeName(base string, size int) string {
	switch size {
	case 64:
		return base + "64"
	case 192:
		return base + "192"
	default:
		return base + "512"
	}
}
