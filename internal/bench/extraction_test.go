package bench

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/games/arkanoid"
	"github.com/autonomizer/autonomizer/internal/games/breakout"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/flappy"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/games/torcs"
	"github.com/autonomizer/autonomizer/internal/trace"
)

// TestAlgorithm2AcrossAllGames runs the full RL feature extraction on
// every game's dependence graph with profiled traces and checks the
// Table 1 relationships: a non-empty surviving feature set, strictly
// smaller than the candidate set (pruning did work), and free of the
// games' planted constant variables.
func TestAlgorithm2AcrossAllGames(t *testing.T) {
	cases := []struct {
		subject   *RLSubject
		graph     *dep.Graph
		targets   []string
		constants []string
	}{
		{FlappySubject(), flappy.DepGraph(), flappy.TargetVars(), []string{"gravity", "worldH", "flapImp"}},
		{MarioSubject(), mario.DepGraph(), mario.TargetVars(), []string{"accG", "gravityC", "worldW"}},
		{ArkanoidSubject(), arkanoid.DepGraph(), arkanoid.TargetVars(), []string{"fieldWc", "speedC"}},
		{TORCSSubject(), torcs.DepGraph(), torcs.TargetVars(), []string{"gear", "damage", "accX"}},
		{BreakoutSubject(), breakout.DepGraph(), breakout.TargetVars(), []string{"fieldWc", "paddleWc", "ballSpeed"}},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.subject.Name, func(t *testing.T) {
			game := tc.subject.NewEnv(1)
			rec := trace.NewRecorder()
			env.RunEpisode(game, func(e env.Env) int {
				rec.RecordAll(e.StateVars())
				return tc.subject.Player(e)
			}, 400)
			report := extract.RL(tc.graph, rec, tc.targets, env.SortedVarNames(game),
				extract.RLConfig{Epsilon1: 0.05, Epsilon2: 0.01})

			total, candidates := 0, 0
			for _, tgt := range tc.targets {
				total += len(report.Features[tgt])
				candidates += report.Candidates[tgt]
			}
			if total == 0 {
				t.Fatalf("no features survived (candidates %d)", candidates)
			}
			if total >= candidates {
				t.Errorf("no pruning: %d features from %d candidates", total, candidates)
			}
			for _, tgt := range tc.targets {
				for _, f := range report.Features[tgt] {
					for _, c := range tc.constants {
						if f == c {
							t.Errorf("constant %q survived for target %q", c, tgt)
						}
					}
				}
			}
		})
	}
}
