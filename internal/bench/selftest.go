package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/autonomizer/autonomizer/internal/core"
	"github.com/autonomizer/autonomizer/internal/coverage"
	"github.com/autonomizer/autonomizer/internal/games/env"
	"github.com/autonomizer/autonomizer/internal/games/mario"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// SelfTestConfig sizes the Section 2 self-testing case study.
type SelfTestConfig struct {
	// TrainSteps is the coverage-driven training budget (default 40000).
	TrainSteps int
	// PlayWindow is the measurement window in game steps; the paper
	// measures "30 seconds of game play" (default 900 steps ≈ 30 s at
	// 30 fps).
	PlayWindow int
	// Seed drives everything.
	Seed uint64
}

func (c *SelfTestConfig) fillDefaults() {
	if c.TrainSteps == 0 {
		c.TrainSteps = 60000
	}
	if c.PlayWindow == 0 {
		c.PlayWindow = 900
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SelfTestResult reports the coverage study's outcome.
type SelfTestResult struct {
	// CoverageAgent/PlainAgent/Random are the block-coverage fractions
	// reached within the play window by each controller.
	CoverageAgent, PlainAgent, Random float64
	// TotalBlocks is the instrumented basic-block count.
	TotalBlocks int
	// TrainTime is the coverage-agent training cost.
	TrainTime time.Duration
	// UncoveredByCoverageAgent lists what even the tester missed.
	UncoveredByCoverageAgent []string
}

// trainMarioAgent trains a Mario controller through the annotated-loop
// protocol with an optional coverage bonus (the Fig. 2 line 38
// annotation: `if (checkNewCoverage()) reward = 30`).
func trainMarioAgent(cfg SelfTestConfig, withCoverage bool) (*core.Runtime, func(e env.Env) []float64, error) {
	subject := MarioSubject()
	var cov *coverage.Map
	opts := mario.Options{}
	if withCoverage {
		cov = coverage.New(mario.BasicBlocks())
		opts.Coverage = cov
	}
	game := mario.New(cfg.Seed, opts)
	encode := scaledStateFunc(subject.Features, subject.FeatureScale)

	rt := core.NewRuntime(core.Train, cfg.Seed*17+boolTo64(withCoverage))
	err := rt.Config(core.ModelSpec{
		Name: "Mario", Algo: core.QLearn, Actions: subject.Actions,
		Hidden: []int{64, 32}, LR: 1e-3,
		EpsilonDecaySteps: 25000,
		Gamma:             0.97, TargetSyncEvery: 150, ReplayCapacity: 20000,
	})
	if err != nil {
		return nil, nil, err
	}
	game.Reset()
	rt.Checkpoint(game, 1<<20)
	pendReward := 0.0
	episodeSteps := 0
	// Snapshot selection: the tester keeps the policy that covers the
	// most within the play window; the plain agent keeps the policy
	// with the best game score (mirroring the Table 3 protocol).
	bestMetric := -1.0
	var bestParams []byte
	evalEvery := 2000
	if cfg.TrainSteps < 10000 {
		evalEvery = cfg.TrainSteps / 5
		if evalEvery < 200 {
			evalEvery = 200
		}
	}
	for step := 0; step < cfg.TrainSteps; step++ {
		state := encode(game)
		rt.Extract("STATE", state...)
		if err := rt.NNRL("Mario", "STATE", pendReward, false, "output"); err != nil {
			return nil, nil, err
		}
		action, err := rt.WriteBackAction("output")
		if err != nil {
			return nil, nil, err
		}
		reward, terminal := game.Step(action)
		// The self-testing annotation: new coverage dominates the
		// ordinary reward, while the base reward keeps Mario alive long
		// enough to reach deep code.
		if withCoverage && cov.CheckNew() {
			reward = 30
		}
		pendReward = reward
		episodeSteps++
		if terminal || episodeSteps >= subject.MaxEpisodeSteps {
			state = encode(game)
			rt.Extract("STATE", state...)
			if err := rt.NNRL("Mario", "STATE", reward, true, "output"); err != nil {
				return nil, nil, err
			}
			if err := rt.Restore(game); err != nil {
				return nil, nil, err
			}
			if withCoverage {
				// Fresh measurement window per episode: re-covering
				// blocks within an episode pays again, which makes the
				// coverage reward stationary and matches how coverage
				// is scored (per play window).
				cov.Reset()
			}
			pendReward = 0
			episodeSteps = 0
		}
		if (step+1)%evalEvery == 0 {
			var metric float64
			if withCoverage {
				// Select snapshots by the exact quantity the study
				// measures: window coverage under the deployed tester
				// policy (greedy plus its residual exploration).
				metric, _ = measureCoverage(testerPolicy(rt, encode, cfg.Seed+41), cfg.Seed, cfg.PlayWindow)
			} else {
				res := env.RunEpisode(mario.New(cfg.Seed, mario.Options{}),
					greedyPolicy(rt, encode), subject.MaxEpisodeSteps)
				metric = res.Score
			}
			if metric > bestMetric {
				bestMetric = metric
				if data, err := rt.SaveModel("Mario"); err == nil {
					bestParams = data
				}
			}
		}
	}
	if bestParams != nil {
		if err := rt.LoadModelParams("Mario", bestParams); err != nil {
			return nil, nil, err
		}
	}
	return rt, encode, nil
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// measureCoverage plays the policy for the window on a freshly
// instrumented game and reports the covered fraction.
func measureCoverage(policy env.Policy, seed uint64, window int) (float64, []string) {
	cov := coverage.New(mario.BasicBlocks())
	game := mario.New(seed, mario.Options{Coverage: cov})
	steps := 0
	for steps < window {
		_, terminal := game.Step(policy(game))
		steps++
		if terminal {
			game.Reset() // restart within the window, as a tester would
		}
	}
	return cov.Coverage(), cov.Uncovered()
}

// RunSelfTest executes the coverage case study: train a coverage-
// rewarded agent and a plain agent, then measure what each (plus a
// random controller) covers within the play window.
func RunSelfTest(cfg SelfTestConfig) (*SelfTestResult, error) {
	cfg.fillDefaults()
	res := &SelfTestResult{TotalBlocks: len(mario.BasicBlocks())}

	start := time.Now()
	covRT, encode, err := trainMarioAgent(cfg, true)
	if err != nil {
		return nil, err
	}
	res.TrainTime = time.Since(start)
	covPolicy := testerPolicy(covRT, encode, cfg.Seed+41)
	res.CoverageAgent, res.UncoveredByCoverageAgent = measureCoverage(covPolicy, cfg.Seed, cfg.PlayWindow)

	plainRT, encode2, err := trainMarioAgent(cfg, false)
	if err != nil {
		return nil, err
	}
	res.PlainAgent, _ = measureCoverage(testerPolicy(plainRT, encode2, cfg.Seed+42), cfg.Seed, cfg.PlayWindow)

	rng := stats.NewRNG(cfg.Seed + 99)
	res.Random, _ = measureCoverage(func(e env.Env) int { return rng.Intn(5) }, cfg.Seed, cfg.PlayWindow)
	return res, nil
}

// testerPolicy wraps a trained policy with the residual exploration a
// deployed RL tester keeps (ε = 0.15): the paper's tester makes "many
// unexpected moves" precisely because it is not a pure exploit policy.
func testerPolicy(rt *core.Runtime, encode func(env.Env) []float64, seed uint64) env.Policy {
	rng := stats.NewRNG(seed)
	greedy := greedyPolicy(rt, encode)
	return func(e env.Env) int {
		if rng.Bool(0.15) {
			return rng.Intn(5)
		}
		return greedy(e)
	}
}

func greedyPolicy(rt *core.Runtime, encode func(env.Env) []float64) env.Policy {
	return func(e env.Env) int {
		out, err := rt.Predict("Mario", encode(e))
		if err != nil {
			return 0
		}
		return stats.ArgMax(out)
	}
}

// BugHuntResult reports the boundary-check-bug reproduction.
type BugHuntResult struct {
	// Found reports whether the crash was triggered.
	Found bool
	// Crash is the recovered crash description.
	Crash string
	// Steps is the play length until the crash.
	Steps int
}

// RunBugHunt reproduces the paper's found bug: with the missed boundary
// check armed, an exploring controller eventually jumps through the
// dungeon ceiling hole and leaves the screen, crashing the game. The
// hunt drives the armed build with an exploration-heavy policy biased
// toward the dungeon; the fixed build never crashes under the same
// drive (verified by the self-test tests).
func RunBugHunt(seed uint64, maxSteps int) (res *BugHuntResult) {
	if maxSteps == 0 {
		maxSteps = 150000
	}
	res = &BugHuntResult{}
	rng := stats.NewRNG(seed + 7)
	game := mario.New(seed, mario.Options{BugEnabled: true})

	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(mario.CrashError); ok {
				res.Found = true
				res.Crash = ce.Error()
				return
			}
			panic(r)
		}
	}()
	for step := 0; step < maxSteps; step++ {
		res.Steps = step + 1
		vars := game.StateVars()
		var action int
		switch {
		case vars["inDungeon"] == 1:
			// Inside the dungeon the tester hammers jumps with jittered
			// horizontal movement — the unexpected move sequence the
			// paper's AI discovered.
			if rng.Bool(0.7) {
				action = mario.ActRightJump
			} else {
				action = mario.ActJump
			}
		case rng.Bool(0.2):
			action = rng.Intn(5)
		default:
			action = mario.ScriptedPlayer(game)
		}
		if _, terminal := game.Step(action); terminal {
			game.Reset()
		}
	}
	return res
}

// RenderSelfTest prints the case-study outcome.
func RenderSelfTest(w io.Writer, r *SelfTestResult, hunt *BugHuntResult) {
	fmt.Fprintln(w, "Self-testing case study (Section 2)")
	fmt.Fprintf(w, "  instrumented basic blocks: %d\n", r.TotalBlocks)
	fmt.Fprintf(w, "  coverage in play window: coverage-agent %.0f%%  plain-agent %.0f%%  random %.0f%%\n",
		100*r.CoverageAgent, 100*r.PlainAgent, 100*r.Random)
	fmt.Fprintf(w, "  coverage-agent training time: %v\n", r.TrainTime.Round(time.Millisecond*100))
	if len(r.UncoveredByCoverageAgent) > 0 {
		fmt.Fprintf(w, "  still uncovered: %v\n", r.UncoveredByCoverageAgent)
	}
	if hunt != nil {
		if hunt.Found {
			fmt.Fprintf(w, "  bug hunt: CRASH after %d steps: %s\n", hunt.Steps, hunt.Crash)
		} else {
			fmt.Fprintf(w, "  bug hunt: no crash within %d steps\n", hunt.Steps)
		}
	}
}
