package bench

import (
	"context"
	"testing"
	"time"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// BenchmarkObsOverhead proves the telemetry layer's zero-cost-when-
// disabled contract on the two hot paths (recorded in BENCH_obs.json):
//
//   - disabled: the instrumented runtime with nil telemetry — every
//     metric site is one nil-check branch. Must be within noise of the
//     pre-telemetry baseline in BENCH_ctx.json.
//   - enabled: a live private registry — counters, latency histogram
//     timers, sliding-window quantile summaries and (for Fit) per-step
//     timings all recording, which bounds the cost a -telemetry run
//     actually pays.
//   - traced: enabled plus span recording (-trace), which additionally
//     pays per-request span allocation and ring insertion.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("Predict/disabled", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		rt.Instrument(nil)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Predict/enabled", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		rt.Instrument(obs.NewRegistry())
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Predict/traced", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		rt.Instrument(obs.NewRegistry())
		prev := obs.SetTracing(true)
		defer obs.SetTracing(prev)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fit/disabled", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		rt.Instrument(nil)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.FitCtx(ctx, "Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fit/enabled", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		rt.Instrument(obs.NewRegistry())
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.FitCtx(ctx, "Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuantileObserve prices the sliding-window quantile
// estimator's hot path: one live Observe is a clock read, a log-bucket
// index computation and a handful of atomic adds; the nil variant is
// what a disabled instrumentation site pays.
func BenchmarkQuantileObserve(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var s *obs.Summary
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Observe(1e-3)
		}
	})
	b.Run("live", func(b *testing.B) {
		s := obs.NewSummary(time.Minute, 6)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Observe(1e-3)
		}
	})
}

// BenchmarkTraceparent prices one hop of W3C trace-context
// propagation: rendering the header for an outbound request and
// validating/parsing it back on the receiving side.
func BenchmarkTraceparent(b *testing.B) {
	h := obs.FormatTraceparent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	b.Run("format", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			obs.FormatTraceparent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
		}
	})
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := obs.ParseTraceparent(h); err != nil {
				b.Fatal(err)
			}
		}
	})
}
