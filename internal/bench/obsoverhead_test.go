package bench

import (
	"context"
	"testing"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// BenchmarkObsOverhead proves the telemetry layer's zero-cost-when-
// disabled contract on the two hot paths (recorded in BENCH_obs.json):
//
//   - disabled: the instrumented runtime with nil telemetry — every
//     metric site is one nil-check branch. Must be within noise of the
//     pre-telemetry baseline in BENCH_ctx.json.
//   - enabled: a live private registry — counters, latency histogram
//     timers and (for Fit) per-step timings all recording, which bounds
//     the cost a -telemetry run actually pays.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("Predict/disabled", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		rt.Instrument(nil)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Predict/enabled", func(b *testing.B) {
		rt, in := ctxOverheadRuntime(b)
		rt.Instrument(obs.NewRegistry())
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.PredictCtx(ctx, "Ctx", in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fit/disabled", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		rt.Instrument(nil)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.FitCtx(ctx, "Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fit/enabled", func(b *testing.B) {
		rt, _ := ctxOverheadRuntime(b)
		rt.Instrument(obs.NewRegistry())
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.FitCtx(ctx, "Ctx", 1, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
}
