package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRenderTable1Golden pins the Table 1 layout against a fixed row
// set, so format regressions show up as diffs rather than silently
// garbled CLI output.
func TestRenderTable1Golden(t *testing.T) {
	rows := []Table1Row{
		{Kind: "SL", Program: "Canny", LOC: 284, AddedLOC: 9, TrgVars: 3,
			Candidate: 21, FeatureCounts: []int{1, 11, 11}},
		{Kind: "RL", Program: "Breakout", LOC: 269, AddedLOC: 8, TrgVars: 1,
			Candidate: 8, FeatureCounts: []int{8}, Note: "emulator-annotated"},
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	want := `Table 1. Program analysis statistics
     Program         LOC  Added   Trg  Candidate Feature Vars
[SL] Canny           284      9     3         21 1/11/11
[RL] Breakout        269      8     1          8 8 (emulator-annotated)
`
	if buf.String() != want {
		t.Errorf("Table 1 layout changed:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestRenderTable2Golden pins the Table 2 layout and ratio arithmetic.
func TestRenderTable2Golden(t *testing.T) {
	rows := []Table2Row{
		{Kind: "SL", Program: "Canny",
			RawTrace: 1000, RawModel: 800, MedTrace: 500, MedModel: 400,
			MinTrace: 100, MinModel: 200},
		{Kind: "RL", Program: "Mario",
			RawTrace: 2000, RawModel: 1000, MinTrace: 200, MinModel: 100,
			CkptTime: 25 * time.Second, RestoreTime: 7 * time.Second},
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	out := buf.String()
	for _, want := range []string{
		"1000/800", "500/400", "100/200", "10.0x/4.0x",
		"2000/1000", "200/100", "10.0x/10.0x", "25s", "7s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
	// SL rows have no checkpoint column values.
	if strings.Count(out, "25s") != 1 {
		t.Error("checkpoint time leaked into SL rows")
	}
}

// TestRenderFig17Alignment checks the curve-alignment logic when the
// three series have different lengths.
func TestRenderFig17Alignment(t *testing.T) {
	mk := func(scores ...float64) *RLResult {
		r := &RLResult{PlayerScore: 1}
		for i, s := range scores {
			r.Curve = append(r.Curve, RLCurvePoint{Step: (i + 1) * 1000, Score: s})
		}
		return r
	}
	all := mk(0.2, 0.9, 1.0)
	manual := mk(0.5)
	raw := mk(0.1, 0.1)
	var buf bytes.Buffer
	RenderFig17(&buf, all, manual, raw)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 2 header lines + 3 data rows + footer = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("Fig. 17 rendered %d lines:\n%s", len(lines), buf.String())
	}
	// Shorter series must hold their last value, not crash or zero-fill.
	if !strings.Contains(lines[4], "0.500") {
		t.Errorf("manual series did not extend its last value: %q", lines[4])
	}
}

// TestRatioDur covers the division guard.
func TestRatioDur(t *testing.T) {
	if got := ratioDur(10, 0); got != 0 {
		t.Errorf("ratioDur(_, 0) = %v", got)
	}
	if got := ratioDur(10*time.Microsecond, 5*time.Microsecond); got != 2 {
		t.Errorf("ratioDur = %v, want 2", got)
	}
}

// TestTORCSAblationHelper verifies the exported ablation entry point
// prunes when asked.
func TestTORCSAblationHelper(t *testing.T) {
	with := TORCSFeatureAblation(1, true)
	without := TORCSFeatureAblation(1, false)
	if len(with) >= len(without) {
		t.Errorf("pruning kept %d features vs %d unpruned", len(with), len(without))
	}
	if len(with) == 0 {
		t.Error("pruning removed everything")
	}
}

func TestSubjectDepGraph(t *testing.T) {
	for _, name := range []string{"canny", "rothwell", "phylip", "sphinx",
		"flappy", "mario", "arkanoid", "torcs", "breakout"} {
		g, err := SubjectDepGraph(name, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if g.VarCount() == 0 || g.EdgeCount() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		if dot := g.DOT(name); len(dot) < 40 {
			t.Errorf("%s: DOT too small", name)
		}
	}
	if _, err := SubjectDepGraph("pacman", 1); err == nil {
		t.Error("unknown subject accepted")
	}
}
