package bench

import (
	"context"
	"errors"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// countdownCtx cancels after a fixed number of Err() checks, letting the
// harness tests cut training at a deterministic step boundary.
type countdownCtx struct {
	context.Context
	allow int
}

func (c *countdownCtx) Err() error {
	if c.allow <= 0 {
		return context.Canceled
	}
	c.allow--
	return nil
}

func TestRunRLCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunRLCtx(ctx, FlappySubject(), RLConfig{TrainSteps: 1000, EvalEpisodes: 1})
	if res != nil {
		t.Errorf("result = %+v, want nil for a pre-canceled run", res)
	}
	if !errors.Is(err, auerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestRunRLCtxCanceledMidTrainingReturnsPartial(t *testing.T) {
	ctx := &countdownCtx{Context: context.Background(), allow: 25}
	res, err := RunRLCtx(ctx, FlappySubject(), RLConfig{
		TrainSteps: 100000, EvalEpisodes: 1, EvalEvery: 100000,
	})
	if !errors.Is(err, auerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("want a partial result alongside the cancellation error")
	}
	if res.TraceBytes == 0 {
		t.Error("partial result has no trace accounting; training never ran")
	}
}

func TestRunSLSuiteCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunSLSuiteCtx(ctx, SLSuiteConfig{Quick: true})
	if len(out) != 0 {
		t.Errorf("results = %d, want none for a pre-canceled suite", len(out))
	}
	if !errors.Is(err, auerr.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
}

func TestRunSLCtxCanceledMidTrainingFlushesCompletedVersions(t *testing.T) {
	// Each version checks cancellation once per minibatch: 12 examples
	// at batch 16 is one batch per epoch, 8 checks per version, plus two
	// entry checks. 15 lets Raw finish and cancels Med mid-training.
	ctx := &countdownCtx{Context: context.Background(), allow: 15}
	res, err := RunSLCtx(ctx, CannySubject{}, SLConfig{
		TrainN: 12, TestN: 4, Epochs: 8, Hidden: []int{8},
	})
	if !errors.Is(err, auerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("want a partial result alongside the cancellation error")
	}
	if len(res.Versions) == 0 {
		t.Error("partial result has no completed versions; allow budget too small")
	}
}
