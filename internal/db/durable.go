package db

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Durable store: every mutation of the database store π is journaled
// into a WAL while the store mutex is held, so the on-disk record order
// is exactly the apply order. Reopen replays the log into a fresh store;
// compaction collapses the history into one snapshot record (the Save
// image) at the head of a fresh segment.

// Store-op record types. The high nibble distinguishes store records
// from queue records so a mixed-up directory fails loudly.
const (
	walOpStoreAppend   byte = 0x01 // name + values appended
	walOpStorePut      byte = 0x02 // name + values replacing the binding
	walOpStoreReset    byte = 0x03 // name unbound
	walOpStoreConcat   byte = 0x04 // SERIALIZE: names concatenated under joined key
	walOpStoreSnapshot byte = 0x05 // full Save image (compaction base / RestoreSnapshot)
)

func encName(buf *bytes.Buffer, name string) {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(name)))
	buf.Write(l[:])
	buf.WriteString(name)
}

func decName(r *bytes.Reader) (string, error) {
	var l uint16
	if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
		return "", fmt.Errorf("db: read name length: %w", err)
	}
	b := make([]byte, l)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("db: read name: %w", err)
	}
	return string(b), nil
}

// encNameVals encodes name + float64 list for append/put records.
func encNameVals(name string, vals []float64) []byte {
	var buf bytes.Buffer
	buf.Grow(2 + len(name) + 4 + 8*len(vals))
	encName(&buf, name)
	var c [4]byte
	binary.LittleEndian.PutUint32(c[:], uint32(len(vals)))
	buf.Write(c[:])
	var v [8]byte
	for _, x := range vals {
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(x))
		buf.Write(v[:])
	}
	return buf.Bytes()
}

func decNameVals(payload []byte) (string, []float64, error) {
	r := bytes.NewReader(payload)
	name, err := decName(r)
	if err != nil {
		return "", nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", nil, fmt.Errorf("db: read value count: %w", err)
	}
	if int64(n)*8 > int64(r.Len()) {
		return "", nil, fmt.Errorf("db: value count %d exceeds record size", n)
	}
	vals := make([]float64, n)
	for i := range vals {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return "", nil, fmt.Errorf("db: read value: %w", err)
		}
		vals[i] = math.Float64frombits(bits)
	}
	return name, vals, nil
}

func encNames(names []string) []byte {
	var buf bytes.Buffer
	var c [2]byte
	binary.LittleEndian.PutUint16(c[:], uint16(len(names)))
	buf.Write(c[:])
	for _, n := range names {
		encName(&buf, n)
	}
	return buf.Bytes()
}

func decNames(payload []byte) ([]string, error) {
	r := bytes.NewReader(payload)
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("db: read name count: %w", err)
	}
	names := make([]string, n)
	for i := range names {
		var err error
		if names[i], err = decName(r); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// logRecord journals one store op; callers hold s.mu. Write failures are
// sticky inside the WAL and surfaced through DurableStore.Err/Sync — the
// in-memory store stays usable either way.
func (s *Store) logRecord(typ byte, payload []byte) {
	if s.wal != nil {
		_ = s.wal.Append(typ, payload)
	}
}

// saveImageLocked builds the Save() serialization while s.mu is held.
func (s *Store) saveImageLocked() []byte {
	var buf bytes.Buffer
	names := make([]string, 0, len(s.data))
	for k := range s.data {
		names = append(names, k)
	}
	sort.Strings(names)
	buf.WriteString(storeMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(storeVersion))
	binary.Write(&buf, binary.LittleEndian, uint32(len(names)))
	for _, name := range names {
		vals := s.data[name]
		binary.Write(&buf, binary.LittleEndian, uint32(len(name)))
		buf.WriteString(name)
		binary.Write(&buf, binary.LittleEndian, uint32(len(vals)))
		for _, v := range vals {
			binary.Write(&buf, binary.LittleEndian, math.Float64bits(v))
		}
	}
	return buf.Bytes()
}

// DurableStore couples a Store with the WAL that journals it.
type DurableStore struct {
	*Store
	wal *WAL
}

// OpenDurable opens (creating if necessary) a WAL-backed store in dir.
// Existing records are replayed in order; a torn trailing record —
// an append interrupted by a crash — is truncated away and the valid
// prefix kept, while mid-file corruption fails with an error wrapping
// auerr.ErrCorruptStore (records that were once durable cannot silently
// vanish). After a successful open every mutation is journaled and, under
// the default options, fsync'd before the mutator returns.
func OpenDurable(dir string, opts WALOptions) (*DurableStore, error) {
	s := New()
	apply := func(typ byte, payload []byte) error {
		return s.applyWALRecord(typ, payload)
	}
	w, err := OpenWAL(dir, opts, apply)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.wal = w
	s.mu.Unlock()
	return &DurableStore{Store: s, wal: w}, nil
}

// applyWALRecord applies one replayed journal record to the store. The
// store is not yet attached to the WAL during replay, so these mutations
// are not re-journaled.
func (s *Store) applyWALRecord(typ byte, payload []byte) error {
	switch typ {
	case walOpStoreAppend:
		name, vals, err := decNameVals(payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.data[name] = append(s.data[name], vals...)
		s.mu.Unlock()
	case walOpStorePut:
		name, vals, err := decNameVals(payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.data[name] = vals
		s.mu.Unlock()
	case walOpStoreReset:
		r := bytes.NewReader(payload)
		name, err := decName(r)
		if err != nil {
			return err
		}
		s.mu.Lock()
		delete(s.data, name)
		s.mu.Unlock()
	case walOpStoreConcat:
		names, err := decNames(payload)
		if err != nil {
			return err
		}
		s.mu.Lock()
		var combined []float64
		for _, n := range names {
			combined = append(combined, s.data[n]...)
		}
		s.data[strings.Join(names, "+")] = combined
		s.mu.Unlock()
	case walOpStoreSnapshot:
		// A snapshot resets the store to the embedded Save image; stale
		// pre-compaction records replayed before it are superseded.
		tmp := New()
		if err := tmp.load(bytes.NewReader(payload)); err != nil {
			return err
		}
		s.mu.Lock()
		s.data = tmp.data
		s.mu.Unlock()
	default:
		return fmt.Errorf("db: unknown store record type 0x%02x", typ)
	}
	return nil
}

// Compact collapses the journal into a single snapshot record (the
// current Save image) at the head of a fresh segment and removes the
// history. Mutators hold the store mutex while journaling, so holding it
// here makes snapshot-vs-append ordering exact.
func (d *DurableStore) Compact() error {
	d.Store.mu.Lock()
	defer d.Store.mu.Unlock()
	img := d.Store.saveImageLocked()
	return d.wal.Compact([]Record{{Type: walOpStoreSnapshot, Payload: img}})
}

// Sync flushes the journal and reports the sticky write error, if any.
func (d *DurableStore) Sync() error { return d.wal.Sync() }

// Err reports the journal's sticky write error, if any.
func (d *DurableStore) Err() error { return d.wal.Err() }

// WAL exposes the underlying log (size/segment accounting, recovery
// info).
func (d *DurableStore) WAL() *WAL { return d.wal }

// Close detaches the store from its journal and closes it; the in-memory
// store remains readable but further mutations are no longer durable.
func (d *DurableStore) Close() error {
	d.Store.mu.Lock()
	d.Store.wal = nil
	d.Store.mu.Unlock()
	return d.wal.Close()
}
