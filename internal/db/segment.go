package db

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WAL segment layout (little-endian):
//
//	header: magic "AUWS" | uint32 version | uint64 segment index   (16 bytes)
//	record: uint32 bodyLen | uint32 crc32(body) | body             (8-byte frame)
//	body:   uint8 recordType | payload
//
// Segments are append-only and named wal-%016x.seg by their index; a
// sealed segment (one with a successor) must end cleanly, while the
// final segment may end in a torn record from a crash mid-append.

const (
	segMagic      = "AUWS"
	segVersion    = 1
	segHeaderSize = 16
	frameSize     = 8 // bodyLen + crc
)

func segName(idx uint64) string {
	return fmt.Sprintf("wal-%016x.seg", idx)
}

// parseSegName extracts the index from a segment file name, reporting
// whether the name is a WAL segment at all.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hexPart) != 16 {
		return 0, false
	}
	idx, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// listSegments returns the WAL segment indices present in dir, sorted
// ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if idx, ok := parseSegName(e.Name()); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	return idxs, nil
}

// writeSegHeader writes a fresh segment header to f.
func writeSegHeader(f *os.File, idx uint64) error {
	var hdr [segHeaderSize]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], idx)
	_, err := f.Write(hdr[:])
	return err
}

// readSegHeader validates a segment's header against its file name.
func readSegHeader(data []byte, idx uint64) error {
	if len(data) < segHeaderSize {
		return fmt.Errorf("db: segment %s: short header (%d bytes)", segName(idx), len(data))
	}
	if string(data[0:4]) != segMagic {
		return fmt.Errorf("db: segment %s: bad magic %q", segName(idx), data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != segVersion {
		return fmt.Errorf("db: segment %s: unsupported version %d", segName(idx), v)
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != idx {
		return fmt.Errorf("db: segment %s: header claims index %d", segName(idx), got)
	}
	return nil
}

// encodeFrame frames one record: 8-byte header then type byte + payload.
func encodeFrame(typ byte, payload []byte) []byte {
	body := len(payload) + 1
	frame := make([]byte, frameSize+body)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(body))
	frame[frameSize] = typ
	copy(frame[frameSize+1:], payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(frame[frameSize:]))
	return frame
}

// tornTailError marks a decode failure consistent with a write that was
// interrupted by a crash: recoverable by truncating the segment back to
// the last valid record. Any other decode failure is mid-file corruption
// and fatal. The classification rules (final segment only):
//
//   - a frame header or body extending past end-of-file is torn (the
//     crash landed mid-write);
//   - a CRC mismatch on a record whose frame ends exactly at end-of-file
//     is torn (partially persisted final record);
//   - a zero/implausible length whose remaining bytes are all zero is
//     torn (zero-filled tail pages);
//   - everything else — a bad record with valid-looking data after it,
//     or any damage in a sealed segment — is fatal, because silently
//     dropping records that were once durable would corrupt the replay.
type tornTailError struct {
	off int64 // file offset of the last valid byte
	why string
}

func (e *tornTailError) Error() string {
	return fmt.Sprintf("db: torn tail at offset %d: %s", e.off, e.why)
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// scanSegment replays every intact record of one segment through fn.
// final marks the newest segment, the only one allowed to end in a torn
// record; a torn tail is reported as *tornTailError with the offset to
// truncate to, any other failure as a plain (fatal) error.
func scanSegment(data []byte, idx uint64, maxRecord int, final bool, fn func(typ byte, payload []byte) error) error {
	if err := readSegHeader(data, idx); err != nil {
		if final && len(data) < segHeaderSize && allZero(data) {
			// A crash immediately after creating the file can leave a
			// short or empty header; nothing was ever logged here.
			return &tornTailError{off: 0, why: "incomplete segment header"}
		}
		return err
	}
	off := int64(segHeaderSize)
	size := int64(len(data))
	torn := func(why string) error {
		if final {
			return &tornTailError{off: off, why: why}
		}
		return fmt.Errorf("db: segment %s: %s in sealed segment at offset %d", segName(idx), why, off)
	}
	for off < size {
		if off+frameSize > size {
			return torn("short record frame")
		}
		bodyLen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		end := off + frameSize + bodyLen
		if end > size {
			return torn("record extends past end of file")
		}
		if bodyLen < 1 || bodyLen > int64(maxRecord) {
			if final && allZero(data[off:]) {
				return &tornTailError{off: off, why: "zero-filled tail"}
			}
			return fmt.Errorf("db: segment %s: implausible record length %d at offset %d", segName(idx), bodyLen, off)
		}
		body := data[off+frameSize : end]
		if crc32.ChecksumIEEE(body) != crc {
			if final && end == size {
				return torn("checksum mismatch on final record")
			}
			return fmt.Errorf("db: segment %s: checksum mismatch at offset %d", segName(idx), off)
		}
		if err := fn(body[0], body[1:]); err != nil {
			return fmt.Errorf("db: segment %s: record at offset %d: %w", segName(idx), off, err)
		}
		off = end
	}
	return nil
}

// syncDir fsyncs a directory so segment creation/removal is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// removeSegments deletes the segments with the given indices.
func removeSegments(dir string, idxs []uint64) error {
	for _, idx := range idxs {
		if err := os.Remove(filepath.Join(dir, segName(idx))); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return syncDir(dir)
}
