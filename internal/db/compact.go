package db

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Compaction: the log is collapsed into a snapshot record at the head of
// a fresh segment ("snapshot+tail"). The protocol is crash-safe without
// multi-file atomic operations because a snapshot record *resets* the
// replayed state — if the process dies after the new segment is durable
// but before the old segments are unlinked, replay applies the stale
// segments first and the snapshot then supersedes them.
//
// Ordering: callers must guarantee no record is appended between taking
// the state snapshot and Compact returning (the durable store holds the
// store mutex across both; the queue holds its own).

// Record is one typed WAL record, used to hand compaction snapshots to
// the WAL.
type Record struct {
	Type    byte
	Payload []byte
}

// Compact seals the log into the given snapshot records: they become the
// head of a fresh segment, and every older segment is removed. The WAL
// stays open for appends (the "tail" grows behind the snapshot).
func (w *WAL) Compact(snapshot []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	old, err := listSegments(w.dir)
	if err != nil {
		return fmt.Errorf("db: wal: %w", err)
	}
	if err := w.createSegment(w.seg + 1); err != nil {
		w.err = err
		return err
	}
	for _, rec := range snapshot {
		if err := w.appendLocked(rec.Type, rec.Payload); err != nil {
			return err
		}
	}
	// The snapshot is durable (createSegment and appendLocked sync under
	// the default policy); the stale prefix can go.
	if err := removeSegments(w.dir, old); err != nil {
		return fmt.Errorf("db: wal: %w", err)
	}
	w.total = w.segSize
	w.segs = 1
	w.sinceComp = 0
	if w.m != nil {
		w.m.compactions.Inc()
	}
	w.publishGauges()
	return nil
}

// SinceCompaction reports bytes appended since the last compaction (or
// open), the trigger input for background compaction policies.
func (w *WAL) SinceCompaction() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sinceComp
}

// AutoCompact runs fn-driven compaction in the background: every
// interval it checks whether the log has grown by at least threshold
// bytes since the last compaction and, if so, invokes compact (which is
// expected to call Compact with a fresh snapshot). It returns a stop
// function; the loop also exits when ctx is canceled. Compaction errors
// are reported through onErr (nil to ignore).
func AutoCompact(ctx context.Context, w *WAL, interval time.Duration, threshold int64, compact func() error, onErr func(error)) (stop func()) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if threshold <= 0 {
		threshold = 1 << 20
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-done:
				return
			case <-t.C:
				if w.SinceCompaction() >= threshold {
					if err := compact(); err != nil && onErr != nil {
						onErr(err)
					}
				}
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
