package db

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// Serialization format (versioned, little-endian):
//
//	magic "AUDB" | uint32 version | uint32 nameCount
//	per name: uint32 nameLen | name bytes | uint32 valueCount | values
//
// The paper's runtime "automatically records the values of the feature
// variables into a database"; this is the on-disk form of that store,
// letting a training run's extracted traces be saved and fed to offline
// SL training in a later process.

const (
	storeMagic   = "AUDB"
	storeVersion = 1
)

// Save serializes the store's full contents to w.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	snap := s.Snapshot()
	if _, err := bw.WriteString(storeMagic); err != nil {
		return fmt.Errorf("db: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(storeVersion)); err != nil {
		return fmt.Errorf("db: write version: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(snap))); err != nil {
		return fmt.Errorf("db: write count: %w", err)
	}
	for _, name := range s.Names() {
		vals := snap[name]
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return fmt.Errorf("db: write name length: %w", err)
		}
		if _, err := bw.WriteString(name); err != nil {
			return fmt.Errorf("db: write name: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(vals))); err != nil {
			return fmt.Errorf("db: write value count: %w", err)
		}
		for _, v := range vals {
			if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return fmt.Errorf("db: write value: %w", err)
			}
		}
	}
	return bw.Flush()
}

// Load replaces the store's contents with a previously saved image.
// Truncated or garbage bytes return an error wrapping
// auerr.ErrCorruptStore, leaving the store's previous contents intact
// (the image is fully decoded before anything is replaced).
func (s *Store) Load(r io.Reader) error {
	if err := s.load(r); err != nil {
		return fmt.Errorf("%w: %w", auerr.ErrCorruptStore, err)
	}
	return nil
}

func (s *Store) load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("db: read magic: %w", err)
	}
	if string(magic) != storeMagic {
		return fmt.Errorf("db: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("db: read version: %w", err)
	}
	if version != storeVersion {
		return fmt.Errorf("db: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("db: read count: %w", err)
	}
	snap := make(map[string][]float64, count)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("db: read name length: %w", err)
		}
		if nameLen > 1<<20 {
			return fmt.Errorf("db: implausible name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("db: read name: %w", err)
		}
		var valCount uint32
		if err := binary.Read(br, binary.LittleEndian, &valCount); err != nil {
			return fmt.Errorf("db: read value count: %w", err)
		}
		// Cap the allocation before trusting the header: a corrupt count
		// must fail cleanly instead of attempting a multi-GB make().
		if valCount > 1<<27 {
			return fmt.Errorf("db: implausible value count %d for %q", valCount, name)
		}
		vals := make([]float64, valCount)
		for j := range vals {
			var bits uint64
			if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
				return fmt.Errorf("db: read value: %w", err)
			}
			vals[j] = math.Float64frombits(bits)
		}
		snap[string(name)] = vals
	}
	s.RestoreSnapshot(snap)
	return nil
}
