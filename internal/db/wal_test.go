package db

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// collectRecords reopens the WAL in dir and returns every replayed
// record.
func collectRecords(t *testing.T, dir string, opts WALOptions) ([]Record, *WAL) {
	t.Helper()
	var recs []Record
	w, err := OpenWAL(dir, opts, func(typ byte, payload []byte) error {
		recs = append(recs, Record{Type: typ, Payload: append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", dir, err)
	}
	return recs, w
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	want := []Record{
		{Type: 1, Payload: []byte("alpha")},
		{Type: 2, Payload: nil},
		{Type: 3, Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := w.Append(r.Type, r.Payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, w2 := collectRecords(t, dir, WALOptions{NoSync: true})
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("record %d mismatch: got (%d, %x)", i, got[i].Type, got[i].Payload)
		}
	}
	if w2.Recovered() != nil {
		t.Errorf("clean log reported recovery %+v", w2.Recovered())
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true, SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	payload := bytes.Repeat([]byte{7}, 64)
	const n = 20
	for i := 0; i < n; i++ {
		if err := w.Append(1, payload); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if w.Segments() < 2 {
		t.Fatalf("expected rotation, still %d segment(s)", w.Segments())
	}
	w.Close()
	got, w2 := collectRecords(t, dir, WALOptions{NoSync: true, SegmentBytes: 256})
	defer w2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}
}

// TestWALTornTailEveryByteBoundary is the satellite regression test: a
// log truncated mid-record at EVERY byte boundary of the final record
// must reopen successfully, keep the intact prefix, and report a
// recovery — a torn tail is an interrupted write, not corruption.
func TestWALTornTailEveryByteBoundary(t *testing.T) {
	build := func(dir string) (prefixLen int64, recs []Record) {
		w, err := OpenWAL(dir, WALOptions{NoSync: true}, nil)
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		recs = []Record{
			{Type: 1, Payload: []byte("first record")},
			{Type: 2, Payload: []byte("second record")},
		}
		for _, r := range recs {
			if err := w.Append(r.Type, r.Payload); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		prefixLen = w.SizeBytes()
		last := Record{Type: 3, Payload: []byte("the final, torn record")}
		if err := w.Append(last.Type, last.Payload); err != nil {
			t.Fatalf("Append final: %v", err)
		}
		w.Close()
		return prefixLen, recs
	}

	probe := t.TempDir()
	prefixLen, _ := build(probe)
	full, err := os.ReadFile(filepath.Join(probe, segName(1)))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}

	for cut := prefixLen + 1; cut < int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut@%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if _, want := build(dir); true {
				path := filepath.Join(dir, segName(1))
				if err := os.Truncate(path, cut); err != nil {
					t.Fatalf("truncate: %v", err)
				}
				got, w := collectRecords(t, dir, WALOptions{NoSync: true})
				defer w.Close()
				if len(got) != len(want) {
					t.Fatalf("cut at %d: replayed %d records, want the %d intact ones", cut, len(got), len(want))
				}
				for i := range want {
					if got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
						t.Errorf("cut at %d: prefix record %d damaged", cut, i)
					}
				}
				rec := w.Recovered()
				if rec == nil {
					t.Fatalf("cut at %d: no recovery reported", cut)
				}
				if rec.DroppedBytes != cut-prefixLen {
					t.Errorf("cut at %d: dropped %d bytes, want %d", cut, rec.DroppedBytes, cut-prefixLen)
				}
				// The truncated log must accept new appends and replay
				// prefix+new cleanly.
				if err := w.Append(9, []byte("after recovery")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				w.Close()
				again, w2 := collectRecords(t, dir, WALOptions{NoSync: true})
				defer w2.Close()
				if len(again) != len(want)+1 || again[len(again)-1].Type != 9 {
					t.Errorf("cut at %d: post-recovery log replayed %d records", cut, len(again))
				}
			}
		})
	}
}

// TestWALMidFileCorruptionFatal is the other half of the classification:
// damage to a record that has valid records after it — or any damage in
// a sealed segment — must fail the open with auerr.ErrCorruptStore, not
// silently drop data.
func TestWALMidFileCorruptionFatal(t *testing.T) {
	newLog := func(t *testing.T, segBytes int64) string {
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{NoSync: true, SegmentBytes: segBytes}, nil)
		if err != nil {
			t.Fatalf("OpenWAL: %v", err)
		}
		for i := 0; i < 8; i++ {
			if err := w.Append(1, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		w.Close()
		return dir
	}

	t.Run("flip byte in early record body", func(t *testing.T) {
		dir := newLog(t, 0)
		path := filepath.Join(dir, segName(1))
		data, _ := os.ReadFile(path)
		data[segHeaderSize+frameSize+10] ^= 0xFF
		os.WriteFile(path, data, 0o644)
		_, err := OpenWAL(dir, WALOptions{NoSync: true}, nil)
		if err == nil {
			t.Fatal("open accepted mid-file corruption")
		}
		if !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("error %v does not wrap auerr.ErrCorruptStore", err)
		}
	})

	t.Run("flip byte in sealed segment tail", func(t *testing.T) {
		dir := newLog(t, 300) // forces several sealed segments
		idxs, _ := listSegments(dir)
		if len(idxs) < 2 {
			t.Fatalf("expected rotation, got %d segments", len(idxs))
		}
		path := filepath.Join(dir, segName(idxs[0]))
		data, _ := os.ReadFile(path)
		// Damage the LAST record of a sealed segment: even a tail
		// position is fatal once the segment has a successor.
		data[len(data)-3] ^= 0xFF
		os.WriteFile(path, data, 0o644)
		_, err := OpenWAL(dir, WALOptions{NoSync: true, SegmentBytes: 300}, nil)
		if err == nil {
			t.Fatal("open accepted corruption in sealed segment")
		}
		if !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("error %v does not wrap auerr.ErrCorruptStore", err)
		}
	})

	t.Run("bad segment magic", func(t *testing.T) {
		dir := newLog(t, 0)
		path := filepath.Join(dir, segName(1))
		data, _ := os.ReadFile(path)
		data[0] ^= 0xFF
		os.WriteFile(path, data, 0o644)
		_, err := OpenWAL(dir, WALOptions{NoSync: true}, nil)
		if !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("bad magic: error %v does not wrap auerr.ErrCorruptStore", err)
		}
	})
}

func TestWALCompactSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true, SegmentBytes: 512}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Append(1, bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	preSegs := w.Segments()
	if preSegs < 2 {
		t.Fatalf("expected multiple segments before compaction, got %d", preSegs)
	}
	if err := w.Compact([]Record{{Type: 42, Payload: []byte("snapshot")}}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if w.Segments() != 1 {
		t.Errorf("post-compaction segments = %d, want 1", w.Segments())
	}
	// Tail records append behind the snapshot.
	if err := w.Append(7, []byte("tail")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	w.Close()
	got, w2 := collectRecords(t, dir, WALOptions{NoSync: true})
	defer w2.Close()
	if len(got) != 2 || got[0].Type != 42 || got[1].Type != 7 {
		t.Fatalf("replay after compaction: %+v", got)
	}
	if w2.SinceCompaction() != 0 {
		t.Errorf("fresh open SinceCompaction = %d", w2.SinceCompaction())
	}
}

func TestWALStickyWriteError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if err := w.Append(1, []byte("ok")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.f.Close() // simulate the descriptor dying under the WAL
	if err := w.Append(1, []byte("fails")); err == nil {
		t.Fatal("Append on closed file succeeded")
	}
	if err := w.Err(); err == nil {
		t.Fatal("sticky error not recorded")
	}
	if err := w.Append(1, []byte("still fails")); err == nil {
		t.Fatal("Append after sticky error succeeded")
	}
}

func TestWALRecordCap(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true, MaxRecordBytes: 64}, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()
	if err := w.Append(1, bytes.Repeat([]byte{1}, 100)); err == nil {
		t.Fatal("oversized record accepted")
	}
	if err := w.Append(1, []byte("fits")); err != nil {
		t.Fatalf("small record after oversize rejection: %v", err)
	}
}
