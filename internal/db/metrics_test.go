package db

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// TestStoreMetrics checks the extraction-traffic counters.
func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	prev := obs.SetDefault(reg)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()

	s := New()
	s.Append("a", 1, 2, 3)
	s.Append("b", 4)
	s.Put("out", []float64{9})

	if got := reg.Counter("autonomizer_db_appends_total", "", nil).Value(); got != 2 {
		t.Errorf("appends = %d, want 2", got)
	}
	if got := reg.Counter("autonomizer_db_values_appended_total", "", nil).Value(); got != 4 {
		t.Errorf("values = %d, want 4", got)
	}
	if got := reg.Counter("autonomizer_db_puts_total", "", nil).Value(); got != 1 {
		t.Errorf("puts = %d, want 1", got)
	}
}

// TestStoreMetricsDisabled pins the nil fast path.
func TestStoreMetricsDisabled(t *testing.T) {
	prev := obs.SetDefault(nil)
	resetMetricsForTest()
	defer func() {
		obs.SetDefault(prev)
		resetMetricsForTest()
	}()
	if m := metrics(); m != nil {
		t.Fatal("metrics() non-nil while telemetry disabled")
	}
	s := New()
	s.Append("a", 1)
	if v, ok := s.Get("a"); !ok || len(v) != 1 {
		t.Fatal("store mutation lost on disabled-telemetry path")
	}
}
