package db

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

// TestLoadRejectsCorruptBytes feeds damaged store images into Load and
// asserts the typed error contract: every corruption mode returns an
// error wrapping auerr.ErrCorruptStore and leaves the store's previous
// contents untouched.
func TestLoadRejectsCorruptBytes(t *testing.T) {
	src := New()
	src.Append("alpha", 1, 2, 3)
	src.Append("beta", 4.5)
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()

	flip := func(data []byte, i int) []byte {
		out := append([]byte(nil), data...)
		out[i] ^= 0xFF
		return out
	}
	// An image whose value-count header claims far more floats than any
	// plausible store holds: Load must reject the header instead of
	// attempting a multi-GB allocation on attacker-controlled input.
	implausible := func() []byte {
		var b bytes.Buffer
		b.WriteString("AUDB")
		binary.Write(&b, binary.LittleEndian, uint32(1)) // version
		binary.Write(&b, binary.LittleEndian, uint32(1)) // one name
		binary.Write(&b, binary.LittleEndian, uint32(1)) // name length
		b.WriteByte('x')
		binary.Write(&b, binary.LittleEndian, uint32(1<<30)) // value count
		return b.Bytes()
	}()

	cases := []struct {
		desc string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a database image at all")},
		{"bad magic", flip(good, 0)},
		{"bad version", flip(good, 4)},
		{"truncated header", good[:7]},
		{"truncated values", good[:len(good)-5]},
		{"implausible value count", implausible},
	}
	for _, c := range cases {
		dst := New()
		dst.Append("keep", 9, 9)
		err := dst.Load(bytes.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: Load accepted corrupt bytes", c.desc)
			continue
		}
		if !errors.Is(err, auerr.ErrCorruptStore) {
			t.Errorf("%s: error %v does not wrap auerr.ErrCorruptStore", c.desc, err)
		}
		if vals, ok := dst.Get("keep"); !ok || len(vals) != 2 {
			t.Errorf("%s: failed Load clobbered the store: %v, %v", c.desc, vals, ok)
		}
	}

	// The pristine image still round-trips.
	dst := New()
	if err := dst.Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("Load on good bytes: %v", err)
	}
	if vals, ok := dst.Get("alpha"); !ok || len(vals) != 3 {
		t.Errorf("round-trip lost data: %v, %v", vals, ok)
	}
}
