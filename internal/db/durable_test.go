package db

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/autonomizer/autonomizer/internal/auerr"
)

func openDurable(t *testing.T, dir string) *DurableStore {
	t.Helper()
	d, err := OpenDurable(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return d
}

func TestDurableStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Append("x", 1, 2, 3)
	d.Append("y", -1.5)
	d.Put("out", []float64{9, 8})
	d.Append("gone", 4)
	d.Reset("gone")
	key := d.Concat("x", "y")
	if key != "x+y" {
		t.Fatalf("Concat key = %q", key)
	}
	want := d.Snapshot()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2 := openDurable(t, dir)
	defer d2.Close()
	got := d2.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed store = %v, want %v", got, want)
	}
	if _, ok := d2.Get("gone"); ok {
		t.Error("Reset not replayed: name still bound")
	}
}

func TestDurableStoreRestoreSnapshotReplay(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Append("junk", 1, 2, 3)
	snap := map[string][]float64{"kept": {42, 43}}
	d.RestoreSnapshot(snap)
	d.Append("kept", 44) // post-restore mutation must replay on top
	d.Close()

	d2 := openDurable(t, dir)
	defer d2.Close()
	if _, ok := d2.Get("junk"); ok {
		t.Error("RestoreSnapshot replay kept pre-restore binding")
	}
	got, _ := d2.Get("kept")
	if !reflect.DeepEqual(got, []float64{42, 43, 44}) {
		t.Errorf("kept = %v, want [42 43 44]", got)
	}
}

func TestDurableStoreCompactPreservesState(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	for i := 0; i < 100; i++ {
		d.Append("series", float64(i))
	}
	d.Put("params", []float64{3.14})
	want := d.Snapshot()
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := d.WAL().Segments(); got != 1 {
		t.Errorf("segments after compact = %d, want 1", got)
	}
	// Mutations after compaction land in the tail.
	d.Append("series", 100)
	want["series"] = append(want["series"], 100)
	d.Close()

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := d2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("post-compaction replay = %v, want %v", got, want)
	}
}

// TestDurableStoreCompactCrashBeforeUnlink exercises the compaction
// crash window: the snapshot segment is durable but the stale segments
// were never removed. Replay must let the snapshot supersede them.
func TestDurableStoreCompactCrashBeforeUnlink(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Append("a", 1, 2)
	d.Put("b", []float64{7})
	want := d.Snapshot()
	d.Close()

	// Simulate the crash by hand-building the post-compaction segment
	// while leaving segment 1 in place.
	s := New()
	for k, v := range want {
		s.data[k] = v
	}
	img := s.saveImageLocked()
	f, err := os.OpenFile(filepath.Join(dir, segName(2)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("create snapshot segment: %v", err)
	}
	if err := writeSegHeader(f, 2); err != nil {
		t.Fatalf("write header: %v", err)
	}
	if _, err := f.Write(encodeFrame(walOpStoreSnapshot, img)); err != nil {
		t.Fatalf("write snapshot record: %v", err)
	}
	f.Close()
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("stale segment missing from fixture: %v", err)
	}

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := d2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("replay with stale prefix = %v, want %v", got, want)
	}
}

func TestDurableStoreTornTailKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Append("safe", 1, 2, 3)
	prefix := d.WAL().SizeBytes()
	d.Append("torn", 4, 5, 6)
	d.Close()

	path := filepath.Join(dir, segName(1))
	if err := os.Truncate(path, prefix+5); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	d2 := openDurable(t, dir)
	defer d2.Close()
	if d2.WAL().Recovered() == nil {
		t.Fatal("torn tail not reported")
	}
	if got, _ := d2.Get("safe"); !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("prefix binding = %v", got)
	}
	if _, ok := d2.Get("torn"); ok {
		t.Error("torn record partially applied")
	}
}

func TestDurableStoreMidFileCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	d.Append("a", 1, 2, 3)
	d.Append("b", 4, 5, 6)
	d.Close()

	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[segHeaderSize+frameSize+4] ^= 0xFF // inside the first record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err = OpenDurable(dir, WALOptions{NoSync: true})
	if err == nil {
		t.Fatal("OpenDurable accepted mid-file corruption")
	}
	if !errors.Is(err, auerr.ErrCorruptStore) {
		t.Errorf("error %v does not wrap auerr.ErrCorruptStore", err)
	}
}

func TestDurableStoreConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				d.Append("shared", float64(g*1000+i))
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	want := d.Snapshot()
	d.Close()

	d2 := openDurable(t, dir)
	defer d2.Close()
	if got := d2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Error("concurrent appends replayed in a different order than applied")
	}
}
