// Package db implements the Database Store π from the paper's
// operational semantics (Fig. 8): a mapping from string names to lists
// of values. Feature-variable values extracted by au_extract are
// appended here; model outputs produced by au_NN are stored here before
// au_write_back copies them into program variables.
//
// The store is deliberately isolated from program state (the Program
// Store σ): data only crosses the boundary through the primitives,
// which is one of the paper's design invariants.
package db

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/autonomizer/autonomizer/internal/obs"
)

// storeMetrics counts extraction traffic across all stores; live store
// footprints are exported per-runtime as gauges
// (autonomizer_db_store_bytes / _names, registered by core.Instrument).
// Instruments resolve lazily after telemetry is enabled; disabled, each
// mutation pays one atomic load and a nil check.
type storeMetrics struct {
	appends *obs.Counter
	values  *obs.Counter
	puts    *obs.Counter
}

var sm atomic.Pointer[storeMetrics]

func metrics() *storeMetrics {
	if m := sm.Load(); m != nil {
		return m
	}
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	m := &storeMetrics{
		appends: reg.Counter("autonomizer_db_appends_total",
			"au_extract appends into the database store pi.", nil),
		values: reg.Counter("autonomizer_db_values_appended_total",
			"Scalar values appended into the database store pi.", nil),
		puts: reg.Counter("autonomizer_db_puts_total",
			"Model-output bindings written into the database store pi.", nil),
	}
	if !sm.CompareAndSwap(nil, m) {
		return sm.Load()
	}
	return m
}

// resetMetricsForTest drops the cached instruments so tests can attach
// a fresh registry.
func resetMetricsForTest() { sm.Store(nil) }

// Store is the database store π: Name → list of float64 values.
// All methods are safe for concurrent use; the Autonomizer runtime may
// interleave extraction from the program thread with training reads.
type Store struct {
	mu   sync.RWMutex
	data map[string][]float64

	// wal, when attached (OpenDurable), journals every mutation while
	// mu is held, making the on-disk record order the apply order.
	wal *WAL
}

// New returns an empty store.
func New() *Store {
	return &Store{data: make(map[string][]float64)}
}

// Append implements the EXTRACT rule: π' = π[name ↦ concat(π(name), vals…)].
func (s *Store) Append(name string, vals ...float64) {
	s.mu.Lock()
	s.data[name] = append(s.data[name], vals...)
	if s.wal != nil {
		s.logRecord(walOpStoreAppend, encNameVals(name, vals))
	}
	s.mu.Unlock()
	if m := metrics(); m != nil {
		m.appends.Inc()
		m.values.Add(uint64(len(vals)))
	}
}

// Put replaces the list bound to name (used by the TRAIN/TEST rules to
// publish model outputs under the write-back name).
func (s *Store) Put(name string, vals []float64) {
	s.mu.Lock()
	s.data[name] = append([]float64(nil), vals...)
	if s.wal != nil {
		s.logRecord(walOpStorePut, encNameVals(name, vals))
	}
	s.mu.Unlock()
	if m := metrics(); m != nil {
		m.puts.Inc()
	}
}

// Get returns a copy of the list bound to name and whether it exists.
func (s *Store) Get(name string) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[name]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), v...), true
}

// Len returns the number of values bound to name (0 if absent).
func (s *Store) Len(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[name])
}

// Reset implements the "extName ↦ ⊥" part of the TRAIN/TEST rules: after
// the model consumes an input list, the list is emptied.
func (s *Store) Reset(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, name)
	if s.wal != nil {
		var buf bytes.Buffer
		encName(&buf, name)
		s.logRecord(walOpStoreReset, buf.Bytes())
	}
}

// Concat implements the SERIALIZE rule: it binds strcat(names…) (joined
// with "+") to the concatenation of the named lists and returns the new
// key. Missing names contribute empty lists, matching ⊥ ≡ [] in the
// semantics.
func (s *Store) Concat(names ...string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var combined []float64
	for _, n := range names {
		combined = append(combined, s.data[n]...)
	}
	key := strings.Join(names, "+")
	s.data[key] = combined
	if s.wal != nil {
		s.logRecord(walOpStoreConcat, encNames(names))
	}
	return key
}

// Names returns all bound names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a deep copy of the entire store, used by
// au_checkpoint (the CHECKPOINT rule snapshots σ and π together).
func (s *Store) Snapshot() map[string][]float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]float64, len(s.data))
	for k, v := range s.data {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// RestoreSnapshot replaces the store contents with a previously taken
// snapshot (the RESTORE rule).
func (s *Store) RestoreSnapshot(snap map[string][]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]float64, len(snap))
	for k, v := range snap {
		s.data[k] = append([]float64(nil), v...)
	}
	// A restore is journaled as a full snapshot record: replay must
	// reproduce the reset exactly, not merge with pre-restore history.
	if s.wal != nil {
		s.logRecord(walOpStoreSnapshot, s.saveImageLocked())
	}
}

// SizeBytes reports the in-memory footprint of all stored values
// (8 bytes per float64 plus per-name overhead); the basis for trace-size
// accounting in Table 2 for SL subjects.
func (s *Store) SizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for k, v := range s.data {
		total += len(k) + 8*len(v)
	}
	return total
}

// String renders a compact summary for debugging.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b strings.Builder
	b.WriteString("DBStore{")
	first := true
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s:[%d]", k, len(s.data[k]))
	}
	b.WriteString("}")
	return b.String()
}
