package db

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAppendGet(t *testing.T) {
	s := New()
	if _, ok := s.Get("x"); ok {
		t.Fatal("empty store returned a value")
	}
	s.Append("x", 1, 2)
	s.Append("x", 3)
	got, ok := s.Get("x")
	if !ok || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if s.Len("x") != 3 || s.Len("missing") != 0 {
		t.Errorf("Len wrong")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Append("x", 1)
	v, _ := s.Get("x")
	v[0] = 99
	v2, _ := s.Get("x")
	if v2[0] != 1 {
		t.Error("Get leaked internal slice")
	}
}

func TestPutReplaces(t *testing.T) {
	s := New()
	s.Append("y", 1, 2, 3)
	s.Put("y", []float64{9})
	got, _ := s.Get("y")
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("Put did not replace: %v", got)
	}
	// Put must copy its argument.
	src := []float64{5}
	s.Put("z", src)
	src[0] = 6
	got, _ = s.Get("z")
	if got[0] != 5 {
		t.Error("Put aliased caller slice")
	}
}

func TestReset(t *testing.T) {
	s := New()
	s.Append("x", 1)
	s.Reset("x")
	if _, ok := s.Get("x"); ok {
		t.Error("Reset did not clear the binding")
	}
	s.Reset("never-existed") // must not panic
}

func TestConcatMatchesSerializeRule(t *testing.T) {
	s := New()
	s.Append("PX", 1)
	s.Append("PY", 2)
	s.Append("MnX", 3, 4)
	key := s.Concat("PX", "PY", "MnX")
	if key != "PX+PY+MnX" {
		t.Errorf("Concat key = %q", key)
	}
	got, _ := s.Get(key)
	want := []float64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Concat = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concat = %v, want %v", got, want)
		}
	}
	// Missing names act as empty lists (⊥).
	key2 := s.Concat("PX", "nope")
	got, _ = s.Get(key2)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Concat with missing name = %v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	s.Append("a", 1, 2)
	snap := s.Snapshot()
	s.Append("a", 3)
	s.Append("b", 9)
	s.RestoreSnapshot(snap)
	got, _ := s.Get("a")
	if len(got) != 2 {
		t.Errorf("restore did not roll back a: %v", got)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("restore did not remove post-snapshot binding")
	}
	// Snapshot must be insulated from later mutation.
	s.Append("a", 99)
	if len(snap["a"]) != 2 {
		t.Error("snapshot aliased live data")
	}
}

// TestSnapshotRestoreRoundTrip property: restoring any snapshot
// reproduces exactly the names and lengths present at snapshot time.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	prop := func(names []string, vals []float64) bool {
		s := New()
		for i, n := range names {
			if n == "" {
				continue
			}
			if len(vals) > 0 {
				s.Append(n, vals[i%len(vals)])
			} else {
				s.Append(n, float64(i))
			}
		}
		snap := s.Snapshot()
		s.Append("mutation", 1)
		s.RestoreSnapshot(snap)
		after := s.Snapshot()
		if len(after) != len(snap) {
			return false
		}
		for k, v := range snap {
			av, ok := after[k]
			if !ok || len(av) != len(v) {
				return false
			}
			for i := range v {
				if av[i] != v[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	s := New()
	s.Append("b", 1)
	s.Append("a", 1)
	got := s.Names()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Names = %v", got)
	}
}

func TestSizeBytes(t *testing.T) {
	s := New()
	if s.SizeBytes() != 0 {
		t.Error("empty store has nonzero size")
	}
	s.Append("xy", 1, 2, 3)
	if got := s.SizeBytes(); got != 2+24 {
		t.Errorf("SizeBytes = %d, want 26", got)
	}
}

func TestString(t *testing.T) {
	s := New()
	s.Append("b", 1)
	s.Append("a", 1, 2)
	if got := s.String(); got != "DBStore{a:[2], b:[1]}" {
		t.Errorf("String = %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Append("shared", float64(id))
				s.Get("shared")
				s.Len("shared")
			}
		}(i)
	}
	wg.Wait()
	if s.Len("shared") != 800 {
		t.Errorf("concurrent appends lost data: %d", s.Len("shared"))
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.Append("PX", 1, 2, 3)
	s.Append("reward", -10)
	s.Append("empty")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	s2.Append("stale", 99) // must be replaced
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get("PX")
	if !ok || len(got) != 3 || got[2] != 3 {
		t.Errorf("PX = %v, %v", got, ok)
	}
	if r, _ := s2.Get("reward"); len(r) != 1 || r[0] != -10 {
		t.Errorf("reward = %v", r)
	}
	if _, ok := s2.Get("stale"); ok {
		t.Error("Load did not replace old contents")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Load(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if err := s.Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated stream.
	good := New()
	good.Append("x", 1, 2, 3)
	var buf bytes.Buffer
	if err := good.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestSaveLoadPropertyRoundTrip(t *testing.T) {
	prop := func(names []string, vals []float64) bool {
		s := New()
		for i, n := range names {
			if n == "" {
				continue
			}
			if len(vals) > 0 {
				s.Append(n, vals[i%len(vals)])
			}
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		s2 := New()
		if err := s2.Load(&buf); err != nil {
			return false
		}
		want := s.Snapshot()
		got := s2.Snapshot()
		if len(want) != len(got) {
			return false
		}
		for k, v := range want {
			g, ok := got[k]
			if !ok || len(g) != len(v) {
				return false
			}
			for i := range v {
				// NaN-safe comparison: bits must round trip exactly.
				if math.Float64bits(g[i]) != math.Float64bits(v[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// failWriter errors after n bytes, exercising Save's error paths.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errWriteFail
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errWriteFail
	}
	return n, nil
}

var errWriteFail = fmt.Errorf("synthetic write failure")

func TestSaveWriteFailures(t *testing.T) {
	s := New()
	s.Append("name", 1, 2, 3)
	// Fail at several cut points through the stream.
	for _, budget := range []int{0, 2, 6, 10, 14, 20} {
		if err := s.Save(&failWriter{left: budget}); err == nil {
			t.Errorf("Save with %d-byte budget succeeded", budget)
		}
	}
	// A big enough budget succeeds.
	if err := s.Save(&failWriter{left: 1 << 20}); err != nil {
		t.Errorf("Save with ample budget failed: %v", err)
	}
}
