package db

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/autonomizer/autonomizer/internal/auerr"
	"github.com/autonomizer/autonomizer/internal/obs"
)

// WAL is a segmented append-only write-ahead log with CRC-framed
// records. It is the durability substrate under both the database store
// π (OpenDurable) and the training job queue (internal/queue): callers
// append typed records, and on reopen the log replays every intact
// record in order.
//
// Crash contract: replay truncates a torn tail — an interrupted write at
// the end of the newest segment — back to the last valid record and
// keeps the prefix, while any damage to records that were once durably
// synced (mid-file or in a sealed segment) fails the open with an error
// wrapping auerr.ErrCorruptStore. See scanSegment for the exact
// classification rules.
type WAL struct {
	dir  string
	opts WALOptions

	mu        sync.Mutex
	f         *os.File // active segment, positioned at its end
	seg       uint64   // active segment index
	segSize   int64    // bytes in the active segment
	total     int64    // bytes across all live segments
	segs      int      // live segment count
	sinceComp int64    // bytes appended since the last compaction
	err       error    // sticky first write error
	recovered *Recovery

	m *walMetrics
}

// WALOptions tunes a WAL. The zero value gives fsync'd appends, 4 MiB
// segments and a 256 MiB record cap.
type WALOptions struct {
	// SegmentBytes rotates to a fresh segment once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Appends then reach the OS page
	// cache only; Sync or Close flushes them. Tests and bulk loads use
	// this, durable queues should not.
	NoSync bool
	// MaxRecordBytes caps a single record body (default 256 MiB);
	// larger appends fail, and replay treats larger claimed lengths as
	// corruption.
	MaxRecordBytes int
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 256 << 20
	}
	return o
}

// Recovery describes a torn tail dropped during replay; nil when the log
// was clean.
type Recovery struct {
	// Segment is the file the tail was truncated from.
	Segment string
	// DroppedBytes is how many trailing bytes were discarded.
	DroppedBytes int64
}

// walMetrics instruments WAL traffic process-wide, following the lazy
// resolution pattern of the other stores: nil until telemetry is on.
type walMetrics struct {
	appends     *obs.Counter
	bytes       *obs.Counter
	fsync       *obs.Histogram
	rotations   *obs.Counter
	compactions *obs.Counter
	truncations *obs.Counter
	replayed    *obs.Counter
	size        *obs.Gauge
	segments    *obs.Gauge
}

var wm atomic.Pointer[walMetrics]

func walMetricsGet() *walMetrics {
	if m := wm.Load(); m != nil {
		return m
	}
	reg := obs.Default()
	if reg == nil {
		return nil
	}
	m := &walMetrics{
		appends: reg.Counter("autonomizer_wal_appends_total",
			"Records appended across all write-ahead logs.", nil),
		bytes: reg.Counter("autonomizer_wal_bytes_total",
			"Framed bytes appended across all write-ahead logs.", nil),
		fsync: reg.Histogram("autonomizer_wal_fsync_seconds",
			"Latency of per-append fsync calls.", nil, nil),
		rotations: reg.Counter("autonomizer_wal_rotations_total",
			"Segment rotations.", nil),
		compactions: reg.Counter("autonomizer_wal_compactions_total",
			"Snapshot+tail compactions.", nil),
		truncations: reg.Counter("autonomizer_wal_torn_truncations_total",
			"Torn tails truncated during replay.", nil),
		replayed: reg.Counter("autonomizer_wal_replayed_records_total",
			"Records replayed on open.", nil),
		size: reg.Gauge("autonomizer_wal_size_bytes",
			"Bytes across live segments of the most recently touched WAL.", nil),
		segments: reg.Gauge("autonomizer_wal_segments",
			"Live segment count of the most recently touched WAL.", nil),
	}
	if !wm.CompareAndSwap(nil, m) {
		return wm.Load()
	}
	return m
}

// resetWALMetricsForTest drops the cached instruments so tests can
// attach a fresh registry.
func resetWALMetricsForTest() { wm.Store(nil) }

// OpenWAL opens (creating if necessary) the write-ahead log in dir and
// replays every intact record through replay in append order. A torn
// tail is truncated (see Recovered); mid-file corruption, an unreadable
// directory, or a replay callback error fail the open with an error
// wrapping auerr.ErrCorruptStore. A nil replay skips delivery but still
// validates and recovers the log.
func OpenWAL(dir string, opts WALOptions, replay func(typ byte, payload []byte) error) (*WAL, error) {
	w := &WAL{dir: dir, opts: opts.withDefaults(), m: walMetricsGet()}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: wal: %w", err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("db: wal: %w", err)
	}
	if len(idxs) == 0 {
		if err := w.createSegment(1); err != nil {
			return nil, err
		}
		w.publishGauges()
		return w, nil
	}
	for i, idx := range idxs {
		final := i == len(idxs)-1
		if err := w.replaySegment(idx, final, replay); err != nil {
			return nil, err
		}
	}
	// Reopen the newest segment for appending.
	last := idxs[len(idxs)-1]
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("db: wal: %w", err)
	}
	if st.Size() < segHeaderSize {
		// The torn-tail truncation cut into the header: rewrite it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("db: wal: %w", err)
		}
		if err := writeSegHeader(f, last); err != nil {
			f.Close()
			return nil, fmt.Errorf("db: wal: %w", err)
		}
		st, err = f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("db: wal: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("db: wal: %w", err)
	}
	w.f, w.seg, w.segSize = f, last, st.Size()
	w.segs = len(idxs)
	w.total = 0
	for _, idx := range idxs {
		if fi, err := os.Stat(filepath.Join(dir, segName(idx))); err == nil {
			w.total += fi.Size()
		}
	}
	w.publishGauges()
	return w, nil
}

// replaySegment loads one segment, delivers its records, and performs
// torn-tail truncation when idx is the final segment.
func (w *WAL) replaySegment(idx uint64, final bool, replay func(typ byte, payload []byte) error) error {
	path := filepath.Join(w.dir, segName(idx))
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("%w: db: wal: %w", auerr.ErrCorruptStore, err)
	}
	n := 0
	deliver := func(typ byte, payload []byte) error {
		n++
		if replay == nil {
			return nil
		}
		return replay(typ, payload)
	}
	scanErr := scanSegment(data, idx, w.opts.MaxRecordBytes, final, deliver)
	if torn, ok := scanErr.(*tornTailError); ok {
		if err := os.Truncate(path, torn.off); err != nil {
			return fmt.Errorf("%w: db: wal: truncating torn tail: %w", auerr.ErrCorruptStore, err)
		}
		w.recovered = &Recovery{Segment: segName(idx), DroppedBytes: int64(len(data)) - torn.off}
		if w.m != nil {
			w.m.truncations.Inc()
		}
		data = data[:torn.off]
		scanErr = nil
	}
	if scanErr != nil {
		return fmt.Errorf("%w: %w", auerr.ErrCorruptStore, scanErr)
	}
	if w.m != nil {
		w.m.replayed.Add(uint64(n))
	}
	return nil
}

// createSegment makes segment idx the active one, durably.
func (w *WAL) createSegment(idx uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(idx)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("db: wal: %w", err)
	}
	if err := writeSegHeader(f, idx); err != nil {
		f.Close()
		return fmt.Errorf("db: wal: %w", err)
	}
	if !w.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("db: wal: %w", err)
		}
		if err := syncDir(w.dir); err != nil {
			f.Close()
			return fmt.Errorf("db: wal: %w", err)
		}
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f, w.seg, w.segSize = f, idx, segHeaderSize
	w.total += segHeaderSize
	w.segs++
	return nil
}

// Append frames one record, writes it to the active segment and — unless
// NoSync — fsyncs before returning, so a returned nil means the record
// survives a crash. The segment is rotated first when full. After a
// write error the WAL is sticky-failed: every later Append returns the
// first error (the log's tail state on disk is unknowable, so pretending
// later writes succeeded would reorder the log).
func (w *WAL) Append(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(typ, payload)
}

func (w *WAL) appendLocked(typ byte, payload []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(payload)+1 > w.opts.MaxRecordBytes {
		return fmt.Errorf("db: wal: record of %d bytes exceeds cap %d", len(payload)+1, w.opts.MaxRecordBytes)
	}
	frame := encodeFrame(typ, payload)
	if w.segSize > segHeaderSize && w.segSize+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.createSegment(w.seg + 1); err != nil {
			w.err = err
			return err
		}
		if w.m != nil {
			w.m.rotations.Inc()
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("db: wal: %w", err)
		return w.err
	}
	w.segSize += int64(len(frame))
	w.total += int64(len(frame))
	w.sinceComp += int64(len(frame))
	if !w.opts.NoSync {
		var tm obs.Timer
		if w.m != nil {
			tm = w.m.fsync.Timer()
		}
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("db: wal: %w", err)
			return w.err
		}
		tm.Stop()
	}
	if w.m != nil {
		w.m.appends.Inc()
		w.m.bytes.Add(uint64(len(frame)))
	}
	w.publishGauges()
	return nil
}

func (w *WAL) publishGauges() {
	if w.m == nil {
		return
	}
	w.m.size.Set(float64(w.total))
	w.m.segments.Set(float64(w.segs))
}

// Sync flushes the active segment to stable storage (a no-op when every
// append already fsyncs).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("db: wal: %w", err)
	}
	return w.err
}

// Close flushes and closes the active segment. The WAL must not be used
// afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return w.err
	}
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	w.f = nil
	if w.err == nil && syncErr != nil {
		w.err = fmt.Errorf("db: wal: %w", syncErr)
	}
	if w.err == nil && closeErr != nil {
		w.err = fmt.Errorf("db: wal: %w", closeErr)
	}
	return w.err
}

// Err reports the sticky first write error, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Recovered reports the torn tail dropped during open, nil for a clean
// log.
func (w *WAL) Recovered() *Recovery { return w.recovered }

// SizeBytes reports the byte footprint across live segments.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.total
}

// Segments reports the live segment count.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.segs
}

// Dir reports the directory the WAL lives in.
func (w *WAL) Dir() string { return w.dir }
