//go:build amd64

package tensor

// CPU feature detection for the amd64 kernel dispatch. The assembly
// kernels in kernel_avx2_amd64.s need FMA3 and AVX2, plus OS support for
// saving/restoring the YMM register state (OSXSAVE + XCR0 bits 1-2). The
// whole dance runs once, from pickKernel at package init.

// cpuid executes CPUID with the given leaf/subleaf; kernel_avx2_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (requires OSXSAVE); kernel_avx2_amd64.s.
func xgetbv0() (eax, edx uint32)

// archKernel returns the accelerated implementation for this host, or
// nil when the CPU (or OS) lacks the required features.
func archKernel() *kernelImpl {
	if !hasAVX2FMA() {
		return nil
	}
	return avx2Impl
}

// hasAVX2FMA reports whether the host supports the AVX2+FMA kernels:
// CPUID.1:ECX advertises FMA, AVX and OSXSAVE; XCR0 confirms the OS
// saves XMM+YMM state; CPUID.7:EBX advertises AVX2.
func hasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const fma, osxsave, avx = 1 << 12, 1 << 27, 1 << 28
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
