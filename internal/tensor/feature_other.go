//go:build !amd64

package tensor

// archKernel reports no accelerated kernels on architectures without an
// assembly implementation; pickKernel falls back to the generic Go
// kernels, which are bit-identical by the dispatch contract.
func archKernel() *kernelImpl { return nil }
