package tensor

import (
	"math"
	"testing"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// refMatMul is the per-element semantic reference for every product
// kernel: each output element folds its k terms with math.FMA in
// ascending order from zero. at/bt select the transpose-free index
// remappings.
func refMatMul(a, b *Tensor, at, bt bool) *Tensor {
	var m, k, n int
	switch {
	case at:
		m, k, n = a.shape[1], a.shape[0], b.shape[1]
	case bt:
		m, k, n = a.shape[0], a.shape[1], b.shape[0]
	default:
		m, k, n = a.shape[0], a.shape[1], b.shape[1]
	}
	dst := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				var av, bv float64
				if at {
					av = a.data[kk*m+i]
				} else {
					av = a.data[i*k+kk]
				}
				if bt {
					bv = b.data[j*k+kk]
				} else {
					bv = b.data[kk*n+j]
				}
				s = math.FMA(av, bv, s)
			}
			dst.data[i*n+j] = s
		}
	}
	return dst
}

// kernelShapes covers the edge and straddle cases every kernel must get
// right: degenerate 1×N / N×1 / 1×1, zero dimensions, shapes straddling
// the 4×4 register tile, the blockCutoff boundary between the naive and
// packed paths, and shapes big enough to shard across workers
// (m·k·n ≥ matMulCutoff).
var kernelShapes = [][3]int{
	{1, 1, 1}, {1, 7, 1}, {1, 16, 33}, {33, 16, 1},
	{0, 5, 4}, {5, 0, 4}, {5, 4, 0},
	{3, 5, 3}, {4, 4, 4}, {5, 9, 7}, {8, 8, 8}, {9, 13, 11},
	{12, 14, 48},               // 8064 flops: just below blockCutoff
	{12, 16, 48}, {16, 32, 16}, // just above blockCutoff
	{64, 64, 64}, {65, 50, 67}, // above matMulCutoff: sharded
}

func workersList() []int { return []int{1, 2, 8} }

// TestMatMulIntoMatchesNaive checks the blocked kernel is bit-identical
// to the naive reference at every shape and worker width.
func TestMatMulIntoMatchesNaive(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	for _, sh := range kernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(k, n)
		fillPseudo(a, 11)
		fillPseudo(b, 12)
		want := MatMulNaiveInto(New(m, n), a, b)
		for _, w := range workersList() {
			parallel.SetWorkers(w)
			got := MatMulInto(New(m, n), a, b)
			bitsEqual(t, "MatMulInto", want, got)
		}
	}
}

// TestMatMulATBMatchesReference checks the transpose-free aᵀ×b kernel
// against the ascending-k reference at every shape and width.
func TestMatMulATBMatchesReference(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	for _, sh := range kernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(k, m), New(k, n) // a is stored transposed
		fillPseudo(a, 21)
		fillPseudo(b, 22)
		want := refMatMul(a, b, true, false)
		for _, w := range workersList() {
			parallel.SetWorkers(w)
			bitsEqual(t, "MatMulATB", want, MatMulATB(a, b))
			bitsEqual(t, "MatMulATBInto", want, MatMulATBInto(New(m, n), a, b))
		}
	}
}

// TestMatMulABTMatchesReference checks the transpose-free a×bᵀ kernel,
// plus the accumulating variant: Acc must equal dst + product with the
// product's terms folded in ascending-k order on top of dst.
func TestMatMulABTMatchesReference(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	for _, sh := range kernelShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(n, k) // b is stored transposed
		fillPseudo(a, 31)
		fillPseudo(b, 32)
		want := refMatMul(a, b, false, true)
		base := New(m, n)
		fillPseudo(base, 33)
		wantAcc := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := base.data[i*n+j]
				for kk := 0; kk < k; kk++ {
					s = math.FMA(a.data[i*k+kk], b.data[j*k+kk], s)
				}
				wantAcc.data[i*n+j] = s
			}
		}
		for _, w := range workersList() {
			parallel.SetWorkers(w)
			bitsEqual(t, "MatMulABT", want, MatMulABT(a, b))
			bitsEqual(t, "MatMulABTInto", want, MatMulABTInto(New(m, n), a, b))
			bitsEqual(t, "MatMulABTAcc", wantAcc, MatMulABTAcc(base.Clone(), a, b))
		}
	}
}

// TestMatMulNaNInfPropagation is the regression test for the old MatMul
// zero-skip: skipping av == 0 dropped IEEE-754 propagation, because
// 0×NaN and 0×Inf are NaN, not 0. Both the sequential (below-cutoff) and
// the sharded/blocked (above-cutoff, multiple workers) paths must keep
// the poison.
func TestMatMulNaNInfPropagation(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)

	check := func(name string, m, k, n int) {
		a, b := New(m, k), New(k, n)
		fillPseudo(a, 41)
		fillPseudo(b, 42)
		// Row 0 of a is all zeros; b carries NaN and Inf in column 0 and
		// column n-1 of row 0. 0×NaN = NaN and 0×Inf = NaN must reach the
		// output despite every multiplier being zero.
		for kk := 0; kk < k; kk++ {
			a.data[kk] = 0
		}
		b.data[0] = math.NaN()
		b.data[n-1] = math.Inf(1)
		for _, w := range []int{1, 2, 8} {
			parallel.SetWorkers(w)
			got := MatMul(a, b)
			if !math.IsNaN(got.data[0]) {
				t.Errorf("%s workers=%d: 0×NaN gave %v, want NaN", name, w, got.data[0])
			}
			if !math.IsNaN(got.data[n-1]) {
				t.Errorf("%s workers=%d: 0×Inf gave %v, want NaN", name, w, got.data[n-1])
			}
		}
	}
	check("sequential", 2, 3, 4) // below blockCutoff: naive inline path
	check("blocked", 64, 64, 64) // packed, sharded path
}

// TestTransposeIntoEdgeShapes checks the destination-passing transpose on
// degenerate and sharded shapes.
func TestTransposeIntoEdgeShapes(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)
	for _, sh := range [][2]int{{1, 1}, {1, 9}, {9, 1}, {0, 4}, {4, 0}, {257, 193}} {
		m, n := sh[0], sh[1]
		a := New(m, n)
		fillPseudo(a, 51)
		got := TransposeInto(New(n, m), a)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if got.data[j*m+i] != a.data[i*n+j] {
					t.Fatalf("Transpose(%d,%d): [%d %d] mismatch", m, n, j, i)
				}
			}
		}
	}
}

// TestKernelDstValidation checks the destination-shape panics.
func TestKernelDstValidation(t *testing.T) {
	a, b := New(3, 4), New(4, 5)
	for name, fn := range map[string]func(){
		"MatMulInto":    func() { MatMulInto(New(3, 4), a, b) },
		"MatMulATBInto": func() { MatMulATBInto(New(3, 5), a, b) }, // aᵀ×b is 4×5
		"MatMulABTInto": func() { MatMulABTInto(New(4, 4), New(3, 5), b) },
		"TransposeInto": func() { TransposeInto(New(3, 4), a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad destination did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestArenaReuse checks the size-class arithmetic and that a returned
// buffer is actually recycled (same backing array on the next Get of the
// same class).
func TestArenaReuse(t *testing.T) {
	ar := NewArena()
	p := ar.Get(100)
	if len(*p) != 100 {
		t.Fatalf("Get(100) len = %d", len(*p))
	}
	if cap(*p) != 128 {
		t.Fatalf("Get(100) cap = %d, want the 128 size class", cap(*p))
	}
	(*p)[0] = 42
	ar.Put(p)
	q := ar.Get(128) // same class: must reuse the pooled buffer
	// sync.Pool drops items at random under the race runtime, so the
	// identity assertion only holds in a normal build.
	if !raceEnabled && q != p {
		t.Errorf("Get after Put did not recycle the buffer")
	}
	if len(*q) != 128 {
		t.Errorf("Get(128) len = %d", len(*q))
	}

	// Tiny requests round up to the smallest class.
	s := ar.Get(1)
	if cap(*s) != arenaMinClass {
		t.Errorf("Get(1) cap = %d, want %d", cap(*s), arenaMinClass)
	}
	// Oversized requests fall through to plain make and are not pooled.
	huge := 1<<arenaMaxBits + 1
	h := ar.Get(huge)
	if len(*h) != huge {
		t.Errorf("oversized Get len = %d, want %d", len(*h), huge)
	}
	ar.Put(h)   // dropped, must not corrupt a class
	ar.Put(nil) // no-op
	if got := ar.Get(64); cap(*got) != 64 {
		t.Errorf("smallest class cap = %d after oversized Put", cap(*got))
	}
}

// TestReuse checks the layer-scratch primitive: recycle when capacity
// suffices, allocate otherwise.
func TestReuse(t *testing.T) {
	a := New(4, 8)
	a.Fill(7)
	b := Reuse(a, 2, 16) // same element count: must recycle
	if &b.Data()[0] != &a.Data()[0] {
		t.Errorf("Reuse with sufficient capacity reallocated")
	}
	if b.Shape()[0] != 2 || b.Shape()[1] != 16 {
		t.Errorf("Reuse shape = %v", b.Shape())
	}
	c := Reuse(b, 3, 16) // larger: must allocate fresh
	if c.Size() != 48 {
		t.Fatalf("Reuse grow size = %d", c.Size())
	}
	for _, v := range c.Data() {
		if v != 0 {
			t.Fatalf("grown Reuse not zeroed")
		}
	}
	if d := Reuse(nil, 3); d.Size() != 3 {
		t.Errorf("Reuse(nil) size = %d", d.Size())
	}
}

// TestViewOf checks the allocation-free reshape header.
func TestViewOf(t *testing.T) {
	src := New(2, 6)
	fillPseudo(src, 61)
	v := View(nil, src, 3, 4)
	if &v.Data()[0] != &src.Data()[0] {
		t.Fatalf("View does not share data")
	}
	v2 := View(v, src, 12)
	if v2 != v {
		t.Errorf("View allocated a new header instead of recycling")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("View with mismatched count did not panic")
		}
	}()
	View(v, src, 5)
}
