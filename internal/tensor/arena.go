package tensor

import (
	"math/bits"
	"sync"
)

// Arena is a sync.Pool-backed scratch allocator for float64 buffers,
// keyed by power-of-two size class. It backs the transient scratch the
// kernels and layers need per call (matmul pack panels, im2col columns)
// so the steady-state predict and train paths stop touching the heap:
// after warm-up every Get is served from a pool and every Put recycles
// the buffer, pointer header and all.
//
// Buffers travel as *[]float64 so the slice header is recycled along with
// the backing array (a bare []float64 through sync.Pool would re-box the
// header on every Put). Contents are unspecified on Get; callers must
// fully overwrite. An Arena is safe for concurrent use; buffers
// themselves are not.
type Arena struct {
	classes [arenaClasses]sync.Pool
}

const (
	// arenaMinBits is the smallest pooled class, 2^6 = 64 elements;
	// smaller requests round up (a 512-byte floor keeps the class count
	// small without wasting meaningful memory).
	arenaMinBits = 6
	// arenaMaxBits is the largest pooled class, 2^24 elements (128 MiB).
	// Larger requests fall through to plain make and are dropped on Put.
	arenaMaxBits  = 24
	arenaClasses  = arenaMaxBits - arenaMinBits + 1
	arenaMinClass = 1 << arenaMinBits
)

// Scratch is the process-wide arena shared by the tensor kernels and the
// nn layers. Package-level because scratch lifetime is a single kernel
// call: everything taken is returned before the call ends, so sharing
// one arena maximizes reuse across layers and models.
var Scratch = NewArena()

// NewArena returns an empty arena. The zero value is also usable.
func NewArena() *Arena { return &Arena{} }

// classFor returns the class index of the smallest size class holding n
// elements, or -1 when n exceeds the largest class.
func classFor(n int) int {
	if n <= arenaMinClass {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > arenaMaxBits {
		return -1
	}
	return b - arenaMinBits
}

// Get returns a buffer with length n and unspecified contents. The
// returned pointer must be handed back to Put (not the dereferenced
// slice) for the header to be recycled.
func (a *Arena) Get(n int) *[]float64 {
	if n < 0 {
		n = 0
	}
	c := classFor(n)
	if c < 0 {
		s := make([]float64, n)
		return &s
	}
	if p, _ := a.classes[c].Get().(*[]float64); p != nil {
		*p = (*p)[:n]
		return p
	}
	s := make([]float64, n, 1<<(c+arenaMinBits))
	return &s
}

// Put returns a buffer obtained from Get to its size class. Buffers whose
// capacity falls below the smallest class, or above the largest, are
// dropped for the GC instead. Put(nil) is a no-op.
func (a *Arena) Put(p *[]float64) {
	if p == nil {
		return
	}
	c := cap(*p)
	if c < arenaMinClass {
		return
	}
	b := bits.Len(uint(c)) - 1 // floor(log2(cap)): the class is guaranteed refillable
	if b > arenaMaxBits {
		return
	}
	a.classes[b-arenaMinBits].Put(p)
}
