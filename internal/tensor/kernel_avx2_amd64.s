//go:build amd64

#include "textflag.h"

// CPUID/XGETBV feature probes (feature_amd64.go).

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dgemm4x8(dst, pa, pb *float64, k, n int)
//
// One full GEBP micro-tile: 4 packed rows of a (pa, kk-major, 4 doubles
// per k step) against one 8-wide packed panel of b (pb, kk-major, 8
// doubles per k step). Eight YMM accumulators hold the 4×8 tile across
// the whole k loop; each k step is 2 panel loads, 4 row broadcasts and
// 8 fused multiply-adds. Every accumulator lane folds ascending-k with
// a single rounding per term — the vector form of the scalar math.FMA
// fold, so stored results are bit-identical to the naive reference.
// Stores write straight to dst with row stride n (caller guarantees the
// full tile is in bounds).
TEXT ·dgemm4x8(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DX
	MOVQ k+24(FP), CX
	MOVQ n+32(FP), R8

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

kloop:
	VMOVUPD      (DX), Y8       // b panel, lanes 0-3
	VMOVUPD      32(DX), Y9     // b panel, lanes 4-7
	VBROADCASTSD (SI), Y10      // a row 0
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y11     // a row 1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VBROADCASTSD 16(SI), Y12    // a row 2
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VBROADCASTSD 24(SI), Y13    // a row 3
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $64, DX
	ADDQ         $32, SI
	DECQ         CX
	JNZ          kloop

	SHLQ    $3, R8              // row stride in bytes
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func gemv16(dst, w, x, bias *float64, k int)
//
// One 16-output dense-forward block over lane-packed weights (w,
// kk-major, 16 doubles per k step). Four YMM accumulators run four
// independent multiply-THEN-add chains — deliberately not FMA: the
// reference fold is Dot's s += w*x with two roundings per term, and the
// compiled plan must be bit-identical to the uncompiled layer. Bias is
// added once after the k loop, matching Dot(row, x) + bias[o].
TEXT ·gemv16(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ x+16(FP), DX
	MOVQ bias+24(FP), BX
	MOVQ k+32(FP), CX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

kloop16:
	VBROADCASTSD (DX), Y4       // x[kk]
	VMOVUPD      (SI), Y5
	VMOVUPD      32(SI), Y6
	VMOVUPD      64(SI), Y7
	VMOVUPD      96(SI), Y8
	VMULPD       Y4, Y5, Y5     // w*x, one rounding
	VMULPD       Y4, Y6, Y6
	VMULPD       Y4, Y7, Y7
	VMULPD       Y4, Y8, Y8
	VADDPD       Y5, Y0, Y0     // s += ·, second rounding
	VADDPD       Y6, Y1, Y1
	VADDPD       Y7, Y2, Y2
	VADDPD       Y8, Y3, Y3
	ADDQ         $128, SI
	ADDQ         $8, DX
	DECQ         CX
	JNZ          kloop16

	VADDPD  (BX), Y0, Y0        // + bias, after the fold like Dot
	VADDPD  32(BX), Y1, Y1
	VADDPD  64(BX), Y2, Y2
	VADDPD  96(BX), Y3, Y3
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, 64(DI)
	VMOVUPD Y3, 96(DI)
	VZEROUPPER
	RET
