package tensor

import (
	"math"
	"math/rand"
	"testing"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// convCase is one geometry row of the implicit-GEMM bit-identity table.
type convCase struct {
	name                                     string
	inC, inH, inW, kh, kw, stride, pad, outC int
}

// convCases spans the geometry corners the packers special-case: 1×1
// kernels (pure channel mix), strides 2 and 3 (the strided gather
// path), pads 0–2 (zero-run prefixes/suffixes and all-padding rows),
// non-square inputs and kernels, single-channel and 16-channel inputs,
// output channel counts on and off the microM register block, and the
// benchmark geometry whose blocks tile whole output rows.
var convCases = []convCase{
	{"bench-3x3", 4, 32, 32, 3, 3, 1, 1, 8},
	{"small-3x3", 1, 8, 8, 3, 3, 1, 1, 4},
	{"1x1", 1, 7, 9, 1, 1, 1, 0, 3},
	{"1x1-stride2", 3, 9, 7, 1, 1, 2, 0, 5},
	{"stride2-pad2", 2, 11, 5, 3, 3, 2, 2, 4},
	{"deep-C16", 16, 6, 6, 3, 3, 1, 1, 4},
	{"stride3-rect", 2, 13, 11, 5, 3, 3, 2, 6},
	{"kernel-covers-input", 1, 5, 5, 5, 5, 1, 2, 2},
	{"even-kernel-C16", 16, 9, 11, 2, 4, 2, 1, 12},
	{"pad0-ragged-outc", 3, 16, 16, 3, 3, 1, 0, 7},
}

// seedConv fills data with normal noise and plants the special values
// (zero, NaN, ±Inf) that would expose any zero-skip or padding shortcut:
// the implicit path must gather padding as explicit zeros because 0×NaN
// is NaN, and both paths must propagate NaN/Inf through the identical
// FMA fold to stay bit-equal.
func seedConv(data []float64, rng *rand.Rand) {
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	if len(data) >= 8 {
		data[0] = 0
		data[1] = math.NaN()
		data[2] = math.Inf(1)
		data[3] = math.Inf(-1)
		data[len(data)-1] = math.NaN()
	}
}

// convImpls returns the kernel implementations to drive explicitly:
// always the generic portable one, plus the arch kernel when present.
func convImpls() []*kernelImpl {
	impls := []*kernelImpl{genericImpl}
	if arch := archKernel(); arch != nil {
		impls = append(impls, arch)
	}
	return impls
}

// diffBits returns the first index where got and want differ bitwise, or
// -1 when identical.
func diffBits(got, want []float64) int {
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			return i
		}
	}
	return -1
}

// TestConvKernelBitIdentical drives ConvKernel.Forward/Backward over
// the geometry table, every implementation, and widths {1, 2, 8},
// comparing bit-for-bit against the materialized reference compositions
// (Im2Col+MatMulNaiveInto forward; MatMulABTInto and
// MatMulATBInto+Col2ImInto backward). This is the determinism contract
// of DESIGN.md §5j: sharding and blocking choose when tiles compute,
// never how an element folds.
func TestConvKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, tc := range convCases {
		g := NewConvGeom(tc.inC, tc.inH, tc.inW, tc.kh, tc.kw, tc.stride, tc.pad, tc.outC)
		k, n := g.K(), g.Cols()

		inT := New(tc.inC, tc.inH, tc.inW)
		wT := New(tc.outC, k)
		gT := New(tc.outC, n)
		seedConv(inT.Data(), rng)
		seedConv(wT.Data(), rng)
		seedConv(gT.Data(), rng)

		cols := Im2Col(inT, tc.kh, tc.kw, tc.stride, tc.pad)
		wantOut := MatMulNaiveInto(New(tc.outC, n), wT, cols)
		wantGradW := MatMulABTInto(New(tc.outC, k), gT, cols)
		gradCols := MatMulATBInto(New(k, n), wT, gT)
		wantGradIn := Col2ImInto(New(tc.inC, tc.inH, tc.inW), gradCols,
			tc.inC, tc.inH, tc.inW, tc.kh, tc.kw, tc.stride, tc.pad)

		for _, impl := range convImpls() {
			ck := newConvKernel(g, impl)
			for _, workers := range []int{1, 2, 8} {
				prev := parallel.SetWorkers(workers)
				out := make([]float64, tc.outC*n)
				gradW := make([]float64, tc.outC*k)
				gradIn := make([]float64, tc.inC*tc.inH*tc.inW)
				ck.Forward(out, inT.Data(), wT.Data())
				ck.Backward(gradW, gradIn, inT.Data(), wT.Data(), gT.Data())
				parallel.SetWorkers(prev)
				if i := diffBits(out, wantOut.Data()); i >= 0 {
					t.Fatalf("%s/%s/w%d forward: elem %d = %x, want %x",
						tc.name, impl.name, workers, i,
						math.Float64bits(out[i]), math.Float64bits(wantOut.Data()[i]))
				}
				if i := diffBits(gradW, wantGradW.Data()); i >= 0 {
					t.Fatalf("%s/%s/w%d gradW: elem %d = %x, want %x",
						tc.name, impl.name, workers, i,
						math.Float64bits(gradW[i]), math.Float64bits(wantGradW.Data()[i]))
				}
				if i := diffBits(gradIn, wantGradIn.Data()); i >= 0 {
					t.Fatalf("%s/%s/w%d gradIn: elem %d = %x, want %x",
						tc.name, impl.name, workers, i,
						math.Float64bits(gradIn[i]), math.Float64bits(wantGradIn.Data()[i]))
				}
			}
		}
	}
}

// TestPackedConvBitIdentical exercises the compiled serving path:
// PrepackConv + Forward over the same geometry table must reproduce the
// reference product bit-for-bit, and the prepack must be a snapshot —
// mutating the weights afterwards must not change the output.
func TestPackedConvBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, tc := range convCases {
		g := NewConvGeom(tc.inC, tc.inH, tc.inW, tc.kh, tc.kw, tc.stride, tc.pad, tc.outC)
		n := g.Cols()

		inT := New(tc.inC, tc.inH, tc.inW)
		wT := New(tc.outC, g.K())
		seedConv(inT.Data(), rng)
		seedConv(wT.Data(), rng)

		cols := Im2Col(inT, tc.kh, tc.kw, tc.stride, tc.pad)
		want := MatMulNaiveInto(New(tc.outC, n), wT, cols)

		pc := PrepackConv(wT, g)
		packedCols := make([]float64, pc.PackedColsLen())
		out := make([]float64, tc.outC*n)
		pc.Forward(out, inT.Data(), packedCols)
		if i := diffBits(out, want.Data()); i >= 0 {
			t.Fatalf("%s forward: elem %d = %x, want %x", tc.name, i,
				math.Float64bits(out[i]), math.Float64bits(want.Data()[i]))
		}

		wT.Data()[0] += 42 // snapshot contract
		again := make([]float64, tc.outC*n)
		pc.Forward(again, inT.Data(), packedCols)
		if i := diffBits(again, want.Data()); i >= 0 {
			t.Fatalf("%s snapshot violated at elem %d", tc.name, i)
		}
	}
}

// TestConvKernelOperandChecks pins the fail-fast contract: mis-sized
// operands and invalid geometries must panic with a diagnostic rather
// than corrupt memory.
func TestConvKernelOperandChecks(t *testing.T) {
	g := NewConvGeom(2, 8, 8, 3, 3, 1, 1, 4)
	ck := NewConvKernel(g)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	in := make([]float64, 2*8*8)
	w := make([]float64, 4*g.K())
	out := make([]float64, 4*g.Cols())
	mustPanic("short in", func() { ck.Forward(out, in[:10], w) })
	mustPanic("short w", func() { ck.Forward(out, in, w[:5]) })
	mustPanic("short out", func() { ck.Forward(out[:1], in, w) })
	mustPanic("bad geom", func() { NewConvGeom(0, 8, 8, 3, 3, 1, 1, 4) })
	mustPanic("bad stride", func() { NewConvGeom(2, 8, 8, 3, 3, 0, 1, 4) })
	mustPanic("kernel too large", func() { NewConvGeom(2, 2, 2, 5, 5, 1, 0, 4) })
}
