package tensor

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// fillPseudo fills t with a deterministic pseudo-random pattern.
func fillPseudo(t *Tensor, seed uint64) {
	s := seed | 1
	for i := range t.Data() {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		t.Data()[i] = float64(int64(s*0x2545F4914F6CDD1D)) / (1 << 62)
	}
}

func bitsEqual(t *testing.T, name string, a, b *Tensor) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("%s: size %d vs %d", name, a.Size(), b.Size())
	}
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, a.Data()[i], b.Data()[i])
		}
	}
}

// TestMatMulParallelEquivalence checks the row-sharded MatMul is
// bit-identical to the sequential kernel across worker counts and shapes,
// including shapes straddling the cutoff.
func TestMatMulParallelEquivalence(t *testing.T) {
	shapes := [][3]int{{3, 4, 5}, {17, 31, 13}, {64, 64, 64}, {128, 50, 96}, {1, 200, 300}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a, b := New(m, k), New(k, n)
		fillPseudo(a, 1)
		fillPseudo(b, 2)
		a.Data()[0] = 0 // a zero multiplier must not perturb bit-equality
		prev := parallel.SetWorkers(1)
		want := MatMul(a, b)
		for _, w := range []int{2, 3, 8} {
			parallel.SetWorkers(w)
			bitsEqual(t, "MatMul", want, MatMul(a, b))
		}
		parallel.SetWorkers(prev)
	}
}

// TestTransposeParallelEquivalence checks the sharded transpose.
func TestTransposeParallelEquivalence(t *testing.T) {
	a := New(257, 193)
	fillPseudo(a, 3)
	prev := parallel.SetWorkers(1)
	want := Transpose(a)
	for _, w := range []int{2, 8} {
		parallel.SetWorkers(w)
		bitsEqual(t, "Transpose", want, Transpose(a))
	}
	parallel.SetWorkers(prev)
}

// TestConvLoweringParallelEquivalence checks Im2Col and Col2Im are
// bit-identical to sequential across worker counts, on a shape large
// enough to cross the cutoff (4×64×64, 5×5 kernel).
func TestConvLoweringParallelEquivalence(t *testing.T) {
	c, h, w := 4, 64, 64
	kh, kw, stride, pad := 5, 5, 2, 2
	in := New(c, h, w)
	fillPseudo(in, 4)

	prev := parallel.SetWorkers(1)
	wantCols := Im2Col(in, kh, kw, stride, pad)
	grad := wantCols.Clone()
	fillPseudo(grad, 5)
	wantIm := Col2Im(grad, c, h, w, kh, kw, stride, pad)
	for _, workers := range []int{2, 8} {
		parallel.SetWorkers(workers)
		bitsEqual(t, "Im2Col", wantCols, Im2Col(in, kh, kw, stride, pad))
		bitsEqual(t, "Col2Im", wantIm, Col2Im(grad, c, h, w, kh, kw, stride, pad))
	}
	parallel.SetWorkers(prev)
}
