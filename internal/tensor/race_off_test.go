//go:build !race

package tensor

// raceEnabled gates assertions that the race runtime invalidates (e.g.
// sync.Pool deliberately randomizes caching under -race).
const raceEnabled = false
