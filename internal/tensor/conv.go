package tensor

import (
	"fmt"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// convCutoff is the minimum total element count at which the im2col /
// col2im lowerings shard over the worker pool.
const convCutoff = 16 * 1024

// Im2Col lowers a convolution over an input of shape (channels, height,
// width) into a matrix multiplication. It returns a matrix of shape
// (channels*kh*kw, outH*outW) where each column is the receptive field of
// one output position. stride must be >= 1; pad adds implicit zeros on
// every edge.
//
// Convolution via im2col is how the CNN layer in internal/nn executes:
// output = weights(outC, inC*kh*kw) × Im2Col(input). This mirrors the
// lowering used by mainstream frameworks, making the CNN substitute for
// the paper's TensorFlow raw-pixel models faithful in structure.
//
// Large inputs shard the (channel, ky, kx) rows over the worker pool;
// each row fills a disjoint slice of the output, so results are
// bit-identical at any worker count.
func Im2Col(in *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, _ := im2colDims(in, kh, kw, stride, pad)
	outH := ConvOutputSize(h, kh, stride, pad)
	outW := ConvOutputSize(in.shape[2], kw, stride, pad)
	return Im2ColInto(New(c*kh*kw, outH*outW), in, kh, kw, stride, pad)
}

// im2colDims validates an im2col lowering and returns (c, h, w).
func im2colDims(in *Tensor, kh, kw, stride, pad int) (c, h, w int) {
	if len(in.shape) != 3 {
		panic(fmt.Sprintf("tensor: Im2Col wants (C,H,W) input, got %v", in.shape))
	}
	if stride < 1 {
		panic("tensor: Im2Col stride must be >= 1")
	}
	c, h, w = in.shape[0], in.shape[1], in.shape[2]
	if (h+2*pad-kh)/stride+1 <= 0 || (w+2*pad-kw)/stride+1 <= 0 {
		panic(fmt.Sprintf("tensor: Im2Col kernel %dx%d too large for %dx%d input (pad %d)", kh, kw, h, w, pad))
	}
	return c, h, w
}

// Im2ColInto is the destination-passing Im2Col: it fully overwrites the
// caller-owned (c·kh·kw, outH·outW) destination and returns it, so the
// convolution forward pass reuses one column buffer across calls.
func Im2ColInto(out, in *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, w := im2colDims(in, kh, kw, stride, pad)
	outH := ConvOutputSize(h, kh, stride, pad)
	outW := ConvOutputSize(w, kw, stride, pad)
	checkDst(out, c*kh*kw, outH*outW)
	rows, rowLen := c*kh*kw, outH*outW
	grain := rows
	if rows*rowLen >= convCutoff {
		if grain = convCutoff / rowLen; grain < 1 {
			grain = 1
		}
	}
	parallel.For(rows, grain, func(lo, hi int) {
		im2colRows(out.data, in.data, lo, hi, h, w, kh, kw, stride, pad, outH, outW)
	})
	return out
}

// Im2ColSeqInto is Im2ColInto without the worker pool: it lowers the
// whole input on the calling goroutine and allocates nothing. Compiled
// plans use it — their ops run sequentially by contract (parallelism
// lives above the plan, one instance per goroutine), and the sharding
// closure Im2ColInto builds per call would be their only allocation.
// Results are identical: sharding never changes what each row holds.
func Im2ColSeqInto(out, in *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, w := im2colDims(in, kh, kw, stride, pad)
	outH := ConvOutputSize(h, kh, stride, pad)
	outW := ConvOutputSize(w, kw, stride, pad)
	checkDst(out, c*kh*kw, outH*outW)
	im2colRows(out.data, in.data, 0, c*kh*kw, h, w, kh, kw, stride, pad, outH, outW)
	return out
}

// im2colRows fills im2col rows [lo, hi): row (ch·kh+ky)·kw+kx holds the
// input value under kernel tap (ky, kx) of channel ch at every output
// position, zero where the tap lands in padding.
func im2colRows(out, in []float64, lo, hi, h, w, kh, kw, stride, pad, outH, outW int) {
	rowLen := outH * outW
	for row := lo; row < hi; row++ {
		ch := row / (kh * kw)
		ky := (row / kw) % kh
		kx := row % kw
		dst := out[row*rowLen:]
		for oy := 0; oy < outH; oy++ {
			iy := oy*stride + ky - pad
			for ox := 0; ox < outW; ox++ {
				ix := ox*stride + kx - pad
				var v float64
				if iy >= 0 && iy < h && ix >= 0 && ix < w {
					v = in[(ch*h+iy)*w+ix]
				}
				dst[oy*outW+ox] = v
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a (channels*kh*kw,
// outH*outW) gradient matrix back onto an input-shaped (channels, height,
// width) tensor, accumulating where receptive fields overlap. It is used
// for the convolution backward pass.
//
// Sharding is by input channel: receptive fields overlap within a
// channel but never across channels, so each worker accumulates into a
// disjoint (h×w) plane with the sequential accumulation order preserved.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	return Col2ImInto(New(c, h, w), cols, c, h, w, kh, kw, stride, pad)
}

// Col2ImInto is the destination-passing Col2Im: it zeroes the
// caller-owned (c, h, w) destination, scatter-accumulates into it and
// returns it, so the convolution backward pass reuses one input-gradient
// buffer across calls.
func Col2ImInto(out, cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if len(cols.shape) != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != outH*outW {
		panic(fmt.Sprintf("tensor: Col2Im shape %v inconsistent with params", cols.shape))
	}
	if len(out.shape) != 3 || out.shape[0] != c || out.shape[1] != h || out.shape[2] != w {
		panic(fmt.Sprintf("tensor: Col2Im destination shape %v, want [%d %d %d]", out.shape, c, h, w))
	}
	out.Fill(0)
	perChannel := kh * kw * outH * outW
	grain := c
	if perChannel > 0 && c*perChannel >= convCutoff {
		if grain = convCutoff / perChannel; grain < 1 {
			grain = 1
		}
	}
	parallel.For(c, grain, func(clo, chi int) {
		for ch := clo; ch < chi; ch++ {
			for ky := 0; ky < kh; ky++ {
				for kx := 0; kx < kw; kx++ {
					row := (ch*kh+ky)*kw + kx
					src := cols.data[row*outH*outW:]
					for oy := 0; oy < outH; oy++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for ox := 0; ox < outW; ox++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							out.data[(ch*h+iy)*w+ix] += src[oy*outW+ox]
						}
					}
				}
			}
		}
	})
	return out
}

// ConvOutputSize returns the spatial output size of a convolution or
// pooling window: (inSize + 2*pad - kernel)/stride + 1.
func ConvOutputSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
