// kernel.go holds the cache-blocked, destination-passing matrix kernels
// behind the NN hot path. Three ideas, layered:
//
//   - Destination passing: every kernel has an *Into form that writes into
//     a caller-owned tensor, so steady-state forward/backward passes reuse
//     layer-owned scratch instead of allocating per call.
//
//   - Transpose-free products: MatMulATB computes aᵀ×b and MatMulABT
//     computes a×bᵀ by index remapping, so the conv/dense backward passes
//     never materialize a transposed copy just to feed the next multiply.
//
//   - Cache blocking: MatMulInto packs b into panel-major micro-panels
//     (one contiguous stream per 4-column panel) and register-blocks the
//     inner loop 4×4, so each loaded value is used for 4–16 flops instead
//     of 2.
//
// Determinism contract: every kernel folds each output element's terms
// with math.FMA in ascending-k order starting from zero (or from the
// existing destination value, for the Acc variants). Blocking reorders
// which elements are computed when, never the per-element fold order,
// and sharding assigns whole output rows to workers — so all results are
// bit-identical to the naive reference kernel at any worker count. The
// equivalence is enforced by tests against MatMulNaiveInto.
//
// math.FMA (fused multiply-add, a single rounding per term) is the
// per-term operation everywhere, including the naive reference: it
// compiles to one instruction on every modern CPU and roughly halves the
// floating-point op count of the register micro-kernels. What matters
// for determinism is only that every path uses the same operation in
// the same order.
package tensor

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// microM×microN is the register micro-tile: 16 accumulators held in
// registers across the full k loop, fed by 8 loads per iteration.
const (
	microM = 4
	microN = 4
)

// blockCutoff is the m·k·n flop count below which the single-pass naive
// loop beats the pack-and-block path's setup cost.
const blockCutoff = 8 * 1024

// matMulDims validates a rank-2 product a×b and returns (m, k, n).
func matMulDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d vs %d", k, b.shape[0]))
	}
	return m, k, b.shape[1]
}

// checkDst validates a rank-2 destination shape.
func checkDst(dst *Tensor, m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: destination shape %v, want [%d %d]", dst.shape, m, n))
	}
}

// rowGrain returns the row-sharding grain for an m-row kernel whose rows
// cost k·n flops each: enough rows per chunk that each chunk is at least
// one matMulCutoff worth of work.
func rowGrain(k, n int) int {
	if g := matMulCutoff / (k*n + 1); g > 1 {
		return g
	}
	return 1
}

// MatMulInto computes dst = a×b, overwriting dst (which must be a
// caller-owned m×n tensor distinct from a and b). Above a size cutoff the
// kernel packs b into micro-panels from the shared Scratch arena,
// register-blocks 4×4, and shards output row-blocks over the worker pool;
// below it, it runs the naive single-pass loop inline. Both paths are
// bit-identical to MatMulNaiveInto at any worker count.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	checkDst(dst, m, n)
	if m == 0 || n == 0 {
		return dst
	}
	if k == 0 {
		dst.Fill(0)
		return dst
	}
	if m*k*n < blockCutoff {
		matMulNaiveRange(dst.data, a.data, b.data, 0, m, k, n)
		return dst
	}
	panels := (n + kern.nr - 1) / kern.nr
	pb := Scratch.Get(panels * kern.nr * k)
	packedB := *pb
	packPanels(packedB, b.data, k, n, kern.nr)
	// Pack the full row-blocks of a the same way, so the micro-kernel
	// streams both operands from contiguous memory. The ragged row tail
	// (m % 4 rows) reads a directly in the scalar path.
	rowBlocks := m / microM
	var pa *[]float64
	var packedA []float64
	if rowBlocks > 0 {
		pa = Scratch.Get(rowBlocks * microM * k)
		packedA = *pa
		packRows(packedA, a.data, k, rowBlocks)
	}
	parallel.ForAligned(m, rowGrain(k, n), microM, func(lo, hi int) {
		gebpRows(kern, dst.data, a.data, packedA, packedB, lo, hi, k, n)
	})
	if pa != nil {
		Scratch.Put(pa)
	}
	Scratch.Put(pb)
	return dst
}

// MatMulNaiveInto is the sequential reference kernel: a single-pass ikj
// loop with no blocking, no packing and no sharding, folding terms with
// the same ascending-k math.FMA as the blocked path. It defines the
// bit-exact semantics every optimized kernel must reproduce, and is the
// baseline for BenchmarkKernels. Note the inner loop never skips
// zero multipliers: 0×NaN must stay NaN and 0×Inf must stay NaN, per
// IEEE-754, so sparse shortcuts are not semantics-preserving.
func MatMulNaiveInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	checkDst(dst, m, n)
	dst.Fill(0)
	matMulNaiveRange(dst.data, a.data, b.data, 0, m, k, n)
	return dst
}

// matMulNaiveRange computes rows [lo, hi) of dst = a×b with the reference
// ikj loop. dst rows are fully overwritten.
func matMulNaiveRange(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] = math.FMA(av, bv, orow[j])
			}
		}
	}
}

// packPanels packs b (k×n, row-major) into panel-major micro-panels of
// the active kernel's width nr: for panel p covering columns
// [p·nr, p·nr+nr), packed[p·k·nr + kk·nr + jj] = b[kk][p·nr+jj]. The
// ragged last panel is zero-padded; the padding only feeds accumulators
// that are never stored.
func packPanels(packed, b []float64, k, n, nr int) {
	panels := (n + nr - 1) / nr
	for p := 0; p < panels; p++ {
		j0 := p * nr
		w := n - j0
		if w > nr {
			w = nr
		}
		dst := packed[p*k*nr : (p+1)*k*nr]
		for kk := 0; kk < k; kk++ {
			d := dst[kk*nr : kk*nr+nr]
			copy(d, b[kk*n+j0:kk*n+j0+w])
			for jj := w; jj < nr; jj++ {
				d[jj] = 0
			}
		}
	}
}

// packRows packs the first blocks·4 rows of a (m×k, row-major) into
// row-major micro-panels: for block r covering rows [r·4, r·4+4),
// packed[r·k·4 + kk·4 + ii] = a[r·4+ii][kk]. Unlike b's column panels no
// padding is needed — callers pack only whole blocks.
func packRows(packed, a []float64, k, blocks int) {
	for r := 0; r < blocks; r++ {
		i0 := r * microM
		dst := packed[r*k*microM : (r+1)*k*microM]
		r0 := a[(i0+0)*k : (i0+1)*k]
		r1 := a[(i0+1)*k : (i0+2)*k]
		r2 := a[(i0+2)*k : (i0+3)*k]
		r3 := a[(i0+3)*k : (i0+4)*k]
		for kk := 0; kk < k; kk++ {
			d := dst[kk*microM:]
			_ = d[3]
			d[0], d[1], d[2], d[3] = r0[kk], r1[kk], r2[kk], r3[kk]
		}
	}
}

// storeClipped writes up to four accumulated values into drow starting at
// column j0, dropping the lanes that fall past column n (the padded lanes
// of a ragged panel).
func storeClipped(drow []float64, j0, n int, c0, c1, c2, c3 float64) {
	switch n - j0 {
	case 1:
		drow[j0] = c0
	case 2:
		drow[j0], drow[j0+1] = c0, c1
	case 3:
		drow[j0], drow[j0+1], drow[j0+2] = c0, c1, c2
	default:
		drow[j0], drow[j0+1], drow[j0+2], drow[j0+3] = c0, c1, c2, c3
	}
}

// gebpRows runs an implementation's GEBP tile kernel over output rows
// [lo, hi) of an m×n product whose packed operands cover the full
// matrix: the row-sharding adapter behind MatMulInto and MulInto. lo is
// a multiple of microM (ForAligned), so the local view of packedA starts
// on a block boundary.
func gebpRows(impl *kernelImpl, dst, a, packedA, packedB []float64, lo, hi, k, n int) {
	var pa []float64
	if off := (lo / microM) * k * microM; off < len(packedA) {
		pa = packedA[off:]
	}
	impl.gebpTile(dst[lo*n:], n, a[lo*k:], pa, packedB, hi-lo, k, n)
}

// matMulPackedTile computes the m×cols tile dst[i*ldd+j] (i < m,
// j < cols) = packed(a)×packed(b) with the 4×4 register micro-kernel.
// dst points at the tile origin inside a larger row-major matrix of row
// stride ldd; packedB holds ceil(cols/4) zero-padded column panels local
// to the tile; packedA holds a's full microM-row blocks and a is the
// plain m×k row-major operand, read only for the ragged row tail. Both
// packed operands stream from contiguous micro-panels; the loop
// condition on the two slice lengths lets the compiler drop every bounds
// check in the hot loop. Every accumulator folds ascending-k from zero
// with math.FMA, so each stored element is bit-identical to the naive
// loop.
func matMulPackedTile(dst []float64, ldd int, a, packedA, packedB []float64, m, k, cols int) {
	panels := (cols + microN - 1) / microN
	i := 0
	for ; i+microM <= m; i += microM {
		r := i / microM
		pa := packedA[r*k*microM : (r+1)*k*microM]
		for p := 0; p < panels; p++ {
			qa := pa
			qb := packedB[p*k*microN : p*k*microN+len(qa)]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			// qa and qb have identical length (4·k), so the prove pass
			// drops every bounds check in this loop; the ×2 unroll halves
			// the loop overhead per 16-FMA group. The fold order per
			// accumulator stays strictly ascending in k.
			o := 0
			for ; o+8 <= len(qa); o += 8 {
				b0, b1, b2, b3 := qb[o], qb[o+1], qb[o+2], qb[o+3]
				av := qa[o]
				c00 = math.FMA(av, b0, c00)
				c01 = math.FMA(av, b1, c01)
				c02 = math.FMA(av, b2, c02)
				c03 = math.FMA(av, b3, c03)
				av = qa[o+1]
				c10 = math.FMA(av, b0, c10)
				c11 = math.FMA(av, b1, c11)
				c12 = math.FMA(av, b2, c12)
				c13 = math.FMA(av, b3, c13)
				av = qa[o+2]
				c20 = math.FMA(av, b0, c20)
				c21 = math.FMA(av, b1, c21)
				c22 = math.FMA(av, b2, c22)
				c23 = math.FMA(av, b3, c23)
				av = qa[o+3]
				c30 = math.FMA(av, b0, c30)
				c31 = math.FMA(av, b1, c31)
				c32 = math.FMA(av, b2, c32)
				c33 = math.FMA(av, b3, c33)
				b0, b1, b2, b3 = qb[o+4], qb[o+5], qb[o+6], qb[o+7]
				av = qa[o+4]
				c00 = math.FMA(av, b0, c00)
				c01 = math.FMA(av, b1, c01)
				c02 = math.FMA(av, b2, c02)
				c03 = math.FMA(av, b3, c03)
				av = qa[o+5]
				c10 = math.FMA(av, b0, c10)
				c11 = math.FMA(av, b1, c11)
				c12 = math.FMA(av, b2, c12)
				c13 = math.FMA(av, b3, c13)
				av = qa[o+6]
				c20 = math.FMA(av, b0, c20)
				c21 = math.FMA(av, b1, c21)
				c22 = math.FMA(av, b2, c22)
				c23 = math.FMA(av, b3, c23)
				av = qa[o+7]
				c30 = math.FMA(av, b0, c30)
				c31 = math.FMA(av, b1, c31)
				c32 = math.FMA(av, b2, c32)
				c33 = math.FMA(av, b3, c33)
			}
			for ; o+4 <= len(qa); o += 4 {
				b0, b1, b2, b3 := qb[o], qb[o+1], qb[o+2], qb[o+3]
				av := qa[o]
				c00 = math.FMA(av, b0, c00)
				c01 = math.FMA(av, b1, c01)
				c02 = math.FMA(av, b2, c02)
				c03 = math.FMA(av, b3, c03)
				av = qa[o+1]
				c10 = math.FMA(av, b0, c10)
				c11 = math.FMA(av, b1, c11)
				c12 = math.FMA(av, b2, c12)
				c13 = math.FMA(av, b3, c13)
				av = qa[o+2]
				c20 = math.FMA(av, b0, c20)
				c21 = math.FMA(av, b1, c21)
				c22 = math.FMA(av, b2, c22)
				c23 = math.FMA(av, b3, c23)
				av = qa[o+3]
				c30 = math.FMA(av, b0, c30)
				c31 = math.FMA(av, b1, c31)
				c32 = math.FMA(av, b2, c32)
				c33 = math.FMA(av, b3, c33)
			}
			j0 := p * microN
			storeClipped(dst[(i+0)*ldd:(i+0)*ldd+cols], j0, cols, c00, c01, c02, c03)
			storeClipped(dst[(i+1)*ldd:(i+1)*ldd+cols], j0, cols, c10, c11, c12, c13)
			storeClipped(dst[(i+2)*ldd:(i+2)*ldd+cols], j0, cols, c20, c21, c22, c23)
			storeClipped(dst[(i+3)*ldd:(i+3)*ldd+cols], j0, cols, c30, c31, c32, c33)
		}
	}
	// Ragged row tail: 1×4 kernel over the packed b panels, reading a
	// directly (tail rows are never packed).
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*ldd : i*ldd+cols]
		for p := 0; p < panels; p++ {
			pb := packedB[p*k*microN : (p+1)*k*microN]
			var c0, c1, c2, c3 float64
			for kk := 0; kk < k; kk++ {
				q := pb[kk*microN:]
				_ = q[3]
				av := arow[kk]
				c0 = math.FMA(av, q[0], c0)
				c1 = math.FMA(av, q[1], c1)
				c2 = math.FMA(av, q[2], c2)
				c3 = math.FMA(av, q[3], c3)
			}
			storeClipped(drow, p*microN, cols, c0, c1, c2, c3)
		}
	}
}

// matMulATBDims validates aᵀ×b for a (k×m) and b (k×n).
func matMulATBDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulATB requires rank-2 tensors")
	}
	k, m = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMulATB inner dimensions %d vs %d", k, b.shape[0]))
	}
	return m, k, b.shape[1]
}

// MatMulATB computes aᵀ×b for a (k×m) and b (k×n) without materializing
// the transpose, returning a fresh (m×n) tensor.
func MatMulATB(a, b *Tensor) *Tensor {
	m, _, n := matMulATBDims(a, b)
	return MatMulATBInto(New(m, n), a, b)
}

// MatMulATBInto computes dst = aᵀ×b by index remapping: dst[i][j] =
// Σ_kk a[kk][i]·b[kk][j], ascending kk — the exact per-element order of
// MatMulNaiveInto(dst, Transpose(a), b), with no transposed copy. dst is
// overwritten and sharded by output row at any worker count.
func MatMulATBInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulATBDims(a, b)
	checkDst(dst, m, n)
	if m == 0 || n == 0 {
		return dst
	}
	if k == 0 {
		dst.Fill(0)
		return dst
	}
	if m*k*n < blockCutoff {
		matMulATBRange(dst.data, a.data, b.data, 0, m, k, m, n)
		return dst
	}
	parallel.ForAligned(m, rowGrain(k, n), microM, func(lo, hi int) {
		matMulATBRange(dst.data, a.data, b.data, lo, hi, k, m, n)
	})
	return dst
}

// matMulATBRange computes dst rows [lo, hi) of aᵀ×b. The 4×4 micro-kernel
// reads four consecutive a columns (contiguous at a[kk·m+i]) and four
// consecutive b columns (contiguous at b[kk·n+j]) per k step.
func matMulATBRange(dst, a, b []float64, lo, hi, k, m, n int) {
	i := lo
	for ; i+microM <= hi; i += microM {
		j := 0
		for ; j+microN <= n; j += microN {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			for kk := 0; kk < k; kk++ {
				qa := a[kk*m+i:]
				_ = qa[3]
				qb := b[kk*n+j:]
				_ = qb[3]
				b0, b1, b2, b3 := qb[0], qb[1], qb[2], qb[3]
				av := qa[0]
				c00 = math.FMA(av, b0, c00)
				c01 = math.FMA(av, b1, c01)
				c02 = math.FMA(av, b2, c02)
				c03 = math.FMA(av, b3, c03)
				av = qa[1]
				c10 = math.FMA(av, b0, c10)
				c11 = math.FMA(av, b1, c11)
				c12 = math.FMA(av, b2, c12)
				c13 = math.FMA(av, b3, c13)
				av = qa[2]
				c20 = math.FMA(av, b0, c20)
				c21 = math.FMA(av, b1, c21)
				c22 = math.FMA(av, b2, c22)
				c23 = math.FMA(av, b3, c23)
				av = qa[3]
				c30 = math.FMA(av, b0, c30)
				c31 = math.FMA(av, b1, c31)
				c32 = math.FMA(av, b2, c32)
				c33 = math.FMA(av, b3, c33)
			}
			storeClipped(dst[(i+0)*n:(i+1)*n], j, n, c00, c01, c02, c03)
			storeClipped(dst[(i+1)*n:(i+2)*n], j, n, c10, c11, c12, c13)
			storeClipped(dst[(i+2)*n:(i+3)*n], j, n, c20, c21, c22, c23)
			storeClipped(dst[(i+3)*n:(i+4)*n], j, n, c30, c31, c32, c33)
		}
		for ; j < n; j++ {
			var s0, s1, s2, s3 float64
			for kk := 0; kk < k; kk++ {
				qa := a[kk*m+i:]
				_ = qa[3]
				bv := b[kk*n+j]
				s0 = math.FMA(qa[0], bv, s0)
				s1 = math.FMA(qa[1], bv, s1)
				s2 = math.FMA(qa[2], bv, s2)
				s3 = math.FMA(qa[3], bv, s3)
			}
			dst[(i+0)*n+j] = s0
			dst[(i+1)*n+j] = s1
			dst[(i+2)*n+j] = s2
			dst[(i+3)*n+j] = s3
		}
	}
	for ; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := a[kk*m+i]
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				drow[j] = math.FMA(av, bv, drow[j])
			}
		}
	}
}

// matMulABTDims validates a×bᵀ for a (m×k) and b (n×k).
func matMulABTDims(a, b *Tensor) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulABT requires rank-2 tensors")
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulABT inner dimensions %d vs %d", k, b.shape[1]))
	}
	return m, k, b.shape[0]
}

// MatMulABT computes a×bᵀ for a (m×k) and b (n×k) without materializing
// the transpose, returning a fresh (m×n) tensor.
func MatMulABT(a, b *Tensor) *Tensor {
	m, _, n := matMulABTDims(a, b)
	return MatMulABTInto(New(m, n), a, b)
}

// MatMulABTInto computes dst = a×bᵀ: dst[i][j] = Σ_kk a[i][kk]·b[j][kk],
// ascending kk. Both operands stream row-major, so no packing is needed.
// dst is overwritten.
func MatMulABTInto(dst, a, b *Tensor) *Tensor {
	return matMulABT(dst, a, b, false)
}

// MatMulABTAcc accumulates dst += a×bᵀ directly into the existing
// destination: each element starts from its current value and adds the
// Σ_kk terms in ascending-k order. This is the conv/dense gradient
// accumulation primitive — no product temporary, no AddInPlace pass.
func MatMulABTAcc(dst, a, b *Tensor) *Tensor {
	return matMulABT(dst, a, b, true)
}

func matMulABT(dst, a, b *Tensor, acc bool) *Tensor {
	m, k, n := matMulABTDims(a, b)
	checkDst(dst, m, n)
	if m == 0 || n == 0 {
		return dst
	}
	if k == 0 {
		if !acc {
			dst.Fill(0)
		}
		return dst
	}
	if m*k*n < blockCutoff {
		matMulABTRange(dst.data, a.data, b.data, 0, m, k, n, acc)
		return dst
	}
	parallel.ForAligned(m, rowGrain(k, n), microM, func(lo, hi int) {
		matMulABTRange(dst.data, a.data, b.data, lo, hi, k, n, acc)
	})
	return dst
}

// matMulABTRange computes dst rows [lo, hi) of a×bᵀ. The 4×4 micro-kernel
// streams four a rows against four b rows, all contiguous in k. With acc,
// accumulators start from the existing destination values.
func matMulABTRange(dst, a, b []float64, lo, hi, k, n int, acc bool) {
	i := lo
	for ; i+microM <= hi; i += microM {
		a0 := a[(i+0)*k : (i+1)*k]
		a1 := a[(i+1)*k : (i+2)*k]
		a2 := a[(i+2)*k : (i+3)*k]
		a3 := a[(i+3)*k : (i+4)*k]
		d0 := dst[(i+0)*n : (i+1)*n]
		d1 := dst[(i+1)*n : (i+2)*n]
		d2 := dst[(i+2)*n : (i+3)*n]
		d3 := dst[(i+3)*n : (i+4)*n]
		j := 0
		for ; j+microN <= n; j += microN {
			b0 := b[(j+0)*k : (j+1)*k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			var c20, c21, c22, c23 float64
			var c30, c31, c32, c33 float64
			if acc {
				c00, c01, c02, c03 = d0[j], d0[j+1], d0[j+2], d0[j+3]
				c10, c11, c12, c13 = d1[j], d1[j+1], d1[j+2], d1[j+3]
				c20, c21, c22, c23 = d2[j], d2[j+1], d2[j+2], d2[j+3]
				c30, c31, c32, c33 = d3[j], d3[j+1], d3[j+2], d3[j+3]
			}
			for kk := 0; kk < k; kk++ {
				v0, v1, v2, v3 := b0[kk], b1[kk], b2[kk], b3[kk]
				av := a0[kk]
				c00 = math.FMA(av, v0, c00)
				c01 = math.FMA(av, v1, c01)
				c02 = math.FMA(av, v2, c02)
				c03 = math.FMA(av, v3, c03)
				av = a1[kk]
				c10 = math.FMA(av, v0, c10)
				c11 = math.FMA(av, v1, c11)
				c12 = math.FMA(av, v2, c12)
				c13 = math.FMA(av, v3, c13)
				av = a2[kk]
				c20 = math.FMA(av, v0, c20)
				c21 = math.FMA(av, v1, c21)
				c22 = math.FMA(av, v2, c22)
				c23 = math.FMA(av, v3, c23)
				av = a3[kk]
				c30 = math.FMA(av, v0, c30)
				c31 = math.FMA(av, v1, c31)
				c32 = math.FMA(av, v2, c32)
				c33 = math.FMA(av, v3, c33)
			}
			d0[j], d0[j+1], d0[j+2], d0[j+3] = c00, c01, c02, c03
			d1[j], d1[j+1], d1[j+2], d1[j+3] = c10, c11, c12, c13
			d2[j], d2[j+1], d2[j+2], d2[j+3] = c20, c21, c22, c23
			d3[j], d3[j+1], d3[j+2], d3[j+3] = c30, c31, c32, c33
		}
		for ; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s0, s1, s2, s3 float64
			if acc {
				s0, s1, s2, s3 = d0[j], d1[j], d2[j], d3[j]
			}
			for kk, bv := range brow {
				s0 = math.FMA(a0[kk], bv, s0)
				s1 = math.FMA(a1[kk], bv, s1)
				s2 = math.FMA(a2[kk], bv, s2)
				s3 = math.FMA(a3[kk], bv, s3)
			}
			d0[j], d1[j], d2[j], d3[j] = s0, s1, s2, s3
		}
	}
	for ; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := range drow {
			brow := b[j*k : (j+1)*k]
			var s float64
			if acc {
				s = drow[j]
			}
			for kk, bv := range brow {
				s = math.FMA(arow[kk], bv, s)
			}
			drow[j] = s
		}
	}
}

// TransposeInto writes the transpose of rank-2 a into dst (n×m),
// overwriting it. Large inputs shard source rows over the worker pool;
// each source row writes a disjoint stride-m comb of the output, so the
// result is unaffected by sharding.
func TransposeInto(dst, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	m, n := a.shape[0], a.shape[1]
	checkDst(dst, n, m)
	grain := m
	if n > 0 && m*n >= matMulCutoff {
		if grain = matMulCutoff / n; grain < 1 {
			grain = 1
		}
	}
	parallel.For(m, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				dst.data[j*m+i] = a.data[i*n+j]
			}
		}
	})
	return dst
}
