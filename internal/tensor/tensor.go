// Package tensor implements the dense numerical arrays underpinning
// Autonomizer's neural-network substrate. The paper delegates model
// execution to TensorFlow; this package is the from-scratch substitute:
// row-major float64 tensors with the matrix and convolution kernels the
// nn package needs (matmul, transpose, im2col/col2im, elementwise maps).
//
// Design notes: tensors carry an explicit shape and a flat backing slice.
// Operations either return fresh tensors or write into caller-supplied
// destinations; nothing here is goroutine-safe by itself.
//
// The heavy kernels (MatMul here, Im2Col/Col2Im in conv.go) shard their
// work over the internal/parallel pool above a size cutoff. Shards write
// disjoint output regions with unchanged per-element operation order, so
// every result is bit-identical to the sequential computation at any
// worker count.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major array of float64 with an arbitrary shape.
type Tensor struct {
	shape []int
	data  []float64
}

// New allocates a zero tensor with the given shape. It panics on negative
// dimensions; a zero-dimension tensor (scalar) has one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if the element count does not match.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions. Callers must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the flat backing slice, in row-major order.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape. It panics if
// the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v", t.shape, len(t.data), shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Apply replaces each element x with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, x := range t.data {
		t.data[i] = f(x)
	}
	return t
}

// AddInPlace adds o elementwise into t. Shapes must match exactly.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.assertSameShape(o)
	for i := range t.data {
		t.data[i] += o.data[i]
	}
	return t
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) *Tensor {
	t.assertSameShape(o)
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
	return t
}

// MulInPlace multiplies t elementwise by o (Hadamard product).
func (t *Tensor) MulInPlace(o *Tensor) *Tensor {
	t.assertSameShape(o)
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
	return t
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

func (t *Tensor) assertSameShape(o *Tensor) {
	if len(t.shape) != len(o.shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
		}
	}
}

// matMulCutoff is the minimum m·k·n flop count at which the matrix
// kernels shard their rows over the worker pool; below it the scheduling
// overhead outweighs the win. Exported knobs are unnecessary: correctness
// is identical on both sides of the cutoff.
const matMulCutoff = 32 * 1024

// MatMul computes the matrix product a×b for 2-D tensors, returning a new
// (a.rows × b.cols) tensor. It panics on rank or inner-dimension
// mismatch. This is the allocating convenience wrapper over MatMulInto
// (kernel.go); hot paths pass their own destination instead.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matMulDims(a, b)
	return MatMulInto(New(m, n), a, b)
}

// Transpose returns the transpose of a rank-2 tensor, allocating the
// destination; see TransposeInto for the destination-passing form.
func Transpose(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic("tensor: Transpose requires a rank-2 tensor")
	}
	return TransposeInto(New(a.shape[1], a.shape[0]), a)
}

// Reuse returns a tensor with the given shape, recycling t's backing
// array when its capacity suffices and allocating a fresh tensor
// otherwise. The contents are unspecified when recycled — callers must
// fully overwrite. This is the layer-scratch primitive: a layer holds
// its output tensor across calls and Reuses it each Forward, so the
// steady state allocates nothing.
func Reuse(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", d))
		}
		n *= d
	}
	if t == nil || cap(t.data) < n {
		return New(shape...)
	}
	t.data = t.data[:n]
	t.shape = append(t.shape[:0], shape...)
	return t
}

// View repoints view at src's backing data with the given shape and
// returns it: an allocation-free Reshape for hot paths (a nil view
// allocates the header once, then it is recycled on every call). The
// returned tensor shares src's data; it panics if the element counts
// differ.
func View(view, src *Tensor, shape ...int) *Tensor {
	return ViewOf(view, src.data, shape...)
}

// ViewOf is View over a raw slice: it repoints view at data with the
// given shape. The element count must match len(data).
//
// Like Reuse, a literal variadic call — ViewOf(v, data, 4, 8) — is
// allocation-free: the shape argument never escapes, so it stays on the
// caller's stack. The panic path copies the shape before formatting it
// precisely to preserve that property; handing the parameter itself to
// fmt would make every call site heap-allocate its shape literal.
func ViewOf(view *Tensor, data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d",
			append([]int(nil), shape...), n, len(data)))
	}
	if view == nil {
		view = &Tensor{}
	}
	view.shape = append(view.shape[:0], shape...)
	view.data = data
	return view
}

// Dot computes the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// MaxAbs returns the largest absolute element value, used for gradient
// clipping diagnostics.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, x := range t.data {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, x := range t.data {
		s += x * x
	}
	return math.Sqrt(s)
}

// String renders a compact description, e.g. "Tensor[2 3]".
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
