// convgemm.go is the implicit-GEMM convolution engine (DESIGN.md §5j).
// The im2col lowering in conv.go materializes the full O(C·KH·KW·OH·OW)
// column matrix before every GEMM — on the CNN hot path that gather (and
// the panel re-pack of its output) costs more than the multiply itself.
// Implicit GEMM fuses the two: the im2col index arithmetic moves into
// the GEBP panel packing, so receptive-field columns are gathered
// tile-by-tile into cache-resident pack buffers and fed straight to the
// dispatched micro-kernel. The column matrix is never built:
//
//   - Forward: out = W × cols. Output column panels are sharded over the
//     pool; each shard gathers its own nr-wide B-panels with packConvCols
//     and aims gebpTile at its slice of the output feature map.
//
//   - gradW: gradWProd = g × colsᵀ. Weight-column panels are sharded;
//     each shard gathers colsᵀ-panels with packConvColsT (same gather,
//     transposed write) and multiplies against the once-packed g.
//
//   - gradIn: cols-gradient stripes per input channel, gebpTile into a
//     per-worker stripe, then a fused col2im-accumulate scatter
//     (scatterConvChannel) with run-clipped bounds instead of per-element
//     branches.
//
// Determinism contract: every output element's fold is unchanged from
// the naive reference compositions — forward folds ascending-k (k =
// channel-major tap index) exactly like Im2Col+MatMulNaiveInto, gradW
// folds ascending output position exactly like MatMulABTInto, and gradIn
// folds ascending output channel then scatters in Col2ImInto's exact
// ch→ky→kx→oy→ox order. Sharding only chooses which tiles compute when.
// Padding gathers as explicit zeros (never skipped: 0×NaN must stay
// NaN), and pack-buffer pad lanes only feed accumulators that clipped
// stores drop. Enforced bit-for-bit by convgemm_test.go across shapes,
// widths and kernel implementations.
package tensor

import (
	"fmt"

	"github.com/autonomizer/autonomizer/internal/parallel"
)

// ConvGeom is the fixed geometry of one convolution: input planes,
// kernel taps, stride/padding, and the derived output extent. The
// implicit-GEMM views it as an OutC×K times K×N product with
// K = InC·KH·KW (channel-major tap index) and N = OutH·OutW (row-major
// output position), matching Im2Col's row and column order.
type ConvGeom struct {
	InC, InH, InW int
	KH, KW        int
	Stride, Pad   int
	OutC          int
	OutH, OutW    int

	// oxLoTab/oxHiTab cache oxClip per kernel column: the clip divides
	// by the stride, and the packers would otherwise pay that divide
	// once per contraction row per gather block. Filled by NewConvGeom;
	// a zero-built ConvGeom falls back to computing the clip inline.
	oxLoTab, oxHiTab []int
}

// NewConvGeom validates a convolution configuration and derives the
// output extent. It panics on an invalid geometry, mirroring Im2Col.
func NewConvGeom(inC, inH, inW, kh, kw, stride, pad, outC int) ConvGeom {
	if inC <= 0 || inH <= 0 || inW <= 0 || kh <= 0 || kw <= 0 || outC <= 0 || pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry inC=%d in=%dx%d k=%dx%d outC=%d pad=%d",
			inC, inH, inW, kh, kw, outC, pad))
	}
	if stride < 1 {
		panic("tensor: conv stride must be >= 1")
	}
	g := ConvGeom{
		InC: inC, InH: inH, InW: inW,
		KH: kh, KW: kw, Stride: stride, Pad: pad,
		OutC: outC,
		OutH: ConvOutputSize(inH, kh, stride, pad),
		OutW: ConvOutputSize(inW, kw, stride, pad),
	}
	if g.OutH <= 0 || g.OutW <= 0 {
		panic(fmt.Sprintf("tensor: conv kernel %dx%d too large for %dx%d input (pad %d)", kh, kw, inH, inW, pad))
	}
	g.oxLoTab = make([]int, kw)
	g.oxHiTab = make([]int, kw)
	for kx := 0; kx < kw; kx++ {
		g.oxLoTab[kx], g.oxHiTab[kx] = g.oxClipCompute(kx)
	}
	return g
}

// K returns the GEMM contraction length InC·KH·KW.
func (g *ConvGeom) K() int { return g.InC * g.KH * g.KW }

// Cols returns the GEMM output width OutH·OutW.
func (g *ConvGeom) Cols() int { return g.OutH * g.OutW }

// oxClip returns the output-x range [oxLo, oxHi) whose input column
// ox·stride + kx - pad falls inside [0, InW) — the in-bounds run of one
// output row under kernel tap column kx. Everything outside the run is
// padding (gathers as zero, scatters nowhere).
func (g *ConvGeom) oxClip(kx int) (oxLo, oxHi int) {
	if g.oxLoTab != nil {
		return g.oxLoTab[kx], g.oxHiTab[kx]
	}
	return g.oxClipCompute(kx)
}

// oxClipCompute is the direct form of oxClip, used to fill the table
// and as the fallback for zero-built geometries.
func (g *ConvGeom) oxClipCompute(kx int) (oxLo, oxHi int) {
	if d := g.Pad - kx; d > 0 {
		oxLo = (d + g.Stride - 1) / g.Stride
	}
	if e := g.InW - 1 - kx + g.Pad; e >= 0 {
		if oxHi = e/g.Stride + 1; oxHi > g.OutW {
			oxHi = g.OutW
		}
	}
	if oxLo > oxHi {
		oxLo = oxHi
	}
	return oxLo, oxHi
}

// convZeroRun zeroes count packed elements of one B-panel row, starting
// at write index di with intra-panel offset j; hop is the (k-1)·nr jump
// between consecutive panels of the same row. It returns the advanced
// (di, j) so the packer can thread a whole row's runs through
// sequentially — no index division anywhere (nr is a variable, so a
// pos/nr per run would be a hardware divide on the hottest path).
func convZeroRun(packed []float64, nr, hop, di, j, count int) (int, int) {
	for count > 0 {
		c := nr - j
		if c > count {
			c = count
		}
		d := packed[di : di+c]
		for i := range d {
			d[i] = 0
		}
		di += c
		if j += c; j == nr {
			di += hop
			j = 0
		}
		count -= c
	}
	return di, j
}

// convGatherRun copies count input values starting at in[si] with the
// given stride into one B-panel row at (di, j) — the same threading
// contract as convZeroRun. Chunks are short (≤ nr), so inline element
// loops beat memmove calls; the aligned full-chunk stride-1 case — an
// nr-wide slice of a contiguous input row — is unrolled for the AVX2
// panel width, since it is the inner loop of every unit-stride
// convolution forward.
func convGatherRun(packed, in []float64, nr, hop, di, j, count, si, stride int) (int, int) {
	if stride == 1 {
		for count > 0 {
			if j == 0 && count >= 8 && nr == 8 {
				d := packed[di : di+8]
				s := in[si : si+8]
				d[0], d[1], d[2], d[3] = s[0], s[1], s[2], s[3]
				d[4], d[5], d[6], d[7] = s[4], s[5], s[6], s[7]
				di += 8 + hop
				si += 8
				count -= 8
				continue
			}
			c := nr - j
			if c > count {
				c = count
			}
			d := packed[di : di+c]
			s := in[si : si+c]
			for i := range d {
				d[i] = s[i]
			}
			si += c
			di += c
			if j += c; j == nr {
				di += hop
				j = 0
			}
			count -= c
		}
		return di, j
	}
	for count > 0 {
		c := nr - j
		if c > count {
			c = count
		}
		d := packed[di : di+c]
		for i := range d {
			d[i] = in[si]
			si += stride
		}
		di += c
		if j += c; j == nr {
			di += hop
			j = 0
		}
		count -= c
	}
	return di, j
}

// packConvCols gathers im2col column panels [pLo, pHi) of the implicit
// K×N column matrix straight from the (InC, InH, InW) input into GEBP
// B-panel layout: packed[(p-pLo)·K·nr + kk·nr + jj] = cols[kk][p·nr+jj],
// where cols[kk][pos] is input channel kk/(KH·KW) at tap
// ((kk/KW)%KH, kk%KW) over output position (pos/OutW, pos%OutW), zero
// where the tap lands in padding. Rows gather as runs — a zero fill, a
// contiguous copy (stride 1) or a strided loop — instead of the
// branch-per-element im2colRows walk. Lanes past column N in the ragged
// last panel are zeroed; they only feed accumulators that clipped stores
// drop. packed must hold (pHi-pLo)·K·nr elements.
func packConvCols(packed, in []float64, g *ConvGeom, nr, pLo, pHi int) {
	k, n := g.K(), g.Cols()
	colLo := pLo * nr
	colHi := pHi * nr
	padEnd := colHi
	if colHi > n {
		colHi = n
	}
	hop := (k - 1) * nr
	// Fast path: the block covers whole output rows (convPackBlock
	// arranges this whenever panels tile rows exactly), so the per-row
	// run bounds are just the precomputed clip — none of the mid-row
	// clamp handling below can trigger. This is every block of every
	// aligned geometry, i.e. the hot path.
	if g.OutW%nr == 0 && colLo%g.OutW == 0 && colHi%g.OutW == 0 && padEnd == colHi {
		oyLo, oyHi := colLo/g.OutW, colHi/g.OutW
		kk := 0
		for ch := 0; ch < g.InC; ch++ {
			chBase := ch * g.InH * g.InW
			for ky := 0; ky < g.KH; ky++ {
				for kx := 0; kx < g.KW; kx++ {
					oxLo, oxHi := g.oxClip(kx)
					di, j := kk*nr, 0
					for oy := oyLo; oy < oyHi; oy++ {
						iy := oy*g.Stride + ky - g.Pad
						if iy < 0 || iy >= g.InH {
							di, j = convZeroRun(packed, nr, hop, di, j, g.OutW)
							continue
						}
						if oxLo > 0 {
							di, j = convZeroRun(packed, nr, hop, di, j, oxLo)
						}
						if oxHi > oxLo {
							si := chBase + iy*g.InW + oxLo*g.Stride + kx - g.Pad
							di, j = convGatherRun(packed, in, nr, hop, di, j, oxHi-oxLo, si, g.Stride)
						}
						if oxHi < g.OutW {
							di, j = convZeroRun(packed, nr, hop, di, j, g.OutW-oxHi)
						}
					}
					kk++
				}
			}
		}
		return
	}
	// One division for the whole call: colLo is panel-aligned, so every
	// row kk starts at intra-panel offset 0 and the write index threads
	// through the run helpers from there. The nested ch/ky/kx loops
	// replace per-kk divisions, and oy advances with the row cursor
	// instead of being re-derived from the position.
	oy0 := colLo / g.OutW
	kk := 0
	for ch := 0; ch < g.InC; ch++ {
		chBase := ch * g.InH * g.InW
		for ky := 0; ky < g.KH; ky++ {
			for kx := 0; kx < g.KW; kx++ {
				oxLo, oxHi := g.oxClip(kx)
				di, j := kk*nr, 0
				pos := colLo
				rowStart := oy0 * g.OutW
				for oy := oy0; pos < colHi; oy++ {
					rowEnd := rowStart + g.OutW
					if rowEnd > colHi {
						rowEnd = colHi
					}
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						di, j = convZeroRun(packed, nr, hop, di, j, rowEnd-pos)
						pos = rowEnd
						rowStart += g.OutW
						continue
					}
					zA := rowStart + oxLo
					if zA < pos {
						zA = pos
					}
					if zA > rowEnd {
						zA = rowEnd
					}
					zB := rowStart + oxHi
					if zB < zA {
						zB = zA
					}
					if zB > rowEnd {
						zB = rowEnd
					}
					if pos < zA {
						di, j = convZeroRun(packed, nr, hop, di, j, zA-pos)
					}
					if zA < zB {
						si := chBase + iy*g.InW + (zA-rowStart)*g.Stride + kx - g.Pad
						di, j = convGatherRun(packed, in, nr, hop, di, j, zB-zA, si, g.Stride)
					}
					if zB < rowEnd {
						di, j = convZeroRun(packed, nr, hop, di, j, rowEnd-zB)
					}
					pos = rowEnd
					rowStart += g.OutW
				}
				if padEnd > colHi {
					convZeroRun(packed, nr, hop, di, j, padEnd-colHi)
				}
				kk++
			}
		}
	}
}

// packConvColsT gathers colsᵀ panels [pLo, pHi) for the gradW product
// gradWProd = g_out × colsᵀ: panel lane jj of panel p holds weight
// column (tap) p·nr+jj, so packed[(p-pLo)·N·nr + pos·nr + jj] =
// cols[p·nr+jj][pos]. Lanes whose tap index reaches K are zeroed (the
// ragged last panel); they only feed clipped accumulators. packed must
// hold (pHi-pLo)·N·nr elements.
func packConvColsT(packed, in []float64, g *ConvGeom, nr, pLo, pHi int) {
	if nr > maxPanelNR {
		panic(fmt.Sprintf("tensor: packConvColsT panel width %d exceeds %d", nr, maxPanelNR))
	}
	k, n := g.K(), g.Cols()
	taps := g.KH * g.KW
	// Per-lane tap coordinates, hoisted out of the position loops. Dead
	// lanes (tap index ≥ K) get iyBase = InH so the always-invalid iy
	// branch zero-fills their whole row; their other entries are never
	// read. Iterating oy outermost keeps every store inside one
	// OutW·nr-float window of packed, so the strided lane writes stay
	// L1-resident instead of sweeping the whole N·nr panel per lane.
	var iyBase, chOff, kxOff, loA, hiA [maxPanelNR]int
	for p := pLo; p < pHi; p++ {
		for jj := 0; jj < nr; jj++ {
			t := p*nr + jj
			if t >= k {
				iyBase[jj] = g.InH
				continue
			}
			ch := t / taps
			ky := (t / g.KW) % g.KH
			kx := t % g.KW
			iyBase[jj] = ky - g.Pad
			chOff[jj] = ch * g.InH * g.InW
			kxOff[jj] = kx - g.Pad
			loA[jj], hiA[jj] = g.oxClip(kx)
		}
		base0 := (p - pLo) * n * nr
		for oy := 0; oy < g.OutH; oy++ {
			rowBase := base0 + oy*g.OutW*nr
			for jj := 0; jj < nr; jj++ {
				d := packed[rowBase+jj:]
				iy := oy*g.Stride + iyBase[jj]
				if iy < 0 || iy >= g.InH {
					for ox := 0; ox < g.OutW; ox++ {
						d[ox*nr] = 0
					}
					continue
				}
				lo, hi := loA[jj], hiA[jj]
				for ox := 0; ox < lo; ox++ {
					d[ox*nr] = 0
				}
				si := chOff[jj] + iy*g.InW + lo*g.Stride + kxOff[jj]
				di := lo * nr
				if g.Stride == 1 {
					s := in[si:]
					for ox := lo; ox < hi; ox++ {
						d[di] = s[ox-lo]
						di += nr
					}
				} else {
					for ox := lo; ox < hi; ox++ {
						d[di] = in[si]
						di += nr
						si += g.Stride
					}
				}
				for ox := hi; ox < g.OutW; ox++ {
					d[ox*nr] = 0
				}
			}
		}
	}
}

// scatterConvChannel is the fused col2im-accumulate for one input
// channel: it zeroes the channel's (InH, InW) plane of gradIn and
// accumulates the channel's (KH·KW × N) cols-gradient stripe in
// Col2ImInto's exact order — ky→kx ascending tap, then oy→ox ascending
// position, one += per in-bounds element — with the padding skips
// precomputed as run clips instead of per-element branches.
func scatterConvChannel(gradIn, stripe []float64, g *ConvGeom, ch int) {
	n := g.Cols()
	plane := gradIn[ch*g.InH*g.InW : (ch+1)*g.InH*g.InW]
	for i := range plane {
		plane[i] = 0
	}
	t := 0
	for ky := 0; ky < g.KH; ky++ {
		for kx := 0; kx < g.KW; kx++ {
			src := stripe[t*n : (t+1)*n]
			oxLo, oxHi := g.oxClip(kx)
			for oy := 0; oy < g.OutH; oy++ {
				iy := oy*g.Stride + ky - g.Pad
				if iy < 0 || iy >= g.InH {
					continue
				}
				row := plane[iy*g.InW : (iy+1)*g.InW]
				srow := src[oy*g.OutW:]
				ix := oxLo*g.Stride + kx - g.Pad
				if g.Stride == 1 {
					d := row[ix : ix+(oxHi-oxLo)]
					s := srow[oxLo:oxHi]
					for i := range d {
						d[i] += s[i]
					}
				} else {
					for ox := oxLo; ox < oxHi; ox++ {
						row[ix] += srow[ox]
						ix += g.Stride
					}
				}
			}
			t++
		}
	}
}

// maxPanelNR bounds the panel width any dispatched kernel may use, so
// per-lane scratch in the packers can live in fixed stack arrays.
const maxPanelNR = 16

// convPackBlockFloats is the target pack-buffer size, in floats, for one
// forward gather block (~16 KiB). Panels are gathered and multiplied in
// blocks of this size so the pack buffer stays L1-resident: gathering an
// entire shard's panels first (hundreds of KiB on real geometries) would
// evict every panel before the GEBP kernel read it back. Blocking only
// groups whole panels — each output column's fold still happens inside a
// single gebpTile call — so results are unchanged bit for bit.
const convPackBlockFloats = 2048

// convPackBlock returns how many nr-wide panels of contraction length K
// fit the pack-buffer budget (at least one). When panels tile output
// rows exactly, the block is rounded up to whole rows: every
// contraction-row pass over the block then runs full rows only, with no
// mid-row clamp handling.
func convPackBlock(g *ConvGeom, nr int) int {
	b := convPackBlockFloats / (g.K() * nr)
	if b < 1 {
		b = 1
	}
	if ppr := g.OutW / nr; ppr > 0 && g.OutW%nr == 0 {
		b = (b + ppr - 1) / ppr * ppr
	}
	return b
}

// convGrain returns a panel/channel sharding grain for units of the
// given per-unit cost: enough units per chunk that each chunk is at
// least one matMulCutoff worth of work. Depends only on the geometry, so
// chunk boundaries are fixed per kernel at any width.
func convGrain(unitCost int) int {
	if g := matMulCutoff / (unitCost + 1); g > 1 {
		return g
	}
	return 1
}

// ConvKernel is the implicit-GEMM execution state for one convolution
// geometry on the training path. It exists to make steady-state
// Forward/Backward allocation-free at any worker width: the shard
// bodies are built once as persistent closures over the kernel's
// mutable per-call fields (a closure literal at each call site would
// heap-allocate its header per call, because parallel.For's fn
// escapes), and all transient buffers come from the shared Scratch
// arena. A ConvKernel is owned by one layer and is not goroutine-safe;
// the parallelism inside a call shards over disjoint output tiles.
type ConvKernel struct {
	g    ConvGeom
	impl *kernelImpl

	// Fixed sharding geometry, derived from g at construction.
	fwdPanels, fwdGrain int
	fwdBlock            int // panels per cache-resident gather block
	wPanels, wGrain     int
	chGrain             int

	// Per-call operands, set by Forward/Backward before dispatching the
	// persistent shard closures, cleared after.
	in, w, out    []float64
	gout          []float64
	gradW, gradIn []float64
	packedW       []float64 // forward: W's full row blocks
	packedG       []float64 // backward gradIn: g_out column panels
	packedGA      []float64 // backward gradW: g_out full row blocks
	fwdShard      func(lo, hi int)
	bwdChShard    func(lo, hi int)
	bwdWShard     func(lo, hi int)
}

// NewConvKernel builds the implicit-GEMM kernel for a geometry using the
// dispatched implementation.
func NewConvKernel(g ConvGeom) *ConvKernel {
	return newConvKernel(g, kern)
}

// newConvKernel is the implementation-injection constructor the
// bit-identity tests use to exercise every kernelImpl explicitly.
func newConvKernel(g ConvGeom, impl *kernelImpl) *ConvKernel {
	k, n := g.K(), g.Cols()
	nr := impl.nr
	taps := g.KH * g.KW
	ck := &ConvKernel{
		g: g, impl: impl,
		fwdPanels: (n + nr - 1) / nr,
		fwdGrain:  convGrain(nr * k * g.OutC),
		fwdBlock:  convPackBlock(&g, nr),
		wPanels:   (k + nr - 1) / nr,
		wGrain:    convGrain(nr * n * g.OutC),
		chGrain:   convGrain(taps * g.OutC * n),
	}
	ck.fwdShard = ck.runFwdShard
	ck.bwdChShard = ck.runBwdChShard
	ck.bwdWShard = ck.runBwdWShard
	return ck
}

// Geom returns the kernel's fixed geometry.
func (ck *ConvKernel) Geom() ConvGeom { return ck.g }

// runFwdShard computes output column panels [pLo, pHi): gather the
// panels' receptive-field columns into an L1-resident pack buffer, one
// convPackBlock-sized block at a time, aiming the GEBP tile kernel at
// the corresponding slice of the (OutC × N) output after each gather.
func (ck *ConvKernel) runFwdShard(pLo, pHi int) {
	g := &ck.g
	k, n, nr := g.K(), g.Cols(), ck.impl.nr
	blk := ck.fwdBlock
	if blk > pHi-pLo {
		blk = pHi - pLo
	}
	pb := Scratch.Get(blk * k * nr)
	local := *pb
	for b := pLo; b < pHi; b += blk {
		bHi := b + blk
		if bHi > pHi {
			bHi = pHi
		}
		packConvCols(local, ck.in, g, nr, b, bHi)
		colLo := b * nr
		colHi := bHi * nr
		if colHi > n {
			colHi = n
		}
		ck.impl.gebpTile(ck.out[colLo:], n, ck.w, ck.packedW, local, g.OutC, k, colHi-colLo)
	}
	Scratch.Put(pb)
}

// runBwdWShard computes weight-gradient column panels [pLo, pHi) of
// gradWProd = g_out × colsᵀ: gather the transposed column panels and
// multiply against the once-packed g_out. Each shard writes a disjoint
// column slice of the (OutC × K) product; the per-element fold over all
// N positions happens inside one gebpTile call, so sharding never
// touches it.
func (ck *ConvKernel) runBwdWShard(pLo, pHi int) {
	g := &ck.g
	k, n, nr := g.K(), g.Cols(), ck.impl.nr
	pb := Scratch.Get((pHi - pLo) * n * nr)
	local := *pb
	packConvColsT(local, ck.in, g, nr, pLo, pHi)
	colLo := pLo * nr
	colHi := pHi * nr
	if colHi > k {
		colHi = k
	}
	ck.impl.gebpTile(ck.gradW[colLo:], k, ck.gout, ck.packedGA, local, g.OutC, n, colHi-colLo)
	Scratch.Put(pb)
}

// runBwdChShard computes the input gradient for channels [chLo, chHi).
// Per channel: materialize the tiny (KH·KW × OutC) transposed weight
// block, GEBP it against the once-packed g_out into a per-worker
// cols-gradient stripe (fold ascending output channel, exactly
// MatMulATBInto's order), then scatter the stripe onto the channel's
// input plane in Col2ImInto's order.
func (ck *ConvKernel) runBwdChShard(chLo, chHi int) {
	g := &ck.g
	k, n := g.K(), g.Cols()
	taps := g.KH * g.KW
	outC := g.OutC
	// Pad the row count to whole microM blocks with zero rows: the GEBP
	// kernel then runs full register tiles only (no scalar ragged-row
	// tail, which otherwise fires once per panel for small tap counts).
	// The pad rows compute zeros into stripe rows the scatter never
	// reads; rows [0, taps) fold exactly as before.
	mPad := (taps + microM - 1) / microM * microM
	blocks := mPad / microM
	ps := Scratch.Get(mPad * n)
	stripe := *ps
	pl := Scratch.Get(mPad*outC + blocks*microM*outC)
	local := *pl
	la := local[:mPad*outC]
	lp := local[mPad*outC:]
	for i := taps * outC; i < mPad*outC; i++ {
		la[i] = 0
	}
	for ch := chLo; ch < chHi; ch++ {
		for t := 0; t < taps; t++ {
			col := ch*taps + t
			for oc := 0; oc < outC; oc++ {
				la[t*outC+oc] = ck.w[oc*k+col]
			}
		}
		packRows(lp, la, outC, blocks)
		ck.impl.gebpTile(stripe, n, la, lp, ck.packedG, mPad, outC, n)
		scatterConvChannel(ck.gradIn, stripe, g, ch)
	}
	Scratch.Put(pl)
	Scratch.Put(ps)
}

// Forward computes out = W × im2col(in) without materializing the
// column matrix. in is (InC·InH·InW), w is the row-major (OutC × K)
// filter matrix, out is the (OutC × N) pre-bias output. Weights are
// packed per call (the training path mutates them every step); the
// compiled serving path prepacks once via PrepackConv instead. Output
// column panels shard over the worker pool; results are bit-identical
// to Im2Col+MatMulNaiveInto at any width.
func (ck *ConvKernel) Forward(out, in, w []float64) {
	g := &ck.g
	k, n := g.K(), g.Cols()
	ck.checkOperand("in", in, g.InC*g.InH*g.InW)
	ck.checkOperand("w", w, g.OutC*k)
	ck.checkOperand("out", out, g.OutC*n)
	var pw *[]float64
	if blocks := g.OutC / microM; blocks > 0 {
		pw = Scratch.Get(blocks * microM * k)
		packRows(*pw, w, k, blocks)
		ck.packedW = *pw
	} else {
		ck.packedW = nil
	}
	ck.in, ck.w, ck.out = in, w, out
	parallel.For(ck.fwdPanels, ck.fwdGrain, ck.fwdShard)
	ck.in, ck.w, ck.out, ck.packedW = nil, nil, nil, nil
	Scratch.Put(pw)
}

// Backward computes the weight-gradient product gradWProd = g_out ×
// im2col(in)ᵀ (overwritten, formed from zero — the caller adds it into
// the accumulated gradient, preserving the data-parallel reduction's
// association) and the input gradient gradIn (overwritten), without
// materializing the column matrix or its gradient. gout is the
// (OutC × N) output gradient; in must be the same buffer passed to the
// matching Forward. Bit-identical to the
// MatMulABTInto / MatMulATBInto+Col2ImInto reference at any width.
func (ck *ConvKernel) Backward(gradWProd, gradIn, in, w, gout []float64) {
	g := &ck.g
	k, n := g.K(), g.Cols()
	ck.checkOperand("in", in, g.InC*g.InH*g.InW)
	ck.checkOperand("w", w, g.OutC*k)
	ck.checkOperand("gout", gout, g.OutC*n)
	ck.checkOperand("gradWProd", gradWProd, g.OutC*k)
	ck.checkOperand("gradIn", gradIn, g.InC*g.InH*g.InW)
	nr := ck.impl.nr
	panels := (n + nr - 1) / nr
	pg := Scratch.Get(panels * nr * g.OutC)
	packPanels(*pg, gout, g.OutC, n, nr)
	ck.packedG = *pg
	var pga *[]float64
	if blocks := g.OutC / microM; blocks > 0 {
		pga = Scratch.Get(blocks * microM * n)
		packRows(*pga, gout, n, blocks)
		ck.packedGA = *pga
	} else {
		ck.packedGA = nil
	}
	ck.in, ck.w, ck.gout, ck.gradW, ck.gradIn = in, w, gout, gradWProd, gradIn
	parallel.For(ck.g.InC, ck.chGrain, ck.bwdChShard)
	parallel.For(ck.wPanels, ck.wGrain, ck.bwdWShard)
	ck.in, ck.w, ck.gout, ck.gradW, ck.gradIn = nil, nil, nil, nil, nil
	ck.packedG, ck.packedGA = nil, nil
	Scratch.Put(pga)
	Scratch.Put(pg)
}

func (ck *ConvKernel) checkOperand(name string, s []float64, want int) {
	if len(s) != want {
		panic(fmt.Sprintf("tensor: ConvKernel %s length %d, want %d (geom %+v)", name, len(s), want, ck.g))
	}
}

// PackedConv is a convolution's filter matrix packed once for the
// compiled serving path (the conv analogue of PackedDense): the GEBP
// row blocks plus the raw row-major snapshot for the ragged tail.
// Forward gathers input columns per call — that work depends on the
// input — but never packs or copies the weights again.
type PackedConv struct {
	g       ConvGeom
	w       []float64 // row-major (OutC × K) snapshot
	packedW []float64 // full microM-row blocks, kk-major
	blk     int       // panels per cache-resident gather block
}

// PrepackConv snapshots a (OutC × K) filter tensor into packed form for
// the geometry. Mutating w afterwards does not affect the pack — the
// compiled-plan contract.
func PrepackConv(w *Tensor, g ConvGeom) *PackedConv {
	shape := w.Shape()
	if len(shape) != 2 || shape[0] != g.OutC || shape[1] != g.K() {
		panic(fmt.Sprintf("tensor: PrepackConv weights %v, want [%d %d]", shape, g.OutC, g.K()))
	}
	p := &PackedConv{g: g, w: append([]float64(nil), w.Data()...)}
	if blocks := g.OutC / microM; blocks > 0 {
		p.packedW = make([]float64, blocks*microM*g.K())
		packRows(p.packedW, p.w, g.K(), blocks)
	}
	p.blk = convPackBlock(&p.g, kern.nr)
	if panels := (g.Cols() + kern.nr - 1) / kern.nr; p.blk > panels {
		p.blk = panels
	}
	return p
}

// Geom returns the packed convolution's geometry.
func (p *PackedConv) Geom() ConvGeom { return p.g }

// PackedColsLen returns the scratch length Forward needs for one
// cache-resident gather block under the active kernel's geometry.
func (p *PackedConv) PackedColsLen() int {
	return p.blk * p.g.K() * kern.nr
}

// Forward computes the pre-bias (OutC × N) output sequentially — the
// compiled-plan contract puts parallelism above the plan — gathering
// the input's receptive-field columns into the caller-owned packedCols
// scratch (length ≥ PackedColsLen) and running one GEBP over the
// prepacked filters. No allocation, no weight packing, bit-identical to
// the training path and the naive reference.
func (p *PackedConv) Forward(out, in, packedCols []float64) {
	g := &p.g
	k, n, nr := g.K(), g.Cols(), kern.nr
	if len(in) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: PackedConv input %d, want %d", len(in), g.InC*g.InH*g.InW))
	}
	if len(out) != g.OutC*n {
		panic(fmt.Sprintf("tensor: PackedConv output %d, want %d", len(out), g.OutC*n))
	}
	if need := p.PackedColsLen(); len(packedCols) < need {
		panic(fmt.Sprintf("tensor: PackedConv scratch %d, need %d", len(packedCols), need))
	}
	panels := (n + nr - 1) / nr
	for b := 0; b < panels; b += p.blk {
		bHi := b + p.blk
		if bHi > panels {
			bHi = panels
		}
		packConvCols(packedCols, in, g, nr, b, bHi)
		colLo := b * nr
		colHi := bHi * nr
		if colHi > n {
			colHi = n
		}
		kern.gebpTile(out[colLo:], n, p.w, p.packedW, packedCols, g.OutC, k, colHi-colLo)
	}
}
