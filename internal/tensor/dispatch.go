// dispatch.go is the init-time CPU-feature dispatch behind the kernel
// layer (DESIGN.md §5g). PR 5's micro-kernels guarded every math.FMA with
// a per-call CPU-feature branch on the default (GOAMD64=v1) build, which
// cost the 4×4 register tile most of its win. Instead of paying that
// branch per multiply, the feature check now runs exactly once, at
// package init, and selects a kernelImpl — a table binding the packed
// matmul micro-kernel (GEBP), the lane-blocked dense forward (GEMV) and
// their packing geometry. amd64 hosts with FMA+AVX2 get hand-written
// assembly kernels with a wider 4×8 tile; every other host gets the
// portable Go kernels.
//
// Determinism contract: every implementation folds each output element's
// terms in ascending-k order with the exact operations of the reference
// kernels (math.FMA for the matmul family, separate multiply-then-add for
// the Dot-based dense forward), so results are bit-identical across
// implementations, builds and worker counts. Packing geometry (panel
// width nr, dense lane count) varies per implementation, but geometry
// only decides which elements are computed together — never the
// per-element fold order.
package tensor

import "os"

// kernelImpl is one selectable kernel implementation. All fields are
// bound once at package init; pack-once callers (PackDense, PackB) bake
// the implementation's geometry into their packed buffers, which is safe
// precisely because the selection never changes after init.
type kernelImpl struct {
	// name identifies the implementation ("generic", "avx2") for
	// diagnostics and the AUTONOMIZER_KERNEL override.
	name string

	// nr is the packed-B panel width of the GEBP micro-kernel. The
	// micro-tile is microM×nr.
	nr int

	// gebpTile computes an m×cols output tile from packed operands:
	// dst[i*ldd+j] (i < m, j < cols) = packed(a)×packed(b), where dst
	// points at the tile origin inside a row-major matrix of row stride
	// ldd ≥ cols. packedA holds a's full microM-row blocks (kk-major),
	// packedB holds ceil(cols/nr) nr-wide zero-padded column panels
	// (kk-major) local to the tile, and a is the plain m×k row-major
	// operand, read only for the ragged row tail past the last full
	// block. The tile form is what lets implicit-GEMM convolution aim
	// the micro-kernel at arbitrary strided sub-blocks of the output
	// feature map; gebpRows adapts it back to whole-matrix row sharding.
	gebpTile func(dst []float64, ldd int, a, packedA, packedB []float64, m, k, cols int)

	// lanes is the dense-forward output block width: gemv processes
	// blocks of this many outputs at once, one independent
	// multiply-then-add chain per output lane.
	lanes int

	// gemv computes dst[0:blocks*lanes] = W·x + bias over lane-packed
	// weights: packedW[blk*k*lanes + kk*lanes + lane] = W[blk*lanes+lane][kk].
	// Each output folds ascending-k with separate multiply and add — the
	// exact semantics of Dot(row, x) + bias[o].
	gemv func(dst, packedW, x, bias []float64, blocks, k int)
}

// genericImpl is the portable Go implementation, available everywhere:
// the 4×4 math.FMA GEBP tile from PR 5 and a 4-lane dense forward.
var genericImpl = &kernelImpl{
	name:     "generic",
	nr:       microN,
	gebpTile: matMulPackedTile,
	lanes:    4,
	gemv:     gemvGeneric,
}

// kern is the implementation selected at package init. Immutable
// afterwards (tests that need to exercise a specific implementation call
// its functions directly).
var kern = pickKernel()

// KernelName reports which kernel implementation was selected at init
// ("avx2", "generic"), for diagnostics and bench provenance.
func KernelName() string { return kern.name }

// pickKernel selects the kernel implementation: the architecture's
// accelerated kernels when the CPU supports them, the generic Go kernels
// otherwise. AUTONOMIZER_KERNEL=generic forces the portable kernels (the
// escape hatch for A/B benchmarking and for diagnosing a miscompiled
// accelerated path); AUTONOMIZER_KERNEL=<name> selects an accelerated
// implementation only if it is actually available.
func pickKernel() *kernelImpl {
	want := os.Getenv("AUTONOMIZER_KERNEL")
	if want == genericImpl.name {
		return genericImpl
	}
	if k := archKernel(); k != nil && (want == "" || want == k.name) {
		return k
	}
	return genericImpl
}

// gemvGeneric is the portable lane-blocked dense forward: 4 independent
// multiply-then-add chains, one per output lane, folding ascending-k —
// bit-identical to Dot(W[o], x) + bias[o] per output.
func gemvGeneric(dst, packedW, x, bias []float64, blocks, k int) {
	const lanes = 4
	for blk := 0; blk < blocks; blk++ {
		p := packedW[blk*k*lanes : (blk+1)*k*lanes]
		var c0, c1, c2, c3 float64
		for kk := 0; kk < k; kk++ {
			q := p[kk*lanes:]
			_ = q[3]
			xv := x[kk]
			c0 += q[0] * xv
			c1 += q[1] * xv
			c2 += q[2] * xv
			c3 += q[3] * xv
		}
		o := blk * lanes
		b := bias[o:]
		_ = b[3]
		d := dst[o:]
		_ = d[3]
		d[0], d[1], d[2], d[3] = c0+b[0], c1+b[1], c2+b[2], c3+b[3]
	}
}
