package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelSelected sanity-checks the init-time dispatch: the selected
// implementation must exist and expose a coherent geometry.
func TestKernelSelected(t *testing.T) {
	if kern == nil {
		t.Fatal("no kernel selected")
	}
	t.Logf("active kernel: %s (nr=%d, lanes=%d)", kern.name, kern.nr, kern.lanes)
	if kern.nr < microN || kern.lanes < 1 {
		t.Fatalf("implausible kernel geometry nr=%d lanes=%d", kern.nr, kern.lanes)
	}
}

// gebpVia runs one full dst = a×b through a specific implementation's
// packing geometry and GEBP kernel, sequentially.
func gebpVia(impl *kernelImpl, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b)
	dst := New(m, n)
	if m == 0 || n == 0 {
		return dst
	}
	if k == 0 {
		return dst
	}
	panels := (n + impl.nr - 1) / impl.nr
	packedB := make([]float64, panels*impl.nr*k)
	packPanels(packedB, b.Data(), k, n, impl.nr)
	var packedA []float64
	if blocks := m / microM; blocks > 0 {
		packedA = make([]float64, blocks*microM*k)
		packRows(packedA, a.Data(), k, blocks)
	}
	gebpRows(impl, dst.Data(), a.Data(), packedA, packedB, 0, m, k, n)
	return dst
}

// TestGEBPBitIdenticalAcrossImpls drives every available implementation
// directly (bypassing MatMulInto's cutoffs) over shapes that hit full
// tiles, ragged columns for both panel widths, ragged rows, and the
// special values the zero-skip trap would corrupt. Every implementation
// must be bit-identical to the naive reference.
func TestGEBPBitIdenticalAcrossImpls(t *testing.T) {
	impls := []*kernelImpl{genericImpl}
	if arch := archKernel(); arch != nil {
		impls = append(impls, arch)
	}
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{4, 8, 8}, {4, 3, 8}, {8, 16, 16}, {5, 7, 9}, {7, 5, 11},
		{1, 1, 1}, {3, 2, 5}, {4, 9, 12}, {12, 33, 17}, {64, 64, 64},
		{9, 64, 23}, {16, 128, 8}, {13, 31, 7}, {100, 10, 3},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		// Seed special values: zeros, infinities and a NaN so any
		// zero-skip or reassociation shortcut shows up as a mismatch.
		if k >= 2 && m >= 2 {
			a.Data()[0] = 0
			a.Data()[k] = math.Inf(1)
			b.Data()[1] = math.NaN()
			b.Data()[n] = 0
		}
		want := MatMulNaiveInto(New(m, n), a, b)
		for _, impl := range impls {
			got := gebpVia(impl, a, b)
			for i, w := range want.Data() {
				g := got.Data()[i]
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("%s %dx%dx%d: elem %d = %x, want %x", impl.name, m, k, n, i, math.Float64bits(g), math.Float64bits(w))
				}
			}
		}
	}
}

// TestPackedAMulIntoMatchesNaive exercises the pack-once path end to end:
// PackA + PackB + MulInto must equal the naive reference bit for bit.
func TestPackedAMulIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][3]int{{8, 36, 1024}, {5, 7, 9}, {4, 4, 4}, {1, 3, 2}, {8, 1, 8}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		pa := PackA(a)
		packedB := make([]float64, PackedBLen(k, n))
		PackB(packedB, b)
		got := pa.MulInto(New(m, n), packedB, n)
		want := MatMulNaiveInto(New(m, n), a, b)
		for i, w := range want.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(w) {
				t.Fatalf("%dx%dx%d: elem %d = %v, want %v", m, k, n, i, got.Data()[i], w)
			}
		}
		// Packed weights are a snapshot: mutating a afterwards must not
		// change the product.
		a.Data()[0] += 42
		again := pa.MulInto(New(m, n), packedB, n)
		for i, w := range want.Data() {
			if math.Float64bits(again.Data()[i]) != math.Float64bits(w) {
				t.Fatalf("snapshot violated at elem %d", i)
			}
		}
	}
}

// TestPackedDenseMatchesDot verifies the lane-blocked dense forward is
// bit-identical to the uncompiled per-row fold Dot(row, x) + bias[o],
// across widths that hit full lane blocks, tails, and both at once.
func TestPackedDenseMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range [][2]int{{16, 8}, {32, 64}, {17, 5}, {1, 1}, {15, 3}, {48, 33}, {16, 1}, {3, 128}} {
		out, in := sh[0], sh[1]
		w := New(out, in)
		bias := New(out)
		x := make([]float64, in)
		for i := range w.Data() {
			w.Data()[i] = rng.NormFloat64()
		}
		for i := range bias.Data() {
			bias.Data()[i] = rng.NormFloat64()
		}
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		pd := PackDense(w, bias)
		got := make([]float64, out)
		pd.Forward(got, x)
		for o := 0; o < out; o++ {
			want := Dot(w.Data()[o*in:(o+1)*in], x) + bias.Data()[o]
			if math.Float64bits(got[o]) != math.Float64bits(want) {
				t.Fatalf("out=%d in=%d: lane %d = %v, want %v", out, in, o, got[o], want)
			}
		}
	}
}

// TestMatMulIntoStillMatchesNaive re-checks the shared-entry blocked path
// (now kernel-dispatched) on a size above blockCutoff so the selected
// implementation actually runs.
func TestMatMulIntoStillMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, sh := range [][3]int{{48, 48, 48}, {37, 53, 29}, {64, 9, 100}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		got := MatMulInto(New(m, n), a, b)
		want := MatMulNaiveInto(New(m, n), a, b)
		for i, w := range want.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(w) {
				t.Fatalf("%dx%dx%d: elem %d = %v, want %v", m, k, n, i, got.Data()[i], w)
			}
		}
	}
}
