//go:build amd64

package tensor

import "math"

// The AVX2+FMA kernel implementation. The hot loops live in
// kernel_avx2_amd64.s; this file holds the Go drivers that walk the
// packed operands, call the assembly on full tiles, and fall back to
// portable scalar code on the ragged edges. Selected at package init by
// archKernel when the CPU supports FMA3+AVX2 (see feature_amd64.go).
//
// Determinism: the assembly folds every output element's terms in
// ascending-k order with exactly the reference operations — one fused
// multiply-add per term for the GEBP matmul tile (VFMADD231PD lanes are
// the vector form of math.FMA), and a separate multiply then add per
// term for the dense GEMV lanes (VMULPD+VADDPD, matching Dot's
// two-rounding fold) — so results are bit-identical to the generic Go
// kernels and to the naive references.

const (
	// avx2NR is the packed-B panel width: the GEBP micro-tile is 4×8,
	// held in eight YMM accumulators across the full k loop.
	avx2NR = 8
	// avx2Lanes is the dense-forward block width: 16 outputs per block,
	// four independent YMM multiply-add chains.
	avx2Lanes = 16
)

var avx2Impl = &kernelImpl{
	name:     "avx2",
	nr:       avx2NR,
	gebpTile: gebpTileAVX2,
	lanes:    avx2Lanes,
	gemv:     gemvAVX2,
}

// dgemm4x8 computes a full 4×8 tile: dst[r][c] (row stride n) gets
// Σ_kk pa[kk*4+r]·pb[kk*8+c], folded ascending-k with FMA from zero.
//
//go:noescape
func dgemm4x8(dst, pa, pb *float64, k, n int)

// gemv16 computes one 16-output dense block: dst[l] = Σ_kk
// w[kk*16+l]·x[kk] + bias[l], each lane an independent ascending-k
// multiply-then-add chain.
//
//go:noescape
func gemv16(dst, w, x, bias *float64, k int)

// gebpTileAVX2 is the AVX2 GEBP tile driver: full 4-row × 8-column
// tiles go to the assembly micro-kernel (dgemm4x8's n operand is purely
// the dst row stride, so ldd aims it at arbitrary sub-tiles); the
// ragged column panel computes into a stack tile and clips the store;
// the ragged row tail past the last full row block runs a scalar 1×8
// kernel reading a directly, exactly like the generic implementation.
func gebpTileAVX2(dst []float64, ldd int, a, packedA, packedB []float64, m, k, cols int) {
	panels := (cols + avx2NR - 1) / avx2NR
	var tile [microM * avx2NR]float64
	i := 0
	for ; i+microM <= m; i += microM {
		r := i / microM
		pa := packedA[r*k*microM:]
		for p := 0; p < panels; p++ {
			pb := packedB[p*k*avx2NR:]
			j0 := p * avx2NR
			if j0+avx2NR <= cols {
				dgemm4x8(&dst[i*ldd+j0], &pa[0], &pb[0], k, ldd)
				continue
			}
			dgemm4x8(&tile[0], &pa[0], &pb[0], k, avx2NR)
			w := cols - j0
			for ii := 0; ii < microM; ii++ {
				copy(dst[(i+ii)*ldd+j0:(i+ii)*ldd+cols], tile[ii*avx2NR:ii*avx2NR+w])
			}
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*ldd : i*ldd+cols]
		for p := 0; p < panels; p++ {
			pb := packedB[p*k*avx2NR:]
			var c [avx2NR]float64
			for kk := 0; kk < k; kk++ {
				q := pb[kk*avx2NR:]
				_ = q[7]
				av := arow[kk]
				c[0] = math.FMA(av, q[0], c[0])
				c[1] = math.FMA(av, q[1], c[1])
				c[2] = math.FMA(av, q[2], c[2])
				c[3] = math.FMA(av, q[3], c[3])
				c[4] = math.FMA(av, q[4], c[4])
				c[5] = math.FMA(av, q[5], c[5])
				c[6] = math.FMA(av, q[6], c[6])
				c[7] = math.FMA(av, q[7], c[7])
			}
			j0 := p * avx2NR
			w := cols - j0
			if w > avx2NR {
				w = avx2NR
			}
			copy(drow[j0:j0+w], c[:w])
		}
	}
}

// gemvAVX2 runs the 16-lane assembly block over the packed dense
// weights; the caller (PackedDense.Forward) handles the out%16 tail with
// the scalar Dot path.
func gemvAVX2(dst, packedW, x, bias []float64, blocks, k int) {
	if k == 0 {
		copy(dst[:blocks*avx2Lanes], bias[:blocks*avx2Lanes])
		return
	}
	for blk := 0; blk < blocks; blk++ {
		o := blk * avx2Lanes
		gemv16(&dst[o], &packedW[blk*k*avx2Lanes], &x[0], &bias[o], k)
	}
}
