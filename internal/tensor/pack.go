// pack.go is the pack-once API behind the compiled inference plans
// (DESIGN.md §5g). MatMulInto packs both operands from scratch on every
// call, which is right for training (weights change every step) and
// wasteful for serving (weights are immutable between hot reloads).
// PackA and PackDense snapshot a weight matrix into the active kernel
// implementation's packed layout exactly once; the per-call work that
// remains is only what depends on the input.
//
// Packed values are snapshots: they do not observe later mutations of
// the source tensors. That is exactly the compiled-plan contract — a
// plan is recompiled when new weights are published, never mutated.
package tensor

import "fmt"

// PackedA is a matrix packed once for the left-hand side of GEBP
// products (dst = A×b): full microM-row blocks in kk-major packed form,
// plus a plain row-major copy that the ragged row tail reads directly.
// The convolution plan packs its (OutC × InC·KH·KW) weights this way at
// compile time.
type PackedA struct {
	a      []float64 // full row-major snapshot (m×k)
	packed []float64 // full microM-row blocks, kk-major
	m, k   int
}

// PackA snapshots a rank-2 tensor into GEBP-packed form.
func PackA(a *Tensor) *PackedA {
	if len(a.shape) != 2 {
		panic("tensor: PackA requires a rank-2 tensor")
	}
	m, k := a.shape[0], a.shape[1]
	p := &PackedA{a: append([]float64(nil), a.data...), m: m, k: k}
	if blocks := m / microM; blocks > 0 && k > 0 {
		p.packed = make([]float64, blocks*microM*k)
		packRows(p.packed, p.a, k, blocks)
	}
	return p
}

// Rows returns the packed matrix's row count (the product's m).
func (p *PackedA) Rows() int { return p.m }

// Cols returns the packed matrix's column count (the product's k).
func (p *PackedA) Cols() int { return p.k }

// PackedBLen returns the scratch length a caller must provide to PackB /
// MulInto for a k×n right-hand operand under the active kernel's panel
// geometry.
func PackedBLen(k, n int) int {
	panels := (n + kern.nr - 1) / kern.nr
	return panels * kern.nr * k
}

// PackB packs rank-2 b into packed (length ≥ PackedBLen(k, n)) in the
// active kernel's nr-wide zero-padded panel layout, ready for MulInto.
func PackB(packed []float64, b *Tensor) {
	if len(b.shape) != 2 {
		panic("tensor: PackB requires a rank-2 tensor")
	}
	k, n := b.shape[0], b.shape[1]
	if need := PackedBLen(k, n); len(packed) < need {
		panic(fmt.Sprintf("tensor: PackB scratch %d, need %d", len(packed), need))
	}
	packPanels(packed, b.data, k, n, kern.nr)
}

// MulInto computes dst = p×b from b's packed panels (filled by PackB for
// a p.Cols()×n operand), overwriting the m×n dst. It runs sequentially —
// no sharding, no scratch, no allocation: the compiled plan's building
// block, where parallelism lives above the plan (one instance per
// goroutine) rather than inside the kernel. Results are bit-identical to
// MatMulNaiveInto by the dispatch contract.
func (p *PackedA) MulInto(dst *Tensor, packedB []float64, n int) *Tensor {
	checkDst(dst, p.m, n)
	if p.m == 0 || n == 0 {
		return dst
	}
	if p.k == 0 {
		dst.Fill(0)
		return dst
	}
	kern.gebpTile(dst.data, n, p.a, p.packed, packedB, p.m, p.k, n)
	return dst
}

// PackedDense is a dense layer's weights and bias packed once for the
// lane-blocked single-vector forward pass dst = W·x + bias. The packed
// layout groups kern.lanes output rows per block, kk-major, so each k
// step feeds every lane from one contiguous load; rows past the last
// full block stay row-major and run the scalar Dot path.
type PackedDense struct {
	lanes  int
	blocks int
	packed []float64 // blocks*lanes rows, lane-packed kk-major
	tail   []float64 // rows [blocks*lanes, out), row-major
	bias   []float64
	out, k int
}

// PackDense snapshots a Dense layer's (out×in) weights and bias.
func PackDense(w, bias *Tensor) *PackedDense {
	if len(w.shape) != 2 {
		panic("tensor: PackDense requires rank-2 weights")
	}
	out, k := w.shape[0], w.shape[1]
	if bias.Size() != out {
		panic(fmt.Sprintf("tensor: PackDense bias size %d, want %d", bias.Size(), out))
	}
	lanes := kern.lanes
	p := &PackedDense{
		lanes: lanes, blocks: out / lanes, out: out, k: k,
		bias: append([]float64(nil), bias.data...),
	}
	p.packed = make([]float64, p.blocks*lanes*k)
	for blk := 0; blk < p.blocks; blk++ {
		for lane := 0; lane < lanes; lane++ {
			row := w.data[(blk*lanes+lane)*k : (blk*lanes+lane+1)*k]
			dst := p.packed[blk*k*lanes+lane:]
			for kk, v := range row {
				dst[kk*lanes] = v
			}
		}
	}
	p.tail = append([]float64(nil), w.data[p.blocks*lanes*k:]...)
	return p
}

// In returns the input width (k).
func (p *PackedDense) In() int { return p.k }

// Out returns the output width.
func (p *PackedDense) Out() int { return p.out }

// Forward computes dst = W·x + bias, sequentially and without
// allocating. Every output folds its terms ascending-k with separate
// multiply and add, then adds the bias once — bit-identical to the
// uncompiled Dense layer's Dot(row, x) + bias[o].
func (p *PackedDense) Forward(dst, x []float64) {
	if len(x) != p.k {
		panic(fmt.Sprintf("tensor: PackedDense input %d, want %d", len(x), p.k))
	}
	if len(dst) != p.out {
		panic(fmt.Sprintf("tensor: PackedDense output %d, want %d", len(dst), p.out))
	}
	if p.blocks > 0 {
		kern.gemv(dst, p.packed, x, p.bias, p.blocks, p.k)
	}
	for o := p.blocks * p.lanes; o < p.out; o++ {
		t := o - p.blocks*p.lanes
		dst[o] = Dot(p.tail[t*p.k:(t+1)*p.k], x) + p.bias[o]
	}
}
