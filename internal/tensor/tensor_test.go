package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndShape(t *testing.T) {
	a := New(2, 3)
	if a.Size() != 6 {
		t.Fatalf("Size = %d, want 6", a.Size())
	}
	if s := a.Shape(); len(s) != 2 || s[0] != 2 || s[1] != 3 {
		t.Fatalf("Shape = %v", s)
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromSlice(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if a.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", a.At(1, 2))
	}
	a.Set(9, 0, 1)
	if a.At(0, 1) != 9 {
		t.Errorf("Set failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice size mismatch did not panic")
		}
	}()
	FromSlice([]float64{1, 2}, 3)
}

func TestAtBounds(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds At did not panic")
		}
	}()
	a.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(99, 0)
	if a.At(0) != 1 {
		t.Error("Clone shares data with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Set(42, 3)
	if a.At(1, 1) != 42 {
		t.Error("Reshape did not share data")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad Reshape did not panic")
		}
	}()
	a.Reshape(3)
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	prop := func(vals [9]float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 1
			}
		}
		a := FromSlice(vals[:], 3, 3)
		id := New(3, 3)
		for i := 0; i < 3; i++ {
			id.Set(1, i, i)
		}
		c := MatMul(a, id)
		for i := range a.Data() {
			if c.Data()[i] != a.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inner-dimension mismatch did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose(a)
	if s := b.Shape(); s[0] != 3 || s[1] != 2 {
		t.Fatalf("Transpose shape = %v", s)
	}
	if b.At(2, 1) != 6 || b.At(0, 1) != 4 {
		t.Errorf("Transpose values wrong: %v", b.Data())
	}
}

func TestTransposeInvolution(t *testing.T) {
	prop := func(vals [12]float64) bool {
		a := FromSlice(vals[:], 3, 4)
		b := Transpose(Transpose(a))
		for i := range a.Data() {
			av, bv := a.Data()[i], b.Data()[i]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	a.AddInPlace(b)
	if a.At(0) != 4 || a.At(1) != 6 {
		t.Errorf("AddInPlace = %v", a.Data())
	}
	a.SubInPlace(b)
	if a.At(0) != 1 || a.At(1) != 2 {
		t.Errorf("SubInPlace = %v", a.Data())
	}
	a.MulInPlace(b)
	if a.At(0) != 3 || a.At(1) != 8 {
		t.Errorf("MulInPlace = %v", a.Data())
	}
	a.ScaleInPlace(0.5)
	if a.At(0) != 1.5 || a.At(1) != 4 {
		t.Errorf("ScaleInPlace = %v", a.Data())
	}
	a.Fill(7)
	if a.At(0) != 7 || a.At(1) != 7 {
		t.Errorf("Fill = %v", a.Data())
	}
	a.Apply(func(x float64) float64 { return x * x })
	if a.At(0) != 49 {
		t.Errorf("Apply = %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	New(2).AddInPlace(New(3))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	if got := a.L2Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2Norm = %v, want 5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding is the identity lowering.
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(in, 1, 1, 1, 0)
	if s := cols.Shape(); s[0] != 1 || s[1] != 4 {
		t.Fatalf("Im2Col shape = %v", s)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if cols.Data()[i] != want {
			t.Fatalf("Im2Col identity = %v", cols.Data())
		}
	}
}

func TestIm2ColKnown(t *testing.T) {
	// 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad -> 4 columns.
	in := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	cols := Im2Col(in, 2, 2, 1, 0)
	if s := cols.Shape(); s[0] != 4 || s[1] != 4 {
		t.Fatalf("Im2Col shape = %v", s)
	}
	// Column for output (0,0) must be the top-left 2x2 patch 1,2,4,5
	// laid out down the rows.
	patch := []float64{cols.At(0, 0), cols.At(1, 0), cols.At(2, 0), cols.At(3, 0)}
	want := []float64{1, 2, 4, 5}
	for i := range want {
		if patch[i] != want[i] {
			t.Fatalf("first patch = %v, want %v", patch, want)
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	in := FromSlice([]float64{5}, 1, 1, 1)
	cols := Im2Col(in, 3, 3, 1, 1)
	if s := cols.Shape(); s[0] != 9 || s[1] != 1 {
		t.Fatalf("padded Im2Col shape = %v", s)
	}
	// Only the center of the 3x3 window overlaps the real pixel.
	for i := 0; i < 9; i++ {
		want := 0.0
		if i == 4 {
			want = 5
		}
		if cols.At(i, 0) != want {
			t.Fatalf("padded window = %v", cols.Data())
		}
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the adjoint
// identity that makes the convolution backward pass correct.
func TestCol2ImAdjoint(t *testing.T) {
	prop := func(xv [16]float64, seed int64) bool {
		for i, v := range xv {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xv[i] = 0
			}
			// Bound magnitudes so the dot products stay finite.
			xv[i] = math.Mod(xv[i], 1e6)
		}
		x := FromSlice(xv[:], 1, 4, 4)
		cols := Im2Col(x, 3, 3, 1, 1)
		y := New(cols.Shape()[0], cols.Shape()[1])
		s := uint64(seed)
		for i := range y.Data() {
			s = s*6364136223846793005 + 1442695040888963407
			y.Data()[i] = float64(int64(s>>40)) / (1 << 20)
		}
		lhs := Dot(cols.Data(), y.Data())
		back := Col2Im(y, 1, 4, 4, 3, 3, 1, 1)
		rhs := Dot(x.Data(), back.Data())
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConvOutputSize(t *testing.T) {
	if got := ConvOutputSize(84, 8, 4, 0); got != 20 {
		t.Errorf("ConvOutputSize(84,8,4,0) = %d, want 20 (DeepMind first layer)", got)
	}
	if got := ConvOutputSize(4, 3, 1, 1); got != 4 {
		t.Errorf("same-padding ConvOutputSize = %d, want 4", got)
	}
}

func TestIm2ColPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad rank":     func() { Im2Col(New(2, 2), 1, 1, 1, 0) },
		"zero stride":  func() { Im2Col(New(1, 2, 2), 1, 1, 0, 0) },
		"huge kernel":  func() { Im2Col(New(1, 2, 2), 5, 5, 1, 0) },
		"col2im shape": func() { Col2Im(New(3, 3), 1, 4, 4, 3, 3, 1, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		})
	}
}

func TestString(t *testing.T) {
	if got := New(2, 3).String(); got != "Tensor[2 3]" {
		t.Errorf("String = %q", got)
	}
}
