package auerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestEWrapsSentinel(t *testing.T) {
	err := E(ErrSpecInvalid, "model %q: bad width %d", "M", -1)
	if !errors.Is(err, ErrSpecInvalid) {
		t.Fatalf("errors.Is(E(...), ErrSpecInvalid) = false for %v", err)
	}
	want := `autonomizer: invalid model spec: model "M": bad width -1`
	if err.Error() != want {
		t.Errorf("message %q, want %q", err.Error(), want)
	}
}

func TestCanceledWrapsBothSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("not ErrCanceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("not context.Canceled: %v", err)
	}
}

func TestCanceledWrapsDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	<-ctx.Done()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error %v should match ErrCanceled and context.DeadlineExceeded", err)
	}
}

func TestCanceledOnLiveContext(t *testing.T) {
	// Defensive path: a live context still yields a usable error.
	if err := Canceled(context.Background()); !errors.Is(err, ErrCanceled) {
		t.Errorf("got %v", err)
	}
}

func TestFailfPanicsWithInvariant(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		err := FromPanic(r)
		if !errors.Is(err, ErrInvariant) {
			t.Errorf("recovered %v does not match ErrInvariant", err)
		}
		if want := "nn: boom 7"; err.Error() != want {
			t.Errorf("message %q, want %q", err.Error(), want)
		}
	}()
	Failf("nn: boom %d", 7)
}

func TestFromPanicForeignValues(t *testing.T) {
	for _, r := range []any{fmt.Errorf("plain"), "string panic", 42} {
		err := FromPanic(r)
		if !errors.Is(err, ErrInvariant) {
			t.Errorf("FromPanic(%v) = %v, not ErrInvariant", r, err)
		}
	}
	// Foreign errors stay matchable through the wrap.
	inner := errors.New("inner")
	if !errors.Is(FromPanic(inner), inner) {
		t.Error("wrapped foreign error lost identity")
	}
}
