// Package auerr defines the structured error vocabulary of the
// Autonomizer runtime: a small set of sentinel errors that every layer
// (core primitives, nn kernels, rl training, the parallel pool, the
// serialization formats) wraps its failures in, so host programs can
// dispatch on error class with errors.Is/As instead of string matching
// — and so that no malformed spec, corrupt model file or canceled
// training run ever has to crash the host process.
//
// The contract has three parts:
//
//   - Expected failures (bad spec, unknown model, corrupt bytes, missing
//     input, cancellation) are returned as errors wrapping one of the
//     sentinels below.
//   - Cancellation errors additionally wrap ctx.Err(), so
//     errors.Is(err, context.Canceled) and
//     errors.Is(err, context.DeadlineExceeded) work as hosts expect.
//   - Broken internal invariants ("can't happen" states in the kernels)
//     panic with an *InvariantError via Failf; the runtime's exported
//     entry points recover those panics with FromPanic and return them
//     as errors wrapping ErrInvariant, keeping the host alive.
package auerr

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrSpecInvalid marks a malformed ModelSpec rejected at au_config
	// time (non-positive layer widths, missing action count, unknown
	// algorithm, ...).
	ErrSpecInvalid = errors.New("autonomizer: invalid model spec")
	// ErrUnknownModel marks a primitive invoked on a model name that was
	// never configured (or, in TS mode, never saved).
	ErrUnknownModel = errors.New("autonomizer: unknown model")
	// ErrModeViolation marks a primitive applied to the wrong kind of
	// model (NN on a QLearn model, Fit on a non-AdamOpt model, ...).
	ErrModeViolation = errors.New("autonomizer: mode violation")
	// ErrNotMaterialized marks an operation that needs a built network on
	// a model whose input/output sizes are not yet known.
	ErrNotMaterialized = errors.New("autonomizer: model not materialized")
	// ErrMissingInput marks a primitive reading an absent or empty π
	// binding (au_NN without a preceding au_extract, au_write_back of an
	// unbound name, Fit with no recorded examples).
	ErrMissingInput = errors.New("autonomizer: missing input")
	// ErrCorruptModel marks undecodable serialized model bytes.
	ErrCorruptModel = errors.New("autonomizer: corrupt model data")
	// ErrCorruptStore marks an undecodable database-store image.
	ErrCorruptStore = errors.New("autonomizer: corrupt store data")
	// ErrCanceled marks work stopped by context cancellation or deadline.
	// Errors carrying it also wrap the context's own error, so
	// errors.Is(err, context.Canceled) holds as well.
	ErrCanceled = errors.New("autonomizer: canceled")
	// ErrOverloaded marks work rejected by backpressure: a bounded queue
	// (the serving layer's per-model request queue) was full, so the
	// caller should shed load or retry later. The HTTP surface maps it to
	// 429 Too Many Requests.
	ErrOverloaded = errors.New("autonomizer: overloaded")
	// ErrUnavailable marks work that could not reach a live backend: the
	// fleet router had no healthy owner for the model, or a backend died
	// mid-request. Like ErrOverloaded it is transient — retry with
	// backoff; the supervisor is already restarting the backend and the
	// router is rehashing its models away. The HTTP surface maps it to
	// 503 Service Unavailable.
	ErrUnavailable = errors.New("autonomizer: no backend available")
	// ErrInvariant marks a recovered internal invariant violation — a bug
	// in the runtime (or a panicking user callback), surfaced as an error
	// instead of a crash.
	ErrInvariant = errors.New("autonomizer: internal invariant violated")
)

// E wraps a sentinel with a formatted message:
// errors.Is(E(s, ...), s) is always true.
func E(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{sentinel}, args...)...)
}

// Canceled builds the cancellation error for a done context. The result
// wraps both ErrCanceled and the context's cause, satisfying
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) simultaneously.
func Canceled(ctx context.Context) error {
	cause := context.Cause(ctx)
	if cause == nil {
		cause = ctx.Err()
	}
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %w", ErrCanceled, cause)
}

// Class maps an error to its sentinel's short machine-readable class
// name — the closed vocabulary used as the "class" label on
// autonomizer_core_primitive_errors_total (DESIGN.md §5c), so metric
// cardinality is bounded by this list no matter what message text an
// error carries. Errors wrapping none of the sentinels report "other";
// nil reports "".
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrSpecInvalid):
		return "spec_invalid"
	case errors.Is(err, ErrUnknownModel):
		return "unknown_model"
	case errors.Is(err, ErrModeViolation):
		return "mode_violation"
	case errors.Is(err, ErrNotMaterialized):
		return "not_materialized"
	case errors.Is(err, ErrMissingInput):
		return "missing_input"
	case errors.Is(err, ErrCorruptModel):
		return "corrupt_model"
	case errors.Is(err, ErrCorruptStore):
		return "corrupt_store"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrUnavailable):
		return "unavailable"
	case errors.Is(err, ErrInvariant):
		return "invariant"
	default:
		return "other"
	}
}

// classSentinel is the inverse of Class for the closed class vocabulary.
var classSentinel = map[string]error{
	"canceled":         ErrCanceled,
	"spec_invalid":     ErrSpecInvalid,
	"unknown_model":    ErrUnknownModel,
	"mode_violation":   ErrModeViolation,
	"not_materialized": ErrNotMaterialized,
	"missing_input":    ErrMissingInput,
	"corrupt_model":    ErrCorruptModel,
	"corrupt_store":    ErrCorruptStore,
	"overloaded":       ErrOverloaded,
	"unavailable":      ErrUnavailable,
	"invariant":        ErrInvariant,
}

// FromClass maps a class name produced by Class back to its sentinel, or
// nil for "", "other" and anything outside the vocabulary. The serving
// layer ships error classes over the wire so that remote callers can
// dispatch with errors.Is exactly like in-process ones; FromClass is the
// receiving end of that round trip.
func FromClass(class string) error { return classSentinel[class] }

// InvariantError is the panic payload of Failf: a broken internal
// invariant. It matches ErrInvariant under errors.Is.
type InvariantError struct {
	msg string
}

// Error implements error.
func (e *InvariantError) Error() string { return e.msg }

// Is reports sentinel identity so errors.Is(err, ErrInvariant) holds.
func (e *InvariantError) Is(target error) bool { return target == ErrInvariant }

// Failf reports a broken internal invariant by panicking with an
// *InvariantError. The runtime's exported entry points recover it (see
// FromPanic) and return it as an error, so a kernel-level "can't happen"
// never takes down a host process that went through the public API.
func Failf(format string, args ...any) {
	panic(&InvariantError{msg: fmt.Sprintf(format, args...)})
}

// FromPanic converts a recovered panic value into an error wrapping
// ErrInvariant. Invariant panics raised by Failf pass through unchanged;
// foreign panics (runtime errors, user callbacks) are wrapped with their
// message preserved.
func FromPanic(r any) error {
	switch v := r.(type) {
	case *InvariantError:
		return v
	case error:
		return fmt.Errorf("%w: %w", ErrInvariant, v)
	default:
		return fmt.Errorf("%w: %v", ErrInvariant, v)
	}
}
