package sphinx

import (
	"fmt"
	"math"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/stats"
)

// Params are the recognizer's target variables.
type Params struct {
	// VadThreshold is the voice-activity energy threshold as a fraction
	// of the maximum frame energy (0, 1). Its ideal value rises with the
	// utterance's noise floor.
	VadThreshold float64
	// WarpBand is the DTW Sakoe-Chiba band half-width in frames. Its
	// ideal value rises with speaking-rate variation; too wide admits
	// spurious matches, too narrow rejects stretched words.
	WarpBand int
}

// DefaultParams is the fixed baseline configuration.
func DefaultParams() Params { return Params{VadThreshold: 0.10, WarpBand: 3} }

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.VadThreshold <= 0 || p.VadThreshold >= 1 {
		return fmt.Errorf("sphinx: vad threshold %v out of (0, 1)", p.VadThreshold)
	}
	if p.WarpBand < 1 || p.WarpBand > 64 {
		return fmt.Errorf("sphinx: warp band %d out of [1, 64]", p.WarpBand)
	}
	return nil
}

// Clamp coerces parameters into range.
func (p Params) Clamp() Params {
	p.VadThreshold = stats.Clamp(p.VadThreshold, 0.01, 0.95)
	if p.WarpBand < 1 {
		p.WarpBand = 1
	}
	if p.WarpBand > 64 {
		p.WarpBand = 64
	}
	return p
}

// Trace captures the internal variables of one recognition run.
type Trace struct {
	// Samples is the raw waveform (Raw feature).
	Samples []float64
	// FrameEnergies is the per-frame energy sequence (Med feature).
	FrameEnergies []float64
	// EnergyHist is the 16-bin histogram of frame energies (Min
	// feature for the VAD threshold).
	EnergyHist []float64
	// SegLenVar is the variance of detected segment lengths (Min
	// feature for the warp band).
	SegLenVar float64
	// Segments counts detected speech segments.
	Segments int
}

// frame is one analysis frame's band-energy vector.
type frame [NumBands]float64

// Recognize decodes the utterance into a keyword sequence, optionally
// recording dependence events and internal values.
func Recognize(samples []float64, p Params, g *dep.Graph, tr *Trace) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(samples) < FrameLen {
		return nil, fmt.Errorf("sphinx: utterance too short (%d samples)", len(samples))
	}
	if g != nil {
		recordDeps(g)
	}
	if tr != nil {
		tr.Samples = append([]float64(nil), samples...)
	}

	// Stage 1: framing with band energies (Goertzel-style projections).
	frames, energies := analyze(samples)
	if tr != nil {
		tr.FrameEnergies = append([]float64(nil), energies...)
		tr.EnergyHist = energyHistogram(energies)
	}

	// Stage 2: VAD segmentation.
	maxE, _ := stats.Max(energies)
	if maxE == 0 {
		maxE = 1
	}
	threshold := p.VadThreshold * maxE
	segments := segment(energies, threshold)
	if tr != nil {
		tr.Segments = len(segments)
		var lens []float64
		for _, s := range segments {
			lens = append(lens, float64(s[1]-s[0]))
		}
		tr.SegLenVar = stats.Variance(lens)
	}

	// Stage 3: DTW template matching per segment.
	var words []int
	for _, seg := range segments {
		segFrames := frames[seg[0]:seg[1]]
		if len(segFrames) < phonesPerWord {
			continue // too short to be a word
		}
		best, bestCost := -1, math.Inf(1)
		for w := 0; w < VocabSize; w++ {
			cost := dtw(segFrames, template(w), p.WarpBand)
			if cost < bestCost {
				bestCost = cost
				best = w
			}
		}
		if best >= 0 {
			words = append(words, best)
		}
	}
	return words, nil
}

// analyze splits samples into frames and computes band energies plus
// total energy per frame.
func analyze(samples []float64) ([]frame, []float64) {
	n := len(samples) / FrameLen
	frames := make([]frame, n)
	energies := make([]float64, n)
	for f := 0; f < n; f++ {
		chunk := samples[f*FrameLen : (f+1)*FrameLen]
		var total float64
		for b := 0; b < NumBands; b++ {
			// Projection onto the band's sin/cos pair.
			var sinSum, cosSum float64
			for i, s := range chunk {
				sinSum += s * math.Sin(bandFreqs[b]*float64(i))
				cosSum += s * math.Cos(bandFreqs[b]*float64(i))
			}
			e := (sinSum*sinSum + cosSum*cosSum) / float64(FrameLen)
			frames[f][b] = e
			total += e
		}
		energies[f] = total
	}
	return frames, energies
}

// energyHistogram is the 16-bin histogram of frame energies scaled to
// the observed maximum — the Min-distance feature for the VAD target.
func energyHistogram(energies []float64) []float64 {
	maxE, _ := stats.Max(energies)
	if maxE <= 0 {
		maxE = 1
	}
	return stats.Histogram(energies, 16, 0, maxE*(1+1e-9))
}

// segment returns [start, end) frame ranges whose energy exceeds the
// threshold, closing gaps of one frame.
func segment(energies []float64, threshold float64) [][2]int {
	var out [][2]int
	start := -1
	gap := 0
	for i, e := range energies {
		if e >= threshold {
			if start < 0 {
				start = i
			}
			gap = 0
			continue
		}
		if start >= 0 {
			gap++
			if gap > 1 {
				out = append(out, [2]int{start, i - gap + 1})
				start = -1
				gap = 0
			}
		}
	}
	if start >= 0 {
		out = append(out, [2]int{start, len(energies) - gap})
	}
	return out
}

// template renders the canonical frame sequence of a keyword at nominal
// rate: phonesPerWord segments of 4 frames each, energy 1 in the phone's
// band.
func template(word int) []frame {
	var out []frame
	for _, band := range wordPhones[word] {
		for i := 0; i < baseSegLen/FrameLen; i++ {
			var f frame
			f[band] = 1
			out = append(out, f)
		}
	}
	return out
}

// dtw computes the band-normalized dynamic-time-warping cost between a
// segment and a template within the Sakoe-Chiba band.
func dtw(a, b []frame, band int) float64 {
	n, m := len(a), len(b)
	// Normalize each frame to unit total energy so amplitude cancels.
	norm := func(f frame) frame {
		var sum float64
		for _, v := range f {
			sum += v
		}
		if sum == 0 {
			return f
		}
		for i := range f {
			f[i] /= sum
		}
		return f
	}
	na := make([]frame, n)
	for i := range a {
		na[i] = norm(a[i])
	}
	nb := make([]frame, m)
	for i := range b {
		nb[i] = norm(b[i])
	}
	dist := func(x, y frame) float64 {
		var s float64
		for i := range x {
			d := x[i] - y[i]
			s += d * d
		}
		return s
	}
	const inf = math.MaxFloat64 / 4
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		// Sakoe-Chiba band around the diagonal (scaled for unequal
		// lengths).
		center := i * m / n
		lo := center - band
		if lo < 1 {
			lo = 1
		}
		hi := center + band
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			c := dist(na[i-1], nb[j-1])
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if best >= inf {
				continue
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	total := prev[m]
	if total >= inf {
		return inf
	}
	return total / float64(n+m)
}

// recordDeps emits the dependence structure of one recognition run.
// Sphinx is the largest SL subject (Table 1: 107 candidates); the
// instrumentation records a correspondingly richer variable set.
func recordDeps(g *dep.Graph) {
	g.MarkInput("samples")
	g.Def("frames", "samples")
	for b := 0; b < NumBands; b++ {
		g.Def(fmt.Sprintf("bandE%d", b), "frames")
		g.Def(fmt.Sprintf("bandNorm%d", b), fmt.Sprintf("bandE%d", b))
		g.Use("analyze", fmt.Sprintf("bandE%d", b))
	}
	g.Def("frameEnergy", "bandE0", "bandE1", "bandE2", "bandE3")
	g.Def("energyHist", "frameEnergy")
	g.Def("maxEnergy", "frameEnergy")
	g.Def("threshold", "vadThreshold", "maxEnergy")
	g.Def("speechMask", "frameEnergy", "threshold")
	g.Def("segments", "speechMask")
	g.Def("segLens", "segments")
	g.Def("segLenVar", "segLens")
	g.Def("segFrames", "segments", "frames")
	g.Def("dtwCost", "segFrames", "warpBand")
	g.Def("bestWord", "dtwCost")
	g.Def("result", "bestWord")
	for _, v := range []string{"samples", "frames", "frameEnergy"} {
		g.Use("analyze", v)
	}
	for _, v := range []string{"energyHist", "maxEnergy", "vadThreshold", "threshold", "speechMask", "segments"} {
		g.Use("vad", v)
	}
	for _, v := range []string{"segFrames", "warpBand", "dtwCost", "bestWord", "result", "segLens", "segLenVar"} {
		g.Use("decode", v)
	}
}

// Inputs returns the program-input set for Algorithm 1.
func Inputs() []string { return []string{"samples"} }

// Targets returns the target variables (Table 1: 2).
func Targets() []string { return []string{"vadThreshold", "warpBand"} }

// Score returns word accuracy: the fraction of ground-truth words
// recovered in order (longest-common-subsequence over the hypothesis),
// penalized for insertions. Higher is better.
func Score(hyp, truth []int) float64 {
	if len(truth) == 0 {
		if len(hyp) == 0 {
			return 1
		}
		return 0
	}
	l := lcs(hyp, truth)
	correct := float64(l)
	insertions := float64(len(hyp) - l)
	acc := (correct - 0.5*insertions) / float64(len(truth))
	return stats.Clamp(acc, 0, 1)
}

func lcs(a, b []int) int {
	dp := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		prev := 0
		for j := 1; j <= len(b); j++ {
			cur := dp[j]
			if a[i-1] == b[j-1] {
				dp[j] = prev + 1
			} else if dp[j-1] > dp[j] {
				dp[j] = dp[j-1]
			}
			prev = cur
		}
	}
	return dp[len(b)]
}

// Oracle grid-searches for per-utterance ideal parameters.
func Oracle(u *Utterance) (Params, float64) {
	best := DefaultParams()
	bestScore := -1.0
	for _, vad := range []float64{0.03, 0.06, 0.12, 0.2, 0.35, 0.5} {
		for _, warp := range []int{1, 2, 4, 8, 16} {
			p := Params{VadThreshold: vad, WarpBand: warp}
			hyp, err := Recognize(u.Samples, p, nil, nil)
			if err != nil {
				continue
			}
			if s := Score(hyp, u.Words); s > bestScore {
				bestScore = s
				best = p
			}
		}
	}
	return best, bestScore
}

// ParamsToVector normalizes parameters into model-output space.
func ParamsToVector(p Params) []float64 {
	return []float64{p.VadThreshold, float64(p.WarpBand) / 32}
}

// VectorToParams inverts ParamsToVector with clamping.
func VectorToParams(v []float64) Params {
	return Params{VadThreshold: v[0], WarpBand: int(v[1]*32 + 0.5)}.Clamp()
}

// FeatureVector returns the Min feature encoding: the energy histogram
// plus segment-length variance and count.
func (tr *Trace) FeatureVector() []float64 {
	out := append([]float64(nil), tr.EnergyHist...)
	return append(out, tr.SegLenVar, float64(tr.Segments))
}

// MedFeatureVector returns the Med encoding: frame energies padded or
// truncated to width.
func (tr *Trace) MedFeatureVector(width int) []float64 {
	out := make([]float64, width)
	copy(out, tr.FrameEnergies)
	return out
}

// RawFeatureVector returns the Raw encoding: downsampled waveform of
// the given width.
func (tr *Trace) RawFeatureVector(width int) []float64 {
	out := make([]float64, width)
	if len(tr.Samples) == 0 {
		return out
	}
	for i := range out {
		out[i] = tr.Samples[i*len(tr.Samples)/width]
	}
	return out
}
