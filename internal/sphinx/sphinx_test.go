package sphinx

import (
	"testing"

	"github.com/autonomizer/autonomizer/internal/dep"
	"github.com/autonomizer/autonomizer/internal/extract"
	"github.com/autonomizer/autonomizer/internal/stats"
)

func TestParamsValidateClamp(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := []Params{
		{VadThreshold: 0, WarpBand: 3},
		{VadThreshold: 1, WarpBand: 3},
		{VadThreshold: 0.1, WarpBand: 0},
		{VadThreshold: 0.1, WarpBand: 100},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v validated", p)
		}
		if err := p.Clamp().Validate(); err != nil {
			t.Errorf("clamp of %+v invalid: %v", p, err)
		}
	}
}

func TestGenerateShapes(t *testing.T) {
	u := Generate(stats.NewRNG(1), GenConfig{})
	if len(u.Words) < 2 || len(u.Words) > 5 {
		t.Errorf("word count %d", len(u.Words))
	}
	for _, w := range u.Words {
		if w < 0 || w >= VocabSize {
			t.Errorf("word %d out of vocabulary", w)
		}
	}
	if len(u.Samples) < 4*FrameLen {
		t.Error("utterance too short")
	}
	if u.NoiseFloor <= 0 || u.Rate <= 0 {
		t.Error("generation metadata missing")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(stats.NewRNG(3), GenConfig{})
	b := Generate(stats.NewRNG(3), GenConfig{})
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed, different samples")
		}
	}
}

func TestRecognizeErrors(t *testing.T) {
	if _, err := Recognize(make([]float64, 10), DefaultParams(), nil, nil); err == nil {
		t.Error("too-short utterance accepted")
	}
	if _, err := Recognize(make([]float64, 1000), Params{}, nil, nil); err == nil {
		t.Error("zero params accepted")
	}
}

// TestRecognizeCleanUtterance checks end-to-end decoding on an easy
// utterance: low noise, nominal rate.
func TestRecognizeCleanUtterance(t *testing.T) {
	rng := stats.NewRNG(5)
	u := Generate(rng, GenConfig{MaxNoise: 0.05, MaxRateJitter: 0.05})
	hyp, err := Recognize(u.Samples, DefaultParams(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := Score(hyp, u.Words); s < 0.7 {
		t.Errorf("clean-utterance accuracy %v (hyp %v, truth %v)", s, hyp, u.Words)
	}
}

func TestScore(t *testing.T) {
	if got := Score([]int{1, 2, 3}, []int{1, 2, 3}); got != 1 {
		t.Errorf("perfect score = %v", got)
	}
	if got := Score(nil, []int{1}); got != 0 {
		t.Errorf("empty hypothesis score = %v", got)
	}
	if got := Score(nil, nil); got != 1 {
		t.Errorf("empty/empty score = %v", got)
	}
	if got := Score([]int{5, 5, 5, 5}, nil); got != 0 {
		t.Errorf("insertions-only score = %v", got)
	}
	// Insertions cost half a word each.
	if got := Score([]int{1, 2, 0}, []int{1, 2}); got != 0.75 {
		t.Errorf("insertion-penalized score = %v, want 0.75", got)
	}
	// Order matters (LCS, not set overlap).
	if got := Score([]int{2, 1}, []int{1, 2}); got >= 1 {
		t.Errorf("reordered hypothesis scored %v", got)
	}
}

func TestTraceCaptured(t *testing.T) {
	u := Generate(stats.NewRNG(7), GenConfig{})
	var tr Trace
	if _, err := Recognize(u.Samples, DefaultParams(), nil, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != len(u.Samples) {
		t.Error("samples not traced")
	}
	if len(tr.FrameEnergies) != len(u.Samples)/FrameLen {
		t.Error("frame energies not traced")
	}
	if len(tr.EnergyHist) != 16 {
		t.Errorf("energy hist bins = %d", len(tr.EnergyHist))
	}
	if tr.Segments == 0 {
		t.Error("no segments detected")
	}
	if fv := tr.FeatureVector(); len(fv) != 18 {
		t.Errorf("FeatureVector length = %d, want 18", len(fv))
	}
	if mv := tr.MedFeatureVector(50); len(mv) != 50 {
		t.Errorf("MedFeatureVector length = %d", len(mv))
	}
	if rv := tr.RawFeatureVector(200); len(rv) != 200 {
		t.Errorf("RawFeatureVector length = %d", len(rv))
	}
}

// TestVadThresholdMatters verifies the target variable has real effect:
// on a noisy utterance, a sensible threshold beats an extreme one.
func TestVadThresholdMatters(t *testing.T) {
	var good, bad float64
	for seed := uint64(10); seed < 16; seed++ {
		u := Generate(stats.NewRNG(seed), GenConfig{MaxNoise: 0.3})
		hypGood, err := Recognize(u.Samples, Params{VadThreshold: 0.12, WarpBand: 4}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		hypBad, err := Recognize(u.Samples, Params{VadThreshold: 0.9, WarpBand: 4}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		good += Score(hypGood, u.Words)
		bad += Score(hypBad, u.Words)
	}
	if good <= bad {
		t.Errorf("sensible threshold (%v) not better than extreme (%v)", good, bad)
	}
}

func TestAlgorithm1OnSphinxGraph(t *testing.T) {
	g := dep.NewGraph()
	u := Generate(stats.NewRNG(20), GenConfig{})
	if _, err := Recognize(u.Samples, DefaultParams(), g, nil); err != nil {
		t.Fatal(err)
	}
	res := extract.SL(g, Inputs(), Targets())
	feats := res["vadThreshold"]
	if len(feats) == 0 {
		t.Fatal("no features for vadThreshold")
	}
	// The near features for the VAD threshold are the energy-derived
	// variables, not the raw samples.
	if feats[0].Name == "samples" {
		t.Errorf("raw input ranked first: %v", feats[:3])
	}
	for _, f := range feats {
		if f.Name == "samples" && f.Dist <= feats[0].Dist {
			t.Errorf("samples not ranked worse than %s", feats[0].Name)
		}
	}
}

func TestOracleBeatsDefaults(t *testing.T) {
	var oracleSum, defSum float64
	for _, u := range GenerateCorpus(30, 5, GenConfig{}) {
		_, s := Oracle(u)
		oracleSum += s
		hyp, err := Recognize(u.Samples, DefaultParams(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		defSum += Score(hyp, u.Words)
	}
	if oracleSum < defSum {
		t.Errorf("oracle total %v below default total %v", oracleSum, defSum)
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	p := Params{VadThreshold: 0.25, WarpBand: 8}
	got := VectorToParams(ParamsToVector(p))
	if got.VadThreshold != 0.25 || got.WarpBand != 8 {
		t.Errorf("round trip = %+v", got)
	}
	if err := VectorToParams([]float64{-5, 99}).Validate(); err != nil {
		t.Errorf("clamped params invalid: %v", err)
	}
}

func TestSegment(t *testing.T) {
	e := []float64{0, 0, 5, 6, 0, 7, 0, 0, 8, 8, 8, 0}
	segs := segment(e, 1)
	// The single-frame gap at index 4 is bridged; the two-frame gap at
	// 6-7 splits.
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2", segs)
	}
	if segs[0][0] != 2 || segs[0][1] != 6 {
		t.Errorf("first segment = %v", segs[0])
	}
	if segs[1][0] != 8 || segs[1][1] != 11 {
		t.Errorf("second segment = %v", segs[1])
	}
	if got := segment([]float64{5, 5}, 1); len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Errorf("trailing segment = %v", got)
	}
}

func TestLCS(t *testing.T) {
	if got := lcs([]int{1, 3, 2, 4}, []int{1, 2, 3, 4}); got != 3 {
		t.Errorf("lcs = %d, want 3", got)
	}
	if got := lcs(nil, []int{1}); got != 0 {
		t.Errorf("lcs empty = %d", got)
	}
}
