// Package sphinx implements a keyword recognizer over synthetic 1-D
// audio in the structural style of CMU Sphinx — the paper's fourth
// supervised-learning subject. Real Sphinx decodes speech with HMMs
// over MFCC frames; our substitute keeps the stages that matter for
// autonomization: framing, energy-based voice-activity detection with a
// tunable threshold, band-energy feature frames, and DTW template
// matching with a tunable warp band.
//
// The two target variables (Table 1 lists 2 for Sphinx) are the VAD
// threshold — whose ideal value tracks the utterance's noise floor,
// recoverable from the frame-energy histogram — and the DTW warp band,
// whose ideal value tracks the speaking-rate variation.
package sphinx

import (
	"math"

	"github.com/autonomizer/autonomizer/internal/stats"
)

// Vocabulary and synthesis constants.
const (
	// VocabSize is the number of distinct keywords.
	VocabSize = 6
	// NumBands is the number of frequency bands in the feature frames.
	NumBands = 4
	// FrameLen is the analysis frame length in samples.
	FrameLen = 64
	// phonesPerWord is the number of band-dominant segments per word.
	phonesPerWord = 3
	// baseSegLen is the nominal samples per phone segment.
	baseSegLen = 4 * FrameLen
)

// bandFreqs are the normalized angular frequencies of the four bands.
var bandFreqs = [NumBands]float64{0.15, 0.35, 0.6, 0.9}

// wordPhones defines each keyword as a sequence of dominant bands.
var wordPhones = [VocabSize][phonesPerWord]int{
	{0, 1, 2},
	{2, 1, 0},
	{3, 3, 1},
	{0, 2, 0},
	{1, 3, 2},
	{2, 0, 3},
}

// Utterance is one synthetic audio workload with ground truth.
type Utterance struct {
	// Samples is the raw waveform.
	Samples []float64
	// Words is the spoken keyword sequence (ground truth).
	Words []int
	// NoiseFloor is the additive noise sigma used.
	NoiseFloor float64
	// Rate is the speaking-rate multiplier used (1 = nominal).
	Rate float64
}

// GenConfig bounds the utterance generator.
type GenConfig struct {
	// MinWords/MaxWords bound the utterance length (defaults 2-5).
	MinWords, MaxWords int
	// MaxNoise bounds the additive noise sigma (default 0.35).
	MaxNoise float64
	// MaxRateJitter bounds per-phone speaking-rate variation (default 0.5,
	// i.e. segments stretch between 0.5× and 1.5× nominal).
	MaxRateJitter float64
}

func (c *GenConfig) fillDefaults() {
	if c.MinWords == 0 {
		c.MinWords = 2
	}
	if c.MaxWords == 0 {
		c.MaxWords = 5
	}
	if c.MaxNoise == 0 {
		c.MaxNoise = 0.35
	}
	if c.MaxRateJitter == 0 {
		c.MaxRateJitter = 0.5
	}
}

// Generate synthesizes one utterance: leading silence, then each word's
// phone segments as band sinusoids with rate jitter, separated by
// silences, all over a noise floor.
func Generate(rng *stats.RNG, cfg GenConfig) *Utterance {
	cfg.fillDefaults()
	nWords := cfg.MinWords + rng.Intn(cfg.MaxWords-cfg.MinWords+1)
	noise := rng.Range(0.02, cfg.MaxNoise)
	rate := rng.Range(1-cfg.MaxRateJitter, 1+cfg.MaxRateJitter)
	amp := rng.Range(0.7, 1.3)

	var samples []float64
	silence := func(n int) {
		for i := 0; i < n; i++ {
			samples = append(samples, 0)
		}
	}
	words := make([]int, nWords)
	silence(3 * FrameLen)
	phase := 0.0
	for w := 0; w < nWords; w++ {
		word := rng.Intn(VocabSize)
		words[w] = word
		for _, band := range wordPhones[word] {
			segLen := int(float64(baseSegLen) * rate * rng.Range(0.8, 1.2))
			freq := bandFreqs[band]
			for i := 0; i < segLen; i++ {
				phase += freq
				samples = append(samples, amp*math.Sin(phase))
			}
		}
		silence(3 * FrameLen)
	}
	// Additive noise over everything.
	for i := range samples {
		samples[i] += rng.NormFloat64() * noise
	}
	return &Utterance{Samples: samples, Words: words, NoiseFloor: noise, Rate: rate}
}

// GenerateCorpus produces n utterances from a seed.
func GenerateCorpus(seed uint64, n int, cfg GenConfig) []*Utterance {
	rng := stats.NewRNG(seed)
	out := make([]*Utterance, n)
	for i := range out {
		out[i] = Generate(rng.Split(), cfg)
	}
	return out
}
