package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"simple", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{1, 1, 1, 1}); got != 0 {
		t.Errorf("variance of constant sequence = %v, want 0", got)
	}
	// Population variance of {2,4,4,4,5,5,7,9} is 4.
	got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("variance of single element = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
	lo, err := Min([]float64{3, -1, 2})
	if err != nil || lo != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", lo, err)
	}
	hi, err := Max([]float64{3, -1, 2})
	if err != nil || hi != 3 {
		t.Errorf("Max = %v, %v; want 3, nil", hi, err)
	}
}

func TestMinMaxScale(t *testing.T) {
	got := MinMaxScale([]float64{10, 20, 30})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MinMaxScale = %v, want %v", got, want)
		}
	}
	// Constant sequences must scale to zeros, not NaN.
	for _, v := range MinMaxScale([]float64{7, 7, 7}) {
		if v != 0 {
			t.Fatalf("constant scale produced %v, want 0", v)
		}
	}
	if got := MinMaxScale(nil); len(got) != 0 {
		t.Fatalf("MinMaxScale(nil) = %v, want empty", got)
	}
}

// TestMinMaxScaleProperties checks the scaling invariants with
// property-based testing: output stays within [0,1] and ordering is
// preserved.
func TestMinMaxScaleProperties(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Bound magnitudes so hi-lo cannot overflow to +Inf.
			xs[i] = math.Mod(xs[i], 1e9)
		}
		out := MinMaxScale(xs)
		if len(out) != len(xs) {
			return false
		}
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[i] < xs[j] && out[i] > out[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEuclideanDistance(t *testing.T) {
	// The worked example from the paper, Section 4: [0.1,0.3,0.4] vs
	// [0.1,0.2] with zero padding gives sqrt(0.17).
	got := EuclideanDistance([]float64{0.1, 0.3, 0.4}, []float64{0.1, 0.2})
	if !almostEqual(got, math.Sqrt(0.17), 1e-12) {
		t.Errorf("paper example distance = %v, want sqrt(0.17)=%v", got, math.Sqrt(0.17))
	}
	if got := EuclideanDistance(nil, nil); got != 0 {
		t.Errorf("distance of empty traces = %v, want 0", got)
	}
	if got := EuclideanDistance([]float64{3, 4}, nil); !almostEqual(got, 5, 1e-12) {
		t.Errorf("distance to empty = %v, want 5", got)
	}
}

// TestEuclideanDistanceMetricProperties validates symmetry and
// non-negativity, the properties Algorithm 2's pruning relies on.
func TestEuclideanDistanceMetricProperties(t *testing.T) {
	clean := func(xs []float64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			out = append(out, math.Mod(x, 1e6))
		}
		return out
	}
	prop := func(a, b []float64) bool {
		a, b = clean(a), clean(b)
		d1 := EuclideanDistance(a, b)
		d2 := EuclideanDistance(b, a)
		if d1 < 0 {
			return false
		}
		return almostEqual(d1, d2, 1e-9*(1+d1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Identity: d(a, a) == 0.
	idProp := func(a []float64) bool {
		a = clean(a)
		return EuclideanDistance(a, a) == 0
	}
	if err := quick.Check(idProp, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v, want 1", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v, want 0", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v, want 0.5", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMax([]float64{1, 3, 2}); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	// Ties resolve to the lowest index for deterministic greedy policies.
	if got := ArgMax([]float64{2, 2, 2}); got != 0 {
		t.Errorf("ArgMax tie = %d, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{1, 3})
	if !almostEqual(got[0], 0.25, 1e-12) || !almostEqual(got[1], 0.75, 1e-12) {
		t.Errorf("Normalize = %v", got)
	}
	got = Normalize([]float64{0, 0})
	if !almostEqual(got[0], 0.5, 1e-12) || !almostEqual(got[1], 0.5, 1e-12) {
		t.Errorf("Normalize zeros = %v, want uniform", got)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.1, 0.6, 0.9, 2, -3}, 2, 0, 1)
	// Buckets: [0,0.5) and [0.5,1]; 2 clamps high, -3 clamps low.
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", h)
	}
	if got := Histogram([]float64{1}, 0, 0, 1); len(got) != 0 {
		t.Errorf("zero-bucket histogram = %v", got)
	}
	if got := Histogram([]float64{1}, 3, 1, 1); Sum(got) != 0 {
		t.Errorf("degenerate-range histogram = %v, want zeros", got)
	}
}

func TestHistogramMassConserved(t *testing.T) {
	prop := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		h := Histogram(xs, 8, -10, 10)
		return Sum(h) == float64(len(xs))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed degenerated to all-zero stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// The child's next values must differ from the parent's: they are
	// separate streams.
	same := 0
	for i := 0; i < 50; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams coincide on %d of 50 draws", same)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(1234)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if m := Mean(xs); math.Abs(m) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if v := Variance(xs); math.Abs(v-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", v)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
