// Package stats provides the small statistical toolkit that the rest of
// Autonomizer builds on: summary statistics, min-max scaling, Euclidean
// trace distances (with the zero-padding rule from the paper, Section 4),
// and a deterministic splittable random number generator used to keep
// every experiment reproducible.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot operate on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples. Algorithm 2 in the paper compares this value against the
// threshold epsilon2 to prune unchanging candidate feature variables.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MinMaxScale returns a copy of xs linearly rescaled into [0, 1], matching
// sklearn's minmax_scale which the paper cites for trace normalization.
// A constant sequence scales to all zeros.
func MinMaxScale(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	span := hi - lo
	if span == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - lo) / span
	}
	return out
}

// EuclideanDistance returns the Euclidean distance between two sequences.
// Following the paper (Section 4, footnote 2), when the sequences have
// different lengths the shorter one is implicitly padded with zeros.
func EuclideanDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := av - bv
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ArgMax returns the index of the largest element of xs, or -1 for empty
// input. Ties resolve to the lowest index, which keeps greedy action
// selection deterministic.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	idx := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[idx] {
			idx = i
		}
	}
	return idx
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Normalize returns a copy of xs scaled so its elements sum to 1. If the
// sum is zero the result is a uniform distribution.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	s := Sum(xs)
	if s == 0 {
		u := 1 / float64(len(xs))
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, x := range xs {
		out[i] = x / s
	}
	return out
}

// Histogram bins xs into n equal-width buckets over [lo, hi]. Values
// outside the range clamp into the first or last bucket. The Canny subject
// feeds its gradient-magnitude histogram through this function; the
// histogram is the paper's flagship "Min-distance" feature variable.
func Histogram(xs []float64, n int, lo, hi float64) []float64 {
	out := make([]float64, n)
	if n == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		out[i]++
	}
	return out
}
