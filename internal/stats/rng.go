package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Every stochastic component of Autonomizer — weight
// initialization, epsilon-greedy exploration, synthetic workload
// generation — draws from an explicitly seeded RNG so that experiments
// replay bit-for-bit. We deliberately avoid math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to
// a fixed non-zero constant because xorshift has an all-zero fixed point.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent's by mixing in a large odd constant, which
// lets subsystems (e.g. each game environment and each network layer)
// own private generators derived from one experiment seed.
func (r *RNG) Split() *RNG {
	s := r.Uint64()*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	return NewRNG(s)
}

// SplitN derives n independent child generators in one draw sequence —
// the per-episode stream fan-out for parallel rollouts. Stream i is the
// i-th Split of r regardless of how many goroutines later consume them,
// so results reduced in stream order are independent of scheduling.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// State exposes the generator's internal state word so that durable
// training checkpoints can capture the exact stream position; a stream
// restored with SetState continues bit-for-bit where the original left
// off (the WAL-backed fit-resume contract relies on this).
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds or fast-forwards the generator to a state previously
// returned by State. A zero state is remapped like a zero seed.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, mirroring math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Range returns a uniformly distributed value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}
