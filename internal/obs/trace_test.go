package obs

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestTraceparentRoundTrip pins the wire format: ids survive
// format→parse bit-exactly.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		traceID, spanID := NewTraceID(), NewSpanID()
		h := FormatTraceparent(traceID, spanID)
		gotTrace, gotSpan, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", h, err)
		}
		if gotTrace != traceID || gotSpan != spanID {
			t.Fatalf("round trip mangled ids: %q -> (%q, %q), want (%q, %q)",
				h, gotTrace, gotSpan, traceID, spanID)
		}
	}
	if h := FormatTraceparent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"); h != "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01" {
		t.Fatalf("unexpected header rendering %q", h)
	}
}

// TestParseTraceparentMalformed pins strict W3C validation: every
// malformed header is rejected, never half-parsed.
func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, err := ParseTraceparent(valid); err != nil {
		t.Fatalf("reference header rejected: %v", err)
	}
	bad := map[string]string{
		"empty":             "",
		"garbage":           "not-a-traceparent",
		"too few fields":    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
		"five fields":       valid + "-extra",
		"short trace id":    "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",
		"short span id":     "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-01",
		"uppercase hex":     "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"non-hex trace id":  "00-0ag7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"zero trace id":     "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero span id":      "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"version ff":        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"short version":     "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"non-hex flags":     "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"surrounding space": " " + valid + " ",
	}
	for name, h := range bad {
		if _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("%s: header %q accepted, want rejection", name, h)
		}
	}
}

// TestContinueFromHeader checks the server-side continuation contract:
// a valid header installs the remote parent (the next span joins the
// caller's trace), an empty header is a silent no-op, and a malformed
// header returns the context unchanged plus a non-nil error.
func TestContinueFromHeader(t *testing.T) {
	old := SetTracing(true)
	defer SetTracing(old)

	traceID, spanID := NewTraceID(), NewSpanID()
	ctx, err := ContinueFromHeader(context.Background(), FormatTraceparent(traceID, spanID))
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, gotSpan, ok := SpanContextFrom(ctx)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("continued context carries (%q, %q, %v), want (%q, %q, true)",
			gotTrace, gotSpan, ok, traceID, spanID)
	}
	_, sp := StartSpan(ctx, "server.op")
	if sp.TraceID() != traceID {
		t.Errorf("span under remote parent has trace %q, want %q", sp.TraceID(), traceID)
	}
	sp.End(nil)

	base := context.Background()
	if got, err := ContinueFromHeader(base, ""); err != nil || got != base {
		t.Errorf("empty header: (%v, %v), want unchanged context and nil error", got, err)
	}
	if got, err := ContinueFromHeader(base, "junk"); err == nil || got != base {
		t.Errorf("malformed header: (%v, %v), want unchanged context and an error", got, err)
	}
}

// TestInjectTraceparent checks the client-side injection gate: the
// header appears only when tracing is on and the context carries a
// span.
func TestInjectTraceparent(t *testing.T) {
	old := SetTracing(true)
	defer SetTracing(old)

	ctx, sp := StartSpan(context.Background(), "client.op")
	h := make(http.Header)
	InjectTraceparent(ctx, h)
	wire := h.Get(TraceparentHeader)
	traceID, spanID, err := ParseTraceparent(wire)
	if err != nil {
		t.Fatalf("injected header %q does not parse: %v", wire, err)
	}
	if traceID != sp.TraceID() || spanID != sp.SpanID() {
		t.Errorf("injected (%q, %q), want the live span's (%q, %q)",
			traceID, spanID, sp.TraceID(), sp.SpanID())
	}
	sp.End(nil)

	h = make(http.Header)
	InjectTraceparent(context.Background(), h)
	if got := h.Get(TraceparentHeader); got != "" {
		t.Errorf("injection without a span set %q, want no header", got)
	}

	SetTracing(false)
	h = make(http.Header)
	InjectTraceparent(ctx, h)
	if got := h.Get(TraceparentHeader); got != "" {
		t.Errorf("injection with tracing off set %q, want no header", got)
	}
}

// TestSpanTraceIdentity checks id plumbing through StartSpan: roots
// mint a fresh trace, children inherit it and record the parent's span
// id, and links land in the ring record.
func TestSpanTraceIdentity(t *testing.T) {
	oldT := SetTracing(true)
	defer SetTracing(oldT)
	prev := SetDefault(nil)
	defer SetDefault(prev)

	ctx, root := StartSpan(context.Background(), "root")
	if len(root.TraceID()) != 32 || len(root.SpanID()) != 16 {
		t.Fatalf("root ids (%q, %q), want 32- and 16-hex", root.TraceID(), root.SpanID())
	}
	_, child := StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %q, want inherited %q", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() {
		t.Error("child reused the parent's span id")
	}
	linkTrace, linkSpan := NewTraceID(), NewSpanID()
	child.AddLink(linkTrace, linkSpan)
	child.AddLink("", "ignored") // incomplete links are dropped
	child.End(nil)
	root.End(nil)

	var rec *SpanRecord
	for _, r := range RecentSpans() {
		if r.Name == "child" && r.SpanID == child.SpanID() {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatal("child span missing from the ring")
	}
	if rec.TraceID != root.TraceID() || rec.ParentID != root.SpanID() {
		t.Errorf("record identity (%q, parent %q), want (%q, %q)",
			rec.TraceID, rec.ParentID, root.TraceID(), root.SpanID())
	}
	if len(rec.Links) != 1 || rec.Links[0] != (SpanLink{TraceID: linkTrace, SpanID: linkSpan}) {
		t.Errorf("record links %+v, want the one added link", rec.Links)
	}
}

// TestParseSpanBuffer pins the AUTONOMIZER_SPAN_BUFFER validation
// bounds (mirroring AUTONOMIZER_WORKERS: reject loudly, never clamp
// silently).
func TestParseSpanBuffer(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{
		{"1", true}, {"256", true}, {" 512 ", true},
		{fmt.Sprint(maxSpanBuffer), true},
		{"0", false}, {"-4", false}, {"abc", false}, {"", false},
		{fmt.Sprint(maxSpanBuffer + 1), false},
	} {
		_, err := parseSpanBuffer(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseSpanBuffer(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
	}
}

// TestSetSpanBuffer checks live resizing: shrinking keeps the newest
// records, overflow past the capacity evicts oldest-first, and
// out-of-range sizes are rejected without touching the ring.
func TestSetSpanBuffer(t *testing.T) {
	oldT := SetTracing(true)
	defer SetTracing(oldT)
	prev := SetDefault(nil)
	defer SetDefault(prev)
	orig := SpanBufferSize()
	defer func() {
		if err := SetSpanBuffer(orig); err != nil {
			t.Fatal(err)
		}
	}()

	emit := func(name string) {
		_, sp := StartSpan(context.Background(), name)
		sp.End(nil)
	}

	if err := SetSpanBuffer(4); err != nil {
		t.Fatal(err)
	}
	if got := SpanBufferSize(); got != 4 {
		t.Fatalf("SpanBufferSize = %d, want 4", got)
	}
	for i := 0; i < 6; i++ {
		emit(fmt.Sprintf("s%d", i))
	}
	recs := RecentSpans()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d records, want capacity 4", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("s%d", i+2); r.Name != want {
			t.Errorf("ring[%d] = %q, want %q (overflow must evict oldest)", i, r.Name, want)
		}
	}

	// Shrinking keeps the newest tail.
	if err := SetSpanBuffer(2); err != nil {
		t.Fatal(err)
	}
	recs = RecentSpans()
	if len(recs) != 2 || recs[0].Name != "s4" || recs[1].Name != "s5" {
		t.Fatalf("after shrink ring = %v, want [s4 s5]", names(recs))
	}

	// Growing preserves contents and accepts more.
	if err := SetSpanBuffer(8); err != nil {
		t.Fatal(err)
	}
	emit("s6")
	recs = RecentSpans()
	if len(recs) != 3 || recs[2].Name != "s6" {
		t.Fatalf("after grow ring = %v, want [s4 s5 s6]", names(recs))
	}

	for _, n := range []int{0, -1, maxSpanBuffer + 1} {
		if err := SetSpanBuffer(n); err == nil {
			t.Errorf("SetSpanBuffer(%d) accepted, want rejection", n)
		}
	}
	if got := SpanBufferSize(); got != 8 {
		t.Errorf("rejected resize changed capacity to %d", got)
	}
}

func names(recs []SpanRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

// TestSpanConcurrency hammers the span path from many goroutines —
// Span End into the shared ring, RecentSpans snapshots, ring resizes
// and WritePrometheus renders all interleaved. Run under -race in CI;
// the assertions here are liveness plus well-formed output.
func TestSpanConcurrency(t *testing.T) {
	oldT := SetTracing(true)
	defer SetTracing(oldT)
	prev := SetDefault(NewRegistry())
	defer SetDefault(prev)
	orig := SpanBufferSize()
	defer func() {
		if err := SetSpanBuffer(orig); err != nil {
			t.Fatal(err)
		}
	}()

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, parent := StartSpan(context.Background(), "hammer.parent")
				_, child := StartSpan(ctx, "hammer.child")
				child.AddLink(NewTraceID(), NewSpanID())
				child.End(nil)
				parent.End(nil)
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, r := range RecentSpans() {
				if r.Name == "" {
					t.Error("ring returned an empty record")
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		var sb strings.Builder
		for i := 0; i < 100; i++ {
			sb.Reset()
			if err := Default().WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	for _, n := range []int{64, 512, 128} {
		if err := SetSpanBuffer(n); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	h := Default().Histogram("autonomizer_span_duration_seconds", "", nil, Labels{"span": "hammer.child"})
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("span histogram count %d, want %d", got, workers*perWorker)
	}
}
