package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// DriftMonitor measures model faithfulness online: the rolling-window
// mean squared error of served predictions against the ground-truth
// observations that later flow back through WriteBack. A surrogate is
// only useful while it remains faithful and cheap; the serving layer
// measures cost (latency quantiles) and this monitor measures
// faithfulness, turning "the process is up" health into "this model is
// still worth querying". When the rolling loss of a model exceeds the
// configured threshold its verdict flips unhealthy, which the serving
// layer surfaces as a not-ready /healthz?deep=1 — the hook the
// online-learning auto-rollback will pull (ROADMAP).

// DriftConfig tunes a DriftMonitor. The zero value selects the
// documented defaults.
type DriftConfig struct {
	// Window is the rolling window the loss is averaged over
	// (default 1 minute).
	Window time.Duration
	// Slices is the window's time-slice resolution (default 6).
	Slices int
	// Threshold is the rolling mean-squared-error above which a model's
	// verdict flips unhealthy. Zero (the default) records and exports
	// drift but never flips the verdict — monitor-only mode.
	Threshold float64
	// MinSamples is how many observations the window must hold before a
	// verdict is rendered (default 8): one outlier must not drain a
	// replica.
	MinSamples int
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.Slices < 1 {
		c.Slices = 6
	}
	if c.Threshold < 0 {
		c.Threshold = 0
	}
	if c.MinSamples < 1 {
		c.MinSamples = 8
	}
	return c
}

// DriftStatus is one model's current drift verdict.
type DriftStatus struct {
	Model     string  `json:"model"`
	Loss      float64 `json:"loss"`
	Samples   int     `json:"samples"`
	Threshold float64 `json:"threshold"`
	Healthy   bool    `json:"healthy"`
}

// driftWindow is one model's rolling loss accumulator plus its cached
// instruments. All fields are guarded by the monitor's mutex —
// recording ground truth is orders of magnitude rarer than serving
// predictions, so this is not a hot path.
type driftWindow struct {
	start  int64 // unixnano start of the current slice
	cur    int
	sums   []float64
	counts []int

	lossG    *Gauge
	healthyG *Gauge
	obsC     *Counter
}

// DriftMonitor tracks rolling prediction loss per model. A nil monitor
// is a no-op whose verdicts are always healthy. Construct with
// NewDriftMonitor; safe for concurrent use.
type DriftMonitor struct {
	cfg DriftConfig
	reg *Registry

	mu     sync.Mutex
	models map[string]*driftWindow
}

// NewDriftMonitor builds a monitor with the given config, exporting
// per-model gauges into reg (nil reg disables the metrics, keeping the
// verdict machinery).
func NewDriftMonitor(cfg DriftConfig, reg *Registry) *DriftMonitor {
	return &DriftMonitor{cfg: cfg.withDefaults(), reg: reg, models: make(map[string]*driftWindow)}
}

// Threshold reports the configured unhealthy threshold (0 on nil or in
// monitor-only mode).
func (m *DriftMonitor) Threshold() float64 {
	if m == nil {
		return 0
	}
	return m.cfg.Threshold
}

// Window reports the configured rolling window (0 on nil).
func (m *DriftMonitor) Window() time.Duration {
	if m == nil {
		return 0
	}
	return m.cfg.Window
}

// Record adds one prediction/observation pair for a model: the loss is
// the mean squared error across the vector's elements. It returns the
// model's updated status. Mismatched or empty vectors are an error and
// record nothing.
func (m *DriftMonitor) Record(model string, predicted, observed []float64) (DriftStatus, error) {
	if m == nil {
		return DriftStatus{Model: model, Healthy: true}, nil
	}
	if len(predicted) == 0 || len(predicted) != len(observed) {
		return DriftStatus{}, fmt.Errorf("obs: drift observation for %q needs matching non-empty vectors (got %d predicted, %d observed)",
			model, len(predicted), len(observed))
	}
	var loss float64
	for i, p := range predicted {
		d := p - observed[i]
		loss += d * d
	}
	loss /= float64(len(predicted))
	return m.recordAt(model, loss, time.Now().UnixNano()), nil
}

// recordAt is Record's clock-injected core (tests slide the window
// without sleeping).
func (m *DriftMonitor) recordAt(model string, loss float64, now int64) DriftStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.models[model]
	if !ok {
		w = &driftWindow{
			start:  now,
			sums:   make([]float64, m.cfg.Slices),
			counts: make([]int, m.cfg.Slices),
		}
		if m.reg != nil {
			lbl := Labels{"model": model}
			w.lossG = m.reg.Gauge("autonomizer_drift_loss",
				"Rolling-window mean squared error of served predictions against observed ground truth, per model.", lbl)
			w.healthyG = m.reg.Gauge("autonomizer_drift_healthy",
				"1 while the model's rolling drift loss is within threshold (or below the sample floor), else 0.", lbl)
			w.obsC = m.reg.Counter("autonomizer_drift_observations_total",
				"Ground-truth observations recorded against served predictions, per model.", lbl)
		}
		m.models[model] = w
	}
	m.rotate(w, now)
	w.sums[w.cur] += loss
	w.counts[w.cur]++
	st := m.statusLocked(model, w)
	w.obsC.Inc()
	w.lossG.Set(st.Loss)
	if st.Healthy {
		w.healthyG.Set(1)
	} else {
		w.healthyG.Set(0)
	}
	return st
}

// rotate advances w's slice ring to cover now.
func (m *DriftMonitor) rotate(w *driftWindow, now int64) {
	sliceDur := int64(m.cfg.Window) / int64(m.cfg.Slices)
	if sliceDur < 1 {
		sliceDur = 1
	}
	if now-w.start >= int64(m.cfg.Window)+sliceDur {
		for i := range w.sums {
			w.sums[i], w.counts[i] = 0, 0
		}
		w.start = now
		return
	}
	for now-w.start >= sliceDur {
		w.cur = (w.cur + 1) % len(w.sums)
		w.sums[w.cur], w.counts[w.cur] = 0, 0
		w.start += sliceDur
	}
}

// statusLocked computes a model's verdict; callers hold m.mu.
func (m *DriftMonitor) statusLocked(model string, w *driftWindow) DriftStatus {
	var sum float64
	var n int
	for i := range w.sums {
		sum += w.sums[i]
		n += w.counts[i]
	}
	st := DriftStatus{Model: model, Samples: n, Threshold: m.cfg.Threshold, Healthy: true}
	if n > 0 {
		st.Loss = sum / float64(n)
	}
	if m.cfg.Threshold > 0 && n >= m.cfg.MinSamples && st.Loss > m.cfg.Threshold {
		st.Healthy = false
	}
	return st
}

// Status returns one model's drift verdict; ok is false when the model
// has no observations yet.
func (m *DriftMonitor) Status(model string) (DriftStatus, bool) {
	if m == nil {
		return DriftStatus{Model: model, Healthy: true}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.models[model]
	if !ok {
		return DriftStatus{Model: model, Healthy: true}, false
	}
	m.rotate(w, time.Now().UnixNano())
	return m.statusLocked(model, w), true
}

// Statuses returns every observed model's verdict, sorted by model
// name.
func (m *DriftMonitor) Statuses() []DriftStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	now := time.Now().UnixNano()
	out := make([]DriftStatus, 0, len(m.models))
	for name, w := range m.models {
		m.rotate(w, now)
		out = append(out, m.statusLocked(name, w))
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Healthy returns nil while every observed model's verdict is healthy,
// else an error naming the first drifting model — the readiness hook.
func (m *DriftMonitor) Healthy() error {
	for _, st := range m.Statuses() {
		if !st.Healthy {
			return fmt.Errorf("obs: model %q is drifting: rolling loss %.6g exceeds threshold %.6g over %d observations",
				st.Model, st.Loss, st.Threshold, st.Samples)
		}
	}
	return nil
}
