// Package obs is the Autonomizer runtime's telemetry layer: a
// dependency-free (stdlib-only) metrics registry, structured logging on
// log/slog, and lightweight span tracing, with HTTP endpoints exporting
// everything in Prometheus text format, expvar JSON and net/http/pprof.
//
// The paper's runtime silently records features, trains and queries
// models; a production autonomized system serving real traffic has to
// answer "which primitive is slow, which model is drifting, which
// worker pool is starved" without a debugger attached. Every subsystem
// of this runtime (core primitives, nn training, rl agents, the
// parallel pool, the database store, the checkpoint manager) reports
// into this package.
//
// # Disabled-by-default, zero-cost when disabled
//
// Telemetry is off unless a process opts in (Enable, or the
// -telemetry flag of cmd/autonomizer). The contract, relied on by every
// instrumentation site and proven by BenchmarkObsOverhead
// (BENCH_obs.json), is:
//
//   - Default() returns nil while telemetry is disabled.
//   - Every Registry method is nil-safe and returns nil instruments.
//   - Every instrument method (Counter.Inc, Gauge.Set,
//     Histogram.Observe, Timer.Stop, Span.End, ...) is nil-safe and
//     returns immediately, before any allocation or time.Now call.
//
// So an instrumented hot path holding nil instruments pays one
// predictable nil-check branch per site and nothing else.
//
// # Metric naming
//
// All metrics follow autonomizer_<subsystem>_<name>_<unit>
// (DESIGN.md §5c): e.g. autonomizer_core_primitive_duration_seconds,
// autonomizer_parallel_tasks_running, autonomizer_db_store_bytes.
// Label cardinality is bounded by construction: labels only carry
// closed vocabularies (primitive names, auerr error classes, optimizer
// names, model names from the host's au_config calls) — never inputs,
// never per-call values.
package obs

import "sync/atomic"

// def is the process-wide default registry; nil means telemetry is
// disabled, which is the zero-cost default.
var def atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil while telemetry is
// disabled. Instrumentation sites pass the result straight into
// instrument lookups; the nil short-circuits compose all the way down.
func Default() *Registry { return def.Load() }

// Enable switches process-wide telemetry on (idempotently) and returns
// the default registry. Components that cache instruments at
// construction time (runtimes, optimizers, agents) must be created
// after Enable to be observed.
func Enable() *Registry {
	if r := def.Load(); r != nil {
		return r
	}
	r := NewRegistry()
	if def.CompareAndSwap(nil, r) {
		return r
	}
	return def.Load()
}

// SetDefault replaces the default registry (nil disables telemetry) and
// returns the previous value, so tests and benchmarks can restore it
// with defer.
func SetDefault(r *Registry) *Registry { return def.Swap(r) }
