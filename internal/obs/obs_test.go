package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestSpanDisabled checks that StartSpan with tracing off returns the
// context untouched and a nil span whose End is a no-op.
func TestSpanDisabled(t *testing.T) {
	old := SetTracing(false)
	defer SetTracing(old)
	ctx := context.Background()
	got, sp := StartSpan(ctx, "x")
	if got != ctx {
		t.Fatal("disabled StartSpan replaced the context")
	}
	if sp != nil {
		t.Fatal("disabled StartSpan returned a live span")
	}
	sp.End(nil) // must not panic
}

// TestSpanRecording checks parent attribution through the context, the
// ring buffer, and the span-duration histogram.
func TestSpanRecording(t *testing.T) {
	oldT := SetTracing(true)
	defer SetTracing(oldT)
	prev := SetDefault(NewRegistry())
	defer SetDefault(prev)

	ctx, parent := StartSpan(context.Background(), "au_fit")
	_, child := StartSpan(ctx, "au_nn")
	child.End(errors.New("boom"))
	parent.End(nil)

	recs := RecentSpans()
	if len(recs) < 2 {
		t.Fatalf("RecentSpans returned %d records, want >= 2", len(recs))
	}
	var sawChild, sawParent bool
	for _, r := range recs {
		if r.Name == "au_nn" && r.Parent == "au_fit" && r.Err == "boom" {
			sawChild = true
		}
		if r.Name == "au_fit" && r.Parent == "" && r.Err == "" {
			sawParent = true
		}
	}
	if !sawChild || !sawParent {
		t.Fatalf("missing span records (child %v, parent %v): %+v", sawChild, sawParent, recs)
	}
	h := Default().Histogram("autonomizer_span_duration_seconds", "", nil, Labels{"span": "au_nn"})
	if h.Count() == 0 {
		t.Fatal("span duration histogram recorded nothing")
	}
}

// TestConfigureLog checks text/json switching, the error on unknown
// formats, and the shared dynamic level.
func TestConfigureLog(t *testing.T) {
	old := Logger()
	defer SetLogger(old)

	var buf bytes.Buffer
	if err := ConfigureLog("json", &buf); err != nil {
		t.Fatal(err)
	}
	Logger().Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line does not parse: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("unexpected json record: %v", rec)
	}

	if err := ConfigureLog("yaml", &buf); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := SetLogLevel("nope"); err == nil {
		t.Fatal("unknown level accepted")
	}

	buf.Reset()
	if err := ConfigureLog("text", &buf); err != nil {
		t.Fatal(err)
	}
	if err := SetLogLevel("warn"); err != nil {
		t.Fatal(err)
	}
	Logger().Info("dropped")
	Logger().Warn("kept")
	if got := buf.String(); strings.Contains(got, "dropped") || !strings.Contains(got, "kept") {
		t.Fatalf("level filter failed:\n%s", got)
	}
	if err := SetLogLevel("info"); err != nil {
		t.Fatal(err)
	}
}

// TestWithChild checks attribute inheritance on derived loggers.
func TestWithChild(t *testing.T) {
	old := Logger()
	defer SetLogger(old)
	var buf bytes.Buffer
	if err := ConfigureLog("json", &buf); err != nil {
		t.Fatal(err)
	}
	With("mode", "TR").Info("x")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["mode"] != "TR" {
		t.Fatalf("child attribute lost: %v", rec)
	}
}

// TestHandlerEndpoints checks /metrics (503 disabled, 200 enabled with
// the exposition content type), /debug/vars and /debug/spans.
func TestHandlerEndpoints(t *testing.T) {
	prev := SetDefault(nil)
	defer SetDefault(prev)
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("/metrics")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/metrics while disabled: %d, want 503", resp.StatusCode)
	}

	SetDefault(NewRegistry())
	Default().Counter("autonomizer_http_test_total", "h", nil).Inc()
	resp = get("/metrics")
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if !strings.Contains(body.String(), "autonomizer_http_test_total 1") {
		t.Fatalf("metric missing from exposition:\n%s", body.String())
	}

	for _, path := range []string{"/debug/vars", "/debug/spans"} {
		resp = get(path)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestServeShutdown checks Serve stops cleanly on context cancellation.
func TestServeShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, "127.0.0.1:0") }()
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on cancellation, want nil", err)
	}
}
