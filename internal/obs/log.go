package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
)

// logger holds the process-wide structured logger. The default is a
// text handler on stderr at Info level, so a program that never touches
// telemetry sees ordinary human-readable diagnostics.
var logger atomic.Pointer[slog.Logger]

// level is the dynamic log level shared by every handler ConfigureLog
// installs, so verbosity can change without rebuilding child loggers.
var level slog.LevelVar

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: &level})))
}

// Logger returns the process-wide structured logger. Subsystems derive
// children with With; the CLIs route every incidental diagnostic
// through it so -log-format json yields machine-parseable output with
// no stray lines.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the process-wide logger and returns the previous
// one, for tests.
func SetLogger(l *slog.Logger) *slog.Logger {
	old := logger.Load()
	if l != nil {
		logger.Store(l)
	}
	return old
}

// With returns a child of the process-wide logger carrying the given
// attributes (the per-Runtime loggers are built this way).
func With(args ...any) *slog.Logger { return Logger().With(args...) }

// ConfigureLog installs a handler writing to w in the given format
// ("text" or "json"). An unknown format is an error and leaves the
// current logger untouched.
func ConfigureLog(format string, w io.Writer) error {
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: &level}
	switch strings.ToLower(format) {
	case "", "text":
		logger.Store(slog.New(slog.NewTextHandler(w, opts)))
	case "json":
		logger.Store(slog.New(slog.NewJSONHandler(w, opts)))
	default:
		return fmt.Errorf(`obs: unknown log format %q (want "text" or "json")`, format)
	}
	return nil
}

// SetLogLevel sets the minimum level for handlers installed by this
// package ("debug", "info", "warn", "error").
func SetLogLevel(name string) error {
	switch strings.ToLower(name) {
	case "debug":
		level.Set(slog.LevelDebug)
	case "", "info":
		level.Set(slog.LevelInfo)
	case "warn", "warning":
		level.Set(slog.LevelWarn)
	case "error":
		level.Set(slog.LevelError)
	default:
		return fmt.Errorf("obs: unknown log level %q", name)
	}
	return nil
}
