package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Summary is a sliding-window quantile estimator rendered as a
// Prometheus summary: p50/p95/p99/p999 of the observations made during
// the last window, plus cumulative _sum and _count.
//
// Histograms answer "what does the all-time latency distribution look
// like"; a drained fleet router needs "what is p99 *right now*". The
// estimator is log-bucketed: observations land in one of ~120
// geometric buckets (4 per octave from 1µs, so quantile answers carry
// at most ~9% relative error — plenty for latency SLOs spanning five
// orders of magnitude) held in S time slices that rotate every
// window/S. Observation is lock-free (one atomic add per bucket hit
// plus the cumulative sum CAS); rotation and queries take a mutex.
//
// A nil *Summary is a no-op, matching the other instruments'
// zero-cost-when-disabled contract.
type Summary struct {
	sliceDur int64 // nanoseconds per slice
	window   int64 // nanoseconds covered by all slices

	mu     sync.Mutex // guards rotation and queries
	cur    atomic.Int64
	start  atomic.Int64 // unixnano start of the current slice
	slices []summarySlice

	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Log-bucket layout: bucket 0 is the sub-floor bucket; bucket i >= 1
// covers (qFloor*2^((i-1)/K), qFloor*2^(i/K)] with K buckets per
// octave. 30 octaves above the 1µs floor reach ~1073s, past any
// latency this runtime can produce.
const (
	qFloor        = 1e-6
	qPerOctave    = 4
	qOctaves      = 30
	qBucketCount  = 1 + qOctaves*qPerOctave
	defaultWindow = time.Minute
	defaultSlices = 6
)

type summarySlice struct {
	counts [qBucketCount]atomic.Uint64
}

// SummaryQuantiles are the objectives every Summary renders, the
// p50/p95/p99/p999 ladder of the serving SLOs.
var SummaryQuantiles = []float64{0.5, 0.95, 0.99, 0.999}

// NewSummary builds an estimator over the given window split into
// slices time slices. Non-positive arguments select the defaults
// (1 minute, 6 slices).
func NewSummary(window time.Duration, slices int) *Summary {
	if window <= 0 {
		window = defaultWindow
	}
	if slices < 1 {
		slices = defaultSlices
	}
	s := &Summary{
		sliceDur: int64(window) / int64(slices),
		window:   int64(window),
		slices:   make([]summarySlice, slices),
	}
	if s.sliceDur < 1 {
		s.sliceDur = 1
	}
	s.start.Store(time.Now().UnixNano())
	return s
}

// qBucketIdx maps a value in seconds to its log bucket.
func qBucketIdx(v float64) int {
	if !(v > qFloor) { // catches v <= qFloor, NaN, negatives
		return 0
	}
	i := 1 + int(math.Log2(v/qFloor)*qPerOctave)
	if i >= qBucketCount {
		return qBucketCount - 1
	}
	return i
}

// qBucketValue is the representative value reported for a bucket: the
// geometric midpoint of its bounds.
func qBucketValue(i int) float64 {
	if i <= 0 {
		return qFloor
	}
	return qFloor * math.Exp2((float64(i)-0.5)/qPerOctave)
}

// Observe records one value (in seconds for latency summaries).
func (s *Summary) Observe(v float64) {
	if s == nil {
		return
	}
	s.observeAt(v, time.Now().UnixNano())
}

func (s *Summary) observeAt(v float64, now int64) {
	s.maybeRotate(now)
	// An observation racing a rotation may land in a slice that was just
	// cleared or is about to be — one sample attributed one slice off,
	// harmless for a sliding-window estimate.
	s.slices[s.cur.Load()].counts[qBucketIdx(v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// maybeRotate advances the slice ring to cover now, clearing expired
// slices. The unlocked check keeps the hot path to one atomic load.
func (s *Summary) maybeRotate(now int64) {
	if now-s.start.Load() < s.sliceDur {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if now-s.start.Load() >= s.window+s.sliceDur {
		// Idle gap longer than the whole window: everything expired.
		for i := range s.slices {
			s.clearSlice(i)
		}
		s.start.Store(now)
		return
	}
	for now-s.start.Load() >= s.sliceDur {
		next := (s.cur.Load() + 1) % int64(len(s.slices))
		s.clearSlice(int(next))
		s.cur.Store(next)
		s.start.Add(s.sliceDur)
	}
}

func (s *Summary) clearSlice(i int) {
	for b := range s.slices[i].counts {
		s.slices[i].counts[b].Store(0)
	}
}

// Count returns the cumulative number of observations (0 on nil).
func (s *Summary) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Sum returns the cumulative sum of observed values (0 on nil).
func (s *Summary) Sum() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) of the observations in
// the sliding window. It returns NaN when the window is empty, which
// Prometheus renders as an explicit unknown.
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return math.NaN()
	}
	return s.quantileAt(q, time.Now().UnixNano())
}

func (s *Summary) quantileAt(q float64, now int64) float64 {
	s.maybeRotate(now)
	s.mu.Lock()
	defer s.mu.Unlock()
	var merged [qBucketCount]uint64
	var total uint64
	for i := range s.slices {
		for b := range merged {
			c := s.slices[i].counts[b].Load()
			merged[b] += c
			total += c
		}
	}
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b, c := range merged {
		cum += c
		if cum >= rank {
			return qBucketValue(b)
		}
	}
	return qBucketValue(qBucketCount - 1)
}
