package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// The process status surface: /statusz renders a JSON snapshot of
// process-level facts plus whatever sections subsystems register, and
// /healthz splits liveness ("the process answers") from readiness
// ("every registered check passes") so a fleet router can drain a
// process that is alive but no longer fit to serve — the deep-health
// contract DESIGN.md §5h documents.

// processStart anchors the uptime field.
var processStart = time.Now()

// Uptime reports how long the process has been up.
func Uptime() time.Duration { return time.Since(processStart) }

var statusReg struct {
	mu       sync.Mutex
	sections map[string]func() any
}

// RegisterStatus adds (or replaces) a named section of the /statusz
// snapshot; fn is called at render time. A nil fn removes the section.
// Last writer wins, mirroring GaugeFunc, so a succession of subsystem
// instances can each export "the live one".
func RegisterStatus(name string, fn func() any) {
	statusReg.mu.Lock()
	defer statusReg.mu.Unlock()
	if statusReg.sections == nil {
		statusReg.sections = make(map[string]func() any)
	}
	if fn == nil {
		delete(statusReg.sections, name)
		return
	}
	statusReg.sections[name] = fn
}

// StatusSnapshot renders the /statusz document: process-level facts
// (uptime, runtime, telemetry posture) plus every registered section
// under its name.
func StatusSnapshot() map[string]any {
	out := map[string]any{
		"uptime_seconds": Uptime().Seconds(),
		"go_version":     runtime.Version(),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"tracing":        TracingEnabled(),
		"metrics":        Default() != nil,
		"span_buffer":    SpanBufferSize(),
	}
	statusReg.mu.Lock()
	fns := make(map[string]func() any, len(statusReg.sections))
	for name, fn := range statusReg.sections {
		fns[name] = fn
	}
	statusReg.mu.Unlock()
	// Sections render outside the lock: a section callback may itself
	// take subsystem locks, and render time is not a hot path.
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

var readyReg struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// RegisterReadiness adds (or replaces) a named readiness check run by
// deep health queries: fn returns nil while the subsystem is fit to
// serve. A nil fn removes the check. Liveness is never affected —
// /healthz without ?deep=1 answers 200 while the process can answer at
// all.
func RegisterReadiness(name string, fn func() error) {
	readyReg.mu.Lock()
	defer readyReg.mu.Unlock()
	if readyReg.checks == nil {
		readyReg.checks = make(map[string]func() error)
	}
	if fn == nil {
		delete(readyReg.checks, name)
		return
	}
	readyReg.checks[name] = fn
}

// ReadinessReport runs every registered check and returns the overall
// verdict plus each check's outcome ("ok" or the failure message),
// keys sorted for deterministic rendering. No checks registered means
// ready.
func ReadinessReport() (ready bool, checks map[string]string) {
	readyReg.mu.Lock()
	fns := make(map[string]func() error, len(readyReg.checks))
	for name, fn := range readyReg.checks {
		fns[name] = fn
	}
	readyReg.mu.Unlock()
	ready = true
	checks = make(map[string]string, len(fns))
	names := make([]string, 0, len(fns))
	for name := range fns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := fns[name](); err != nil {
			checks[name] = err.Error()
			ready = false
		} else {
			checks[name] = "ok"
		}
	}
	return ready, checks
}
