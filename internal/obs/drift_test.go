package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestDriftThresholdFlip pins the verdict lifecycle: healthy below the
// sample floor however bad the loss, unhealthy once MinSamples
// high-loss observations accumulate, healthy again after the window
// slides past them.
func TestDriftThresholdFlip(t *testing.T) {
	window := time.Minute
	m := NewDriftMonitor(DriftConfig{Window: window, Slices: 6, Threshold: 0.01, MinSamples: 4}, nil)
	now := time.Now().UnixNano()

	// Three terrible observations: below the floor, still healthy.
	var st DriftStatus
	for i := 0; i < 3; i++ {
		st = m.recordAt("m", 1.0, now)
	}
	if !st.Healthy || st.Samples != 3 {
		t.Fatalf("below sample floor: %+v, want healthy with 3 samples", st)
	}
	if err := m.Healthy(); err != nil {
		t.Fatalf("Healthy below floor: %v", err)
	}

	// The fourth crosses MinSamples: verdict flips.
	st = m.recordAt("m", 1.0, now)
	if st.Healthy {
		t.Fatalf("at sample floor with loss 1.0 > 0.01: %+v, want unhealthy", st)
	}
	err := m.Healthy()
	if err == nil || !strings.Contains(err.Error(), `"m"`) {
		t.Fatalf("Healthy while drifting: %v, want an error naming the model", err)
	}

	// A full window later the bad cohort has expired; fresh good
	// observations render a healthy verdict again.
	later := now + 2*int64(window)
	for i := 0; i < 5; i++ {
		st = m.recordAt("m", 0.001, later)
	}
	if !st.Healthy || st.Loss > 0.01 {
		t.Fatalf("after recovery: %+v, want healthy with the bad cohort expired", st)
	}
	if err := m.Healthy(); err != nil {
		t.Fatalf("Healthy after recovery: %v", err)
	}
}

// TestDriftMonitorOnly checks threshold 0: drift is measured and
// reported but the verdict never flips.
func TestDriftMonitorOnly(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{MinSamples: 1}, nil)
	now := time.Now().UnixNano()
	var st DriftStatus
	for i := 0; i < 100; i++ {
		st = m.recordAt("m", 1e9, now)
	}
	if !st.Healthy {
		t.Fatalf("monitor-only mode flipped the verdict: %+v", st)
	}
	if st.Loss != 1e9 {
		t.Errorf("loss %v, want 1e9 (still measured)", st.Loss)
	}
	if err := m.Healthy(); err != nil {
		t.Errorf("Healthy in monitor-only mode: %v", err)
	}
}

// TestDriftRecord checks the MSE computation and the vector validation.
func TestDriftRecord(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{MinSamples: 1}, nil)
	st, err := m.Record("m", []float64{1, 2}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	// MSE of (0, -2) is 2.
	if math.Abs(st.Loss-2) > 1e-12 || st.Samples != 1 {
		t.Fatalf("Record status %+v, want loss 2 over 1 sample", st)
	}

	if _, err := m.Record("m", nil, nil); err == nil {
		t.Error("empty vectors accepted")
	}
	if _, err := m.Record("m", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched vectors accepted")
	}
	// Failed records must not pollute the window.
	if st, ok := m.Status("m"); !ok || st.Samples != 1 {
		t.Errorf("after rejected records: %+v, want the single valid sample", st)
	}
}

// TestDriftStatuses checks multi-model reporting order and the unknown
// model answer.
func TestDriftStatuses(t *testing.T) {
	m := NewDriftMonitor(DriftConfig{MinSamples: 1}, nil)
	now := time.Now().UnixNano()
	m.recordAt("b", 0.1, now)
	m.recordAt("a", 0.2, now)
	sts := m.Statuses()
	if len(sts) != 2 || sts[0].Model != "a" || sts[1].Model != "b" {
		t.Fatalf("Statuses = %+v, want [a b] sorted", sts)
	}
	if _, ok := m.Status("ghost"); ok {
		t.Error("unknown model reported ok=true")
	}
}

// TestDriftMetricsExport checks the per-model gauge/counter series land
// in the registry.
func TestDriftMetricsExport(t *testing.T) {
	reg := NewRegistry()
	m := NewDriftMonitor(DriftConfig{Threshold: 0.01, MinSamples: 1}, reg)
	if _, err := m.Record("m", []float64{1}, []float64{2}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`autonomizer_drift_loss{model="m"} 1`,
		`autonomizer_drift_healthy{model="m"} 0`,
		`autonomizer_drift_observations_total{model="m"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
}

// TestDriftNilSafe checks the nil-monitor no-op contract.
func TestDriftNilSafe(t *testing.T) {
	var m *DriftMonitor
	st, err := m.Record("m", []float64{1}, []float64{2})
	if err != nil || !st.Healthy {
		t.Errorf("nil Record = (%+v, %v), want healthy no-op", st, err)
	}
	if err := m.Healthy(); err != nil {
		t.Errorf("nil Healthy = %v", err)
	}
	if got := m.Statuses(); got != nil {
		t.Errorf("nil Statuses = %v", got)
	}
	if m.Threshold() != 0 || m.Window() != 0 {
		t.Error("nil accessors returned non-zero")
	}
}
