package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry endpoint mux:
//
//	/metrics              Prometheus text exposition of the default registry
//	/debug/vars           expvar JSON (includes autonomizer_metrics once published)
//	/debug/pprof/...      the standard net/http/pprof profiling endpoints
//	/debug/spans          recent traced spans as JSON (see SetTracing)
//
// The handler reads Default() per request, so it can be mounted before
// Enable is called (it serves 503 until then).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := Default()
		if reg == nil {
			http.Error(w, "telemetry disabled; call obs.Enable or pass -telemetry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			Logger().Error("metrics write failed", "err", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(RecentSpans()); err != nil {
			Logger().Error("span dump failed", "err", err)
		}
	})
	return mux
}

// Serve runs the telemetry endpoints on addr until ctx is done, then
// shuts the server down gracefully. It blocks; callers run it in a
// goroutine next to the workload being observed.
func Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		return nil
	case err := <-errc:
		return err
	}
}
