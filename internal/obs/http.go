package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the telemetry endpoint mux:
//
//	/metrics              Prometheus text exposition of the default registry
//	/statusz              JSON process status (uptime, telemetry posture, registered sections)
//	/healthz              liveness; ?deep=1 additionally runs registered readiness checks
//	/debug/vars           expvar JSON (includes autonomizer_metrics once published)
//	/debug/pprof/...      the standard net/http/pprof profiling endpoints
//	/debug/spans          recent traced spans as JSON (see SetTracing)
//
// The handler reads Default() per request, so it can be mounted before
// Enable is called (it serves 503 until then).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(StatusSnapshot()); err != nil {
			Logger().Error("statusz write failed", "err", err)
		}
	})
	mux.HandleFunc("/healthz", HealthzHandler(ReadinessReport))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		reg := Default()
		if reg == nil {
			http.Error(w, "telemetry disabled; call obs.Enable or pass -telemetry", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			Logger().Error("metrics write failed", "err", err)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(RecentSpans()); err != nil {
			Logger().Error("span dump failed", "err", err)
		}
	})
	return mux
}

// healthResponse is the /healthz body: ok is liveness (always true
// when the process can answer at all), ready and checks appear only on
// deep queries.
type healthResponse struct {
	OK     bool              `json:"ok"`
	Ready  *bool             `json:"ready,omitempty"`
	Checks map[string]string `json:"checks,omitempty"`
}

// HealthzHandler builds the liveness/readiness split endpoint around a
// readiness report function: a plain GET answers 200 {"ok":true}
// (liveness — the process is up), and ?deep=1 runs the checks,
// answering 200 while all pass and 503 with per-check verdicts once
// any fails, so a fleet router can drain on readiness without killing
// on liveness. The obs handler uses ReadinessReport; the serving layer
// wires in its own report (drift verdicts, shutdown state).
func HealthzHandler(report func() (bool, map[string]string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		resp := healthResponse{OK: true}
		deep := r.URL.Query().Get("deep")
		if deep != "" && deep != "0" {
			ready, checks := report()
			resp.Ready, resp.Checks = &ready, checks
			if !ready {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			Logger().Error("healthz write failed", "err", err)
		}
	}
}

// Serve runs the telemetry endpoints on addr until ctx is done, then
// shuts the server down gracefully. It blocks; callers run it in a
// goroutine next to the workload being observed.
func Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
		return nil
	case err := <-errc:
		return err
	}
}
